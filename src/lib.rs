//! # adaptive-caches
//!
//! A full reproduction of **"Adaptive Caches: Effective Shaping of Cache
//! Behavior to Workloads"** (Subramanian, Smaragdakis & Loh, MICRO 2006)
//! as a Rust workspace. This facade crate re-exports the workspace members
//! so applications can depend on one crate:
//!
//! * [`cache_sim`] — the set-associative cache simulation substrate
//!   (geometries, tag arrays, the five standard replacement policies,
//!   partial tags),
//! * [`adaptive_cache`] — the paper's contribution: adaptive replacement
//!   over any two (or N) component policies, the SBAR set-sampling variant
//!   and the storage-overhead model,
//! * [`workloads`] — deterministic synthetic benchmark suite standing in
//!   for the paper's 100-program evaluation set,
//! * [`cpu_model`] — a cycle-level out-of-order CPU timing model with the
//!   paper's Table 1 configuration, and
//! * [`experiments`] — runners that regenerate every table and figure of
//!   the paper's evaluation.
//!
//! # Quickstart
//!
//! ```
//! use adaptive_caches::prelude::*;
//!
//! // The paper's L2: 512 KB, 8-way, 64 B lines, adapting LRU/LFU with
//! // 8-bit partial shadow tags and an m = 8 miss-history buffer.
//! let config = AdaptiveConfig::paper_default();
//! let geom = Geometry::new(512 * 1024, 64, 8).unwrap();
//! let mut cache = AdaptiveCache::new(geom, config, 1234);
//!
//! for i in 0..100_000u64 {
//!     // A 375 KB working set: fits the L2, so reuse hits after warm-up.
//!     let addr = Address::new((i % 6_000) * 64);
//!     cache.access(geom.block_of(addr), false);
//! }
//! assert!(cache.stats().hits > 0);
//! ```

pub use adaptive_cache;
pub use cache_sim;
pub use cpu_model;
pub use experiments;
pub use workloads;

/// Commonly used items from across the workspace.
pub mod prelude {
    pub use adaptive_cache::{
        AdaptiveCache, AdaptiveConfig, HistoryKind, MultiAdaptiveCache, SbarCache, SbarConfig,
    };
    pub use cache_sim::{
        Address, BlockAddr, Cache, CacheModel, CacheStats, Geometry, PolicyKind,
        ReplacementPolicy, TagMode,
    };
    pub use cpu_model::{CpuConfig, Pipeline};
    pub use workloads::{Benchmark, Inst, InstKind};
}
