//! Policy explorer: run any benchmark of the suite against every standard
//! replacement policy, the adaptive combinations and SBAR, and print an
//! MPKI/CPI scoreboard.
//!
//! Usage:
//!   cargo run --release --example policy_explorer -- [benchmark] [insts]
//!   cargo run --release --example policy_explorer -- art-1 2000000
//!
//! Without arguments it explores `art-1` at 1M instructions. Use
//! `--list` to see all 100 benchmark names.

use adaptive_caches::prelude::*;
use adaptive_cache::{MultiConfig, SbarConfig};
use experiments::{run_functional_l2, run_timed, L2Kind, PAPER_L2};
use workloads::extended_suite;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("--list") {
        for b in extended_suite() {
            println!("{:16} ({:?})", b.name, b.suite);
        }
        return;
    }
    let name = args.first().map(String::as_str).unwrap_or("art-1").to_string();
    let insts: u64 = args
        .get(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1_000_000);

    let suite = extended_suite();
    let bench = suite
        .iter()
        .find(|b| b.name == name)
        .unwrap_or_else(|| {
            eprintln!("unknown benchmark '{name}' — try --list");
            std::process::exit(1);
        });

    let kinds: Vec<(String, L2Kind)> = PolicyKind::all()
        .iter()
        .map(|&p| (p.to_string(), L2Kind::Plain(p)))
        .chain([
            (
                "Adaptive LRU/LFU (full)".to_string(),
                L2Kind::Adaptive(AdaptiveConfig::paper_full_tags()),
            ),
            (
                "Adaptive LRU/LFU (8-bit)".to_string(),
                L2Kind::Adaptive(AdaptiveConfig::paper_default()),
            ),
            (
                "Adaptive FIFO/MRU".to_string(),
                L2Kind::Adaptive(AdaptiveConfig::with_policies(
                    PolicyKind::Fifo,
                    PolicyKind::Mru,
                )),
            ),
            (
                "Adaptive x5".to_string(),
                L2Kind::Multi(MultiConfig::paper_five_policy()),
            ),
            ("SBAR".to_string(), L2Kind::Sbar(SbarConfig::paper_default())),
        ])
        .collect();

    println!("benchmark {name} ({insts} instructions), 512KB 8-way L2\n");
    println!("{:26} {:>10} {:>8}", "organisation", "L2 MPKI", "CPI");
    println!("{}", "-".repeat(48));
    let config = CpuConfig::paper_default();
    let mut best: Option<(f64, String)> = None;
    for (label, kind) in &kinds {
        let mpki = run_functional_l2(bench, kind, PAPER_L2, insts)
            .expect("paper geometry is valid")
            .stats
            .l2_mpki();
        let cpi = run_timed(bench, kind, config, insts)
            .expect("paper geometry is valid")
            .cpi();
        println!("{label:26} {mpki:>10.3} {cpi:>8.3}");
        if best.as_ref().map(|(c, _)| cpi < *c).unwrap_or(true) {
            best = Some((cpi, label.clone()));
        }
    }
    if let Some((cpi, label)) = best {
        println!("\nbest CPI: {label} at {cpi:.3}");
    }
}
