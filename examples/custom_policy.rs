//! Custom policy: implement your own [`ReplacementPolicy`] and let the
//! adaptive cache combine it with a standard one — demonstrating the
//! paper's claim that the scheme works over *any* two algorithms.
//!
//! The custom policy here is a small SRRIP-style re-reference predictor:
//! blocks are inserted with a "distant" prediction and promoted on hits;
//! victims are the most distant blocks. It behaves scan-resistantly,
//! somewhere between LRU and LFU.
//!
//! Run with: `cargo run --release --example custom_policy`

use adaptive_caches::prelude::*;
use adaptive_cache::HistoryKind;
use cache_sim::{BlockAddr, Cache, SetMeta};

/// 2-bit Static Re-Reference Interval Prediction (Jaleel et al.-style).
#[derive(Debug, Clone, Copy)]
struct Srrip {
    max_rrpv: u64,
}

impl Srrip {
    fn new() -> Self {
        Srrip { max_rrpv: 3 }
    }
}

impl ReplacementPolicy for Srrip {
    fn name(&self) -> &'static str {
        "SRRIP"
    }

    fn metadata_bits(&self, _ways: usize) -> u32 {
        2
    }

    fn on_hit(&self, set: &mut SetMeta, way: usize) {
        set.set_word(way, 0); // promote to "near-immediate re-reference"
    }

    fn on_fill(&self, set: &mut SetMeta, way: usize) {
        set.set_word(way, self.max_rrpv - 1); // insert as "long interval"
    }

    fn victim(&self, set: &SetMeta, _rng: &mut rand::rngs::SmallRng) -> usize {
        // Evict a block predicted to be re-referenced furthest in the
        // future. (Hardware SRRIP ages all blocks until one reaches the
        // maximum RRPV; picking the numerically largest RRPV makes the
        // same choice without mutating state inside `victim`.)
        if let Some((way, _)) = set.iter().find(|&(_, w)| w >= self.max_rrpv) {
            return way;
        }
        set.iter()
            .max_by_key(|&(_, w)| w)
            .map(|(i, _)| i)
            .expect("non-empty set")
    }
}

fn main() {
    let geom = Geometry::new(256 * 1024, 64, 8).expect("valid geometry");

    // Adapt between plain LRU and the custom SRRIP policy.
    let mut adaptive = AdaptiveCache::with_custom_policies(
        geom,
        PolicyKind::Lru,
        Srrip::new(),
        TagMode::PartialLow { bits: 8 },
        HistoryKind::paper_default(),
        7,
    );
    let mut lru = Cache::new(geom, PolicyKind::Lru, 7);
    let mut srrip = Cache::new(geom, Srrip::new(), 7);

    // A scan-heavy stream with an embedded hot set: SRRIP's distant
    // insertion resists the scan; LRU does not.
    let mut access = |b: u64| {
        let block = BlockAddr::new(b);
        adaptive.access(block, false);
        lru.access(block, false);
        srrip.access(block, false);
    };
    for i in 0..2_000_000u64 {
        if i % 4 < 2 {
            access((i / 4) % 2048); // hot set, revisited
        } else {
            access(10_000 + (i / 4) % 50_000); // long scan
        }
    }

    println!("{:40} misses {:>9}", adaptive.label(), adaptive.stats().misses);
    println!("{:40} misses {:>9}", lru.label(), lru.stats().misses);
    println!("{:40} misses {:>9}", srrip.label(), srrip.stats().misses);

    let best = lru.stats().misses.min(srrip.stats().misses);
    let ratio = adaptive.stats().misses as f64 / best as f64;
    println!(
        "\nadaptive / best-component miss ratio: {ratio:.3} \
         (the paper guarantees <= 2.0 + cold-start)"
    );
}
