//! Trace record/replay: capture a benchmark's instruction stream to a
//! file once, then replay it bit-identically against several cache
//! organisations — the workflow the paper's SimPoint traces supported.
//!
//! Usage:
//!   cargo run --release --example trace_replay -- [benchmark] [insts]
//!
//! Writes `<benchmark>.actr` (binary) into a temp directory, replays it
//! against LRU / LFU / adaptive L2s, and verifies that replaying equals
//! regenerating.

use adaptive_caches::prelude::*;
use cache_sim::Cache;
use cpu_model::{run_functional, Hierarchy};
use workloads::{extended_suite, trace_io};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let name = args.first().map(String::as_str).unwrap_or("twolf");
    let insts: usize = args
        .get(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1_000_000);

    let suite = extended_suite();
    let bench = suite
        .iter()
        .find(|b| b.name == name)
        .unwrap_or_else(|| {
            eprintln!("unknown benchmark '{name}'");
            std::process::exit(1);
        });

    // 1. Record.
    let path = std::env::temp_dir().join(format!("{name}.actr"));
    let trace: Vec<Inst> = bench.spec.generator().take(insts).collect();
    let file = std::fs::File::create(&path).expect("create trace file");
    let written =
        trace_io::write_binary(std::io::BufWriter::new(file), trace.iter().copied())
            .expect("write trace");
    let bytes = std::fs::metadata(&path).expect("stat").len();
    println!(
        "recorded {written} instructions of {name} to {} ({:.1} MB, {:.1} B/inst)",
        path.display(),
        bytes as f64 / 1e6,
        bytes as f64 / written as f64
    );

    // 2. Replay against three L2 organisations.
    let config = CpuConfig::paper_default();
    let geom = Geometry::new(512 * 1024, 64, 8).unwrap();
    println!("\n{:28} {:>12}", "organisation", "L2 misses");
    for label in ["LRU", "LFU", "Adaptive"] {
        let replayed = {
            let file = std::fs::File::open(&path).expect("open trace");
            trace_io::read_binary(std::io::BufReader::new(file)).expect("read trace")
        };
        let misses = match label {
            "LRU" => {
                let mut h = Hierarchy::new(&config, Cache::new(geom, PolicyKind::Lru, 7));
                run_functional(&mut h, replayed.into_iter(), written).l2_misses
            }
            "LFU" => {
                let mut h = Hierarchy::new(&config, Cache::new(geom, PolicyKind::LFU5, 7));
                run_functional(&mut h, replayed.into_iter(), written).l2_misses
            }
            _ => {
                let l2 = AdaptiveCache::new(geom, AdaptiveConfig::paper_full_tags(), 7);
                let mut h = Hierarchy::new(&config, l2);
                run_functional(&mut h, replayed.into_iter(), written).l2_misses
            }
        };
        println!("{label:28} {misses:>12}");
    }

    // 3. Replay == regenerate, bit for bit.
    let file = std::fs::File::open(&path).expect("open trace");
    let replayed = trace_io::read_binary(std::io::BufReader::new(file)).expect("read");
    assert_eq!(replayed, trace, "replay diverged from the generator");
    println!("\nreplay is bit-identical to regeneration ✓");
    let _ = std::fs::remove_file(&path);
}
