//! Quickstart: build the paper's adaptive L2, feed it a workload whose
//! behaviour flips between LRU-friendly and LFU-friendly, and watch the
//! adaptive cache track the better component policy.
//!
//! Run with: `cargo run --release --example quickstart`

use adaptive_caches::prelude::*;
use cache_sim::Cache;

fn main() {
    // The paper's L2: 512 KB, 64 B lines, 8-way.
    let geom = Geometry::new(512 * 1024, 64, 8).expect("valid geometry");

    // The adaptive design point of the paper: LRU/LFU components, 8-bit
    // partial shadow tags, m = 8 bit-vector miss history.
    let adaptive = AdaptiveCache::new(geom, AdaptiveConfig::paper_default(), 42);
    let lru = Cache::new(geom, PolicyKind::Lru, 42);
    let lfu = Cache::new(geom, PolicyKind::LFU5, 42);

    // Phase 1 — LFU-friendly: a hot region rescanned twice per iteration
    // against a large streaming scan (the paper's `art` archetype).
    // Phase 2 — LRU-friendly: a working-set window that shifts wholesale,
    // poisoning stale frequency counts (the `lucas` archetype).
    fn access(caches: &mut (AdaptiveCache, Cache, Cache), block: u64) {
        let b = cache_sim::BlockAddr::new(block);
        caches.0.access(b, false);
        caches.1.access(b, false);
        caches.2.access(b, false);
    }
    let mut caches = (adaptive, lru, lfu);

    println!("phase 1: hot region + streaming scan (LFU should win)");
    let mut scan_pos = 0u64;
    for _rep in 0..60 {
        for _pass in 0..2 {
            for hot in 0..3072u64 {
                access(&mut caches, hot);
            }
        }
        for _ in 0..10_240 {
            access(&mut caches, 100_000 + scan_pos % 65_536);
            scan_pos += 1;
        }
    }
    report(&caches.0, &caches.1, &caches.2);

    println!("\nphase 2: shifting working set (LRU should win)");
    let mut x = 9u64;
    for i in 0..1_500_000u64 {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        let window = i / 16_000;
        access(&mut caches, 1_000_000 + window * 2048 + x % 4096);
    }
    report(&caches.0, &caches.1, &caches.2);
    let adaptive = caches.0;

    let (a, b) = adaptive.imitation_totals();
    println!("\nimitation decisions: {a} followed LRU, {b} followed LFU");
    println!(
        "partial-tag aliasing fallbacks: {}",
        adaptive.aliasing_fallbacks()
    );
}

fn report(adaptive: &AdaptiveCache, lru: &Cache, lfu: &Cache) {
    println!(
        "  {:44} misses {:>9}",
        adaptive.label(),
        adaptive.stats().misses
    );
    println!("  {:44} misses {:>9}", lru.label(), lru.stats().misses);
    println!("  {:44} misses {:>9}", lfu.label(), lfu.stats().misses);
}
