//! Phase map: visualise, Figure-7 style, which component policy each
//! cache set's replacement decisions imitate over time.
//!
//! Usage:
//!   cargo run --release --example phase_map -- [benchmark] [insts]
//!   cargo run --release --example phase_map -- mgrid 3000000
//!
//! `#` marks LRU-majority quanta (the paper's dark dots), `.` marks
//! LFU-majority (white), spaces had no replacement activity.

use experiments::figures::fig07_phase_map;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let name = args.first().map(String::as_str).unwrap_or("ammp");
    let insts: u64 = args
        .get(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(2_000_000);

    let map = fig07_phase_map(name, insts, 100_000, 32);
    println!(
        "{name}: replacement choice per set group over time \
         (bottom = set 0, left = start, quantum = {} cycles)\n",
        map.quantum_cycles
    );
    print!("{}", map.ascii());
    println!("\nlegend: '#' LRU-majority   '.' LFU-majority   ' ' idle");
}
