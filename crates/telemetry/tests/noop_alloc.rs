//! Guards the disabled-telemetry fast path: with no recorder installed,
//! every instrumentation entry point must complete without touching the
//! allocator. This is what keeps the default `cachesim` run at baseline
//! speed — the CI "disabled-telemetry smoke check".
//!
//! This test binary must never install a global recorder, and must stay
//! the only test in its file so no sibling thread allocates while the
//! counting window is open.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::SeqCst);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::SeqCst);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

#[test]
fn disabled_instrumentation_is_allocation_free() {
    assert!(!ac_telemetry::enabled(), "this test must run uninstalled");

    // Warm anything lazily initialised outside the instrumented path.
    ac_telemetry::now_us();

    // The harness itself (stdout capture, watchdog) occasionally
    // allocates from another thread mid-window. The instrumented loop is
    // deterministic, so one clean window out of a few attempts proves
    // the path allocation-free; a real allocation inside the loop would
    // fail every attempt.
    let mut observed = u64::MAX;
    for _attempt in 0..5 {
        let before = ALLOCS.load(Ordering::SeqCst);
        for i in 0..10_000u32 {
            ac_telemetry::counter_add("noop_counter_total", 1);
            ac_telemetry::counter_add_labeled("noop_labeled_total", "label", 2);
            ac_telemetry::gauge_set("noop_gauge", 1.0);
            ac_telemetry::histogram_record("noop_hist_us", u64::from(i));
            ac_telemetry::decision(|| ac_telemetry::DecisionEvent::Imitation {
                set: i,
                component: ac_telemetry::Comp::A,
                case: ac_telemetry::EvictionCase::SameVictim,
            });
            let span = ac_telemetry::span("noop", || format!("span {i}"));
            drop(span);
            // Timeline construction declines without running the label
            // closure, and run-scope guards stay inert.
            let tl = ac_telemetry::Timeline::from_hub("accesses", || format!("run {i}"));
            assert!(tl.is_none(), "from_hub must decline with no hub installed");
            let scope = ac_telemetry::timeline::run_scope("cell 0:applu");
            drop(scope);
        }
        observed = observed.min(ALLOCS.load(Ordering::SeqCst) - before);
        if observed == 0 {
            break;
        }
    }
    assert_eq!(
        observed, 0,
        "disabled-path instrumentation must not allocate"
    );
}
