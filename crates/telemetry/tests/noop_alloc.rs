//! Guards the disabled-telemetry fast path: with no recorder installed,
//! every instrumentation entry point must complete without touching the
//! allocator. This is what keeps the default `cachesim` run at baseline
//! speed — the CI "disabled-telemetry smoke check".
//!
//! This test binary must never install a global recorder, and must stay
//! the only test in its file so no sibling thread allocates while the
//! counting window is open.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::SeqCst);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::SeqCst);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

#[test]
fn disabled_instrumentation_is_allocation_free() {
    assert!(!ac_telemetry::enabled(), "this test must run uninstalled");

    // Warm anything lazily initialised outside the instrumented path.
    ac_telemetry::now_us();

    let before = ALLOCS.load(Ordering::SeqCst);
    for i in 0..10_000u32 {
        ac_telemetry::counter_add("noop_counter_total", 1);
        ac_telemetry::counter_add_labeled("noop_labeled_total", "label", 2);
        ac_telemetry::gauge_set("noop_gauge", 1.0);
        ac_telemetry::histogram_record("noop_hist_us", u64::from(i));
        ac_telemetry::decision(|| ac_telemetry::DecisionEvent::Imitation {
            set: i,
            component: ac_telemetry::Comp::A,
            case: ac_telemetry::EvictionCase::SameVictim,
        });
        let span = ac_telemetry::span("noop", || format!("span {i}"));
        drop(span);
    }
    let after = ALLOCS.load(Ordering::SeqCst);
    assert_eq!(
        after - before,
        0,
        "disabled-path instrumentation must not allocate"
    );
}
