//! Guards the *enabled* timeline's steady state: once a [`Timeline`] is
//! constructed (one label `String`, one preallocated ring), recording
//! windows — including every in-place coarsening the bounded ring
//! performs — must not touch the allocator. Flushing to JSONL happens
//! once at artifact-write time and is allowed to allocate; the per-window
//! hot path is not.
//!
//! Same discipline as `noop_alloc.rs`: single test in the binary so no
//! sibling thread allocates while the counting window is open.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use ac_telemetry::{Timeline, TimelineGauges, TimelineProbe};

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::SeqCst);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::SeqCst);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

#[test]
fn enabled_timeline_recording_is_allocation_free() {
    // Warm the lazily initialised telemetry epoch outside the window.
    ac_telemetry::now_us();

    // The harness itself occasionally allocates from another thread
    // mid-window; the recording loop is deterministic, so one clean
    // window out of a few attempts proves the path allocation-free.
    let mut observed = u64::MAX;
    for _attempt in 0..5u64 {
        // Construction allocates (label + ring) and is excluded on
        // purpose: the contract covers the steady state.
        let mut tl = Timeline::new("alloc probe".into(), "accesses", 4, 8);

        let before = ALLOCS.load(Ordering::SeqCst);
        let mut probe = TimelineProbe::default();
        for tick in 1..=20_000u64 {
            probe.accesses = tick;
            probe.hits = tick / 2;
            probe.misses = tick - tick / 2;
            probe.imitations_a = tick / 3;
            if tl.due(tick) {
                tl.record(tick, tick * 4, probe, TimelineGauges::default());
            }
        }
        tl.close(20_001, 80_004, probe, TimelineGauges::default());
        let after = ALLOCS.load(Ordering::SeqCst);

        // 20k ticks into an 8-window ring at window 4 forces ~11
        // coarsening rounds; all of them must happen in place.
        assert!(
            tl.window_len() > 4,
            "test must actually exercise coarsening (window_len = {})",
            tl.window_len()
        );
        assert!(!tl.windows().is_empty());
        drop(tl);
        observed = observed.min(after - before);
        if observed == 0 {
            break;
        }
    }
    assert_eq!(
        observed, 0,
        "enabled timeline record/coarsen path must not allocate"
    );
}
