//! HTTP round-trips against the live introspection server: every
//! endpoint, the SSE stream, and the shutdown contract (joining the
//! accept thread releases the port). One process-global hub is shared by
//! every test in this binary.

use ac_telemetry::serve::Server;
use ac_telemetry::{progress, Recorder, Telemetry, TelemetryConfig};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::OnceLock;
use std::time::Duration;

fn hub() -> &'static Telemetry {
    static INIT: OnceLock<&'static Telemetry> = OnceLock::new();
    INIT.get_or_init(|| {
        let dir = std::env::temp_dir().join(format!("ac_serve_http_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cfg = TelemetryConfig::default().with_dir(dir);
        Telemetry::install(cfg).expect("first install in this process")
    })
}

fn server() -> Server {
    let _ = hub();
    Server::start("127.0.0.1:0").expect("bind an ephemeral port")
}

/// One blocking HTTP/1.1 GET; returns (status, full head, body).
fn get(addr: SocketAddr, path: &str) -> (u16, String, String) {
    let mut s = TcpStream::connect(addr).expect("connect");
    write!(
        s,
        "GET {path} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n"
    )
    .unwrap();
    let mut buf = String::new();
    s.read_to_string(&mut buf).expect("read response");
    let (head, body) = buf
        .split_once("\r\n\r\n")
        .unwrap_or_else(|| panic!("malformed response: {buf:?}"));
    let status = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("no status line in {head:?}"));
    (status, head.to_string(), body.to_string())
}

/// Minimal Prometheus text-format check: every non-comment line is
/// `name value` or `name{label="..."} value` with a parseable float.
fn assert_prometheus_parses(body: &str) {
    for line in body.lines() {
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (name_part, value) = line
            .rsplit_once(' ')
            .unwrap_or_else(|| panic!("no value on line {line:?}"));
        assert!(
            value.parse::<f64>().is_ok(),
            "unparseable value on {line:?}"
        );
        let name = name_part.split('{').next().unwrap();
        assert!(
            !name.is_empty()
                && name
                    .chars()
                    .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':'),
            "bad metric name on {line:?}"
        );
        if let Some(labels) = name_part.strip_prefix(name) {
            if !labels.is_empty() {
                assert!(
                    labels.starts_with('{') && labels.ends_with('}'),
                    "bad label block on {line:?}"
                );
            }
        }
    }
}

#[test]
fn healthz_answers_ok() {
    let srv = server();
    let (status, _, body) = get(srv.local_addr(), "/healthz");
    assert_eq!(status, 200);
    assert_eq!(body, "ok\n");
    srv.shutdown();
}

#[test]
fn metrics_serves_live_prometheus_with_build_info_and_uptime() {
    let srv = server();
    hub().counter_add("serve_test_total", "lbl", 3);
    let (status, head, body) = get(srv.local_addr(), "/metrics");
    assert_eq!(status, 200);
    assert!(
        head.contains("text/plain; version=0.0.4"),
        "exposition content type: {head}"
    );
    assert_prometheus_parses(&body);
    assert!(body.contains("ac_build_info"), "{body}");
    assert!(body.contains("ac_uptime_seconds"), "{body}");
    assert!(
        body.contains("ac_serve_test_total{label=\"lbl\"} 3"),
        "live counter visible mid-run: {body}"
    );
    // A second scrape sees a monotonically larger request counter: the
    // scrape itself is instrumented.
    let (_, _, body2) = get(srv.local_addr(), "/metrics");
    assert!(body2.contains("ac_serve_requests_total{label=\"/metrics\"}"));
    srv.shutdown();
}

#[test]
fn progress_serves_registered_sweeps_as_json() {
    let srv = server();
    let h = progress::sweep("http_sweep", 4);
    h.cell_start("cell-a");
    h.cell_finished(
        "cell-a",
        progress::CellStatus::Done,
        Duration::from_millis(3),
    );
    h.cell_start("cell-b");
    let (status, head, body) = get(srv.local_addr(), "/progress");
    assert_eq!(status, 200);
    assert!(head.contains("application/json"));
    assert!(body.contains("\"schema_version\":1"), "{body}");
    assert!(body.contains("\"http_sweep\""), "{body}");
    assert!(body.contains("\"cell-b\""), "running cell listed: {body}");
    assert!(body.contains("\"eta_secs\":"), "{body}");
    srv.shutdown();
}

#[test]
fn events_streams_sse_and_terminates_on_shutdown() {
    let srv = server();
    hub().decision(ac_telemetry::DecisionEvent::HistoryUpdate {
        set: 1,
        a_missed: true,
        b_missed: false,
    });
    let mut s = TcpStream::connect(srv.local_addr()).unwrap();
    write!(s, "GET /events HTTP/1.1\r\nHost: t\r\n\r\n").unwrap();
    s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    let mut buf = [0u8; 4096];
    let mut seen = String::new();
    while !seen.contains("\n\n") || !seen.contains("event-stream") {
        let n = s.read(&mut buf).expect("stream data before timeout");
        assert!(n > 0, "server closed the stream prematurely: {seen:?}");
        seen.push_str(&String::from_utf8_lossy(&buf[..n]));
    }
    assert!(seen.contains("Content-Type: text/event-stream"), "{seen}");
    // Shutdown must end the stream (read returns 0) within a poll tick
    // or two rather than hanging until the client gives up.
    srv.shutdown();
    loop {
        match s.read(&mut buf) {
            Ok(0) => break,
            Ok(_) => continue,
            Err(e) => panic!("SSE socket errored instead of closing: {e}"),
        }
    }
}

#[test]
fn dashboard_unknown_path_and_post_are_handled() {
    let srv = server();
    let (status, head, body) = get(srv.local_addr(), "/");
    assert_eq!(status, 200);
    assert!(head.contains("text/html"));
    assert!(body.contains("/metrics"), "dashboard links endpoints");

    let (status, _, _) = get(srv.local_addr(), "/no-such-endpoint");
    assert_eq!(status, 404);

    let mut s = TcpStream::connect(srv.local_addr()).unwrap();
    write!(s, "POST /metrics HTTP/1.1\r\nHost: t\r\n\r\n").unwrap();
    let mut buf = String::new();
    s.read_to_string(&mut buf).unwrap();
    assert!(buf.starts_with("HTTP/1.1 405"), "{buf}");
    srv.shutdown();
}

#[test]
fn query_strings_are_stripped() {
    let srv = server();
    let (status, _, body) = get(srv.local_addr(), "/healthz?probe=1");
    assert_eq!(status, 200);
    assert_eq!(body, "ok\n");
    srv.shutdown();
}

#[test]
fn shutdown_releases_the_port() {
    let srv = server();
    let addr = srv.local_addr();
    let (status, _, _) = get(addr, "/healthz");
    assert_eq!(status, 200);
    srv.shutdown();
    // The accept thread is joined, so the listener is closed: rebinding
    // the exact address must succeed immediately.
    let rebound = TcpListener::bind(addr)
        .unwrap_or_else(|e| panic!("port {addr} not released after shutdown: {e}"));
    drop(rebound);
}

#[test]
fn addr_file_publishes_the_bound_address() {
    // AC_SERVE_ADDR_FILE is read at Server::start; this test sets it
    // before starting its own server and unsets it after. No other test
    // in this binary touches the variable.
    let path = std::env::temp_dir().join(format!("ac_serve_addr_{}", std::process::id()));
    let _ = std::fs::remove_file(&path);
    std::env::set_var("AC_SERVE_ADDR_FILE", &path);
    let _ = hub();
    let srv = Server::start("127.0.0.1:0").unwrap();
    std::env::remove_var("AC_SERVE_ADDR_FILE");
    let written = std::fs::read_to_string(&path).expect("address file written");
    assert_eq!(written.trim(), srv.local_addr().to_string());
    srv.shutdown();
    let _ = std::fs::remove_file(&path);
}
