//! The structured decision-event stream.
//!
//! Events are tiny `Copy` values so that emitting one from a cache's
//! replacement path costs a couple of stores; all allocation happens in
//! the recorder, and only for the sampled subset.

use crate::json::push_str_escaped;

/// Schema version stamped on every `events.jsonl` line. Bumped to 2
/// when the field itself was introduced (version-1 lines carry none).
pub const EVENTS_SCHEMA_VERSION: u32 = 2;

/// One of the two component policies of an adaptive organisation
/// (mirrors `adaptive_cache::Component` without depending on it — this
/// crate sits below the simulation crates).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Comp {
    /// Component policy A.
    A,
    /// Component policy B.
    B,
}

impl Comp {
    /// Stable wire name (`"A"` / `"B"`).
    pub fn as_str(self) -> &'static str {
        match self {
            Comp::A => "A",
            Comp::B => "B",
        }
    }
}

/// Which branch of Algorithm 1 chose the victim.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EvictionCase {
    /// Case 1: the imitated component also missed and its victim was
    /// still resident — the very same block was evicted.
    SameVictim,
    /// Case 2: a block not present in the imitated component's (shadow)
    /// cache was evicted, converging the contents towards it.
    NotInShadow,
    /// The Section 3.3 shortcut: imitating an LRU component by evicting
    /// the least-recent real block directly.
    LruShortcut,
    /// Case 3 (partial tags only): aliasing hid every candidate and an
    /// arbitrary block was evicted.
    AliasFallback,
    /// SBAR follower set: the globally selected policy's own metadata
    /// chose the victim (no shadow structures involved).
    Follower,
}

impl EvictionCase {
    /// Stable wire name (`snake_case`).
    pub fn as_str(self) -> &'static str {
        match self {
            EvictionCase::SameVictim => "same_victim",
            EvictionCase::NotInShadow => "not_in_shadow",
            EvictionCase::LruShortcut => "lru_shortcut",
            EvictionCase::AliasFallback => "alias_fallback",
            EvictionCase::Follower => "follower",
        }
    }
}

/// One adaptive-cache decision, as emitted by the simulation crates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecisionEvent {
    /// Algorithm 1 ran in `set` and imitated `component`, taking `case`.
    Imitation {
        /// The cache set the replacement happened in.
        set: u32,
        /// The component policy imitated.
        component: Comp,
        /// The branch of Algorithm 1 that chose the victim.
        case: EvictionCase,
    },
    /// A per-set miss history absorbed an *exclusive* miss (exactly one
    /// component missed — ties in either direction do not train).
    HistoryUpdate {
        /// The cache set whose history was updated.
        set: u32,
        /// Whether component A missed this reference.
        a_missed: bool,
        /// Whether component B missed this reference.
        b_missed: bool,
    },
    /// An SBAR leader set cast a vote: exactly one component missed and
    /// the global selector moved.
    LeaderVote {
        /// The leader set that voted.
        set: u32,
        /// The leader's slot index.
        slot: u32,
        /// The selector value after the vote.
        psel: u32,
        /// The component the selector favours after the vote.
        global: Comp,
    },
    /// A DIP leader set missed and trained the duel counter.
    DuelVote {
        /// The leader set that missed.
        set: u32,
        /// True for a BIP leader, false for an LRU-insertion leader.
        bip_leader: bool,
        /// The duel counter after the update.
        psel: u32,
    },
}

impl DecisionEvent {
    /// Stable wire name of the event kind.
    pub fn kind(&self) -> &'static str {
        match self {
            DecisionEvent::Imitation { .. } => "imitation",
            DecisionEvent::HistoryUpdate { .. } => "history_update",
            DecisionEvent::LeaderVote { .. } => "leader_vote",
            DecisionEvent::DuelVote { .. } => "duel_vote",
        }
    }
}

/// A recorded (sampled) event: the decision plus stream metadata.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EventRecord {
    /// Position in the *unsampled* stream (so consumers can recover the
    /// effective sampling density).
    pub seq: u64,
    /// Microseconds since the process telemetry epoch.
    pub t_us: u64,
    /// The decision itself.
    pub event: DecisionEvent,
}

impl EventRecord {
    /// The event as one JSONL line (no trailing newline).
    pub fn to_json_line(&self) -> String {
        let mut s = String::with_capacity(96);
        s.push_str("{\"schema_version\":");
        s.push_str(&EVENTS_SCHEMA_VERSION.to_string());
        s.push_str(",\"seq\":");
        s.push_str(&self.seq.to_string());
        s.push_str(",\"t_us\":");
        s.push_str(&self.t_us.to_string());
        s.push_str(",\"kind\":");
        push_str_escaped(&mut s, self.event.kind());
        match self.event {
            DecisionEvent::Imitation {
                set,
                component,
                case,
            } => {
                s.push_str(&format!(
                    ",\"set\":{set},\"component\":\"{}\",\"case\":\"{}\"",
                    component.as_str(),
                    case.as_str()
                ));
            }
            DecisionEvent::HistoryUpdate {
                set,
                a_missed,
                b_missed,
            } => {
                s.push_str(&format!(
                    ",\"set\":{set},\"a_missed\":{a_missed},\"b_missed\":{b_missed}"
                ));
            }
            DecisionEvent::LeaderVote {
                set,
                slot,
                psel,
                global,
            } => {
                s.push_str(&format!(
                    ",\"set\":{set},\"slot\":{slot},\"psel\":{psel},\"global\":\"{}\"",
                    global.as_str()
                ));
            }
            DecisionEvent::DuelVote {
                set,
                bip_leader,
                psel,
            } => {
                s.push_str(&format!(
                    ",\"set\":{set},\"bip_leader\":{bip_leader},\"psel\":{psel}"
                ));
            }
        }
        s.push('}');
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_lines_are_well_formed() {
        let r = EventRecord {
            seq: 9,
            t_us: 1234,
            event: DecisionEvent::Imitation {
                set: 3,
                component: Comp::B,
                case: EvictionCase::NotInShadow,
            },
        };
        assert_eq!(
            r.to_json_line(),
            "{\"schema_version\":2,\"seq\":9,\"t_us\":1234,\"kind\":\"imitation\",\
             \"set\":3,\"component\":\"B\",\"case\":\"not_in_shadow\"}"
        );
    }

    #[test]
    fn kinds_are_stable() {
        assert_eq!(
            DecisionEvent::HistoryUpdate {
                set: 0,
                a_missed: true,
                b_missed: false
            }
            .kind(),
            "history_update"
        );
        assert_eq!(EvictionCase::AliasFallback.as_str(), "alias_fallback");
        assert_eq!(Comp::A.as_str(), "A");
    }
}
