//! Windowed time-series recording: the temporal dimension the summary
//! artifacts average away.
//!
//! A [`Timeline`] snapshots a [`TimelineProbe`] (cumulative counters
//! read from the model under test) every `window` ticks — accesses in
//! the functional engine, cycles in the pipeline — and stores the
//! *delta* against the previous snapshot in a bounded, preallocated
//! ring. When the ring fills up it **coarsens** instead of dropping
//! history: adjacent windows are merged pairwise in place and the
//! window length doubles, so a timeline always covers the whole run at
//! the finest resolution its capacity allows, without ever allocating
//! on the record path.
//!
//! Finished timelines attach to the global [`crate::Telemetry`] hub and
//! are flushed atomically to `timeline.jsonl` (one JSON object per
//! window, tagged with the run label) by
//! [`crate::Telemetry::write_artifacts`].

use crate::json::{number, push_str_escaped};
use std::cell::RefCell;

/// Schema version stamped on every `timeline.jsonl` line.
pub const TIMELINE_SCHEMA_VERSION: u32 = 1;

/// Default window length in ticks (accesses or cycles).
pub const DEFAULT_TIMELINE_WINDOW: u64 = 1 << 16;

/// Default ring capacity in windows; past this the timeline coarsens.
pub const DEFAULT_TIMELINE_CAPACITY: usize = 512;

/// A point-in-time snapshot of the cumulative counters a cache model
/// exposes for time-series recording. All counter fields are monotonic
/// totals since construction; the timeline converts them to per-window
/// deltas. `psel` is an instantaneous register value (SBAR/DIP policy
/// selector), carried through as end-of-window state.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TimelineProbe {
    /// Total accesses observed by the model.
    pub accesses: u64,
    /// Total hits.
    pub hits: u64,
    /// Total misses.
    pub misses: u64,
    /// Misses of the shadow (or leader-sampled) component-A policy.
    pub shadow_a_misses: u64,
    /// Misses of the shadow (or leader-sampled) component-B policy.
    pub shadow_b_misses: u64,
    /// Exclusive misses charged to policy A (A missed where B hit).
    pub excl_a_misses: u64,
    /// Exclusive misses charged to policy B (B missed where A hit).
    pub excl_b_misses: u64,
    /// Evictions that imitated component policy A.
    pub imitations_a: u64,
    /// Evictions that imitated component policy B.
    pub imitations_b: u64,
    /// Partial-tag aliasing fallbacks to plain LRU.
    pub aliasing_fallbacks: u64,
    /// SBAR leader votes / DIP duel votes cast.
    pub leader_votes: u64,
    /// Current policy-selector register value, when the model has one.
    pub psel: Option<u32>,
}

impl TimelineProbe {
    /// Field-wise `self - prev` for the monotonic counters; `psel`
    /// carries the current (end-of-window) value through unchanged.
    #[must_use]
    pub fn delta_from(&self, prev: &TimelineProbe) -> TimelineProbe {
        TimelineProbe {
            accesses: self.accesses.saturating_sub(prev.accesses),
            hits: self.hits.saturating_sub(prev.hits),
            misses: self.misses.saturating_sub(prev.misses),
            shadow_a_misses: self.shadow_a_misses.saturating_sub(prev.shadow_a_misses),
            shadow_b_misses: self.shadow_b_misses.saturating_sub(prev.shadow_b_misses),
            excl_a_misses: self.excl_a_misses.saturating_sub(prev.excl_a_misses),
            excl_b_misses: self.excl_b_misses.saturating_sub(prev.excl_b_misses),
            imitations_a: self.imitations_a.saturating_sub(prev.imitations_a),
            imitations_b: self.imitations_b.saturating_sub(prev.imitations_b),
            aliasing_fallbacks: self
                .aliasing_fallbacks
                .saturating_sub(prev.aliasing_fallbacks),
            leader_votes: self.leader_votes.saturating_sub(prev.leader_votes),
            psel: self.psel,
        }
    }

    /// Field-wise sum of two window deltas (used when coarsening);
    /// `psel` keeps the later window's value.
    #[must_use]
    pub fn merged_with(&self, later: &TimelineProbe) -> TimelineProbe {
        TimelineProbe {
            accesses: self.accesses + later.accesses,
            hits: self.hits + later.hits,
            misses: self.misses + later.misses,
            shadow_a_misses: self.shadow_a_misses + later.shadow_a_misses,
            shadow_b_misses: self.shadow_b_misses + later.shadow_b_misses,
            excl_a_misses: self.excl_a_misses + later.excl_a_misses,
            excl_b_misses: self.excl_b_misses + later.excl_b_misses,
            imitations_a: self.imitations_a + later.imitations_a,
            imitations_b: self.imitations_b + later.imitations_b,
            aliasing_fallbacks: self.aliasing_fallbacks + later.aliasing_fallbacks,
            leader_votes: self.leader_votes + later.leader_votes,
            psel: later.psel.or(self.psel),
        }
    }
}

/// Instantaneous engine-side occupancy gauges sampled at window
/// boundaries (pipeline mode only; zero in the functional engine).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TimelineGauges {
    /// MSHRs busy at the window boundary.
    pub mshr_busy: u32,
    /// Store-buffer entries draining at the window boundary.
    pub sb_busy: u32,
}

/// One closed window: delta-encoded counters over `[start_tick,
/// end_tick)` plus end-of-window instantaneous state.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Window {
    /// First tick covered (inclusive).
    pub start_tick: u64,
    /// Last tick covered (exclusive).
    pub end_tick: u64,
    /// Instructions retired in this window.
    pub instructions: u64,
    /// Wall-clock microseconds elapsed in this window.
    pub dt_us: u64,
    /// Counter deltas over this window (`psel` = end-of-window value).
    pub d: TimelineProbe,
    /// Occupancy gauges at the window boundary.
    pub gauges: TimelineGauges,
}

impl Window {
    fn merged_with(&self, later: &Window) -> Window {
        Window {
            start_tick: self.start_tick,
            end_tick: later.end_tick,
            instructions: self.instructions + later.instructions,
            dt_us: self.dt_us + later.dt_us,
            d: self.d.merged_with(&later.d),
            gauges: later.gauges,
        }
    }
}

/// A finished timeline, detached from the recording machinery: label,
/// tick unit and the closed windows.
#[derive(Debug, Clone)]
pub struct TimelineData {
    /// Run label (`<scope>/<model label>` under a sweep cell).
    pub label: String,
    /// What a tick is: `"accesses"` or `"cycles"`.
    pub unit: &'static str,
    /// Closed windows, oldest first.
    pub windows: Vec<Window>,
}

impl TimelineData {
    /// Appends this timeline as JSONL (one object per window, derived
    /// rates included) to `out`.
    pub fn write_jsonl(&self, out: &mut String) {
        for (i, w) in self.windows.iter().enumerate() {
            out.push_str("{\"schema_version\":");
            push_u64(out, u64::from(TIMELINE_SCHEMA_VERSION));
            out.push_str(",\"run\":");
            push_str_escaped(out, &self.label);
            out.push_str(",\"unit\":");
            push_str_escaped(out, self.unit);
            out.push_str(",\"window\":");
            push_u64(out, i as u64);
            for (key, v) in [
                ("start", w.start_tick),
                ("end", w.end_tick),
                ("instructions", w.instructions),
                ("dt_us", w.dt_us),
                ("accesses", w.d.accesses),
                ("hits", w.d.hits),
                ("misses", w.d.misses),
                ("shadow_a_misses", w.d.shadow_a_misses),
                ("shadow_b_misses", w.d.shadow_b_misses),
                ("excl_a_misses", w.d.excl_a_misses),
                ("excl_b_misses", w.d.excl_b_misses),
                ("imitations_a", w.d.imitations_a),
                ("imitations_b", w.d.imitations_b),
                ("aliasing_fallbacks", w.d.aliasing_fallbacks),
                ("leader_votes", w.d.leader_votes),
                ("mshr_busy", u64::from(w.gauges.mshr_busy)),
                ("sb_busy", u64::from(w.gauges.sb_busy)),
            ] {
                out.push_str(",\"");
                out.push_str(key);
                out.push_str("\":");
                push_u64(out, v);
            }
            out.push_str(",\"psel\":");
            match w.d.psel {
                Some(p) => push_u64(out, u64::from(p)),
                None => out.push_str("null"),
            }
            let ratio = |num: u64, den: u64| {
                if den == 0 {
                    0.0
                } else {
                    num as f64 / den as f64
                }
            };
            out.push_str(",\"mpki\":");
            out.push_str(&number(1000.0 * ratio(w.d.misses, w.instructions)));
            out.push_str(",\"miss_ratio\":");
            out.push_str(&number(ratio(w.d.misses, w.d.accesses)));
            out.push_str(",\"imit_frac_b\":");
            out.push_str(&number(ratio(
                w.d.imitations_b,
                w.d.imitations_a + w.d.imitations_b,
            )));
            out.push_str(",\"ticks_per_sec\":");
            out.push_str(&number(
                1e6 * ratio(w.end_tick.saturating_sub(w.start_tick), w.dt_us),
            ));
            out.push_str("}\n");
        }
    }
}

fn push_u64(out: &mut String, v: u64) {
    // Avoids the formatting machinery; still allocates only into `out`.
    let mut buf = [0u8; 20];
    let mut i = buf.len();
    let mut v = v;
    loop {
        i -= 1;
        buf[i] = b'0' + (v % 10) as u8;
        v /= 10;
        if v == 0 {
            break;
        }
    }
    // Digits are ASCII by construction.
    out.push_str(std::str::from_utf8(&buf[i..]).unwrap_or("0"));
}

/// A live windowed recorder. Construct with [`Timeline::from_hub`] at
/// the top of a run loop, call [`Timeline::due`] (one compare) per
/// iteration and [`Timeline::record`] at window boundaries, then
/// [`Timeline::finish`] once at the end.
#[derive(Debug)]
pub struct Timeline {
    label: String,
    unit: &'static str,
    window_len: u64,
    next_boundary: u64,
    capacity: usize,
    windows: Vec<Window>,
    last_probe: TimelineProbe,
    last_tick: u64,
    last_instructions: u64,
    last_t_us: u64,
}

impl Timeline {
    /// A standalone timeline (tests, local aggregation). `window` is
    /// clamped to ≥ 1, `capacity` to ≥ 2 (coarsening needs a pair).
    pub fn new(label: String, unit: &'static str, window: u64, capacity: usize) -> Timeline {
        let capacity = capacity.max(2);
        Timeline {
            label,
            unit,
            window_len: window.max(1),
            next_boundary: window.max(1),
            capacity,
            windows: Vec::with_capacity(capacity),
            last_probe: TimelineProbe::default(),
            last_tick: 0,
            last_instructions: 0,
            last_t_us: crate::now_us(),
        }
    }

    /// A timeline wired to the global hub's configuration, or `None`
    /// when no hub is installed or the hub has timelines disabled
    /// (`timeline_window == 0`). The label closure runs only on the
    /// `Some` path; the `None` path performs no allocation. The label
    /// is prefixed with the current [`run_scope`], when one is set.
    pub fn from_hub(unit: &'static str, label: impl FnOnce() -> String) -> Option<Timeline> {
        let hub = crate::hub()?;
        let window = hub.config().timeline_window;
        if window == 0 {
            return None;
        }
        let base = label();
        let label = current_run_scope(|scope| match scope {
            Some(scope) => format!("{scope}/{base}"),
            None => base.clone(),
        });
        Some(Timeline::new(
            label,
            unit,
            window,
            DEFAULT_TIMELINE_CAPACITY,
        ))
    }

    /// Whether `tick` has crossed the next window boundary. One compare;
    /// call this per iteration and [`Timeline::record`] only when true.
    #[inline]
    pub fn due(&self, tick: u64) -> bool {
        tick >= self.next_boundary
    }

    /// Closes the window ending at `tick`. `probe` carries the model's
    /// cumulative counters, `instructions` the cumulative retired
    /// instruction count, `gauges` instantaneous occupancy. Never
    /// allocates: the ring is preallocated and coarsens in place.
    pub fn record(
        &mut self,
        tick: u64,
        instructions: u64,
        probe: TimelineProbe,
        gauges: TimelineGauges,
    ) {
        let now_us = crate::now_us();
        if self.windows.len() == self.capacity {
            self.coarsen();
        }
        self.windows.push(Window {
            start_tick: self.last_tick,
            end_tick: tick,
            instructions: instructions.saturating_sub(self.last_instructions),
            dt_us: now_us.saturating_sub(self.last_t_us),
            d: probe.delta_from(&self.last_probe),
            gauges,
        });
        self.last_tick = tick;
        self.last_instructions = instructions;
        self.last_probe = probe;
        self.last_t_us = now_us;
        while self.next_boundary <= tick {
            self.next_boundary += self.window_len;
        }
    }

    /// Merges adjacent window pairs in place and doubles the window
    /// length; an odd trailing window stays as-is. Allocation-free.
    fn coarsen(&mut self) {
        let n = self.windows.len();
        let pairs = n / 2;
        for i in 0..pairs {
            self.windows[i] = self.windows[2 * i].merged_with(&self.windows[2 * i + 1]);
        }
        if n % 2 == 1 {
            self.windows[pairs] = self.windows[n - 1];
        }
        self.windows.truncate(pairs + n % 2);
        self.window_len = self.window_len.saturating_mul(2);
    }

    /// Closes the final (possibly partial) window at `tick`. Idempotent
    /// when nothing advanced since the last boundary.
    pub fn close(
        &mut self,
        tick: u64,
        instructions: u64,
        probe: TimelineProbe,
        gauges: TimelineGauges,
    ) {
        if tick > self.last_tick || self.windows.is_empty() {
            self.record(tick, instructions, probe, gauges);
        }
    }

    /// Closes the final window and attaches the timeline to the global
    /// hub (no-op when none is installed) for `timeline.jsonl` export.
    pub fn finish(
        mut self,
        tick: u64,
        instructions: u64,
        probe: TimelineProbe,
        gauges: TimelineGauges,
    ) {
        self.close(tick, instructions, probe, gauges);
        if let Some(hub) = crate::hub() {
            hub.attach_timeline(self.into_data());
        }
    }

    /// The closed windows recorded so far, oldest first.
    pub fn windows(&self) -> &[Window] {
        &self.windows
    }

    /// Current window length in ticks (doubles on each coarsening).
    pub fn window_len(&self) -> u64 {
        self.window_len
    }

    /// Detaches the recorded data.
    #[must_use]
    pub fn into_data(self) -> TimelineData {
        TimelineData {
            label: self.label,
            unit: self.unit,
            windows: self.windows,
        }
    }
}

thread_local! {
    static RUN_SCOPE: RefCell<Option<String>> = const { RefCell::new(None) };
}

/// Labels every [`Timeline::from_hub`] timeline created on this thread
/// with `scope` (sweep cell key, figure name) until the returned guard
/// drops. No-op — and allocation-free — while telemetry is disabled.
pub fn run_scope(scope: &str) -> RunScopeGuard {
    if !crate::enabled() {
        return RunScopeGuard {
            prev: None,
            armed: false,
        };
    }
    let prev = RUN_SCOPE.with(|s| s.replace(Some(scope.to_string())));
    RunScopeGuard { prev, armed: true }
}

fn current_run_scope<T>(f: impl FnOnce(Option<&str>) -> T) -> T {
    RUN_SCOPE.with(|s| f(s.borrow().as_deref()))
}

/// Restores the previous run scope on drop. See [`run_scope`].
#[derive(Debug)]
pub struct RunScopeGuard {
    prev: Option<String>,
    armed: bool,
}

impl Drop for RunScopeGuard {
    fn drop(&mut self) {
        if self.armed {
            RUN_SCOPE.with(|s| *s.borrow_mut() = self.prev.take());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn probe(accesses: u64, misses: u64, imit_a: u64, imit_b: u64) -> TimelineProbe {
        TimelineProbe {
            accesses,
            hits: accesses - misses,
            misses,
            imitations_a: imit_a,
            imitations_b: imit_b,
            ..TimelineProbe::default()
        }
    }

    #[test]
    fn windows_delta_encode_cumulative_probes() {
        let mut tl = Timeline::new("t".into(), "accesses", 100, 16);
        tl.record(100, 50, probe(100, 10, 4, 0), TimelineGauges::default());
        tl.record(200, 110, probe(200, 40, 4, 9), TimelineGauges::default());
        let w = tl.windows();
        assert_eq!(w.len(), 2);
        assert_eq!((w[0].start_tick, w[0].end_tick), (0, 100));
        assert_eq!(w[0].d.misses, 10);
        assert_eq!(w[1].d.misses, 30, "second window is a delta");
        assert_eq!(w[1].d.imitations_b, 9);
        assert_eq!(w[1].instructions, 60);
    }

    #[test]
    fn due_fires_once_per_window() {
        let tl = Timeline::new("t".into(), "accesses", 100, 16);
        assert!(!tl.due(99));
        assert!(tl.due(100));
        let mut tl = tl;
        tl.record(100, 0, probe(100, 0, 0, 0), TimelineGauges::default());
        assert!(!tl.due(150));
        assert!(tl.due(200));
    }

    #[test]
    fn coarsening_preserves_totals_and_coverage() {
        let mut tl = Timeline::new("t".into(), "accesses", 10, 4);
        for i in 1..=32u64 {
            tl.record(
                i * 10,
                i * 5,
                probe(i * 10, i, i / 2, i - i / 2),
                TimelineGauges::default(),
            );
        }
        let w = tl.windows();
        assert!(w.len() <= 4, "ring stays bounded: {}", w.len());
        assert_eq!(w[0].start_tick, 0, "coverage starts at the beginning");
        assert_eq!(w[w.len() - 1].end_tick, 320, "coverage reaches the end");
        let misses: u64 = w.iter().map(|w| w.d.misses).sum();
        assert_eq!(misses, 32, "coarsening loses no counts");
        let insts: u64 = w.iter().map(|w| w.instructions).sum();
        assert_eq!(insts, 160);
        assert!(tl.window_len() > 10, "window length doubled");
    }

    #[test]
    fn close_is_idempotent_at_boundary() {
        let mut tl = Timeline::new("t".into(), "accesses", 10, 8);
        tl.record(10, 0, probe(10, 1, 0, 0), TimelineGauges::default());
        tl.close(10, 0, probe(10, 1, 0, 0), TimelineGauges::default());
        assert_eq!(tl.windows().len(), 1, "no empty trailing window");
        let mut tl2 = Timeline::new("t".into(), "accesses", 100, 8);
        tl2.close(7, 3, probe(7, 2, 0, 0), TimelineGauges::default());
        assert_eq!(tl2.windows().len(), 1, "short runs still get one window");
        assert_eq!(tl2.windows()[0].d.misses, 2);
    }

    #[test]
    fn jsonl_lines_carry_schema_and_derived_rates() {
        let mut tl = Timeline::new("lab\"el".into(), "accesses", 100, 8);
        tl.record(100, 1000, probe(100, 25, 1, 3), TimelineGauges::default());
        let mut out = String::new();
        tl.into_data().write_jsonl(&mut out);
        assert_eq!(out.lines().count(), 1);
        let line = out.lines().next().unwrap();
        assert!(line.starts_with("{\"schema_version\":1,"), "{line}");
        assert!(
            line.contains("\"run\":\"lab\\\"el\""),
            "label escaped: {line}"
        );
        assert!(line.contains("\"mpki\":25"), "25 misses / 1k insts: {line}");
        assert!(line.contains("\"imit_frac_b\":0.75"), "{line}");
        assert!(line.contains("\"psel\":null"), "{line}");
    }

    #[test]
    fn run_scope_disabled_is_inert() {
        // Telemetry is not installed in unit tests, so the guard must
        // not touch the thread-local.
        let g = run_scope("cell-1");
        current_run_scope(|s| assert!(s.is_none()));
        drop(g);
    }
}
