//! Live sweep-progress registry: cells done/running/failed, per-cell
//! wall times, and an EWMA-based ETA.
//!
//! The supervisor (and any other fan-out driver) registers a sweep with
//! [`sweep`], then reports per-cell lifecycle transitions through the
//! returned [`SweepHandle`]. The registry is process-global and
//! independent of the [`crate::Recorder`] — progress is tracked even
//! with metrics disabled — but when a recorder *is* installed every
//! completion also bumps the `sweep_cells_done_total` /
//! `sweep_cells_failed_total` counters and the `sweep_eta_seconds`
//! gauge, so a Prometheus scrape sees the same story as `/progress`.
//!
//! The ETA is an exponentially weighted moving average of the interval
//! between cell *completions* (α = [`EWMA_ALPHA`]). Measuring
//! completion intervals rather than per-cell wall time makes the
//! estimate concurrency-aware for free: with `W` workers retiring cells,
//! completions arrive `W` times faster and the EWMA converges on the
//! effective per-cell cost of the whole pool.

use crate::json::{number, push_str_escaped};
use std::collections::VecDeque;
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};
use std::time::{Duration, Instant};

/// Schema version stamped on the `/progress` JSON document.
pub const PROGRESS_SCHEMA_VERSION: u32 = 1;

/// Smoothing factor of the completion-interval EWMA.
pub const EWMA_ALPHA: f64 = 0.3;

/// Completed-cell records retained per sweep for the `recent` list.
const RECENT_CAP: usize = 32;

/// Finished sweeps retained in the registry (the live ones are always
/// kept; old finished ones age out oldest-first).
const FINISHED_CAP: usize = 16;

/// How one cell settled, as reported to the registry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CellStatus {
    /// Computed successfully in this run.
    Done,
    /// Skipped because a checkpoint journal proved it complete.
    Resumed,
    /// Failed after all attempts.
    Failed,
    /// Exceeded its deadline on all attempts.
    TimedOut,
}

impl CellStatus {
    /// Stable wire name (`snake_case`).
    pub fn as_str(self) -> &'static str {
        match self {
            CellStatus::Done => "done",
            CellStatus::Resumed => "resumed",
            CellStatus::Failed => "failed",
            CellStatus::TimedOut => "timed_out",
        }
    }
}

#[derive(Debug, Clone)]
struct RecentCell {
    key: String,
    status: CellStatus,
    wall_secs: f64,
}

#[derive(Debug)]
struct SweepState {
    name: String,
    total: u64,
    done: u64,
    resumed: u64,
    failed: u64,
    timed_out: u64,
    retried: u64,
    running: Vec<String>,
    started: Instant,
    last_completion: Option<Instant>,
    ewma_interval_secs: f64,
    recent: VecDeque<RecentCell>,
    finished: bool,
    finished_elapsed_secs: f64,
}

impl SweepState {
    fn completed(&self) -> u64 {
        self.done + self.resumed + self.failed + self.timed_out
    }

    fn elapsed_secs(&self) -> f64 {
        if self.finished {
            self.finished_elapsed_secs
        } else {
            self.started.elapsed().as_secs_f64()
        }
    }

    /// Remaining wall-clock estimate, in seconds.
    ///
    /// * Nothing left (or already finished): `0`.
    /// * At least one completion observed: `EWMA(interval) × remaining`.
    /// * Cells running but none completed yet: the elapsed time of the
    ///   oldest in-flight cell is the best lower bound we have per cell.
    fn eta_secs(&self) -> f64 {
        let remaining = self.total.saturating_sub(self.completed());
        if remaining == 0 || self.finished {
            return 0.0;
        }
        if self.ewma_interval_secs > 0.0 {
            self.ewma_interval_secs * remaining as f64
        } else {
            // No completion yet: assume every remaining cell costs at
            // least what the current run has already spent.
            self.elapsed_secs() * remaining as f64
        }
    }
}

/// A registered sweep; clone freely (all clones share one state).
///
/// Dropping the handle does *not* finish the sweep — call
/// [`SweepHandle::finish`] (or let every cell complete) so `/progress`
/// can distinguish "finished" from "abandoned mid-run".
#[derive(Debug, Clone)]
pub struct SweepHandle {
    state: Arc<Mutex<SweepState>>,
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

impl SweepHandle {
    /// Marks `key` as running.
    pub fn cell_start(&self, key: &str) {
        let mut s = lock(&self.state);
        if !s.running.iter().any(|k| k == key) {
            s.running.push(key.to_string());
        }
    }

    /// Marks `key` as settled with `status` after `wall` of work.
    pub fn cell_finished(&self, key: &str, status: CellStatus, wall: Duration) {
        let name;
        let eta;
        {
            let mut s = lock(&self.state);
            s.running.retain(|k| k != key);
            match status {
                CellStatus::Done => s.done += 1,
                CellStatus::Resumed => s.resumed += 1,
                CellStatus::Failed => s.failed += 1,
                CellStatus::TimedOut => s.timed_out += 1,
            }
            let now = Instant::now();
            let interval = now
                .duration_since(s.last_completion.unwrap_or(s.started))
                .as_secs_f64();
            s.last_completion = Some(now);
            s.ewma_interval_secs = if s.ewma_interval_secs > 0.0 {
                EWMA_ALPHA * interval + (1.0 - EWMA_ALPHA) * s.ewma_interval_secs
            } else {
                interval
            };
            if s.recent.len() == RECENT_CAP {
                s.recent.pop_front();
            }
            s.recent.push_back(RecentCell {
                key: key.to_string(),
                status,
                wall_secs: wall.as_secs_f64(),
            });
            name = s.name.clone();
            eta = s.eta_secs();
        }
        if crate::enabled() {
            let counter = match status {
                CellStatus::Done | CellStatus::Resumed => "sweep_cells_done_total",
                CellStatus::Failed => "sweep_cells_failed_total",
                CellStatus::TimedOut => "sweep_cells_timed_out_total",
            };
            crate::counter_add_labeled(counter, &name, 1);
            crate::gauge_set_labeled("sweep_eta_seconds", &name, eta);
        }
    }

    /// Records `extra` additional attempts beyond the first for one cell.
    pub fn cell_retried(&self, extra: u32) {
        if extra == 0 {
            return;
        }
        let name = {
            let mut s = lock(&self.state);
            s.retried += u64::from(extra);
            s.name.clone()
        };
        if crate::enabled() {
            crate::counter_add_labeled("sweep_cell_retries_total", &name, u64::from(extra));
        }
    }

    /// Marks the sweep finished (freezes `elapsed`, zeroes the ETA).
    pub fn finish(&self) {
        let mut s = lock(&self.state);
        if !s.finished {
            s.finished = true;
            s.finished_elapsed_secs = s.started.elapsed().as_secs_f64();
            s.running.clear();
        }
    }

    /// Point-in-time view of this sweep.
    pub fn snapshot(&self) -> SweepSnapshot {
        snapshot_of(&lock(&self.state))
    }
}

/// Point-in-time view of one sweep, as served by `/progress`.
#[derive(Debug, Clone)]
pub struct SweepSnapshot {
    /// Sweep name (journal stem, bench mode, ...).
    pub name: String,
    /// Total cells in the sweep.
    pub total: u64,
    /// Cells computed successfully in this run.
    pub done: u64,
    /// Cells restored from a checkpoint journal.
    pub resumed: u64,
    /// Cells that failed after all attempts.
    pub failed: u64,
    /// Cells that exceeded their deadline on all attempts.
    pub timed_out: u64,
    /// Extra attempts consumed beyond each cell's first.
    pub retried: u64,
    /// Keys currently running.
    pub running: Vec<String>,
    /// Wall-clock seconds since the sweep was registered (frozen at
    /// [`SweepHandle::finish`]).
    pub elapsed_secs: f64,
    /// EWMA of the interval between cell completions, in seconds.
    pub ewma_cell_secs: f64,
    /// Estimated seconds until the last cell settles (0 when finished).
    pub eta_secs: f64,
    /// Whether the sweep was marked finished.
    pub finished: bool,
    /// The most recently settled cells (key, status, wall seconds).
    pub recent: Vec<(String, CellStatus, f64)>,
}

impl SweepSnapshot {
    /// Cells settled so far (done + resumed + failed + timed out).
    pub fn completed(&self) -> u64 {
        self.done + self.resumed + self.failed + self.timed_out
    }
}

fn snapshot_of(s: &SweepState) -> SweepSnapshot {
    SweepSnapshot {
        name: s.name.clone(),
        total: s.total,
        done: s.done,
        resumed: s.resumed,
        failed: s.failed,
        timed_out: s.timed_out,
        retried: s.retried,
        running: s.running.clone(),
        elapsed_secs: s.elapsed_secs(),
        ewma_cell_secs: s.ewma_interval_secs,
        eta_secs: s.eta_secs(),
        finished: s.finished,
        recent: s
            .recent
            .iter()
            .map(|r| (r.key.clone(), r.status, r.wall_secs))
            .collect(),
    }
}

fn registry() -> &'static Mutex<Vec<Arc<Mutex<SweepState>>>> {
    static REGISTRY: OnceLock<Mutex<Vec<Arc<Mutex<SweepState>>>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Vec::new()))
}

/// Registers a sweep of `total` cells under `name` and returns its
/// reporting handle. Re-registering a *finished* sweep of the same name
/// replaces it (a re-run starts a fresh progress story); a still-live
/// sweep of the same name is left alone and the new one is simply
/// appended, so overlapping sweeps never clobber each other.
pub fn sweep(name: &str, total: u64) -> SweepHandle {
    let state = Arc::new(Mutex::new(SweepState {
        name: name.to_string(),
        total,
        done: 0,
        resumed: 0,
        failed: 0,
        timed_out: 0,
        retried: 0,
        running: Vec::new(),
        started: Instant::now(),
        last_completion: None,
        ewma_interval_secs: 0.0,
        recent: VecDeque::new(),
        finished: false,
        finished_elapsed_secs: 0.0,
    }));
    let mut reg = lock(registry());
    reg.retain(|s| {
        let s = lock(s);
        !(s.finished && s.name == name)
    });
    // Bound unbounded growth from long-lived processes registering many
    // sweeps: age out the oldest finished entries beyond the cap.
    let finished: Vec<usize> = reg
        .iter()
        .enumerate()
        .filter(|(_, s)| lock(s).finished)
        .map(|(i, _)| i)
        .collect();
    if finished.len() > FINISHED_CAP {
        for &i in finished[..finished.len() - FINISHED_CAP].iter().rev() {
            reg.remove(i);
        }
    }
    reg.push(Arc::clone(&state));
    if crate::enabled() {
        crate::gauge_set_labeled("sweep_cells_total", name, total as f64);
    }
    SweepHandle { state }
}

/// Snapshots of every registered sweep, oldest first.
pub fn snapshot() -> Vec<SweepSnapshot> {
    lock(registry())
        .iter()
        .map(|s| snapshot_of(&lock(s)))
        .collect()
}

/// Clears the registry (test isolation only).
pub fn clear() {
    lock(registry()).clear();
}

/// The `/progress` document: every registered sweep as one JSON object.
pub fn to_json() -> String {
    let sweeps = snapshot();
    let mut out = String::with_capacity(512);
    out.push_str("{\"schema_version\":");
    out.push_str(&PROGRESS_SCHEMA_VERSION.to_string());
    out.push_str(",\"sweeps\":[");
    for (i, s) in sweeps.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"name\":");
        push_str_escaped(&mut out, &s.name);
        out.push_str(&format!(
            ",\"total\":{},\"done\":{},\"resumed\":{},\"failed\":{},\
             \"timed_out\":{},\"retried\":{},\"completed\":{}",
            s.total,
            s.done,
            s.resumed,
            s.failed,
            s.timed_out,
            s.retried,
            s.completed()
        ));
        out.push_str(",\"running\":[");
        for (j, key) in s.running.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            push_str_escaped(&mut out, key);
        }
        out.push(']');
        out.push_str(",\"elapsed_secs\":");
        out.push_str(&number(s.elapsed_secs));
        out.push_str(",\"ewma_cell_secs\":");
        out.push_str(&number(s.ewma_cell_secs));
        out.push_str(",\"eta_secs\":");
        out.push_str(&number(s.eta_secs));
        out.push_str(",\"finished\":");
        out.push_str(if s.finished { "true" } else { "false" });
        out.push_str(",\"recent\":[");
        for (j, (key, status, wall)) in s.recent.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push_str("{\"key\":");
            push_str_escaped(&mut out, key);
            out.push_str(",\"status\":");
            push_str_escaped(&mut out, status.as_str());
            out.push_str(",\"wall_secs\":");
            out.push_str(&number(*wall));
            out.push('}');
        }
        out.push_str("]}");
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    // The registry is process-global; tests share it, so every test uses
    // a unique sweep name and asserts through its own handle.

    #[test]
    fn lifecycle_counts_and_eta() {
        let h = sweep("t_lifecycle", 4);
        h.cell_start("a");
        h.cell_start("b");
        let snap = h.snapshot();
        assert_eq!(snap.running, vec!["a".to_string(), "b".to_string()]);
        assert_eq!(snap.completed(), 0);
        assert!(!snap.finished);

        h.cell_finished("a", CellStatus::Done, Duration::from_millis(10));
        let snap = h.snapshot();
        assert_eq!(snap.done, 1);
        assert_eq!(snap.running, vec!["b".to_string()]);
        assert!(
            snap.eta_secs > 0.0,
            "3 cells remain after a completion: ETA must be nonzero"
        );
        assert!(snap.ewma_cell_secs > 0.0);

        h.cell_finished("b", CellStatus::Failed, Duration::from_millis(5));
        h.cell_finished("c", CellStatus::Resumed, Duration::ZERO);
        h.cell_finished("d", CellStatus::TimedOut, Duration::from_millis(1));
        let snap = h.snapshot();
        assert_eq!(
            (snap.done, snap.resumed, snap.failed, snap.timed_out),
            (1, 1, 1, 1)
        );
        assert_eq!(snap.completed(), 4);
        assert_eq!(snap.eta_secs, 0.0, "nothing remains");

        h.finish();
        let snap = h.snapshot();
        assert!(snap.finished);
        assert!(snap.running.is_empty());
    }

    #[test]
    fn eta_before_first_completion_uses_elapsed() {
        let h = sweep("t_eta_cold", 10);
        h.cell_start("only");
        std::thread::sleep(Duration::from_millis(5));
        let snap = h.snapshot();
        assert!(
            snap.eta_secs > 0.0,
            "running cells but no completion: ETA falls back to elapsed, got {}",
            snap.eta_secs
        );
    }

    #[test]
    fn retries_accumulate() {
        let h = sweep("t_retry", 1);
        h.cell_retried(0);
        h.cell_retried(2);
        h.cell_retried(1);
        assert_eq!(h.snapshot().retried, 3);
    }

    #[test]
    fn rerun_replaces_finished_sweep_of_same_name() {
        let h1 = sweep("t_rerun", 2);
        h1.cell_finished("x", CellStatus::Done, Duration::ZERO);
        h1.finish();
        let _h2 = sweep("t_rerun", 5);
        let snaps: Vec<_> = snapshot()
            .into_iter()
            .filter(|s| s.name == "t_rerun")
            .collect();
        assert_eq!(snaps.len(), 1, "finished run replaced");
        assert_eq!(snaps[0].total, 5);
        assert_eq!(snaps[0].done, 0);
    }

    #[test]
    fn live_sweep_of_same_name_is_not_clobbered() {
        let h1 = sweep("t_live", 2);
        h1.cell_start("going");
        let _h2 = sweep("t_live", 3);
        let snaps: Vec<_> = snapshot()
            .into_iter()
            .filter(|s| s.name == "t_live")
            .collect();
        assert_eq!(snaps.len(), 2, "live sweep survives re-registration");
    }

    #[test]
    fn progress_json_is_well_formed() {
        let h = sweep("t_json \"quoted\"", 3);
        h.cell_start("cell/one");
        h.cell_finished("cell/one", CellStatus::Done, Duration::from_millis(3));
        let text = to_json();
        assert!(text.starts_with("{\"schema_version\":1,\"sweeps\":["));
        assert!(text.contains("\"t_json \\\"quoted\\\"\""), "{text}");
        assert!(text.contains("\"status\":\"done\""));
        assert!(text.ends_with("]}"));
    }

    #[test]
    fn recent_list_is_bounded() {
        let h = sweep("t_bounded", 1000);
        for i in 0..100 {
            h.cell_finished(&format!("c{i}"), CellStatus::Done, Duration::ZERO);
        }
        let snap = h.snapshot();
        assert_eq!(snap.recent.len(), RECENT_CAP);
        assert_eq!(snap.recent.last().unwrap().0, "c99");
        assert_eq!(snap.done, 100);
    }
}
