//! Wall-clock spans that become Chrome `trace_event` timeline entries.

use std::sync::OnceLock;
use std::time::Instant;

static EPOCH: OnceLock<Instant> = OnceLock::new();

/// Microseconds since the process telemetry epoch (the first call to any
/// timing helper in this crate).
pub fn now_us() -> u64 {
    let epoch = *EPOCH.get_or_init(Instant::now);
    epoch.elapsed().as_micros() as u64
}

/// A completed span: a named interval on some thread's timeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Span name (e.g. the figure or sweep-cell key).
    pub name: String,
    /// Category, used to group spans in the trace viewer and in
    /// summaries (`"figure"`, `"cell"`, `"run"`, ...).
    pub cat: &'static str,
    /// Start, in µs since the telemetry epoch.
    pub ts_us: u64,
    /// Duration in µs.
    pub dur_us: u64,
    /// An opaque thread identifier (stable within the process).
    pub tid: u64,
    /// Attached key/value attributes (exported as Chrome trace `args`),
    /// e.g. whether a sweep cell skipped the front-end via replay.
    pub args: Vec<(&'static str, String)>,
}

/// An open span; records itself through the global recorder on drop.
///
/// Construct through [`crate::span`] — when no recorder is installed the
/// guard is inert and carries no allocation.
#[derive(Debug)]
pub struct Span {
    live: Option<LiveSpan>,
}

#[derive(Debug)]
struct LiveSpan {
    name: String,
    cat: &'static str,
    ts_us: u64,
    start: Instant,
    args: Vec<(&'static str, String)>,
}

impl Span {
    pub(crate) fn disabled() -> Span {
        Span { live: None }
    }

    pub(crate) fn live(cat: &'static str, name: String) -> Span {
        Span {
            live: Some(LiveSpan {
                name,
                cat,
                ts_us: now_us(),
                start: Instant::now(),
                args: Vec::new(),
            }),
        }
    }

    /// Whether this span will record on drop.
    pub fn is_recording(&self) -> bool {
        self.live.is_some()
    }

    /// Attaches a key/value attribute to the span (a no-op — and
    /// allocation-free, since `value` is lazy — on a disabled span).
    pub fn set_attr(&mut self, key: &'static str, value: impl FnOnce() -> String) {
        if let Some(live) = self.live.as_mut() {
            live.args.push((key, value()));
        }
    }

    /// Closes the span early (equivalent to dropping it).
    pub fn finish(self) {}
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(live) = self.live.take() {
            let record = SpanRecord {
                name: live.name,
                cat: live.cat,
                ts_us: live.ts_us,
                dur_us: live.start.elapsed().as_micros() as u64,
                tid: thread_id(),
                args: live.args,
            };
            if let Some(r) = crate::recorder() {
                r.span_record(record);
            }
        }
    }
}

/// A stable per-thread identifier derived from `std::thread::ThreadId`.
fn thread_id() -> u64 {
    // ThreadId has no stable integer accessor; its Debug form
    // (`ThreadId(N)`) does contain one. Fall back to 0 if the format
    // ever changes — the trace merely loses per-thread lanes.
    let s = format!("{:?}", std::thread::current().id());
    s.bytes()
        .filter(u8::is_ascii_digit)
        .fold(0u64, |acc, d| acc.wrapping_mul(10) + u64::from(d - b'0'))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_is_monotonic() {
        let a = now_us();
        let b = now_us();
        assert!(b >= a);
    }

    #[test]
    fn disabled_span_is_inert() {
        let mut s = Span::disabled();
        assert!(!s.is_recording());
        s.set_attr("key", || {
            panic!("attr value must not be built while disabled")
        });
        s.finish();
    }

    #[test]
    fn live_span_collects_attrs() {
        let mut s = Span::live("test", "named".into());
        s.set_attr("frontend_skipped", || "true".into());
        let live = s.live.as_ref().unwrap();
        assert_eq!(live.args, vec![("frontend_skipped", "true".to_string())]);
        // No recorder installed in unit tests: dropping discards.
    }

    #[test]
    fn thread_ids_are_nonzero_and_stable() {
        let a = thread_id();
        let b = thread_id();
        assert_eq!(a, b);
        assert!(a > 0);
    }
}
