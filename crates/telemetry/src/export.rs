//! Exporters: Prometheus text exposition, Chrome `trace_event` JSON,
//! and the per-run summary document.

use crate::json::{number, push_str_escaped};
use crate::metrics::HistogramSnapshot;
use crate::Telemetry;
use std::fmt::Write;

/// Reduces a metric name to the Prometheus charset
/// (`[a-zA-Z_][a-zA-Z0-9_]*`) and prefixes the workspace namespace.
fn prom_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 3);
    out.push_str("ac_");
    for (i, c) in name.chars().enumerate() {
        if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
            if i == 0 && c.is_ascii_digit() {
                out.push('_');
            }
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

/// Schema version stamped on `telemetry-summary.json`. Version 1 had
/// no `schema_version` field.
pub const SUMMARY_SCHEMA_VERSION: u32 = 2;

/// Escapes a Prometheus label value per the text exposition format:
/// backslash, double quote and line feed become `\\`, `\"` and `\n`.
/// Single pass, so a backslash introduced by one rule can never be
/// re-escaped by another.
fn prom_label_value(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

impl Telemetry {
    /// Prometheus text exposition of every counter, gauge and histogram.
    pub fn prometheus(&self) -> String {
        let mut out = String::new();
        for (name, by_label) in self.counters() {
            let pname = prom_name(name);
            let _ = writeln!(out, "# TYPE {pname} counter");
            for (label, value) in by_label {
                if label.is_empty() {
                    let _ = writeln!(out, "{pname} {value}");
                } else {
                    let _ = writeln!(
                        out,
                        "{pname}{{label=\"{}\"}} {value}",
                        prom_label_value(&label)
                    );
                }
            }
        }
        for (name, by_label) in self.gauges() {
            let pname = prom_name(name);
            let _ = writeln!(out, "# TYPE {pname} gauge");
            for (label, value) in by_label {
                if label.is_empty() {
                    let _ = writeln!(out, "{pname} {}", number(value));
                } else {
                    let _ = writeln!(
                        out,
                        "{pname}{{label=\"{}\"}} {}",
                        prom_label_value(&label),
                        number(value)
                    );
                }
            }
        }
        for (name, h) in self.histograms() {
            let pname = prom_name(name);
            let _ = writeln!(out, "# TYPE {pname} histogram");
            let mut cumulative = 0u64;
            for (i, &c) in h.buckets.iter().enumerate() {
                if c == 0 {
                    continue;
                }
                cumulative += c;
                let _ = writeln!(
                    out,
                    "{pname}_bucket{{le=\"{}\"}} {cumulative}",
                    HistogramSnapshot::upper_bound(i)
                );
            }
            let _ = writeln!(out, "{pname}_bucket{{le=\"+Inf\"}} {}", h.count);
            let _ = writeln!(out, "{pname}_sum {}", h.sum);
            let _ = writeln!(out, "{pname}_count {}", h.count);
        }
        out
    }

    /// Chrome `trace_event` JSON (load via `chrome://tracing` or
    /// <https://ui.perfetto.dev>): one complete (`"ph":"X"`) event per
    /// recorded span.
    pub fn chrome_trace(&self) -> String {
        let pid = std::process::id();
        let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
        for (i, s) in self.spans().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"name\":");
            push_str_escaped(&mut out, &s.name);
            out.push_str(",\"cat\":");
            push_str_escaped(&mut out, s.cat);
            let _ = write!(
                out,
                ",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":{pid},\"tid\":{}",
                s.ts_us, s.dur_us, s.tid
            );
            if !s.args.is_empty() {
                out.push_str(",\"args\":{");
                for (j, (k, v)) in s.args.iter().enumerate() {
                    if j > 0 {
                        out.push(',');
                    }
                    push_str_escaped(&mut out, k);
                    out.push(':');
                    push_str_escaped(&mut out, v);
                }
                out.push('}');
            }
            out.push('}');
        }
        out.push_str("]}");
        out
    }

    /// The per-run summary document (`telemetry-summary.json`):
    /// counters, gauges, histogram digests, span totals and event-stream
    /// statistics.
    pub fn summary_json(&self) -> String {
        let mut out = String::from("{");
        let _ = write!(out, "\"schema_version\":{SUMMARY_SCHEMA_VERSION},");

        out.push_str("\"counters\":{");
        let counters = self.counters();
        for (i, (name, by_label)) in counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_str_escaped(&mut out, name);
            out.push_str(":{");
            for (j, (label, value)) in by_label.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                push_str_escaped(&mut out, label);
                let _ = write!(out, ":{value}");
            }
            out.push('}');
        }
        out.push_str("},");

        out.push_str("\"gauges\":{");
        let gauges = self.gauges();
        for (i, (name, by_label)) in gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_str_escaped(&mut out, name);
            out.push_str(":{");
            for (j, (label, value)) in by_label.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                push_str_escaped(&mut out, label);
                let _ = write!(out, ":{}", number(*value));
            }
            out.push('}');
        }
        out.push_str("},");

        out.push_str("\"histograms\":{");
        let histograms = self.histograms();
        for (i, (name, h)) in histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_str_escaped(&mut out, name);
            let _ = write!(
                out,
                ":{{\"count\":{},\"sum\":{},\"max\":{},\"mean\":{}}}",
                h.count,
                h.sum,
                h.max,
                number(h.mean())
            );
        }
        out.push_str("},");

        out.push_str("\"spans\":{");
        for (i, (name, cat, count, total_us)) in self.span_totals().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_str_escaped(&mut out, name);
            out.push_str(":{\"cat\":");
            push_str_escaped(&mut out, cat);
            let _ = write!(out, ",\"count\":{count},\"total_us\":{total_us}}}");
        }
        out.push_str("},");

        let [e, w, inf, d] = self.log_counts();
        let _ = write!(
            out,
            "\"log\":{{\"error\":{e},\"warn\":{w},\"info\":{inf},\"debug\":{d}}},"
        );

        let _ = write!(
            out,
            "\"events\":{{\"seen\":{},\"recorded\":{},\"sample_rate\":{}}}",
            self.events_seen(),
            self.events_recorded(),
            self.config().sample_rate
        );
        out.push('}');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Comp, DecisionEvent, EvictionCase, Recorder, SpanRecord, TelemetryConfig};

    fn hub_with_data() -> Telemetry {
        let t = Telemetry::new(TelemetryConfig::default());
        t.counter_add("misses_total", "LRU (512KB)", 42);
        t.counter_add("cells_total", "ok", 3);
        t.gauge_set("sample_rate", "", 1.0);
        t.histogram_record("cell_wall_time_us", 700);
        t.histogram_record("cell_wall_time_us", 1500);
        t.span_record(SpanRecord {
            name: "fig03".into(),
            cat: "figure",
            ts_us: 5,
            dur_us: 100,
            tid: 7,
            args: vec![("frontend_skipped", "true".to_string())],
        });
        t.decision(DecisionEvent::Imitation {
            set: 1,
            component: Comp::B,
            case: EvictionCase::NotInShadow,
        });
        t
    }

    #[test]
    fn prometheus_exposition_shape() {
        let text = hub_with_data().prometheus();
        assert!(text.contains("# TYPE ac_misses_total counter"));
        assert!(text.contains("ac_misses_total{label=\"LRU (512KB)\"} 42"));
        assert!(text.contains("# TYPE ac_sample_rate gauge"));
        assert!(text.contains("ac_sample_rate 1"));
        assert!(text.contains("# TYPE ac_cell_wall_time_us histogram"));
        assert!(text.contains("ac_cell_wall_time_us_bucket{le=\"1024\"} 1"));
        assert!(text.contains("ac_cell_wall_time_us_bucket{le=\"2048\"} 2"));
        assert!(text.contains("ac_cell_wall_time_us_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("ac_cell_wall_time_us_sum 2200"));
        assert!(text.contains("ac_cell_wall_time_us_count 2"));
    }

    #[test]
    fn prom_names_are_sanitised() {
        assert_eq!(prom_name("cell wall-time.us"), "ac_cell_wall_time_us");
        assert_eq!(prom_name("9lives"), "ac__9lives");
    }

    #[test]
    fn prom_label_values_escape_hostile_strings() {
        // The three characters the exposition format requires escaped.
        assert_eq!(prom_label_value("back\\slash"), "back\\\\slash");
        assert_eq!(prom_label_value("quo\"te"), "quo\\\"te");
        assert_eq!(prom_label_value("new\nline"), "new\\nline");
        // Order-sensitivity trap: escaping `\` after `"` (or any
        // multi-pass scheme) would double-escape the backslash the
        // quote rule introduced. `\"` must stay exactly `\\\"`.
        assert_eq!(prom_label_value("\\\""), "\\\\\\\"");
        assert_eq!(prom_label_value("a\\n"), "a\\\\n", "literal backslash-n");
        // End to end: a hostile label can never break a sample line.
        let t = Telemetry::new(TelemetryConfig::default());
        t.counter_add("hostile_total", "evil \"label\"\nwith \\ tricks", 1);
        let text = t.prometheus();
        let line = text
            .lines()
            .find(|l| l.starts_with("ac_hostile_total{"))
            .expect("hostile counter line present");
        assert_eq!(
            line,
            "ac_hostile_total{label=\"evil \\\"label\\\"\\nwith \\\\ tricks\"} 1"
        );
        assert_eq!(
            text.lines().filter(|l| l.contains("hostile")).count(),
            2,
            "TYPE line + one unbroken sample line"
        );
    }

    #[test]
    fn chrome_trace_is_valid_shape() {
        let text = hub_with_data().chrome_trace();
        assert!(text.starts_with("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["));
        assert!(text.contains("\"name\":\"fig03\""));
        assert!(text.contains("\"ph\":\"X\""));
        assert!(
            text.contains("\"args\":{\"frontend_skipped\":\"true\"}"),
            "span attrs exported: {text}"
        );
        assert!(text.ends_with("]}"));
    }

    #[test]
    fn summary_mentions_every_section() {
        let text = hub_with_data().summary_json();
        for key in [
            "\"counters\"",
            "\"gauges\"",
            "\"histograms\"",
            "\"spans\"",
            "\"log\"",
            "\"events\"",
        ] {
            assert!(text.contains(key), "missing {key} in {text}");
        }
        assert!(text.contains("\"recorded\":1"));
    }
}
