//! # ac-telemetry — observability for the adaptive-caches workspace
//!
//! A zero-dependency, near-zero-overhead-when-disabled observability
//! layer. It provides:
//!
//! * **metrics** — monotonic counters, gauges and log2-bucketed
//!   histograms behind the [`Recorder`] trait (no-op by default),
//! * **spans** — RAII wall-clock timers ([`span`]) that become Chrome
//!   `trace_event` timeline entries,
//! * **decision events** — a sampled structured stream
//!   ([`DecisionEvent`]) of adaptive-cache choices (per-set imitation,
//!   exclusive-miss history updates, SBAR leader votes, DIP duel votes),
//!   kept in an in-memory ring buffer and optionally streamed to a JSONL
//!   sink,
//! * **exporters** — Prometheus text exposition (`metrics.prom`), Chrome
//!   `trace_event` JSON (`trace.json`) and a per-run
//!   `telemetry-summary.json`,
//! * **leveled logging** — [`error!`]/[`warn!`]/[`info!`]/[`debug!`]
//!   macros gated by the `AC_LOG` environment variable.
//!
//! ## Off by default, one atomic load when disabled
//!
//! Nothing records until a recorder is installed ([`Telemetry::install`]
//! or [`init_from_env`]). Every instrumentation entry point first checks
//! a relaxed [`AtomicBool`]; with no recorder installed the entire call
//! is a load + branch and **never allocates** (guarded by the
//! `noop_alloc` test). Decision-event closures are not even invoked.
//!
//! ## Environment control
//!
//! * `AC_TELEMETRY` — `0`/unset: disabled; `1`/`true`/`yes`: enabled
//!   with artifacts under `results/`; any other value: enabled with
//!   artifacts under that directory.
//! * `AC_TELEMETRY_SAMPLE` — decision-event sampling rate (record one
//!   event in `N`; `0` disables the event stream; default 64 from the
//!   environment, [`TelemetryConfig::default`] uses 1).
//! * `AC_LOG` — `error`, `warn`, `info` (default) or `debug`.
//!
//! ## Example
//!
//! ```
//! use ac_telemetry::{Telemetry, TelemetryConfig, Recorder, DecisionEvent, Comp, EvictionCase};
//!
//! let hub = Telemetry::new(TelemetryConfig::default());
//! hub.counter_add("cache_misses_total", "LRU", 3);
//! hub.histogram_record("cell_wall_time_us", 1500);
//! hub.decision(DecisionEvent::Imitation {
//!     set: 7,
//!     component: Comp::A,
//!     case: EvictionCase::SameVictim,
//! });
//! assert_eq!(hub.events().len(), 1);
//! assert!(hub.prometheus().contains("ac_cache_misses_total"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod event;
mod export;
pub mod heatmap;
mod hub;
mod json;
mod logging;
mod metrics;
pub mod progress;
pub mod serve;
mod span;
pub mod timeline;

pub use event::{Comp, DecisionEvent, EventRecord, EvictionCase, EVENTS_SCHEMA_VERSION};
pub use export::SUMMARY_SCHEMA_VERSION;
pub use hub::{Telemetry, TelemetryConfig, DEFAULT_ENV_SAMPLE_RATE, DEFAULT_RING_CAPACITY};
pub use logging::{log_stderr, max_level, Level};
pub use metrics::{HistogramSnapshot, LOG2_BUCKETS};
pub use span::{now_us, Span, SpanRecord};
pub use timeline::{Timeline, TimelineData, TimelineGauges, TimelineProbe};

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;

/// The sink instrumentation reports into.
///
/// The default state of the process is "no recorder": every helper in
/// this crate is a no-op until one is installed. [`Telemetry`] is the
/// batteries-included implementation; custom recorders (test probes,
/// alternative backends) only need this trait.
pub trait Recorder: Send + Sync {
    /// Adds `delta` to the monotonic counter `name`, dimensioned by
    /// `label` (use `""` for an unlabelled counter).
    fn counter_add(&self, name: &'static str, label: &str, delta: u64);

    /// Sets the gauge `name` (dimensioned by `label`) to `value`.
    fn gauge_set(&self, name: &'static str, label: &str, value: f64);

    /// Records `value` into the log2-bucketed histogram `name`.
    fn histogram_record(&self, name: &'static str, value: u64);

    /// Records a completed span.
    fn span_record(&self, span: SpanRecord);

    /// Offers one decision event to the (sampled) event stream.
    fn decision(&self, event: DecisionEvent);

    /// Whether the decision-event stream is live (sampling rate > 0).
    /// Instrumentation skips event construction entirely when false.
    fn events_enabled(&self) -> bool {
        false
    }

    /// Notifies the recorder that a log line of `level` was emitted.
    fn log_emitted(&self, _level: Level) {}
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static EVENTS: AtomicBool = AtomicBool::new(false);
static RECORDER: OnceLock<&'static dyn Recorder> = OnceLock::new();
static HUB: OnceLock<&'static Telemetry> = OnceLock::new();

/// Installs `recorder` as the process-global sink.
///
/// Returns `Err(recorder)` if a recorder was already installed (the
/// global can be set once per process, like a logger).
pub fn set_recorder(recorder: Box<dyn Recorder>) -> Result<(), Box<dyn Recorder>> {
    // Leak deliberately: the recorder lives for the rest of the process,
    // exactly like `log::set_boxed_logger`.
    let leaked: &'static dyn Recorder = Box::leak(recorder);
    match RECORDER.set(leaked) {
        Ok(()) => {
            EVENTS.store(leaked.events_enabled(), Ordering::Release);
            ENABLED.store(true, Ordering::Release);
            Ok(())
        }
        // The leaked box cannot be reboxed without unsafe; losing a
        // second, rejected recorder is acceptable (install races are
        // programming errors surfaced by the Err).
        Err(_) => Err(Box::new(NoopRecorder)),
    }
}

/// Whether any recorder is installed. One relaxed load.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Whether the decision-event stream is live. One relaxed load; when
/// false, [`decision`] does not even construct the event.
#[inline]
pub fn events_enabled() -> bool {
    EVENTS.load(Ordering::Relaxed)
}

/// The installed recorder, if any.
#[inline]
pub fn recorder() -> Option<&'static dyn Recorder> {
    if enabled() {
        RECORDER.get().copied()
    } else {
        None
    }
}

/// The installed [`Telemetry`] hub, when the global recorder was
/// installed through [`Telemetry::install`] / [`init_from_env`] (a
/// custom [`set_recorder`] sink is reachable only as `dyn Recorder`).
#[inline]
pub fn hub() -> Option<&'static Telemetry> {
    HUB.get().copied()
}

pub(crate) fn set_hub(hub: &'static Telemetry) {
    let _ = HUB.set(hub);
}

/// Installs a [`Telemetry`] hub if the `AC_TELEMETRY` environment
/// variable asks for one. Returns the hub when telemetry is active
/// (whether installed now or by an earlier call).
pub fn init_from_env() -> Option<&'static Telemetry> {
    if let Some(h) = hub() {
        return Some(h);
    }
    let cfg = TelemetryConfig::from_env()?;
    Telemetry::install(cfg).ok()
}

/// Writes the installed hub's artifacts *now* (ignoring errors): the
/// supervisor's failure paths call this so a panicking or timed-out
/// sweep cell still leaves crash-current `telemetry-summary.json` /
/// `metrics.prom` on disk. No-op without a hub or artifact directory.
pub fn flush_now() {
    if let Some(h) = hub() {
        if let Err(e) = h.write_artifacts() {
            warn!("telemetry: mid-run flush failed: {e}");
        }
    }
}

/// Adds `delta` to counter `name` (label `""`) on the global recorder.
#[inline]
pub fn counter_add(name: &'static str, delta: u64) {
    if let Some(r) = recorder() {
        r.counter_add(name, "", delta);
    }
}

/// Adds `delta` to counter `name` dimensioned by `label`.
#[inline]
pub fn counter_add_labeled(name: &'static str, label: &str, delta: u64) {
    if let Some(r) = recorder() {
        r.counter_add(name, label, delta);
    }
}

/// Sets gauge `name` (label `""`) on the global recorder.
#[inline]
pub fn gauge_set(name: &'static str, value: f64) {
    if let Some(r) = recorder() {
        r.gauge_set(name, "", value);
    }
}

/// Sets gauge `name` dimensioned by `label`.
#[inline]
pub fn gauge_set_labeled(name: &'static str, label: &str, value: f64) {
    if let Some(r) = recorder() {
        r.gauge_set(name, label, value);
    }
}

/// Records `value` into histogram `name` on the global recorder.
#[inline]
pub fn histogram_record(name: &'static str, value: u64) {
    if let Some(r) = recorder() {
        r.histogram_record(name, value);
    }
}

/// Offers a decision event to the global stream. The closure runs only
/// when the stream is live, so disabled-mode cost is one load + branch.
#[inline]
pub fn decision(f: impl FnOnce() -> DecisionEvent) {
    if events_enabled() {
        if let Some(r) = recorder() {
            r.decision(f());
        }
    }
}

/// Opens a wall-clock span of category `cat`; the name closure runs only
/// when a recorder is installed. The span records itself on drop.
#[inline]
pub fn span(cat: &'static str, name: impl FnOnce() -> String) -> Span {
    if enabled() {
        Span::live(cat, name())
    } else {
        Span::disabled()
    }
}

/// A recorder that drops everything (the implicit default state).
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopRecorder;

impl Recorder for NoopRecorder {
    fn counter_add(&self, _: &'static str, _: &str, _: u64) {}
    fn gauge_set(&self, _: &'static str, _: &str, _: f64) {}
    fn histogram_record(&self, _: &'static str, _: u64) {}
    fn span_record(&self, _: SpanRecord) {}
    fn decision(&self, _: DecisionEvent) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    // NOTE: the global recorder is install-once per process, so these
    // unit tests exercise only the *uninstalled* fast path plus
    // instance-level APIs; global-install behaviour is covered by the
    // workspace integration tests (`tests/telemetry.rs`), which run in
    // their own process.

    #[test]
    fn noop_helpers_do_not_panic_without_recorder() {
        counter_add("x_total", 1);
        counter_add_labeled("y_total", "lbl", 2);
        gauge_set("g", 1.5);
        histogram_record("h_us", 1024);
        decision(|| panic!("decision closure must not run while disabled"));
        let s = span("test", || {
            panic!("span name must not be built while disabled")
        });
        drop(s);
    }

    #[test]
    fn noop_recorder_discards() {
        let r = NoopRecorder;
        r.counter_add("a", "", 1);
        r.decision(DecisionEvent::HistoryUpdate {
            set: 0,
            a_missed: true,
            b_missed: false,
        });
        assert!(!r.events_enabled());
    }
}
