//! Counter/gauge/histogram primitives.

/// Number of log2 buckets a [`Histogram`] keeps (values up to 2^63,
/// plus a bucket for 0).
pub const LOG2_BUCKETS: usize = 65;

/// A log2-bucketed histogram: bucket `i` counts values `v` with
/// `2^(i-1) < v <= 2^i` (bucket 0 counts zeros). Fixed-size, allocation
/// free after construction.
#[derive(Debug, Clone)]
pub struct Histogram {
    pub(crate) buckets: [u64; LOG2_BUCKETS],
    pub(crate) count: u64,
    pub(crate) sum: u64,
    pub(crate) max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [0; LOG2_BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }
}

impl Histogram {
    /// The bucket index for `value`.
    pub(crate) fn bucket_of(value: u64) -> usize {
        if value == 0 {
            0
        } else {
            // ceil(log2(value)) + 1 clamped into the table:
            // 1 -> bucket 1 (le 1), 2 -> 2 (le 2), 3..4 -> 3 (le 4), ...
            (64 - (value - 1).leading_zeros() as usize + 1).min(LOG2_BUCKETS - 1)
        }
    }

    /// Records one value.
    pub fn record(&mut self, value: u64) {
        self.buckets[Self::bucket_of(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.max = self.max.max(value);
    }

    /// An immutable snapshot for exporters.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: self.buckets,
            count: self.count,
            sum: self.sum,
            max: self.max,
        }
    }
}

/// A point-in-time copy of a [`Histogram`]'s state.
#[derive(Debug, Clone)]
pub struct HistogramSnapshot {
    /// Per-bucket counts (see [`LOG2_BUCKETS`]).
    pub buckets: [u64; LOG2_BUCKETS],
    /// Total recorded values.
    pub count: u64,
    /// Sum of recorded values (saturating).
    pub sum: u64,
    /// Largest recorded value.
    pub max: u64,
}

impl HistogramSnapshot {
    /// The upper bound of bucket `i` (`0` for bucket 0, else `2^(i-1)`).
    pub fn upper_bound(i: usize) -> u64 {
        if i == 0 {
            0
        } else {
            1u64 << (i - 1).min(63)
        }
    }

    /// Mean of the recorded values (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_powers_of_two() {
        assert_eq!(Histogram::bucket_of(0), 0);
        assert_eq!(Histogram::bucket_of(1), 1);
        assert_eq!(Histogram::bucket_of(2), 2);
        assert_eq!(Histogram::bucket_of(3), 3);
        assert_eq!(Histogram::bucket_of(4), 3);
        assert_eq!(Histogram::bucket_of(5), 4);
        assert_eq!(Histogram::bucket_of(1024), 11);
        assert_eq!(Histogram::bucket_of(u64::MAX), LOG2_BUCKETS - 1);
    }

    #[test]
    fn record_tracks_count_sum_max() {
        let mut h = Histogram::default();
        for v in [0, 1, 3, 1000] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 4);
        assert_eq!(s.sum, 1004);
        assert_eq!(s.max, 1000);
        assert!((s.mean() - 251.0).abs() < 1e-9);
    }

    #[test]
    fn upper_bounds() {
        assert_eq!(HistogramSnapshot::upper_bound(0), 0);
        assert_eq!(HistogramSnapshot::upper_bound(1), 1);
        assert_eq!(HistogramSnapshot::upper_bound(11), 1024);
    }
}
