//! Live introspection server: a dependency-free HTTP/1.1 server on
//! `std::net::TcpListener` exposing the *running* process.
//!
//! Endpoints:
//!
//! | Path        | Content                                                  |
//! |-------------|----------------------------------------------------------|
//! | `/metrics`  | Prometheus text exposition of the live [`crate::Telemetry`] hub (plus `ac_build_info`, `ac_uptime_seconds`) |
//! | `/progress` | [`crate::progress`] JSON: cells done/running/failed, per-cell wall times, EWMA ETA |
//! | `/events`   | the sampled decision-event ring as Server-Sent Events    |
//! | `/healthz`  | liveness probe (`ok`)                                    |
//! | `/`         | self-refreshing HTML dashboard (pluggable renderer)      |
//!
//! ## Consistency model
//!
//! Every endpoint renders a point-in-time snapshot taken under the
//! hub's internal locks — counters are mutually consistent within one
//! metric family but a scrape concurrent with a running simulation may
//! observe counter A before and counter B after the same event. Nothing
//! blocks the simulation for longer than a snapshot copy.
//!
//! ## Lifecycle
//!
//! [`Server::start`] binds and spawns one accept thread; each
//! connection is handled on its own short-lived thread.
//! [`Server::shutdown`] (also run on drop) closes the listener and
//! joins the accept thread, releasing the port deterministically; SSE
//! streams notice the shutdown flag within one poll tick.
//!
//! Environment: `AC_SERVE=<addr>` starts a server without a CLI flag;
//! `AC_SERVE_ADDR_FILE=<path>` writes the *bound* address (useful with
//! port 0) to a file once listening.

use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::thread::JoinHandle;
use std::time::Duration;

/// Poll interval of the `/events` SSE loop.
const SSE_POLL: Duration = Duration::from_millis(200);

/// Per-connection request read timeout.
const READ_TIMEOUT: Duration = Duration::from_secs(5);

type DashboardFn = Box<dyn Fn() -> Option<String> + Send + Sync>;

fn dashboard_renderer() -> &'static Mutex<Option<DashboardFn>> {
    static RENDERER: OnceLock<Mutex<Option<DashboardFn>>> = OnceLock::new();
    RENDERER.get_or_init(|| Mutex::new(None))
}

/// Installs a custom renderer for `GET /`. The closure returns a full
/// HTML document, or `None` to fall back to the built-in dashboard
/// (e.g. when the artifacts it renders from are not available yet).
pub fn set_dashboard_renderer(f: DashboardFn) {
    *dashboard_renderer()
        .lock()
        .unwrap_or_else(|e| e.into_inner()) = Some(f);
}

/// A running introspection server. Shut down explicitly (or by drop) to
/// release the port.
#[derive(Debug)]
pub struct Server {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
}

impl Server {
    /// Binds `addr` (e.g. `127.0.0.1:0` for an ephemeral port) and
    /// starts serving. Registers the `build_info` gauge and, when
    /// `AC_SERVE_ADDR_FILE` is set, writes the bound address there.
    pub fn start(addr: &str) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        crate::gauge_set_labeled("build_info", concat!("v", env!("CARGO_PKG_VERSION")), 1.0);
        crate::info!("serve: live introspection on http://{addr}/");
        if let Ok(path) = std::env::var("AC_SERVE_ADDR_FILE") {
            if !path.trim().is_empty() {
                // Write-then-rename so a polling reader never sees a
                // torn address.
                let tmp = format!("{path}.tmp");
                if std::fs::write(&tmp, format!("{addr}\n"))
                    .and_then(|()| std::fs::rename(&tmp, &path))
                    .is_err()
                {
                    crate::warn!("serve: could not write AC_SERVE_ADDR_FILE={path}");
                }
            }
        }
        let shutdown = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&shutdown);
        let accept_thread = std::thread::Builder::new()
            .name("ac-serve".into())
            .spawn(move || accept_loop(listener, flag))?;
        Ok(Server {
            addr,
            shutdown,
            accept_thread: Some(accept_thread),
        })
    }

    /// Starts a server if `AC_SERVE` names a bind address.
    pub fn start_from_env() -> Option<Server> {
        let addr = std::env::var("AC_SERVE").ok()?;
        let addr = addr.trim();
        if addr.is_empty() || addr == "0" {
            return None;
        }
        match Server::start(addr) {
            Ok(s) => Some(s),
            Err(e) => {
                crate::warn!("serve: cannot bind AC_SERVE={addr}: {e}");
                None
            }
        }
    }

    /// The address the listener actually bound (port 0 resolved).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting, joins the accept thread and releases the port.
    /// In-flight SSE streams terminate within one poll tick.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        let Some(handle) = self.accept_thread.take() else {
            return;
        };
        self.shutdown.store(true, Ordering::Release);
        // Wake the blocking accept with one throwaway connection.
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_secs(1));
        let _ = handle.join();
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

fn accept_loop(listener: TcpListener, shutdown: Arc<AtomicBool>) {
    loop {
        let conn = listener.accept();
        if shutdown.load(Ordering::Acquire) {
            // The waking connection (or any racing client) is dropped
            // unanswered; the listener closes with this scope.
            return;
        }
        match conn {
            Ok((stream, _)) => {
                let flag = Arc::clone(&shutdown);
                let _ = std::thread::Builder::new()
                    .name("ac-serve-conn".into())
                    .spawn(move || {
                        let _ = handle_connection(stream, &flag);
                    });
            }
            Err(_) => {
                // Transient accept errors (EMFILE, resets): back off
                // rather than spinning.
                std::thread::sleep(Duration::from_millis(20));
            }
        }
    }
}

/// Reads the request head and dispatches on the path. Only `GET` is
/// meaningful; everything is `Connection: close`.
fn handle_connection(stream: TcpStream, shutdown: &AtomicBool) -> io::Result<()> {
    stream.set_read_timeout(Some(READ_TIMEOUT))?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut request_line = String::new();
    reader.read_line(&mut request_line)?;
    // Drain the headers; this server needs none of them.
    loop {
        let mut line = String::new();
        if reader.read_line(&mut line)? == 0 || line == "\r\n" || line == "\n" {
            break;
        }
        if line.len() > 16 * 1024 {
            return Ok(()); // hostile header, drop the connection
        }
    }
    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or("");
    let raw_path = parts.next().unwrap_or("/");
    // Strip any query string: `/metrics?foo=1` is `/metrics`.
    let path = raw_path.split('?').next().unwrap_or("/");
    if method != "GET" && method != "HEAD" {
        return respond(
            stream,
            405,
            "text/plain; charset=utf-8",
            "method not allowed\n",
        );
    }
    crate::counter_add_labeled("serve_requests_total", path, 1);
    match path {
        "/healthz" => respond(stream, 200, "text/plain; charset=utf-8", "ok\n"),
        "/metrics" => {
            crate::gauge_set("uptime_seconds", crate::now_us() as f64 / 1e6);
            match crate::hub() {
                Some(hub) => respond(
                    stream,
                    200,
                    "text/plain; version=0.0.4; charset=utf-8",
                    &hub.prometheus(),
                ),
                None => respond(
                    stream,
                    503,
                    "text/plain; charset=utf-8",
                    "no telemetry hub installed\n",
                ),
            }
        }
        "/progress" => respond(
            stream,
            200,
            "application/json; charset=utf-8",
            &crate::progress::to_json(),
        ),
        "/events" => serve_events(stream, shutdown),
        "/" | "/index.html" => {
            let custom = dashboard_renderer()
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .as_ref()
                .and_then(|f| f());
            let html = custom.unwrap_or_else(builtin_dashboard);
            respond(stream, 200, "text/html; charset=utf-8", &html)
        }
        _ => respond(stream, 404, "text/plain; charset=utf-8", "not found\n"),
    }
}

fn respond(mut stream: TcpStream, status: u16, content_type: &str, body: &str) -> io::Result<()> {
    let reason = match status {
        200 => "OK",
        404 => "Not Found",
        405 => "Method Not Allowed",
        503 => "Service Unavailable",
        _ => "OK",
    };
    let head = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\nConnection: close\r\nCache-Control: no-store\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

/// Streams the decision-event ring as Server-Sent Events: every ring
/// entry with a stream position after the subscriber's join point, as
/// one `data:` line of the same JSON as `events.jsonl`, until the
/// client disconnects or the server shuts down.
fn serve_events(mut stream: TcpStream, shutdown: &AtomicBool) -> io::Result<()> {
    stream.write_all(
        b"HTTP/1.1 200 OK\r\nContent-Type: text/event-stream\r\n\
          Cache-Control: no-store\r\nConnection: close\r\n\r\n",
    )?;
    stream.write_all(b": decision-event stream\n\n")?;
    stream.flush()?;
    let mut last_seq: Option<u64> = None;
    loop {
        if shutdown.load(Ordering::Acquire) {
            return Ok(());
        }
        let Some(hub) = crate::hub() else {
            stream.write_all(b"event: end\ndata: no telemetry hub installed\n\n")?;
            return Ok(());
        };
        let mut wrote = false;
        for record in hub.events() {
            if last_seq.is_some_and(|s| record.seq <= s) {
                continue;
            }
            last_seq = Some(record.seq);
            stream.write_all(b"data: ")?;
            stream.write_all(record.to_json_line().as_bytes())?;
            stream.write_all(b"\n\n")?;
            wrote = true;
        }
        if !wrote {
            // Heartbeat comment: keeps proxies alive and detects a gone
            // client (the write fails) without waiting for new events.
            stream.write_all(b": keepalive\n\n")?;
        }
        stream.flush()?;
        std::thread::sleep(SSE_POLL);
    }
}

/// The fallback `/` dashboard: progress bars + headline counters in one
/// self-refreshing page, no JavaScript.
fn builtin_dashboard() -> String {
    use std::fmt::Write as _;
    let mut out = String::with_capacity(4096);
    out.push_str(
        "<!DOCTYPE html><html lang=\"en\"><head><meta charset=\"utf-8\">\
         <meta http-equiv=\"refresh\" content=\"2\">\
         <title>adaptive-caches live</title>\
         <style>body{font-family:system-ui,sans-serif;margin:2rem auto;max-width:50rem;\
         color:#222}h1{font-size:1.3rem}h2{font-size:1.05rem;margin-top:1.5rem}\
         table{border-collapse:collapse;font-size:.85rem}\
         th,td{border:1px solid #ddd;padding:.25rem .5rem;text-align:left}\
         td.num{text-align:right;font-variant-numeric:tabular-nums}\
         .bar{background:#eee;width:16rem;height:.9rem;display:inline-block}\
         .bar i{background:#4a7;display:block;height:100%}\
         .note{color:#666;font-size:.85rem}</style></head><body>\
         <h1>adaptive-caches — live introspection</h1>\
         <p class=\"note\">Endpoints: <a href=\"/metrics\">/metrics</a> · \
         <a href=\"/progress\">/progress</a> · <a href=\"/events\">/events</a> · \
         <a href=\"/healthz\">/healthz</a> — refreshes every 2s</p>",
    );
    out.push_str("<h2>Sweeps</h2>");
    let sweeps = crate::progress::snapshot();
    if sweeps.is_empty() {
        out.push_str("<p class=\"note\">no sweep registered yet</p>");
    } else {
        out.push_str(
            "<table><tr><th>sweep</th><th>progress</th><th>done</th><th>failed</th>\
             <th>running</th><th>elapsed</th><th>ETA</th></tr>",
        );
        for s in &sweeps {
            let pct = if s.total > 0 {
                100.0 * s.completed() as f64 / s.total as f64
            } else {
                100.0
            };
            let _ = write!(
                out,
                "<tr><td>{}</td><td><span class=\"bar\"><i style=\"width:{:.1}%\"></i></span> \
                 {:.0}%</td><td class=\"num\">{}/{}</td><td class=\"num\">{}</td>\
                 <td class=\"num\">{}</td><td class=\"num\">{:.1}s</td><td class=\"num\">{}</td></tr>",
                html_escape(&s.name),
                pct.min(100.0),
                pct,
                s.completed(),
                s.total,
                s.failed + s.timed_out,
                s.running.len(),
                s.elapsed_secs,
                if s.finished {
                    "—".to_string()
                } else {
                    format!("{:.1}s", s.eta_secs)
                },
            );
        }
        out.push_str("</table>");
    }
    if let Some(hub) = crate::hub() {
        out.push_str(
            "<h2>Counters</h2><table><tr><th>counter</th><th>label</th><th>value</th></tr>",
        );
        for (name, by_label) in hub.counters() {
            for (label, value) in by_label {
                let _ = write!(
                    out,
                    "<tr><td>{}</td><td>{}</td><td class=\"num\">{value}</td></tr>",
                    html_escape(name),
                    html_escape(&label),
                );
            }
        }
        out.push_str("</table>");
        let _ = write!(
            out,
            "<p class=\"note\">events recorded: {} (seen {})</p>",
            hub.events_recorded(),
            hub.events_seen()
        );
    } else {
        out.push_str("<p class=\"note\">no telemetry hub installed — metrics unavailable</p>");
    }
    out.push_str("</body></html>");
    out
}

fn html_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '&' => out.push_str("&amp;"),
            '"' => out.push_str("&quot;"),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    // Full request/response round-trips live in `tests/serve_http.rs`
    // (they need the process-global hub); these cover the pure helpers.

    #[test]
    fn html_escape_neutralises_markup() {
        assert_eq!(html_escape("a<b>&\"c\""), "a&lt;b&gt;&amp;&quot;c&quot;");
    }

    #[test]
    fn builtin_dashboard_renders_without_hub() {
        let html = builtin_dashboard();
        assert!(html.contains("adaptive-caches"));
        assert!(html.contains("/metrics"));
    }

    #[test]
    fn start_from_env_ignores_blank() {
        // AC_SERVE is unset in the test environment; must not bind.
        if std::env::var("AC_SERVE").is_err() {
            assert!(Server::start_from_env().is_none());
        }
    }
}
