//! Leveled stderr logging, gated by the `AC_LOG` environment variable.
//!
//! The macros keep the workspace's existing stderr conventions: `error:`
//! and `warning:` prefixes, bare progress lines at info level. Messages
//! never go to stdout, so machine-readable CLI output stays clean.

use std::sync::OnceLock;

/// A log severity, most severe first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// Fatal or unrecoverable conditions (always printed).
    Error = 0,
    /// Degraded-but-continuing conditions.
    Warn = 1,
    /// Progress reporting (the default level).
    Info = 2,
    /// Extra diagnostics.
    Debug = 3,
}

impl Level {
    /// Stable lower-case name.
    pub fn as_str(self) -> &'static str {
        match self {
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
        }
    }

    /// The stderr line prefix for this level (info lines stay bare to
    /// preserve the pre-telemetry progress-line format).
    pub fn prefix(self) -> &'static str {
        match self {
            Level::Error => "error: ",
            Level::Warn => "warning: ",
            Level::Info => "",
            Level::Debug => "debug: ",
        }
    }

    fn parse(s: &str) -> Option<Level> {
        match s.trim().to_ascii_lowercase().as_str() {
            "error" | "e" => Some(Level::Error),
            "warn" | "warning" | "w" => Some(Level::Warn),
            "info" | "i" => Some(Level::Info),
            "debug" | "d" => Some(Level::Debug),
            _ => None,
        }
    }
}

static MAX_LEVEL: OnceLock<Level> = OnceLock::new();

/// The most verbose level that prints, from `AC_LOG` (default
/// [`Level::Info`]). Read once per process.
pub fn max_level() -> Level {
    *MAX_LEVEL.get_or_init(|| {
        std::env::var("AC_LOG")
            .ok()
            .and_then(|v| Level::parse(&v))
            .unwrap_or(Level::Info)
    })
}

/// Writes one log line to stderr if `level` is enabled, and counts it on
/// the installed recorder. Prefer the [`crate::error!`]/[`crate::warn!`]/
/// [`crate::info!`]/[`crate::debug!`] macros, which build the
/// `format_args` lazily.
pub fn log_stderr(level: Level, args: std::fmt::Arguments<'_>) {
    if level > max_level() {
        return;
    }
    if let Some(r) = crate::recorder() {
        r.log_emitted(level);
    }
    eprintln!("{}{args}", level.prefix());
}

/// Logs at [`Level::Error`] (always printed).
#[macro_export]
macro_rules! error {
    ($($arg:tt)*) => {
        $crate::log_stderr($crate::Level::Error, format_args!($($arg)*))
    };
}

/// Logs at [`Level::Warn`] (printed unless `AC_LOG=error`).
#[macro_export]
macro_rules! warn {
    ($($arg:tt)*) => {
        $crate::log_stderr($crate::Level::Warn, format_args!($($arg)*))
    };
}

/// Logs at [`Level::Info`] — progress lines (the default level).
#[macro_export]
macro_rules! info {
    ($($arg:tt)*) => {
        $crate::log_stderr($crate::Level::Info, format_args!($($arg)*))
    };
}

/// Logs at [`Level::Debug`] (printed only with `AC_LOG=debug`).
#[macro_export]
macro_rules! debug {
    ($($arg:tt)*) => {
        $crate::log_stderr($crate::Level::Debug, format_args!($($arg)*))
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_order_most_severe_first() {
        assert!(Level::Error < Level::Warn);
        assert!(Level::Warn < Level::Info);
        assert!(Level::Info < Level::Debug);
    }

    #[test]
    fn parse_accepts_aliases() {
        assert_eq!(Level::parse("WARN"), Some(Level::Warn));
        assert_eq!(Level::parse("warning"), Some(Level::Warn));
        assert_eq!(Level::parse("d"), Some(Level::Debug));
        assert_eq!(Level::parse("nope"), None);
    }

    #[test]
    fn prefixes_match_legacy_format() {
        assert_eq!(Level::Warn.prefix(), "warning: ");
        assert_eq!(Level::Info.prefix(), "");
    }

    #[test]
    fn macros_compile_and_run() {
        // Only levels <= max print; either way this must not panic.
        crate::debug!("debug line {}", 1);
        crate::info!("info line");
    }
}
