//! Per-set decision heatmap: `set × window → winning policy / miss
//! density`, aggregated from the sampled decision-event stream.
//!
//! The aggregator rides inside [`crate::Telemetry::decision`]: every
//! sampled [`DecisionEvent`] that names a set is bucketed by its stream
//! position (`seq`) into fixed-width event windows, and within a window
//! by set. Memory is bounded on both axes: sets are sampled by a
//! configurable stride, and when the window axis outgrows its cap the
//! aggregator coarsens the same way the timeline does (adjacent windows
//! merge pairwise, window width doubles). The result is emitted as
//! `heatmap.json` next to the other artifacts.

use crate::event::{Comp, DecisionEvent};
use crate::json::push_str_escaped;
use std::collections::BTreeMap;

/// Schema version stamped on `heatmap.json`.
pub const HEATMAP_SCHEMA_VERSION: u32 = 1;

/// Default event-window width (sampled events per heatmap column).
pub const DEFAULT_HEATMAP_WINDOW: u64 = 4096;

/// Default set-sampling stride (record sets `0, N, 2N, ...`).
pub const DEFAULT_HEATMAP_STRIDE: u32 = 4;

/// Window-axis cap; past this the heatmap coarsens.
const MAX_WINDOWS: usize = 256;

/// Accumulated decisions for one `(window, set)` cell.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HeatCell {
    /// Evictions in this cell that imitated component policy A.
    pub imit_a: u64,
    /// Evictions in this cell that imitated component policy B.
    pub imit_b: u64,
    /// Exclusive-miss history updates charged to policy A.
    pub miss_a: u64,
    /// Exclusive-miss history updates charged to policy B.
    pub miss_b: u64,
}

impl HeatCell {
    fn merge(&mut self, other: &HeatCell) {
        self.imit_a += other.imit_a;
        self.imit_b += other.imit_b;
        self.miss_a += other.miss_a;
        self.miss_b += other.miss_b;
    }
}

/// One column of the heatmap: the sampled sets touched during an event
/// window.
#[derive(Debug, Clone, Default)]
pub struct HeatWindow {
    /// First event-stream position covered (inclusive).
    pub start_seq: u64,
    /// Last event-stream position covered (exclusive).
    pub end_seq: u64,
    /// Per-set accumulators, keyed by set index.
    pub cells: BTreeMap<u32, HeatCell>,
}

impl HeatWindow {
    fn merge_from(&mut self, later: HeatWindow) {
        self.end_seq = later.end_seq;
        for (set, cell) in later.cells {
            self.cells.entry(set).or_default().merge(&cell);
        }
    }
}

/// The aggregator. Lives inside the hub's event path; use a standalone
/// instance only in tests.
#[derive(Debug)]
pub struct HeatmapAggregator {
    window_len: u64,
    stride: u32,
    windows: Vec<HeatWindow>,
    events: u64,
}

impl HeatmapAggregator {
    /// An aggregator with the given event-window width (clamped ≥ 1)
    /// and set stride. Stride `0` disables the aggregator entirely.
    pub fn new(window_events: u64, set_stride: u32) -> HeatmapAggregator {
        HeatmapAggregator {
            window_len: window_events.max(1),
            stride: set_stride,
            windows: Vec::new(),
            events: 0,
        }
    }

    /// Offers one sampled event at stream position `seq`. Events that
    /// carry no set index (and sets off the sampling stride) are
    /// dropped.
    pub fn offer(&mut self, seq: u64, event: &DecisionEvent) {
        if self.stride == 0 {
            return;
        }
        let (set, imit, miss) = match *event {
            DecisionEvent::Imitation { set, component, .. } => match component {
                Comp::A => (set, (1, 0), (0, 0)),
                Comp::B => (set, (0, 1), (0, 0)),
            },
            DecisionEvent::HistoryUpdate {
                set,
                a_missed,
                b_missed,
            } => (set, (0, 0), (u64::from(a_missed), u64::from(b_missed))),
            DecisionEvent::LeaderVote { set, .. } | DecisionEvent::DuelVote { set, .. } => {
                (set, (0, 0), (0, 0))
            }
        };
        if !set.is_multiple_of(self.stride) {
            return;
        }
        self.events += 1;
        let needs_new = match self.windows.last() {
            Some(w) => seq >= w.end_seq,
            None => true,
        };
        if needs_new {
            if self.windows.len() == MAX_WINDOWS {
                self.coarsen();
            }
            let start = seq - (seq % self.window_len);
            self.windows.push(HeatWindow {
                start_seq: start,
                end_seq: start + self.window_len,
                cells: BTreeMap::new(),
            });
        }
        // Late events from other threads land in the current window;
        // seq ordering is only approximate across threads anyway.
        let w = self.windows.last_mut().expect("window just ensured");
        let cell = w.cells.entry(set).or_default();
        cell.imit_a += imit.0;
        cell.imit_b += imit.1;
        cell.miss_a += miss.0;
        cell.miss_b += miss.1;
    }

    fn coarsen(&mut self) {
        let mut merged: Vec<HeatWindow> = Vec::with_capacity(self.windows.len() / 2 + 1);
        let mut it = self.windows.drain(..);
        while let Some(mut first) = it.next() {
            if let Some(second) = it.next() {
                first.merge_from(second);
            }
            merged.push(first);
        }
        drop(it);
        self.windows = merged;
        self.window_len = self.window_len.saturating_mul(2);
    }

    /// Whether any event has been accepted.
    pub fn is_empty(&self) -> bool {
        self.events == 0
    }

    /// Total events accepted (post stride-sampling).
    pub fn events(&self) -> u64 {
        self.events
    }

    /// The heatmap columns, oldest first.
    pub fn windows(&self) -> &[HeatWindow] {
        &self.windows
    }

    /// Serializes the heatmap as a single JSON document.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(4096);
        out.push_str("{\n  \"schema_version\": ");
        out.push_str(&HEATMAP_SCHEMA_VERSION.to_string());
        out.push_str(",\n  \"window_events\": ");
        out.push_str(&self.window_len.to_string());
        out.push_str(",\n  \"set_stride\": ");
        out.push_str(&self.stride.to_string());
        out.push_str(",\n  \"events\": ");
        out.push_str(&self.events.to_string());
        out.push_str(",\n  \"windows\": [");
        for (wi, w) in self.windows.iter().enumerate() {
            if wi > 0 {
                out.push(',');
            }
            out.push_str("\n    {\"start_seq\": ");
            out.push_str(&w.start_seq.to_string());
            out.push_str(", \"end_seq\": ");
            out.push_str(&w.end_seq.to_string());
            out.push_str(", \"sets\": [");
            for (si, (set, cell)) in w.cells.iter().enumerate() {
                if si > 0 {
                    out.push_str(", ");
                }
                out.push_str("{\"set\": ");
                out.push_str(&set.to_string());
                for (key, v) in [
                    ("imit_a", cell.imit_a),
                    ("imit_b", cell.imit_b),
                    ("miss_a", cell.miss_a),
                    ("miss_b", cell.miss_b),
                ] {
                    out.push_str(", ");
                    push_str_escaped(&mut out, key);
                    out.push_str(": ");
                    out.push_str(&v.to_string());
                }
                out.push('}');
            }
            out.push_str("]}");
        }
        if !self.windows.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("]\n}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EvictionCase;

    fn imitation(set: u32, component: Comp) -> DecisionEvent {
        DecisionEvent::Imitation {
            set,
            component,
            case: EvictionCase::SameVictim,
        }
    }

    #[test]
    fn buckets_by_seq_and_set() {
        let mut h = HeatmapAggregator::new(10, 1);
        h.offer(0, &imitation(3, Comp::A));
        h.offer(5, &imitation(3, Comp::B));
        h.offer(12, &imitation(7, Comp::B));
        let w = h.windows();
        assert_eq!(w.len(), 2);
        assert_eq!(
            w[0].cells[&3],
            HeatCell {
                imit_a: 1,
                imit_b: 1,
                ..Default::default()
            }
        );
        assert_eq!(w[1].cells[&7].imit_b, 1);
    }

    #[test]
    fn stride_samples_sets() {
        let mut h = HeatmapAggregator::new(10, 4);
        for set in 0..16 {
            h.offer(0, &imitation(set, Comp::A));
        }
        assert_eq!(h.events(), 4, "sets 0,4,8,12");
        assert_eq!(h.windows()[0].cells.len(), 4);
        let mut off = HeatmapAggregator::new(10, 0);
        off.offer(0, &imitation(0, Comp::A));
        assert!(off.is_empty(), "stride 0 disables");
    }

    #[test]
    fn history_updates_count_miss_density() {
        let mut h = HeatmapAggregator::new(10, 1);
        h.offer(
            0,
            &DecisionEvent::HistoryUpdate {
                set: 2,
                a_missed: true,
                b_missed: false,
            },
        );
        assert_eq!(h.windows()[0].cells[&2].miss_a, 1);
        assert_eq!(h.windows()[0].cells[&2].miss_b, 0);
    }

    #[test]
    fn coarsens_past_window_cap() {
        let mut h = HeatmapAggregator::new(1, 1);
        for i in 0..2048u64 {
            h.offer(i, &imitation((i % 8) as u32, Comp::A));
        }
        assert!(h.windows().len() <= MAX_WINDOWS);
        let total: u64 = h
            .windows()
            .iter()
            .flat_map(|w| w.cells.values())
            .map(|c| c.imit_a)
            .sum();
        assert_eq!(total, 2048, "coarsening loses no counts");
    }

    #[test]
    fn json_has_schema_version() {
        let mut h = HeatmapAggregator::new(10, 1);
        h.offer(0, &imitation(0, Comp::B));
        let text = h.to_json();
        assert!(text.contains("\"schema_version\": 1"), "{text}");
        assert!(text.contains("\"imit_b\": 1"), "{text}");
    }
}
