//! The batteries-included [`Recorder`]: in-memory metric registry,
//! decision-event ring buffer, streaming JSONL sink, artifact writer.

use crate::event::{DecisionEvent, EventRecord};
use crate::heatmap::HeatmapAggregator;
use crate::metrics::Histogram;
use crate::span::SpanRecord;
use crate::timeline::TimelineData;
use crate::{Level, Recorder};
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::io::{self, BufWriter, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard};

/// Default capacity of the in-memory decision-event ring buffer.
pub const DEFAULT_RING_CAPACITY: usize = 1 << 16;

/// Default decision-event sampling rate when enabling from the
/// environment (record one event in 64).
pub const DEFAULT_ENV_SAMPLE_RATE: u32 = 64;

/// Configuration of a [`Telemetry`] hub.
#[derive(Debug, Clone)]
pub struct TelemetryConfig {
    /// Artifact directory (`metrics.prom`, `trace.json`,
    /// `telemetry-summary.json`, `events.jsonl`). `None` keeps
    /// everything in memory.
    pub dir: Option<PathBuf>,
    /// Decision-event sampling: record one event in `sample_rate`.
    /// `0` disables the event stream entirely; `1` records everything.
    pub sample_rate: u32,
    /// Capacity of the in-memory event ring buffer (oldest events are
    /// overwritten once full; the JSONL sink, when configured, streams
    /// every sampled event regardless).
    pub ring_capacity: usize,
    /// Timeline window length in ticks (accesses / cycles) for
    /// [`crate::timeline::Timeline::from_hub`]. `0` disables timelines.
    pub timeline_window: u64,
    /// Heatmap event-window width (sampled events per column).
    pub heatmap_window_events: u64,
    /// Heatmap set-sampling stride (`0` disables the heatmap).
    pub heatmap_set_stride: u32,
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        TelemetryConfig {
            dir: None,
            sample_rate: 1,
            ring_capacity: DEFAULT_RING_CAPACITY,
            timeline_window: crate::timeline::DEFAULT_TIMELINE_WINDOW,
            heatmap_window_events: crate::heatmap::DEFAULT_HEATMAP_WINDOW,
            heatmap_set_stride: crate::heatmap::DEFAULT_HEATMAP_STRIDE,
        }
    }
}

impl TelemetryConfig {
    /// Builds the configuration the environment asks for, or `None` when
    /// `AC_TELEMETRY` is unset/`0` (see the crate docs for the accepted
    /// values).
    pub fn from_env() -> Option<TelemetryConfig> {
        let raw = std::env::var("AC_TELEMETRY").ok()?;
        let dir = match raw.trim() {
            "" | "0" | "false" | "no" => return None,
            "1" | "true" | "yes" => PathBuf::from("results"),
            path => PathBuf::from(path),
        };
        let sample_rate = std::env::var("AC_TELEMETRY_SAMPLE")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(DEFAULT_ENV_SAMPLE_RATE);
        let env_u64 = |name: &str, default: u64| {
            std::env::var(name)
                .ok()
                .and_then(|v| v.trim().parse().ok())
                .unwrap_or(default)
        };
        Some(TelemetryConfig {
            dir: Some(dir),
            sample_rate,
            ring_capacity: DEFAULT_RING_CAPACITY,
            timeline_window: env_u64(
                "AC_TIMELINE_WINDOW",
                crate::timeline::DEFAULT_TIMELINE_WINDOW,
            ),
            heatmap_window_events: env_u64(
                "AC_HEATMAP_WINDOW",
                crate::heatmap::DEFAULT_HEATMAP_WINDOW,
            ),
            heatmap_set_stride: env_u64(
                "AC_HEATMAP_STRIDE",
                u64::from(crate::heatmap::DEFAULT_HEATMAP_STRIDE),
            ) as u32,
        })
    }

    /// This configuration with a different artifact directory.
    pub fn with_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.dir = Some(dir.into());
        self
    }

    /// This configuration with a different sampling rate.
    pub fn with_sample_rate(mut self, rate: u32) -> Self {
        self.sample_rate = rate;
        self
    }

    /// This configuration with a different timeline window length
    /// (`0` disables timelines).
    pub fn with_timeline_window(mut self, window: u64) -> Self {
        self.timeline_window = window;
        self
    }

    /// This configuration with a different heatmap shape: `window_events`
    /// per column, one set in `set_stride` sampled (`0` disables).
    pub fn with_heatmap(mut self, window_events: u64, set_stride: u32) -> Self {
        self.heatmap_window_events = window_events;
        self.heatmap_set_stride = set_stride;
        self
    }
}

struct EventBuf {
    ring: VecDeque<EventRecord>,
    sink: Option<BufWriter<std::fs::File>>,
    sink_error: bool,
    heatmap: HeatmapAggregator,
}

/// The standard recorder: thread-safe metric registry + event stream.
///
/// Use a local instance in tests, or [`Telemetry::install`] to make one
/// the process-global recorder feeding the instrumentation in the
/// simulation crates.
pub struct Telemetry {
    cfg: TelemetryConfig,
    counters: Mutex<HashMap<&'static str, BTreeMap<String, u64>>>,
    gauges: Mutex<HashMap<&'static str, BTreeMap<String, f64>>>,
    histograms: Mutex<HashMap<&'static str, Histogram>>,
    spans: Mutex<Vec<SpanRecord>>,
    events: Mutex<EventBuf>,
    timelines: Mutex<Vec<TimelineData>>,
    /// Position in the unsampled event stream (drives sampling).
    event_seq: AtomicU64,
    /// Events actually recorded (ring and/or sink).
    events_recorded: AtomicU64,
    log_counts: [AtomicU64; 4],
    /// Serialises [`Telemetry::write_artifacts`]: the periodic flusher,
    /// the supervisor's failure-path flush and the exit flush all share
    /// one temp-file name per artifact, so exports must not interleave.
    flush_gate: Mutex<()>,
    /// Whether the background flusher thread was already spawned.
    flusher_started: std::sync::atomic::AtomicBool,
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

impl Telemetry {
    /// Creates a hub. When `cfg.dir` is set, sampled decision events
    /// stream to `<dir>/events.jsonl` as they are recorded (the file is
    /// opened lazily on the first event).
    pub fn new(cfg: TelemetryConfig) -> Telemetry {
        let heatmap = HeatmapAggregator::new(cfg.heatmap_window_events, cfg.heatmap_set_stride);
        Telemetry {
            cfg,
            counters: Mutex::new(HashMap::new()),
            gauges: Mutex::new(HashMap::new()),
            histograms: Mutex::new(HashMap::new()),
            spans: Mutex::new(Vec::new()),
            events: Mutex::new(EventBuf {
                ring: VecDeque::new(),
                sink: None,
                sink_error: false,
                heatmap,
            }),
            timelines: Mutex::new(Vec::new()),
            event_seq: AtomicU64::new(0),
            events_recorded: AtomicU64::new(0),
            log_counts: Default::default(),
            flush_gate: Mutex::new(()),
            flusher_started: std::sync::atomic::AtomicBool::new(false),
        }
    }

    /// Creates a hub and installs it as the process-global recorder.
    ///
    /// Returns the leaked `&'static` hub (also reachable afterwards via
    /// [`crate::hub`]). Fails if a recorder is already installed.
    pub fn install(cfg: TelemetryConfig) -> Result<&'static Telemetry, TelemetryConfig> {
        let hub: &'static Telemetry = Box::leak(Box::new(Telemetry::new(cfg)));
        match crate::set_recorder(Box::new(HubHandle(hub))) {
            Ok(()) => {
                crate::set_hub(hub);
                hub.start_flusher_from_env();
                Ok(hub)
            }
            Err(_) => Err(hub.cfg.clone()),
        }
    }

    /// Spawns the periodic artifact flusher when `AC_TELEMETRY_FLUSH_MS`
    /// names an interval (milliseconds, minimum 50). With a flusher
    /// running, the on-disk `telemetry-summary.json` / `metrics.prom` /
    /// `timeline.jsonl` stay crash-current during a long run instead of
    /// appearing only at exit.
    pub fn start_flusher_from_env(&'static self) {
        let Some(ms) = std::env::var("AC_TELEMETRY_FLUSH_MS")
            .ok()
            .and_then(|v| v.trim().parse::<u64>().ok())
            .filter(|&ms| ms > 0)
        else {
            return;
        };
        self.start_flusher(std::time::Duration::from_millis(ms.max(50)));
    }

    /// Spawns a daemon thread writing every artifact atomically each
    /// `interval`. Idempotent: only the first call spawns.
    pub fn start_flusher(&'static self, interval: std::time::Duration) {
        use std::sync::atomic::Ordering;
        if self.cfg.dir.is_none() || self.flusher_started.swap(true, Ordering::AcqRel) {
            return;
        }
        let spawned = std::thread::Builder::new()
            .name("ac-telemetry-flush".into())
            .spawn(move || loop {
                std::thread::sleep(interval);
                if let Err(e) = self.write_artifacts() {
                    crate::warn!("telemetry: periodic flush failed: {e}");
                }
            });
        if spawned.is_err() {
            crate::warn!("telemetry: could not spawn the periodic flusher");
        }
    }

    /// The configuration this hub was built with.
    pub fn config(&self) -> &TelemetryConfig {
        &self.cfg
    }

    /// Snapshot of all counters: `name -> label -> value`.
    pub fn counters(&self) -> BTreeMap<&'static str, BTreeMap<String, u64>> {
        lock(&self.counters)
            .iter()
            .map(|(k, v)| (*k, v.clone()))
            .collect()
    }

    /// The value of counter `name` with `label` (0 when never touched).
    pub fn counter_value(&self, name: &'static str, label: &str) -> u64 {
        lock(&self.counters)
            .get(name)
            .and_then(|m| m.get(label))
            .copied()
            .unwrap_or(0)
    }

    /// Snapshot of all gauges: `name -> label -> value`.
    pub fn gauges(&self) -> BTreeMap<&'static str, BTreeMap<String, f64>> {
        lock(&self.gauges)
            .iter()
            .map(|(k, v)| (*k, v.clone()))
            .collect()
    }

    /// Snapshot of all histograms.
    pub fn histograms(&self) -> BTreeMap<&'static str, crate::HistogramSnapshot> {
        lock(&self.histograms)
            .iter()
            .map(|(k, v)| (*k, v.snapshot()))
            .collect()
    }

    /// Snapshot of all completed spans, in completion order.
    pub fn spans(&self) -> Vec<SpanRecord> {
        lock(&self.spans).clone()
    }

    /// Aggregated span wall time: `(name, cat) -> (count, total_us)`,
    /// in first-completion order.
    pub fn span_totals(&self) -> Vec<(String, &'static str, u64, u64)> {
        let spans = lock(&self.spans);
        let mut order: Vec<(String, &'static str, u64, u64)> = Vec::new();
        for s in spans.iter() {
            match order
                .iter_mut()
                .find(|(n, c, _, _)| *n == s.name && *c == s.cat)
            {
                Some(entry) => {
                    entry.2 += 1;
                    entry.3 += s.dur_us;
                }
                None => order.push((s.name.clone(), s.cat, 1, s.dur_us)),
            }
        }
        order
    }

    /// Snapshot of the in-memory event ring (oldest first). The ring
    /// holds the most recent `ring_capacity` sampled events; the JSONL
    /// sink, when configured, has the full sampled stream.
    pub fn events(&self) -> Vec<EventRecord> {
        lock(&self.events).ring.iter().copied().collect()
    }

    /// Total events offered to the stream (before sampling).
    pub fn events_seen(&self) -> u64 {
        self.event_seq.load(Ordering::Relaxed)
    }

    /// Total events recorded (after sampling).
    pub fn events_recorded(&self) -> u64 {
        self.events_recorded.load(Ordering::Relaxed)
    }

    /// Attaches a finished timeline for `timeline.jsonl` export.
    /// Usually called through [`crate::timeline::Timeline::finish`].
    pub fn attach_timeline(&self, data: TimelineData) {
        lock(&self.timelines).push(data);
    }

    /// Snapshot of the attached timelines, in attach order.
    pub fn timelines(&self) -> Vec<TimelineData> {
        lock(&self.timelines).clone()
    }

    /// The decision heatmap serialized as JSON, or `None` when no event
    /// has reached the aggregator (disabled stride, no events).
    pub fn heatmap_json(&self) -> Option<String> {
        let buf = lock(&self.events);
        if buf.heatmap.is_empty() {
            return None;
        }
        Some(buf.heatmap.to_json())
    }

    /// Log lines emitted per level (error, warn, info, debug).
    pub fn log_counts(&self) -> [u64; 4] {
        [
            self.log_counts[0].load(Ordering::Relaxed),
            self.log_counts[1].load(Ordering::Relaxed),
            self.log_counts[2].load(Ordering::Relaxed),
            self.log_counts[3].load(Ordering::Relaxed),
        ]
    }

    /// Flushes the JSONL sink and writes every artifact
    /// (`metrics.prom`, `trace.json`, `telemetry-summary.json`) to the
    /// configured directory. No-op (Ok) when no directory is configured.
    ///
    /// Safe to call *mid-run* (each artifact is a point-in-time snapshot
    /// taken under the hub's locks, written atomically) and from several
    /// threads (exports are serialised on an internal gate) — the
    /// periodic flusher and the supervisor's failure paths rely on both.
    pub fn write_artifacts(&self) -> io::Result<Vec<PathBuf>> {
        let Some(dir) = self.cfg.dir.clone() else {
            return Ok(Vec::new());
        };
        let _gate = lock(&self.flush_gate);
        std::fs::create_dir_all(&dir)?;
        {
            let mut ev = lock(&self.events);
            if let Some(sink) = ev.sink.as_mut() {
                sink.flush()?;
            }
        }
        let mut written = Vec::new();
        for (name, text) in [
            ("metrics.prom", self.prometheus()),
            ("trace.json", self.chrome_trace()),
            ("telemetry-summary.json", self.summary_json()),
        ] {
            let path = dir.join(name);
            write_atomic(&path, text.as_bytes())?;
            written.push(path);
        }
        let timelines = lock(&self.timelines);
        if !timelines.is_empty() {
            let mut text = String::with_capacity(64 * 1024);
            for tl in timelines.iter() {
                tl.write_jsonl(&mut text);
            }
            let path = dir.join("timeline.jsonl");
            write_atomic(&path, text.as_bytes())?;
            written.push(path);
        }
        drop(timelines);
        if let Some(text) = self.heatmap_json() {
            let path = dir.join("heatmap.json");
            write_atomic(&path, text.as_bytes())?;
            written.push(path);
        }
        let events = dir.join("events.jsonl");
        if events.exists() {
            written.push(events);
        }
        Ok(written)
    }

    fn sink_write(&self, buf: &mut EventBuf, line: &str) {
        if buf.sink_error {
            return;
        }
        if buf.sink.is_none() {
            let Some(dir) = &self.cfg.dir else { return };
            match std::fs::create_dir_all(dir)
                .and_then(|()| std::fs::File::create(dir.join("events.jsonl")))
            {
                Ok(f) => buf.sink = Some(BufWriter::new(f)),
                Err(_) => {
                    buf.sink_error = true;
                    return;
                }
            }
        }
        if let Some(sink) = buf.sink.as_mut() {
            if writeln!(sink, "{line}").is_err() {
                buf.sink_error = true;
            }
        }
    }
}

impl Recorder for Telemetry {
    fn counter_add(&self, name: &'static str, label: &str, delta: u64) {
        let mut counters = lock(&self.counters);
        let by_label = counters.entry(name).or_default();
        match by_label.get_mut(label) {
            Some(v) => *v += delta,
            None => {
                by_label.insert(label.to_string(), delta);
            }
        }
    }

    fn gauge_set(&self, name: &'static str, label: &str, value: f64) {
        lock(&self.gauges)
            .entry(name)
            .or_default()
            .insert(label.to_string(), value);
    }

    fn histogram_record(&self, name: &'static str, value: u64) {
        lock(&self.histograms)
            .entry(name)
            .or_default()
            .record(value);
    }

    fn span_record(&self, span: SpanRecord) {
        lock(&self.spans).push(span);
    }

    fn decision(&self, event: DecisionEvent) {
        let rate = self.cfg.sample_rate;
        if rate == 0 {
            return;
        }
        let seq = self.event_seq.fetch_add(1, Ordering::Relaxed);
        if !seq.is_multiple_of(u64::from(rate)) {
            return;
        }
        let record = EventRecord {
            seq,
            t_us: crate::now_us(),
            event,
        };
        self.events_recorded.fetch_add(1, Ordering::Relaxed);
        let mut buf = lock(&self.events);
        if self.cfg.dir.is_some() {
            let line = record.to_json_line();
            self.sink_write(&mut buf, &line);
        }
        if buf.ring.len() == self.cfg.ring_capacity.max(1) {
            buf.ring.pop_front();
        }
        buf.heatmap.offer(seq, &record.event);
        buf.ring.push_back(record);
    }

    fn events_enabled(&self) -> bool {
        self.cfg.sample_rate > 0
    }

    fn log_emitted(&self, level: Level) {
        self.log_counts[level as usize].fetch_add(1, Ordering::Relaxed);
    }
}

/// The globally installed handle: a thin forwarder so `install` can both
/// leak the hub once and hand out the typed `&'static Telemetry`.
struct HubHandle(&'static Telemetry);

impl Recorder for HubHandle {
    fn counter_add(&self, name: &'static str, label: &str, delta: u64) {
        self.0.counter_add(name, label, delta);
    }
    fn gauge_set(&self, name: &'static str, label: &str, value: f64) {
        self.0.gauge_set(name, label, value);
    }
    fn histogram_record(&self, name: &'static str, value: u64) {
        self.0.histogram_record(name, value);
    }
    fn span_record(&self, span: SpanRecord) {
        self.0.span_record(span);
    }
    fn decision(&self, event: DecisionEvent) {
        self.0.decision(event);
    }
    fn events_enabled(&self) -> bool {
        self.0.events_enabled()
    }
    fn log_emitted(&self, level: Level) {
        self.0.log_emitted(level);
    }
}

/// Writes `bytes` to `path` atomically (temp file in the same directory,
/// then rename), so a kill mid-export can never leave a torn artifact.
pub(crate) fn write_atomic(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let tmp = path.with_extension("tmp");
    std::fs::write(&tmp, bytes)?;
    std::fs::rename(&tmp, path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Comp, DecisionEvent, EvictionCase};

    fn imitation(set: u32) -> DecisionEvent {
        DecisionEvent::Imitation {
            set,
            component: Comp::A,
            case: EvictionCase::SameVictim,
        }
    }

    #[test]
    fn counters_accumulate_per_label() {
        let t = Telemetry::new(TelemetryConfig::default());
        t.counter_add("misses_total", "LRU", 2);
        t.counter_add("misses_total", "LRU", 3);
        t.counter_add("misses_total", "LFU", 1);
        assert_eq!(t.counter_value("misses_total", "LRU"), 5);
        assert_eq!(t.counter_value("misses_total", "LFU"), 1);
        assert_eq!(t.counter_value("misses_total", "absent"), 0);
    }

    #[test]
    fn sample_rate_zero_emits_nothing() {
        let t = Telemetry::new(TelemetryConfig::default().with_sample_rate(0));
        for i in 0..100 {
            t.decision(imitation(i));
        }
        assert!(!t.events_enabled());
        assert_eq!(t.events().len(), 0);
        assert_eq!(t.events_recorded(), 0);
        assert_eq!(t.events_seen(), 0, "rate 0 does not even count");
    }

    #[test]
    fn sample_rate_one_records_everything() {
        let t = Telemetry::new(TelemetryConfig::default());
        for i in 0..100 {
            t.decision(imitation(i));
        }
        assert_eq!(t.events().len(), 100);
        assert_eq!(t.events_seen(), 100);
        assert_eq!(t.events_recorded(), 100);
    }

    #[test]
    fn sample_rate_n_records_one_in_n() {
        let t = Telemetry::new(TelemetryConfig::default().with_sample_rate(10));
        for i in 0..100 {
            t.decision(imitation(i));
        }
        assert_eq!(t.events().len(), 10);
        assert_eq!(t.events_seen(), 100);
        // Sampled events keep their true stream position.
        assert_eq!(t.events()[1].seq, 10);
    }

    #[test]
    fn ring_overwrites_oldest() {
        let cfg = TelemetryConfig {
            ring_capacity: 4,
            ..TelemetryConfig::default()
        };
        let t = Telemetry::new(cfg);
        for i in 0..10 {
            t.decision(imitation(i));
        }
        let ev = t.events();
        assert_eq!(ev.len(), 4);
        assert_eq!(ev[0].seq, 6, "oldest events overwritten");
        assert_eq!(t.events_recorded(), 10, "recorded count is lifetime");
    }

    #[test]
    fn jsonl_sink_streams_every_sampled_event() {
        let dir = std::env::temp_dir().join(format!("ac_tlm_sink_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let t = Telemetry::new(TelemetryConfig::default().with_dir(&dir));
        for i in 0..20 {
            t.decision(imitation(i));
        }
        t.write_artifacts().unwrap();
        let text = std::fs::read_to_string(dir.join("events.jsonl")).unwrap();
        assert_eq!(text.lines().count(), 20);
        assert!(text.lines().all(|l| l.starts_with('{') && l.ends_with('}')));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn write_artifacts_without_dir_is_noop() {
        let t = Telemetry::new(TelemetryConfig::default());
        assert!(t.write_artifacts().unwrap().is_empty());
    }

    #[test]
    fn env_config_parses_modes() {
        // Uses explicit strings rather than set_var: from_env reads the
        // real environment, which tests must not mutate (other tests run
        // concurrently in this process).
        let cfg = TelemetryConfig::default();
        assert_eq!(cfg.sample_rate, 1);
        assert!(cfg.dir.is_none());
    }

    #[test]
    fn span_totals_aggregate_by_name() {
        let t = Telemetry::new(TelemetryConfig::default());
        for (name, dur) in [("a", 10), ("b", 5), ("a", 7)] {
            t.span_record(SpanRecord {
                name: name.to_string(),
                cat: "test",
                ts_us: 0,
                dur_us: dur,
                tid: 1,
                args: Vec::new(),
            });
        }
        let totals = t.span_totals();
        assert_eq!(totals.len(), 2);
        assert_eq!(totals[0], ("a".to_string(), "test", 2, 17));
        assert_eq!(totals[1], ("b".to_string(), "test", 1, 5));
    }
}
