//! Minimal JSON emission helpers (this crate is dependency-free, so it
//! writes its own JSON rather than pulling in a serializer).

use std::fmt::Write;

/// Appends `s` to `out` as a JSON string literal (with quotes).
pub(crate) fn push_str_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A JSON number from an `f64`, defaulting to `0` for non-finite values
/// (JSON has no NaN/Inf).
pub(crate) fn number(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "0".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_specials() {
        let mut s = String::new();
        push_str_escaped(&mut s, "a\"b\\c\nd\u{1}");
        assert_eq!(s, "\"a\\\"b\\\\c\\nd\\u0001\"");
    }

    #[test]
    fn non_finite_numbers_become_zero() {
        assert_eq!(number(f64::NAN), "0");
        assert_eq!(number(1.5), "1.5");
    }
}
