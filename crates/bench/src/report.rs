//! `cachesim report` — renders the telemetry artifacts of one run
//! (`telemetry-summary.json`, `timeline.jsonl`, `heatmap.json`) into a
//! single self-contained HTML file, and optionally diffs two runs.
//!
//! The HTML embeds inline CSS and inline SVG only: no JavaScript, no
//! external fonts, no network fetches. A report can be attached to a CI
//! artifact or mailed around and it will render identically anywhere.
//!
//! Compare mode (`--compare <old-run-dir>`) extracts a flat metric map
//! from both runs, computes per-metric percentage deltas, and classifies
//! each metric as lower-is-better (miss-like counters, MPKI),
//! higher-is-better (throughput) or neutral. A directional metric that
//! moves the wrong way by more than the threshold
//! (`--threshold <pct>` / `AC_REPORT_MAX_REGRESSION_PCT`, default 10%)
//! makes the subcommand exit with [`EXIT_REGRESSION`].

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

use serde_json::Value;

/// Exit code when `--compare` finds a regression beyond the threshold.
pub const EXIT_REGRESSION: i32 = 4;

/// Exit code for malformed flags / unreadable run directories (matches
/// the `cachesim` top-level convention).
pub const EXIT_INVALID_INPUT: i32 = 3;

/// Default regression threshold (percent) when neither `--threshold`
/// nor `AC_REPORT_MAX_REGRESSION_PCT` is given.
pub const DEFAULT_REGRESSION_PCT: f64 = 10.0;

// ---------------------------------------------------------------------------
// Artifact loading
// ---------------------------------------------------------------------------

/// The parsed telemetry artifacts of one run directory.
#[derive(Debug, Default)]
pub struct RunArtifacts {
    /// Directory the artifacts were loaded from.
    pub dir: PathBuf,
    /// Parsed `telemetry-summary.json`, when present.
    pub summary: Option<Value>,
    /// Parsed lines of `timeline.jsonl`, when present.
    pub timeline: Vec<Value>,
    /// Parsed `heatmap.json`, when present.
    pub heatmap: Option<Value>,
}

impl RunArtifacts {
    /// Loads whatever artifacts exist under `dir`. Missing files are
    /// tolerated (a functional run without decisions has no heatmap);
    /// present-but-unparsable files are an error.
    pub fn load(dir: &Path) -> Result<Self, String> {
        let mut out = RunArtifacts {
            dir: dir.to_path_buf(),
            ..RunArtifacts::default()
        };
        let summary_path = dir.join("telemetry-summary.json");
        if summary_path.is_file() {
            let text = std::fs::read_to_string(&summary_path)
                .map_err(|e| format!("{}: {e}", summary_path.display()))?;
            let v: Value = serde_json::from_str(&text)
                .map_err(|e| format!("{}: {e}", summary_path.display()))?;
            out.summary = Some(v);
        }
        let timeline_path = dir.join("timeline.jsonl");
        if timeline_path.is_file() {
            let text = std::fs::read_to_string(&timeline_path)
                .map_err(|e| format!("{}: {e}", timeline_path.display()))?;
            for (i, line) in text.lines().enumerate() {
                if line.trim().is_empty() {
                    continue;
                }
                let v: Value = serde_json::from_str(line)
                    .map_err(|e| format!("{} line {}: {e}", timeline_path.display(), i + 1))?;
                out.timeline.push(v);
            }
        }
        let heatmap_path = dir.join("heatmap.json");
        if heatmap_path.is_file() {
            let text = std::fs::read_to_string(&heatmap_path)
                .map_err(|e| format!("{}: {e}", heatmap_path.display()))?;
            let v: Value = serde_json::from_str(&text)
                .map_err(|e| format!("{}: {e}", heatmap_path.display()))?;
            out.heatmap = Some(v);
        }
        if out.summary.is_none() && out.timeline.is_empty() {
            return Err(format!(
                "{}: no telemetry artifacts found (expected telemetry-summary.json \
                 and/or timeline.jsonl — run with --telemetry <dir> first)",
                dir.display()
            ));
        }
        Ok(out)
    }

    /// Timeline rows grouped by their `run` label, preserving first-seen
    /// order so charts appear in emission order.
    fn timeline_by_run(&self) -> Vec<(String, Vec<&Value>)> {
        let mut order: Vec<String> = Vec::new();
        let mut groups: BTreeMap<String, Vec<&Value>> = BTreeMap::new();
        for row in &self.timeline {
            let run = row
                .get("run")
                .and_then(Value::as_str)
                .unwrap_or("(unlabelled)")
                .to_string();
            if !groups.contains_key(&run) {
                order.push(run.clone());
            }
            groups.entry(run).or_default().push(row);
        }
        order
            .into_iter()
            .map(|run| {
                let rows = groups.remove(&run).unwrap_or_default();
                (run, rows)
            })
            .collect()
    }
}

fn num(v: Option<&Value>) -> f64 {
    v.and_then(Value::as_f64).unwrap_or(0.0)
}

// ---------------------------------------------------------------------------
// Metric extraction + comparison
// ---------------------------------------------------------------------------

/// Which direction of movement is an improvement for a metric.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Smaller is better (misses, MPKI, retries, stalls).
    LowerBetter,
    /// Larger is better (throughput).
    HigherBetter,
    /// Informational only; never flags a regression.
    Neutral,
}

/// One comparable metric extracted from a run's artifacts.
#[derive(Debug, Clone, PartialEq)]
pub struct Metric {
    /// Stable key used to pair metrics across runs.
    pub key: String,
    /// Observed value.
    pub value: f64,
    /// Improvement direction.
    pub direction: Direction,
}

fn counter_direction(name: &str) -> Direction {
    const BAD: &[&str] = &[
        "miss",
        "writeback",
        "eviction",
        "retries",
        "fallback",
        "timed_out",
        "failed",
        "sb_stall",
    ];
    if BAD.iter().any(|b| name.contains(b)) {
        Direction::LowerBetter
    } else {
        Direction::Neutral
    }
}

fn gauge_direction(name: &str) -> Direction {
    if name.contains("per_sec") {
        Direction::HigherBetter
    } else {
        Direction::Neutral
    }
}

/// Flattens a run's artifacts into a keyed metric list: every summary
/// counter and gauge (per label), plus per-timeline overall MPKI and
/// mean throughput.
pub fn extract_metrics(run: &RunArtifacts) -> Vec<Metric> {
    let mut out = Vec::new();
    if let Some(summary) = &run.summary {
        if let Some(counters) = summary.get("counters").and_then(Value::as_object) {
            for (name, by_label) in counters.iter() {
                let dir = counter_direction(name);
                if let Some(map) = by_label.as_object() {
                    for (label, value) in map.iter() {
                        out.push(Metric {
                            key: format!("counter:{name}{{{label}}}"),
                            value: num(Some(value)),
                            direction: dir,
                        });
                    }
                }
            }
        }
        if let Some(gauges) = summary.get("gauges").and_then(Value::as_object) {
            for (name, by_label) in gauges.iter() {
                let dir = gauge_direction(name);
                if let Some(map) = by_label.as_object() {
                    for (label, value) in map.iter() {
                        out.push(Metric {
                            key: format!("gauge:{name}{{{label}}}"),
                            value: num(Some(value)),
                            direction: dir,
                        });
                    }
                }
            }
        }
    }
    for (label, rows) in run.timeline_by_run() {
        let misses: f64 = rows.iter().map(|r| num(r.get("misses"))).sum();
        let insts: f64 = rows.iter().map(|r| num(r.get("instructions"))).sum();
        if insts > 0.0 {
            out.push(Metric {
                key: format!("timeline:{label}:mpki"),
                value: 1000.0 * misses / insts,
                direction: Direction::LowerBetter,
            });
        }
        let rates: Vec<f64> = rows
            .iter()
            .map(|r| num(r.get("ticks_per_sec")))
            .filter(|x| x.is_finite() && *x > 0.0)
            .collect();
        if !rates.is_empty() {
            out.push(Metric {
                key: format!("timeline:{label}:ticks_per_sec"),
                value: rates.iter().sum::<f64>() / rates.len() as f64,
                direction: Direction::HigherBetter,
            });
        }
    }
    out
}

/// The diff of one metric across two runs.
#[derive(Debug, Clone)]
pub struct MetricDelta {
    /// Metric key (shared by both runs).
    pub key: String,
    /// Value in the baseline (`--compare`) run.
    pub old: f64,
    /// Value in the current run.
    pub new: f64,
    /// `(new - old) / old * 100`; `0` when both sides are zero.
    pub delta_pct: f64,
    /// Improvement direction of the metric.
    pub direction: Direction,
    /// True when the metric moved in its bad direction past the threshold.
    pub regressed: bool,
}

/// Pairs the metrics of two runs and flags regressions beyond
/// `threshold_pct`. Metrics present in only one run are skipped — a
/// diff needs both sides.
pub fn compare_metrics(old: &[Metric], new: &[Metric], threshold_pct: f64) -> Vec<MetricDelta> {
    let old_by_key: BTreeMap<&str, &Metric> = old.iter().map(|m| (m.key.as_str(), m)).collect();
    let mut out = Vec::new();
    for m in new {
        let Some(o) = old_by_key.get(m.key.as_str()) else {
            continue;
        };
        let delta_pct = if o.value == 0.0 {
            if m.value == 0.0 {
                0.0
            } else {
                f64::INFINITY
            }
        } else {
            (m.value - o.value) / o.value * 100.0
        };
        let regressed = match m.direction {
            Direction::LowerBetter => delta_pct > threshold_pct,
            Direction::HigherBetter => -delta_pct > threshold_pct,
            Direction::Neutral => false,
        };
        out.push(MetricDelta {
            key: m.key.clone(),
            old: o.value,
            new: m.value,
            delta_pct,
            direction: m.direction,
            regressed,
        });
    }
    // Regressions first, then by magnitude of movement.
    out.sort_by(|a, b| {
        b.regressed.cmp(&a.regressed).then(
            b.delta_pct
                .abs()
                .partial_cmp(&a.delta_pct.abs())
                .unwrap_or(std::cmp::Ordering::Equal),
        )
    });
    out
}

// ---------------------------------------------------------------------------
// HTML / SVG rendering
// ---------------------------------------------------------------------------

fn esc(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            _ => out.push(c),
        }
    }
}

fn escaped(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    esc(s, &mut out);
    out
}

fn fmt_val(x: f64) -> String {
    if !x.is_finite() {
        return "∞".to_string();
    }
    if x == x.trunc() && x.abs() < 1e15 {
        format!("{}", x as i64)
    } else if x.abs() >= 100.0 {
        format!("{x:.1}")
    } else {
        format!("{x:.4}")
    }
}

/// One named series of (x, y) points for a line chart.
struct Series {
    name: String,
    points: Vec<(f64, f64)>,
}

const CHART_W: f64 = 720.0;
const CHART_H: f64 = 200.0;
const MARGIN_L: f64 = 64.0;
const MARGIN_R: f64 = 12.0;
const MARGIN_T: f64 = 10.0;
const MARGIN_B: f64 = 26.0;
const PALETTE: &[&str] = &[
    "#1f77b4", "#ff7f0e", "#2ca02c", "#d62728", "#9467bd", "#8c564b",
];

/// Renders a multi-series SVG line chart. `reference` draws a dashed
/// horizontal rule (e.g. the 0.5 line for imitation fractions).
fn svg_line_chart(title: &str, x_label: &str, series: &[Series], reference: Option<f64>) -> String {
    let mut svg = String::new();
    let pts: Vec<(f64, f64)> = series
        .iter()
        .flat_map(|s| s.points.iter().copied())
        .collect();
    if pts.is_empty() {
        return svg;
    }
    let (mut x0, mut x1) = (f64::INFINITY, f64::NEG_INFINITY);
    let (mut y0, mut y1) = (f64::INFINITY, f64::NEG_INFINITY);
    for &(x, y) in &pts {
        x0 = x0.min(x);
        x1 = x1.max(x);
        y0 = y0.min(y);
        y1 = y1.max(y);
    }
    if let Some(r) = reference {
        y0 = y0.min(r);
        y1 = y1.max(r);
    }
    y0 = y0.min(0.0);
    if (x1 - x0).abs() < f64::EPSILON {
        x1 = x0 + 1.0;
    }
    if (y1 - y0).abs() < f64::EPSILON {
        y1 = y0 + 1.0;
    }
    let px = |x: f64| MARGIN_L + (x - x0) / (x1 - x0) * (CHART_W - MARGIN_L - MARGIN_R);
    let py = |y: f64| CHART_H - MARGIN_B - (y - y0) / (y1 - y0) * (CHART_H - MARGIN_T - MARGIN_B);

    let _ = write!(
        svg,
        "<svg viewBox=\"0 0 {CHART_W} {CHART_H}\" width=\"{CHART_W}\" height=\"{CHART_H}\" \
         xmlns=\"http://www.w3.org/2000/svg\" role=\"img\" aria-label=\"{}\">",
        escaped(title)
    );
    // Axes.
    let _ = write!(
        svg,
        "<line x1=\"{l}\" y1=\"{b}\" x2=\"{r}\" y2=\"{b}\" stroke=\"#888\"/>\
         <line x1=\"{l}\" y1=\"{t}\" x2=\"{l}\" y2=\"{b}\" stroke=\"#888\"/>",
        l = MARGIN_L,
        r = CHART_W - MARGIN_R,
        t = MARGIN_T,
        b = CHART_H - MARGIN_B,
    );
    // Y tick labels (min / mid / max).
    for frac in [0.0, 0.5, 1.0] {
        let y = y0 + frac * (y1 - y0);
        let _ = write!(
            svg,
            "<text x=\"{}\" y=\"{:.1}\" font-size=\"10\" text-anchor=\"end\" fill=\"#555\">{}</text>",
            MARGIN_L - 4.0,
            py(y) + 3.0,
            fmt_val(y)
        );
    }
    // X range labels.
    let _ = write!(
        svg,
        "<text x=\"{}\" y=\"{}\" font-size=\"10\" fill=\"#555\">{}</text>\
         <text x=\"{}\" y=\"{}\" font-size=\"10\" text-anchor=\"end\" fill=\"#555\">{} ({})</text>",
        MARGIN_L,
        CHART_H - 8.0,
        fmt_val(x0),
        CHART_W - MARGIN_R,
        CHART_H - 8.0,
        fmt_val(x1),
        escaped(x_label),
    );
    if let Some(r) = reference {
        let _ = write!(
            svg,
            "<line x1=\"{}\" y1=\"{:.1}\" x2=\"{}\" y2=\"{:.1}\" stroke=\"#aaa\" \
             stroke-dasharray=\"4 3\"/>",
            MARGIN_L,
            py(r),
            CHART_W - MARGIN_R,
            py(r)
        );
    }
    for (i, s) in series.iter().enumerate() {
        let color = PALETTE[i % PALETTE.len()];
        let mut path = String::new();
        for (j, &(x, y)) in s.points.iter().enumerate() {
            let _ = write!(
                path,
                "{}{:.1},{:.1}",
                if j == 0 { "" } else { " " },
                px(x),
                py(y)
            );
        }
        let _ = write!(
            svg,
            "<polyline points=\"{path}\" fill=\"none\" stroke=\"{color}\" stroke-width=\"1.5\">\
             <title>{}</title></polyline>",
            escaped(&s.name)
        );
    }
    svg.push_str("</svg>");
    // Legend under the chart.
    let mut legend = String::from("<div class=\"legend\">");
    for (i, s) in series.iter().enumerate() {
        let color = PALETTE[i % PALETTE.len()];
        let _ = write!(
            legend,
            "<span><i style=\"background:{color}\"></i>{}</span>",
            escaped(&s.name)
        );
    }
    legend.push_str("</div>");
    svg + &legend
}

fn chart_section(
    out: &mut String,
    title: &str,
    x_label: &str,
    series: Vec<Series>,
    reference: Option<f64>,
) {
    let nonempty: Vec<Series> = series
        .into_iter()
        .filter(|s| !s.points.is_empty())
        .collect();
    if nonempty.is_empty() {
        return;
    }
    let _ = write!(out, "<h3>{}</h3>", escaped(title));
    out.push_str(&svg_line_chart(title, x_label, &nonempty, reference));
}

fn series_of(rows: &[&Value], x_field: &str, f: impl Fn(&Value) -> Option<f64>) -> Vec<(f64, f64)> {
    rows.iter()
        .filter_map(|r| {
            let x = r.get(x_field).and_then(Value::as_f64)?;
            let y = f(r)?;
            y.is_finite().then_some((x, y))
        })
        .collect()
}

fn render_timeline_charts(out: &mut String, run: &RunArtifacts) {
    for (label, rows) in run.timeline_by_run() {
        let unit = rows
            .first()
            .and_then(|r| r.get("unit"))
            .and_then(Value::as_str)
            .unwrap_or("ticks")
            .to_string();
        let _ = write!(out, "<h2>Timeline — {}</h2>", escaped(&label));
        let _ = write!(
            out,
            "<p class=\"note\">{} windows, x-axis in {}.</p>",
            rows.len(),
            escaped(&unit)
        );

        chart_section(
            out,
            "Windowed MPKI",
            &unit,
            vec![Series {
                name: "mpki".into(),
                points: series_of(&rows, "end", |r| r.get("mpki").and_then(Value::as_f64)),
            }],
            None,
        );
        chart_section(
            out,
            "Imitation choice fraction (B)",
            &unit,
            vec![Series {
                name: "imit_frac_b".into(),
                points: series_of(&rows, "end", |r| {
                    r.get("imit_frac_b").and_then(Value::as_f64)
                }),
            }],
            Some(0.5),
        );
        chart_section(
            out,
            "Exclusive misses per window",
            &unit,
            vec![
                Series {
                    name: "excl_a_misses".into(),
                    points: series_of(&rows, "end", |r| {
                        r.get("excl_a_misses").and_then(Value::as_f64)
                    }),
                },
                Series {
                    name: "excl_b_misses".into(),
                    points: series_of(&rows, "end", |r| {
                        r.get("excl_b_misses").and_then(Value::as_f64)
                    }),
                },
            ],
            None,
        );
        chart_section(
            out,
            "Leader votes per window / PSEL",
            &unit,
            vec![
                Series {
                    name: "leader_votes".into(),
                    points: series_of(&rows, "end", |r| {
                        r.get("leader_votes").and_then(Value::as_f64)
                    }),
                },
                Series {
                    name: "psel".into(),
                    points: series_of(&rows, "end", |r| r.get("psel").and_then(Value::as_f64)),
                },
            ],
            None,
        );
        chart_section(
            out,
            "Throughput",
            &unit,
            vec![Series {
                name: format!("{unit}/sec"),
                points: series_of(&rows, "end", |r| {
                    r.get("ticks_per_sec").and_then(Value::as_f64)
                }),
            }],
            None,
        );
        let mshr = series_of(&rows, "end", |r| r.get("mshr_busy").and_then(Value::as_f64));
        let sb = series_of(&rows, "end", |r| r.get("sb_busy").and_then(Value::as_f64));
        if mshr.iter().any(|&(_, y)| y > 0.0) || sb.iter().any(|&(_, y)| y > 0.0) {
            chart_section(
                out,
                "MSHR / store-buffer occupancy at window close",
                &unit,
                vec![
                    Series {
                        name: "mshr_busy".into(),
                        points: mshr,
                    },
                    Series {
                        name: "sb_busy".into(),
                        points: sb,
                    },
                ],
                None,
            );
        }
    }
}

fn heat_color(imit_a: f64, imit_b: f64, misses: f64, max_misses: f64) -> String {
    // Hue from the imitation split (A = blue #1f77b4, B = orange #ff7f0e),
    // intensity from the windowed miss density.
    let total = imit_a + imit_b;
    let frac_b = if total > 0.0 { imit_b / total } else { 0.5 };
    let mix = |a: f64, b: f64| a + (b - a) * frac_b;
    let (r, g, b) = (
        mix(0x1f as f64, 0xff as f64),
        mix(0x77 as f64, 0x7f as f64),
        mix(0xb4 as f64, 0x0e as f64),
    );
    let alpha = if max_misses > 0.0 {
        (0.15 + 0.85 * (misses / max_misses)).min(1.0)
    } else {
        0.4
    };
    format!(
        "rgba({},{},{},{alpha:.2})",
        r.round() as u32,
        g.round() as u32,
        b.round() as u32
    )
}

fn render_heatmap(out: &mut String, heatmap: &Value) {
    let Some(windows) = heatmap.get("windows").and_then(Value::as_array) else {
        return;
    };
    if windows.is_empty() {
        return;
    }
    // Collect the sampled set ids (rows) across every window.
    let mut sets: Vec<u64> = Vec::new();
    let mut max_misses = 0.0_f64;
    for w in windows {
        if let Some(cells) = w.get("sets").and_then(Value::as_array) {
            for c in cells {
                let set = num(c.get("set")) as u64;
                if !sets.contains(&set) {
                    sets.push(set);
                }
                max_misses = max_misses.max(num(c.get("miss_a")) + num(c.get("miss_b")));
            }
        }
    }
    sets.sort_unstable();
    if sets.is_empty() {
        return;
    }

    out.push_str("<h2>Per-set decision heatmap</h2>");
    let _ = write!(
        out,
        "<p class=\"note\">{} sampled sets × {} windows (stride {}, {} events/window). \
         Blue = imitates A, orange = imitates B; opacity tracks windowed miss density.</p>",
        sets.len(),
        windows.len(),
        num(heatmap.get("set_stride")),
        num(heatmap.get("window_events")),
    );

    const CELL: f64 = 9.0;
    const GAP: f64 = 1.0;
    const LABEL_W: f64 = 44.0;
    let w = LABEL_W + windows.len() as f64 * (CELL + GAP) + 8.0;
    let h = sets.len() as f64 * (CELL + GAP) + 24.0;
    let _ = write!(
        out,
        "<svg viewBox=\"0 0 {w:.0} {h:.0}\" width=\"{w:.0}\" height=\"{h:.0}\" \
         xmlns=\"http://www.w3.org/2000/svg\" role=\"img\" aria-label=\"per-set heatmap\">"
    );
    for (row, set) in sets.iter().enumerate() {
        let y = row as f64 * (CELL + GAP);
        let _ = write!(
            out,
            "<text x=\"{:.0}\" y=\"{:.1}\" font-size=\"8\" text-anchor=\"end\" \
             fill=\"#555\">set {set}</text>",
            LABEL_W - 4.0,
            y + CELL - 1.0,
        );
    }
    for (col, wnd) in windows.iter().enumerate() {
        let x = LABEL_W + col as f64 * (CELL + GAP);
        let (start, end) = (num(wnd.get("start_seq")), num(wnd.get("end_seq")));
        let Some(cells) = wnd.get("sets").and_then(Value::as_array) else {
            continue;
        };
        for c in cells {
            let set = num(c.get("set")) as u64;
            let Some(row) = sets.iter().position(|&s| s == set) else {
                continue;
            };
            let y = row as f64 * (CELL + GAP);
            let (ia, ib) = (num(c.get("imit_a")), num(c.get("imit_b")));
            let (ma, mb) = (num(c.get("miss_a")), num(c.get("miss_b")));
            let fill = heat_color(ia, ib, ma + mb, max_misses);
            let _ = write!(
                out,
                "<rect x=\"{x:.1}\" y=\"{y:.1}\" width=\"{CELL}\" height=\"{CELL}\" \
                 fill=\"{fill}\"><title>set {set}, events {}..{}: imit A={}, B={}, \
                 misses A={}, B={}</title></rect>",
                fmt_val(start),
                fmt_val(end),
                fmt_val(ia),
                fmt_val(ib),
                fmt_val(ma),
                fmt_val(mb),
            );
        }
    }
    out.push_str("</svg>");
}

fn render_summary_tables(out: &mut String, summary: &Value) {
    for (section, heading) in [("counters", "Counters"), ("gauges", "Gauges")] {
        let Some(map) = summary.get(section).and_then(Value::as_object) else {
            continue;
        };
        if map.iter().next().is_none() {
            continue;
        }
        let _ = write!(
            out,
            "<h3>{heading}</h3><table><tr><th>name</th><th>label</th><th>value</th></tr>"
        );
        for (name, by_label) in map.iter() {
            if let Some(labels) = by_label.as_object() {
                for (label, value) in labels.iter() {
                    let _ = write!(
                        out,
                        "<tr><td>{}</td><td>{}</td><td class=\"num\">{}</td></tr>",
                        escaped(name),
                        escaped(label),
                        fmt_val(num(Some(value))),
                    );
                }
            }
        }
        out.push_str("</table>");
    }
    if let Some(events) = summary.get("events") {
        let _ = write!(
            out,
            "<p class=\"note\">Decision events: {} seen, {} recorded (sample rate {}).</p>",
            fmt_val(num(events.get("seen"))),
            fmt_val(num(events.get("recorded"))),
            fmt_val(num(events.get("sample_rate"))),
        );
    }
}

fn render_compare_table(out: &mut String, baseline: &Path, deltas: &[MetricDelta], threshold: f64) {
    out.push_str("<h2>Run-to-run comparison</h2>");
    let _ = write!(
        out,
        "<p class=\"note\">Baseline: <code>{}</code>; regression threshold ±{threshold}%.</p>",
        escaped(&baseline.display().to_string())
    );
    out.push_str(
        "<table><tr><th>metric</th><th>baseline</th><th>current</th>\
         <th>Δ%</th><th>verdict</th></tr>",
    );
    for d in deltas {
        let (class, verdict) = if d.regressed {
            ("bad", "REGRESSION")
        } else if d.direction == Direction::Neutral {
            ("", "")
        } else if d.delta_pct == 0.0 {
            ("", "=")
        } else {
            let improved = match d.direction {
                Direction::LowerBetter => d.delta_pct < 0.0,
                Direction::HigherBetter => d.delta_pct > 0.0,
                Direction::Neutral => false,
            };
            if improved {
                ("good", "improved")
            } else {
                ("", "within threshold")
            }
        };
        let _ = write!(
            out,
            "<tr class=\"{class}\"><td>{}</td><td class=\"num\">{}</td>\
             <td class=\"num\">{}</td><td class=\"num\">{}</td><td>{verdict}</td></tr>",
            escaped(&d.key),
            fmt_val(d.old),
            fmt_val(d.new),
            if d.delta_pct.is_finite() {
                format!("{:+.2}", d.delta_pct)
            } else {
                "+∞".to_string()
            },
        );
    }
    out.push_str("</table>");
}

/// Renders the full self-contained HTML document.
pub fn render_html(
    run: &RunArtifacts,
    compare: Option<(&RunArtifacts, &[MetricDelta], f64)>,
) -> String {
    let mut out = String::with_capacity(64 * 1024);
    out.push_str("<!DOCTYPE html><html lang=\"en\"><head><meta charset=\"utf-8\">");
    let _ = write!(
        out,
        "<title>cachesim report — {}</title>",
        escaped(&run.dir.display().to_string())
    );
    out.push_str(
        "<style>\
         body{font-family:system-ui,sans-serif;margin:2rem auto;max-width:60rem;\
              color:#222;line-height:1.4}\
         h1{font-size:1.4rem}h2{font-size:1.15rem;margin-top:2rem;\
              border-bottom:1px solid #ddd;padding-bottom:.2rem}\
         h3{font-size:1rem;margin-bottom:.3rem}\
         table{border-collapse:collapse;font-size:.85rem;margin:.5rem 0}\
         th,td{border:1px solid #ddd;padding:.25rem .5rem;text-align:left}\
         td.num{text-align:right;font-variant-numeric:tabular-nums}\
         tr.bad td{background:#fde8e8}tr.good td{background:#e8f5e9}\
         .note{color:#666;font-size:.85rem}\
         .legend{font-size:.8rem;color:#444;margin:.2rem 0 .8rem}\
         .legend span{margin-right:1rem}\
         .legend i{display:inline-block;width:.8em;height:.8em;margin-right:.3em;\
              vertical-align:-0.05em}\
         code{background:#f5f5f5;padding:0 .2em}\
         </style></head><body>",
    );
    let _ = write!(
        out,
        "<h1>cachesim run report</h1>\
         <p class=\"note\">Run directory: <code>{}</code></p>",
        escaped(&run.dir.display().to_string())
    );

    if let Some((baseline, deltas, threshold)) = compare {
        render_compare_table(&mut out, &baseline.dir, deltas, threshold);
    }
    render_timeline_charts(&mut out, run);
    if let Some(heatmap) = &run.heatmap {
        render_heatmap(&mut out, heatmap);
    }
    if let Some(summary) = &run.summary {
        out.push_str("<h2>Run summary</h2>");
        render_summary_tables(&mut out, summary);
    }
    out.push_str("</body></html>");
    out
}

/// Renders the standard run report from the *live* telemetry hub: the
/// in-memory summary and timelines are snapshotted (no artifacts need to
/// exist on disk), a sweep-progress section is injected under the
/// heading, and a 2-second `<meta http-equiv="refresh">` keeps the page
/// current. Returns `None` when no hub is installed — the introspection
/// server then falls back to its built-in dashboard.
///
/// Registered as the `GET /` renderer of `ac_telemetry::serve` by the
/// `cachesim --serve` front end.
pub fn render_live_html() -> Option<String> {
    let hub = ac_telemetry::hub()?;
    let summary: Option<Value> = serde_json::from_str(&hub.summary_json()).ok();
    let mut jsonl = String::new();
    for t in hub.timelines() {
        t.write_jsonl(&mut jsonl);
    }
    let timeline: Vec<Value> = jsonl
        .lines()
        .filter(|l| !l.trim().is_empty())
        .filter_map(|l| serde_json::from_str(l).ok())
        .collect();
    let run = RunArtifacts {
        dir: PathBuf::from("(live)"),
        summary,
        timeline,
        heatmap: None,
    };
    let html = render_html(&run, None)
        .replacen(
            "<meta charset=\"utf-8\">",
            "<meta charset=\"utf-8\"><meta http-equiv=\"refresh\" content=\"2\">",
            1,
        )
        .replacen(
            "<h1>cachesim run report</h1>",
            &format!(
                "<h1>cachesim run report <em>(live)</em></h1>{}",
                progress_section()
            ),
            1,
        );
    Some(html)
}

/// The live sweep-progress section of the dashboard (empty string when
/// no sweep has registered).
fn progress_section() -> String {
    let sweeps = ac_telemetry::progress::snapshot();
    if sweeps.is_empty() {
        return String::new();
    }
    let mut out = String::from("<h2>Sweep progress</h2><table><tr><th>sweep</th><th>cells</th><th>failed</th><th>running</th><th>elapsed</th><th>ETA</th></tr>");
    for s in &sweeps {
        let state = if s.finished {
            "done".to_string()
        } else {
            format!("{:.0}s", s.eta_secs)
        };
        let _ = write!(
            out,
            "<tr><td>{}</td><td class=\"num\">{}/{}</td><td class=\"num\">{}</td>\
             <td class=\"num\">{}</td><td class=\"num\">{:.1}s</td><td class=\"num\">{}</td></tr>",
            escaped(&s.name),
            s.completed(),
            s.total,
            s.failed + s.timed_out,
            s.running.len(),
            s.elapsed_secs,
            state,
        );
    }
    out.push_str("</table>");
    out
}

// ---------------------------------------------------------------------------
// Subcommand driver
// ---------------------------------------------------------------------------

fn threshold_from_env() -> f64 {
    std::env::var("AC_REPORT_MAX_REGRESSION_PCT")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(DEFAULT_REGRESSION_PCT)
}

/// Runs `cachesim report <run-dir> [--compare <old-run-dir>] [--out <file>]
/// [--threshold <pct>]`; returns the process exit code.
pub fn run_report_subcommand(rest: &[String]) -> i32 {
    let mut run_dir: Option<PathBuf> = None;
    let mut compare_dir: Option<PathBuf> = None;
    let mut out_path: Option<PathBuf> = None;
    let mut threshold: Option<f64> = None;

    let mut i = 0;
    while i < rest.len() {
        let arg = rest[i].as_str();
        let take_operand = |i: &mut usize| -> Option<String> {
            *i += 1;
            rest.get(*i).cloned()
        };
        match arg {
            "--compare" => {
                let Some(v) = take_operand(&mut i) else {
                    eprintln!("error: `--compare` requires a run-directory operand");
                    return EXIT_INVALID_INPUT;
                };
                compare_dir = Some(PathBuf::from(v));
            }
            "--out" => {
                let Some(v) = take_operand(&mut i) else {
                    eprintln!("error: `--out` requires a file operand");
                    return EXIT_INVALID_INPUT;
                };
                out_path = Some(PathBuf::from(v));
            }
            "--threshold" => {
                let Some(v) = take_operand(&mut i) else {
                    eprintln!("error: `--threshold` requires a percentage operand");
                    return EXIT_INVALID_INPUT;
                };
                match v.parse::<f64>() {
                    Ok(pct) if pct >= 0.0 => threshold = Some(pct),
                    _ => {
                        eprintln!("error: `--threshold` wants a non-negative number, got `{v}`");
                        return EXIT_INVALID_INPUT;
                    }
                }
            }
            _ if arg.starts_with("--") => {
                eprintln!("error: unknown report flag `{arg}`");
                return EXIT_INVALID_INPUT;
            }
            _ => {
                if run_dir.is_some() {
                    eprintln!("error: report takes exactly one run directory");
                    return EXIT_INVALID_INPUT;
                }
                run_dir = Some(PathBuf::from(arg));
            }
        }
        i += 1;
    }
    let Some(run_dir) = run_dir else {
        eprintln!("error: usage: cachesim report <run-dir> [--compare <old-run-dir>] [--out <file>] [--threshold <pct>]");
        return EXIT_INVALID_INPUT;
    };
    let threshold = threshold.unwrap_or_else(threshold_from_env);

    let run = match RunArtifacts::load(&run_dir) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            return EXIT_INVALID_INPUT;
        }
    };
    let baseline = match &compare_dir {
        Some(dir) => match RunArtifacts::load(dir) {
            Ok(r) => Some(r),
            Err(e) => {
                eprintln!("error: {e}");
                return EXIT_INVALID_INPUT;
            }
        },
        None => None,
    };

    let deltas: Vec<MetricDelta> = baseline
        .as_ref()
        .map(|b| compare_metrics(&extract_metrics(b), &extract_metrics(&run), threshold))
        .unwrap_or_default();

    let html = render_html(
        &run,
        baseline.as_ref().map(|b| (b, deltas.as_slice(), threshold)),
    );
    let out_path = out_path.unwrap_or_else(|| run.dir.join("report.html"));
    if let Err(e) = write_atomic(&out_path, &html) {
        eprintln!("error: could not write {}: {e}", out_path.display());
        return EXIT_INVALID_INPUT;
    }
    println!("report: wrote {}", out_path.display());

    if let Some(b) = &baseline {
        let regressions: Vec<&MetricDelta> = deltas.iter().filter(|d| d.regressed).collect();
        println!(
            "compare: {} shared metrics vs {} ({} regression{} at ±{threshold}%)",
            deltas.len(),
            b.dir.display(),
            regressions.len(),
            if regressions.len() == 1 { "" } else { "s" },
        );
        for d in &deltas {
            let tag = if d.regressed {
                "REGRESSION"
            } else if d.direction == Direction::Neutral {
                "  (info)  "
            } else {
                "    ok    "
            };
            println!(
                "  {tag} {:<52} {:>14} -> {:>14}  {:>9}%",
                d.key,
                fmt_val(d.old),
                fmt_val(d.new),
                if d.delta_pct.is_finite() {
                    format!("{:+.2}", d.delta_pct)
                } else {
                    "+inf".to_string()
                }
            );
        }
        if !regressions.is_empty() {
            return EXIT_REGRESSION;
        }
    }
    0
}

/// Writes `content` to `path` via a sibling temp file + rename so readers
/// never observe a half-written report.
fn write_atomic(path: &Path, content: &str) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    let tmp = path.with_extension("html.tmp");
    std::fs::write(&tmp, content)?;
    std::fs::rename(&tmp, path)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(s: &str) -> Value {
        serde_json::from_str(s).expect("test JSON parses")
    }

    fn timeline_row(run: &str, end: u64, misses: u64, insts: u64, tps: f64) -> Value {
        v(&format!(
            r#"{{"run":"{run}","unit":"accesses","end":{end},"misses":{misses},
               "instructions":{insts},"mpki":{},"imit_frac_b":0.5,
               "ticks_per_sec":{tps},"excl_a_misses":1,"excl_b_misses":2,
               "leader_votes":0,"psel":null,"mshr_busy":0,"sb_busy":0}}"#,
            1000.0 * misses as f64 / insts as f64
        ))
    }

    fn sample_run(misses: u64, rate: f64) -> RunArtifacts {
        RunArtifacts {
            dir: PathBuf::from("/tmp/run"),
            summary: Some(v(&format!(
                r#"{{"schema_version":2,
                    "counters":{{"l2_misses":{{"policy=adaptive":{misses}}},
                                 "l2_hits":{{"policy=adaptive":900}}}},
                    "gauges":{{"accesses_per_sec":{{"run=x":{rate}}}}},
                    "histograms":{{}},"spans":{{}},
                    "log":{{"error":0,"warn":0,"info":0,"debug":0}},
                    "events":{{"seen":10,"recorded":10,"sample_rate":1}}}}"#
            ))),
            timeline: vec![
                timeline_row("functional x", 100, misses / 2, 1000, rate),
                timeline_row("functional x", 200, misses / 2, 1000, rate),
            ],
            heatmap: None,
        }
    }

    #[test]
    fn metric_extraction_assigns_directions() {
        let run = sample_run(100, 5000.0);
        let metrics = extract_metrics(&run);
        let find = |key: &str| {
            metrics
                .iter()
                .find(|m| m.key == key)
                .unwrap_or_else(|| panic!("metric {key} missing from {metrics:?}"))
        };
        assert_eq!(
            find("counter:l2_misses{policy=adaptive}").direction,
            Direction::LowerBetter
        );
        assert_eq!(
            find("counter:l2_hits{policy=adaptive}").direction,
            Direction::Neutral
        );
        assert_eq!(
            find("gauge:accesses_per_sec{run=x}").direction,
            Direction::HigherBetter
        );
        let mpki = find("timeline:functional x:mpki");
        assert_eq!(mpki.direction, Direction::LowerBetter);
        // 100 misses over 2000 instructions across the two windows.
        assert!((mpki.value - 50.0).abs() < 1e-9, "mpki = {}", mpki.value);
    }

    #[test]
    fn self_compare_has_zero_deltas_and_no_regressions() {
        let run = sample_run(100, 5000.0);
        let metrics = extract_metrics(&run);
        let deltas = compare_metrics(&metrics, &metrics, 10.0);
        assert!(!deltas.is_empty());
        for d in &deltas {
            assert_eq!(d.delta_pct, 0.0, "{} moved on self-compare", d.key);
            assert!(!d.regressed);
        }
    }

    #[test]
    fn regressions_flag_only_bad_directional_moves() {
        let old = extract_metrics(&sample_run(100, 5000.0));
        // Misses up 50% (bad), throughput up 50% (good).
        let new = extract_metrics(&sample_run(150, 7500.0));
        let deltas = compare_metrics(&old, &new, 10.0);
        let find = |key: &str| deltas.iter().find(|d| d.key == key).expect(key);
        assert!(find("counter:l2_misses{policy=adaptive}").regressed);
        assert!(find("timeline:functional x:mpki").regressed);
        assert!(!find("gauge:accesses_per_sec{run=x}").regressed);
        // Reverse the comparison: throughput drops 33% → regression.
        let deltas = compare_metrics(&new, &old, 10.0);
        assert!(
            deltas
                .iter()
                .find(|d| d.key == "gauge:accesses_per_sec{run=x}")
                .expect("throughput metric")
                .regressed
        );
    }

    #[test]
    fn zero_baseline_handling() {
        let old = [Metric {
            key: "counter:l2_misses{x}".into(),
            value: 0.0,
            direction: Direction::LowerBetter,
        }];
        let same = compare_metrics(&old, &old, 10.0);
        assert_eq!(same[0].delta_pct, 0.0);
        assert!(!same[0].regressed);
        let new = [Metric {
            key: "counter:l2_misses{x}".into(),
            value: 7.0,
            direction: Direction::LowerBetter,
        }];
        let grew = compare_metrics(&old, &new, 10.0);
        assert!(grew[0].delta_pct.is_infinite());
        assert!(grew[0].regressed);
    }

    #[test]
    fn html_is_self_contained() {
        let run = sample_run(100, 5000.0);
        let html = render_html(&run, None);
        assert!(html.starts_with("<!DOCTYPE html>"));
        assert!(html.contains("<svg"));
        assert!(html.contains("Windowed MPKI"));
        // No external fetches of any kind (the SVG xmlns attribute is an
        // inert namespace identifier, not a URL the renderer loads).
        for needle in ["<script", "<link", "@import", "href=", "src="] {
            assert!(
                !html.contains(needle),
                "report HTML must be self-contained but contains `{needle}`"
            );
        }
    }

    #[test]
    fn html_escapes_hostile_labels() {
        let mut run = sample_run(100, 5000.0);
        run.timeline = vec![timeline_row("functional x", 100, 10, 1000, 1.0)];
        if let Some(Value::Object(_)) = &run.summary {
            // Inject a hostile counter label through the parser.
            run.summary = Some(v(r#"{"counters":{"evil<name>":{"l=\"<script>\"":3}},
                    "gauges":{},"events":{"seen":0,"recorded":0,"sample_rate":1}}"#));
        }
        let html = render_html(&run, None);
        assert!(!html.contains("<script>"));
        assert!(html.contains("&lt;script&gt;"));
        assert!(html.contains("evil&lt;name&gt;"));
    }

    #[test]
    fn heatmap_renders_cells() {
        let mut run = sample_run(10, 1.0);
        run.heatmap = Some(v(
            r#"{"schema_version":1,"window_events":64,"set_stride":2,"events":6,
                "windows":[{"start_seq":0,"end_seq":64,
                  "sets":[{"set":0,"imit_a":3,"imit_b":1,"miss_a":2,"miss_b":0},
                          {"set":2,"imit_a":0,"imit_b":5,"miss_a":0,"miss_b":4}]}]}"#,
        ));
        let html = render_html(&run, None);
        assert!(html.contains("Per-set decision heatmap"));
        assert!(html.contains("set 0"));
        assert!(html.contains("set 2"));
        assert!(html.contains("<rect"));
    }
}
