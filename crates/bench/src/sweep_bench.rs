//! Sweep-level throughput measurement: the same fig03-style
//! (benchmark × L2 organisation) functional sweep timed with the
//! replay cache enabled and disabled.
//!
//! The access-level benchmark (`access_bench`) measures the cache
//! substrate; this one measures what sweeps actually pay — trace
//! generation + L1 simulation per cell without memoisation versus one
//! capture per benchmark plus L2-only replays with it. Results land in
//! `results/bench_sweep.json`.

use experiments::runner::{run_functional_l2, L2Kind, PAPER_L2};
use experiments::{replay_cache, try_parallel_map_progress};
use serde::Serialize;
use std::path::Path;
use std::time::Instant;
use workloads::{primary_suite, Benchmark};

/// Schema version stamped on `bench_sweep.json`.
///
/// v2: added the optional `disk_warm` mode and `disk_speedup` (measured
/// when `AC_REPLAY_DIR` points at a persistent replay store).
pub const SWEEP_BENCH_SCHEMA_VERSION: u32 = 2;

/// One timed mode (replay on or off).
#[derive(Debug, Serialize)]
pub struct ModeResult {
    /// Wall-clock seconds for the whole sweep (best of `reps`).
    pub secs: f64,
    /// Sweep cells completed per second.
    pub cells_per_sec: f64,
}

/// The sweep benchmark report.
#[derive(Debug, Serialize)]
pub struct SweepBenchReport {
    /// Schema version of this document.
    pub schema_version: u32,
    /// Whether the reduced quick mode ran.
    pub quick: bool,
    /// Instruction budget per cell.
    pub insts: u64,
    /// Benchmarks swept.
    pub benchmarks: Vec<String>,
    /// L2 organisations swept (the paper's headline trio).
    pub organisations: Vec<String>,
    /// Total sweep cells per mode.
    pub cells: usize,
    /// Timing repetitions per mode (best-of).
    pub reps: usize,
    /// Front-end re-run in every cell (`AC_REPLAY=0`).
    pub replay_off: ModeResult,
    /// Capture once per benchmark, replay everywhere (`AC_REPLAY=1`).
    pub replay_on: ModeResult,
    /// Warm persistent store: in-memory tier cleared per repetition, all
    /// captures loaded back from `AC_REPLAY_DIR` (present only when that
    /// variable names a directory).
    #[serde(skip_serializing_if = "Option::is_none")]
    pub disk_warm: Option<ModeResult>,
    /// `replay_off.secs / replay_on.secs`.
    pub speedup: f64,
    /// `replay_off.secs / disk_warm.secs` (present with `disk_warm`).
    #[serde(skip_serializing_if = "Option::is_none")]
    pub disk_speedup: Option<f64>,
}

fn run_cells(cells: &[(Benchmark, L2Kind)], insts: u64) {
    // Each timed pass registers (and finishes) a `bench_sweep` entry in
    // the live progress registry; a `--serve` introspection server shows
    // the pass currently running, and the final pass ends done == total.
    let handle = ac_telemetry::progress::sweep("bench_sweep", cells.len() as u64);
    let results = try_parallel_map_progress(
        cells,
        Some(&handle),
        |_, (b, k)| format!("{}:{}", b.name, k.label()),
        |(b, k)| run_functional_l2(b, k, PAPER_L2, insts).expect("paper geometry is valid"),
    );
    handle.finish();
    for r in results {
        r.expect("sweep cell failed");
    }
}

/// Times one full sweep pass in the given replay mode, best of `reps`.
/// `dir` is the persistent-store directory for the warm-disk mode; the
/// off/on modes pass `None` and run memory-only (a blank
/// `AC_REPLAY_DIR` disables the disk tier) so their semantics are
/// unchanged by whatever the caller's environment holds.
fn time_mode(
    cells: &[(Benchmark, L2Kind)],
    insts: u64,
    replay: bool,
    reps: usize,
    dir: Option<&str>,
) -> f64 {
    std::env::set_var("AC_REPLAY", if replay { "1" } else { "0" });
    std::env::set_var("AC_REPLAY_DIR", dir.unwrap_or(""));
    let mut best = f64::INFINITY;
    for _ in 0..reps.max(1) {
        // Each repetition starts cold in memory: the capture cost (or,
        // warm-disk, the load-and-validate cost) is part of what the
        // mode is amortising, so it must be in the timing.
        replay_cache::clear();
        let start = Instant::now();
        run_cells(cells, insts);
        best = best.min(start.elapsed().as_secs_f64());
    }
    best
}

/// Runs the sweep benchmark. Quick mode shrinks the suite slice and the
/// instruction budget for CI smoke coverage; full mode uses the
/// headline trio at the default instruction budget (the acceptance
/// configuration).
pub fn run(quick: bool) -> SweepBenchReport {
    let _span = ac_telemetry::span("bench", || "sweep_bench".to_string());
    let prior_replay = std::env::var("AC_REPLAY").ok();
    let prior_dir = std::env::var("AC_REPLAY_DIR").ok();
    let suite = primary_suite();
    let (n_benches, insts, reps) = if quick {
        (2, experiments::default_insts().min(120_000), 1)
    } else {
        (3, experiments::default_insts(), 2)
    };
    let benches: Vec<Benchmark> = suite.into_iter().take(n_benches).collect();
    let kinds = L2Kind::headline_trio();
    let cells: Vec<(Benchmark, L2Kind)> = benches
        .iter()
        .flat_map(|b| kinds.iter().map(move |k| (b.clone(), k.clone())))
        .collect();

    let off_secs = time_mode(&cells, insts, false, reps, None);
    let on_secs = time_mode(&cells, insts, true, reps, None);
    // Warm-disk mode, measured only when the caller points
    // `AC_REPLAY_DIR` at a store: one untimed priming pass persists the
    // captures, then each timed repetition clears the in-memory tier and
    // loads every capture back from disk.
    let warm_secs = prior_dir
        .as_deref()
        .filter(|d| !d.trim().is_empty())
        .map(|dir| {
            std::env::set_var("AC_REPLAY", "1");
            std::env::set_var("AC_REPLAY_DIR", dir);
            replay_cache::clear();
            run_cells(&cells, insts);
            time_mode(&cells, insts, true, reps, Some(dir))
        });
    replay_cache::clear();
    match prior_replay {
        Some(v) => std::env::set_var("AC_REPLAY", v),
        None => std::env::remove_var("AC_REPLAY"),
    }
    match prior_dir {
        Some(v) => std::env::set_var("AC_REPLAY_DIR", v),
        None => std::env::remove_var("AC_REPLAY_DIR"),
    }

    let per_sec = |secs: f64| {
        if secs > 0.0 {
            cells.len() as f64 / secs
        } else {
            0.0
        }
    };
    SweepBenchReport {
        schema_version: SWEEP_BENCH_SCHEMA_VERSION,
        quick,
        insts,
        benchmarks: benches.iter().map(|b| b.name.clone()).collect(),
        organisations: kinds.iter().map(|k| k.label()).collect(),
        cells: cells.len(),
        reps,
        replay_off: ModeResult {
            secs: off_secs,
            cells_per_sec: per_sec(off_secs),
        },
        replay_on: ModeResult {
            secs: on_secs,
            cells_per_sec: per_sec(on_secs),
        },
        disk_warm: warm_secs.map(|secs| ModeResult {
            secs,
            cells_per_sec: per_sec(secs),
        }),
        speedup: if on_secs > 0.0 {
            off_secs / on_secs
        } else {
            0.0
        },
        disk_speedup: warm_secs.filter(|&s| s > 0.0).map(|s| off_secs / s),
    }
}

/// Prints the report on stdout.
pub fn print_report(report: &SweepBenchReport) {
    println!(
        "sweep bench: {} benchmarks x {} organisations, {} insts/cell{}",
        report.benchmarks.len(),
        report.organisations.len(),
        report.insts,
        if report.quick { " (quick)" } else { "" },
    );
    println!(
        "  replay off: {:.3}s ({:.2} cells/s)",
        report.replay_off.secs, report.replay_off.cells_per_sec
    );
    println!(
        "  replay on : {:.3}s ({:.2} cells/s)",
        report.replay_on.secs, report.replay_on.cells_per_sec
    );
    if let Some(warm) = &report.disk_warm {
        println!(
            "  disk warm : {:.3}s ({:.2} cells/s)",
            warm.secs, warm.cells_per_sec
        );
    }
    println!("  speedup   : {:.2}x", report.speedup);
    if let Some(ds) = report.disk_speedup {
        println!("  disk speedup: {ds:.2}x (vs replay off, warm AC_REPLAY_DIR)");
    }
}

/// Writes the report as pretty JSON to `path`.
pub fn write_report(report: &SweepBenchReport, path: &Path) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    let json = serde_json::to_string_pretty(report)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
    std::fs::write(path, json + "\n")
}
