//! Bench-history observatory: one JSONL line per `cachesim bench` run,
//! so throughput trends are visible across commits.
//!
//! Every bench invocation appends a [`HistoryRecord`] — timestamp, git
//! sha, the flags that shaped the run and the headline numbers
//! (accesses/sec per organisation, sweep replay speedup) — to
//! `results/bench_history.jsonl`. `cachesim bench --trend` replays that
//! file as a trajectory table and compares the newest record of each
//! (kind, quick) series against its predecessor: every recorded metric
//! is a throughput (higher is better), so a drop beyond the threshold
//! (`AC_BENCH_MAX_REGRESSION_PCT`, default 10%) exits with
//! [`crate::report::EXIT_REGRESSION`].

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::io::Write as _;
use std::path::Path;

/// Schema version stamped on every history line.
pub const HISTORY_SCHEMA_VERSION: u32 = 1;

/// Default history file, alongside the other bench artifacts.
pub const DEFAULT_HISTORY_PATH: &str = "results/bench_history.jsonl";

/// Default regression threshold (percent) for `--trend`.
pub const DEFAULT_TREND_PCT: f64 = 10.0;

/// One appended bench observation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HistoryRecord {
    /// Schema version of this line.
    pub schema_version: u32,
    /// Seconds since the Unix epoch when the bench finished.
    pub t_unix: u64,
    /// `git rev-parse --short HEAD` at run time (`"unknown"` outside a
    /// work tree).
    pub git_sha: String,
    /// Which bench ran: `"access"` or `"sweep"`.
    pub kind: String,
    /// Whether the reduced `--quick` configuration ran (quick and full
    /// runs are separate trend series — their numbers are not
    /// comparable).
    pub quick: bool,
    /// Headline metrics, all throughput-flavoured (higher is better):
    /// `accesses_per_sec/<org>` for the access bench;
    /// `cells_per_sec_replay_{off,on}` and `sweep_speedup` for the
    /// sweep bench.
    pub metrics: BTreeMap<String, f64>,
}

/// The current commit, short form; `"unknown"` when git is unavailable
/// (detached artifact directories, bare containers).
pub fn git_sha() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

fn now_unix() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0)
}

/// Builds a record for the just-finished bench.
pub fn record(kind: &str, quick: bool, metrics: BTreeMap<String, f64>) -> HistoryRecord {
    HistoryRecord {
        schema_version: HISTORY_SCHEMA_VERSION,
        t_unix: now_unix(),
        git_sha: git_sha(),
        kind: kind.to_string(),
        quick,
        metrics,
    }
}

/// Appends one record to the history file (created, with parents, on
/// first use). Append-only: concurrent benches interleave whole lines.
pub fn append(path: &Path, record: &HistoryRecord) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    let line = serde_json::to_string(record)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
    let mut f = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)?;
    f.write_all(line.as_bytes())?;
    f.write_all(b"\n")
}

/// Loads every parseable record, oldest first. Torn or foreign lines are
/// skipped (the file is append-only across versions and crashes), and
/// the skip count is returned alongside.
pub fn load(path: &Path) -> std::io::Result<(Vec<HistoryRecord>, usize)> {
    let text = std::fs::read_to_string(path)?;
    let mut records = Vec::new();
    let mut skipped = 0usize;
    for line in text.lines() {
        if line.trim().is_empty() {
            continue;
        }
        match serde_json::from_str::<HistoryRecord>(line) {
            Ok(r) => records.push(r),
            Err(_) => skipped += 1,
        }
    }
    Ok((records, skipped))
}

/// One metric's movement between the two newest records of a series.
#[derive(Debug, Clone, PartialEq)]
pub struct TrendDelta {
    /// Series identity: `kind` plus the quick flag.
    pub series: String,
    /// Metric key.
    pub key: String,
    /// Previous and newest values.
    pub prev: f64,
    /// Newest value.
    pub last: f64,
    /// Percent change, newest vs previous (positive = faster).
    pub delta_pct: f64,
    /// Whether this movement breaches the threshold (throughput dropped
    /// by more than `threshold_pct`).
    pub regressed: bool,
}

fn series_name(r: &HistoryRecord) -> String {
    if r.quick {
        format!("{} (quick)", r.kind)
    } else {
        r.kind.clone()
    }
}

/// Compares the newest record of every (kind, quick) series against its
/// predecessor. Metrics present in only one of the two records are
/// skipped — a renamed organisation starts a fresh trend.
pub fn deltas(records: &[HistoryRecord], threshold_pct: f64) -> Vec<TrendDelta> {
    let mut by_series: BTreeMap<String, Vec<&HistoryRecord>> = BTreeMap::new();
    for r in records {
        by_series.entry(series_name(r)).or_default().push(r);
    }
    let mut out = Vec::new();
    for (series, rs) in by_series {
        let [.., prev, last] = rs.as_slice() else {
            continue;
        };
        for (key, &last_v) in &last.metrics {
            let Some(&prev_v) = prev.metrics.get(key) else {
                continue;
            };
            let delta_pct = if prev_v != 0.0 {
                100.0 * (last_v - prev_v) / prev_v
            } else {
                0.0
            };
            out.push(TrendDelta {
                series: series.clone(),
                key: key.clone(),
                prev: prev_v,
                last: last_v,
                delta_pct,
                regressed: delta_pct < -threshold_pct,
            });
        }
    }
    out
}

/// The `--trend` driver: prints the trajectory of every series and the
/// newest-vs-previous deltas, returning [`crate::report::EXIT_REGRESSION`]
/// when any throughput dropped beyond `threshold_pct`.
pub fn run_trend(path: &Path, threshold_pct: f64) -> i32 {
    let (records, skipped) = match load(path) {
        Ok(v) => v,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
            // No observatory yet is not an error — nothing has benched.
            println!(
                "bench trend: no history at {} (run `cachesim bench` first)",
                path.display()
            );
            return 0;
        }
        Err(e) => {
            eprintln!("bench trend: cannot read {}: {e}", path.display());
            return crate::report::EXIT_INVALID_INPUT;
        }
    };
    if skipped > 0 {
        eprintln!("bench trend: skipped {skipped} unparseable history lines");
    }
    if records.is_empty() {
        println!("bench trend: no history in {}", path.display());
        return 0;
    }
    println!(
        "bench trend: {} records in {}",
        records.len(),
        path.display()
    );
    let mut by_series: BTreeMap<String, Vec<&HistoryRecord>> = BTreeMap::new();
    for r in &records {
        by_series.entry(series_name(r)).or_default().push(r);
    }
    for (series, rs) in &by_series {
        println!("  {series}:");
        for r in rs {
            let metrics: Vec<String> = r
                .metrics
                .iter()
                .map(|(k, v)| format!("{k}={v:.2}"))
                .collect();
            println!("    {} {}  {}", r.t_unix, r.git_sha, metrics.join(" "));
        }
    }
    let ds = deltas(&records, threshold_pct);
    if ds.is_empty() {
        println!("bench trend: need two records of a series for a delta");
        return 0;
    }
    let mut regressions = 0usize;
    for d in &ds {
        println!(
            "  {} {}: {:.2} -> {:.2} ({:+.1}%){}",
            d.series,
            d.key,
            d.prev,
            d.last,
            d.delta_pct,
            if d.regressed { "  REGRESSED" } else { "" }
        );
        regressions += usize::from(d.regressed);
    }
    if regressions > 0 {
        eprintln!(
            "bench trend: {regressions} metric(s) dropped more than {threshold_pct}% \
             vs the previous record"
        );
        crate::report::EXIT_REGRESSION
    } else {
        println!("bench trend: no regression beyond {threshold_pct}%");
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(kind: &str, quick: bool, pairs: &[(&str, f64)]) -> HistoryRecord {
        HistoryRecord {
            schema_version: HISTORY_SCHEMA_VERSION,
            t_unix: 1,
            git_sha: "abc1234".into(),
            kind: kind.into(),
            quick,
            metrics: pairs.iter().map(|(k, v)| (k.to_string(), *v)).collect(),
        }
    }

    #[test]
    fn append_then_load_roundtrips_and_skips_torn_lines() {
        let dir = std::env::temp_dir().join(format!("ac_hist_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("h.jsonl");
        append(
            &path,
            &rec("access", false, &[("accesses_per_sec/LRU", 10.0)]),
        )
        .unwrap();
        append(&path, &rec("sweep", true, &[("sweep_speedup", 3.0)])).unwrap();
        // A torn tail from a crashed writer must not poison the file.
        {
            let mut f = std::fs::OpenOptions::new()
                .append(true)
                .open(&path)
                .unwrap();
            f.write_all(b"{\"schema_version\":1,\"t_un").unwrap();
        }
        let (records, skipped) = load(&path).unwrap();
        assert_eq!(records.len(), 2);
        assert_eq!(skipped, 1);
        assert_eq!(records[0].kind, "access");
        assert_eq!(records[1].metrics["sweep_speedup"], 3.0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn deltas_compare_last_two_of_each_series() {
        let records = vec![
            rec("access", false, &[("a", 100.0)]),
            rec("access", false, &[("a", 120.0)]),
            rec("access", false, &[("a", 60.0)]), // -50% vs 120
            rec("sweep", false, &[("s", 2.0)]),
            rec("sweep", false, &[("s", 2.1)]), // +5%
            rec("sweep", true, &[("s", 9.0)]),  // lone quick record: no delta
        ];
        let ds = deltas(&records, 10.0);
        assert_eq!(ds.len(), 2);
        let access = ds.iter().find(|d| d.series == "access").unwrap();
        assert!(access.regressed, "{access:?}");
        assert_eq!(access.prev, 120.0);
        let sweep = ds.iter().find(|d| d.series == "sweep").unwrap();
        assert!(!sweep.regressed);
    }

    #[test]
    fn new_metric_keys_start_a_fresh_trend() {
        let records = vec![
            rec("access", false, &[("old", 100.0)]),
            rec("access", false, &[("new", 5.0)]),
        ];
        assert!(deltas(&records, 10.0).is_empty());
    }

    #[test]
    fn quick_and_full_are_separate_series() {
        let records = vec![
            rec("sweep", false, &[("s", 100.0)]),
            rec("sweep", true, &[("s", 10.0)]),
            rec("sweep", false, &[("s", 99.0)]),
            rec("sweep", true, &[("s", 11.0)]),
        ];
        let ds = deltas(&records, 10.0);
        assert_eq!(ds.len(), 2);
        assert!(ds.iter().all(|d| !d.regressed), "{ds:?}");
    }
}
