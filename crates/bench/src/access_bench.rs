//! The `cachesim bench` throughput harness.
//!
//! Measures simulated accesses/second for the headline cache
//! organisations and, where a seed-layout twin exists
//! ([`crate::seed_baseline`]), the speedup of the packed
//! structure-of-arrays engines over the pre-optimisation layout.
//!
//! Methodology: one address stream (the documented uniform-random
//! SplitMix64 stream over a 20 000-block footprint, ~31% miss rate on
//! the paper's 512 KB/64 B/8-way L2), both engines resident in the same
//! process, warmed together, then timed in *interleaved* repetitions
//! (baseline chunk, optimised chunk, repeat) so CPU frequency drift and
//! noisy neighbours hit both sides equally. Best-of-repetitions is
//! reported, the standard practice for shortest-plausible-time
//! micro-measurement.

use crate::seed_baseline::{SeedAdaptive, SeedCache};
use adaptive_cache::{AdaptiveCache, AdaptiveConfig, DipCache, DipConfig, SbarCache, SbarConfig};
use cache_sim::{BlockAddr, Cache, CacheModel, Geometry, PolicyKind};
use serde::Serialize;
use std::path::Path;
use std::time::Instant;

/// Result row for one cache organisation.
#[derive(Debug, Serialize)]
pub struct OrgResult {
    pub name: String,
    /// Simulated accesses per wall-clock second (best repetition).
    pub accesses_per_sec: f64,
    pub ns_per_access: f64,
    /// Seed-layout twin throughput, when one exists.
    #[serde(skip_serializing_if = "Option::is_none")]
    pub baseline_accesses_per_sec: Option<f64>,
    #[serde(skip_serializing_if = "Option::is_none")]
    pub baseline_ns_per_access: Option<f64>,
    /// `accesses_per_sec / baseline_accesses_per_sec`.
    #[serde(skip_serializing_if = "Option::is_none")]
    pub speedup: Option<f64>,
}

/// The whole `results/bench_access.json` document.
#[derive(Debug, Serialize)]
pub struct BenchReport {
    pub schema: String,
    pub geometry: String,
    pub stream: String,
    /// What the `baseline_*` columns measure.
    pub baseline: String,
    pub accesses_per_repetition: u64,
    pub repetitions: u32,
    pub quick: bool,
    pub organisations: Vec<OrgResult>,
}

/// The documented headline stream: SplitMix64-mixed indices over a
/// 20 000-block footprint (~31% misses on the paper L2 geometry).
fn addresses(n: usize) -> Vec<BlockAddr> {
    (0..n as u64)
        .map(|i| {
            let mut x = i.wrapping_mul(0x9E37_79B9_7F4A_7C15);
            x ^= x >> 31;
            BlockAddr::new(x % 20_000)
        })
        .collect()
}

/// Times one pass of `chunk` and folds it into the best-of accumulator.
#[inline]
fn timed_pass(best_ns: &mut f64, mut chunk: impl FnMut() -> u64) {
    let start = Instant::now();
    let sink = chunk();
    let ns = start.elapsed().as_nanos() as f64;
    std::hint::black_box(sink);
    if ns < *best_ns {
        *best_ns = ns;
    }
}

/// Measures an organisation with a baseline twin: warm both, then
/// interleave timed repetitions.
fn measure_pair(
    name: &str,
    addrs: &[BlockAddr],
    reps: u32,
    mut new_chunk: impl FnMut(&[BlockAddr]) -> u64,
    mut base_chunk: impl FnMut(&[BlockAddr]) -> u64,
) -> OrgResult {
    // Warm-up: fill every set and settle the policy metadata.
    for _ in 0..3 {
        new_chunk(addrs);
        base_chunk(addrs);
    }
    let mut best_new = f64::INFINITY;
    let mut best_base = f64::INFINITY;
    for _ in 0..reps {
        timed_pass(&mut best_base, || base_chunk(addrs));
        timed_pass(&mut best_new, || new_chunk(addrs));
    }
    let n = addrs.len() as f64;
    OrgResult {
        name: name.to_string(),
        accesses_per_sec: n / (best_new * 1e-9),
        ns_per_access: best_new / n,
        baseline_accesses_per_sec: Some(n / (best_base * 1e-9)),
        baseline_ns_per_access: Some(best_base / n),
        speedup: Some(best_base / best_new),
    }
}

/// Measures an organisation with no seed twin (SBAR/DIP were added after
/// the seed, so there is no layout baseline to compare against).
fn measure_single(
    name: &str,
    addrs: &[BlockAddr],
    reps: u32,
    mut chunk: impl FnMut(&[BlockAddr]) -> u64,
) -> OrgResult {
    for _ in 0..3 {
        chunk(addrs);
    }
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        timed_pass(&mut best, || chunk(addrs));
    }
    let n = addrs.len() as f64;
    OrgResult {
        name: name.to_string(),
        accesses_per_sec: n / (best * 1e-9),
        ns_per_access: best / n,
        baseline_accesses_per_sec: None,
        baseline_ns_per_access: None,
        speedup: None,
    }
}

/// Runs the access-throughput suite. `quick` shrinks repetitions for CI
/// smoke runs; results stay directionally meaningful but noisier.
pub fn run(quick: bool) -> BenchReport {
    let geom = Geometry::new(512 * 1024, 64, 8).unwrap();
    let n = 10_000usize;
    let reps: u32 = if quick { 30 } else { 300 };
    let addrs = addresses(n);

    let mut organisations = Vec::new();

    for (name, policy) in [
        ("plain_lru", PolicyKind::Lru),
        ("plain_lfu5", PolicyKind::LFU5),
    ] {
        let mut new = Cache::new(geom, policy, 7);
        let mut old = SeedCache::new(geom, policy, 7);
        organisations.push(measure_pair(
            name,
            &addrs,
            reps,
            |a| {
                let mut h = 0u64;
                for &b in a {
                    h += u64::from(new.access(b, false).hit);
                }
                h
            },
            |a| {
                let mut h = 0u64;
                for &b in a {
                    h += u64::from(old.access(b, false).hit);
                }
                h
            },
        ));
    }

    for (name, config) in [
        ("adaptive_full", AdaptiveConfig::paper_full_tags()),
        ("adaptive_8bit", AdaptiveConfig::paper_default()),
    ] {
        let mut new = AdaptiveCache::new(geom, config, 7);
        let mut old = SeedAdaptive::new(geom, config, 7);
        organisations.push(measure_pair(
            name,
            &addrs,
            reps,
            |a| {
                let mut h = 0u64;
                for &b in a {
                    h += u64::from(new.access(b, false).hit);
                }
                h
            },
            |a| {
                let mut h = 0u64;
                for &b in a {
                    h += u64::from(old.access(b, false).hit);
                }
                h
            },
        ));
    }

    {
        let mut sbar = SbarCache::new(geom, SbarConfig::paper_default(), 7);
        organisations.push(measure_single("sbar", &addrs, reps, |a| {
            let mut h = 0u64;
            for &b in a {
                h += u64::from(sbar.access(b, false).hit);
            }
            h
        }));
    }
    {
        let mut dip = DipCache::new(geom, DipConfig::paper_default(), 7);
        organisations.push(measure_single("dip", &addrs, reps, |a| {
            let mut h = 0u64;
            for &b in a {
                h += u64::from(dip.access(b, false).hit);
            }
            h
        }));
    }

    BenchReport {
        schema: "adaptive-caches/bench_access/v1".to_string(),
        geometry: "512KB, 64B lines, 8-way".to_string(),
        stream: format!("splitmix64(i) % 20000, n={n}"),
        baseline: "seed-layout (array-of-structs, unfused) engines compiled \
                   in this binary with identical flags"
            .to_string(),
        accesses_per_repetition: n as u64,
        repetitions: reps,
        quick,
        organisations,
    }
}

/// Writes the report as pretty JSON under `path`, creating parent
/// directories as needed.
pub fn write_report(report: &BenchReport, path: &Path) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    let json = serde_json::to_string_pretty(report)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
    std::fs::write(path, json + "\n")
}

/// One-line human summary per organisation, printed alongside the JSON.
pub fn print_report(report: &BenchReport) {
    println!(
        "access throughput — {} — stream: {} — best of {} reps",
        report.geometry, report.stream, report.repetitions
    );
    for org in &report.organisations {
        match org.speedup {
            Some(s) => println!(
                "  {:<14} {:>7.1} M acc/s  ({:>5.2} ns/acc)  seed layout {:>5.2} ns/acc  => {:.2}x",
                org.name,
                org.accesses_per_sec / 1e6,
                org.ns_per_access,
                org.baseline_ns_per_access.unwrap_or(f64::NAN),
                s
            ),
            None => println!(
                "  {:<14} {:>7.1} M acc/s  ({:>5.2} ns/acc)",
                org.name,
                org.accesses_per_sec / 1e6,
                org.ns_per_access
            ),
        }
    }
}
