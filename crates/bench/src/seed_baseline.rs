//! Seed-layout cache engines for the `cachesim bench` throughput
//! comparison.
//!
//! These re-implement the pre-optimisation (array-of-structs) directory
//! and the unfused adaptive replacement path, compiled in the same
//! binary with the same flags as the packed implementations, so the
//! reported speedups isolate the data-layout and fusion work from
//! compiler/flag differences. The differential tests
//! (`cache-sim/tests/differential.rs`,
//! `core/tests/differential_adaptive.rs`) carry byte-identical twins of
//! these types and prove them behaviourally equal to the optimised
//! engines, which is what makes the throughput ratio meaningful: both
//! sides do the same simulation work per access.

use adaptive_cache::{AdaptiveConfig, Component, MissHistory};
use cache_sim::{
    AccessOutcome, BlockAddr, CacheStats, Eviction, Geometry, MetaTable, PolicyKind, StoredTag,
    TagAccess, TagMode, Way,
};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Seed-layout directory: one padded struct per way, set-major, with
/// early-exit linear scans.
#[derive(Clone)]
struct SeedDirectory {
    geom: Geometry,
    tag_mode: TagMode,
    ways: Vec<Way>,
}

impl SeedDirectory {
    fn new(geom: Geometry, tag_mode: TagMode) -> Self {
        SeedDirectory {
            geom,
            tag_mode,
            ways: vec![Way::default(); geom.num_sets() * geom.associativity()],
        }
    }

    fn locate(&self, block: BlockAddr) -> (usize, StoredTag) {
        (
            self.geom.set_index(block),
            self.tag_mode.store(self.geom.tag(block)),
        )
    }

    fn set_ways(&self, set: usize) -> &[Way] {
        let b = set * self.geom.associativity();
        &self.ways[b..b + self.geom.associativity()]
    }

    fn find(&self, set: usize, stored: StoredTag) -> Option<usize> {
        self.set_ways(set)
            .iter()
            .position(|w| w.valid && w.tag == stored)
    }

    fn invalid_way(&self, set: usize) -> Option<usize> {
        self.set_ways(set).iter().position(|w| !w.valid)
    }

    fn fill_at(&mut self, set: usize, way: usize, stored: StoredTag) -> Option<Way> {
        let idx = set * self.geom.associativity() + way;
        let old = self.ways[idx];
        self.ways[idx] = Way {
            valid: true,
            tag: stored,
            dirty: false,
        };
        old.valid.then_some(old)
    }

    fn mark_dirty(&mut self, set: usize, way: usize) {
        self.ways[set * self.geom.associativity() + way].dirty = true;
    }
}

/// Seed-layout tag array: [`SeedDirectory`] driven with the original
/// `find` → `invalid_way` → `victim` → `fill_at` access sequence.
struct SeedTagArray {
    dir: SeedDirectory,
    meta: MetaTable<PolicyKind>,
    rng: SmallRng,
    // Never read: these mirror the seed's per-access bookkeeping so the
    // timed baseline does the same work per access as the original.
    #[allow(dead_code)]
    hits: u64,
    #[allow(dead_code)]
    misses: u64,
}

impl SeedTagArray {
    fn new(geom: Geometry, tag_mode: TagMode, policy: PolicyKind, seed: u64) -> Self {
        SeedTagArray {
            dir: SeedDirectory::new(geom, tag_mode),
            meta: MetaTable::new(policy, geom.num_sets(), geom.associativity()),
            rng: SmallRng::seed_from_u64(seed),
            hits: 0,
            misses: 0,
        }
    }

    fn access(&mut self, block: BlockAddr) -> TagAccess {
        let (set, stored) = self.dir.locate(block);
        if let Some(way) = self.dir.find(set, stored) {
            self.hits += 1;
            self.meta.on_hit(set, way);
            return TagAccess {
                hit: true,
                way,
                evicted: None,
            };
        }
        self.misses += 1;
        let way = match self.dir.invalid_way(set) {
            Some(w) => w,
            None => self.meta.victim(set, &mut self.rng),
        };
        let evicted = self.dir.fill_at(set, way, stored);
        self.meta.on_fill(set, way);
        TagAccess {
            hit: false,
            way,
            evicted,
        }
    }

    fn contains(&self, set: usize, stored: StoredTag) -> bool {
        self.dir.find(set, stored).is_some()
    }
}

/// Seed-shape plain cache: tag array plus the original double address
/// decomposition on writes.
pub struct SeedCache {
    tags: SeedTagArray,
    stats: CacheStats,
}

impl SeedCache {
    pub fn new(geom: Geometry, policy: PolicyKind, seed: u64) -> Self {
        SeedCache {
            tags: SeedTagArray::new(geom, TagMode::Full, policy, seed),
            stats: CacheStats::default(),
        }
    }

    pub fn access(&mut self, block: BlockAddr, write: bool) -> AccessOutcome {
        let (set, _) = self.tags.dir.locate(block);
        let acc = self.tags.access(block);
        self.stats.record(acc.hit, write);

        let eviction = acc.evicted.map(|old| {
            self.stats.evictions += 1;
            if old.dirty {
                self.stats.writebacks += 1;
            }
            Eviction {
                block: self.tags.dir.geom.block_from_parts(old.tag.raw(), set),
                dirty: old.dirty,
            }
        });

        if write {
            let (set, _) = self.tags.dir.locate(block);
            self.tags.dir.mark_dirty(set, acc.way);
        }

        AccessOutcome {
            hit: acc.hit,
            eviction,
        }
    }

    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }
}

/// Seed-shape adaptive cache: unfused Algorithm 1 with per-way
/// `mode.store()` recomputation inside the Case-1 and Case-2 scans.
pub struct SeedAdaptive {
    shadow_tags: TagMode,
    real: SeedDirectory,
    shadow_a: SeedTagArray,
    shadow_b: SeedTagArray,
    history: Vec<MissHistory>,
    rng: SmallRng,
    stats: CacheStats,
    aliasing_fallbacks: u64,
}

impl SeedAdaptive {
    pub fn new(geom: Geometry, config: AdaptiveConfig, seed: u64) -> Self {
        assert!(
            !config.lru_victim_shortcut,
            "baseline models the exact Algorithm 1 only"
        );
        SeedAdaptive {
            shadow_tags: config.shadow_tags,
            real: SeedDirectory::new(geom, TagMode::Full),
            shadow_a: SeedTagArray::new(geom, config.shadow_tags, config.policy_a, seed ^ 0xA),
            shadow_b: SeedTagArray::new(geom, config.shadow_tags, config.policy_b, seed ^ 0xB),
            history: (0..geom.num_sets())
                .map(|_| MissHistory::new(config.history))
                .collect(),
            rng: SmallRng::seed_from_u64(seed),
            stats: CacheStats::default(),
            aliasing_fallbacks: 0,
        }
    }

    fn choose_victim(&mut self, set: usize, winner: Component, shadow_miss: Option<Way>) -> usize {
        let mode = self.shadow_tags;
        if let Some(evicted) = shadow_miss {
            if let Some(way) = self
                .real
                .set_ways(set)
                .iter()
                .position(|w| w.valid && mode.store(w.tag.raw()) == evicted.tag)
            {
                return way;
            }
        }
        let shadow = match winner {
            Component::A => &self.shadow_a,
            Component::B => &self.shadow_b,
        };
        if let Some(way) = self.real.set_ways(set).iter().position(|w| {
            w.valid && {
                let reduced = mode.store(w.tag.raw());
                !shadow.contains(set, reduced)
            }
        }) {
            return way;
        }
        self.aliasing_fallbacks += 1;
        self.rng.gen_range(0..self.real.geom.associativity())
    }

    pub fn access(&mut self, block: BlockAddr, write: bool) -> AccessOutcome {
        let (set, stored) = self.real.locate(block);
        let acc_a = self.shadow_a.access(block);
        let acc_b = self.shadow_b.access(block);
        self.history[set].record(!acc_a.hit, !acc_b.hit);

        if let Some(way) = self.real.find(set, stored) {
            self.stats.record(true, write);
            if write {
                self.real.mark_dirty(set, way);
            }
            return AccessOutcome::hit();
        }
        self.stats.record(false, write);

        let way = match self.real.invalid_way(set) {
            Some(w) => w,
            None => {
                let winner = self.history[set].winner();
                let shadow_miss = match winner {
                    Component::A => (!acc_a.hit).then_some(acc_a.evicted).flatten(),
                    Component::B => (!acc_b.hit).then_some(acc_b.evicted).flatten(),
                };
                self.choose_victim(set, winner, shadow_miss)
            }
        };

        let evicted = self.real.fill_at(set, way, stored);
        if write {
            self.real.mark_dirty(set, way);
        }
        let eviction = evicted.map(|old| {
            self.stats.evictions += 1;
            if old.dirty {
                self.stats.writebacks += 1;
            }
            Eviction {
                block: self.real.geom.block_from_parts(old.tag.raw(), set),
                dirty: old.dirty,
            }
        });
        AccessOutcome {
            hit: false,
            eviction,
        }
    }

    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }
}
