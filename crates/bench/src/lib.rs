//! Shared plumbing for the figure-regeneration binaries (`src/bin/`) and
//! the criterion micro-benchmarks (`benches/`).

use experiments::Table;
use std::path::{Path, PathBuf};

pub mod access_bench;
pub mod history;
pub mod report;
pub mod seed_baseline;
pub mod sweep_bench;

/// Prints a table and writes `results/<stem>.{csv,json}`.
pub fn emit(table: &Table, stem: &str) {
    println!("{table}");
    if let Err(e) = table.write_artifacts(Path::new("results"), stem) {
        ac_telemetry::warn!("could not write results/{stem}: {e}");
    }
}

/// Runs `f` with wall-clock reporting on stderr.
pub fn timed<T>(what: &str, f: impl FnOnce() -> T) -> T {
    ac_telemetry::info!("{what}: running ...");
    let start = std::time::Instant::now();
    let out = f();
    ac_telemetry::info!("{what}: done in {:.1}s", start.elapsed().as_secs_f64());
    out
}

/// Strips the shared telemetry flags from `args` and installs the
/// process-global [`ac_telemetry::Telemetry`] hub they (or the
/// `AC_TELEMETRY` environment variable) ask for.
///
/// * `--telemetry <dir>` (or `--telemetry=<dir>`) — enable telemetry with
///   artifacts under `<dir>`;
/// * `--metrics` — enable telemetry with artifacts under `results/`;
/// * neither — defer to `AC_TELEMETRY` (see the `ac-telemetry` docs).
///
/// Flags take precedence over the environment for the artifact
/// directory; `AC_TELEMETRY_SAMPLE` still controls event sampling.
/// Returns the hub when telemetry ends up enabled, `Err` on a malformed
/// flag (missing directory operand).
pub fn init_telemetry(
    args: &mut Vec<String>,
) -> Result<Option<&'static ac_telemetry::Telemetry>, String> {
    let mut dir: Option<PathBuf> = None;
    let mut i = 0;
    while i < args.len() {
        if args[i] == "--metrics" {
            args.remove(i);
            dir.get_or_insert_with(|| PathBuf::from("results"));
        } else if args[i] == "--telemetry" {
            if i + 1 >= args.len() {
                return Err("flag `--telemetry` requires a directory operand".into());
            }
            args.remove(i);
            dir = Some(PathBuf::from(args.remove(i)));
        } else if let Some(rest) = args[i].strip_prefix("--telemetry=") {
            if rest.is_empty() {
                return Err("flag `--telemetry=` requires a directory operand".into());
            }
            dir = Some(PathBuf::from(rest));
            args.remove(i);
        } else {
            i += 1;
        }
    }
    match dir {
        Some(dir) => {
            // Respect the environment's sampling choice, but let the flag
            // decide the directory.
            let sample = std::env::var("AC_TELEMETRY_SAMPLE")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(ac_telemetry::DEFAULT_ENV_SAMPLE_RATE);
            let cfg = ac_telemetry::TelemetryConfig::default()
                .with_dir(dir)
                .with_sample_rate(sample);
            Ok(ac_telemetry::Telemetry::install(cfg).ok())
        }
        None => Ok(ac_telemetry::init_from_env()),
    }
}

/// Strips the `--serve <addr>` (or `--serve=<addr>`) flag from `args`
/// and starts the live introspection server it — or the `AC_SERVE`
/// environment variable — asks for, after plugging the full
/// [`report::render_live_html`] dashboard into `GET /`.
///
/// Returns the running server (shut it down before exiting so the port
/// is released deterministically), `Ok(None)` when nothing asked for
/// one, `Err` on a malformed flag or an unbindable address.
pub fn init_serve(args: &mut Vec<String>) -> Result<Option<ac_telemetry::serve::Server>, String> {
    let mut addr: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        if args[i] == "--serve" {
            if i + 1 >= args.len() {
                return Err("flag `--serve` requires an address operand (e.g. 127.0.0.1:0)".into());
            }
            args.remove(i);
            addr = Some(args.remove(i));
        } else if let Some(rest) = args[i].strip_prefix("--serve=") {
            if rest.is_empty() {
                return Err("flag `--serve=` requires an address operand".into());
            }
            addr = Some(rest.to_string());
            args.remove(i);
        } else {
            i += 1;
        }
    }
    ac_telemetry::serve::set_dashboard_renderer(Box::new(report::render_live_html));
    match addr {
        Some(addr) => ac_telemetry::serve::Server::start(&addr)
            .map(Some)
            .map_err(|e| format!("flag `--serve {addr}`: cannot bind: {e}")),
        None => Ok(ac_telemetry::serve::Server::start_from_env()),
    }
}

/// Flushes telemetry artifacts (when a hub with an artifact directory is
/// installed) and reports where they landed. Call once, before exiting —
/// binaries that leave via `std::process::exit` skip destructors, so the
/// flush cannot be left to drop glue.
pub fn finish_telemetry() {
    let Some(hub) = ac_telemetry::hub() else {
        return;
    };
    match hub.write_artifacts() {
        Ok(paths) => {
            for p in paths {
                ac_telemetry::info!("telemetry: wrote {}", p.display());
            }
        }
        Err(e) => ac_telemetry::warn!("could not write telemetry artifacts: {e}"),
    }
}
