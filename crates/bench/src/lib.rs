//! Shared plumbing for the figure-regeneration binaries (`src/bin/`) and
//! the criterion micro-benchmarks (`benches/`).

use experiments::Table;
use std::path::Path;

/// Prints a table and writes `results/<stem>.{csv,json}`.
pub fn emit(table: &Table, stem: &str) {
    println!("{table}");
    if let Err(e) = table.write_artifacts(Path::new("results"), stem) {
        eprintln!("warning: could not write results/{stem}: {e}");
    }
}

/// Runs `f` with wall-clock reporting on stderr.
pub fn timed<T>(what: &str, f: impl FnOnce() -> T) -> T {
    eprintln!("{what}: running ...");
    let start = std::time::Instant::now();
    let out = f();
    eprintln!("{what}: done in {:.1}s", start.elapsed().as_secs_f64());
    out
}
