//! Ablation: SBAR leader-set count vs quality and overhead.

use bench::{emit, timed};
use experiments::{ablation, default_insts};

fn main() {
    let t = timed("ablation_sbar", || ablation::sbar_leader_ablation(default_insts()));
    emit(&t, "ablation_sbar");
}
