//! Hot-path cost decomposition for the simulator's per-access loop.
//!
//! Times each layer of the access path in isolation (stream decode, tag
//! match, metadata update, victim selection, full accesses) so throughput
//! work targets the layer that actually dominates. Prints ns/op, best of
//! several repetitions to reject scheduler noise on shared vCPUs.

use cache_sim::{
    Address, BlockAddr, Cache, CacheModel, Geometry, MetaTable, PolicyKind, TagArray, TagMode,
};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::hint::black_box;
use std::time::Instant;

const N: usize = 10_000;
const REPS: usize = 200;

fn addresses(n: usize) -> Vec<BlockAddr> {
    // Selectable via AC_STREAM so seed-vs-new comparisons can probe the
    // regimes separately: "hot" (hit-heavy hot/scan mix, the paper's
    // Section 2.1 LRU-hostile shape), "random" (uniform over 2.5x the
    // cache, ~30% miss), "scan" (streaming, ~100% miss).
    let kind = std::env::var("AC_STREAM").unwrap_or_else(|_| "hot".into());
    (0..n as u64)
        .map(|i| match kind.as_str() {
            "random" => {
                // SplitMix64-style scramble for a stateless uniform stream.
                let mut x = i.wrapping_mul(0x9E37_79B9_7F4A_7C15);
                x ^= x >> 31;
                BlockAddr::new(x % 20_000)
            }
            "scan" => BlockAddr::new(i % 65_536),
            _ => {
                let group = i / 4;
                if i % 4 < 3 {
                    BlockAddr::new(group % 768)
                } else {
                    BlockAddr::new(768 + group % 16_384)
                }
            }
        })
        .collect()
}

/// Best-of-REPS wall time of `f` over `N` operations, in ns/op.
fn best<T>(mut f: impl FnMut() -> T) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..REPS {
        let t = Instant::now();
        black_box(f());
        best = best.min(t.elapsed().as_nanos() as f64 / N as f64);
    }
    best
}

/// Isolated for disassembly: `objdump -d ... | awk '/run_lru_loop/,/ret/'`.
#[inline(never)]
fn run_lru_loop(cache: &mut Cache<cache_sim::Lru>, addrs: &[BlockAddr]) -> u64 {
    let mut hits = 0u64;
    for &a in addrs {
        hits += u64::from(cache.access(a, false).hit);
    }
    hits
}

fn main() {
    let geom = Geometry::new(512 * 1024, 64, 8).unwrap();
    let addrs = addresses(N);

    let stream = best(|| {
        let mut acc = 0u64;
        for &a in &addrs {
            acc ^= a.raw();
        }
        acc
    });
    println!("stream xor          {stream:6.2} ns/op");

    let decompose = best(|| {
        let mut acc = 0u64;
        for &a in &addrs {
            acc ^= geom.tag(a) + geom.set_index(a) as u64;
        }
        acc
    });
    println!("locate              {decompose:6.2} ns/op");

    // Read-only find over a pre-filled directory.
    let mut warm = TagArray::new(geom, TagMode::Full, PolicyKind::Lru, 7);
    for &a in &addrs {
        warm.access(a);
    }
    let dir = warm.directory();
    let find = best(|| {
        let mut n = 0u64;
        for &a in &addrs {
            let (set, stored) = dir.locate(a);
            n += dir.find(set, stored).map_or(0, |w| w as u64 + 1);
        }
        n
    });
    println!("locate+find         {find:6.2} ns/op");

    // Metadata hit update over every set.
    let mut meta = MetaTable::new(PolicyKind::Lru, geom.num_sets(), geom.associativity());
    let on_hit = best(|| {
        for &a in &addrs {
            let set = geom.set_index(a);
            meta.on_hit(set, (a.raw() % 8) as usize);
        }
    });
    println!("meta on_hit         {on_hit:6.2} ns/op");

    // Victim selection over every set (sets are warm, all ways touched).
    let mut rng = SmallRng::seed_from_u64(1);
    let victim = best(|| {
        let mut n = 0usize;
        for &a in &addrs {
            let set = geom.set_index(a);
            n += meta.victim(set, &mut rng);
        }
        n
    });
    println!("meta victim         {victim:6.2} ns/op");

    for policy in [PolicyKind::Lru, PolicyKind::LFU5] {
        let mut tags = TagArray::new(geom, TagMode::Full, policy, 7);
        let t = best(|| {
            for &a in &addrs {
                black_box(tags.access(a));
            }
        });
        let misses = tags.stats().misses;
        println!(
            "tag_array {policy:<9} {t:6.2} ns/op   ({:.0}% miss)",
            100.0 * misses as f64 / tags.stats().accesses() as f64
        );
    }

    for policy in [PolicyKind::Lru, PolicyKind::LFU5] {
        let mut cache = Cache::new(geom, policy, 7);
        let t = best(|| {
            for &a in &addrs {
                black_box(cache.access(a, false));
            }
        });
        println!("cache     {policy:<9} {t:6.2} ns/op");
    }

    // Concrete (statically dispatched) policies.
    {
        let mut tags = TagArray::new(geom, TagMode::Full, cache_sim::Lru, 7);
        let t = best(|| {
            for &a in &addrs {
                black_box(tags.access(a));
            }
        });
        println!("tag_array Lru(mono) {t:6.2} ns/op");
        let mut cache = Cache::new(geom, cache_sim::Lru, 7);
        let t = best(|| {
            for &a in &addrs {
                black_box(cache.access(a, false));
            }
        });
        println!("cache     Lru(mono) {t:6.2} ns/op");
        let mut cache = Cache::new(geom, cache_sim::Lru, 7);
        let t = best(|| run_lru_loop(&mut cache, &addrs));
        println!("cache     Lru(loop) {t:6.2} ns/op");
        let mut cache = Cache::new(geom, cache_sim::Lfu::paper_default(), 7);
        let t = best(|| {
            for &a in &addrs {
                black_box(cache.access(a, false));
            }
        });
        println!("cache     Lfu(mono) {t:6.2} ns/op");
    }

    let mut adaptive = adaptive_cache::AdaptiveCache::new(
        geom,
        adaptive_cache::AdaptiveConfig::paper_default(),
        7,
    );
    let t = best(|| {
        for &a in &addrs {
            black_box(adaptive.access(a, false));
        }
    });
    println!("adaptive  partial8  {t:6.2} ns/op");

    let mut adaptive = adaptive_cache::AdaptiveCache::new(
        geom,
        adaptive_cache::AdaptiveConfig::paper_full_tags(),
        7,
    );
    let t = best(|| {
        for &a in &addrs {
            black_box(adaptive.access(a, false));
        }
    });
    println!("adaptive  fulltags  {t:6.2} ns/op");

    let mut adaptive = adaptive_cache::AdaptiveCache::with_custom_policies(
        geom,
        cache_sim::Lru,
        cache_sim::Lfu::paper_default(),
        TagMode::Full,
        adaptive_cache::HistoryKind::paper_default(),
        7,
    );
    let t = best(|| {
        for &a in &addrs {
            black_box(adaptive.access(a, false));
        }
    });
    println!("adaptive  mono      {t:6.2} ns/op");

    // Keep `Address` linked in so the import list stays stable.
    black_box(Address::new(0));
}
