//! Regenerates every `Table`-producing figure in one supervised,
//! resumable run.
//!
//! Unlike `run_all_figures.sh` (one process per figure, abort on first
//! failure), this binary drives the figure registry through the
//! resilience supervisor: a panicking figure is isolated and retried
//! once, every completed figure is checkpointed (with its full table) to
//! `results/all_figures.journal.jsonl`, and a killed run restarted with
//! `AC_RESUME=1` re-emits finished figures from the journal instead of
//! recomputing them.
//!
//! Usage: `cargo run --release -p bench --bin run_figures`
//! (`AC_INSTS` sets the per-benchmark budget, `AC_RESUME=1` resumes).
//!
//! Exit codes: 0 all figures produced, 2 partial results.

use bench::emit;
use experiments::resilience::{self, SupervisorConfig};
use experiments::{default_insts, figures, Table};
use std::path::Path;

fn main() {
    let insts = default_insts();
    let results = Path::new("results");
    let cfg = SupervisorConfig::journalled(results, "all_figures");
    let registry = figures::registry();

    let report = match resilience::run_sweep(
        &registry,
        &cfg,
        |(name, _)| (*name).to_string(),
        move |(name, f): (&'static str, fn(u64) -> Table)| {
            eprintln!("{name}: running ...");
            let start = std::time::Instant::now();
            let table = f(insts);
            eprintln!("{name}: done in {:.1}s", start.elapsed().as_secs_f64());
            Ok(table)
        },
    ) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("run_figures: cannot start sweep: {e}");
            std::process::exit(resilience::EXIT_INVALID_INPUT);
        }
    };

    for cell in &report.cells {
        match &cell.outcome {
            resilience::CellOutcome::Done(t) | resilience::CellOutcome::Resumed(t) => {
                emit(t, &cell.key);
            }
            resilience::CellOutcome::Failed(e) => {
                eprintln!("run_figures: {} FAILED: {e}", cell.key)
            }
            resilience::CellOutcome::TimedOut(d) => eprintln!(
                "run_figures: {} TIMED OUT after {:.1}s",
                cell.key,
                d.as_secs_f64()
            ),
        }
    }
    eprintln!("run_figures: {}", report.summary());
    if !report.is_complete() {
        eprintln!("run_figures: re-run with AC_RESUME=1 to retry only unfinished figures");
    }
    std::process::exit(report.exit_code());
}
