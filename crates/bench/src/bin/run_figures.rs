//! Regenerates every `Table`-producing figure in one supervised,
//! resumable run.
//!
//! Unlike `run_all_figures.sh` (one process per figure, abort on first
//! failure), this binary drives the figure registry through the
//! resilience supervisor: a panicking figure is isolated and retried
//! once, every completed figure is checkpointed (with its full table) to
//! `results/all_figures.journal.jsonl`, and a killed run restarted with
//! `AC_RESUME=1` re-emits finished figures from the journal instead of
//! recomputing them.
//!
//! Usage: `cargo run --release -p bench --bin run_figures`
//! (`AC_INSTS` sets the per-benchmark budget, `AC_RESUME=1` resumes,
//! `--telemetry <dir>` / `--metrics` / `AC_TELEMETRY` export the full
//! telemetry artifact set).
//!
//! Every figure runs under an `ac-telemetry` span, and the run ends with
//! a per-figure wall-time summary on stderr — an always-on, in-memory
//! hub is installed even when no artifacts were requested.
//!
//! Exit codes: 0 all figures produced, 2 partial results.

use bench::emit;
use experiments::resilience::{self, SupervisorConfig};
use experiments::{default_insts, figures, Table};
use std::path::Path;

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    match bench::init_telemetry(&mut args) {
        // No artifacts requested: still install an in-memory hub (event
        // stream off) so the figure spans below feed the wall-time
        // summary.
        Ok(None) => {
            let cfg = ac_telemetry::TelemetryConfig::default().with_sample_rate(0);
            let _ = ac_telemetry::Telemetry::install(cfg);
        }
        Ok(Some(_)) => {}
        Err(e) => {
            ac_telemetry::error!("run_figures: {e}");
            std::process::exit(resilience::EXIT_INVALID_INPUT);
        }
    }

    let insts = default_insts();
    let results = Path::new("results");
    let cfg = SupervisorConfig::journalled(results, "all_figures");
    let registry = figures::registry();

    let report = match resilience::run_sweep(
        &registry,
        &cfg,
        |(name, _)| (*name).to_string(),
        move |(name, f): (&'static str, fn(u64) -> Table)| {
            let _span = ac_telemetry::span("figure", || name.to_string());
            ac_telemetry::info!("{name}: running ...");
            let start = std::time::Instant::now();
            let table = f(insts);
            ac_telemetry::info!("{name}: done in {:.1}s", start.elapsed().as_secs_f64());
            Ok(table)
        },
    ) {
        Ok(r) => r,
        Err(e) => {
            ac_telemetry::error!("run_figures: cannot start sweep: {e}");
            std::process::exit(resilience::EXIT_INVALID_INPUT);
        }
    };

    for cell in &report.cells {
        match &cell.outcome {
            resilience::CellOutcome::Done(t) | resilience::CellOutcome::Resumed(t) => {
                emit(t, &cell.key);
            }
            resilience::CellOutcome::Failed(e) => {
                ac_telemetry::error!("run_figures: {} FAILED: {e}", cell.key)
            }
            resilience::CellOutcome::TimedOut(d) => ac_telemetry::error!(
                "run_figures: {} TIMED OUT after {:.1}s",
                cell.key,
                d.as_secs_f64()
            ),
        }
    }

    print_wall_time_summary();
    ac_telemetry::info!("run_figures: {}", report.summary());
    if !report.is_complete() {
        ac_telemetry::info!("run_figures: re-run with AC_RESUME=1 to retry only unfinished figures");
    }
    bench::finish_telemetry();
    std::process::exit(report.exit_code());
}

/// Per-figure wall time from the telemetry span data, widest first.
/// Resumed figures carry no span (they were not recomputed) and are
/// absent by construction.
fn print_wall_time_summary() {
    let Some(hub) = ac_telemetry::hub() else {
        return;
    };
    let mut figures: Vec<(String, u64)> = hub
        .span_totals()
        .into_iter()
        .filter(|(_, cat, _, _)| *cat == "figure")
        .map(|(name, _, _, total_us)| (name, total_us))
        .collect();
    if figures.is_empty() {
        return;
    }
    figures.sort_by_key(|f| std::cmp::Reverse(f.1));
    let total_us: u64 = figures.iter().map(|(_, us)| us).sum();
    let width = figures.iter().map(|(n, _)| n.len()).max().unwrap_or(0);
    ac_telemetry::info!("run_figures: per-figure wall time:");
    for (name, us) in &figures {
        ac_telemetry::info!("  {name:width$}  {:>8.1}s", *us as f64 / 1e6);
    }
    ac_telemetry::info!("  {:width$}  {:>8.1}s", "total", total_us as f64 / 1e6);
}
