//! Regenerates the paper's Figure 7: per-set replacement-choice phase
//! maps for ammp and mgrid ('#' = LRU-majority/dark, '.' = LFU/white).

use bench::timed;
use experiments::{default_insts, figures};
use std::path::Path;

fn main() {
    let insts = default_insts().max(2_000_000);
    for name in ["ammp", "mgrid"] {
        let map = timed(&format!("fig07 {name}"), || {
            figures::fig07_phase_map(name, insts, 100_000, 32)
        });
        println!("{name}: sets (bottom=set 0) vs time (left to right)");
        println!("{}", map.ascii());
        let table = map.to_table();
        if let Err(e) =
            table.write_artifacts(Path::new("results"), &format!("fig07_{name}"))
        {
            ac_telemetry::warn!("{e}");
        }
    }
}
