//! Regenerates the Section 3.2 storage-overhead arithmetic.

use bench::emit;
use experiments::figures::storage_table;

fn main() {
    emit(&storage_table(), "table_storage");
}
