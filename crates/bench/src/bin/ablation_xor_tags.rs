//! Ablation: low-order vs XOR-folded partial tags.

use bench::{emit, timed};
use experiments::{ablation, default_insts};

fn main() {
    let t = timed("ablation_xor_tags", || ablation::xor_tag_ablation(default_insts()));
    emit(&t, "ablation_xor_tags");
}
