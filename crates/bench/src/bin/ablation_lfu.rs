//! Ablation: LFU counter width for the plain and adaptive caches.

use bench::{emit, timed};
use experiments::{ablation, default_insts};

fn main() {
    let t = timed("ablation_lfu", || ablation::lfu_counter_ablation(default_insts()));
    emit(&t, "ablation_lfu");
}
