//! Regenerates the paper's Figure 8: L2 MPKI adapting between FIFO and
//! MRU over the primary set.

use bench::{emit, timed};
use experiments::{default_insts, figures};

fn main() {
    let t = timed("fig08", || figures::fig08_fifo_mru(default_insts()));
    emit(&t, "fig08_fifo_mru");
}
