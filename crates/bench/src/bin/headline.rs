//! Regenerates the Section 4.2 headline scalars (avg miss reduction, avg
//! CPI improvement, worst cases) over the primary and extended suites.

use bench::{emit, timed};
use experiments::{default_insts, figures};

fn main() {
    let t = timed("headline", || figures::headline(default_insts()));
    emit(&t, "headline");
}
