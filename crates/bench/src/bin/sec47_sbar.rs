//! Regenerates the Section 4.7 comparison: SBAR-like set sampling vs the
//! full adaptive cache, plus the storage-overhead table.

use bench::{emit, timed};
use experiments::figures::sec47::{sec47_overheads, sec47_sbar};
use experiments::default_insts;

fn main() {
    let t = timed("sec47", || sec47_sbar(default_insts()));
    emit(&t, "sec47_sbar");
    let o = sec47_overheads();
    emit(&o, "sec47_overheads");
}
