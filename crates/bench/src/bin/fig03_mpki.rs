//! Regenerates the paper's Figure 3: L2 MPKI for the adaptive LRU/LFU
//! cache and its two component policies over the 26-benchmark primary set.
//!
//! Usage: `cargo run --release -p bench --bin fig03_mpki`
//! (set `AC_INSTS` to change the per-benchmark instruction budget).

use bench::{emit, timed};
use experiments::{default_insts, figures};

fn main() {
    let t = timed("fig03", || figures::fig03_mpki(default_insts()));
    emit(&t, "fig03_mpki");
}
