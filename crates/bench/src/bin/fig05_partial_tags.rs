//! Regenerates the paper's Figure 5: effect of partial-tag size on the
//! primary-set average MPKI and CPI.

use bench::{emit, timed};
use experiments::{default_insts, figures};

fn main() {
    let t = timed("fig05", || figures::fig05_partial_tags(default_insts()));
    emit(&t, "fig05_partial_tags");
}
