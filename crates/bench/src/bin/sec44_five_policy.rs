//! Regenerates the Section 4.4 comparison: five-policy adaptivity vs
//! LRU/LFU adaptivity.

use bench::{emit, timed};
use experiments::{default_insts, figures};

fn main() {
    let t = timed("sec44", || figures::sec44_five_policy(default_insts()));
    emit(&t, "sec44_five_policy");
}
