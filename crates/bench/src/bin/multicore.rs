//! The paper's future-work experiment: adaptive replacement for a shared
//! L2 fed by two dissimilar threads.

use adaptive_cache::AdaptiveConfig;
use bench::{emit, timed};
use cache_sim::PolicyKind;
use experiments::multicore::{paper_future_work_pairs, run_shared_l2};
use experiments::{default_insts, L2Kind, Table};
use workloads::primary_suite;

fn main() {
    let insts = default_insts();
    let suite = primary_suite();
    let kinds = [
        L2Kind::Adaptive(AdaptiveConfig::paper_full_tags()),
        L2Kind::Plain(PolicyKind::LFU5),
        L2Kind::Plain(PolicyKind::Lru),
    ];
    let mut t = Table::new(
        "Future work: shared L2 with two dissimilar threads (combined L2 MPKI)",
        "pair",
        kinds.iter().map(|k| k.label()).collect(),
    );
    for (a, b) in paper_future_work_pairs() {
        let pair: Vec<_> = [a, b]
            .iter()
            .map(|n| suite.iter().find(|x| x.name == *n).unwrap())
            .collect();
        let row = timed(&format!("multicore {a}+{b}"), || {
            kinds
                .iter()
                .map(|k| run_shared_l2(&pair, k, insts / 2).l2_mpki())
                .collect::<Vec<_>>()
        });
        t.push_row(format!("{a}+{b}"), row);
    }
    t.push_average();
    emit(&t, "multicore_shared_l2");
}
