//! Regenerates the paper's Figure 4: CPI for the adaptive LRU/LFU cache
//! and its two component policies over the primary set.

use bench::{emit, timed};
use experiments::{default_insts, figures};

fn main() {
    let t = timed("fig04", || figures::fig04_cpi(default_insts()));
    emit(&t, "fig04_cpi");
}
