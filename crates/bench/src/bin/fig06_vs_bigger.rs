//! Regenerates the paper's Figure 6: CPI of partially-tagged adaptive
//! replacement vs increasing the size/associativity of a conventional
//! cache (+4.0% storage vs +12.5% / +25%).

use bench::{emit, timed};
use experiments::{default_insts, figures};

fn main() {
    let t = timed("fig06", || figures::fig06_vs_bigger(default_insts()));
    emit(&t, "fig06_vs_bigger");
}
