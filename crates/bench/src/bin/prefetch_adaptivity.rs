//! The paper's second future-work experiment: adaptive hybrid hardware
//! prefetching ("hit/miss is replaced with useful/not-useful prefetch").
//! Compares no prefetching, next-line, stride and the adaptive hybrid on
//! the primary suite (demand L2 MPKI, prefetch accuracy).

use bench::{emit, timed};
use cache_sim::{Cache, Geometry, PolicyKind};
use cpu_model::prefetch::PrefetchKind;
use cpu_model::{run_functional, CpuConfig, Hierarchy};
use experiments::{default_insts, Table};
use workloads::primary_suite;

fn main() {
    let insts = default_insts();
    let kinds = [
        ("none", PrefetchKind::None),
        ("next-line", PrefetchKind::NextLine),
        ("stride", PrefetchKind::Stride),
        ("adaptive", PrefetchKind::Adaptive),
    ];
    let cfg = CpuConfig::paper_default();
    let geom = Geometry::new(
        cfg.l2.size_bytes,
        cfg.l2.line_bytes,
        cfg.l2.associativity,
    )
    .unwrap();

    let mut t = Table::new(
        "Future work: L2 prefetching (demand L2 MPKI)",
        "benchmark",
        kinds.iter().map(|(n, _)| n.to_string()).collect(),
    );
    let suite = primary_suite();
    let rows = timed("prefetch sweep", || {
        experiments::runner::parallel_map(&suite, |b| {
            let row: Vec<f64> = kinds
                .iter()
                .map(|(_, k)| {
                    let mut h = Hierarchy::new(&cfg, Cache::new(geom, PolicyKind::Lru, 7));
                    h.set_prefetcher(k.build());
                    run_functional(&mut h, b.spec.generator(), insts).l2_mpki()
                })
                .collect();
            (b.name.clone(), row)
        })
    });
    for (name, row) in rows {
        t.push_row(name, row);
    }
    t.push_average();
    emit(&t, "prefetch_adaptivity");
}
