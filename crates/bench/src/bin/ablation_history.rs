//! Ablation: miss-history buffer variants (bit-vector window sizes,
//! counters, saturating counters).

use bench::{emit, timed};
use experiments::{ablation, default_insts};

fn main() {
    let t = timed("ablation_history", || ablation::history_ablation(default_insts()));
    emit(&t, "ablation_history");
}
