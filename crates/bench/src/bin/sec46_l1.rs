//! Regenerates the Section 4.6 numbers: LRU/LFU-adaptive L1 instruction
//! and data caches.

use bench::{emit, timed};
use experiments::{default_insts, figures};

fn main() {
    let t = timed("sec46", || figures::sec46_l1_adaptivity(default_insts()));
    emit(&t, "sec46_l1");
}
