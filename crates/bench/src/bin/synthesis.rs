//! Synthesis experiment: use this crate's generality to combine the
//! paper's idea with its successor — an adaptive cache whose components
//! are **BIP** (DIP's thrash-protecting insertion policy) and **LFU**
//! (frequency protection). Neither the 2006 paper nor the 2007 DIP paper
//! evaluated this pairing; the paper's framework makes it a configuration
//! change.

use adaptive_cache::{AdaptiveConfig, DipConfig};
use bench::{emit, timed};
use cache_sim::PolicyKind;
use experiments::runner::parallel_map;
use experiments::{default_insts, run_functional_l2, L2Kind, Table, PAPER_L2};
use workloads::primary_suite;

fn main() {
    let insts = default_insts();
    let kinds = [
        ("LRU", L2Kind::Plain(PolicyKind::Lru)),
        (
            "Adaptive LRU/LFU",
            L2Kind::Adaptive(AdaptiveConfig::paper_full_tags()),
        ),
        ("DIP", L2Kind::Dip(DipConfig::paper_default())),
        (
            "Adaptive BIP/LFU",
            L2Kind::Adaptive(AdaptiveConfig::with_policies(
                PolicyKind::Bip,
                PolicyKind::LFU5,
            )),
        ),
        (
            "Adaptive BIP/LRU",
            L2Kind::Adaptive(AdaptiveConfig::with_policies(
                PolicyKind::Bip,
                PolicyKind::Lru,
            )),
        ),
    ];
    let mut t = Table::new(
        "Synthesis: adaptivity over DIP's insertion policy (L2 MPKI)",
        "benchmark",
        kinds.iter().map(|(n, _)| n.to_string()).collect(),
    );
    let suite = primary_suite();
    let rows = timed("synthesis", || {
        parallel_map(&suite, |b| {
            let row: Vec<f64> = kinds
                .iter()
                .map(|(_, k)| run_functional_l2(b, k, PAPER_L2, insts)
                    .expect("paper geometry is valid")
                    .stats
                    .l2_mpki())
                .collect();
            (b.name.clone(), row)
        })
    });
    for (name, row) in rows {
        t.push_row(name, row);
    }
    t.push_average();
    emit(&t, "synthesis");
}
