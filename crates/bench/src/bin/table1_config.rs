//! Prints Table 1 (the simulated processor configuration).

use experiments::figures::table1_config;

fn main() {
    println!("{}", table1_config());
}
