//! Regenerates the paper's Figure 10: effect of store-buffer size on the
//! adaptive benefit (note the paper's irregular x axis).

use bench::{emit, timed};
use experiments::{default_insts, figures};

fn main() {
    let t = timed("fig10", || figures::fig10_store_buffer(default_insts()));
    emit(&t, "fig10_store_buffer");
}
