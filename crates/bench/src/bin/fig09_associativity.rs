//! Regenerates the paper's Figure 9: overall benefit (CPI improvement,
//! miss reduction) vs associativity at 512 KB.

use bench::{emit, timed};
use experiments::{default_insts, figures};

fn main() {
    let t = timed("fig09", || figures::fig09_associativity(default_insts()));
    emit(&t, "fig09_associativity");
}
