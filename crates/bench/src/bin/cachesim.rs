//! `cachesim` — a JSON-driven command-line front end for the simulator.
//!
//! Usage:
//!   cargo run --release -p bench --bin cachesim -- run.json
//!   cargo run --release -p bench --bin cachesim -- --template > run.json
//!   cargo run --release -p bench --bin cachesim -- --telemetry out/ run.json
//!
//! The JSON file describes either **one run** — a workload (a suite
//! benchmark by name, an inline `WorkloadSpec`, or a recorded trace
//! file), an L2 organisation, the mode (functional or timed) and the
//! instruction budget — or a **sweep**: `{"sweep": [<run>, ...]}`.
//! Results are printed as JSON on stdout.
//!
//! Sweeps execute under the resilience supervisor: a panicking or wedged
//! cell is isolated (one bounded retry, optional per-cell deadline) and
//! every settled cell is checkpointed to
//! `results/<name>.journal.jsonl`; re-running with `AC_RESUME=1` skips
//! cells the journal proves complete.
//!
//! Telemetry: `--telemetry <dir>` (or `--metrics` for `results/`, or the
//! `AC_TELEMETRY` environment variable) enables the `ac-telemetry`
//! observability layer — `metrics.prom`, a Chrome `trace.json`, a
//! sampled `events.jsonl` decision stream and `telemetry-summary.json`
//! are written to the chosen directory on exit (and periodically
//! mid-run when `AC_TELEMETRY_FLUSH_MS` is set).
//!
//! Live introspection: `--serve <addr>` (or `AC_SERVE=<addr>`) starts an
//! HTTP server exposing the running process — `/metrics` (Prometheus),
//! `/progress` (sweep cells + ETA), `/events` (SSE decision stream) and
//! a live `/` dashboard. Bind port 0 for an ephemeral port;
//! `AC_SERVE_ADDR_FILE=<path>` publishes the bound address.
//!
//! Exit codes: `0` all results produced, `2` sweep finished with partial
//! results, `3` invalid input, `5` `cache verify` found corrupt store
//! entries.

use cache_sim::Geometry;
use cpu_model::{run_functional, CpuConfig, Hierarchy, Pipeline};
use experiments::resilience::{
    self, ExperimentError, SupervisorConfig, EXIT_INVALID_INPUT, EXIT_PARTIAL,
};
use experiments::L2Kind;
use serde::{Deserialize, Serialize};
use std::path::Path;
use std::time::Duration;
use workloads::{extended_suite, trace_io, Inst, WorkloadSpec};

/// One simulation request.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct RunRequest {
    /// Benchmark name from the built-in suite (see
    /// `policy_explorer -- --list`). Mutually exclusive with `spec` and
    /// `trace_file`.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    benchmark: Option<String>,
    /// Inline workload specification.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    spec: Option<WorkloadSpec>,
    /// Path to a recorded `.actr` binary trace.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    trace_file: Option<String>,
    /// The L2 organisation under test.
    l2: L2Kind,
    /// `"functional"` (miss rates only, fast) or `"timed"` (full CPI).
    mode: String,
    /// Instructions to run.
    insts: u64,
    /// Processor configuration (defaults to the paper's Table 1).
    #[serde(default = "CpuConfig::paper_default")]
    cpu: CpuConfig,
}

/// A batch of runs executed under the resilience supervisor.
#[derive(Debug, Deserialize)]
struct SweepRequest {
    /// The cells of the sweep.
    sweep: Vec<RunRequest>,
    /// Journal stem: checkpoints land in `results/<name>.journal.jsonl`.
    #[serde(default)]
    name: Option<String>,
    /// Optional per-cell deadline in seconds.
    #[serde(default)]
    deadline_secs: Option<f64>,
    /// Retries after a failed/timed-out attempt (default 1).
    #[serde(default)]
    retries: Option<u32>,
}

#[derive(Debug, Deserialize)]
#[serde(untagged)]
enum Input {
    Sweep(SweepRequest),
    Single(Box<RunRequest>),
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct RunReply {
    workload: String,
    l2: String,
    mode: String,
    instructions: u64,
    l2_misses: u64,
    l2_mpki: f64,
    #[serde(default, skip_serializing_if = "Option::is_none")]
    cycles: Option<u64>,
    #[serde(default, skip_serializing_if = "Option::is_none")]
    cpi: Option<f64>,
}

fn template() -> RunRequest {
    RunRequest {
        benchmark: Some("art-1".to_string()),
        spec: None,
        trace_file: None,
        l2: L2Kind::Adaptive(adaptive_cache::AdaptiveConfig::paper_default()),
        mode: "timed".to_string(),
        insts: 2_000_000,
        cpu: CpuConfig::paper_default(),
    }
}

/// Exactly one workload source must be set; names the offending fields
/// otherwise.
fn validate(req: &RunRequest) -> Result<(), ExperimentError> {
    let set: Vec<&str> = [
        ("benchmark", req.benchmark.is_some()),
        ("spec", req.spec.is_some()),
        ("trace_file", req.trace_file.is_some()),
    ]
    .iter()
    .filter(|(_, s)| *s)
    .map(|(n, _)| *n)
    .collect();
    match set.len() {
        0 => Err(ExperimentError::InvalidInput(
            "one of the fields `benchmark`, `spec`, `trace_file` is required".into(),
        )),
        1 => Ok(()),
        _ => Err(ExperimentError::InvalidInput(format!(
            "fields {} are mutually exclusive — set exactly one",
            set.iter()
                .map(|n| format!("`{n}`"))
                .collect::<Vec<_>>()
                .join(", ")
        ))),
    }
}

fn load_trace(req: &RunRequest) -> Result<(String, Vec<Inst>), ExperimentError> {
    validate(req)?;
    if let Some(name) = &req.benchmark {
        let suite = extended_suite();
        let b = suite.iter().find(|b| &b.name == name).ok_or_else(|| {
            ExperimentError::InvalidInput(format!(
                "field `benchmark`: unknown benchmark {name:?} (try policy_explorer -- --list)"
            ))
        })?;
        Ok((
            name.clone(),
            b.spec.generator().take(req.insts as usize).collect(),
        ))
    } else if let Some(spec) = &req.spec {
        Ok((
            "inline spec".to_string(),
            spec.generator().take(req.insts as usize).collect(),
        ))
    } else if let Some(path) = &req.trace_file {
        let file = std::fs::File::open(path).map_err(|e| {
            ExperimentError::InvalidInput(format!("field `trace_file`: cannot open {path}: {e}"))
        })?;
        let trace = trace_io::read_binary(std::io::BufReader::new(file)).map_err(|e| {
            ExperimentError::Trace(format!("field `trace_file`: cannot parse {path}: {e}"))
        })?;
        Ok((path.clone(), trace))
    } else {
        // validate() has already rejected this.
        Err(ExperimentError::InvalidInput(
            "one of the fields `benchmark`, `spec`, `trace_file` is required".into(),
        ))
    }
}

/// Executes one request end to end.
fn run_request(req: &RunRequest) -> Result<RunReply, ExperimentError> {
    validate(req)?;
    // Benchmark-sourced functional cells go through the sweep runner so
    // they share the process-wide replay cache (`AC_REPLAY`): the
    // front-end runs at most once per (benchmark, L1-config, budget)
    // key and every cell replays the captured L2 stream against its own
    // organisation. Spec and trace-file sources have no suite identity
    // to key on and stay on the direct path below.
    if req.mode == "functional" {
        if let Some(name) = &req.benchmark {
            let suite = extended_suite();
            let b = suite.iter().find(|b| &b.name == name).ok_or_else(|| {
                ExperimentError::InvalidInput(format!(
                    "field `benchmark`: unknown benchmark {name:?} (try policy_explorer -- --list)"
                ))
            })?;
            let r = experiments::run_functional_l2_cfg(
                b,
                &req.l2,
                (
                    req.cpu.l2.size_bytes,
                    req.cpu.l2.line_bytes,
                    req.cpu.l2.associativity,
                ),
                req.insts,
                &req.cpu,
            )
            .map_err(|e| match e {
                ExperimentError::Geometry(g) => {
                    ExperimentError::InvalidInput(format!("field `cpu.l2`: bad geometry: {g}"))
                }
                other => other,
            })?;
            return Ok(RunReply {
                workload: name.clone(),
                l2: req.l2.label(),
                mode: req.mode.clone(),
                instructions: r.stats.instructions,
                l2_misses: r.stats.l2_misses,
                l2_mpki: r.stats.l2_mpki(),
                cycles: None,
                cpi: None,
            });
        }
    }
    let (workload, trace) = load_trace(req)?;
    let geom = Geometry::new(
        req.cpu.l2.size_bytes,
        req.cpu.l2.line_bytes,
        req.cpu.l2.associativity,
    )
    .map_err(|e| ExperimentError::InvalidInput(format!("field `cpu.l2`: bad geometry: {e}")))?;
    let l2 = req.l2.build(geom);
    let n = trace.len() as u64;

    match req.mode.as_str() {
        "functional" => {
            let mut h = Hierarchy::new(&req.cpu, l2);
            let s = run_functional(&mut h, trace.into_iter(), n);
            Ok(RunReply {
                workload,
                l2: req.l2.label(),
                mode: req.mode.clone(),
                instructions: s.instructions,
                l2_misses: s.l2_misses,
                l2_mpki: s.l2_mpki(),
                cycles: None,
                cpi: None,
            })
        }
        "timed" => {
            let mut pipe = Pipeline::new(req.cpu, l2);
            let s = pipe.run(trace.into_iter(), n);
            Ok(RunReply {
                workload,
                l2: req.l2.label(),
                mode: req.mode.clone(),
                instructions: s.instructions,
                l2_misses: s.l2.misses,
                l2_mpki: s.l2_mpki(),
                cycles: Some(s.cycles),
                cpi: Some(s.cpi()),
            })
        }
        other => Err(ExperimentError::InvalidInput(format!(
            "field `mode`: unknown mode {other:?} (functional|timed)"
        ))),
    }
}

/// Prints an error and exits with the invalid-input code.
fn die_invalid(msg: &str) -> ! {
    ac_telemetry::error!("cachesim: {msg}");
    std::process::exit(EXIT_INVALID_INPUT)
}

fn to_json<T: Serialize>(value: &T) -> String {
    match serde_json::to_string_pretty(value) {
        Ok(s) => s,
        Err(e) => die_invalid(&format!("cannot serialise reply: {e}")),
    }
}

/// Per-cell line of the sweep report printed on stdout.
#[derive(Debug, Serialize)]
struct CellReply {
    key: String,
    status: &'static str,
    #[serde(skip_serializing_if = "Option::is_none")]
    result: Option<RunReply>,
    #[serde(skip_serializing_if = "Option::is_none")]
    error: Option<String>,
}

fn run_sweep_request(req: SweepRequest, config_path: &Path) -> i32 {
    let stem = req.name.clone().unwrap_or_else(|| {
        config_path
            .file_stem()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_else(|| "sweep".to_string())
    });
    let cfg = SupervisorConfig {
        deadline: req.deadline_secs.map(Duration::from_secs_f64),
        retries: req.retries.unwrap_or(1),
        journal: Some(resilience::journal_path(Path::new("results"), &stem)),
        resume: resilience::resume_from_env(),
        threads: 0,
        progress: Some(stem.clone()),
    };
    // Cell keys are the resume identity: the position plus the workload,
    // L2 label, mode and instruction budget, so editing one cell of the
    // config invalidates only that cell's checkpoint.
    let indexed: Vec<(usize, RunRequest)> = req.sweep.into_iter().enumerate().collect();
    let report = match resilience::run_sweep(
        &indexed,
        &cfg,
        |(i, c)| {
            let workload = c
                .benchmark
                .clone()
                .or_else(|| c.trace_file.clone())
                .unwrap_or_else(|| "spec".to_string());
            format!("{i}:{workload}:{}:{}:{}", c.l2.label(), c.mode, c.insts)
        },
        |(_, c): (usize, RunRequest)| run_request(&c),
    ) {
        Ok(r) => r,
        Err(e) => die_invalid(&format!("sweep setup failed: {e}")),
    };

    let lines: Vec<CellReply> = report
        .cells
        .iter()
        .map(|c| {
            let (status, result, error) = match &c.outcome {
                resilience::CellOutcome::Done(r) => ("ok", Some(r.clone()), None),
                resilience::CellOutcome::Resumed(r) => ("resumed", Some(r.clone()), None),
                resilience::CellOutcome::Failed(e) => ("failed", None, Some(e.to_string())),
                resilience::CellOutcome::TimedOut(d) => (
                    "timed_out",
                    None,
                    Some(format!("exceeded {:.3}s deadline", d.as_secs_f64())),
                ),
            };
            CellReply {
                key: c.key.clone(),
                status,
                result,
                error,
            }
        })
        .collect();
    println!("{}", to_json(&lines));
    ac_telemetry::info!("cachesim: {}", report.summary());
    if let Some(path) = &cfg.journal {
        ac_telemetry::info!("cachesim: journal at {}", path.display());
        if report.exit_code() == EXIT_PARTIAL {
            ac_telemetry::info!("cachesim: re-run with AC_RESUME=1 to retry only unfinished cells");
        }
    }
    report.exit_code()
}

/// Exit code of `cachesim cache verify` when at least one store entry
/// fails integrity verification.
const EXIT_CORRUPT_STORE: i32 = 5;

/// One line of `cachesim cache ls`/`verify` output.
#[derive(Debug, Serialize)]
struct CacheEntryReply {
    path: String,
    bytes: u64,
    #[serde(skip_serializing_if = "Option::is_none")]
    events: Option<usize>,
    #[serde(skip_serializing_if = "Option::is_none")]
    error: Option<String>,
}

/// `cachesim cache {ls,verify,gc} [--dir <dir>]`: inspect, integrity-
/// check, or sweep the persistent replay store (default directory:
/// `AC_REPLAY_DIR`). `verify` exits [`EXIT_CORRUPT_STORE`] if any entry
/// fails its checks; a missing directory is an empty (healthy) store.
fn run_cache_subcommand(rest: &[String]) -> i32 {
    let Some(action) = rest.first().map(String::as_str) else {
        die_invalid("usage: cachesim cache {ls|verify|gc} [--dir <dir>]");
    };
    let mut dir: Option<String> = None;
    let mut i = 1;
    while i < rest.len() {
        match rest[i].as_str() {
            "--dir" => {
                i += 1;
                match rest.get(i) {
                    Some(d) => dir = Some(d.clone()),
                    None => die_invalid("flag `--dir` requires a path operand"),
                }
            }
            other => {
                if let Some(d) = other.strip_prefix("--dir=") {
                    dir = Some(d.to_string());
                } else {
                    die_invalid(&format!("unknown cache flag `{other}`"));
                }
            }
        }
        i += 1;
    }
    let dir = dir
        .map(std::path::PathBuf::from)
        .or_else(experiments::replay_store::dir)
        .unwrap_or_else(|| {
            die_invalid("cache: no store directory (pass --dir or set AC_REPLAY_DIR)")
        });
    if !dir.exists() {
        println!("[]");
        return 0;
    }
    let fail = |e: std::io::Error| -> ! {
        die_invalid(&format!("cache: cannot read store {}: {e}", dir.display()))
    };
    match action {
        "ls" => {
            let entries = experiments::replay_store::scan(&dir).unwrap_or_else(|e| fail(e));
            let lines: Vec<CacheEntryReply> = entries
                .iter()
                .map(|e| CacheEntryReply {
                    path: e.path.display().to_string(),
                    bytes: e.bytes,
                    events: None,
                    error: None,
                })
                .collect();
            println!("{}", to_json(&lines));
            0
        }
        "verify" => {
            let verdicts = experiments::replay_store::verify_dir(&dir).unwrap_or_else(|e| fail(e));
            let mut corrupt = 0usize;
            let lines: Vec<CacheEntryReply> = verdicts
                .iter()
                .map(|v| CacheEntryReply {
                    path: v.info.path.display().to_string(),
                    bytes: v.info.bytes,
                    events: v.result.as_ref().ok().copied(),
                    error: v.result.as_ref().err().map(|e| {
                        corrupt += 1;
                        e.clone()
                    }),
                })
                .collect();
            println!("{}", to_json(&lines));
            if corrupt > 0 {
                ac_telemetry::error!(
                    "cachesim: {corrupt}/{} store entries failed verification",
                    lines.len()
                );
                EXIT_CORRUPT_STORE
            } else {
                ac_telemetry::info!("cachesim: {} store entries verified", lines.len());
                0
            }
        }
        "gc" => {
            let stats = experiments::replay_store::gc_dir(&dir).unwrap_or_else(|e| fail(e));
            println!("{}", to_json(&stats));
            0
        }
        other => die_invalid(&format!("unknown cache action `{other}` (ls|verify|gc)")),
    }
}

/// Appends the bench's headline numbers to the history observatory; a
/// write failure downgrades to a warning (the bench itself succeeded).
fn append_bench_history(
    history_path: &Path,
    kind: &str,
    quick: bool,
    metrics: std::collections::BTreeMap<String, f64>,
) {
    let record = bench::history::record(kind, quick, metrics);
    match bench::history::append(history_path, &record) {
        Ok(()) => println!("appended {}", history_path.display()),
        Err(e) => eprintln!("cachesim: cannot append {}: {e}", history_path.display()),
    }
}

/// `cachesim bench [--sweep] [--quick] [--out <path>] [--history <path>]
/// [--trend [--threshold <pct>]]`: measure access throughput per
/// organisation (against the seed-layout baselines where they exist) and
/// write `results/bench_access.json` — or, with `--sweep`, time a
/// fig03-style functional sweep replay-on vs replay-off and write
/// `results/bench_sweep.json`. Every bench appends one line to the
/// history observatory (`results/bench_history.jsonl`); `--trend` skips
/// benching and instead prints the recorded trajectory, exiting 4 when
/// the newest record of a series regressed beyond the threshold
/// (`--threshold` / `AC_BENCH_MAX_REGRESSION_PCT`, default 10%).
fn run_bench_subcommand(rest: &[String]) -> i32 {
    let mut quick = false;
    let mut sweep = false;
    let mut trend = false;
    let mut out: Option<String> = None;
    let mut history: Option<String> = None;
    let mut threshold: Option<f64> = None;
    let mut i = 0;
    while i < rest.len() {
        match rest[i].as_str() {
            "--quick" => quick = true,
            "--sweep" => sweep = true,
            "--trend" => trend = true,
            "--out" => {
                i += 1;
                match rest.get(i) {
                    Some(p) => out = Some(p.clone()),
                    None => die_invalid("flag `--out` requires a path operand"),
                }
            }
            "--history" => {
                i += 1;
                match rest.get(i) {
                    Some(p) => history = Some(p.clone()),
                    None => die_invalid("flag `--history` requires a path operand"),
                }
            }
            "--threshold" => {
                i += 1;
                match rest.get(i).and_then(|v| v.parse::<f64>().ok()) {
                    Some(pct) if pct >= 0.0 => threshold = Some(pct),
                    _ => die_invalid("flag `--threshold` wants a non-negative percentage"),
                }
            }
            other => {
                if let Some(p) = other.strip_prefix("--out=") {
                    out = Some(p.to_string());
                } else if let Some(p) = other.strip_prefix("--history=") {
                    history = Some(p.to_string());
                } else if let Some(p) = other.strip_prefix("--threshold=") {
                    match p.parse::<f64>() {
                        Ok(pct) if pct >= 0.0 => threshold = Some(pct),
                        _ => die_invalid("flag `--threshold` wants a non-negative percentage"),
                    }
                } else {
                    die_invalid(&format!("unknown bench flag `{other}`"));
                }
            }
        }
        i += 1;
    }
    let history_path = history.unwrap_or_else(|| bench::history::DEFAULT_HISTORY_PATH.to_string());
    let history_path = Path::new(&history_path);

    if trend {
        let threshold = threshold
            .or_else(|| {
                std::env::var("AC_BENCH_MAX_REGRESSION_PCT")
                    .ok()
                    .and_then(|v| v.parse().ok())
            })
            .unwrap_or(bench::history::DEFAULT_TREND_PCT);
        return bench::history::run_trend(history_path, threshold);
    }

    if sweep {
        let out = out.unwrap_or_else(|| "results/bench_sweep.json".to_string());
        let report = bench::sweep_bench::run(quick);
        bench::sweep_bench::print_report(&report);
        if ac_telemetry::enabled() {
            ac_telemetry::gauge_set("bench.sweep_speedup", report.speedup);
        }
        let path = Path::new(&out);
        match bench::sweep_bench::write_report(&report, path) {
            Ok(()) => println!("wrote {}", path.display()),
            Err(e) => {
                eprintln!("cachesim: cannot write {}: {e}", path.display());
                return 1;
            }
        }
        let mut metrics = std::collections::BTreeMap::new();
        metrics.insert(
            "cells_per_sec_replay_off".to_string(),
            report.replay_off.cells_per_sec,
        );
        metrics.insert(
            "cells_per_sec_replay_on".to_string(),
            report.replay_on.cells_per_sec,
        );
        metrics.insert("sweep_speedup".to_string(), report.speedup);
        if let Some(ds) = report.disk_speedup {
            metrics.insert("disk_speedup".to_string(), ds);
        }
        append_bench_history(history_path, "sweep", quick, metrics);
        return 0;
    }

    let out = out.unwrap_or_else(|| "results/bench_access.json".to_string());
    let report = bench::access_bench::run(quick);
    bench::access_bench::print_report(&report);
    if ac_telemetry::enabled() {
        for org in &report.organisations {
            ac_telemetry::gauge_set_labeled(
                "bench.accesses_per_sec",
                &org.name,
                org.accesses_per_sec,
            );
        }
    }
    let path = Path::new(&out);
    match bench::access_bench::write_report(&report, path) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(e) => {
            eprintln!("cachesim: cannot write {}: {e}", path.display());
            return 1;
        }
    }
    let metrics = report
        .organisations
        .iter()
        .map(|org| {
            (
                format!("accesses_per_sec/{}", org.name),
                org.accesses_per_sec,
            )
        })
        .collect();
    append_bench_history(history_path, "access", quick, metrics);
    0
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if let Err(e) = bench::init_telemetry(&mut args) {
        die_invalid(&e);
    }
    // The introspection server (`--serve <addr>` / `AC_SERVE`) outlives
    // the whole dispatch; `dispatch` *returns* its exit code instead of
    // exiting so the normal paths shut the server down and release the
    // port deterministically. (The `die_invalid` paths still leave via
    // `process::exit` — the OS reclaims the port there.)
    let server = match bench::init_serve(&mut args) {
        Ok(s) => s,
        Err(e) => die_invalid(&e),
    };
    let code = dispatch(args);
    if let Some(s) = server {
        s.shutdown();
    }
    std::process::exit(code);
}

fn dispatch(mut args: Vec<String>) -> i32 {
    let mut arg = args.first().cloned().unwrap_or_default();
    if arg == "--template" {
        println!("{}", to_json(&template()));
        return 0;
    }
    if arg == "bench" {
        let code = run_bench_subcommand(&args[1..]);
        bench::finish_telemetry();
        return code;
    }
    if arg == "cache" {
        let code = run_cache_subcommand(&args[1..]);
        bench::finish_telemetry();
        return code;
    }
    if arg == "report" {
        // Renders run artifacts; never simulates, so no telemetry flush.
        return bench::report::run_report_subcommand(&args[1..]);
    }
    if arg == "run" {
        // `cachesim run <run.json>` is an explicit alias for the bare
        // positional form.
        args.remove(0);
        arg = args.first().cloned().unwrap_or_default();
    }
    if arg.is_empty() || arg.starts_with("--") {
        die_invalid(
            "usage: cachesim [--telemetry <dir> | --metrics] [--serve <addr>] [run] <run.json> | cachesim --template | cachesim bench [--sweep] [--quick] [--out <path>] [--history <path>] [--trend [--threshold <pct>]] | cachesim cache {ls|verify|gc} [--dir <dir>] | cachesim report <run-dir> [--compare <old-run-dir>] [--out <file>] [--threshold <pct>]",
        );
    }

    let text = match std::fs::read_to_string(&arg) {
        Ok(t) => t,
        Err(e) => die_invalid(&format!("cannot read {arg}: {e}")),
    };
    let input: Input = match serde_json::from_str(&text) {
        Ok(i) => i,
        Err(e) => die_invalid(&format!("bad config: {e}")),
    };

    match input {
        Input::Single(req) => match run_request(&req) {
            Ok(reply) => {
                println!("{}", to_json(&reply));
                bench::finish_telemetry();
                0
            }
            Err(e) => die_invalid(&e.to_string()),
        },
        Input::Sweep(sweep) => {
            if sweep.sweep.is_empty() {
                die_invalid("field `sweep`: must contain at least one run");
            }
            for (i, cell) in sweep.sweep.iter().enumerate() {
                if let Err(e) = validate(cell) {
                    die_invalid(&format!("sweep cell {i}: {e}"));
                }
            }
            let code = run_sweep_request(sweep, Path::new(&arg));
            bench::finish_telemetry();
            code
        }
    }
}
