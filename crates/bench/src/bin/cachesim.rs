//! `cachesim` — a JSON-driven command-line front end for the simulator.
//!
//! Usage:
//!   cargo run --release -p bench --bin cachesim -- run.json
//!   cargo run --release -p bench --bin cachesim -- --template > run.json
//!
//! The JSON file describes one run: a workload (a suite benchmark by
//! name, an inline `WorkloadSpec`, or a recorded trace file), an L2
//! organisation, the mode (functional or timed) and the instruction
//! budget. Results are printed as JSON on stdout.

use cache_sim::Geometry;
use cpu_model::{run_functional, CpuConfig, Hierarchy, Pipeline};
use experiments::L2Kind;
use serde::{Deserialize, Serialize};
use workloads::{extended_suite, trace_io, Inst, WorkloadSpec};

/// One simulation request.
#[derive(Debug, Serialize, Deserialize)]
struct RunRequest {
    /// Benchmark name from the built-in suite (see
    /// `policy_explorer -- --list`). Mutually exclusive with `spec` and
    /// `trace_file`.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    benchmark: Option<String>,
    /// Inline workload specification.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    spec: Option<WorkloadSpec>,
    /// Path to a recorded `.actr` binary trace.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    trace_file: Option<String>,
    /// The L2 organisation under test.
    l2: L2Kind,
    /// `"functional"` (miss rates only, fast) or `"timed"` (full CPI).
    mode: String,
    /// Instructions to run.
    insts: u64,
    /// Processor configuration (defaults to the paper's Table 1).
    #[serde(default = "CpuConfig::paper_default")]
    cpu: CpuConfig,
}

#[derive(Debug, Serialize)]
struct RunReply {
    workload: String,
    l2: String,
    mode: String,
    instructions: u64,
    l2_misses: u64,
    l2_mpki: f64,
    #[serde(skip_serializing_if = "Option::is_none")]
    cycles: Option<u64>,
    #[serde(skip_serializing_if = "Option::is_none")]
    cpi: Option<f64>,
}

fn template() -> RunRequest {
    RunRequest {
        benchmark: Some("art-1".to_string()),
        spec: None,
        trace_file: None,
        l2: L2Kind::Adaptive(adaptive_cache::AdaptiveConfig::paper_default()),
        mode: "timed".to_string(),
        insts: 2_000_000,
        cpu: CpuConfig::paper_default(),
    }
}

fn load_trace(req: &RunRequest) -> (String, Vec<Inst>) {
    if let Some(name) = &req.benchmark {
        let suite = extended_suite();
        let b = suite
            .iter()
            .find(|b| &b.name == name)
            .unwrap_or_else(|| die(&format!("unknown benchmark {name}")));
        (
            name.clone(),
            b.spec.generator().take(req.insts as usize).collect(),
        )
    } else if let Some(spec) = &req.spec {
        (
            "inline spec".to_string(),
            spec.generator().take(req.insts as usize).collect(),
        )
    } else if let Some(path) = &req.trace_file {
        let file = std::fs::File::open(path)
            .unwrap_or_else(|e| die(&format!("cannot open {path}: {e}")));
        let trace = trace_io::read_binary(std::io::BufReader::new(file))
            .unwrap_or_else(|e| die(&format!("cannot parse {path}: {e}")));
        (path.clone(), trace)
    } else {
        die("one of benchmark / spec / trace_file is required")
    }
}

fn die(msg: &str) -> ! {
    eprintln!("cachesim: {msg}");
    std::process::exit(1)
}

fn main() {
    let arg = std::env::args().nth(1).unwrap_or_default();
    if arg == "--template" {
        println!("{}", serde_json::to_string_pretty(&template()).unwrap());
        return;
    }
    if arg.is_empty() || arg.starts_with("--") {
        die("usage: cachesim <run.json> | cachesim --template");
    }

    let text = std::fs::read_to_string(&arg)
        .unwrap_or_else(|e| die(&format!("cannot read {arg}: {e}")));
    let req: RunRequest =
        serde_json::from_str(&text).unwrap_or_else(|e| die(&format!("bad config: {e}")));

    let (workload, trace) = load_trace(&req);
    let geom = Geometry::new(
        req.cpu.l2.size_bytes,
        req.cpu.l2.line_bytes,
        req.cpu.l2.associativity,
    )
    .unwrap_or_else(|e| die(&format!("bad L2 geometry: {e}")));
    let l2 = req.l2.build(geom);
    let n = trace.len() as u64;

    let reply = match req.mode.as_str() {
        "functional" => {
            let mut h = Hierarchy::new(&req.cpu, l2);
            let s = run_functional(&mut h, trace.into_iter(), n);
            RunReply {
                workload,
                l2: req.l2.label(),
                mode: req.mode,
                instructions: s.instructions,
                l2_misses: s.l2_misses,
                l2_mpki: s.l2_mpki(),
                cycles: None,
                cpi: None,
            }
        }
        "timed" => {
            let mut pipe = Pipeline::new(req.cpu, l2);
            let s = pipe.run(trace.into_iter(), n);
            RunReply {
                workload,
                l2: req.l2.label(),
                mode: req.mode,
                instructions: s.instructions,
                l2_misses: s.l2.misses,
                l2_mpki: s.l2_mpki(),
                cycles: Some(s.cycles),
                cpi: Some(s.cpi()),
            }
        }
        other => die(&format!("unknown mode {other:?} (functional|timed)")),
    };
    println!("{}", serde_json::to_string_pretty(&reply).unwrap());
}
