//! Related-work comparison: the paper's adaptive cache vs DIP set dueling
//! (Qureshi et al., ISCA 2007) — the set-dueling successor that the
//! paper's SBAR experiment anticipated. DIP needs no shadow tags at all
//! but can only modulate LRU's *insertion* position; the adaptive cache
//! can combine arbitrary policies.

use adaptive_cache::{AdaptiveConfig, DipConfig, SbarConfig};
use bench::{emit, timed};
use cache_sim::PolicyKind;
use experiments::runner::parallel_map;
use experiments::{default_insts, run_functional_l2, L2Kind, Table, PAPER_L2};
use workloads::primary_suite;

fn main() {
    let insts = default_insts();
    let kinds = [
        ("LRU", L2Kind::Plain(PolicyKind::Lru)),
        ("Adaptive", L2Kind::Adaptive(AdaptiveConfig::paper_full_tags())),
        ("SBAR", L2Kind::Sbar(SbarConfig::paper_default())),
        ("DIP", L2Kind::Dip(DipConfig::paper_default())),
    ];
    let mut t = Table::new(
        "Related work: adaptive replacement vs DIP set dueling (L2 MPKI)",
        "benchmark",
        kinds.iter().map(|(n, _)| n.to_string()).collect(),
    );
    let suite = primary_suite();
    let rows = timed("related_dip", || {
        parallel_map(&suite, |b| {
            let row: Vec<f64> = kinds
                .iter()
                .map(|(_, k)| run_functional_l2(b, k, PAPER_L2, insts)
                    .expect("paper geometry is valid")
                    .stats
                    .l2_mpki())
                .collect();
            (b.name.clone(), row)
        })
    });
    for (name, row) in rows {
        t.push_row(name, row);
    }
    t.push_average();
    emit(&t, "related_dip");
}
