//! Round-trip contract for every telemetry artifact: a hub populated
//! with all record kinds writes its directory, and every file parses
//! back with the schema version the writer claims to emit. Guards the
//! hand-rolled JSON writers against drift from the documented schemas.

use ac_telemetry::heatmap::HEATMAP_SCHEMA_VERSION;
use ac_telemetry::timeline::TIMELINE_SCHEMA_VERSION;
use ac_telemetry::{
    Comp, DecisionEvent, EvictionCase, Recorder, SpanRecord, Telemetry, TelemetryConfig, Timeline,
    TimelineGauges, TimelineProbe, EVENTS_SCHEMA_VERSION, SUMMARY_SCHEMA_VERSION,
};
use serde_json::Value;
use std::path::{Path, PathBuf};

struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> TempDir {
        let dir = std::env::temp_dir().join(format!("ac-roundtrip-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create temp dir");
        TempDir(dir)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn parse_json(path: &Path) -> Value {
    let text =
        std::fs::read_to_string(path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()));
    serde_json::from_str(&text).unwrap_or_else(|e| panic!("parse {}: {e}", path.display()))
}

fn parse_jsonl(path: &Path) -> Vec<Value> {
    let text =
        std::fs::read_to_string(path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()));
    text.lines()
        .filter(|l| !l.trim().is_empty())
        .enumerate()
        .map(|(i, l)| {
            serde_json::from_str(l)
                .unwrap_or_else(|e| panic!("parse {} line {}: {e}", path.display(), i + 1))
        })
        .collect()
}

fn u64_of(v: &Value, key: &str) -> u64 {
    v.get(key)
        .and_then(Value::as_u64)
        .unwrap_or_else(|| panic!("field `{key}` missing or non-integer in {v:?}"))
}

#[test]
fn every_artifact_parses_with_its_schema_version() {
    let tmp = TempDir::new("artifacts");
    let hub = Telemetry::new(
        TelemetryConfig::default()
            .with_dir(tmp.0.clone())
            .with_sample_rate(1)
            .with_heatmap(4, 1),
    );

    // One record of every kind the hub accepts.
    hub.counter_add("roundtrip_misses_total", "policy=adaptive", 41);
    hub.counter_add("roundtrip_misses_total", "policy=adaptive", 1);
    hub.gauge_set("roundtrip_accesses_per_sec", "", 123456.5);
    hub.histogram_record("roundtrip_latency", 17);
    hub.span_record(SpanRecord {
        name: "cell 0".into(),
        cat: "cell",
        ts_us: 10,
        dur_us: 25,
        tid: 1,
        args: vec![("frontend_skipped", "false".to_string())],
    });
    let decisions = [
        DecisionEvent::Imitation {
            set: 3,
            component: Comp::B,
            case: EvictionCase::NotInShadow,
        },
        DecisionEvent::HistoryUpdate {
            set: 3,
            a_missed: true,
            b_missed: false,
        },
        DecisionEvent::LeaderVote {
            set: 0,
            slot: 1,
            psel: 512,
            global: Comp::A,
        },
        DecisionEvent::DuelVote {
            set: 7,
            bip_leader: true,
            psel: 100,
        },
    ];
    for d in decisions {
        hub.decision(d);
    }

    // A timeline attached the way drivers do it (close + detach).
    let mut tl = Timeline::new("roundtrip run".into(), "accesses", 100, 8);
    let mut probe = TimelineProbe::default();
    for tick in [100u64, 200, 250] {
        probe.accesses = tick;
        probe.misses = tick / 10;
        probe.hits = probe.accesses - probe.misses;
        tl.close(tick, tick * 2, probe, TimelineGauges::default());
    }
    hub.attach_timeline(tl.into_data());

    let paths = hub.write_artifacts().expect("write_artifacts");
    let names: Vec<String> = paths
        .iter()
        .map(|p| p.file_name().unwrap().to_string_lossy().into_owned())
        .collect();
    for expected in [
        "metrics.prom",
        "trace.json",
        "telemetry-summary.json",
        "events.jsonl",
        "timeline.jsonl",
        "heatmap.json",
    ] {
        assert!(
            names.iter().any(|n| n == expected),
            "write_artifacts did not produce {expected}; got {names:?}"
        );
    }

    // telemetry-summary.json: schema version + the counters round-trip.
    let summary = parse_json(&tmp.0.join("telemetry-summary.json"));
    assert_eq!(
        u64_of(&summary, "schema_version"),
        u64::from(SUMMARY_SCHEMA_VERSION)
    );
    let misses = summary
        .get("counters")
        .and_then(|c| c.get("roundtrip_misses_total"))
        .and_then(|c| c.get("policy=adaptive"))
        .and_then(Value::as_u64);
    assert_eq!(misses, Some(42));
    assert_eq!(
        u64_of(summary.get("events").expect("events"), "recorded"),
        4
    );

    // events.jsonl: every line carries the schema version and a known kind.
    let events = parse_jsonl(&tmp.0.join("events.jsonl"));
    assert_eq!(events.len(), decisions.len());
    for e in &events {
        assert_eq!(
            u64_of(e, "schema_version"),
            u64::from(EVENTS_SCHEMA_VERSION)
        );
    }
    let kinds: Vec<&str> = events
        .iter()
        .map(|e| e.get("kind").and_then(Value::as_str).expect("kind"))
        .collect();
    assert_eq!(
        kinds,
        ["imitation", "history_update", "leader_vote", "duel_vote"]
    );

    // timeline.jsonl: per-window schema version, labels, and the
    // derived-rate fields the report consumes.
    let windows = parse_jsonl(&tmp.0.join("timeline.jsonl"));
    assert_eq!(windows.len(), 3);
    for w in &windows {
        assert_eq!(
            u64_of(w, "schema_version"),
            u64::from(TIMELINE_SCHEMA_VERSION)
        );
        assert_eq!(w.get("run").and_then(Value::as_str), Some("roundtrip run"));
        assert_eq!(w.get("unit").and_then(Value::as_str), Some("accesses"));
        for field in ["mpki", "miss_ratio", "imit_frac_b", "ticks_per_sec"] {
            assert!(
                w.get(field).is_some(),
                "window lacks derived field `{field}`: {w:?}"
            );
        }
    }
    let total_misses: u64 = windows.iter().map(|w| u64_of(w, "misses")).sum();
    assert_eq!(total_misses, 25, "window deltas must sum to the last probe");

    // heatmap.json: schema version and the decisions that produced cells.
    let heatmap = parse_json(&tmp.0.join("heatmap.json"));
    assert_eq!(
        u64_of(&heatmap, "schema_version"),
        u64::from(HEATMAP_SCHEMA_VERSION)
    );
    assert_eq!(u64_of(&heatmap, "events"), 4);
    let hm_windows = heatmap.get("windows").and_then(Value::as_array).unwrap();
    assert!(!hm_windows.is_empty());
    let first_sets = hm_windows[0].get("sets").and_then(Value::as_array).unwrap();
    assert!(
        first_sets
            .iter()
            .any(|c| c.get("set").and_then(Value::as_u64) == Some(3)),
        "set 3 (imitation + history update) missing from heatmap cells"
    );

    // trace.json parses and holds the span.
    let trace = parse_json(&tmp.0.join("trace.json"));
    assert!(trace.get("traceEvents").is_some());

    // The report loader accepts the directory end to end.
    let run = bench::report::RunArtifacts::load(&tmp.0).expect("report loads artifacts");
    assert_eq!(run.timeline.len(), 3);
    assert!(run.heatmap.is_some());
    let html = bench::report::render_html(&run, None);
    assert!(html.contains("<svg"));
}
