//! End-to-end introspection-server test: a real `cachesim` subprocess
//! runs a supervised sweep with `--serve 127.0.0.1:0`, the test
//! discovers the ephemeral port through `AC_SERVE_ADDR_FILE`, scrapes
//! `/metrics` and `/progress` *while the sweep is running*, and checks
//! the shutdown contract — exit 0, cell counts monotone to done==total,
//! and the port released once the process exits.

use serde_json::Value;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_cachesim")
}

fn tmp_dir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("ac_serve_int_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).unwrap();
    d
}

/// Kills the subprocess if the test panics before waiting on it.
struct Reaper(Option<Child>);

impl Drop for Reaper {
    fn drop(&mut self) {
        if let Some(mut c) = self.0.take() {
            let _ = c.kill();
            let _ = c.wait();
        }
    }
}

fn get(addr: SocketAddr, path: &str) -> (u16, String) {
    let mut s = TcpStream::connect_timeout(&addr, Duration::from_secs(5)).expect("connect");
    s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    write!(
        s,
        "GET {path} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n"
    )
    .unwrap();
    let mut buf = String::new();
    s.read_to_string(&mut buf).expect("read response");
    let (head, body) = buf.split_once("\r\n\r\n").expect("well-formed response");
    let status = head.split_whitespace().nth(1).unwrap().parse().unwrap();
    (status, body.to_string())
}

/// 4 fast cells plus one that stalls 2s on its first L2 access — a
/// deterministic mid-run window for the scrapes.
fn sweep_config() -> String {
    let fast = ["ammp", "applu", "mcf", "art-1"].map(|b| {
        format!(r#"{{"benchmark":"{b}","l2":{{"Plain":"Lru"}},"mode":"functional","insts":20000}}"#)
    });
    let stall = r#"{"benchmark":"mcf","l2":{"Faulty":{"fault":{"stall_at_access":1,"stall_millis":2000},"inner":{"Plain":"Fifo"}}},"mode":"functional","insts":20000}"#;
    format!(
        r#"{{"name":"serve_int","sweep":[{},{stall}]}}"#,
        fast.join(",")
    )
}

fn wait_for_addr(path: &Path) -> SocketAddr {
    let deadline = Instant::now() + Duration::from_secs(20);
    loop {
        if let Ok(text) = std::fs::read_to_string(path) {
            if let Ok(addr) = text.trim().parse() {
                return addr;
            }
        }
        assert!(
            Instant::now() < deadline,
            "server never published its address to {}",
            path.display()
        );
        std::thread::sleep(Duration::from_millis(20));
    }
}

/// The `serve_int` sweep object of a `/progress` document.
fn sweep_snapshot(body: &str) -> Option<Value> {
    let v: Value = serde_json::from_str(body).ok()?;
    assert_eq!(v["schema_version"].as_u64(), Some(1), "{body}");
    v["sweeps"]
        .as_array()?
        .iter()
        .find(|s| s["name"].as_str() == Some("serve_int"))
        .cloned()
}

#[test]
fn sweep_with_serve_is_scrapable_mid_run_and_releases_the_port() {
    let dir = tmp_dir("sweep");
    let cfg = dir.join("grid.json");
    std::fs::write(&cfg, sweep_config()).unwrap();
    let addr_file = dir.join("addr");
    let tele = dir.join("tele");

    let child = Command::new(bin())
        .args(["--serve", "127.0.0.1:0", cfg.to_str().unwrap()])
        .current_dir(&dir)
        .env_remove("AC_RESUME")
        .env("AC_SERVE_ADDR_FILE", &addr_file)
        .env("AC_TELEMETRY", &tele)
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("cachesim did not start");
    let mut reaper = Reaper(Some(child));
    let addr = wait_for_addr(&addr_file);

    // Liveness first; then scrape progress until the fast cells land
    // while the stalled cell holds the sweep open.
    let (status, body) = get(addr, "/healthz");
    assert_eq!(status, 200, "{body}");

    let deadline = Instant::now() + Duration::from_secs(30);
    let mut completed_seen: Vec<u64> = Vec::new();
    let mut saw_live_eta = false;
    loop {
        let (status, body) = get(addr, "/progress");
        assert_eq!(status, 200, "{body}");
        if let Some(s) = sweep_snapshot(&body) {
            let completed = s["completed"].as_u64().unwrap();
            if let Some(&prev) = completed_seen.last() {
                assert!(
                    completed >= prev,
                    "completed count went backwards: {completed_seen:?} then {completed}"
                );
            }
            completed_seen.push(completed);
            let finished = s["finished"].as_bool().unwrap();
            if !finished && completed > 0 && completed < s["total"].as_u64().unwrap() {
                assert!(
                    s["eta_secs"].as_f64().unwrap() > 0.0,
                    "mid-run ETA must be nonzero: {s}"
                );
                saw_live_eta = true;
            }
            if saw_live_eta && !finished {
                // Mid-run metrics scrape: valid exposition with live
                // build/progress series while cells are still running.
                let (status, metrics) = get(addr, "/metrics");
                assert_eq!(status, 200);
                assert!(metrics.contains("ac_build_info"), "{metrics}");
                assert!(metrics.contains("ac_uptime_seconds"), "{metrics}");
                assert!(
                    metrics.contains("ac_sweep_cells_done_total{label=\"serve_int\"}"),
                    "{metrics}"
                );
                break;
            }
            if finished {
                // The whole sweep outran our polling; mid-run assertions
                // were covered by the in-process serve_http tests.
                break;
            }
        }
        assert!(Instant::now() < deadline, "sweep never progressed");
        std::thread::sleep(Duration::from_millis(50));
    }

    let out = reaper
        .0
        .take()
        .unwrap()
        .wait_with_output()
        .expect("cachesim did not exit");
    assert_eq!(
        out.status.code(),
        Some(0),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(
        !completed_seen.is_empty(),
        "never observed a progress snapshot"
    );

    // The final artifact agrees with /progress: all 5 cells done.
    let prom = std::fs::read_to_string(tele.join("metrics.prom")).expect("metrics.prom written");
    assert!(
        prom.contains("ac_sweep_cells_done_total{label=\"serve_int\"} 5"),
        "{prom}"
    );
    assert!(
        prom.contains("ac_sweep_cells_total{label=\"serve_int\"} 5"),
        "{prom}"
    );

    // Clean shutdown released the port: it is rebindable immediately.
    let rebound = TcpListener::bind(addr)
        .unwrap_or_else(|e| panic!("port {addr} not released after exit: {e}"));
    drop(rebound);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn serve_flag_requires_an_operand() {
    let dir = tmp_dir("badflag");
    let out = Command::new(bin())
        .args(["--serve"])
        .current_dir(&dir)
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(3));
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("--serve"),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn bench_history_appends_and_trend_flags_regressions() {
    let dir = tmp_dir("trend");
    let hist = dir.join("results/bench_history.jsonl");
    let run = |args: &[&str]| {
        Command::new(bin())
            .args(args)
            .current_dir(&dir)
            .output()
            .expect("cachesim did not start")
    };

    // An empty observatory trends cleanly.
    let out = run(&["bench", "--trend"]);
    assert_eq!(out.status.code(), Some(0));

    // Two synthetic records: trend must compare them and pass when flat.
    for speedup in ["4.0", "4.1"] {
        let line = format!(
            r#"{{"schema_version":1,"t_unix":1,"git_sha":"deadbee","kind":"sweep","quick":true,"metrics":{{"sweep_speedup":{speedup}}}}}"#
        );
        std::fs::create_dir_all(hist.parent().unwrap()).unwrap();
        let mut f = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&hist)
            .unwrap();
        writeln!(f, "{line}").unwrap();
    }
    let out = run(&["bench", "--trend"]);
    assert_eq!(
        out.status.code(),
        Some(0),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("sweep_speedup"));

    // A collapsed third record regresses beyond any sane threshold.
    {
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(&hist)
            .unwrap();
        writeln!(
            f,
            r#"{{"schema_version":1,"t_unix":2,"git_sha":"deadbef","kind":"sweep","quick":true,"metrics":{{"sweep_speedup":0.5}}}}"#
        )
        .unwrap();
    }
    let out = run(&["bench", "--trend", "--threshold", "10"]);
    assert_eq!(
        out.status.code(),
        Some(4),
        "stdout: {} stderr: {}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("REGRESSED"));

    // A real quick bench appends a parseable record to the observatory.
    let before = std::fs::read_to_string(&hist).unwrap().lines().count();
    let out = run(&["bench", "--sweep", "--quick"]);
    assert_eq!(
        out.status.code(),
        Some(0),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = std::fs::read_to_string(&hist).unwrap();
    assert_eq!(text.lines().count(), before + 1);
    let last: Value = serde_json::from_str(text.lines().last().unwrap()).unwrap();
    assert_eq!(last["kind"].as_str(), Some("sweep"));
    assert_eq!(last["quick"].as_bool(), Some(true));
    assert!(last["metrics"]["sweep_speedup"].as_f64().is_some());
    let _ = std::fs::remove_dir_all(&dir);
}
