//! End-to-end tests of the `cachesim` binary: JSON in, JSON out, typed
//! exit codes (0 = ok, 2 = partial sweep, 3 = invalid input), journal
//! checkpointing and `AC_RESUME=1` resume — all through a real
//! subprocess, the way a user drives it.

use serde_json::Value;
use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_cachesim")
}

/// A scratch working directory (the journal lands in `<cwd>/results/`).
fn tmp_dir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("ac_cachesim_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).unwrap();
    d
}

fn run_in(dir: &Path, args: &[&str], env: &[(&str, &str)]) -> Output {
    let mut cmd = Command::new(bin());
    cmd.args(args).current_dir(dir).env_remove("AC_RESUME");
    for (k, v) in env {
        cmd.env(k, v);
    }
    cmd.output().expect("cachesim did not start")
}

fn cell(bench: &str, l2: &str) -> String {
    format!(r#"{{"benchmark":"{bench}","l2":{l2},"mode":"functional","insts":20000}}"#)
}

/// 3 benchmarks × 3 L2 organisations, with cell `poison`'s L2 wrapped in
/// a panic-on-first-access fault injector.
fn sweep_config(poison: Option<usize>) -> String {
    let benches = ["ammp", "applu", "mcf"];
    let l2s = [r#"{"Plain":"Lru"}"#, r#"{"Plain":"Fifo"}"#, r#"{"Plain":"Mru"}"#];
    let mut cells = Vec::new();
    for b in benches {
        for l2 in l2s {
            let i = cells.len();
            let l2 = if poison == Some(i) {
                format!(r#"{{"Faulty":{{"fault":{{"panic_at_access":1}},"inner":{l2}}}}}"#)
            } else {
                l2.to_string()
            };
            cells.push(cell(b, &l2));
        }
    }
    format!(r#"{{"name":"accept","sweep":[{}]}}"#, cells.join(","))
}

fn statuses(stdout: &[u8]) -> Vec<String> {
    let v: Value = serde_json::from_slice(stdout).expect("stdout is a JSON array");
    v.as_array()
        .expect("array of cell replies")
        .iter()
        .map(|c| c["status"].as_str().unwrap().to_string())
        .collect()
}

fn count(statuses: &[String], s: &str) -> usize {
    statuses.iter().filter(|x| x.as_str() == s).count()
}

#[test]
fn template_emits_a_valid_single_run_config() {
    let dir = tmp_dir("template");
    let out = run_in(&dir, &["--template"], &[]);
    assert!(out.status.success());
    let v: Value = serde_json::from_slice(&out.stdout).expect("template is JSON");
    assert!(v["benchmark"].is_string());
    assert_eq!(v["mode"].as_str(), Some("timed"));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn single_run_exits_zero_with_a_reply() {
    let dir = tmp_dir("single");
    let cfg = dir.join("run.json");
    std::fs::write(&cfg, cell("mcf", r#"{"Plain":"Lru"}"#)).unwrap();
    let out = run_in(&dir, &[cfg.to_str().unwrap()], &[]);
    assert_eq!(out.status.code(), Some(0), "{}", String::from_utf8_lossy(&out.stderr));
    let v: Value = serde_json::from_slice(&out.stdout).unwrap();
    assert_eq!(v["workload"].as_str(), Some("mcf"));
    assert_eq!(v["instructions"].as_u64(), Some(20000));
    assert!(v["l2_mpki"].as_f64().unwrap() >= 0.0);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn poisoned_sweep_exits_partial_then_resumes_only_the_failed_cell() {
    let dir = tmp_dir("sweep");
    let cfg = dir.join("grid.json");
    std::fs::write(&cfg, sweep_config(Some(4))).unwrap();

    // Kill run: the poisoned cell fails, the 8 others complete, exit 2.
    let out = run_in(&dir, &[cfg.to_str().unwrap()], &[]);
    assert_eq!(out.status.code(), Some(2), "{}", String::from_utf8_lossy(&out.stderr));
    let st = statuses(&out.stdout);
    assert_eq!(st.len(), 9);
    assert_eq!(count(&st, "ok"), 8, "{st:?}");
    assert_eq!(count(&st, "failed"), 1);
    assert_eq!(st[4], "failed", "the poisoned cell is the one that fails");
    let journal = dir.join("results/accept.journal.jsonl");
    assert!(journal.exists(), "journal must be written");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("AC_RESUME=1"), "partial runs advertise resume: {stderr}");

    // Fix the config (same keys for the healthy cells) and resume:
    // the 8 journalled cells are skipped, only the fixed cell computes.
    std::fs::write(&cfg, sweep_config(None)).unwrap();
    let out = run_in(&dir, &[cfg.to_str().unwrap()], &[("AC_RESUME", "1")]);
    assert_eq!(out.status.code(), Some(0), "{}", String::from_utf8_lossy(&out.stderr));
    let st = statuses(&out.stdout);
    assert_eq!(count(&st, "resumed"), 8, "{st:?}");
    assert_eq!(count(&st, "ok"), 1);
    assert_eq!(st[4], "ok", "only the previously failed cell recomputes");

    // Journal now proves all nine complete; a third resume run computes
    // nothing at all.
    let out = run_in(&dir, &[cfg.to_str().unwrap()], &[("AC_RESUME", "1")]);
    assert_eq!(out.status.code(), Some(0));
    assert_eq!(count(&statuses(&out.stdout), "resumed"), 9);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn missing_workload_source_exits_invalid() {
    let dir = tmp_dir("nosource");
    let cfg = dir.join("bad.json");
    std::fs::write(&cfg, r#"{"l2":{"Plain":"Lru"},"mode":"functional","insts":1000}"#).unwrap();
    let out = run_in(&dir, &[cfg.to_str().unwrap()], &[]);
    assert_eq!(out.status.code(), Some(3));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("benchmark"), "error names the fields: {stderr}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn conflicting_workload_sources_exit_invalid_naming_both_fields() {
    let dir = tmp_dir("conflict");
    let cfg = dir.join("bad.json");
    std::fs::write(
        &cfg,
        r#"{"benchmark":"mcf","trace_file":"x.actr","l2":{"Plain":"Lru"},"mode":"functional","insts":1000}"#,
    )
    .unwrap();
    let out = run_in(&dir, &[cfg.to_str().unwrap()], &[]);
    assert_eq!(out.status.code(), Some(3));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("`benchmark`") && stderr.contains("`trace_file`"),
        "both offending fields are named: {stderr}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn bad_sweep_cell_is_rejected_before_anything_runs() {
    let dir = tmp_dir("badcell");
    let cfg = dir.join("bad.json");
    // Second cell has no workload source: the whole sweep must be
    // rejected up front (exit 3) and no journal written.
    std::fs::write(
        &cfg,
        format!(
            r#"{{"name":"bad","sweep":[{},{{"l2":{{"Plain":"Lru"}},"mode":"functional","insts":1000}}]}}"#,
            cell("mcf", r#"{"Plain":"Lru"}"#)
        ),
    )
    .unwrap();
    let out = run_in(&dir, &[cfg.to_str().unwrap()], &[]);
    assert_eq!(out.status.code(), Some(3));
    assert!(String::from_utf8_lossy(&out.stderr).contains("sweep cell 1"));
    assert!(!dir.join("results/bad.journal.jsonl").exists());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn unknown_mode_and_unknown_benchmark_exit_invalid() {
    let dir = tmp_dir("badfields");
    let cfg = dir.join("bad.json");
    std::fs::write(&cfg, cell("mcf", r#"{"Plain":"Lru"}"#).replace("functional", "warp")).unwrap();
    let out = run_in(&dir, &[cfg.to_str().unwrap()], &[]);
    assert_eq!(out.status.code(), Some(3));
    assert!(String::from_utf8_lossy(&out.stderr).contains("`mode`"));

    std::fs::write(&cfg, cell("no-such-bench", r#"{"Plain":"Lru"}"#)).unwrap();
    let out = run_in(&dir, &[cfg.to_str().unwrap()], &[]);
    assert_eq!(out.status.code(), Some(3));
    assert!(String::from_utf8_lossy(&out.stderr).contains("no-such-bench"));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn no_arguments_is_usage_error() {
    let dir = tmp_dir("noargs");
    let out = run_in(&dir, &[], &[]);
    assert_eq!(out.status.code(), Some(3));
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage"));
    let _ = std::fs::remove_dir_all(&dir);
}
