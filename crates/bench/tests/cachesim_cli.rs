//! End-to-end tests of the `cachesim` binary: JSON in, JSON out, typed
//! exit codes (0 = ok, 2 = partial sweep, 3 = invalid input), journal
//! checkpointing and `AC_RESUME=1` resume — all through a real
//! subprocess, the way a user drives it.

use serde_json::Value;
use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_cachesim")
}

/// A scratch working directory (the journal lands in `<cwd>/results/`).
fn tmp_dir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("ac_cachesim_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).unwrap();
    d
}

fn run_in(dir: &Path, args: &[&str], env: &[(&str, &str)]) -> Output {
    let mut cmd = Command::new(bin());
    cmd.args(args).current_dir(dir).env_remove("AC_RESUME");
    for (k, v) in env {
        cmd.env(k, v);
    }
    cmd.output().expect("cachesim did not start")
}

fn cell(bench: &str, l2: &str) -> String {
    format!(r#"{{"benchmark":"{bench}","l2":{l2},"mode":"functional","insts":20000}}"#)
}

/// 3 benchmarks × 3 L2 organisations, with cell `poison`'s L2 wrapped in
/// a panic-on-first-access fault injector.
fn sweep_config(poison: Option<usize>) -> String {
    let benches = ["ammp", "applu", "mcf"];
    let l2s = [
        r#"{"Plain":"Lru"}"#,
        r#"{"Plain":"Fifo"}"#,
        r#"{"Plain":"Mru"}"#,
    ];
    let mut cells = Vec::new();
    for b in benches {
        for l2 in l2s {
            let i = cells.len();
            let l2 = if poison == Some(i) {
                format!(r#"{{"Faulty":{{"fault":{{"panic_at_access":1}},"inner":{l2}}}}}"#)
            } else {
                l2.to_string()
            };
            cells.push(cell(b, &l2));
        }
    }
    format!(r#"{{"name":"accept","sweep":[{}]}}"#, cells.join(","))
}

fn statuses(stdout: &[u8]) -> Vec<String> {
    let v: Value = serde_json::from_slice(stdout).expect("stdout is a JSON array");
    v.as_array()
        .expect("array of cell replies")
        .iter()
        .map(|c| c["status"].as_str().unwrap().to_string())
        .collect()
}

fn count(statuses: &[String], s: &str) -> usize {
    statuses.iter().filter(|x| x.as_str() == s).count()
}

#[test]
fn template_emits_a_valid_single_run_config() {
    let dir = tmp_dir("template");
    let out = run_in(&dir, &["--template"], &[]);
    assert!(out.status.success());
    let v: Value = serde_json::from_slice(&out.stdout).expect("template is JSON");
    assert!(v["benchmark"].is_string());
    assert_eq!(v["mode"].as_str(), Some("timed"));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn single_run_exits_zero_with_a_reply() {
    let dir = tmp_dir("single");
    let cfg = dir.join("run.json");
    std::fs::write(&cfg, cell("mcf", r#"{"Plain":"Lru"}"#)).unwrap();
    let out = run_in(&dir, &[cfg.to_str().unwrap()], &[]);
    assert_eq!(
        out.status.code(),
        Some(0),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let v: Value = serde_json::from_slice(&out.stdout).unwrap();
    assert_eq!(v["workload"].as_str(), Some("mcf"));
    assert_eq!(v["instructions"].as_u64(), Some(20000));
    assert!(v["l2_mpki"].as_f64().unwrap() >= 0.0);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn poisoned_sweep_exits_partial_then_resumes_only_the_failed_cell() {
    let dir = tmp_dir("sweep");
    let cfg = dir.join("grid.json");
    std::fs::write(&cfg, sweep_config(Some(4))).unwrap();

    // Kill run: the poisoned cell fails, the 8 others complete, exit 2.
    let out = run_in(&dir, &[cfg.to_str().unwrap()], &[]);
    assert_eq!(
        out.status.code(),
        Some(2),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let st = statuses(&out.stdout);
    assert_eq!(st.len(), 9);
    assert_eq!(count(&st, "ok"), 8, "{st:?}");
    assert_eq!(count(&st, "failed"), 1);
    assert_eq!(st[4], "failed", "the poisoned cell is the one that fails");
    let journal = dir.join("results/accept.journal.jsonl");
    assert!(journal.exists(), "journal must be written");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("AC_RESUME=1"),
        "partial runs advertise resume: {stderr}"
    );

    // Fix the config (same keys for the healthy cells) and resume:
    // the 8 journalled cells are skipped, only the fixed cell computes.
    std::fs::write(&cfg, sweep_config(None)).unwrap();
    let out = run_in(&dir, &[cfg.to_str().unwrap()], &[("AC_RESUME", "1")]);
    assert_eq!(
        out.status.code(),
        Some(0),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let st = statuses(&out.stdout);
    assert_eq!(count(&st, "resumed"), 8, "{st:?}");
    assert_eq!(count(&st, "ok"), 1);
    assert_eq!(st[4], "ok", "only the previously failed cell recomputes");

    // Journal now proves all nine complete; a third resume run computes
    // nothing at all.
    let out = run_in(&dir, &[cfg.to_str().unwrap()], &[("AC_RESUME", "1")]);
    assert_eq!(out.status.code(), Some(0));
    assert_eq!(count(&statuses(&out.stdout), "resumed"), 9);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn missing_workload_source_exits_invalid() {
    let dir = tmp_dir("nosource");
    let cfg = dir.join("bad.json");
    std::fs::write(
        &cfg,
        r#"{"l2":{"Plain":"Lru"},"mode":"functional","insts":1000}"#,
    )
    .unwrap();
    let out = run_in(&dir, &[cfg.to_str().unwrap()], &[]);
    assert_eq!(out.status.code(), Some(3));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("benchmark"),
        "error names the fields: {stderr}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn conflicting_workload_sources_exit_invalid_naming_both_fields() {
    let dir = tmp_dir("conflict");
    let cfg = dir.join("bad.json");
    std::fs::write(
        &cfg,
        r#"{"benchmark":"mcf","trace_file":"x.actr","l2":{"Plain":"Lru"},"mode":"functional","insts":1000}"#,
    )
    .unwrap();
    let out = run_in(&dir, &[cfg.to_str().unwrap()], &[]);
    assert_eq!(out.status.code(), Some(3));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("`benchmark`") && stderr.contains("`trace_file`"),
        "both offending fields are named: {stderr}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn bad_sweep_cell_is_rejected_before_anything_runs() {
    let dir = tmp_dir("badcell");
    let cfg = dir.join("bad.json");
    // Second cell has no workload source: the whole sweep must be
    // rejected up front (exit 3) and no journal written.
    std::fs::write(
        &cfg,
        format!(
            r#"{{"name":"bad","sweep":[{},{{"l2":{{"Plain":"Lru"}},"mode":"functional","insts":1000}}]}}"#,
            cell("mcf", r#"{"Plain":"Lru"}"#)
        ),
    )
    .unwrap();
    let out = run_in(&dir, &[cfg.to_str().unwrap()], &[]);
    assert_eq!(out.status.code(), Some(3));
    assert!(String::from_utf8_lossy(&out.stderr).contains("sweep cell 1"));
    assert!(!dir.join("results/bad.journal.jsonl").exists());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn unknown_mode_and_unknown_benchmark_exit_invalid() {
    let dir = tmp_dir("badfields");
    let cfg = dir.join("bad.json");
    std::fs::write(
        &cfg,
        cell("mcf", r#"{"Plain":"Lru"}"#).replace("functional", "warp"),
    )
    .unwrap();
    let out = run_in(&dir, &[cfg.to_str().unwrap()], &[]);
    assert_eq!(out.status.code(), Some(3));
    assert!(String::from_utf8_lossy(&out.stderr).contains("`mode`"));

    std::fs::write(&cfg, cell("no-such-bench", r#"{"Plain":"Lru"}"#)).unwrap();
    let out = run_in(&dir, &[cfg.to_str().unwrap()], &[]);
    assert_eq!(out.status.code(), Some(3));
    assert!(String::from_utf8_lossy(&out.stderr).contains("no-such-bench"));
    let _ = std::fs::remove_dir_all(&dir);
}

/// The real cross-process warm-store acceptance scenario: a second
/// `cachesim` process with a populated `AC_REPLAY_DIR` must produce
/// byte-identical stdout while recording disk hits instead of captures;
/// in-place corruption is flagged by `cache verify` (exit 5), the next
/// sweep heals it (exit 0, identical output), and injected I/O faults
/// via `AC_REPLAY_FAULT` never change results either.
#[test]
fn warm_replay_store_is_byte_identical_across_processes() {
    let dir = tmp_dir("store");
    let store = dir.join("store");
    let store_s = store.to_str().unwrap();
    let cfg = dir.join("grid.json");
    std::fs::write(&cfg, sweep_config(None)).unwrap();
    let run_sweep = |tag: &str| {
        let tele = dir.join(tag).display().to_string();
        // A fresh journal per pass: resume must never mask a divergence.
        let _ = std::fs::remove_dir_all(dir.join("results"));
        run_in(
            &dir,
            &[cfg.to_str().unwrap()],
            &[("AC_REPLAY_DIR", store_s), ("AC_TELEMETRY", tele.as_str())],
        )
    };
    let counter = |tag: &str, name: &str| -> u64 {
        let p = dir.join(tag).join("telemetry-summary.json");
        let v: Value = serde_json::from_slice(&std::fs::read(&p).unwrap()).unwrap();
        v["counters"][name]
            .as_object()
            .map(|m| m.values().map(|x| x.as_u64().unwrap()).sum())
            .unwrap_or(0)
    };

    // Cold process: captures live, persists one entry per benchmark.
    let cold = run_sweep("t_cold");
    assert_eq!(
        cold.status.code(),
        Some(0),
        "{}",
        String::from_utf8_lossy(&cold.stderr)
    );
    assert!(counter("t_cold", "replay_cache_captures_total") > 0);
    assert_eq!(counter("t_cold", "replay_store_writes_total"), 3);
    assert_eq!(counter("t_cold", "replay_store_disk_hits_total"), 0);

    // Fresh process, warm store: byte-identical stdout, all disk hits,
    // zero captures.
    let warm = run_sweep("t_warm");
    assert_eq!(
        warm.status.code(),
        Some(0),
        "{}",
        String::from_utf8_lossy(&warm.stderr)
    );
    assert_eq!(
        warm.stdout, cold.stdout,
        "warm-store process output diverged"
    );
    assert_eq!(counter("t_warm", "replay_cache_captures_total"), 0);
    assert_eq!(counter("t_warm", "replay_store_disk_hits_total"), 3);

    // The store verifies clean.
    let v = run_in(&dir, &["cache", "verify", "--dir", store_s], &[]);
    assert_eq!(
        v.status.code(),
        Some(0),
        "{}",
        String::from_utf8_lossy(&v.stderr)
    );

    // Corrupt one entry in place: verify flags it with exit 5...
    let entry = std::fs::read_dir(&store)
        .unwrap()
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .find(|p| p.extension().and_then(|e| e.to_str()) == Some("acrs"))
        .expect("store holds entries");
    let mut bytes = std::fs::read(&entry).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x01;
    std::fs::write(&entry, &bytes).unwrap();
    let v = run_in(&dir, &["cache", "verify", "--dir", store_s], &[]);
    assert_eq!(
        v.status.code(),
        Some(5),
        "verify must flag the corrupt entry"
    );
    let vout: Value = serde_json::from_slice(&v.stdout).unwrap();
    assert!(
        vout.as_array()
            .unwrap()
            .iter()
            .any(|e| e["error"].is_string()),
        "verify names the failure: {vout}"
    );

    // ...while the sweep itself still completes (exit 0), recaptures the
    // bad entry, and produces identical output.
    let healed = run_sweep("t_healed");
    assert_eq!(
        healed.status.code(),
        Some(0),
        "{}",
        String::from_utf8_lossy(&healed.stderr)
    );
    assert_eq!(healed.stdout, cold.stdout, "post-corruption sweep diverged");
    assert_eq!(counter("t_healed", "replay_store_corrupt_entries_total"), 1);
    assert_eq!(counter("t_healed", "replay_store_recaptures_total"), 1);
    let v = run_in(&dir, &["cache", "verify", "--dir", store_s], &[]);
    assert_eq!(v.status.code(), Some(0), "recapture must heal the store");

    // Injected I/O faults (seeded plan from the environment): run still
    // exits 0 with identical output — graceful degradation end to end.
    let tele = dir.join("t_fault").display().to_string();
    let _ = std::fs::remove_dir_all(dir.join("results"));
    let faulted = run_in(
        &dir,
        &[cfg.to_str().unwrap()],
        &[
            ("AC_REPLAY_DIR", store_s),
            ("AC_TELEMETRY", tele.as_str()),
            ("AC_REPLAY_FAULT", "eio=1,short_read=64"),
        ],
    );
    assert_eq!(
        faulted.status.code(),
        Some(0),
        "{}",
        String::from_utf8_lossy(&faulted.stderr)
    );
    assert_eq!(
        faulted.stdout, cold.stdout,
        "sweep under AC_REPLAY_FAULT diverged"
    );
    assert_eq!(counter("t_fault", "replay_store_recaptures_total"), 2);

    // `cache ls` sees the entries; `cache gc` on a healthy store with a
    // leftover temp file removes only the temp file.
    std::fs::write(store.join("junk.acrs.tmp.999"), b"partial").unwrap();
    let g = run_in(&dir, &["cache", "gc", "--dir", store_s], &[]);
    assert_eq!(g.status.code(), Some(0));
    let gout: Value = serde_json::from_slice(&g.stdout).unwrap();
    assert_eq!(gout["tmp_files"].as_u64(), Some(1));
    assert_eq!(gout["corrupt_entries"].as_u64(), Some(0));
    let l = run_in(&dir, &["cache", "ls", "--dir", store_s], &[]);
    assert_eq!(l.status.code(), Some(0));
    let lout: Value = serde_json::from_slice(&l.stdout).unwrap();
    assert_eq!(lout.as_array().unwrap().len(), 3);

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn cache_subcommand_rejects_bad_usage() {
    let dir = tmp_dir("cachebad");
    // No action.
    let out = run_in(&dir, &["cache"], &[]);
    assert_eq!(out.status.code(), Some(3));
    // Unknown action.
    let out = run_in(&dir, &["cache", "defrag"], &[]);
    assert_eq!(out.status.code(), Some(3));
    // No directory anywhere.
    let out = run_in(&dir, &["cache", "verify"], &[]);
    assert_eq!(out.status.code(), Some(3));
    assert!(String::from_utf8_lossy(&out.stderr).contains("AC_REPLAY_DIR"));
    // Missing directory = empty store, not an error.
    let ghost = dir.join("nonexistent");
    let out = run_in(
        &dir,
        &["cache", "verify", "--dir", ghost.to_str().unwrap()],
        &[],
    );
    assert_eq!(out.status.code(), Some(0));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn no_arguments_is_usage_error() {
    let dir = tmp_dir("noargs");
    let out = run_in(&dir, &[], &[]);
    assert_eq!(out.status.code(), Some(3));
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage"));
    let _ = std::fs::remove_dir_all(&dir);
}
