//! Criterion micro-benchmarks: cost of the adaptive organisations
//! relative to a plain cache (the "extra work" of shadow arrays, history
//! updates and Algorithm-1 victim search).

use adaptive_cache::{
    AdaptiveCache, AdaptiveConfig, DipCache, DipConfig, HistoryKind, MissHistory,
    MultiAdaptiveCache, MultiConfig, SbarCache, SbarConfig,
};
use cache_sim::{BlockAddr, Cache, CacheModel, Geometry, PolicyKind, TagMode};
use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};

fn addresses(n: usize) -> Vec<BlockAddr> {
    let mut x = 0xDEAD_BEEFu64;
    (0..n)
        .map(|_| {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            BlockAddr::new(x % 20_000)
        })
        .collect()
}

fn bench_organisations(c: &mut Criterion) {
    let geom = Geometry::new(512 * 1024, 64, 8).unwrap();
    let addrs = addresses(10_000);
    let mut group = c.benchmark_group("l2_organisation");
    group.throughput(Throughput::Elements(addrs.len() as u64));

    group.bench_function("plain_lru", |b| {
        let mut cache = Cache::new(geom, PolicyKind::Lru, 7);
        b.iter(|| {
            for &a in &addrs {
                black_box(cache.access(a, false));
            }
        });
    });
    for (name, cfg) in [
        ("adaptive_full", AdaptiveConfig::paper_full_tags()),
        ("adaptive_8bit", AdaptiveConfig::paper_default()),
        (
            "adaptive_4bit",
            AdaptiveConfig::paper_default().shadow_tag_mode(TagMode::PartialLow { bits: 4 }),
        ),
    ] {
        group.bench_function(name, |b| {
            let mut cache = AdaptiveCache::new(geom, cfg, 7);
            b.iter(|| {
                for &a in &addrs {
                    black_box(cache.access(a, false));
                }
            });
        });
    }
    group.bench_function("sbar", |b| {
        let mut cache = SbarCache::new(geom, SbarConfig::paper_default(), 7);
        b.iter(|| {
            for &a in &addrs {
                black_box(cache.access(a, false));
            }
        });
    });
    group.bench_function("dip", |b| {
        let mut cache = DipCache::new(geom, DipConfig::paper_default(), 7);
        b.iter(|| {
            for &a in &addrs {
                black_box(cache.access(a, false));
            }
        });
    });
    group.bench_function("multi_x5", |b| {
        let mut cache = MultiAdaptiveCache::new(geom, MultiConfig::paper_five_policy(), 7);
        b.iter(|| {
            for &a in &addrs {
                black_box(cache.access(a, false));
            }
        });
    });
    group.finish();
}

fn bench_history(c: &mut Criterion) {
    let mut group = c.benchmark_group("miss_history");
    for (name, kind) in [
        ("bitvec8", HistoryKind::BitVector { m: 8 }),
        ("counters", HistoryKind::Counters),
        ("saturating6", HistoryKind::Saturating { bits: 6 }),
    ] {
        group.bench_function(name, |b| {
            let mut h = MissHistory::new(kind);
            b.iter(|| {
                for i in 0..1000u32 {
                    h.record(i % 3 == 0, i % 5 == 0);
                    black_box(h.winner());
                }
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_organisations, bench_history);
criterion_main!(benches);
