//! Criterion micro-benchmarks: cycle-model throughput (timed pipeline vs
//! functional cache-only runs), which bounds every figure's wall-clock.

use cache_sim::{Cache, Geometry, PolicyKind};
use cpu_model::{run_functional, CpuConfig, Hierarchy, Pipeline};
use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use workloads::primary_suite;

fn bench_timed_pipeline(c: &mut Criterion) {
    let bench = primary_suite()
        .into_iter()
        .find(|b| b.name == "equake")
        .unwrap();
    let mut group = c.benchmark_group("pipeline");
    group.throughput(Throughput::Elements(20_000));
    group.bench_function("timed_lru_l2", |b| {
        b.iter(|| {
            let mut pipe = Pipeline::with_lru_l2(CpuConfig::paper_default());
            black_box(pipe.run(bench.spec.generator(), 20_000).cycles)
        });
    });
    group.bench_function("functional_lru_l2", |b| {
        let config = CpuConfig::paper_default();
        let geom = Geometry::new(
            config.l2.size_bytes,
            config.l2.line_bytes,
            config.l2.associativity,
        )
        .unwrap();
        b.iter(|| {
            let mut h = Hierarchy::new(&config, Cache::new(geom, PolicyKind::Lru, 1));
            black_box(run_functional(&mut h, bench.spec.generator(), 20_000).l2_misses)
        });
    });
    group.finish();
}

criterion_group!(benches, bench_timed_pipeline);
criterion_main!(benches);
