//! Criterion micro-benchmarks: raw cache-access throughput of the
//! substrate structures (the simulator's innermost loops).

use cache_sim::{Address, BlockAddr, Cache, CacheModel, Geometry, PolicyKind, TagArray, TagMode};
use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};

fn addresses(n: usize) -> Vec<BlockAddr> {
    // Deterministic scattered stream with reuse.
    let mut x = 0x1234_5678u64;
    (0..n)
        .map(|_| {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            BlockAddr::new(x % 20_000)
        })
        .collect()
}

fn bench_plain_policies(c: &mut Criterion) {
    let geom = Geometry::new(512 * 1024, 64, 8).unwrap();
    let addrs = addresses(10_000);
    let mut group = c.benchmark_group("cache_access");
    group.throughput(Throughput::Elements(addrs.len() as u64));
    for policy in PolicyKind::all() {
        group.bench_function(policy.to_string(), |b| {
            let mut cache = Cache::new(geom, policy, 7);
            b.iter(|| {
                for &a in &addrs {
                    black_box(cache.access(a, false));
                }
            });
        });
    }
    group.finish();
}

fn bench_tag_array_modes(c: &mut Criterion) {
    let geom = Geometry::new(512 * 1024, 64, 8).unwrap();
    let addrs = addresses(10_000);
    let mut group = c.benchmark_group("tag_array");
    group.throughput(Throughput::Elements(addrs.len() as u64));
    for (name, mode) in [
        ("full", TagMode::Full),
        ("partial8", TagMode::PartialLow { bits: 8 }),
        ("xor8", TagMode::PartialXor { bits: 8 }),
    ] {
        group.bench_function(name, |b| {
            let mut tags = TagArray::new(geom, mode, PolicyKind::Lru, 7);
            b.iter(|| {
                for &a in &addrs {
                    black_box(tags.access(a));
                }
            });
        });
    }
    group.finish();
}

fn bench_geometry_decompose(c: &mut Criterion) {
    let geom = Geometry::new(512 * 1024, 64, 8).unwrap();
    c.bench_function("geometry_decompose", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for raw in 0..10_000u64 {
                let block = geom.block_of(Address::new(raw * 64));
                acc ^= geom.tag(block) + geom.set_index(block) as u64;
            }
            black_box(acc)
        });
    });
}

criterion_group!(
    benches,
    bench_plain_policies,
    bench_tag_array_modes,
    bench_geometry_decompose
);
criterion_main!(benches);
