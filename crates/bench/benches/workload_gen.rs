//! Criterion micro-benchmarks: instruction-stream generation throughput
//! per archetype (the simulator must never be generator-bound) and trace
//! decode throughput (replay must never be I/O-format-bound).

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use workloads::trace_io::{read_binary, read_text, write_binary, write_text};
use workloads::{extended_suite, primary_suite};

fn bench_archetypes(c: &mut Criterion) {
    let suite = primary_suite();
    let mut group = c.benchmark_group("trace_gen");
    group.throughput(Throughput::Elements(10_000));
    for name in ["applu", "art-1", "mcf", "parser", "ammp"] {
        let bench = suite.iter().find(|b| b.name == name).unwrap().clone();
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut total = 0u64;
                for inst in bench.spec.generator().take(10_000) {
                    total ^= inst.pc;
                }
                black_box(total)
            });
        });
    }
    group.finish();
}

fn bench_suite_construction(c: &mut Criterion) {
    c.bench_function("extended_suite_construction", |b| {
        b.iter(|| black_box(extended_suite()).len())
    });
}

/// Decode throughput for both interchange formats over a representative
/// 10k-instruction capture.
fn bench_trace_decode(c: &mut Criterion) {
    let n = 10_000usize;
    let bench = primary_suite()
        .iter()
        .find(|b| b.name == "mcf")
        .unwrap()
        .clone();
    let insts: Vec<_> = bench.spec.generator().take(n).collect();

    let mut binary = Vec::new();
    write_binary(&mut binary, insts.iter().cloned()).unwrap();
    let mut text = Vec::new();
    write_text(&mut text, insts.iter().cloned()).unwrap();

    let mut group = c.benchmark_group("trace_decode");
    group.throughput(Throughput::Elements(n as u64));
    group.bench_function("binary", |b| {
        b.iter(|| {
            let decoded = read_binary(binary.as_slice()).unwrap();
            black_box(decoded.len())
        });
    });
    group.bench_function("text", |b| {
        b.iter(|| {
            let decoded = read_text(text.as_slice()).unwrap();
            black_box(decoded.len())
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_archetypes,
    bench_suite_construction,
    bench_trace_decode
);
criterion_main!(benches);
