//! Criterion micro-benchmarks: instruction-stream generation throughput
//! per archetype (the simulator must never be generator-bound).

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use workloads::{extended_suite, primary_suite};

fn bench_archetypes(c: &mut Criterion) {
    let suite = primary_suite();
    let mut group = c.benchmark_group("trace_gen");
    group.throughput(Throughput::Elements(10_000));
    for name in ["applu", "art-1", "mcf", "parser", "ammp"] {
        let bench = suite.iter().find(|b| b.name == name).unwrap().clone();
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut total = 0u64;
                for inst in bench.spec.generator().take(10_000) {
                    total ^= inst.pc;
                }
                black_box(total)
            });
        });
    }
    group.finish();
}

fn bench_suite_construction(c: &mut Criterion) {
    c.bench_function("extended_suite_construction", |b| {
        b.iter(|| black_box(extended_suite()).len())
    });
}

criterion_group!(benches, bench_archetypes, bench_suite_construction);
criterion_main!(benches);
