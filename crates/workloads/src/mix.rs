//! Instruction-mix weaving: turning a data-access pattern into a full
//! instruction stream (computation, branches, loads/stores, dependencies)
//! that the CPU timing model can execute.

use crate::inst::{Inst, InstKind};
use crate::pattern::{AccessPattern, PatternState};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Cache line size assumed when converting pattern block numbers to byte
/// addresses (matches the paper's 64 B lines).
pub const LINE_BYTES: u64 = 64;

/// Statistical shape of the instruction stream around the memory
/// references.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MixSpec {
    /// Fraction of instructions that reference data memory.
    pub mem_ratio: f64,
    /// Fraction of memory references that are stores.
    pub store_frac: f64,
    /// Fraction of instructions that are conditional branches.
    pub branch_ratio: f64,
    /// Fraction of compute instructions that are floating point.
    pub fp_frac: f64,
    /// Fraction of compute instructions that are long-latency (mul/div).
    pub long_op_frac: f64,
    /// Mean backward dependency distance; small = serial (low ILP),
    /// large = parallel (high ILP). Must be >= 1.
    pub mean_dep_dist: f64,
    /// Fraction of *static* branch sites whose outcome is essentially
    /// random (data-dependent); the rest are heavily biased and thus
    /// predictable by the gshare/bimodal hybrid.
    pub hard_branch_frac: f64,
    /// Consecutive memory references issued to the same cache line before
    /// the data pattern advances (spatial locality within a line: real
    /// code touches several words per line, which the L1 absorbs).
    pub line_burst: u32,
}

impl MixSpec {
    /// Typical SPECint-like mix: third of instructions touch memory,
    /// frequent branches, integer-dominated, moderate ILP.
    pub fn int_default() -> Self {
        MixSpec {
            line_burst: 6,
            mem_ratio: 0.35,
            store_frac: 0.30,
            branch_ratio: 0.15,
            fp_frac: 0.02,
            long_op_frac: 0.03,
            mean_dep_dist: 5.0,
            hard_branch_frac: 0.10,
        }
    }

    /// Typical SPECfp-like mix: fewer branches, FP-heavy, high ILP.
    pub fn fp_default() -> Self {
        MixSpec {
            line_burst: 8,
            mem_ratio: 0.40,
            store_frac: 0.25,
            branch_ratio: 0.05,
            fp_frac: 0.60,
            long_op_frac: 0.08,
            mean_dep_dist: 12.0,
            hard_branch_frac: 0.03,
        }
    }

    /// Media/streaming mix: very regular, load-dominated, predictable.
    pub fn media_default() -> Self {
        MixSpec {
            line_burst: 8,
            mem_ratio: 0.45,
            store_frac: 0.35,
            branch_ratio: 0.10,
            fp_frac: 0.10,
            long_op_frac: 0.05,
            mean_dep_dist: 8.0,
            hard_branch_frac: 0.04,
        }
    }

    /// Pointer-chasing mix: serial dependence chains, hard branches.
    pub fn pointer_default() -> Self {
        MixSpec {
            line_burst: 2,
            mem_ratio: 0.40,
            store_frac: 0.15,
            branch_ratio: 0.20,
            fp_frac: 0.0,
            long_op_frac: 0.01,
            mean_dep_dist: 2.0,
            hard_branch_frac: 0.30,
        }
    }
}

/// Shape of the instruction footprint (for the instruction cache and the
/// branch predictor).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CodeSpec {
    /// Instructions per loop body (one static code region).
    pub loop_body: u32,
    /// Number of distinct code regions (functions) cycled through.
    pub regions: u32,
    /// Dynamic instructions between region switches.
    pub region_period: u64,
}

impl CodeSpec {
    /// A tight kernel: one 512-instruction loop (2 KB of code).
    pub fn kernel() -> Self {
        CodeSpec {
            loop_body: 512,
            regions: 1,
            region_period: u64::MAX,
        }
    }

    /// A mid-sized program: eight 1K-instruction functions.
    pub fn medium() -> Self {
        CodeSpec {
            loop_body: 1024,
            regions: 8,
            region_period: 20_000,
        }
    }

    /// A large, instruction-cache-hostile footprint (gcc-like): thirty-two
    /// 2K-instruction functions (256 KB of code).
    pub fn large() -> Self {
        CodeSpec {
            loop_body: 2048,
            regions: 32,
            region_period: 6_000,
        }
    }

    /// Total static code footprint in bytes (4-byte instructions).
    pub fn footprint_bytes(&self) -> u64 {
        u64::from(self.loop_body) * 4 * u64::from(self.regions)
    }
}

/// Full specification of a synthetic workload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadSpec {
    /// Data-access archetype.
    pub pattern: AccessPattern,
    /// Instruction-mix statistics.
    pub mix: MixSpec,
    /// Code-footprint shape.
    pub code: CodeSpec,
    /// RNG seed; every stream is a pure function of the spec.
    pub seed: u64,
}

impl WorkloadSpec {
    /// Creates the infinite instruction stream for this spec.
    pub fn generator(&self) -> TraceGen {
        TraceGen::new(self.clone())
    }
}

/// A deterministic, infinite instruction stream (see [`WorkloadSpec`]).
///
/// Implements `Iterator<Item = Inst>`; use `.take(n)` for a fixed-length
/// trace.
#[derive(Debug, Clone)]
pub struct TraceGen {
    mix: MixSpec,
    code: CodeSpec,
    pattern: PatternState,
    rng: SmallRng,
    /// Dynamic instruction index.
    idx: u64,
    /// Current data line and remaining same-line references.
    cur_block: u64,
    burst_left: u32,
    word_idx: u32,
    /// Position inside the current loop body.
    body_pos: u32,
    /// Current code region.
    region: u32,
    /// Instruction index of the last region switch.
    last_switch: u64,
}

/// Base address of the synthetic code segment; regions are spaced 1 MB.
const CODE_BASE: u64 = 0x0040_0000;
const REGION_SPACING: u64 = 0x0010_0000;

impl TraceGen {
    fn new(spec: WorkloadSpec) -> Self {
        assert!(
            spec.mix.mean_dep_dist >= 1.0,
            "mean_dep_dist must be >= 1, got {}",
            spec.mix.mean_dep_dist
        );
        assert!(
            spec.mix.mem_ratio + spec.mix.branch_ratio <= 1.0,
            "mem_ratio + branch_ratio must not exceed 1"
        );
        assert!(spec.code.loop_body >= 2, "loop body needs >= 2 instructions");
        assert!(spec.mix.line_burst >= 1, "line_burst must be >= 1");
        TraceGen {
            pattern: spec.pattern.state(),
            rng: SmallRng::seed_from_u64(spec.seed),
            mix: spec.mix,
            code: spec.code,
            idx: 0,
            cur_block: 0,
            burst_left: 0,
            word_idx: 0,
            body_pos: 0,
            region: 0,
            last_switch: 0,
        }
    }

    fn pc(&self) -> u64 {
        CODE_BASE + u64::from(self.region) * REGION_SPACING + u64::from(self.body_pos) * 4
    }

    fn region_base(&self, region: u32) -> u64 {
        CODE_BASE + u64::from(region) * REGION_SPACING
    }

    /// Geometric dependency distance with the configured mean, in 1..=255.
    fn dep(&mut self) -> u8 {
        let u: f64 = self.rng.gen::<f64>().max(1e-12);
        let d = 1.0 + u.ln() / (1.0 - 1.0 / self.mix.mean_dep_dist).ln();
        d.clamp(1.0, 255.0) as u8
    }

    /// Whether the static branch at `pc` is "hard" (data-dependent).
    fn is_hard_branch(&self, pc: u64) -> bool {
        // Deterministic per-site classification via a cheap hash.
        let h = pc.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 40;
        (h as f64 / (1u64 << 24) as f64) < self.mix.hard_branch_frac
    }
}

impl Iterator for TraceGen {
    type Item = Inst;

    fn next(&mut self) -> Option<Inst> {
        let pc = self.pc();
        self.idx += 1;

        // Structural control flow first: loop-back and region switches.
        let at_body_end = self.body_pos + 1 >= self.code.loop_body;
        if at_body_end {
            self.body_pos = 0;
            let switch = self.code.regions > 1
                && self.idx.saturating_sub(self.last_switch) >= self.code.region_period;
            if switch {
                self.region = (self.region + 1) % self.code.regions;
                self.last_switch = self.idx;
            }
            let target = self.region_base(self.region);
            return Some(Inst {
                pc,
                kind: InstKind::Branch {
                    taken: true,
                    target,
                },
                deps: [0, 0],
            });
        }
        self.body_pos += 1;

        let u: f64 = self.rng.gen();
        let kind = if u < self.mix.mem_ratio {
            if self.burst_left == 0 {
                self.cur_block = self.pattern.next_block(&mut self.rng);
                self.burst_left = self.mix.line_burst.max(1);
                self.word_idx = 0;
            }
            let addr =
                self.cur_block * LINE_BYTES + u64::from(self.word_idx) * 8 % LINE_BYTES;
            self.word_idx += 1;
            self.burst_left -= 1;
            if self.rng.gen_bool(self.mix.store_frac) {
                InstKind::Store { addr }
            } else {
                InstKind::Load { addr }
            }
        } else if u < self.mix.mem_ratio + self.mix.branch_ratio {
            let taken = if self.is_hard_branch(pc) {
                self.rng.gen_bool(0.5)
            } else {
                self.rng.gen_bool(0.92)
            };
            InstKind::Branch {
                taken,
                target: pc + 64, // short forward branch within the region
            }
        } else {
            let fp = self.rng.gen_bool(self.mix.fp_frac);
            let long = self.rng.gen_bool(self.mix.long_op_frac);
            match (fp, long) {
                (false, false) => InstKind::IntAlu,
                (false, true) => {
                    if self.rng.gen_bool(0.5) {
                        InstKind::IntMul
                    } else {
                        InstKind::IntDiv
                    }
                }
                (true, false) => InstKind::FpAdd,
                (true, true) => InstKind::FpDiv,
            }
        };

        let d1 = self.dep();
        // Second operand dependency present half the time.
        let d2 = if self.rng.gen_bool(0.5) { self.dep() } else { 0 };
        Some(Inst {
            pc,
            kind,
            deps: [d1, d2],
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::BasePattern;

    fn spec() -> WorkloadSpec {
        WorkloadSpec {
            pattern: AccessPattern::single(BasePattern::LinearScan {
                region_blocks: 1000,
                stride: 1,
            }),
            mix: MixSpec::int_default(),
            code: CodeSpec::kernel(),
            seed: 123,
        }
    }

    #[test]
    fn stream_is_deterministic() {
        let a: Vec<_> = spec().generator().take(5000).collect();
        let b: Vec<_> = spec().generator().take(5000).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn mix_ratios_roughly_hold() {
        let n = 200_000;
        let insts: Vec<_> = spec().generator().take(n).collect();
        let mem = insts.iter().filter(|i| i.is_mem()).count() as f64 / n as f64;
        let br = insts
            .iter()
            .filter(|i| matches!(i.kind, InstKind::Branch { .. }))
            .count() as f64
            / n as f64;
        assert!((mem - 0.35).abs() < 0.02, "mem ratio {mem}");
        // Structural loop-back branches add ~1/loop_body on top.
        assert!((br - 0.152).abs() < 0.02, "branch ratio {br}");
    }

    #[test]
    fn stores_match_store_frac() {
        let insts: Vec<_> = spec().generator().take(100_000).collect();
        let loads = insts
            .iter()
            .filter(|i| matches!(i.kind, InstKind::Load { .. }))
            .count() as f64;
        let stores = insts
            .iter()
            .filter(|i| matches!(i.kind, InstKind::Store { .. }))
            .count() as f64;
        let frac = stores / (loads + stores);
        assert!((frac - 0.30).abs() < 0.02, "store fraction {frac}");
    }

    #[test]
    fn pcs_stay_in_code_footprint() {
        let s = spec();
        let footprint = s.code.footprint_bytes();
        for i in s.generator().take(50_000) {
            let off = i.pc - CODE_BASE;
            let region = off / REGION_SPACING;
            let within = off % REGION_SPACING;
            assert!(region < u64::from(s.code.regions));
            assert!(within < u64::from(s.code.loop_body) * 4);
        }
        assert_eq!(footprint, 2048);
    }

    #[test]
    fn loop_back_branch_every_body() {
        let insts: Vec<_> = spec().generator().take(2048).collect();
        // Instruction at body position 511 must be the taken loop-back.
        let back = &insts[511];
        match back.kind {
            InstKind::Branch { taken, target } => {
                assert!(taken);
                assert_eq!(target, CODE_BASE);
            }
            ref k => panic!("expected loop-back branch, got {k:?}"),
        }
    }

    #[test]
    fn region_switching_changes_pc_region() {
        let s = WorkloadSpec {
            code: CodeSpec::medium(),
            ..spec()
        };
        let regions: std::collections::HashSet<u64> = s
            .generator()
            .take(200_000)
            .map(|i| (i.pc - CODE_BASE) / REGION_SPACING)
            .collect();
        assert!(regions.len() >= 4, "saw regions {regions:?}");
    }

    #[test]
    fn addresses_follow_the_pattern() {
        let addrs: Vec<u64> = spec()
            .generator()
            .take(10_000)
            .filter_map(|i| i.mem_addr())
            .collect();
        // Linear scan: consecutive references stay in a line for
        // `line_burst` accesses, then advance exactly one block.
        assert!(addrs.len() > 3000);
        let mut blocks: Vec<u64> = addrs.iter().map(|a| a / 64).collect();
        blocks.dedup();
        for w in blocks.windows(2) {
            let delta = (w[1] + 1000 - w[0]) % 1000;
            assert_eq!(delta, 1, "scan must advance one block per line burst");
        }
        // The line burst really happens: fewer distinct lines than refs.
        assert!(blocks.len() * 4 < addrs.len());
    }

    #[test]
    fn dep_distances_have_configured_scale() {
        let insts: Vec<_> = spec().generator().take(50_000).collect();
        let mean: f64 = insts.iter().map(|i| f64::from(i.deps[0])).sum::<f64>()
            / insts.len() as f64;
        assert!(
            (mean - 5.0).abs() < 1.0,
            "mean dep distance {mean} vs configured 5.0"
        );
    }

    #[test]
    #[should_panic(expected = "mean_dep_dist")]
    fn rejects_zero_ilp() {
        let mut s = spec();
        s.mix.mean_dep_dist = 0.5;
        let _ = s.generator();
    }
}
