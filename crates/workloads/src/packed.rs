//! Packed buffer primitives for memoised reference streams.
//!
//! The L2-visible event stream of a benchmark (see `cpu_model::replay`)
//! is long but extremely regular: block addresses move by small strides,
//! instruction indices are monotonic, and the read/writeback flag is one
//! bit. These three building blocks — LEB128 varints, zigzag signed
//! deltas and a bit vector — pack such a stream into a few bytes per
//! event, structure-of-arrays style, so a whole suite of captured
//! streams fits comfortably in a process-wide cache.
//!
//! For streams that leave the process (the on-disk replay store, the
//! `.actr` trace format) the module also provides **checksummed
//! framing**: [`crc32`] (IEEE, the zlib/PNG polynomial) and
//! [`write_frame`]/[`read_frame`], a `length ‖ crc32 ‖ payload` section
//! container whose reader validates the declared length against the
//! available input *before* touching the payload and the checksum before
//! handing it out — a torn write, truncation or bit flip surfaces as a
//! typed [`FrameError`], never as silently-wrong decoded data.

/// The IEEE CRC-32 lookup table (reflected polynomial `0xEDB88320`),
/// built at compile time.
const CRC32_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

/// IEEE CRC-32 (the zlib/PNG/gzip checksum) of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    crc32_update(0, bytes)
}

/// Continues an IEEE CRC-32 computation: `crc32_update(crc32(a), b) ==
/// crc32(a ‖ b)`. Feed `0` to start.
pub fn crc32_update(crc: u32, bytes: &[u8]) -> u32 {
    let mut c = !crc;
    for &b in bytes {
        c = CRC32_TABLE[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

/// Why a checksummed frame could not be read. Every variant means the
/// input cannot be trusted; none of them yields partial payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameError {
    /// The input ended before the 12-byte frame header.
    TruncatedHeader,
    /// The header declares more payload than the input holds (torn
    /// write, truncation, or a hostile length — rejected before any
    /// allocation or payload access).
    TruncatedPayload {
        /// Payload bytes the header declares.
        declared: u64,
        /// Payload bytes actually available.
        available: u64,
    },
    /// The payload does not match its recorded checksum.
    Checksum {
        /// CRC recorded in the frame header.
        expected: u32,
        /// CRC of the payload as read.
        actual: u32,
    },
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::TruncatedHeader => write!(f, "input ends inside a frame header"),
            FrameError::TruncatedPayload {
                declared,
                available,
            } => write!(
                f,
                "frame declares {declared} payload bytes but only {available} are available"
            ),
            FrameError::Checksum { expected, actual } => write!(
                f,
                "frame checksum mismatch (recorded {expected:#010x}, computed {actual:#010x})"
            ),
        }
    }
}

impl std::error::Error for FrameError {}

/// Appends one checksummed frame — `u64 payload-length ‖ u32 crc32 ‖
/// payload`, little-endian — to `out`.
pub fn write_frame(out: &mut Vec<u8>, payload: &[u8]) {
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
}

/// Reads one checksummed frame from `bytes` at `*pos`, advancing `*pos`
/// past it. The declared length is validated against the remaining input
/// before the payload is touched and the checksum before it is returned,
/// so corrupt input can never yield payload bytes.
pub fn read_frame<'a>(bytes: &'a [u8], pos: &mut usize) -> Result<&'a [u8], FrameError> {
    let header = bytes
        .get(*pos..*pos + 12)
        .ok_or(FrameError::TruncatedHeader)?;
    let declared = u64::from_le_bytes(header[..8].try_into().expect("12-byte slice"));
    let expected = u32::from_le_bytes(header[8..12].try_into().expect("12-byte slice"));
    let available = (bytes.len() - (*pos + 12)) as u64;
    if declared > available {
        return Err(FrameError::TruncatedPayload {
            declared,
            available,
        });
    }
    let start = *pos + 12;
    let payload = &bytes[start..start + declared as usize];
    let actual = crc32(payload);
    if actual != expected {
        return Err(FrameError::Checksum { expected, actual });
    }
    *pos = start + declared as usize;
    Ok(payload)
}

/// Appends `v` to `out` as an unsigned LEB128 varint (1–10 bytes).
pub fn write_uvarint(out: &mut Vec<u8>, mut v: u64) {
    while v >= 0x80 {
        out.push((v as u8 & 0x7F) | 0x80);
        v >>= 7;
    }
    out.push(v as u8);
}

/// Reads one unsigned LEB128 varint from `bytes` at `*pos`, advancing
/// `*pos`. Returns `None` on truncated input or a varint longer than 10
/// bytes (which cannot encode a `u64`).
pub fn read_uvarint(bytes: &[u8], pos: &mut usize) -> Option<u64> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let b = *bytes.get(*pos)?;
        *pos += 1;
        if shift >= 63 && b > 1 {
            return None; // overflows u64
        }
        v |= u64::from(b & 0x7F) << shift;
        if b & 0x80 == 0 {
            return Some(v);
        }
        shift += 7;
        if shift > 63 {
            return None;
        }
    }
}

/// Zigzag-maps a signed delta onto the unsigned varint domain so small
/// negative strides stay short: `0, -1, 1, -2, 2, ...` → `0, 1, 2, 3,
/// 4, ...`.
pub fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag`].
pub fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// A delta-encoded sequence of `u64` values: each element is stored as
/// the zigzag varint of its (wrapping) signed difference from the
/// previous element. Ideal for block addresses (small strides) and for
/// monotonic counters (deltas fit one or two bytes).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DeltaSeq {
    bytes: Vec<u8>,
    len: usize,
    prev: u64,
}

impl DeltaSeq {
    /// An empty sequence.
    pub fn new() -> DeltaSeq {
        DeltaSeq::default()
    }

    /// Appends `v`, encoding it relative to the previous element.
    pub fn push(&mut self, v: u64) {
        let delta = v.wrapping_sub(self.prev) as i64;
        write_uvarint(&mut self.bytes, zigzag(delta));
        self.prev = v;
        self.len += 1;
    }

    /// Number of encoded elements.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the sequence is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Encoded size in bytes (excluding the fixed-size header fields).
    pub fn byte_len(&self) -> usize {
        self.bytes.len()
    }

    /// Iterates over the decoded values.
    pub fn iter(&self) -> DeltaIter<'_> {
        DeltaIter {
            bytes: &self.bytes,
            pos: 0,
            prev: 0,
            remaining: self.len,
        }
    }

    /// The packed delta bytes (for persisting the sequence).
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// The last value pushed (0 for an empty sequence) — persisted next
    /// to the bytes so a reconstructed sequence can be cross-checked.
    pub fn final_value(&self) -> u64 {
        self.prev
    }

    /// Rebuilds a sequence from persisted parts, validating that `bytes`
    /// decodes to exactly `len` values whose last is `final_value` (and
    /// with no trailing garbage). Returns `None` on any inconsistency —
    /// a checksum-passing but internally contradictory section is still
    /// rejected.
    pub fn from_parts(bytes: Vec<u8>, len: usize, final_value: u64) -> Option<DeltaSeq> {
        let mut pos = 0usize;
        let mut prev = 0u64;
        for _ in 0..len {
            let raw = read_uvarint(&bytes, &mut pos)?;
            prev = prev.wrapping_add(unzigzag(raw) as u64);
        }
        if pos != bytes.len() || prev != final_value {
            return None;
        }
        Some(DeltaSeq { bytes, len, prev })
    }
}

/// Decoding iterator over a [`DeltaSeq`].
#[derive(Debug, Clone)]
pub struct DeltaIter<'a> {
    bytes: &'a [u8],
    pos: usize,
    prev: u64,
    remaining: usize,
}

impl Iterator for DeltaIter<'_> {
    type Item = u64;

    fn next(&mut self) -> Option<u64> {
        if self.remaining == 0 {
            return None;
        }
        // The buffer was produced by `DeltaSeq::push`, so decoding
        // cannot fail; treat corruption as end-of-stream anyway.
        let raw = read_uvarint(self.bytes, &mut self.pos)?;
        self.remaining -= 1;
        self.prev = self.prev.wrapping_add(unzigzag(raw) as u64);
        Some(self.prev)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining, Some(self.remaining))
    }
}

/// A packed bit vector (one bit per flag, LSB-first within each byte).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BitSeq {
    bytes: Vec<u8>,
    len: usize,
}

impl BitSeq {
    /// An empty bit sequence.
    pub fn new() -> BitSeq {
        BitSeq::default()
    }

    /// Appends one flag.
    pub fn push(&mut self, bit: bool) {
        if self.len.is_multiple_of(8) {
            self.bytes.push(0);
        }
        if bit {
            let last = self.bytes.len() - 1;
            self.bytes[last] |= 1 << (self.len % 8);
        }
        self.len += 1;
    }

    /// The flag at `i`, or `None` past the end.
    pub fn get(&self, i: usize) -> Option<bool> {
        if i >= self.len {
            return None;
        }
        Some(self.bytes[i / 8] & (1 << (i % 8)) != 0)
    }

    /// Number of stored flags.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the sequence is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Packed size in bytes.
    pub fn byte_len(&self) -> usize {
        self.bytes.len()
    }

    /// Iterates over the stored flags.
    pub fn iter(&self) -> impl Iterator<Item = bool> + '_ {
        (0..self.len).map(move |i| self.bytes[i / 8] & (1 << (i % 8)) != 0)
    }

    /// The packed flag bytes (for persisting the sequence).
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Rebuilds a bit sequence from persisted parts, validating the byte
    /// length against `len` and that the padding bits of the final byte
    /// are zero (as the writer always leaves them). Returns `None` on
    /// any inconsistency.
    pub fn from_parts(bytes: Vec<u8>, len: usize) -> Option<BitSeq> {
        if bytes.len() != len.div_ceil(8) {
            return None;
        }
        if !len.is_multiple_of(8) {
            let padding = bytes.last().copied().unwrap_or(0) >> (len % 8);
            if padding != 0 {
                return None;
            }
        }
        Some(BitSeq { bytes, len })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uvarint_round_trips_boundaries() {
        for v in [0u64, 1, 127, 128, 300, 1 << 21, u64::MAX - 1, u64::MAX] {
            let mut buf = Vec::new();
            write_uvarint(&mut buf, v);
            let mut pos = 0;
            assert_eq!(read_uvarint(&buf, &mut pos), Some(v));
            assert_eq!(pos, buf.len());
        }
    }

    #[test]
    fn uvarint_rejects_truncation_and_overflow() {
        let mut pos = 0;
        assert_eq!(read_uvarint(&[0x80], &mut pos), None, "truncated");
        let mut pos = 0;
        let over = [0xFF; 11];
        assert_eq!(read_uvarint(&over, &mut pos), None, "too long for u64");
    }

    #[test]
    fn zigzag_round_trips() {
        for v in [0i64, -1, 1, -2, 63, -64, i64::MAX, i64::MIN] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
        assert_eq!(zigzag(-1), 1);
        assert_eq!(zigzag(1), 2);
    }

    #[test]
    fn delta_seq_round_trips_including_wraparound() {
        let vals = [0u64, 64, 128, 64, u64::MAX, 3, 1 << 40, 0];
        let mut seq = DeltaSeq::new();
        for &v in &vals {
            seq.push(v);
        }
        assert_eq!(seq.len(), vals.len());
        let back: Vec<u64> = seq.iter().collect();
        assert_eq!(back, vals);
    }

    #[test]
    fn delta_seq_packs_strides_tightly() {
        let mut seq = DeltaSeq::new();
        for i in 0..10_000u64 {
            seq.push(0x40_0000 + i * 64);
        }
        // Constant stride 64 zigzags to 128: two bytes per element after
        // the first.
        assert!(seq.byte_len() <= 2 * 10_000 + 8, "{}", seq.byte_len());
        assert_eq!(seq.iter().nth(9_999), Some(0x40_0000 + 9_999 * 64));
    }

    #[test]
    fn crc32_matches_reference_vectors() {
        // The canonical IEEE CRC-32 check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        // Incremental == one-shot.
        assert_eq!(crc32_update(crc32(b"1234"), b"56789"), crc32(b"123456789"));
    }

    #[test]
    fn frame_round_trips() {
        let mut out = Vec::new();
        write_frame(&mut out, b"hello");
        write_frame(&mut out, b"");
        write_frame(&mut out, &[0xFFu8; 300]);
        let mut pos = 0;
        assert_eq!(read_frame(&out, &mut pos).unwrap(), b"hello");
        assert_eq!(read_frame(&out, &mut pos).unwrap(), b"");
        assert_eq!(read_frame(&out, &mut pos).unwrap(), &[0xFFu8; 300][..]);
        assert_eq!(pos, out.len());
    }

    #[test]
    fn frame_rejects_truncation_and_corruption() {
        let mut out = Vec::new();
        write_frame(&mut out, b"payload");
        // Header cut.
        let mut pos = 0;
        assert_eq!(
            read_frame(&out[..6], &mut pos),
            Err(FrameError::TruncatedHeader)
        );
        // Payload cut (torn write): rejected from the length alone.
        let mut pos = 0;
        assert!(matches!(
            read_frame(&out[..out.len() - 2], &mut pos),
            Err(FrameError::TruncatedPayload { declared: 7, .. })
        ));
        // A hostile length never reads past the input.
        let mut hostile = out.clone();
        hostile[..8].copy_from_slice(&u64::MAX.to_le_bytes());
        let mut pos = 0;
        assert!(matches!(
            read_frame(&hostile, &mut pos),
            Err(FrameError::TruncatedPayload { .. })
        ));
        // Every single-byte flip anywhere in the frame is detected.
        for i in 0..out.len() {
            let mut bad = out.clone();
            bad[i] ^= 0x10;
            let mut pos = 0;
            assert!(read_frame(&bad, &mut pos).is_err(), "flip at byte {i}");
        }
    }

    #[test]
    fn delta_seq_parts_round_trip_and_validate() {
        let mut seq = DeltaSeq::new();
        for v in [5u64, 3, 1000, u64::MAX, 7] {
            seq.push(v);
        }
        let rebuilt = DeltaSeq::from_parts(seq.as_bytes().to_vec(), seq.len(), seq.final_value())
            .expect("faithful parts reconstruct");
        assert_eq!(rebuilt, seq);
        // Wrong count, wrong final value, trailing garbage: all rejected.
        assert!(DeltaSeq::from_parts(seq.as_bytes().to_vec(), seq.len() - 1, 7).is_none());
        assert!(DeltaSeq::from_parts(seq.as_bytes().to_vec(), seq.len(), 8).is_none());
        let mut padded = seq.as_bytes().to_vec();
        padded.push(0);
        assert!(DeltaSeq::from_parts(padded, seq.len(), 7).is_none());
        // Truncated bytes cannot decode the declared count.
        let cut = seq.as_bytes()[..seq.byte_len() - 1].to_vec();
        assert!(DeltaSeq::from_parts(cut, seq.len(), 7).is_none());
    }

    #[test]
    fn bit_seq_parts_round_trip_and_validate() {
        let mut bits = BitSeq::new();
        for i in 0..11 {
            bits.push(i % 2 == 0);
        }
        let rebuilt =
            BitSeq::from_parts(bits.as_bytes().to_vec(), bits.len()).expect("faithful parts");
        assert_eq!(rebuilt, bits);
        assert!(
            BitSeq::from_parts(bits.as_bytes().to_vec(), 20).is_none(),
            "wrong byte length"
        );
        let mut dirty = bits.as_bytes().to_vec();
        *dirty.last_mut().unwrap() |= 0x80; // padding bit set
        assert!(BitSeq::from_parts(dirty, bits.len()).is_none());
        assert!(BitSeq::from_parts(Vec::new(), 0).is_some());
    }

    #[test]
    fn bit_seq_round_trips() {
        let mut bits = BitSeq::new();
        let vals: Vec<bool> = (0..100).map(|i| i % 3 == 0).collect();
        for &b in &vals {
            bits.push(b);
        }
        assert_eq!(bits.len(), 100);
        assert_eq!(bits.byte_len(), 13);
        let back: Vec<bool> = bits.iter().collect();
        assert_eq!(back, vals);
        assert_eq!(bits.get(99), Some(vals[99]));
        assert_eq!(bits.get(100), None);
    }
}
