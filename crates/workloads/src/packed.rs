//! Packed buffer primitives for memoised reference streams.
//!
//! The L2-visible event stream of a benchmark (see `cpu_model::replay`)
//! is long but extremely regular: block addresses move by small strides,
//! instruction indices are monotonic, and the read/writeback flag is one
//! bit. These three building blocks — LEB128 varints, zigzag signed
//! deltas and a bit vector — pack such a stream into a few bytes per
//! event, structure-of-arrays style, so a whole suite of captured
//! streams fits comfortably in a process-wide cache.

/// Appends `v` to `out` as an unsigned LEB128 varint (1–10 bytes).
pub fn write_uvarint(out: &mut Vec<u8>, mut v: u64) {
    while v >= 0x80 {
        out.push((v as u8 & 0x7F) | 0x80);
        v >>= 7;
    }
    out.push(v as u8);
}

/// Reads one unsigned LEB128 varint from `bytes` at `*pos`, advancing
/// `*pos`. Returns `None` on truncated input or a varint longer than 10
/// bytes (which cannot encode a `u64`).
pub fn read_uvarint(bytes: &[u8], pos: &mut usize) -> Option<u64> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let b = *bytes.get(*pos)?;
        *pos += 1;
        if shift >= 63 && b > 1 {
            return None; // overflows u64
        }
        v |= u64::from(b & 0x7F) << shift;
        if b & 0x80 == 0 {
            return Some(v);
        }
        shift += 7;
        if shift > 63 {
            return None;
        }
    }
}

/// Zigzag-maps a signed delta onto the unsigned varint domain so small
/// negative strides stay short: `0, -1, 1, -2, 2, ...` → `0, 1, 2, 3,
/// 4, ...`.
pub fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag`].
pub fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// A delta-encoded sequence of `u64` values: each element is stored as
/// the zigzag varint of its (wrapping) signed difference from the
/// previous element. Ideal for block addresses (small strides) and for
/// monotonic counters (deltas fit one or two bytes).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DeltaSeq {
    bytes: Vec<u8>,
    len: usize,
    prev: u64,
}

impl DeltaSeq {
    /// An empty sequence.
    pub fn new() -> DeltaSeq {
        DeltaSeq::default()
    }

    /// Appends `v`, encoding it relative to the previous element.
    pub fn push(&mut self, v: u64) {
        let delta = v.wrapping_sub(self.prev) as i64;
        write_uvarint(&mut self.bytes, zigzag(delta));
        self.prev = v;
        self.len += 1;
    }

    /// Number of encoded elements.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the sequence is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Encoded size in bytes (excluding the fixed-size header fields).
    pub fn byte_len(&self) -> usize {
        self.bytes.len()
    }

    /// Iterates over the decoded values.
    pub fn iter(&self) -> DeltaIter<'_> {
        DeltaIter {
            bytes: &self.bytes,
            pos: 0,
            prev: 0,
            remaining: self.len,
        }
    }
}

/// Decoding iterator over a [`DeltaSeq`].
#[derive(Debug, Clone)]
pub struct DeltaIter<'a> {
    bytes: &'a [u8],
    pos: usize,
    prev: u64,
    remaining: usize,
}

impl Iterator for DeltaIter<'_> {
    type Item = u64;

    fn next(&mut self) -> Option<u64> {
        if self.remaining == 0 {
            return None;
        }
        // The buffer was produced by `DeltaSeq::push`, so decoding
        // cannot fail; treat corruption as end-of-stream anyway.
        let raw = read_uvarint(self.bytes, &mut self.pos)?;
        self.remaining -= 1;
        self.prev = self.prev.wrapping_add(unzigzag(raw) as u64);
        Some(self.prev)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining, Some(self.remaining))
    }
}

/// A packed bit vector (one bit per flag, LSB-first within each byte).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BitSeq {
    bytes: Vec<u8>,
    len: usize,
}

impl BitSeq {
    /// An empty bit sequence.
    pub fn new() -> BitSeq {
        BitSeq::default()
    }

    /// Appends one flag.
    pub fn push(&mut self, bit: bool) {
        if self.len.is_multiple_of(8) {
            self.bytes.push(0);
        }
        if bit {
            let last = self.bytes.len() - 1;
            self.bytes[last] |= 1 << (self.len % 8);
        }
        self.len += 1;
    }

    /// The flag at `i`, or `None` past the end.
    pub fn get(&self, i: usize) -> Option<bool> {
        if i >= self.len {
            return None;
        }
        Some(self.bytes[i / 8] & (1 << (i % 8)) != 0)
    }

    /// Number of stored flags.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the sequence is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Packed size in bytes.
    pub fn byte_len(&self) -> usize {
        self.bytes.len()
    }

    /// Iterates over the stored flags.
    pub fn iter(&self) -> impl Iterator<Item = bool> + '_ {
        (0..self.len).map(move |i| self.bytes[i / 8] & (1 << (i % 8)) != 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uvarint_round_trips_boundaries() {
        for v in [0u64, 1, 127, 128, 300, 1 << 21, u64::MAX - 1, u64::MAX] {
            let mut buf = Vec::new();
            write_uvarint(&mut buf, v);
            let mut pos = 0;
            assert_eq!(read_uvarint(&buf, &mut pos), Some(v));
            assert_eq!(pos, buf.len());
        }
    }

    #[test]
    fn uvarint_rejects_truncation_and_overflow() {
        let mut pos = 0;
        assert_eq!(read_uvarint(&[0x80], &mut pos), None, "truncated");
        let mut pos = 0;
        let over = [0xFF; 11];
        assert_eq!(read_uvarint(&over, &mut pos), None, "too long for u64");
    }

    #[test]
    fn zigzag_round_trips() {
        for v in [0i64, -1, 1, -2, 63, -64, i64::MAX, i64::MIN] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
        assert_eq!(zigzag(-1), 1);
        assert_eq!(zigzag(1), 2);
    }

    #[test]
    fn delta_seq_round_trips_including_wraparound() {
        let vals = [0u64, 64, 128, 64, u64::MAX, 3, 1 << 40, 0];
        let mut seq = DeltaSeq::new();
        for &v in &vals {
            seq.push(v);
        }
        assert_eq!(seq.len(), vals.len());
        let back: Vec<u64> = seq.iter().collect();
        assert_eq!(back, vals);
    }

    #[test]
    fn delta_seq_packs_strides_tightly() {
        let mut seq = DeltaSeq::new();
        for i in 0..10_000u64 {
            seq.push(0x40_0000 + i * 64);
        }
        // Constant stride 64 zigzags to 128: two bytes per element after
        // the first.
        assert!(seq.byte_len() <= 2 * 10_000 + 8, "{}", seq.byte_len());
        assert_eq!(seq.iter().nth(9_999), Some(0x40_0000 + 9_999 * 64));
    }

    #[test]
    fn bit_seq_round_trips() {
        let mut bits = BitSeq::new();
        let vals: Vec<bool> = (0..100).map(|i| i % 3 == 0).collect();
        for &b in &vals {
            bits.push(b);
        }
        assert_eq!(bits.len(), 100);
        assert_eq!(bits.byte_len(), 13);
        let back: Vec<bool> = bits.iter().collect();
        assert_eq!(back, vals);
        assert_eq!(bits.get(99), Some(vals[99]));
        assert_eq!(bits.get(100), None);
    }
}
