//! Stack-distance-driven address generation.
//!
//! The most direct way to synthesise a stream with a prescribed amount of
//! *temporal locality* is to drive an LRU stack: each reference either
//! re-touches the block at a sampled stack depth (moving it to the top) or
//! touches a brand-new block. Geometric depth distributions give the
//! short-reuse-dominated profiles typical of integer codes — the streams
//! on which LRU is close to optimal.

use rand::Rng;

/// Generates block addresses with a geometric stack-depth profile.
///
/// With probability `p_new` a never-seen block is referenced (a compulsory
/// miss); otherwise a resident block at geometric depth (mean
/// `mean_depth`) is re-referenced and moved to the top of the stack.
///
/// Once `footprint` distinct blocks are live, each new reference *retires*
/// the coldest block: the working set drifts through the address space.
/// This is what makes the archetype genuinely LRU-friendly — retired
/// blocks never return, but their high frequency counts linger in an
/// LFU-managed cache and pollute it.
///
/// ```
/// use rand::{rngs::SmallRng, SeedableRng};
/// use workloads::StackDistanceGen;
///
/// let mut g = StackDistanceGen::new(0.05, 8.0, 4096);
/// let mut rng = SmallRng::seed_from_u64(9);
/// let a = g.next_block(&mut rng);
/// let b = g.next_block(&mut rng);
/// // Blocks are distinct u64 block numbers within the footprint.
/// assert!(a < 4096 && b < 4096);
/// ```
#[derive(Debug, Clone)]
pub struct StackDistanceGen {
    p_new: f64,
    mean_depth: f64,
    /// Maximum *live* blocks; when full, a new reference retires the
    /// coldest entry (working-set drift).
    footprint: usize,
    stack: Vec<u64>,
    next_block: u64,
}

impl StackDistanceGen {
    /// Creates a generator.
    ///
    /// # Panics
    ///
    /// Panics if `p_new` is outside `[0, 1]`, `mean_depth < 1`, or
    /// `footprint` is 0.
    pub fn new(p_new: f64, mean_depth: f64, footprint: usize) -> Self {
        assert!((0.0..=1.0).contains(&p_new), "p_new must be in [0,1]");
        assert!(mean_depth >= 1.0, "mean_depth must be >= 1");
        assert!(footprint > 0, "footprint must be positive");
        StackDistanceGen {
            p_new,
            mean_depth,
            footprint,
            stack: Vec::new(),
            next_block: 0,
        }
    }

    /// Current number of distinct blocks touched.
    pub fn touched(&self) -> usize {
        self.stack.len()
    }

    /// Draws the next block address.
    pub fn next_block<R: Rng + ?Sized>(&mut self, rng: &mut R) -> u64 {
        let want_new = self.stack.is_empty() || rng.gen_bool(self.p_new);
        if want_new {
            let b = self.next_block;
            self.next_block += 1;
            if self.stack.len() >= self.footprint {
                self.stack.pop(); // retire the coldest live block
            }
            self.stack.insert(0, b);
            return b;
        }
        // Geometric depth with the configured mean, clamped to the stack.
        let depth = {
            let u: f64 = rng.gen::<f64>().max(1e-12);
            let d = (u.ln() / (1.0 - 1.0 / self.mean_depth).ln()).floor() as usize;
            d.min(self.stack.len() - 1)
        };
        let b = self.stack.remove(depth);
        self.stack.insert(0, b);
        b
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn live_set_is_bounded() {
        let mut g = StackDistanceGen::new(0.5, 4.0, 100);
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            g.next_block(&mut rng);
            assert!(g.touched() <= 100, "live set exceeded the footprint");
        }
    }

    #[test]
    fn working_set_drifts() {
        let mut g = StackDistanceGen::new(0.3, 4.0, 50);
        let mut rng = SmallRng::seed_from_u64(6);
        let early: std::collections::HashSet<u64> =
            (0..500).map(|_| g.next_block(&mut rng)).collect();
        for _ in 0..20_000 {
            g.next_block(&mut rng);
        }
        let late: std::collections::HashSet<u64> =
            (0..500).map(|_| g.next_block(&mut rng)).collect();
        assert!(
            early.intersection(&late).count() == 0,
            "after heavy drift the old working set must be fully retired"
        );
    }

    #[test]
    fn low_p_new_reuses_heavily() {
        let mut g = StackDistanceGen::new(0.01, 4.0, 10_000);
        let mut rng = SmallRng::seed_from_u64(2);
        let mut distinct = std::collections::HashSet::new();
        for _ in 0..10_000 {
            distinct.insert(g.next_block(&mut rng));
        }
        // ~1% new-block probability => ~100-200 distinct blocks.
        assert!(distinct.len() < 500, "{}", distinct.len());
    }

    #[test]
    fn shallow_depths_dominate() {
        let mut g = StackDistanceGen::new(0.05, 4.0, 1000);
        let mut rng = SmallRng::seed_from_u64(3);
        // Warm up.
        for _ in 0..2000 {
            g.next_block(&mut rng);
        }
        // Re-references should mostly hit the most recent few blocks: an
        // 8-entry LRU window over the stream should have a high hit rate.
        let mut window: Vec<u64> = Vec::new();
        let mut hits = 0;
        for _ in 0..10_000 {
            let b = g.next_block(&mut rng);
            if let Some(pos) = window.iter().position(|&w| w == b) {
                window.remove(pos);
                hits += 1;
            }
            window.insert(0, b);
            window.truncate(8);
        }
        assert!(hits > 6000, "LRU-8 hits only {hits}/10000");
    }

    #[test]
    #[should_panic(expected = "p_new")]
    fn rejects_bad_probability() {
        let _ = StackDistanceGen::new(1.5, 4.0, 10);
    }

    #[test]
    fn deterministic_per_seed() {
        let run = || {
            let mut g = StackDistanceGen::new(0.1, 6.0, 500);
            let mut rng = SmallRng::seed_from_u64(7);
            (0..1000).map(|_| g.next_block(&mut rng)).collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }
}
