//! The named benchmark suite.
//!
//! Maps every program of the paper's evaluation to a synthetic stand-in:
//! the **primary set** of 26 program/input pairs with non-negligible L2
//! MPKI (paper Figures 3–10) and the **extended set** of 100 pairs used
//! for the stability claims (Section 4.2: "adaptivity never increases
//! misses by more than 2.7% ... never hurts CPI by more than 1.2%").
//!
//! Each stand-in reproduces the locality archetype the paper attributes to
//! the original program (see the module docs of [`crate::pattern`]); the
//! mapping is documented per benchmark in DESIGN.md. Footprints are sized
//! against the paper's 512 KB L2 (8192 blocks of 64 B, 1024 sets), and two
//! rules of thumb shape the LRU/LFU contrast:
//!
//! * a hot set *thrashes LRU* when `hot_blocks * (1 + scan_burst/hot_burst)`
//!   tops the cache (per-set reuse distance beyond the associativity),
//!   while staying *LFU-protected* when `hot_blocks / 1024` is below the
//!   associativity;
//! * a drifting working set ([`BasePattern::Temporal`] retirement,
//!   [`BasePattern::ShiftingHot`]) *poisons LFU* with stale counts while
//!   LRU adapts within one associativity's worth of references.
//!
//! Phase lengths are measured in pattern draws (one draw per
//! `line_burst` memory references).

use crate::mix::{CodeSpec, MixSpec, WorkloadSpec};
use crate::pattern::{AccessPattern, BasePattern};
use serde::{Deserialize, Serialize};

/// Benchmark suites of the paper's Section 4.1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Suite {
    /// SPECcpu2000 integer.
    SpecInt,
    /// SPECcpu2000 floating point.
    SpecFp,
    /// MediaBench.
    MediaBench,
    /// MiBench.
    MiBench,
    /// BioBench.
    BioBench,
    /// Austin's pointer-intensive suite.
    Pointer,
    /// 3D games and ray tracing.
    Graphics,
}

/// A named benchmark: a workload spec plus identification.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Benchmark {
    /// Paper benchmark name (inputs shown as `-1`/`-2` suffixes).
    pub name: String,
    /// Originating suite.
    pub suite: Suite,
    /// The synthetic stand-in.
    pub spec: WorkloadSpec,
}

fn seed_of(name: &str) -> u64 {
    // Stable per-name seed so suites are reproducible independent of
    // declaration order.
    name.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
        (h ^ u64::from(b)).wrapping_mul(0x1000_0000_01b3)
    })
}

fn bench(
    name: &str,
    suite: Suite,
    pattern: AccessPattern,
    mix: MixSpec,
    code: CodeSpec,
) -> Benchmark {
    Benchmark {
        name: name.to_string(),
        suite,
        spec: WorkloadSpec {
            pattern,
            mix,
            code,
            seed: seed_of(name),
        },
    }
}

// ---- archetype shorthands ------------------------------------------------

fn hot_scan(hot: u64, scan: u64, hot_burst: u32, scan_burst: u32) -> BasePattern {
    BasePattern::HotScan {
        hot_blocks: hot,
        scan_blocks: scan,
        hot_burst,
        scan_burst,
    }
}

fn scan(region: u64) -> BasePattern {
    BasePattern::LinearScan {
        region_blocks: region,
        stride: 1,
    }
}

fn temporal(footprint: u64, p_new: f64, depth: f64) -> BasePattern {
    BasePattern::Temporal {
        p_new,
        mean_depth: depth,
        footprint_blocks: footprint,
    }
}

fn shifting(window: u64, period: u64, shift: u64) -> BasePattern {
    BasePattern::ShiftingHot {
        window_blocks: window,
        period_refs: period,
        shift_blocks: shift,
    }
}

fn chase(nodes: u64) -> BasePattern {
    BasePattern::PointerChase { nodes }
}

fn rescan(hot: u64, passes: u32, scan: u64, chunk: u64) -> BasePattern {
    BasePattern::RescanLoop {
        hot_blocks: hot,
        passes,
        scan_blocks: scan,
        scan_chunk: chunk,
    }
}

fn split(parts: Vec<BasePattern>) -> BasePattern {
    BasePattern::Split {
        parts,
        total_sets: 1024, // the paper's 512 KB / 64 B / 8-way L2
    }
}

fn zipf(footprint: u64, s: f64) -> BasePattern {
    BasePattern::Zipf {
        footprint_blocks: footprint,
        exponent: s,
    }
}

/// The paper's primary evaluation set: the 26 program/input pairs whose
/// plain-LRU 512 KB L2 MPKI exceeds 1.
///
/// ```
/// let suite = workloads::primary_suite();
/// assert_eq!(suite.len(), 26);
/// assert!(suite.iter().any(|b| b.name == "mcf"));
/// ```
pub fn primary_suite() -> Vec<Benchmark> {
    use AccessPattern as P;
    use Suite::*;

    vec![
        // ammp: the paper's showcase of temporal *and* spatial phase
        // variation (Figure 7a) — LFU-favourable early, LRU-favourable
        // late, different per set. Adaptive can beat both components.
        bench(
            "ammp",
            SpecFp,
            P::Phased {
                phases: vec![
                    // both policies best, depending on the set
                    (
                        split(vec![
                            rescan(2048, 2, 16_384, 5_120),
                            shifting(2048, 4_000, 1024),
                        ]),
                        0,
                        35_000,
                    ),
                    // LFU dominant
                    (rescan(4096, 2, 32_768, 10_240), 60_000, 30_000),
                    // LRU takes over for the vast majority of sets
                    (shifting(4096, 8_000, 2048), 120_000, 25_000),
                ],
            },
            MixSpec::fp_default(),
            CodeSpec::medium(),
        ),
        // applu: large dense-array sweeps, footprint 1.5x the L2.
        bench(
            "applu",
            SpecFp,
            P::single(scan(12_288)),
            MixSpec::fp_default(),
            CodeSpec::kernel(),
        ),
        // art: small heavily-reused network weights + streaming image
        // data; the classic LFU (and MRU, Figure 8) winner.
        bench(
            "art-1",
            SpecFp,
            P::single(rescan(3072, 2, 65_536, 10_240)),
            MixSpec::fp_default(),
            CodeSpec::kernel(),
        ),
        bench(
            "art-2",
            SpecFp,
            P::single(rescan(2560, 3, 49_152, 12_288)),
            MixSpec::fp_default(),
            CodeSpec::kernel(),
        ),
        // bzip2: block-sorting compressor, strong temporal reuse over a
        // drifting window bigger than the L2 (recency-friendly).
        bench(
            "bzip2",
            SpecInt,
            P::Interleaved {
                parts: vec![
                    (temporal(8192, 0.05, 200.0), 0, 2),
                    (shifting(4096, 8_000, 2048), 20_000, 1),
                ],
            },
            MixSpec::int_default(),
            CodeSpec::medium(),
        ),
        // equake: sparse-matrix sweeps mixed with reused mesh state.
        bench(
            "equake",
            SpecFp,
            P::Interleaved {
                parts: vec![
                    (scan(10_240), 0, 2),
                    (temporal(4096, 0.03, 14.0), 20_000, 1),
                ],
            },
            MixSpec::fp_default(),
            CodeSpec::medium(),
        ),
        // facerec: alternating image sweeps and feature-table reuse.
        bench(
            "facerec",
            SpecFp,
            P::Phased {
                phases: vec![
                    (scan(10_240), 0, 25_000),
                    (rescan(2048, 2, 16_384, 12_288), 30_000, 25_000),
                ],
            },
            MixSpec::fp_default(),
            CodeSpec::medium(),
        ),
        // fma3d: crash simulation, scattered drifting reuse, large model.
        bench(
            "fma3d",
            SpecFp,
            P::single(temporal(12_288, 0.06, 300.0)),
            MixSpec::fp_default(),
            CodeSpec::large(),
        ),
        // ft: minimum-spanning-tree pointer code.
        bench(
            "ft",
            Pointer,
            P::single(chase(16_384)),
            MixSpec::pointer_default(),
            CodeSpec::kernel(),
        ),
        // gap: group theory interpreter, workspace-style drifting reuse.
        bench(
            "gap",
            SpecInt,
            P::Interleaved {
                parts: vec![
                    (shifting(5120, 10_000, 2560), 0, 1),
                    (temporal(4096, 0.04, 250.0), 16_000, 1),
                ],
            },
            MixSpec::int_default(),
            CodeSpec::medium(),
        ),
        // gcc: phase-rich compiler with a huge code footprint; one input
        // (Figure 8) even rewards MRU via long IR sweeps.
        bench(
            "gcc-1",
            SpecInt,
            P::Phased {
                phases: vec![
                    (scan(12_288), 0, 20_000),
                    (temporal(8192, 0.05, 250.0), 16_000, 20_000),
                    (shifting(2048, 7_000, 1024), 40_000, 15_000),
                ],
            },
            MixSpec::int_default(),
            CodeSpec::large(),
        ),
        bench(
            "gcc-2",
            SpecInt,
            P::Phased {
                phases: vec![
                    (temporal(10_240, 0.04, 250.0), 0, 30_000),
                    (scan(9216), 24_000, 12_000),
                ],
            },
            MixSpec::int_default(),
            CodeSpec::large(),
        ),
        // lucas: strided FFT-like reuse where recency wins decisively
        // (the paper's clearest LRU-side case).
        bench(
            "lucas",
            SpecFp,
            P::single(shifting(4096, 16_000, 2048)),
            MixSpec::fp_default(),
            CodeSpec::kernel(),
        ),
        // mcf: the canonical pointer-chasing memory hog.
        bench(
            "mcf",
            SpecInt,
            P::single(chase(32_768)),
            MixSpec::pointer_default(),
            CodeSpec::kernel(),
        ),
        // mgrid: multigrid solver; subroutines traverse the arrays
        // differently (ZERO3/NORM2U3 linear vs RPRJ3 neighbourhoods),
        // giving the gradual LFU->LRU drift of Figure 7b with per-set
        // variation.
        bench(
            "mgrid",
            SpecFp,
            P::Phased {
                phases: vec![
                    (rescan(3072, 2, 24_576, 10_240), 0, 25_000),
                    (
                        split(vec![
                            rescan(1536, 2, 12_288, 5_120),
                            shifting(1536, 4_000, 768),
                        ]),
                        40_000,
                        20_000,
                    ),
                    (
                        split(vec![
                            rescan(768, 2, 6_144, 2_560),
                            shifting(768, 2_000, 384),
                            shifting(768, 2_000, 384),
                            shifting(768, 2_000, 384),
                        ]),
                        80_000,
                        15_000,
                    ),
                    (shifting(3072, 8_000, 1536), 160_000, 20_000),
                ],
            },
            MixSpec::fp_default(),
            CodeSpec::medium(),
        ),
        // parser: dictionary workload with deep drifting temporal reuse.
        bench(
            "parser",
            SpecInt,
            P::single(temporal(10_240, 0.03, 350.0)),
            MixSpec::int_default(),
            CodeSpec::medium(),
        ),
        // swim: shallow-water stencil sweeps over big grids.
        bench(
            "swim",
            SpecFp,
            P::single(scan(16_384)),
            MixSpec::fp_default(),
            CodeSpec::kernel(),
        ),
        // tiff2rgba: streaming image conversion with hot conversion
        // tables — the media pattern LFU separates cleanly.
        bench(
            "tiff2rgba",
            MediaBench,
            P::single(rescan(1024, 2, 65_536, 12_288)),
            MixSpec::media_default(),
            CodeSpec::kernel(),
        ),
        // twolf: place-and-route, small hot structures + pointer walks.
        bench(
            "twolf",
            SpecInt,
            P::Interleaved {
                parts: vec![
                    (temporal(6144, 0.04, 220.0), 0, 3),
                    (chase(8192), 10_000, 1),
                ],
            },
            MixSpec::int_default(),
            CodeSpec::medium(),
        ),
        // unepic: image decompression; rapid phase dithering makes it the
        // paper's worst case for adaptivity (-1.2% CPI).
        bench(
            "unepic",
            MediaBench,
            P::Phased {
                phases: vec![
                    (rescan(1536, 2, 8192, 4096), 0, 3_000),
                    (shifting(1024, 2_000, 512), 12_000, 3_000),
                ],
            },
            MixSpec::media_default(),
            CodeSpec::kernel(),
        ),
        // vpr: FPGA place & route.
        bench(
            "vpr-1",
            SpecInt,
            P::single(temporal(10_240, 0.05, 280.0)),
            MixSpec::int_default(),
            CodeSpec::medium(),
        ),
        bench(
            "vpr-2",
            SpecInt,
            P::Interleaved {
                parts: vec![
                    (temporal(8192, 0.04, 260.0), 0, 2),
                    (scan(6144), 14_000, 1),
                ],
            },
            MixSpec::int_default(),
            CodeSpec::medium(),
        ),
        // wupwise: lattice QCD, blocked sweeps plus reused gauge fields.
        bench(
            "wupwise",
            SpecFp,
            P::Interleaved {
                parts: vec![
                    (scan(9216), 0, 2),
                    (temporal(3072, 0.02, 18.0), 12_000, 1),
                ],
            },
            MixSpec::fp_default(),
            CodeSpec::kernel(),
        ),
        // x11quake: software-rendered game; level geometry scans against
        // hot texture/state data, with scene-driven phases.
        bench(
            "x11quake-1",
            Graphics,
            P::Phased {
                phases: vec![
                    (rescan(3072, 2, 32_768, 10_240), 0, 35_000),
                    (shifting(3072, 9_000, 1536), 48_000, 25_000),
                ],
            },
            MixSpec::media_default(),
            CodeSpec::medium(),
        ),
        bench(
            "x11quake-2",
            Graphics,
            P::Phased {
                phases: vec![
                    (rescan(2048, 3, 40_960, 12_288), 0, 25_000),
                    (temporal(8192, 0.03, 20.0), 52_000, 20_000),
                ],
            },
            MixSpec::media_default(),
            CodeSpec::medium(),
        ),
        // xanim: video playback; frame streaming vs hot decode tables.
        bench(
            "xanim",
            Graphics,
            P::single(rescan(2048, 2, 49_152, 10_240)),
            MixSpec::media_default(),
            CodeSpec::kernel(),
        ),
    ]
}

/// The paper's full 100-program extended set: the primary 26 plus 74
/// programs whose working sets mostly fit the 512 KB L2 (low MPKI). The
/// extended set exists to demonstrate *stability*: adaptivity must not
/// hurt programs that do not need it.
///
/// ```
/// let all = workloads::extended_suite();
/// assert_eq!(all.len(), 100);
/// assert!(all.iter().any(|b| b.name == "tigr"));
/// ```
pub fn extended_suite() -> Vec<Benchmark> {
    use AccessPattern as P;
    use Suite::*;

    let mut v = primary_suite();

    // Helper: a small, cache-friendly benchmark with the given archetype.
    let mut push = |name: &str,
                    suite: Suite,
                    pattern: AccessPattern,
                    mix: MixSpec,
                    code: CodeSpec| {
        v.push(bench(name, suite, pattern, mix, code));
    };

    // --- SPECint 2000 (remaining) ---
    push("gzip-1", SpecInt, P::single(temporal(3072, 0.02, 20.0)), MixSpec::int_default(), CodeSpec::kernel());
    push("gzip-2", SpecInt, P::single(temporal(4096, 0.03, 18.0)), MixSpec::int_default(), CodeSpec::kernel());
    push("crafty", SpecInt, P::single(zipf(4096, 0.9)), MixSpec::int_default(), CodeSpec::medium());
    push("eon", SpecInt, P::single(temporal(2048, 0.02, 16.0)), MixSpec::int_default(), CodeSpec::medium());
    push("perlbmk-1", SpecInt, P::single(temporal(5120, 0.03, 22.0)), MixSpec::int_default(), CodeSpec::large());
    push("perlbmk-2", SpecInt, P::single(zipf(6144, 1.0)), MixSpec::int_default(), CodeSpec::large());
    push("vortex-1", SpecInt, P::single(temporal(6144, 0.04, 20.0)), MixSpec::int_default(), CodeSpec::large());
    push("vortex-2", SpecInt, P::single(temporal(5120, 0.03, 24.0)), MixSpec::int_default(), CodeSpec::large());

    // --- SPECfp 2000 (remaining) ---
    push("wupwise-2", SpecFp, P::single(scan(4096)), MixSpec::fp_default(), CodeSpec::kernel());
    push("mesa", SpecFp, P::single(zipf(4096, 1.1)), MixSpec::fp_default(), CodeSpec::medium());
    push("galgel", SpecFp, P::single(temporal(5120, 0.02, 28.0)), MixSpec::fp_default(), CodeSpec::kernel());
    push("sixtrack", SpecFp, P::single(temporal(4096, 0.02, 20.0)), MixSpec::fp_default(), CodeSpec::medium());
    push("apsi", SpecFp, P::single(scan(6144)), MixSpec::fp_default(), CodeSpec::kernel());
    push("mgrid-2", SpecFp, P::single(scan(5120)), MixSpec::fp_default(), CodeSpec::kernel());
    push("applu-2", SpecFp, P::single(scan(7168)), MixSpec::fp_default(), CodeSpec::kernel());
    push("equake-2", SpecFp, P::single(temporal(4096, 0.03, 16.0)), MixSpec::fp_default(), CodeSpec::medium());

    // --- MediaBench ---
    push("adpcm-enc", MediaBench, P::single(scan(1024)), MixSpec::media_default(), CodeSpec::kernel());
    push("adpcm-dec", MediaBench, P::single(scan(1024)), MixSpec::media_default(), CodeSpec::kernel());
    push("epic", MediaBench, P::single(hot_scan(512, 4096, 2, 2)), MixSpec::media_default(), CodeSpec::kernel());
    push("g721-enc", MediaBench, P::single(zipf(512, 1.2)), MixSpec::media_default(), CodeSpec::kernel());
    push("g721-dec", MediaBench, P::single(zipf(512, 1.2)), MixSpec::media_default(), CodeSpec::kernel());
    push("ghostscript", MediaBench, P::single(temporal(6144, 0.04, 18.0)), MixSpec::media_default(), CodeSpec::large());
    push("gsm-enc", MediaBench, P::single(scan(768)), MixSpec::media_default(), CodeSpec::kernel());
    push("gsm-dec", MediaBench, P::single(scan(768)), MixSpec::media_default(), CodeSpec::kernel());
    push("jpeg-enc", MediaBench, P::single(hot_scan(256, 3072, 2, 2)), MixSpec::media_default(), CodeSpec::kernel());
    push("jpeg-dec", MediaBench, P::single(hot_scan(256, 3072, 2, 2)), MixSpec::media_default(), CodeSpec::kernel());
    push("mpeg2-enc", MediaBench, P::single(hot_scan(1024, 5120, 3, 2)), MixSpec::media_default(), CodeSpec::medium());
    push("mpeg2-dec", MediaBench, P::single(hot_scan(768, 4096, 3, 2)), MixSpec::media_default(), CodeSpec::medium());
    push("pegwit", MediaBench, P::single(zipf(1024, 1.0)), MixSpec::media_default(), CodeSpec::kernel());
    push("pgp", MediaBench, P::single(temporal(2048, 0.03, 14.0)), MixSpec::media_default(), CodeSpec::medium());
    push("rasta", MediaBench, P::single(temporal(1536, 0.02, 16.0)), MixSpec::media_default(), CodeSpec::kernel());

    // --- MiBench ---
    push("basicmath", MiBench, P::single(temporal(512, 0.01, 10.0)), MixSpec::int_default(), CodeSpec::kernel());
    push("bitcount", MiBench, P::single(zipf(256, 1.4)), MixSpec::int_default(), CodeSpec::kernel());
    push("qsort", MiBench, P::single(temporal(4096, 0.05, 12.0)), MixSpec::int_default(), CodeSpec::kernel());
    push("susan", MiBench, P::single(scan(2048)), MixSpec::media_default(), CodeSpec::kernel());
    push("dijkstra", MiBench, P::single(chase(2048)), MixSpec::pointer_default(), CodeSpec::kernel());
    push("patricia", MiBench, P::single(chase(4096)), MixSpec::pointer_default(), CodeSpec::kernel());
    push("stringsearch", MiBench, P::single(scan(1536)), MixSpec::int_default(), CodeSpec::kernel());
    push("blowfish", MiBench, P::single(zipf(512, 1.1)), MixSpec::int_default(), CodeSpec::kernel());
    push("rijndael", MiBench, P::single(zipf(768, 1.0)), MixSpec::int_default(), CodeSpec::kernel());
    push("sha", MiBench, P::single(scan(512)), MixSpec::int_default(), CodeSpec::kernel());
    push("crc32", MiBench, P::single(scan(1024)), MixSpec::int_default(), CodeSpec::kernel());
    push("fft-mi", MiBench, P::single(temporal(3072, 0.02, 24.0)), MixSpec::fp_default(), CodeSpec::kernel());
    push("lame", MiBench, P::single(hot_scan(768, 4096, 2, 2)), MixSpec::media_default(), CodeSpec::medium());
    push("typeset", MiBench, P::single(temporal(5120, 0.04, 18.0)), MixSpec::int_default(), CodeSpec::large());

    // --- BioBench ---
    push("mummer", BioBench, P::single(chase(12_288)), MixSpec::pointer_default(), CodeSpec::kernel());
    // tigr: the paper's worst MPKI case for adaptivity (+2.7%): noisy
    // alternation faster than the history window can track.
    push(
        "tigr",
        BioBench,
        P::Phased {
            phases: vec![
                (rescan(1024, 2, 6144, 3072), 0, 1_500),
                (shifting(1536, 800, 768), 10_000, 1_500),
            ],
        },
        MixSpec::int_default(),
        CodeSpec::medium(),
    );
    push("fasta", BioBench, P::single(scan(5120)), MixSpec::int_default(), CodeSpec::kernel());
    push("clustalw", BioBench, P::single(temporal(4096, 0.03, 20.0)), MixSpec::int_default(), CodeSpec::medium());
    push("hmmer", BioBench, P::single(zipf(3072, 0.9)), MixSpec::int_default(), CodeSpec::medium());
    push("blastp", BioBench, P::single(temporal(6144, 0.05, 14.0)), MixSpec::int_default(), CodeSpec::large());
    push("phylip", BioBench, P::single(temporal(2048, 0.02, 18.0)), MixSpec::fp_default(), CodeSpec::kernel());

    // --- pointer-intensive suite ---
    push("anagram", Pointer, P::single(chase(1024)), MixSpec::pointer_default(), CodeSpec::kernel());
    push("bc", Pointer, P::single(temporal(1536, 0.03, 12.0)), MixSpec::pointer_default(), CodeSpec::kernel());
    push("ks", Pointer, P::single(chase(2048)), MixSpec::pointer_default(), CodeSpec::kernel());
    push("yacr2", Pointer, P::single(temporal(3072, 0.04, 12.0)), MixSpec::pointer_default(), CodeSpec::kernel());
    push("bh", Pointer, P::single(chase(6144)), MixSpec::pointer_default(), CodeSpec::kernel());
    push("bisort", Pointer, P::single(chase(4096)), MixSpec::pointer_default(), CodeSpec::kernel());
    push("em3d", Pointer, P::single(chase(7168)), MixSpec::pointer_default(), CodeSpec::kernel());
    push("health", Pointer, P::single(chase(5120)), MixSpec::pointer_default(), CodeSpec::kernel());
    push("mst", Pointer, P::single(chase(3072)), MixSpec::pointer_default(), CodeSpec::kernel());
    push("perimeter", Pointer, P::single(chase(2048)), MixSpec::pointer_default(), CodeSpec::kernel());
    push("power", Pointer, P::single(temporal(1024, 0.02, 14.0)), MixSpec::pointer_default(), CodeSpec::kernel());
    push("treeadd", Pointer, P::single(chase(4096)), MixSpec::pointer_default(), CodeSpec::kernel());
    push("tsp", Pointer, P::single(chase(3072)), MixSpec::pointer_default(), CodeSpec::kernel());
    push("voronoi", Pointer, P::single(chase(2560)), MixSpec::pointer_default(), CodeSpec::kernel());

    // --- graphics: games and ray tracing ---
    push("doom", Graphics, P::single(hot_scan(1024, 5120, 3, 2)), MixSpec::media_default(), CodeSpec::medium());
    push("quake2", Graphics, P::single(hot_scan(1536, 6144, 3, 2)), MixSpec::media_default(), CodeSpec::medium());
    push("unreal", Graphics, P::single(zipf(5120, 1.0)), MixSpec::media_default(), CodeSpec::large());
    push("povray", Graphics, P::single(temporal(4096, 0.03, 20.0)), MixSpec::fp_default(), CodeSpec::large());
    push("tachyon", Graphics, P::single(temporal(3072, 0.02, 22.0)), MixSpec::fp_default(), CodeSpec::medium());
    push("raytrace", Graphics, P::single(chase(5120)), MixSpec::fp_default(), CodeSpec::medium());
    push("glquake", Graphics, P::single(hot_scan(2048, 7168, 3, 2)), MixSpec::media_default(), CodeSpec::medium());
    push("descent", Graphics, P::single(hot_scan(768, 4096, 2, 2)), MixSpec::media_default(), CodeSpec::medium());

    assert_eq!(v.len(), 100, "extended suite must contain 100 programs");
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn primary_has_26_unique_names() {
        let suite = primary_suite();
        assert_eq!(suite.len(), 26);
        let names: HashSet<_> = suite.iter().map(|b| b.name.as_str()).collect();
        assert_eq!(names.len(), 26);
    }

    #[test]
    fn extended_has_100_unique_names() {
        let all = extended_suite();
        assert_eq!(all.len(), 100);
        let names: HashSet<_> = all.iter().map(|b| b.name.as_str()).collect();
        assert_eq!(names.len(), 100);
    }

    #[test]
    fn extended_contains_primary() {
        let primary_suite = primary_suite();
        let extended_suite = extended_suite();
        let primary: HashSet<_> = primary_suite.iter().map(|b| b.name.as_str()).collect();
        let extended: HashSet<_> = extended_suite.iter().map(|b| b.name.as_str()).collect();
        assert!(primary.is_subset(&extended));
    }

    #[test]
    fn paper_benchmark_names_present() {
        let all = extended_suite();
        let names: HashSet<_> = all.iter().map(|b| b.name.as_str()).collect();
        for expected in [
            "ammp", "art-1", "art-2", "lucas", "mcf", "mgrid", "twolf", "unepic", "tigr",
            "x11quake-1", "xanim", "tiff2rgba",
        ] {
            assert!(names.contains(expected), "missing {expected}");
        }
    }

    #[test]
    fn seeds_are_stable_and_distinct() {
        let a = primary_suite();
        let b = primary_suite();
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.spec.seed, y.spec.seed);
        }
        let seeds: HashSet<_> = extended_suite().iter().map(|b| b.spec.seed).collect();
        assert!(seeds.len() >= 99, "seed collisions: {}", 100 - seeds.len());
    }

    #[test]
    fn all_specs_generate() {
        for b in extended_suite() {
            let n = b.spec.generator().take(200).count();
            assert_eq!(n, 200, "{} failed to generate", b.name);
        }
    }

    #[test]
    fn primary_set_has_big_footprints() {
        // Spot-check that the primary set's memory behaviour is L2-hostile
        // by construction: every primary benchmark either exceeds half the
        // L2 in footprint or shifts its working set.
        for b in primary_suite() {
            let spacious = match &b.spec.pattern {
                AccessPattern::Single { pattern, .. } => pattern.footprint_blocks() >= 4096,
                AccessPattern::Phased { phases } => {
                    phases.iter().any(|(p, _, _)| p.footprint_blocks() > 2048)
                }
                AccessPattern::Interleaved { parts } => {
                    parts
                        .iter()
                        .map(|(p, _, _)| p.footprint_blocks())
                        .sum::<u64>()
                        > 4096
                }
            };
            assert!(spacious, "{} looks too small for the primary set", b.name);
        }
    }
}
