//! A Zipf-distributed sampler over `0..n`.
//!
//! Used by the hot/cold archetypes: media and graphics codes touch a small
//! popular region very often and a long tail rarely, which is exactly the
//! behaviour frequency-based replacement exploits.

use rand::Rng;

/// Samples ranks from a Zipf distribution with exponent `s` over `n`
/// items, by inversion of a precomputed CDF (exact, O(log n) per sample).
///
/// ```
/// use rand::{rngs::SmallRng, SeedableRng};
/// use workloads::Zipf;
///
/// let z = Zipf::new(1000, 1.0);
/// let mut rng = SmallRng::seed_from_u64(1);
/// let mut first = 0u32;
/// for _ in 0..10_000 {
///     if z.sample(&mut rng) == 0 {
///         first += 1;
///     }
/// }
/// // Rank 0 receives ~1/H(1000) ~ 13% of samples.
/// assert!(first > 800, "rank 0 sampled {first} times");
/// ```
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Builds the sampler for `n` items with exponent `s`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is 0 or `s` is negative/NaN.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "Zipf needs at least one item");
        assert!(s >= 0.0 && s.is_finite(), "Zipf exponent must be >= 0");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += 1.0 / (k as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        Zipf { cdf }
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Whether the sampler covers zero items (never true — see `new`).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Draws one rank in `0..n` (0 = most popular).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn ranks_in_range() {
        let z = Zipf::new(50, 1.2);
        let mut rng = SmallRng::seed_from_u64(2);
        for _ in 0..10_000 {
            assert!(z.sample(&mut rng) < 50);
        }
    }

    #[test]
    fn popularity_is_monotone() {
        let z = Zipf::new(20, 1.0);
        let mut rng = SmallRng::seed_from_u64(3);
        let mut counts = [0u32; 20];
        for _ in 0..200_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[5]);
        assert!(counts[1] > counts[10]);
        assert!(counts[2] > counts[19]);
    }

    #[test]
    fn zero_exponent_is_uniform() {
        let z = Zipf::new(4, 0.0);
        let mut rng = SmallRng::seed_from_u64(4);
        let mut counts = [0u32; 4];
        for _ in 0..100_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        for &c in &counts {
            assert!((c as f64 - 25_000.0).abs() < 1500.0, "{counts:?}");
        }
    }

    #[test]
    #[should_panic(expected = "at least one item")]
    fn rejects_empty() {
        let _ = Zipf::new(0, 1.0);
    }

    #[test]
    fn single_item_always_zero() {
        let z = Zipf::new(1, 2.0);
        let mut rng = SmallRng::seed_from_u64(5);
        assert!(!z.is_empty());
        assert_eq!(z.len(), 1);
        for _ in 0..100 {
            assert_eq!(z.sample(&mut rng), 0);
        }
    }
}
