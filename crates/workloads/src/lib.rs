//! # workloads — deterministic synthetic benchmark suite
//!
//! The paper evaluates adaptive caching on 100 program/input pairs from
//! SPECcpu2000, MediaBench, MiBench, BioBench, pointer-intensive codes and
//! graphics applications, sampled with SimPoint. Those binaries and traces
//! are not redistributable, so this crate provides **shape-faithful
//! synthetic stand-ins**: each paper benchmark is mapped to a deterministic
//! generator that reproduces the *locality archetype* the paper attributes
//! to it (linear loops slightly larger than the cache, hot sets guarded by
//! frequency, shifting working sets, pointer chasing, phase alternation,
//! ...). The adaptive mechanism only ever observes the reference stream, so
//! these streams exercise exactly the same code paths.
//!
//! * [`Inst`] / [`InstKind`] — the trace record consumed by the CPU model,
//! * [`AccessPattern`] — composable data-access archetypes,
//! * [`MixSpec`] — instruction-mix weaving (ILP, branches, load/store mix),
//! * [`WorkloadSpec`] / [`TraceGen`] — a seeded, infinite instruction
//!   stream,
//! * [`Benchmark`], [`primary_suite`], [`extended_suite`] — the named
//!   benchmark configurations standing in for the paper's evaluation sets.
//!
//! # Example
//!
//! ```
//! use workloads::primary_suite;
//!
//! let suite = primary_suite();
//! assert_eq!(suite.len(), 26);
//! let art = suite.iter().find(|b| b.name == "art-1").unwrap();
//! let first_thousand: Vec<_> = art.spec.generator().take(1000).collect();
//! assert_eq!(first_thousand.len(), 1000);
//! // Deterministic: regenerating gives the identical stream.
//! let again: Vec<_> = art.spec.generator().take(1000).collect();
//! assert_eq!(first_thousand, again);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod inst;
mod mix;
pub mod packed;
mod pattern;
mod stack;
mod suite;
pub mod trace_io;
mod zipf;

pub use inst::{Inst, InstKind};
pub use mix::{CodeSpec, MixSpec, TraceGen, WorkloadSpec, LINE_BYTES};
pub use pattern::{AccessPattern, BasePattern, PatternState};
pub use stack::StackDistanceGen;
pub use suite::{extended_suite, primary_suite, Benchmark, Suite};
pub use zipf::Zipf;
