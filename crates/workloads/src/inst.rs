//! The instruction/trace record consumed by the CPU timing model.

use serde::{Deserialize, Serialize};

/// A dynamic instruction in a synthetic trace.
///
/// The record is deliberately minimal: a program counter (for the
/// instruction cache and branch predictor), an operation kind (for
/// functional-unit latency and the memory system) and up to two
/// backward dependency distances (for the issue model's dataflow).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Inst {
    /// Byte address of the instruction (4-byte fixed encoding, Alpha-like).
    pub pc: u64,
    /// Operation class.
    pub kind: InstKind,
    /// Distances (in dynamic instructions, counted backwards) to the two
    /// producers of this instruction's source operands; 0 means "no
    /// dependency". Small distances serialise execution, large distances
    /// expose ILP.
    pub deps: [u8; 2],
}

impl Inst {
    /// A dependency-free instruction of the given kind.
    pub fn free(pc: u64, kind: InstKind) -> Self {
        Inst {
            pc,
            kind,
            deps: [0, 0],
        }
    }

    /// Whether this instruction references data memory.
    pub fn is_mem(&self) -> bool {
        matches!(self.kind, InstKind::Load { .. } | InstKind::Store { .. })
    }

    /// The data address, if this is a load or store.
    pub fn mem_addr(&self) -> Option<u64> {
        match self.kind {
            InstKind::Load { addr } | InstKind::Store { addr } => Some(addr),
            _ => None,
        }
    }
}

/// Operation classes, mirroring the simulated machine's functional units
/// (Table 1: integer ALU/mult/div, FP add/div, memory ports) plus control
/// flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum InstKind {
    /// 1-cycle integer operation.
    IntAlu,
    /// 8-cycle integer multiply (pipelined).
    IntMul,
    /// 8-cycle integer divide (unpipelined).
    IntDiv,
    /// 4-cycle FP add/mul (pipelined).
    FpAdd,
    /// 16-cycle FP divide (unpipelined).
    FpDiv,
    /// Data-memory read from `addr`.
    Load {
        /// Byte address read.
        addr: u64,
    },
    /// Data-memory write to `addr`.
    Store {
        /// Byte address written.
        addr: u64,
    },
    /// Conditional branch.
    Branch {
        /// Actual direction.
        taken: bool,
        /// Branch target (for BTB modelling).
        target: u64,
    },
}

impl InstKind {
    /// Short mnemonic for debugging output.
    pub fn mnemonic(&self) -> &'static str {
        match self {
            InstKind::IntAlu => "alu",
            InstKind::IntMul => "mul",
            InstKind::IntDiv => "div",
            InstKind::FpAdd => "fadd",
            InstKind::FpDiv => "fdiv",
            InstKind::Load { .. } => "ld",
            InstKind::Store { .. } => "st",
            InstKind::Branch { .. } => "br",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mem_classification() {
        assert!(Inst::free(0, InstKind::Load { addr: 64 }).is_mem());
        assert!(Inst::free(0, InstKind::Store { addr: 64 }).is_mem());
        assert!(!Inst::free(0, InstKind::IntAlu).is_mem());
        assert!(!Inst::free(
            0,
            InstKind::Branch {
                taken: true,
                target: 8
            }
        )
        .is_mem());
    }

    #[test]
    fn mem_addr_extraction() {
        assert_eq!(
            Inst::free(0, InstKind::Load { addr: 123 }).mem_addr(),
            Some(123)
        );
        assert_eq!(Inst::free(0, InstKind::FpAdd).mem_addr(), None);
    }

    #[test]
    fn mnemonics_are_distinct() {
        use std::collections::HashSet;
        let kinds = [
            InstKind::IntAlu,
            InstKind::IntMul,
            InstKind::IntDiv,
            InstKind::FpAdd,
            InstKind::FpDiv,
            InstKind::Load { addr: 0 },
            InstKind::Store { addr: 0 },
            InstKind::Branch {
                taken: false,
                target: 0,
            },
        ];
        let set: HashSet<_> = kinds.iter().map(|k| k.mnemonic()).collect();
        assert_eq!(set.len(), kinds.len());
    }

    #[test]
    fn serde_roundtrip() {
        let i = Inst {
            pc: 0x1000,
            kind: InstKind::Load { addr: 0xbeef },
            deps: [3, 0],
        };
        let json = serde_json::to_string(&i).unwrap();
        let back: Inst = serde_json::from_str(&json).unwrap();
        assert_eq!(i, back);
    }
}
