//! Data-access archetypes.
//!
//! Every benchmark stand-in is assembled from a handful of archetypes, each
//! reproducing one of the locality behaviours the paper discusses in
//! Section 2.1:
//!
//! * [`BasePattern::LinearScan`] — "a linear loop slightly larger than the
//!   cache is bad for a set-associative, LRU-managed cache",
//! * [`BasePattern::HotScan`] / [`BasePattern::Zipf`] — "LFU is ideal for
//!   separating large regions of blocks that are only used once from
//!   commonly accessed data",
//! * [`BasePattern::Temporal`] — "code that manipulates scattered data with
//!   good temporal locality performs almost optimally with LRU",
//! * [`BasePattern::ShiftingHot`] — working sets that move, poisoning stale
//!   frequency counts (LFU's classic pathology),
//! * [`BasePattern::PointerChase`] — long pseudo-random dependence chains
//!   (mcf-style),
//!
//! composed by [`AccessPattern`] into single-region, phased (ammp/mgrid
//! style) or spatially interleaved streams.
//!
//! All addresses are *block* numbers; the instruction weaver multiplies by
//! the line size. Region placement (`base`) decides which cache sets a
//! pattern touches, which is how the per-set spatial variation of the
//! paper's Figure 7 arises.

use crate::stack::StackDistanceGen;
use crate::zipf::Zipf;
use rand::rngs::SmallRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A primitive access archetype (configuration only; see [`PatternState`]
/// for the runtime form).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum BasePattern {
    /// Cyclic scan over `region_blocks` blocks with the given stride.
    LinearScan {
        /// Footprint in blocks.
        region_blocks: u64,
        /// Stride in blocks between consecutive references.
        stride: u64,
    },
    /// A hot set accessed in bursts, interleaved with an endless scan:
    /// `scan_burst` scan references follow every `hot_burst` hot
    /// references. The scan-to-hot ratio controls how hard LRU thrashes
    /// (higher `scan_burst` widens the per-set reuse distance).
    HotScan {
        /// Number of hot blocks (cycled through).
        hot_blocks: u64,
        /// Scan footprint in blocks.
        scan_blocks: u64,
        /// Consecutive references to each hot block.
        hot_burst: u32,
        /// Scan references after each hot burst.
        scan_burst: u32,
    },
    /// Zipf-popularity references over a footprint (media/graphics style).
    Zipf {
        /// Footprint in blocks.
        footprint_blocks: u64,
        /// Zipf exponent (1.0 is classic).
        exponent: f64,
    },
    /// Stack-distance-profiled temporal locality (LRU-friendly).
    Temporal {
        /// Probability of touching a brand-new block.
        p_new: f64,
        /// Mean geometric reuse depth.
        mean_depth: f64,
        /// Maximum distinct blocks.
        footprint_blocks: u64,
    },
    /// A uniformly used window that shifts wholesale every `period_refs`
    /// references (stale frequency counts poison LFU; LRU adapts).
    ShiftingHot {
        /// Window size in blocks.
        window_blocks: u64,
        /// References between shifts.
        period_refs: u64,
        /// How far the window moves per shift, in blocks.
        shift_blocks: u64,
    },
    /// A full-cycle pseudo-random walk over `nodes` blocks (rounded up to
    /// a power of two), emulating pointer chasing over a large heap.
    PointerChase {
        /// Number of nodes (blocks) in the walk.
        nodes: u64,
    },
    /// `passes` consecutive sweeps over a hot region, then `scan_chunk`
    /// blocks of an endless scan, repeated (the art archetype: network
    /// weights rescanned every iteration against streaming image data).
    ///
    /// The multiple passes give the hot blocks level-2 reuse *behind an
    /// L1 filter* — the pass gap exceeds the L1 but fits the L2 — so
    /// frequency counters accumulate and protect the hot region across the
    /// scan chunks, while LRU drops it whenever `scan_chunk / num_sets`
    /// exceeds the associativity.
    RescanLoop {
        /// Hot region size in blocks (should exceed the L1, fit the L2).
        hot_blocks: u64,
        /// Consecutive sweeps over the hot region per repetition.
        passes: u32,
        /// Scan footprint in blocks.
        scan_blocks: u64,
        /// Scan blocks visited between hot-region repetitions.
        scan_chunk: u64,
    },
    /// Confines `inner`'s blocks to a window of `sets` consecutive cache
    /// sets out of `total_sets` (the paper's L2 has 1024). Block `b` maps
    /// to `(b / sets) * total_sets + b % sets`, so the stream only ever
    /// indexes sets `0..sets` (shift with the enclosing pattern `base`).
    ///
    /// This is the tool behind the paper's Figure 7: *spatially* varying
    /// behaviour, where different cache sets favour different policies.
    Striped {
        /// The confined pattern.
        inner: Box<BasePattern>,
        /// Width of the set window.
        sets: u64,
        /// Total sets of the target cache.
        total_sets: u64,
    },
    /// Round-robins draws over `parts`, confining part `i` to the `i`-th
    /// equal stripe of `total_sets` — several behaviours running
    /// simultaneously in disjoint set ranges (ammp's early phase).
    Split {
        /// The simultaneous patterns.
        parts: Vec<BasePattern>,
        /// Total sets of the target cache.
        total_sets: u64,
    },
}

impl BasePattern {
    /// Approximate footprint in blocks (for documentation/reporting).
    pub fn footprint_blocks(&self) -> u64 {
        match *self {
            BasePattern::LinearScan { region_blocks, .. } => region_blocks,
            BasePattern::HotScan {
                hot_blocks,
                scan_blocks,
                ..
            } => hot_blocks + scan_blocks,
            BasePattern::Zipf {
                footprint_blocks, ..
            }
            | BasePattern::Temporal {
                footprint_blocks, ..
            } => footprint_blocks,
            BasePattern::ShiftingHot { window_blocks, .. } => window_blocks,
            BasePattern::PointerChase { nodes } => nodes.next_power_of_two(),
            BasePattern::RescanLoop {
                hot_blocks,
                scan_blocks,
                ..
            } => hot_blocks + scan_blocks,
            BasePattern::Striped { ref inner, .. } => inner.footprint_blocks(),
            BasePattern::Split { ref parts, .. } => {
                parts.iter().map(|p| p.footprint_blocks()).sum()
            }
        }
    }
}

/// A complete data-access pattern: one archetype, a phase schedule, or a
/// spatial interleaving.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum AccessPattern {
    /// A single archetype placed at `base` (block offset).
    Single {
        /// The archetype.
        pattern: BasePattern,
        /// Region base in blocks.
        base: u64,
    },
    /// A cyclic schedule of phases, each running an archetype at a region
    /// base for a number of references (the paper's ammp/mgrid temporal
    /// phase behaviour).
    Phased {
        /// `(archetype, region base, references)` per phase.
        phases: Vec<(BasePattern, u64, u64)>,
    },
    /// A per-reference weighted mix of archetypes at different bases
    /// (spatial variation across cache sets).
    Interleaved {
        /// `(archetype, region base, weight)` per component.
        parts: Vec<(BasePattern, u64, u32)>,
    },
}

impl AccessPattern {
    /// Convenience: a single archetype at base 0.
    pub fn single(pattern: BasePattern) -> Self {
        AccessPattern::Single { pattern, base: 0 }
    }

    /// Instantiates the runtime state for this pattern.
    pub fn state(&self) -> PatternState {
        PatternState(match self {
            AccessPattern::Single { pattern, base } => Inner::Single {
                state: BaseState::new(pattern),
                base: *base,
            },
            AccessPattern::Phased { phases } => {
                assert!(!phases.is_empty(), "phased pattern needs phases");
                Inner::Phased {
                    states: phases
                        .iter()
                        .map(|(p, base, refs)| {
                            assert!(*refs > 0, "phase length must be positive");
                            (BaseState::new(p), *base, *refs)
                        })
                        .collect(),
                    current: 0,
                    remaining: phases[0].2,
                }
            }
            AccessPattern::Interleaved { parts } => {
                assert!(!parts.is_empty(), "interleaved pattern needs parts");
                let total: u32 = parts.iter().map(|(_, _, w)| *w).sum();
                assert!(total > 0, "interleaved weights must not all be zero");
                Inner::Interleaved {
                    states: parts
                        .iter()
                        .map(|(p, base, w)| (BaseState::new(p), *base, *w))
                        .collect(),
                    total_weight: total,
                }
            }
        })
    }
}

/// Runtime state of one [`BasePattern`].
#[derive(Debug, Clone)]
enum BaseState {
    LinearScan {
        region: u64,
        stride: u64,
        pos: u64,
    },
    HotScan {
        hot: u64,
        scan: u64,
        hot_burst: u32,
        scan_burst: u32,
        group: u64,
        in_group: u32,
        scan_pos: u64,
    },
    Zipf {
        sampler: Zipf,
    },
    Temporal {
        gen: StackDistanceGen,
    },
    ShiftingHot {
        window: u64,
        period: u64,
        shift: u64,
        refs: u64,
    },
    PointerChase {
        size: u64,   // power of two
        mult: u64,   // LCG multiplier (= 1 mod 4)
        inc: u64,    // odd increment
        cur: u64,
    },
    RescanLoop {
        hot: u64,
        passes: u32,
        scan: u64,
        chunk: u64,
        /// Position within the repetition: draws 0..hot*passes are hot
        /// sweeps, then `chunk` scan draws.
        pos: u64,
        scan_pos: u64,
    },
    Striped {
        inner: Box<BaseState>,
        sets: u64,
        total: u64,
    },
    Split {
        parts: Vec<BaseState>,
        stripe: u64,
        total: u64,
        next: usize,
    },
}

impl BaseState {
    fn new(p: &BasePattern) -> Self {
        match *p {
            BasePattern::LinearScan {
                region_blocks,
                stride,
            } => {
                assert!(region_blocks > 0 && stride > 0);
                BaseState::LinearScan {
                    region: region_blocks,
                    stride,
                    pos: 0,
                }
            }
            BasePattern::HotScan {
                hot_blocks,
                scan_blocks,
                hot_burst,
                scan_burst,
            } => {
                assert!(hot_blocks > 0 && scan_blocks > 0 && hot_burst > 0 && scan_burst > 0);
                BaseState::HotScan {
                    hot: hot_blocks,
                    scan: scan_blocks,
                    hot_burst,
                    scan_burst,
                    group: 0,
                    in_group: 0,
                    scan_pos: 0,
                }
            }
            BasePattern::Zipf {
                footprint_blocks,
                exponent,
            } => BaseState::Zipf {
                sampler: Zipf::new(footprint_blocks as usize, exponent),
            },
            BasePattern::Temporal {
                p_new,
                mean_depth,
                footprint_blocks,
            } => BaseState::Temporal {
                gen: StackDistanceGen::new(p_new, mean_depth, footprint_blocks as usize),
            },
            BasePattern::ShiftingHot {
                window_blocks,
                period_refs,
                shift_blocks,
            } => {
                assert!(window_blocks > 0 && period_refs > 0);
                BaseState::ShiftingHot {
                    window: window_blocks,
                    period: period_refs,
                    shift: shift_blocks,
                    refs: 0,
                }
            }
            BasePattern::PointerChase { nodes } => {
                let size = nodes.next_power_of_two().max(4);
                BaseState::PointerChase {
                    size,
                    // Hull–Dobell: full period for power-of-two modulus.
                    mult: 0xA5A5_A5A5u64 & !3 | 1, // = 1 mod 4
                    inc: 0x9E37_79B9 | 1,          // odd
                    cur: 0,
                }
            }
            BasePattern::RescanLoop {
                hot_blocks,
                passes,
                scan_blocks,
                scan_chunk,
            } => {
                assert!(hot_blocks > 0 && passes > 0 && scan_blocks > 0 && scan_chunk > 0);
                BaseState::RescanLoop {
                    hot: hot_blocks,
                    passes,
                    scan: scan_blocks,
                    chunk: scan_chunk,
                    pos: 0,
                    scan_pos: 0,
                }
            }
            BasePattern::Striped {
                ref inner,
                sets,
                total_sets,
            } => {
                assert!(sets > 0 && sets <= total_sets, "stripe must fit the cache");
                BaseState::Striped {
                    inner: Box::new(BaseState::new(inner)),
                    sets,
                    total: total_sets,
                }
            }
            BasePattern::Split {
                ref parts,
                total_sets,
            } => {
                assert!(!parts.is_empty(), "split needs at least one part");
                let stripe = total_sets / parts.len() as u64;
                assert!(stripe > 0, "more parts than sets");
                BaseState::Split {
                    parts: parts.iter().map(BaseState::new).collect(),
                    stripe,
                    total: total_sets,
                    next: 0,
                }
            }
        }
    }

    fn next_block(&mut self, rng: &mut SmallRng) -> u64 {
        match self {
            BaseState::LinearScan {
                region,
                stride,
                pos,
            } => {
                let b = *pos;
                *pos = (*pos + *stride) % *region;
                b
            }
            BaseState::HotScan {
                hot,
                scan,
                hot_burst,
                scan_burst,
                group,
                in_group,
                scan_pos,
            } => {
                let b = if *in_group < *hot_burst {
                    *group % *hot
                } else {
                    let s = *hot + *scan_pos % *scan;
                    *scan_pos += 1;
                    s
                };
                *in_group += 1;
                if *in_group >= *hot_burst + *scan_burst {
                    *in_group = 0;
                    *group += 1;
                }
                b
            }
            BaseState::Zipf { sampler } => sampler.sample(rng) as u64,
            BaseState::Temporal { gen } => gen.next_block(rng),
            BaseState::ShiftingHot {
                window,
                period,
                shift,
                refs,
            } => {
                let epoch = *refs / *period;
                *refs += 1;
                epoch * *shift + rng.gen_range(0..*window)
            }
            BaseState::PointerChase {
                size,
                mult,
                inc,
                cur,
            } => {
                let b = *cur;
                *cur = (cur.wrapping_mul(*mult).wrapping_add(*inc)) & (*size - 1);
                b
            }
            BaseState::RescanLoop {
                hot,
                passes,
                scan,
                chunk,
                pos,
                scan_pos,
            } => {
                let hot_len = *hot * u64::from(*passes);
                let b = if *pos < hot_len {
                    *pos % *hot
                } else {
                    let s = *hot + *scan_pos % *scan;
                    *scan_pos += 1;
                    s
                };
                *pos += 1;
                if *pos >= hot_len + *chunk {
                    *pos = 0;
                }
                b
            }
            BaseState::Striped { inner, sets, total } => {
                let b = inner.next_block(rng);
                (b / *sets) * *total + b % *sets
            }
            BaseState::Split {
                parts,
                stripe,
                total,
                next,
            } => {
                let i = *next;
                *next = (*next + 1) % parts.len();
                let b = parts[i].next_block(rng);
                // Confine part i to its own stripe of the set space.
                (b / *stripe) * *total + b % *stripe + i as u64 * *stripe
            }
        }
    }
}

/// Runtime state of an [`AccessPattern`]; draw blocks with
/// [`PatternState::next_block`]. Construct via [`AccessPattern::state`].
#[derive(Debug, Clone)]
pub struct PatternState(Inner);

#[derive(Debug, Clone)]
enum Inner {
    Single {
        state: BaseState,
        base: u64,
    },
    Phased {
        /// `(state, base, phase length)` per phase.
        states: Vec<(BaseState, u64, u64)>,
        current: usize,
        remaining: u64,
    },
    Interleaved {
        /// `(state, base, weight)` per part.
        states: Vec<(BaseState, u64, u32)>,
        total_weight: u32,
    },
}

impl PatternState {
    /// Draws the next absolute block number.
    pub fn next_block(&mut self, rng: &mut SmallRng) -> u64 {
        match &mut self.0 {
            Inner::Single { state, base } => *base + state.next_block(rng),
            Inner::Phased {
                states,
                current,
                remaining,
            } => {
                if *remaining == 0 {
                    *current = (*current + 1) % states.len();
                    *remaining = states[*current].2;
                }
                *remaining -= 1;
                let (state, base, _) = &mut states[*current];
                *base + state.next_block(rng)
            }
            Inner::Interleaved {
                states,
                total_weight,
            } => {
                let mut pick = rng.gen_range(0..*total_weight);
                for (state, base, w) in states.iter_mut() {
                    if pick < *w {
                        return *base + state.next_block(rng);
                    }
                    pick -= *w;
                }
                unreachable!("weights exhausted");
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(11)
    }

    #[test]
    fn linear_scan_cycles() {
        let mut s = AccessPattern::single(BasePattern::LinearScan {
            region_blocks: 5,
            stride: 1,
        })
        .state();
        let mut r = rng();
        let seq: Vec<_> = (0..7).map(|_| s.next_block(&mut r)).collect();
        assert_eq!(seq, vec![0, 1, 2, 3, 4, 0, 1]);
    }

    #[test]
    fn strided_scan() {
        let mut s = AccessPattern::single(BasePattern::LinearScan {
            region_blocks: 8,
            stride: 3,
        })
        .state();
        let mut r = rng();
        let seq: Vec<_> = (0..4).map(|_| s.next_block(&mut r)).collect();
        assert_eq!(seq, vec![0, 3, 6, 1]);
    }

    #[test]
    fn hot_scan_bursts() {
        let mut s = AccessPattern::single(BasePattern::HotScan {
            hot_blocks: 4,
            scan_blocks: 100,
            hot_burst: 2,
            scan_burst: 2,
        })
        .state();
        let mut r = rng();
        let seq: Vec<_> = (0..8).map(|_| s.next_block(&mut r)).collect();
        // burst of 2 hots, then 2 scans, advancing the group.
        assert_eq!(seq, vec![0, 0, 4, 5, 1, 1, 6, 7]);
    }

    #[test]
    fn base_offsets_apply() {
        let mut s = AccessPattern::Single {
            pattern: BasePattern::LinearScan {
                region_blocks: 3,
                stride: 1,
            },
            base: 1000,
        }
        .state();
        let mut r = rng();
        assert_eq!(s.next_block(&mut r), 1000);
        assert_eq!(s.next_block(&mut r), 1001);
    }

    #[test]
    fn phased_switches_and_cycles() {
        let mut s = AccessPattern::Phased {
            phases: vec![
                (
                    BasePattern::LinearScan {
                        region_blocks: 10,
                        stride: 1,
                    },
                    0,
                    3,
                ),
                (
                    BasePattern::LinearScan {
                        region_blocks: 10,
                        stride: 1,
                    },
                    500,
                    2,
                ),
            ],
        }
        .state();
        let mut r = rng();
        let seq: Vec<_> = (0..8).map(|_| s.next_block(&mut r)).collect();
        assert_eq!(seq, vec![0, 1, 2, 500, 501, 3, 4, 5]);
    }

    #[test]
    fn interleaved_respects_regions() {
        let mut s = AccessPattern::Interleaved {
            parts: vec![
                (
                    BasePattern::LinearScan {
                        region_blocks: 10,
                        stride: 1,
                    },
                    0,
                    1,
                ),
                (
                    BasePattern::LinearScan {
                        region_blocks: 10,
                        stride: 1,
                    },
                    10_000,
                    1,
                ),
            ],
        }
        .state();
        let mut r = rng();
        let mut low = 0;
        let mut high = 0;
        for _ in 0..1000 {
            let b = s.next_block(&mut r);
            if b < 10 {
                low += 1;
            } else {
                assert!((10_000..10_010).contains(&b));
                high += 1;
            }
        }
        assert!(low > 350 && high > 350, "low={low} high={high}");
    }

    #[test]
    fn pointer_chase_visits_all_nodes() {
        let mut s = AccessPattern::single(BasePattern::PointerChase { nodes: 16 }).state();
        let mut r = rng();
        let mut seen = std::collections::HashSet::new();
        for _ in 0..16 {
            seen.insert(s.next_block(&mut r));
        }
        assert_eq!(seen.len(), 16, "full-cycle LCG must visit every node");
    }

    #[test]
    fn shifting_hot_moves() {
        let mut s = AccessPattern::single(BasePattern::ShiftingHot {
            window_blocks: 8,
            period_refs: 100,
            shift_blocks: 50,
        })
        .state();
        let mut r = rng();
        let first: Vec<_> = (0..100).map(|_| s.next_block(&mut r)).collect();
        let second: Vec<_> = (0..100).map(|_| s.next_block(&mut r)).collect();
        assert!(first.iter().all(|&b| b < 8));
        assert!(second.iter().all(|&b| (50..58).contains(&b)));
    }

    #[test]
    fn footprints_reported() {
        assert_eq!(
            BasePattern::LinearScan {
                region_blocks: 7,
                stride: 2
            }
            .footprint_blocks(),
            7
        );
        assert_eq!(
            BasePattern::HotScan {
                hot_blocks: 3,
                scan_blocks: 10,
                hot_burst: 1,
                scan_burst: 1
            }
            .footprint_blocks(),
            13
        );
        assert_eq!(
            BasePattern::PointerChase { nodes: 9 }.footprint_blocks(),
            16
        );
    }

    #[test]
    #[should_panic(expected = "phases")]
    fn empty_phases_rejected() {
        let _ = AccessPattern::Phased { phases: vec![] }.state();
    }

    #[test]
    fn rescan_loop_sequence() {
        let mut s = AccessPattern::single(BasePattern::RescanLoop {
            hot_blocks: 3,
            passes: 2,
            scan_blocks: 100,
            scan_chunk: 2,
        })
        .state();
        let mut r = rng();
        let seq: Vec<_> = (0..16).map(|_| s.next_block(&mut r)).collect();
        // Two passes over {0,1,2}, then 2 scan blocks, repeating with the
        // scan continuing where it left off.
        assert_eq!(seq, vec![0, 1, 2, 0, 1, 2, 3, 4, 0, 1, 2, 0, 1, 2, 5, 6]);
    }

    #[test]
    fn striped_confines_sets() {
        let mut s = AccessPattern::single(BasePattern::Striped {
            inner: Box::new(BasePattern::LinearScan {
                region_blocks: 1000,
                stride: 1,
            }),
            sets: 64,
            total_sets: 1024,
        })
        .state();
        let mut r = rng();
        for _ in 0..5000 {
            let b = s.next_block(&mut r);
            assert!(b % 1024 < 64, "block {b} escaped the stripe");
        }
    }

    #[test]
    fn split_partitions_sets() {
        let mut s = AccessPattern::single(BasePattern::Split {
            parts: vec![
                BasePattern::LinearScan {
                    region_blocks: 500,
                    stride: 1,
                },
                BasePattern::LinearScan {
                    region_blocks: 500,
                    stride: 1,
                },
            ],
            total_sets: 1024,
        })
        .state();
        let mut r = rng();
        let mut low = 0;
        let mut high = 0;
        for _ in 0..2000 {
            let set = s.next_block(&mut r) % 1024;
            if set < 512 {
                low += 1;
            } else {
                high += 1;
            }
        }
        assert_eq!(low, 1000, "round robin puts half the draws per stripe");
        assert_eq!(high, 1000);
    }
}
