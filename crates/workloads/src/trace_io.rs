//! Trace recording and replay.
//!
//! The paper's evaluation consumed SimPoint-sampled execution traces; our
//! synthetic generators are pure functions of their spec, but downstream
//! users often want to (a) capture a stream once and replay it against
//! many configurations bit-identically, or (b) import externally captured
//! traces. This module provides a compact binary format plus a
//! line-oriented text format for interchange.
//!
//! Binary layout (little-endian): the magic `ACTR` + format version +
//! (since version 2) a `u64` record count, then one record per
//! instruction:
//!
//! ```text
//! u8 kind | u8 dep1 | u8 dep2 | u8 flags | u64 pc | (u64 addr/target)?
//! ```
//!
//! Memory and branch instructions carry the extra word; plain compute
//! records are 12 bytes. Version 3 appends a trailing CRC-32 (IEEE, see
//! [`crate::packed::crc32`]) over everything that precedes it — header,
//! count and records — so any corruption of a stored trace is detected
//! instead of decoding into plausible-but-wrong instructions.
//!
//! The reader treats input as hostile: the checksum is verified before
//! records are decoded (version 3), the declared record count is
//! validated against the actual input size before anything is
//! pre-allocated (a corrupt header cannot trigger an OOM), version-1/-2
//! traces remain readable, and truncation mid-record is a typed
//! [`TraceError::Truncated`] rather than a bare I/O error.

use crate::inst::{Inst, InstKind};
use crate::packed::crc32;
use std::fmt;
use std::io::{self, BufRead, Read, Write};

const MAGIC: &[u8; 4] = b"ACTR";
/// Current write version (count header + trailing CRC-32).
const VERSION: u8 = 3;
/// Legacy version: count header, no checksum.
const VERSION_COUNT: u8 = 2;
/// Legacy version: records until EOF, no declared count.
const VERSION_NO_COUNT: u8 = 1;
/// Smallest possible record (compute instruction, no extra word).
const MIN_RECORD_BYTES: u64 = 12;

const K_INT_ALU: u8 = 0;
const K_INT_MUL: u8 = 1;
const K_INT_DIV: u8 = 2;
const K_FP_ADD: u8 = 3;
const K_FP_DIV: u8 = 4;
const K_LOAD: u8 = 5;
const K_STORE: u8 = 6;
const K_BRANCH: u8 = 7;

/// Flag bit: branch taken.
const F_TAKEN: u8 = 1;

/// Errors raised while reading a trace.
#[derive(Debug)]
#[non_exhaustive]
pub enum TraceError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Missing/incorrect magic bytes or unsupported version.
    BadHeader,
    /// Record with an unknown kind byte.
    BadKind(u8),
    /// The header declares more records than the input could possibly
    /// hold — rejected before pre-allocating anything.
    BadCount {
        /// Record count claimed by the header.
        declared: u64,
        /// Upper bound on records the remaining bytes could encode.
        max_possible: u64,
    },
    /// The input ended mid-record (or before the declared count was
    /// reached).
    Truncated {
        /// Complete records successfully read before the cut.
        records: u64,
    },
    /// The trailing CRC-32 does not match the content (version ≥ 3):
    /// the trace was corrupted after it was written.
    Checksum {
        /// Checksum recorded in the trace.
        expected: u32,
        /// Checksum of the content as read.
        actual: u32,
    },
    /// Malformed text-format line.
    BadLine {
        /// 1-based line number.
        line: usize,
        /// Offending content.
        text: String,
    },
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::Io(e) => write!(f, "trace I/O error: {e}"),
            TraceError::BadHeader => write!(f, "not an ACTR trace (bad magic or version)"),
            TraceError::BadKind(k) => write!(f, "unknown instruction kind byte {k}"),
            TraceError::BadCount {
                declared,
                max_possible,
            } => write!(
                f,
                "header declares {declared} records but the input can hold \
                 at most {max_possible} (corrupt or hostile header)"
            ),
            TraceError::Truncated { records } => {
                write!(f, "trace truncated after {records} complete records")
            }
            TraceError::Checksum { expected, actual } => write!(
                f,
                "trace checksum mismatch (recorded {expected:#010x}, computed {actual:#010x}) \
                 — the file was corrupted after it was written"
            ),
            TraceError::BadLine { line, text } => {
                write!(f, "malformed trace line {line}: {text:?}")
            }
        }
    }
}

impl std::error::Error for TraceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TraceError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for TraceError {
    fn from(e: io::Error) -> Self {
        TraceError::Io(e)
    }
}

/// Writes instructions in the binary trace format (version 3: the header
/// carries the record count, so readers can validate it up front, and a
/// trailing CRC-32 over header + records detects any later corruption).
pub fn write_binary<W: Write, I: IntoIterator<Item = Inst>>(
    mut w: W,
    insts: I,
) -> Result<u64, TraceError> {
    // The count precedes the records and the checksum covers everything,
    // so assemble the whole document first.
    let mut out = Vec::new();
    out.extend_from_slice(MAGIC);
    out.push(VERSION);
    out.extend_from_slice(&[0u8; 8]); // count placeholder
    let n = write_records(&mut out, insts)?;
    out[5..13].copy_from_slice(&n.to_le_bytes());
    let crc = crc32(&out);
    out.extend_from_slice(&crc.to_le_bytes());
    w.write_all(&out)?;
    Ok(n)
}

/// Encodes records (no header) into `w`, returning how many were written.
fn write_records<W: Write, I: IntoIterator<Item = Inst>>(
    mut w: W,
    insts: I,
) -> Result<u64, TraceError> {
    let mut n = 0u64;
    for inst in insts {
        let (kind, flags, extra) = match inst.kind {
            InstKind::IntAlu => (K_INT_ALU, 0, None),
            InstKind::IntMul => (K_INT_MUL, 0, None),
            InstKind::IntDiv => (K_INT_DIV, 0, None),
            InstKind::FpAdd => (K_FP_ADD, 0, None),
            InstKind::FpDiv => (K_FP_DIV, 0, None),
            InstKind::Load { addr } => (K_LOAD, 0, Some(addr)),
            InstKind::Store { addr } => (K_STORE, 0, Some(addr)),
            InstKind::Branch { taken, target } => {
                (K_BRANCH, if taken { F_TAKEN } else { 0 }, Some(target))
            }
        };
        w.write_all(&[kind, inst.deps[0], inst.deps[1], flags])?;
        w.write_all(&inst.pc.to_le_bytes())?;
        if let Some(x) = extra {
            w.write_all(&x.to_le_bytes())?;
        }
        n += 1;
    }
    Ok(n)
}

/// Reads a complete binary trace (current and legacy versions).
///
/// Version-2+ headers declare a record count; it is validated against the
/// actual remaining input size *before* pre-allocating, so a corrupt or
/// hostile header yields [`TraceError::BadCount`] instead of an OOM/abort.
/// Version-3 traces additionally carry a trailing CRC-32, verified before
/// any record is decoded, and the decoded record count is cross-checked
/// against the header's declaration.
pub fn read_binary<R: Read>(r: R) -> Result<Vec<Inst>, TraceError> {
    let _span = ac_telemetry::span("trace", || "trace_decode".to_string());
    let out = read_binary_inner(r)?;
    ac_telemetry::counter_add("trace_insts_decoded_total", out.len() as u64);
    Ok(out)
}

fn read_binary_inner<R: Read>(mut r: R) -> Result<Vec<Inst>, TraceError> {
    let mut header = [0u8; 5];
    r.read_exact(&mut header)?;
    if &header[..4] != MAGIC {
        return Err(TraceError::BadHeader);
    }
    match header[4] {
        VERSION_NO_COUNT => {
            // Legacy: no declared count, records until EOF; nothing to
            // pre-allocate from, so growth is bounded by real input.
            let mut body = Vec::new();
            r.read_to_end(&mut body)?;
            read_records(&body, None)
        }
        version @ (VERSION_COUNT | VERSION) => {
            let mut count_bytes = [0u8; 8];
            r.read_exact(&mut count_bytes)
                .map_err(|_| TraceError::Truncated { records: 0 })?;
            let declared = u64::from_le_bytes(count_bytes);
            let mut body = Vec::new();
            r.read_to_end(&mut body)?;
            if version == VERSION {
                // Integrity first: the trailing CRC covers header, count
                // and records, so no corrupt byte anywhere can survive
                // into record decoding.
                let Some(cut) = body.len().checked_sub(4) else {
                    return Err(TraceError::Truncated { records: 0 });
                };
                let expected = u32::from_le_bytes(body[cut..].try_into().expect("4 bytes"));
                let mut actual = crc32(&header);
                actual = crate::packed::crc32_update(actual, &count_bytes);
                actual = crate::packed::crc32_update(actual, &body[..cut]);
                if actual != expected {
                    return Err(TraceError::Checksum { expected, actual });
                }
                body.truncate(cut);
            }
            let max_possible = body.len() as u64 / MIN_RECORD_BYTES;
            if declared > max_possible {
                return Err(TraceError::BadCount {
                    declared,
                    max_possible,
                });
            }
            let out = read_records(&body, Some(declared))?;
            if (out.len() as u64) != declared {
                return Err(TraceError::Truncated {
                    records: out.len() as u64,
                });
            }
            Ok(out)
        }
        _ => Err(TraceError::BadHeader),
    }
}

/// Decodes records from `body`. With `expected`, capacity is reserved up
/// front (the caller has already validated the count against
/// `body.len()`) and reading stops after that many records; without it,
/// records are read until the end of `body`.
fn read_records(body: &[u8], expected: Option<u64>) -> Result<Vec<Inst>, TraceError> {
    let mut out = match expected {
        Some(n) => Vec::with_capacity(n as usize),
        None => Vec::new(),
    };
    let mut at = 0usize;
    while expected.map_or(at < body.len(), |n| (out.len() as u64) < n) {
        let head = body.get(at..at + 12).ok_or(TraceError::Truncated {
            records: out.len() as u64,
        })?;
        at += 12;
        let (kind, d1, d2, flags) = (head[0], head[1], head[2], head[3]);
        let mut pc_bytes = [0u8; 8];
        pc_bytes.copy_from_slice(&head[4..12]);
        let pc = u64::from_le_bytes(pc_bytes);
        let mut read_extra = || -> Result<u64, TraceError> {
            let word = body.get(at..at + 8).ok_or(TraceError::Truncated {
                records: out.len() as u64,
            })?;
            at += 8;
            let mut b = [0u8; 8];
            b.copy_from_slice(word);
            Ok(u64::from_le_bytes(b))
        };
        let kind = match kind {
            K_INT_ALU => InstKind::IntAlu,
            K_INT_MUL => InstKind::IntMul,
            K_INT_DIV => InstKind::IntDiv,
            K_FP_ADD => InstKind::FpAdd,
            K_FP_DIV => InstKind::FpDiv,
            K_LOAD => InstKind::Load {
                addr: read_extra()?,
            },
            K_STORE => InstKind::Store {
                addr: read_extra()?,
            },
            K_BRANCH => InstKind::Branch {
                taken: flags & F_TAKEN != 0,
                target: read_extra()?,
            },
            other => return Err(TraceError::BadKind(other)),
        };
        out.push(Inst {
            pc,
            kind,
            deps: [d1, d2],
        });
    }
    Ok(out)
}

/// Writes instructions in the human-readable text format, one per line:
/// `pc kind [operand] deps=d1,d2`.
pub fn write_text<W: Write, I: IntoIterator<Item = Inst>>(
    mut w: W,
    insts: I,
) -> Result<u64, TraceError> {
    let mut n = 0u64;
    for inst in insts {
        match inst.kind {
            InstKind::Load { addr } => writeln!(
                w,
                "{:#x} ld {:#x} deps={},{}",
                inst.pc, addr, inst.deps[0], inst.deps[1]
            )?,
            InstKind::Store { addr } => writeln!(
                w,
                "{:#x} st {:#x} deps={},{}",
                inst.pc, addr, inst.deps[0], inst.deps[1]
            )?,
            InstKind::Branch { taken, target } => writeln!(
                w,
                "{:#x} br {:#x} {} deps={},{}",
                inst.pc,
                target,
                if taken { "t" } else { "n" },
                inst.deps[0],
                inst.deps[1]
            )?,
            other => writeln!(
                w,
                "{:#x} {} deps={},{}",
                inst.pc,
                other.mnemonic(),
                inst.deps[0],
                inst.deps[1]
            )?,
        }
        n += 1;
    }
    Ok(n)
}

fn parse_u64(s: &str) -> Option<u64> {
    if let Some(hex) = s.strip_prefix("0x") {
        u64::from_str_radix(hex, 16).ok()
    } else {
        s.parse().ok()
    }
}

/// Reads a text-format trace.
pub fn read_text<R: BufRead>(r: R) -> Result<Vec<Inst>, TraceError> {
    let mut out = Vec::new();
    for (i, line) in r.lines().enumerate() {
        let line = line?;
        let text = line.trim();
        if text.is_empty() || text.starts_with('#') {
            continue;
        }
        let bad = || TraceError::BadLine {
            line: i + 1,
            text: text.to_string(),
        };
        let mut parts = text.split_whitespace();
        let pc = parse_u64(parts.next().ok_or_else(bad)?).ok_or_else(bad)?;
        let mnemonic = parts.next().ok_or_else(bad)?;
        let mut rest: Vec<&str> = parts.collect();
        let deps = match rest.last().and_then(|s| s.strip_prefix("deps=")) {
            Some(d) => {
                rest.pop();
                let (a, b) = d.split_once(',').ok_or_else(bad)?;
                [a.parse().map_err(|_| bad())?, b.parse().map_err(|_| bad())?]
            }
            None => [0, 0],
        };
        let kind = match mnemonic {
            "alu" => InstKind::IntAlu,
            "mul" => InstKind::IntMul,
            "div" => InstKind::IntDiv,
            "fadd" => InstKind::FpAdd,
            "fdiv" => InstKind::FpDiv,
            "ld" => InstKind::Load {
                addr: rest.first().and_then(|s| parse_u64(s)).ok_or_else(bad)?,
            },
            "st" => InstKind::Store {
                addr: rest.first().and_then(|s| parse_u64(s)).ok_or_else(bad)?,
            },
            "br" => InstKind::Branch {
                target: rest.first().and_then(|s| parse_u64(s)).ok_or_else(bad)?,
                taken: match rest.get(1) {
                    Some(&"t") => true,
                    Some(&"n") => false,
                    _ => return Err(bad()),
                },
            },
            _ => return Err(bad()),
        };
        out.push(Inst { pc, kind, deps });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::primary_suite;

    fn sample_trace(n: usize) -> Vec<Inst> {
        primary_suite()[0].spec.generator().take(n).collect()
    }

    #[test]
    fn binary_roundtrip() {
        let trace = sample_trace(5000);
        let mut buf = Vec::new();
        let written = write_binary(&mut buf, trace.iter().copied()).unwrap();
        assert_eq!(written, 5000);
        let back = read_binary(buf.as_slice()).unwrap();
        assert_eq!(back, trace);
    }

    #[test]
    fn text_roundtrip() {
        let trace = sample_trace(2000);
        let mut buf = Vec::new();
        write_text(&mut buf, trace.iter().copied()).unwrap();
        let back = read_text(buf.as_slice()).unwrap();
        assert_eq!(back, trace);
    }

    #[test]
    fn text_format_is_readable() {
        let trace = vec![
            Inst::free(0x400000, InstKind::Load { addr: 0x1000 }),
            Inst::free(
                0x400004,
                InstKind::Branch {
                    taken: true,
                    target: 0x400000,
                },
            ),
        ];
        let mut buf = Vec::new();
        write_text(&mut buf, trace).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("0x400000 ld 0x1000"));
        assert!(text.contains("br 0x400000 t"));
    }

    #[test]
    fn text_ignores_comments_and_blanks() {
        let src = "# a comment\n\n0x10 alu deps=1,0\n";
        let trace = read_text(src.as_bytes()).unwrap();
        assert_eq!(trace.len(), 1);
        assert_eq!(trace[0].pc, 0x10);
    }

    #[test]
    fn bad_magic_rejected() {
        let err = read_binary(&b"NOPE\x01"[..]).unwrap_err();
        assert!(matches!(err, TraceError::BadHeader), "{err}");
    }

    #[test]
    fn bad_version_rejected() {
        let err = read_binary(&b"ACTR\x63"[..]).unwrap_err();
        assert!(matches!(err, TraceError::BadHeader));
    }

    #[test]
    fn bad_kind_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(b"ACTR\x01");
        buf.extend_from_slice(&[200, 0, 0, 0]); // bogus kind
        buf.extend_from_slice(&0u64.to_le_bytes());
        let err = read_binary(buf.as_slice()).unwrap_err();
        assert!(matches!(err, TraceError::BadKind(200)), "{err}");
    }

    #[test]
    fn malformed_line_reports_position() {
        let err = read_text("0x10 alu deps=1,0\nwhat is this\n".as_bytes()).unwrap_err();
        match err {
            TraceError::BadLine { line, .. } => assert_eq!(line, 2),
            other => panic!("wrong error: {other}"),
        }
    }

    #[test]
    fn hostile_count_rejected_without_allocating() {
        // A header claiming ~2^61 records over a 12-byte body must be
        // rejected up front (pre-allocating would abort the process).
        let mut buf = Vec::new();
        buf.extend_from_slice(b"ACTR\x02");
        buf.extend_from_slice(&u64::MAX.to_le_bytes());
        buf.extend_from_slice(&[0u8; 12]); // one real record
        let err = read_binary(buf.as_slice()).unwrap_err();
        match err {
            TraceError::BadCount {
                declared,
                max_possible,
            } => {
                assert_eq!(declared, u64::MAX);
                assert_eq!(max_possible, 1);
            }
            other => panic!("wrong error: {other}"),
        }
    }

    #[test]
    fn truncated_body_reports_typed_error() {
        let trace = sample_trace(100);
        let mut buf = Vec::new();
        write_binary(&mut buf, trace.iter().copied()).unwrap();
        // Cut the file mid-stream: parsing must fail with a typed error
        // (v3: the trailing checksum no longer lines up), never a
        // partial silently-OK result.
        let cut = buf.len() - 7;
        let err = read_binary(&buf[..cut]).unwrap_err();
        assert!(
            matches!(
                err,
                TraceError::Checksum { .. } | TraceError::Truncated { .. }
            ),
            "{err}"
        );
    }

    #[test]
    fn v2_truncated_body_reports_complete_records() {
        // The pre-checksum reader path: truncation surfaces as a typed
        // count of complete records.
        let trace = sample_trace(100);
        let mut body = Vec::new();
        write_records(&mut body, trace.iter().copied()).unwrap();
        let mut buf = Vec::new();
        buf.extend_from_slice(b"ACTR\x02");
        buf.extend_from_slice(&100u64.to_le_bytes());
        buf.extend_from_slice(&body[..body.len() - 7]);
        let err = read_binary(buf.as_slice()).unwrap_err();
        match err {
            TraceError::Truncated { records } => assert!(records < 100, "records={records}"),
            other => panic!("wrong error: {other}"),
        }
    }

    #[test]
    fn checksum_mismatch_is_typed() {
        let trace = sample_trace(64);
        let mut buf = Vec::new();
        write_binary(&mut buf, trace.iter().copied()).unwrap();
        // Flip one record byte: the CRC must catch it before decoding.
        let mid = buf.len() / 2;
        buf[mid] ^= 0x04;
        let err = read_binary(buf.as_slice()).unwrap_err();
        assert!(matches!(err, TraceError::Checksum { .. }), "{err}");
        assert!(err.to_string().contains("checksum"), "{err}");
    }

    #[test]
    fn legacy_v2_traces_still_read() {
        let trace = sample_trace(50);
        let mut body = Vec::new();
        write_records(&mut body, trace.iter().copied()).unwrap();
        let mut buf = Vec::new();
        buf.extend_from_slice(b"ACTR\x02");
        buf.extend_from_slice(&50u64.to_le_bytes());
        buf.extend_from_slice(&body);
        let back = read_binary(buf.as_slice()).unwrap();
        assert_eq!(back, trace);
    }

    #[test]
    fn truncated_count_field_rejected() {
        let err = read_binary(&b"ACTR\x02\x01\x02"[..]).unwrap_err();
        assert!(matches!(err, TraceError::Truncated { records: 0 }), "{err}");
    }

    #[test]
    fn legacy_v1_traces_still_read() {
        // Version 1 had no count header; records run to EOF.
        let trace = sample_trace(50);
        let mut body = Vec::new();
        write_records(&mut body, trace.iter().copied()).unwrap();
        let mut buf = Vec::new();
        buf.extend_from_slice(b"ACTR\x01");
        buf.extend_from_slice(&body);
        let back = read_binary(buf.as_slice()).unwrap();
        assert_eq!(back, trace);
    }

    #[test]
    fn count_larger_than_body_records_is_truncation() {
        // Count passes the size check (body large enough in bytes) but
        // the records are wider than MIN_RECORD_BYTES, so the body runs
        // out first.
        let trace: Vec<Inst> = (0..10)
            .map(|i| Inst::free(i, InstKind::Load { addr: i * 64 }))
            .collect();
        let mut body = Vec::new();
        write_records(&mut body, trace.iter().copied()).unwrap();
        let mut buf = Vec::new();
        buf.extend_from_slice(b"ACTR\x02");
        buf.extend_from_slice(&12u64.to_le_bytes()); // claims 12, holds 10
        buf.extend_from_slice(&body);
        let err = read_binary(buf.as_slice()).unwrap_err();
        assert!(
            matches!(err, TraceError::Truncated { records: 10 }),
            "{err}"
        );
    }

    #[test]
    fn binary_is_compact() {
        let trace = sample_trace(10_000);
        let mut buf = Vec::new();
        write_binary(&mut buf, trace.iter().copied()).unwrap();
        // <= 20 bytes per record plus the 5-byte header.
        assert!(buf.len() <= 5 + 20 * trace.len());
    }

    proptest::proptest! {
        #![proptest_config(proptest::ProptestConfig::with_cases(256))]
        /// Corrupting any single byte of a valid v3 trace must surface a
        /// typed error — or, at the very least, never yield records that
        /// differ from the originals. (The trailing CRC-32 detects every
        /// single-byte corruption, so in practice this always errors.)
        fn corrupted_byte_never_yields_wrong_records(
            n in 1usize..200,
            pos_seed in proptest::prelude::any::<u64>(),
            mask in 1u8..=255u8,
        ) {
            let trace = sample_trace(n);
            let mut buf = Vec::new();
            write_binary(&mut buf, trace.iter().copied()).unwrap();
            let pos = (pos_seed % buf.len() as u64) as usize;
            buf[pos] ^= mask;
            match read_binary(buf.as_slice()) {
                Err(_) => {} // detected: the only acceptable loud outcome
                Ok(back) => proptest::prop_assert_eq!(
                    back, trace,
                    "undetected corruption at byte {} (mask {:#04x}) changed the records",
                    pos, mask
                ),
            }
        }
    }

    #[test]
    fn error_display_and_source() {
        let e = TraceError::BadKind(9);
        assert!(e.to_string().contains('9'));
        let io_err = TraceError::from(io::Error::other("x"));
        assert!(std::error::Error::source(&io_err).is_some());
    }
}
