//! Property test: windowed timeline deltas are *conservative*. However
//! the recording cadence falls (every access, every k accesses, ragged
//! tails) and however often the bounded ring coarsens, the field-wise sum
//! over all emitted windows must equal the cache's own end-of-run
//! counters exactly — the same `CacheStats` and Figure-7 totals the
//! figures are built from. A timeline that drops or double-counts a
//! window would silently skew every windowed-MPKI and imitation-fraction
//! chart in the run report.

use ac_telemetry::{Timeline, TimelineGauges, TimelineProbe};
use adaptive_cache::{AdaptiveCache, AdaptiveConfig};
use cache_sim::{BlockAddr, CacheModel, Geometry, TagMode};
use proptest::prelude::*;

/// Small geometry keeps sets saturated so Algorithm 1 (not the
/// invalid-way fill path) decides most victims.
fn small_geom() -> Geometry {
    Geometry::new(16 * 1024, 64, 8).unwrap()
}

/// Field-wise sum of the per-window deltas.
fn sum_windows(tl: &Timeline) -> TimelineProbe {
    let mut total = TimelineProbe::default();
    for w in tl.windows() {
        total = total.merged_with(&w.d);
    }
    total
}

fn drive(
    config: AdaptiveConfig,
    seed: u64,
    addrs: &[(u64, bool)],
    probe_every: u64,
    window: u64,
    capacity: usize,
) {
    let mut cache = AdaptiveCache::new(small_geom(), config, seed);
    let mut tl = Timeline::new("conservation".into(), "accesses", window, capacity);
    for (i, &(a, write)) in addrs.iter().enumerate() {
        cache.access(BlockAddr::new(a), write);
        let tick = (i + 1) as u64;
        if tick.is_multiple_of(probe_every) && tl.due(tick) {
            tl.record(
                tick,
                tick,
                cache.timeline_probe(),
                TimelineGauges::default(),
            );
        }
    }
    let final_probe = cache.timeline_probe();
    tl.close(
        addrs.len() as u64,
        addrs.len() as u64,
        final_probe,
        TimelineGauges::default(),
    );

    assert!(
        tl.windows().len() <= capacity,
        "ring exceeded its bound: {} windows > capacity {capacity}",
        tl.windows().len()
    );
    let total = sum_windows(&tl);
    assert_eq!(
        total, final_probe,
        "window deltas do not sum to the end-of-run counters \
         (probe_every={probe_every}, window={window}, capacity={capacity})"
    );

    // Cross-check the probe itself against the cache's public accessors,
    // so the conservation claim is anchored to the figures' ground truth
    // and not just to whatever `timeline_probe` happens to report.
    let stats = cache.stats();
    assert_eq!(total.accesses, stats.accesses);
    assert_eq!(total.hits, stats.hits);
    assert_eq!(total.misses, stats.misses);
    assert_eq!(
        (total.imitations_a, total.imitations_b),
        cache.imitation_totals(),
        "Figure-7 imitation counters"
    );
    assert_eq!(
        (total.excl_a_misses, total.excl_b_misses),
        cache.exclusive_miss_totals()
    );
    assert_eq!(total.aliasing_fallbacks, cache.aliasing_fallbacks());

    // Coverage: the emitted windows tile [start of run, last tick] with
    // no gaps or overlaps even after in-place coarsening.
    let mut expected_start = 0;
    for w in tl.windows() {
        assert_eq!(
            w.start_tick, expected_start,
            "window coverage gap after coarsening"
        );
        assert!(w.end_tick > w.start_tick);
        expected_start = w.end_tick;
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Full shadow tags; tiny windows and a small ring force repeated
    /// coarsening while the totals must stay exact.
    #[test]
    fn window_sums_match_run_totals_full_tags(
        addrs in proptest::collection::vec((0u64..2048, any::<bool>()), 1..600),
        seed in any::<u64>(),
        probe_every in 1u64..40,
        window in 1u64..64,
        capacity in 2usize..10,
    ) {
        drive(
            AdaptiveConfig::paper_full_tags(),
            seed,
            &addrs,
            probe_every,
            window,
            capacity,
        );
    }

    /// Partial 2-bit shadow tags alias aggressively, so the aliasing
    /// fallback and exclusive-miss counters are exercised too.
    #[test]
    fn window_sums_match_run_totals_heavy_aliasing(
        addrs in proptest::collection::vec((0u64..4096, any::<bool>()), 1..500),
        seed in any::<u64>(),
        probe_every in 1u64..25,
        window in 1u64..48,
        capacity in 2usize..8,
    ) {
        let config = AdaptiveConfig::paper_default()
            .shadow_tag_mode(TagMode::PartialLow { bits: 2 });
        drive(config, seed, &addrs, probe_every, window, capacity);
    }
}
