//! Differential test for the adaptive cache's fused replacement path.
//!
//! The optimised [`AdaptiveCache`] hoists the per-miss `mode.store()`
//! reductions of Algorithm 1 into one pass ([`Directory::reduced_tags`]),
//! runs the Case-1/Case-2 scans over bitmasks, and decomposes each address
//! once for all three tag structures. This test re-implements the seed's
//! *unfused* adaptive cache — array-of-structs real directory, per-way
//! `mode.store()` recomputation, early-exit linear scans — and asserts
//! both produce identical access outcomes, statistics, shadow statistics,
//! aliasing fallbacks, and the paper's Figure-7 imitation counters, for
//! full and partial shadow tags.

use adaptive_cache::{AdaptiveCache, AdaptiveConfig, Component, MissHistory};
use cache_sim::{
    AccessOutcome, BlockAddr, CacheModel, CacheStats, Eviction, Geometry, MetaTable, PolicyKind,
    StoredTag, TagAccess, TagMode, Way,
};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Seed-layout directory: padded way structs, early-exit scans.
#[derive(Clone)]
struct RefDirectory {
    geom: Geometry,
    tag_mode: TagMode,
    ways: Vec<Way>,
}

impl RefDirectory {
    fn new(geom: Geometry, tag_mode: TagMode) -> Self {
        RefDirectory {
            geom,
            tag_mode,
            ways: vec![Way::default(); geom.num_sets() * geom.associativity()],
        }
    }

    fn locate(&self, block: BlockAddr) -> (usize, StoredTag) {
        (
            self.geom.set_index(block),
            self.tag_mode.store(self.geom.tag(block)),
        )
    }

    fn set_ways(&self, set: usize) -> &[Way] {
        let b = set * self.geom.associativity();
        &self.ways[b..b + self.geom.associativity()]
    }

    fn find(&self, set: usize, stored: StoredTag) -> Option<usize> {
        self.set_ways(set)
            .iter()
            .position(|w| w.valid && w.tag == stored)
    }

    fn invalid_way(&self, set: usize) -> Option<usize> {
        self.set_ways(set).iter().position(|w| !w.valid)
    }

    fn fill_at(&mut self, set: usize, way: usize, stored: StoredTag) -> Option<Way> {
        let idx = set * self.geom.associativity() + way;
        let old = self.ways[idx];
        self.ways[idx] = Way {
            valid: true,
            tag: stored,
            dirty: false,
        };
        old.valid.then_some(old)
    }

    fn mark_dirty(&mut self, set: usize, way: usize) {
        self.ways[set * self.geom.associativity() + way].dirty = true;
    }
}

/// Seed-layout shadow tag array (reference directory + the same policy
/// metadata and RNG discipline as the optimised one).
struct RefTagArray {
    dir: RefDirectory,
    meta: MetaTable<PolicyKind>,
    rng: SmallRng,
    hits: u64,
    misses: u64,
}

impl RefTagArray {
    fn new(geom: Geometry, tag_mode: TagMode, policy: PolicyKind, seed: u64) -> Self {
        RefTagArray {
            dir: RefDirectory::new(geom, tag_mode),
            meta: MetaTable::new(policy, geom.num_sets(), geom.associativity()),
            rng: SmallRng::seed_from_u64(seed),
            hits: 0,
            misses: 0,
        }
    }

    fn access(&mut self, block: BlockAddr) -> TagAccess {
        let (set, stored) = self.dir.locate(block);
        if let Some(way) = self.dir.find(set, stored) {
            self.hits += 1;
            self.meta.on_hit(set, way);
            return TagAccess {
                hit: true,
                way,
                evicted: None,
            };
        }
        self.misses += 1;
        let way = match self.dir.invalid_way(set) {
            Some(w) => w,
            None => self.meta.victim(set, &mut self.rng),
        };
        let evicted = self.dir.fill_at(set, way, stored);
        self.meta.on_fill(set, way);
        TagAccess {
            hit: false,
            way,
            evicted,
        }
    }

    fn contains(&self, set: usize, stored: StoredTag) -> bool {
        self.dir.find(set, stored).is_some()
    }
}

/// The seed's adaptive cache: unfused Algorithm 1 with per-way
/// `mode.store()` recomputation inside the Case-1 and Case-2 scans.
struct RefAdaptive {
    shadow_tags: TagMode,
    real: RefDirectory,
    shadow_a: RefTagArray,
    shadow_b: RefTagArray,
    history: Vec<MissHistory>,
    rng: SmallRng,
    stats: CacheStats,
    aliasing_fallbacks: u64,
    imitations_a: u64,
    imitations_b: u64,
}

impl RefAdaptive {
    fn new(geom: Geometry, config: AdaptiveConfig, seed: u64) -> Self {
        assert!(
            !config.lru_victim_shortcut,
            "reference models the exact Algorithm 1 only"
        );
        RefAdaptive {
            shadow_tags: config.shadow_tags,
            real: RefDirectory::new(geom, TagMode::Full),
            shadow_a: RefTagArray::new(geom, config.shadow_tags, config.policy_a, seed ^ 0xA),
            shadow_b: RefTagArray::new(geom, config.shadow_tags, config.policy_b, seed ^ 0xB),
            history: (0..geom.num_sets())
                .map(|_| MissHistory::new(config.history))
                .collect(),
            rng: SmallRng::seed_from_u64(seed),
            stats: CacheStats::default(),
            aliasing_fallbacks: 0,
            imitations_a: 0,
            imitations_b: 0,
        }
    }

    /// Algorithm 1, seed shape: linear scans re-reducing each real tag on
    /// every probe.
    fn choose_victim(&mut self, set: usize, winner: Component, shadow_miss: Option<Way>) -> usize {
        let mode = self.shadow_tags;
        if let Some(evicted) = shadow_miss {
            if let Some(way) = self
                .real
                .set_ways(set)
                .iter()
                .position(|w| w.valid && mode.store(w.tag.raw()) == evicted.tag)
            {
                return way;
            }
        }
        let shadow = match winner {
            Component::A => &self.shadow_a,
            Component::B => &self.shadow_b,
        };
        if let Some(way) = self.real.set_ways(set).iter().position(|w| {
            w.valid && {
                let reduced = mode.store(w.tag.raw());
                !shadow.contains(set, reduced)
            }
        }) {
            return way;
        }
        self.aliasing_fallbacks += 1;
        self.rng.gen_range(0..self.real.geom.associativity())
    }

    fn access(&mut self, block: BlockAddr, write: bool) -> AccessOutcome {
        let (set, stored) = self.real.locate(block);
        let acc_a = self.shadow_a.access(block);
        let acc_b = self.shadow_b.access(block);
        self.history[set].record(!acc_a.hit, !acc_b.hit);

        if let Some(way) = self.real.find(set, stored) {
            self.stats.record(true, write);
            if write {
                self.real.mark_dirty(set, way);
            }
            return AccessOutcome::hit();
        }
        self.stats.record(false, write);

        let way = match self.real.invalid_way(set) {
            Some(w) => w,
            None => {
                let winner = self.history[set].winner();
                match winner {
                    Component::A => self.imitations_a += 1,
                    Component::B => self.imitations_b += 1,
                }
                let shadow_miss = match winner {
                    Component::A => (!acc_a.hit).then_some(acc_a.evicted).flatten(),
                    Component::B => (!acc_b.hit).then_some(acc_b.evicted).flatten(),
                };
                self.choose_victim(set, winner, shadow_miss)
            }
        };

        let evicted = self.real.fill_at(set, way, stored);
        if write {
            self.real.mark_dirty(set, way);
        }
        let eviction = evicted.map(|old| {
            self.stats.evictions += 1;
            if old.dirty {
                self.stats.writebacks += 1;
            }
            Eviction {
                block: self.real.geom.block_from_parts(old.tag.raw(), set),
                dirty: old.dirty,
            }
        });
        AccessOutcome {
            hit: false,
            eviction,
        }
    }
}

fn drive_and_compare(
    geom: Geometry,
    config: AdaptiveConfig,
    seed: u64,
    blocks: impl Iterator<Item = (u64, bool)>,
) {
    let mut fused = AdaptiveCache::new(geom, config, seed);
    let mut reference = RefAdaptive::new(geom, config, seed);
    for (i, (a, write)) in blocks.enumerate() {
        let block = BlockAddr::new(a);
        let got = fused.access(block, write);
        let want = reference.access(block, write);
        assert_eq!(got, want, "{config:?} diverged at access {i} ({a:#x})");
    }
    assert_eq!(fused.stats(), &reference.stats, "cache stats");
    assert_eq!(
        fused.imitation_totals(),
        (reference.imitations_a, reference.imitations_b),
        "Figure-7 imitation counters"
    );
    assert_eq!(
        fused.aliasing_fallbacks(),
        reference.aliasing_fallbacks,
        "partial-tag alias fallbacks"
    );
    for (c, hits, misses) in [
        (
            Component::A,
            reference.shadow_a.hits,
            reference.shadow_a.misses,
        ),
        (
            Component::B,
            reference.shadow_b.hits,
            reference.shadow_b.misses,
        ),
    ] {
        assert_eq!(fused.shadow_stats(c), (hits, misses), "{c:?} shadow stats");
    }
}

/// Small geometry keeps sets saturated so Algorithm 1 (not the
/// invalid-way fill path) decides most victims.
fn small_geom() -> Geometry {
    Geometry::new(16 * 1024, 64, 8).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Full shadow tags: every case branch except the alias fallback.
    #[test]
    fn adaptive_full_tags_matches_unfused_reference(
        addrs in proptest::collection::vec((0u64..2048, any::<bool>()), 1..500),
        seed in any::<u64>(),
    ) {
        drive_and_compare(
            small_geom(),
            AdaptiveConfig::paper_full_tags(),
            seed,
            addrs.iter().copied(),
        );
    }

    /// Partial (8-bit) shadow tags: aliasing makes Case 2 fail and
    /// exercises the RNG fallback, which must consume the generator
    /// identically in both implementations.
    #[test]
    fn adaptive_partial_tags_matches_unfused_reference(
        addrs in proptest::collection::vec((0u64..2048, any::<bool>()), 1..500),
        seed in any::<u64>(),
    ) {
        drive_and_compare(
            small_geom(),
            AdaptiveConfig::paper_default(),
            seed,
            addrs.iter().copied(),
        );
    }

    /// Narrow 2-bit shadow tags alias aggressively, forcing the Case-3
    /// fallback often.
    #[test]
    fn adaptive_heavy_aliasing_matches_unfused_reference(
        addrs in proptest::collection::vec((0u64..4096, any::<bool>()), 1..400),
        seed in any::<u64>(),
    ) {
        let config = AdaptiveConfig::paper_default()
            .shadow_tag_mode(TagMode::PartialLow { bits: 2 });
        drive_and_compare(small_geom(), config, seed, addrs.iter().copied());
    }

    /// Alternative policy pairs route through the same fused scans.
    #[test]
    fn adaptive_other_policy_pairs_match(
        addrs in proptest::collection::vec((0u64..2048, any::<bool>()), 1..300),
        seed in any::<u64>(),
    ) {
        for (a, b) in [
            (PolicyKind::Fifo, PolicyKind::Random),
            (PolicyKind::Mru, PolicyKind::Lru),
        ] {
            let config = AdaptiveConfig::with_policies(a, b);
            drive_and_compare(small_geom(), config, seed, addrs.iter().copied());
        }
    }
}

/// Fixed long-stream soak on the paper's L2 geometry with both headline
/// shadow-tag modes; also checks the per-set imitation samples (the
/// Figure-7 plotting input) agree in aggregate.
#[test]
fn paper_geometry_imitation_counters_match() {
    let geom = Geometry::new(512 * 1024, 64, 8).unwrap();
    for config in [
        AdaptiveConfig::paper_full_tags(),
        AdaptiveConfig::paper_default(),
    ] {
        let mut fused = AdaptiveCache::new(geom, config, 0xFEED);
        let mut reference = RefAdaptive::new(geom, config, 0xFEED);
        let mut x = 0x9E37_79B9u64;
        for i in 0..150_000u64 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            // Phase-switching stream: LRU-friendly bursts, then scans.
            let block = if (i / 20_000) % 2 == 0 {
                BlockAddr::new(x % 4_000)
            } else {
                BlockAddr::new(i % 40_000)
            };
            let write = x & 7 == 0;
            assert_eq!(
                fused.access(block, write),
                reference.access(block, write),
                "{:?} diverged at access {i}",
                config.shadow_tags
            );
        }
        assert_eq!(fused.stats(), &reference.stats);
        assert_eq!(
            fused.imitation_totals(),
            (reference.imitations_a, reference.imitations_b)
        );
        let (ia, ib) = fused.imitation_totals();
        assert!(ia + ib > 1_000, "stream must exercise Algorithm 1");
        let samples = fused.take_imitation_samples();
        let (sa, sb): (u64, u64) = samples
            .iter()
            .fold((0, 0), |(a, b), s| (a + s.imitated_a, b + s.imitated_b));
        assert_eq!((sa, sb), (ia, ib), "per-set samples sum to the totals");
    }
}
