//! The adaptive cache's access path — three directory probes, history
//! update, and the fused Algorithm-1 victim scan — must not allocate in
//! steady state (the Case-1/Case-2 candidate buffer is a stack array).
//!
//! Own test binary: `#[global_allocator]` is process-global.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use adaptive_cache::{AdaptiveCache, AdaptiveConfig};
use cache_sim::{BlockAddr, CacheModel, Geometry};

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

// SAFETY: delegates directly to the system allocator; the counter is a
// side effect with no influence on the returned memory.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

#[inline]
fn stream_block(i: u64) -> BlockAddr {
    let group = i / 4;
    if i % 4 < 3 {
        BlockAddr::new(group % 768)
    } else {
        BlockAddr::new(768 + group % 16_384)
    }
}

#[test]
fn adaptive_million_access_loop_allocates_nothing() {
    let geom = Geometry::new(512 * 1024, 64, 8).unwrap();
    for config in [
        AdaptiveConfig::paper_full_tags(),
        AdaptiveConfig::paper_default(),
    ] {
        let mut cache = AdaptiveCache::new(geom, config, 7);
        for i in 0..50_000 {
            cache.access(stream_block(i), i % 9 == 0);
        }
        let before = ALLOCATIONS.load(Ordering::Relaxed);
        let mut hits = 0u64;
        for i in 0..1_000_000u64 {
            hits += u64::from(cache.access(stream_block(i), i % 9 == 0).hit);
        }
        assert!(hits > 0);
        assert_eq!(
            ALLOCATIONS.load(Ordering::Relaxed) - before,
            0,
            "{:?} adaptive access loop must not allocate",
            config.shadow_tags
        );
    }
}
