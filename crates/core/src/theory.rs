//! Instrumentation for the paper's theoretical guarantee (Section 2.5 and
//! the appendix).
//!
//! The paper proves that the adaptive policy with *integer miss counters*
//! (the [`crate::HistoryKind::Counters`] history) suffers at most **twice**
//! the misses of the better component policy, per set, up to an additive
//! constant related to the cache size (the cold-start transient). This
//! module runs the construction on an arbitrary reference trace and
//! reports whether the bound holds — it is the backing for the workspace's
//! property-based tests.
//!
//! # Proof sketch (adapted from the paper's appendix)
//!
//! Because every structure — the real cache, both shadow arrays and the
//! history — is partitioned by set, it suffices to prove the bound for a
//! single set of associativity `k`; summing over sets gives the cache-wide
//! bound (and the stronger per-set form the paper highlights: if the best
//! component differs from set to set, the adaptive cache beats *both*
//! globally by picking the local winner everywhere).
//!
//! Fix a set and let `A(t)`, `B(t)` be the component policies' cumulative
//! miss counts after reference `t`. The counter history imitates `A` when
//! `A(t) <= B(t)` and `B` otherwise, so time splits into maximal *epochs*
//! during which the imitated component is constant. Two observations drive
//! the proof:
//!
//! 1. **Within an epoch, the adaptive set converges to the imitated
//!    component's contents and then misses only when it misses.**
//!    Suppose the epoch imitates `B`. Whenever the adaptive cache misses,
//!    Algorithm 1 either evicts the same block `B` evicts (when `B` also
//!    missed) or evicts a block *not* in `B`'s shadow set. In both cases
//!    the symmetric difference `|adaptive Δ B|` never grows, and every
//!    adaptive miss on a block that `B` holds strictly shrinks it (the
//!    incoming block is in `B`; the victim is not). Since the difference
//!    is at most `k`, after at most `k` such "extra" misses the contents
//!    coincide, and from then on every adaptive miss in the epoch is also
//!    a `B` miss.
//!
//! 2. **An epoch ends only after the imitated component has missed.**
//!    The history flips from `B` to `A` only when `B(t)` overtakes
//!    `A(t)`, which requires `B` to miss during the epoch. Consequently
//!    the number of epochs is at most `A(T) + B(T) <= 2·max + ...`; more
//!    carefully, at a flip the two counters are within one miss of each
//!    other, so counting epoch by epoch: the adaptive misses during an
//!    epoch imitating `B` are at most (B's misses in that epoch) + `k`
//!    (the convergence transient), and B's misses in that epoch are, at
//!    the flip boundary, balanced against A's. Summing the alternating
//!    epochs telescopes to
//!
//!    ```text
//!    Adaptive(T)  <=  2 · min(A(T), B(T))  +  c·k
//!    ```
//!
//!    where `c` accounts for the final (unflipped) epoch and cold start.
//!    The factor 2 is tight in the adversarial limit: an adversary can
//!    alternate behaviours so that the history always "chases" the
//!    component that has just stopped being good, paying both components'
//!    misses across the alternation — but never more.
//!
//! The earlier virtual-memory result (reference 22 of the paper) proved 3× for
//! the realistic algorithm; the paper's appendix tightens it to 2× for
//! the counter-based variant implemented here. [`check_two_x_bound`]
//! validates the inequality `adaptive <= 2·min(A, B) + sets·assoc`
//! empirically on arbitrary traces; the property tests in
//! `tests/properties.rs` and `tests/theory_bound.rs` exercise it over
//! random and adversarial inputs and every built-in policy pairing.
//!
//! Note the bound needs the *counter* history: the windowed bit-vector
//! history trades the worst-case guarantee for faster adaptation (paper
//! Section 2.2), which is why the default configuration is evaluated
//! empirically instead.

use crate::adaptive::{AdaptiveCache, AdaptiveConfig, Component};
use crate::history::HistoryKind;
use cache_sim::{BlockAddr, CacheModel, Geometry, PolicyKind, TagMode};

/// Outcome of checking the 2x miss bound on one trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BoundReport {
    /// Misses of the adaptive cache.
    pub adaptive_misses: u64,
    /// Misses component policy A alone would have suffered.
    pub misses_a: u64,
    /// Misses component policy B alone would have suffered.
    pub misses_b: u64,
    /// The additive slack allowed (one full cache of cold misses).
    pub slack: u64,
    /// Whether `adaptive <= 2 * min(a, b) + slack`.
    pub holds: bool,
}

impl BoundReport {
    /// Misses of the better component policy.
    pub fn best_component(&self) -> u64 {
        self.misses_a.min(self.misses_b)
    }

    /// The bound value `2 * best + slack`.
    pub fn bound(&self) -> u64 {
        2 * self.best_component() + self.slack
    }
}

/// Runs the theorem configuration (full shadow tags, counter history) for
/// policies `a`/`b` over `trace` and checks the 2x bound.
///
/// ```
/// use adaptive_cache::theory::check_two_x_bound;
/// use cache_sim::{BlockAddr, Geometry, PolicyKind};
///
/// let geom = Geometry::new(4096, 64, 4).unwrap();
/// let trace: Vec<BlockAddr> = (0..50_000u64)
///     .map(|i| BlockAddr::new(i % 150))
///     .collect();
/// let report = check_two_x_bound(geom, PolicyKind::Lru, PolicyKind::LFU5, &trace);
/// assert!(report.holds);
/// ```
pub fn check_two_x_bound(
    geom: Geometry,
    a: PolicyKind,
    b: PolicyKind,
    trace: &[BlockAddr],
) -> BoundReport {
    let cfg = AdaptiveConfig::with_policies(a, b)
        .shadow_tag_mode(TagMode::Full)
        .history_kind(HistoryKind::Counters);
    let mut cache = AdaptiveCache::new(geom, cfg, 0x07_E011);
    for &block in trace {
        cache.access(block, false);
    }
    let adaptive_misses = cache.stats().misses;
    let misses_a = cache.shadow_stats(Component::A).1;
    let misses_b = cache.shadow_stats(Component::B).1;
    let slack = (geom.num_sets() * geom.associativity()) as u64;
    let best = misses_a.min(misses_b);
    BoundReport {
        adaptive_misses,
        misses_a,
        misses_b,
        slack,
        holds: adaptive_misses <= 2 * best + slack,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn geom() -> Geometry {
        Geometry::new(4096, 64, 4).unwrap()
    }

    #[test]
    fn bound_holds_on_cyclic_scan() {
        let trace: Vec<_> = (0..100_000u64).map(|i| BlockAddr::new(i % 100)).collect();
        let r = check_two_x_bound(geom(), PolicyKind::Lru, PolicyKind::LFU5, &trace);
        assert!(r.holds, "{r:?}");
    }

    #[test]
    fn bound_holds_on_scatter() {
        let mut x = 88u64;
        let trace: Vec<_> = (0..100_000)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                BlockAddr::new(x % 3000)
            })
            .collect();
        for (a, b) in [
            (PolicyKind::Lru, PolicyKind::LFU5),
            (PolicyKind::Fifo, PolicyKind::Mru),
            (PolicyKind::Lru, PolicyKind::Fifo),
        ] {
            let r = check_two_x_bound(geom(), a, b, &trace);
            assert!(r.holds, "{a:?}/{b:?}: {r:?}");
        }
    }

    #[test]
    fn bound_value_arithmetic() {
        let r = BoundReport {
            adaptive_misses: 10,
            misses_a: 7,
            misses_b: 4,
            slack: 3,
            holds: true,
        };
        assert_eq!(r.best_component(), 4);
        assert_eq!(r.bound(), 11);
    }

    #[test]
    fn adversarial_phase_flipping_stays_bounded() {
        // Alternate between LRU-hostile scans and LFU-hostile shifting hot
        // sets; the adaptive policy will be wrong at each transition but
        // must stay within the bound.
        let mut trace = Vec::new();
        for phase in 0..20 {
            if phase % 2 == 0 {
                for i in 0..5000u64 {
                    trace.push(BlockAddr::new(i % 96)); // scan > 64-block cache
                }
            } else {
                for i in 0..5000u64 {
                    // shifting hot set defeats stale frequency counts
                    trace.push(BlockAddr::new(1000 + phase * 13 + (i % 24)));
                }
            }
        }
        let r = check_two_x_bound(geom(), PolicyKind::Lru, PolicyKind::LFU5, &trace);
        assert!(r.holds, "{r:?}");
    }
}
