//! Generalised N-policy adaptivity (paper Section 4.4).
//!
//! The paper evaluates a five-policy configuration (LRU, LFU, FIFO, MRU,
//! Random) — "perhaps not a realistic configuration due to its high
//! implementation overhead for five sets of extra parallel tag arrays",
//! but interesting for the achievable benefit. The generalisation is
//! straightforward: one shadow tag array per component policy, a per-set
//! window of recent exclusive misses, and Algorithm 1 run against the
//! winning component.

use cache_sim::{
    AccessOutcome, BlockAddr, CacheModel, CacheStats, Directory, Eviction, Geometry, PolicyKind,
    ReplacementPolicy, TagArray, TagMode, Way,
};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Configuration for a [`MultiAdaptiveCache`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MultiConfig {
    /// The component policies (2 or more). Ties in the history favour the
    /// earliest-listed policy.
    pub policies: Vec<PolicyKind>,
    /// Shadow tag mode (shared by all shadow arrays).
    pub shadow_tags: TagMode,
    /// Per-set history window: number of recent *informative* references
    /// (those where the components disagreed) to remember.
    pub window: usize,
}

impl MultiConfig {
    /// The paper's five-policy experiment: LRU, LFU, FIFO, MRU and Random
    /// with full shadow tags and a window of 4x the typical associativity.
    pub fn paper_five_policy() -> Self {
        MultiConfig {
            policies: PolicyKind::all().to_vec(),
            shadow_tags: TagMode::Full,
            window: 32,
        }
    }

    /// A custom policy set with full tags and a window of 32.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two policies are given.
    pub fn with_policies(policies: Vec<PolicyKind>) -> Self {
        assert!(
            policies.len() >= 2,
            "multi-policy adaptivity needs at least two policies, got {}",
            policies.len()
        );
        MultiConfig {
            policies,
            shadow_tags: TagMode::Full,
            window: 32,
        }
    }
}

/// Per-set sliding window of which policies missed on recent informative
/// references.
#[derive(Debug, Clone)]
struct WindowHistory {
    /// Ring of miss bitmasks (bit `i` set = policy `i` missed).
    ring: Vec<u32>,
    head: usize,
    len: usize,
}

impl WindowHistory {
    fn new(window: usize) -> Self {
        WindowHistory {
            ring: vec![0; window.max(1)],
            head: 0,
            len: 0,
        }
    }

    /// Records a reference outcome. Only informative outcomes (not all hit,
    /// not all missed) are stored.
    fn record(&mut self, miss_mask: u32, all_mask: u32) {
        if miss_mask == 0 || miss_mask == all_mask {
            return;
        }
        self.ring[self.head] = miss_mask;
        self.head = (self.head + 1) % self.ring.len();
        self.len = (self.len + 1).min(self.ring.len());
    }

    /// The policy with the fewest misses in the window (ties to the lowest
    /// index).
    fn winner(&self, n_policies: usize) -> usize {
        // Fixed scratch (<= 32 policies): no allocation on the miss path.
        let mut counts = [0u32; 32];
        let counts = &mut counts[..n_policies];
        for i in 0..self.len {
            let mask = self.ring[i];
            for (p, c) in counts.iter_mut().enumerate() {
                *c += (mask >> p) & 1;
            }
        }
        counts
            .iter()
            .enumerate()
            .min_by_key(|&(_, c)| c)
            .map(|(p, _)| p)
            .unwrap_or(0)
    }
}

/// An adaptive cache over an arbitrary number of component policies.
///
/// ```
/// use adaptive_cache::{MultiAdaptiveCache, MultiConfig};
/// use cache_sim::{BlockAddr, CacheModel, Geometry};
///
/// let geom = Geometry::new(8192, 64, 4).unwrap();
/// let mut cache = MultiAdaptiveCache::new(geom, MultiConfig::paper_five_policy(), 11);
/// for i in 0..10_000u64 {
///     cache.access(BlockAddr::new(i % 300), false);
/// }
/// assert!(cache.stats().hits > 0);
/// ```
pub struct MultiAdaptiveCache {
    config: MultiConfig,
    real: Directory,
    shadows: Vec<TagArray<PolicyKind>>,
    history: Vec<WindowHistory>,
    imitations: Vec<u64>,
    rng: SmallRng,
    stats: CacheStats,
    aliasing_fallbacks: u64,
    /// Reused per-access scratch for the shadow access results (one slot
    /// per component policy), so the hot path never allocates or zeroes a
    /// fixed worst-case buffer.
    scratch: Vec<cache_sim::TagAccess>,
}

impl MultiAdaptiveCache {
    /// Creates an empty multi-policy adaptive cache.
    pub fn new(geom: Geometry, config: MultiConfig, seed: u64) -> Self {
        assert!(
            config.policies.len() >= 2,
            "multi-policy adaptivity needs at least two policies"
        );
        assert!(
            config.policies.len() <= 32,
            "at most 32 component policies supported"
        );
        let shadows = config
            .policies
            .iter()
            .enumerate()
            .map(|(i, &p)| TagArray::new(geom, config.shadow_tags, p, seed ^ (i as u64 + 1)))
            .collect();
        MultiAdaptiveCache {
            scratch: vec![
                cache_sim::TagAccess {
                    hit: false,
                    way: 0,
                    evicted: None,
                };
                config.policies.len()
            ],
            imitations: vec![0; config.policies.len()],
            history: (0..geom.num_sets())
                .map(|_| WindowHistory::new(config.window))
                .collect(),
            shadows,
            real: Directory::new(geom, TagMode::Full),
            rng: SmallRng::seed_from_u64(seed),
            stats: CacheStats::default(),
            aliasing_fallbacks: 0,
            config,
        }
    }

    /// The configuration this cache was built with.
    pub fn config(&self) -> &MultiConfig {
        &self.config
    }

    /// How many replacement decisions imitated each component policy.
    pub fn imitation_counts(&self) -> &[u64] {
        &self.imitations
    }

    /// Misses each pure component policy would have suffered on this
    /// stream (from its shadow array).
    pub fn shadow_misses(&self) -> Vec<u64> {
        self.shadows.iter().map(|s| s.stats().misses).collect()
    }

    /// Number of aliasing-forced arbitrary evictions (0 with full tags).
    pub fn aliasing_fallbacks(&self) -> u64 {
        self.aliasing_fallbacks
    }

    fn choose_victim(&mut self, set: usize, winner: usize, shadow_miss: Option<Way>) -> usize {
        let shadow = &self.shadows[winner];
        let mode = shadow.tag_mode();
        // Fused pass: reduce each valid real tag once, then derive both
        // Algorithm-1 cases from masks (first-way order preserved).
        let mut reduced = [cache_sim::StoredTag::default(); cache_sim::MAX_ASSOC];
        let valid = self.real.reduced_tags(set, mode, &mut reduced);
        // Case 1: follow the winner's own eviction if that block is here.
        if let Some(ev) = shadow_miss {
            let mut same = 0u64;
            let mut m = valid;
            while m != 0 {
                let w = m.trailing_zeros() as usize;
                m &= m - 1;
                same |= u64::from(reduced[w] == ev.tag) << w;
            }
            if same != 0 {
                return same.trailing_zeros() as usize;
            }
        }
        // Case 2: converge towards the winner's contents.
        let sdir = shadow.directory();
        let mut m = valid;
        while m != 0 {
            let w = m.trailing_zeros() as usize;
            m &= m - 1;
            if !sdir.contains(set, reduced[w]) {
                return w;
            }
        }
        // Case 3: aliasing fallback.
        self.aliasing_fallbacks += 1;
        self.rng.gen_range(0..self.real.geometry().associativity())
    }
}

impl CacheModel for MultiAdaptiveCache {
    fn access(&mut self, block: BlockAddr, write: bool) -> AccessOutcome {
        let (set, stored) = self.real.locate(block);
        let full_tag = stored.raw(); // real tags are full

        let mut miss_mask = 0u32;
        for i in 0..self.shadows.len() {
            let acc = self.shadows[i].access_tag(set, full_tag);
            if !acc.hit {
                miss_mask |= 1 << i;
            }
            self.scratch[i] = acc;
        }
        let all_mask = (1u32 << self.shadows.len()) - 1;
        self.history[set].record(miss_mask, all_mask);

        if let Some(way) = self.real.find(set, stored) {
            self.stats.record(true, write);
            if write {
                self.real.mark_dirty(set, way);
            }
            return AccessOutcome::hit();
        }
        self.stats.record(false, write);

        let way = match self.real.invalid_way(set) {
            Some(w) => w,
            None => {
                let winner = self.history[set].winner(self.shadows.len());
                self.imitations[winner] += 1;
                let acc = self.scratch[winner];
                let shadow_miss = (!acc.hit).then_some(acc.evicted).flatten();
                self.choose_victim(set, winner, shadow_miss)
            }
        };

        let evicted = self.real.fill_at(set, way, stored);
        if write {
            self.real.mark_dirty(set, way);
        }
        let eviction = evicted.map(|old| {
            self.stats.evictions += 1;
            if old.dirty {
                self.stats.writebacks += 1;
            }
            Eviction {
                block: self.real.geometry().block_from_parts(old.tag.raw(), set),
                dirty: old.dirty,
            }
        });
        AccessOutcome {
            hit: false,
            eviction,
        }
    }

    fn stats(&self) -> &CacheStats {
        &self.stats
    }

    fn geometry(&self) -> &Geometry {
        self.real.geometry()
    }

    fn label(&self) -> String {
        let names: Vec<_> = self.config.policies.iter().map(|p| p.name()).collect();
        let g = self.geometry();
        format!(
            "Adaptive {} ({}KB, {}-way)",
            names.join("/"),
            g.size_bytes() / 1024,
            g.associativity()
        )
    }
}

impl fmt::Debug for MultiAdaptiveCache {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MultiAdaptiveCache")
            .field("label", &self.label())
            .field("stats", &self.stats)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cache_sim::{Address, Cache};

    #[test]
    fn five_policy_runs_and_tracks_best() {
        let geom = Geometry::new(32 * 1024, 64, 8).unwrap();
        let mut multi = MultiAdaptiveCache::new(geom, MultiConfig::paper_five_policy(), 17);
        // LRU-hostile loop.
        let blocks = (geom.size_bytes() / 64) as u64 * 3 / 2;
        for i in 0..200_000u64 {
            multi.access(BlockAddr::new(i % blocks), false);
        }
        let shadow = multi.shadow_misses();
        let best = *shadow.iter().min().unwrap();
        assert!(
            multi.stats().misses <= best * 2 + 100,
            "multi {} vs best shadow {best}",
            multi.stats().misses
        );
    }

    #[test]
    fn two_policy_multi_matches_pairwise_quality() {
        // Multi with [LRU, LFU] should be in the same quality range as the
        // dedicated two-policy implementation.
        let geom = Geometry::new(16 * 1024, 64, 4).unwrap();
        let cfg = MultiConfig::with_policies(vec![PolicyKind::Lru, PolicyKind::LFU5]);
        let mut multi = MultiAdaptiveCache::new(geom, cfg, 3);
        let mut lru = Cache::new(geom, PolicyKind::Lru, 3);
        let mut lfu = Cache::new(geom, PolicyKind::LFU5, 3);
        let blocks = (geom.size_bytes() / 64) as u64 * 2;
        for i in 0..150_000u64 {
            let b = g_block(i % blocks);
            multi.access(b, false);
            lru.access(b, false);
            lfu.access(b, false);
        }
        let best = lru.stats().misses.min(lfu.stats().misses);
        assert!(multi.stats().misses <= best * 2 + 100);
    }

    fn g_block(n: u64) -> BlockAddr {
        BlockAddr::new(n)
    }

    #[test]
    fn window_history_winner() {
        let mut h = WindowHistory::new(8);
        assert_eq!(h.winner(3), 0, "empty history ties to policy 0");
        h.record(0b011, 0b111); // policies 0,1 missed; 2 hit
        h.record(0b011, 0b111);
        assert_eq!(h.winner(3), 2);
        for _ in 0..8 {
            h.record(0b100, 0b111); // now policy 2 misses a lot
        }
        assert_ne!(h.winner(3), 2);
    }

    #[test]
    fn window_history_ignores_unanimous() {
        let mut h = WindowHistory::new(4);
        h.record(0b111, 0b111);
        h.record(0b000, 0b111);
        assert_eq!(h.len, 0);
    }

    #[test]
    #[should_panic(expected = "at least two policies")]
    fn rejects_single_policy() {
        let _ = MultiConfig::with_policies(vec![PolicyKind::Lru]);
    }

    #[test]
    fn label_lists_all_policies() {
        let geom = Geometry::new(8192, 64, 4).unwrap();
        let c = MultiAdaptiveCache::new(geom, MultiConfig::paper_five_policy(), 0);
        assert_eq!(c.label(), "Adaptive LRU/LFU/FIFO/MRU/Random (8KB, 4-way)");
    }

    #[test]
    fn imitation_counts_sum_to_replacements() {
        let geom = Geometry::new(4096, 64, 4).unwrap();
        let mut c = MultiAdaptiveCache::new(geom, MultiConfig::paper_five_policy(), 1);
        let mut x = 5u64;
        for _ in 0..50_000 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            c.access(BlockAddr::new(x % 5000), false);
        }
        let imitated: u64 = c.imitation_counts().iter().sum();
        assert_eq!(imitated, c.stats().evictions);
        let _ = Address::new(0); // keep the import exercised
    }
}
