//! Set-sampling adaptivity — the SBAR-like cache of paper Section 4.7.
//!
//! Sampling Based Adaptive Replacement (Qureshi, Lynch, Mutlu & Patt)
//! eliminates nearly all of the adaptive cache's overhead: only a few
//! **leader sets** keep duplicate (shadow) tag structures and behave like
//! the regular adaptive cache; their exclusive misses train a global
//! policy-selection counter. **Follower sets** keep no shadow tags at all.
//! Instead, policy-specific metadata (recency order *and* frequency
//! counts) is maintained for the blocks currently in the cache, so when
//! the global selector switches from, e.g., LRU to LFU, "the LFU algorithm
//! begins executing on the blocks that are currently in the cache, and
//! replaces the one with the lowest frequency".
//!
//! The SBAR-like cache forgoes the theoretical guarantees of the full
//! scheme (its contents never converge towards a component cache's), but
//! in the paper it recovers almost all of the benefit (12.5% vs 12.9%
//! average CPI improvement) at 0.16% storage overhead.

use crate::history::{HistoryKind, MissHistory};
use ac_telemetry::{DecisionEvent, EvictionCase};
use cache_sim::{
    AccessOutcome, BlockAddr, CacheModel, CacheStats, Directory, Eviction, Geometry, MetaTable,
    PolicyKind, ReplacementPolicy, TagArray, TagMode, Way,
};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::fmt;

use crate::adaptive::Component;

/// Configuration of a [`SbarCache`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SbarConfig {
    /// Component policy A (selected when the global counter favours it or
    /// ties).
    pub policy_a: PolicyKind,
    /// Component policy B.
    pub policy_b: PolicyKind,
    /// Number of leader sets (spread uniformly across the cache). Must be
    /// at least 1 and at most the number of sets.
    pub leader_sets: usize,
    /// Tag mode for the leader sets' shadow arrays (Section 4.7 also
    /// evaluates 8-bit partial tags here, shrinking overhead to 0.09%).
    pub shadow_tags: TagMode,
    /// Per-leader-set miss history (leaders run the regular adaptive
    /// algorithm locally).
    pub history: HistoryKind,
    /// Width of the global policy-selection counter.
    pub psel_bits: u32,
}

impl SbarConfig {
    /// The configuration evaluated in the paper's Section 4.7: LRU/LFU,
    /// 16 leader sets, full shadow tags in the leaders, 10-bit selector.
    pub fn paper_default() -> Self {
        SbarConfig {
            policy_a: PolicyKind::Lru,
            policy_b: PolicyKind::LFU5,
            leader_sets: 16,
            shadow_tags: TagMode::Full,
            history: HistoryKind::paper_default(),
            psel_bits: 10,
        }
    }

    /// Paper variant with 8-bit partial tags in the leader shadow arrays.
    pub fn paper_partial_tags() -> Self {
        SbarConfig {
            shadow_tags: TagMode::PartialLow { bits: 8 },
            ..Self::paper_default()
        }
    }
}

/// The SBAR-like set-sampling adaptive cache.
///
/// ```
/// use adaptive_cache::{SbarCache, SbarConfig};
/// use cache_sim::{BlockAddr, CacheModel, Geometry};
///
/// let geom = Geometry::new(512 * 1024, 64, 8).unwrap();
/// let mut cache = SbarCache::new(geom, SbarConfig::paper_default(), 21);
/// for i in 0..50_000u64 {
///     cache.access(BlockAddr::new(i % 9000), false);
/// }
/// assert!(cache.stats().accesses == 50_000);
/// ```
pub struct SbarCache {
    config: SbarConfig,
    real: Directory,
    /// Both policies' metadata maintained for all resident blocks.
    meta_a: MetaTable<PolicyKind>,
    meta_b: MetaTable<PolicyKind>,
    /// `leader_index[set]` = Some(slot) if `set` is a leader.
    leader_index: Vec<Option<u32>>,
    /// Shadow arrays covering the whole geometry but only ever accessed
    /// for leader sets.
    shadow_a: TagArray<PolicyKind>,
    shadow_b: TagArray<PolicyKind>,
    /// Per-leader miss history (indexed by leader slot).
    history: Vec<MissHistory>,
    /// Global saturating policy selector; above midpoint = imitate B.
    psel: u32,
    psel_max: u32,
    rng: SmallRng,
    stats: CacheStats,
    aliasing_fallbacks: u64,
    switches: u64,
    last_global: Component,
    leader_votes: u64,
    imitations_a: u64,
    imitations_b: u64,
}

impl SbarCache {
    /// Creates an empty SBAR-like cache.
    ///
    /// # Panics
    ///
    /// Panics if `config.leader_sets` is 0 or exceeds the set count.
    pub fn new(geom: Geometry, config: SbarConfig, seed: u64) -> Self {
        let sets = geom.num_sets();
        assert!(
            config.leader_sets >= 1 && config.leader_sets <= sets,
            "leader_sets must be in 1..={sets}, got {}",
            config.leader_sets
        );
        let mut leader_index = vec![None; sets];
        let stride = sets / config.leader_sets;
        for slot in 0..config.leader_sets {
            // Offset into the stride so leaders are not all set 0-aligned.
            let set = slot * stride + stride / 2;
            leader_index[set.min(sets - 1)] = Some(slot as u32);
        }
        let assoc = geom.associativity();
        let psel_max = (1u32 << config.psel_bits) - 1;
        SbarCache {
            real: Directory::new(geom, TagMode::Full),
            meta_a: MetaTable::new(config.policy_a, sets, assoc),
            meta_b: MetaTable::new(config.policy_b, sets, assoc),
            leader_index,
            shadow_a: TagArray::new(geom, config.shadow_tags, config.policy_a, seed ^ 0xA),
            shadow_b: TagArray::new(geom, config.shadow_tags, config.policy_b, seed ^ 0xB),
            history: (0..config.leader_sets)
                .map(|_| MissHistory::new(config.history))
                .collect(),
            psel: psel_max / 2,
            psel_max,
            rng: SmallRng::seed_from_u64(seed),
            stats: CacheStats::default(),
            aliasing_fallbacks: 0,
            switches: 0,
            last_global: Component::A,
            leader_votes: 0,
            imitations_a: 0,
            imitations_b: 0,
            config,
        }
    }

    /// The configuration this cache was built with.
    pub fn config(&self) -> &SbarConfig {
        &self.config
    }

    /// The component the global selector currently favours.
    pub fn global_winner(&self) -> Component {
        if self.psel > self.psel_max / 2 {
            Component::B
        } else {
            Component::A
        }
    }

    /// Number of times the global selector changed its mind.
    pub fn policy_switches(&self) -> u64 {
        self.switches
    }

    /// The current value of the global policy-selector register.
    pub fn psel(&self) -> u32 {
        self.psel
    }

    /// Total leader votes that actually moved the selector (ties in
    /// either direction do not train and are not counted).
    pub fn leader_votes(&self) -> u64 {
        self.leader_votes
    }

    /// Total replacement decisions that imitated each component —
    /// leaders via Algorithm 1, followers via the global winner — as
    /// `(a, b)`.
    pub fn imitation_totals(&self) -> (u64, u64) {
        (self.imitations_a, self.imitations_b)
    }

    /// Aliasing-forced arbitrary evictions in leader sets (0 with full
    /// leader tags).
    pub fn aliasing_fallbacks(&self) -> u64 {
        self.aliasing_fallbacks
    }

    /// Whether `set` is a leader set.
    pub fn is_leader(&self, set: usize) -> bool {
        self.leader_index[set].is_some()
    }

    fn bump_psel(&mut self, set: usize, slot: usize, a_missed: bool, b_missed: bool) {
        if a_missed == b_missed {
            return; // ties in either direction do not train the selector
        }
        if a_missed {
            self.psel = (self.psel + 1).min(self.psel_max);
        } else {
            self.psel = self.psel.saturating_sub(1);
        }
        self.leader_votes += 1;
        let now = self.global_winner();
        if now != self.last_global {
            self.switches += 1;
            self.last_global = now;
        }
        ac_telemetry::decision(|| DecisionEvent::LeaderVote {
            set: set as u32,
            slot: slot as u32,
            psel: self.psel,
            global: now.telemetry(),
        });
    }

    /// Leader-set replacement: the regular adaptive Algorithm 1 against the
    /// local shadow arrays.
    fn leader_victim(
        &mut self,
        set: usize,
        slot: usize,
        acc_a: (bool, Option<Way>),
        acc_b: (bool, Option<Way>),
    ) -> usize {
        let winner = self.history[slot].winner();
        match winner {
            Component::A => self.imitations_a += 1,
            Component::B => self.imitations_b += 1,
        }
        let (way, case) = self.leader_victim_inner(set, winner, acc_a, acc_b);
        ac_telemetry::decision(|| DecisionEvent::Imitation {
            set: set as u32,
            component: winner.telemetry(),
            case,
        });
        way
    }

    fn leader_victim_inner(
        &mut self,
        set: usize,
        winner: Component,
        acc_a: (bool, Option<Way>),
        acc_b: (bool, Option<Way>),
    ) -> (usize, EvictionCase) {
        let (shadow, miss) = match winner {
            Component::A => (&self.shadow_a, acc_a),
            Component::B => (&self.shadow_b, acc_b),
        };
        let mode = shadow.tag_mode();
        // Fused pass: reduce each valid real tag to the shadow
        // representation once, then derive both Algorithm-1 cases from
        // masks over the reduced tags (first-way order preserved).
        let mut reduced = [cache_sim::StoredTag::default(); cache_sim::MAX_ASSOC];
        let valid = self.real.reduced_tags(set, mode, &mut reduced);
        if let (true, Some(ev)) = (!miss.0, miss.1) {
            // winner missed (miss.0 = hit flag)
            let mut same = 0u64;
            let mut m = valid;
            while m != 0 {
                let w = m.trailing_zeros() as usize;
                m &= m - 1;
                same |= u64::from(reduced[w] == ev.tag) << w;
            }
            if same != 0 {
                return (same.trailing_zeros() as usize, EvictionCase::SameVictim);
            }
        }
        let sdir = shadow.directory();
        let mut m = valid;
        while m != 0 {
            let w = m.trailing_zeros() as usize;
            m &= m - 1;
            if !sdir.contains(set, reduced[w]) {
                return (w, EvictionCase::NotInShadow);
            }
        }
        self.aliasing_fallbacks += 1;
        (
            self.rng.gen_range(0..self.real.geometry().associativity()),
            EvictionCase::AliasFallback,
        )
    }

    /// Follower-set replacement: apply the globally selected policy to the
    /// blocks currently resident, using its continuously maintained
    /// metadata.
    fn follower_victim(&mut self, set: usize) -> usize {
        let global = self.global_winner();
        match global {
            Component::A => self.imitations_a += 1,
            Component::B => self.imitations_b += 1,
        }
        ac_telemetry::decision(|| DecisionEvent::Imitation {
            set: set as u32,
            component: global.telemetry(),
            case: EvictionCase::Follower,
        });
        match global {
            Component::A => self.meta_a.victim(set, &mut self.rng),
            Component::B => self.meta_b.victim(set, &mut self.rng),
        }
    }
}

impl CacheModel for SbarCache {
    fn access(&mut self, block: BlockAddr, write: bool) -> AccessOutcome {
        let (set, stored) = self.real.locate(block);
        let full_tag = stored.raw(); // real tags are full
        let leader = self.leader_index[set].map(|s| s as usize);

        // Leaders sample both component policies and train the selector.
        let mut acc_a = (true, None);
        let mut acc_b = (true, None);
        if let Some(slot) = leader {
            let a = self.shadow_a.access_tag(set, full_tag);
            let b = self.shadow_b.access_tag(set, full_tag);
            acc_a = (a.hit, a.evicted);
            acc_b = (b.hit, b.evicted);
            self.history[slot].record(!a.hit, !b.hit);
            self.bump_psel(set, slot, !a.hit, !b.hit);
        }

        if let Some(way) = self.real.find(set, stored) {
            self.stats.record(true, write);
            self.meta_a.on_hit(set, way);
            self.meta_b.on_hit(set, way);
            if write {
                self.real.mark_dirty(set, way);
            }
            return AccessOutcome::hit();
        }
        self.stats.record(false, write);

        let way = match self.real.invalid_way(set) {
            Some(w) => w,
            None => match leader {
                Some(slot) => self.leader_victim(set, slot, acc_a, acc_b),
                None => self.follower_victim(set),
            },
        };

        let evicted = self.real.fill_at(set, way, stored);
        self.meta_a.on_fill(set, way);
        self.meta_b.on_fill(set, way);
        if write {
            self.real.mark_dirty(set, way);
        }
        let eviction = evicted.map(|old| {
            self.stats.evictions += 1;
            if old.dirty {
                self.stats.writebacks += 1;
            }
            Eviction {
                block: self.real.geometry().block_from_parts(old.tag.raw(), set),
                dirty: old.dirty,
            }
        });
        AccessOutcome {
            hit: false,
            eviction,
        }
    }

    fn stats(&self) -> &CacheStats {
        &self.stats
    }

    fn geometry(&self) -> &Geometry {
        self.real.geometry()
    }

    fn label(&self) -> String {
        let g = self.geometry();
        format!(
            "SBAR {}/{} ({}KB, {}-way, {} leaders)",
            self.config.policy_a.name(),
            self.config.policy_b.name(),
            g.size_bytes() / 1024,
            g.associativity(),
            self.config.leader_sets
        )
    }

    fn timeline_probe(&self) -> ac_telemetry::TimelineProbe {
        ac_telemetry::TimelineProbe {
            accesses: self.stats.accesses,
            hits: self.stats.hits,
            misses: self.stats.misses,
            shadow_a_misses: self.shadow_a.stats().misses,
            shadow_b_misses: self.shadow_b.stats().misses,
            excl_a_misses: 0,
            excl_b_misses: 0,
            imitations_a: self.imitations_a,
            imitations_b: self.imitations_b,
            aliasing_fallbacks: self.aliasing_fallbacks,
            leader_votes: self.leader_votes,
            psel: Some(self.psel),
        }
    }
}

impl fmt::Debug for SbarCache {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SbarCache")
            .field("label", &self.label())
            .field("stats", &self.stats)
            .field("global_winner", &self.global_winner())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cache_sim::Cache;

    #[test]
    fn leaders_are_spread_out() {
        let geom = Geometry::new(512 * 1024, 64, 8).unwrap(); // 1024 sets
        let c = SbarCache::new(geom, SbarConfig::paper_default(), 0);
        let leaders: Vec<_> = (0..1024).filter(|&s| c.is_leader(s)).collect();
        assert_eq!(leaders.len(), 16);
        // Uniformly strided (64 apart, offset 32).
        assert_eq!(leaders[0], 32);
        assert_eq!(leaders[1], 96);
    }

    /// LFU-friendly: hot blocks accessed in bursts of three, interleaved
    /// with a long scan (LRU thrashes the hot blocks between bursts,
    /// LFU's counters protect them).
    fn hot_scan_block(i: u64) -> BlockAddr {
        let group = i / 4;
        if i % 4 < 3 {
            BlockAddr::new(group % 768)
        } else {
            BlockAddr::new(768 + group % 8192)
        }
    }

    /// LRU-friendly: a hot window that shifts over time. Blocks from old
    /// windows keep high frequency counts but never return, polluting LFU;
    /// LRU adapts immediately.
    fn shifting_hot_block(i: u64, x: u64) -> BlockAddr {
        let phase = i / 20_000;
        BlockAddr::new(phase * 400 + x % 512)
    }

    #[test]
    fn selector_moves_toward_better_policy() {
        let geom = Geometry::new(64 * 1024, 64, 8).unwrap();
        let mut c = SbarCache::new(geom, SbarConfig::paper_default(), 5);
        for i in 0..300_000u64 {
            c.access(hot_scan_block(i), false);
        }
        assert_eq!(c.global_winner(), Component::B);
        // And the cache should beat plain LRU clearly.
        let mut lru = Cache::new(geom, PolicyKind::Lru, 5);
        for i in 0..300_000u64 {
            lru.access(hot_scan_block(i), false);
        }
        assert!(c.stats().misses < lru.stats().misses);
    }

    #[test]
    fn shifting_hot_set_keeps_selector_at_lru() {
        let geom = Geometry::new(64 * 1024, 64, 8).unwrap();
        let mut c = SbarCache::new(geom, SbarConfig::paper_default(), 5);
        let mut x = 77u64;
        for i in 0..200_000u64 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            c.access(shifting_hot_block(i, x), false);
        }
        assert_eq!(c.global_winner(), Component::A);
    }

    #[test]
    fn partial_leader_tags_work() {
        let geom = Geometry::new(64 * 1024, 64, 8).unwrap();
        let mut c = SbarCache::new(geom, SbarConfig::paper_partial_tags(), 5);
        for i in 0..200_000u64 {
            c.access(hot_scan_block(i), false);
        }
        assert_eq!(c.global_winner(), Component::B);
    }

    #[test]
    #[should_panic(expected = "leader_sets")]
    fn rejects_zero_leaders() {
        let geom = Geometry::new(4096, 64, 4).unwrap();
        let cfg = SbarConfig {
            leader_sets: 0,
            ..SbarConfig::paper_default()
        };
        let _ = SbarCache::new(geom, cfg, 0);
    }

    #[test]
    fn switch_counter_counts_mind_changes() {
        let geom = Geometry::new(16 * 1024, 64, 4).unwrap();
        let mut c = SbarCache::new(geom, SbarConfig::paper_default(), 1);
        assert_eq!(c.policy_switches(), 0);
        // Alternate hostile phases; expect at least one switch. The
        // LRU-friendly phase is a completely shifting window sized well
        // under the 16 KB cache: stale high-count blocks poison LFU while
        // LRU adapts immediately.
        let mut x = 9u64;
        for phase in 0..4u64 {
            for i in 0..100_000u64 {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                let b = if phase % 2 == 0 {
                    // LFU-friendly hot/scan mix scaled to the 16 KB cache
                    // (3 hot blocks per 4-way set + long scan).
                    let group = i / 4;
                    if i % 4 < 3 {
                        BlockAddr::new(group % 192)
                    } else {
                        BlockAddr::new(192 + group % 2048)
                    }
                } else {
                    let window = (phase * 100_000 + i) / 5_000;
                    BlockAddr::new(window * 192 + x % 192) // LRU-friendly
                };
                c.access(b, false);
            }
        }
        assert!(c.policy_switches() >= 1);
    }

    #[test]
    fn label_mentions_leaders() {
        let geom = Geometry::new(512 * 1024, 64, 8).unwrap();
        let c = SbarCache::new(geom, SbarConfig::paper_default(), 0);
        assert_eq!(c.label(), "SBAR LRU/LFU (512KB, 8-way, 16 leaders)");
    }
}
