//! Per-set miss-history buffers (paper Section 2.2).
//!
//! The history buffer answers one question per set: *which component policy
//! has been missing less lately?* The paper describes three realisations:
//!
//! * a **bit-vector** of the last `m` *exclusive* misses (misses suffered by
//!   exactly one of the two component policies) — the implementation the
//!   paper evaluates, with `m` equal to the associativity or a small
//!   multiple of it;
//! * **full counters** of all misses so far — the variant used for the
//!   theoretical 2x bound ("easiest to reason about");
//! * a **saturating counter** approximation.

use crate::adaptive::Component;
use serde::{Deserialize, Serialize};

/// Which kind of per-set miss history to keep.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum HistoryKind {
    /// Bit-vector of the last `m` exclusive misses (the paper's default,
    /// `m` = associativity for the evaluated 8-way cache). `m` must be
    /// 1..=64.
    BitVector {
        /// Window length in recorded exclusive misses.
        m: u32,
    },
    /// Unbounded per-policy miss counters ("since the beginning of time"):
    /// the variant with the proven 2x bound, "neither realistic nor likely
    /// to adapt quickly", kept for theory experiments.
    Counters,
    /// A `bits`-wide saturating up/down counter stepped on exclusive
    /// misses. `bits` must be 2..=16.
    Saturating {
        /// Counter width in bits.
        bits: u32,
    },
}

impl HistoryKind {
    /// The paper's evaluated configuration for an 8-way cache: `m = 8`.
    pub const fn paper_default() -> Self {
        HistoryKind::BitVector { m: 8 }
    }

    /// Storage bits per set (for the overhead model). The paper charges
    /// 8 bits per set for its `m = 8` bit-vector (1 KB over 1024 sets).
    pub fn bits_per_set(self) -> u32 {
        match self {
            HistoryKind::BitVector { m } => m,
            // Two "large counters": charge 2 x 32 as a nominal figure.
            HistoryKind::Counters => 64,
            HistoryKind::Saturating { bits } => bits,
        }
    }
}

/// One set's miss history.
///
/// Updated on every reference via [`MissHistory::record`]; consulted on
/// real-cache misses via [`MissHistory::winner`].
///
/// ```
/// use adaptive_cache::{Component, HistoryKind, MissHistory};
///
/// let mut h = MissHistory::new(HistoryKind::BitVector { m: 4 });
/// assert_eq!(h.winner(), Component::A, "ties favour A");
/// h.record(true, false); // A missed, B hit
/// assert_eq!(h.winner(), Component::B);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MissHistory {
    kind: HistoryKind,
    state: State,
}

#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
enum State {
    /// `bits`: 1 = A missed, 0 = B missed; `len` valid bits; `head` is the
    /// index of the next slot in the ring.
    Bits { bits: u64, head: u32, len: u32 },
    Counters { a: u64, b: u64 },
    /// Biased counter: above midpoint means A has been missing more.
    Sat { value: u32, max: u32 },
}

impl MissHistory {
    /// Creates an empty history of the given kind.
    ///
    /// # Panics
    ///
    /// Panics if a [`HistoryKind::BitVector`] window is 0 or larger than 64
    /// or a [`HistoryKind::Saturating`] width is outside 2..=16.
    pub fn new(kind: HistoryKind) -> Self {
        let state = match kind {
            HistoryKind::BitVector { m } => {
                assert!(
                    (1..=64).contains(&m),
                    "bit-vector history window must be 1..=64, got {m}"
                );
                State::Bits {
                    bits: 0,
                    head: 0,
                    len: 0,
                }
            }
            HistoryKind::Counters => State::Counters { a: 0, b: 0 },
            HistoryKind::Saturating { bits } => {
                assert!(
                    (2..=16).contains(&bits),
                    "saturating history width must be 2..=16 bits, got {bits}"
                );
                let max = (1u32 << bits) - 1;
                State::Sat {
                    value: max / 2 + 1, // midpoint: no bias
                    max,
                }
            }
        };
        MissHistory { kind, state }
    }

    /// The history's kind.
    pub fn kind(&self) -> HistoryKind {
        self.kind
    }

    /// Records the outcome of one reference in the two component caches.
    ///
    /// For the bit-vector and saturating variants only *exclusive* misses
    /// (`a_missed != b_missed`) are recorded, as in the paper: "if both
    /// component policies would have missed, then there is no need to
    /// record this in the history".
    #[inline]
    pub fn record(&mut self, a_missed: bool, b_missed: bool) {
        match &mut self.state {
            State::Bits { bits, head, len } => {
                if a_missed != b_missed {
                    let m = match self.kind {
                        HistoryKind::BitVector { m } => m,
                        _ => unreachable!(),
                    };
                    let bit = u64::from(a_missed); // 1 = A missed
                    *bits = (*bits & !(1u64 << *head)) | (bit << *head);
                    // `head` stays < m, so the wrap is a compare rather
                    // than the integer division `% m` would emit.
                    *head = if *head + 1 == m { 0 } else { *head + 1 };
                    *len = (*len + 1).min(m);
                }
            }
            State::Counters { a, b } => {
                if a_missed {
                    *a += 1;
                }
                if b_missed {
                    *b += 1;
                }
            }
            State::Sat { value, max } => {
                if a_missed && !b_missed {
                    *value = (*value + 1).min(*max);
                } else if b_missed && !a_missed {
                    *value = value.saturating_sub(1);
                }
            }
        }
    }

    /// Misses charged to each component within the current window, as
    /// `(a, b)`.
    pub fn window_misses(&self) -> (u64, u64) {
        match &self.state {
            State::Bits { bits, len, .. } => {
                // The `len` valid bits always occupy positions 0..len:
                // before the ring first wraps, `len == head`; afterwards
                // `len == m` and all m positions are live.
                let masked = if *len >= 64 {
                    *bits
                } else {
                    *bits & ((1u64 << *len) - 1)
                };
                let a = masked.count_ones() as u64;
                (a, u64::from(*len) - a)
            }
            State::Counters { a, b } => (*a, *b),
            State::Sat { value, max } => {
                // Present the bias as pseudo-counts around the midpoint.
                let mid = *max / 2 + 1;
                if *value >= mid {
                    (u64::from(*value - mid), 0)
                } else {
                    (0, u64::from(mid - *value))
                }
            }
        }
    }

    /// The component to imitate: the one with fewer recorded misses.
    /// Ties favour [`Component::A`] (as in the paper's Figure 2 example).
    pub fn winner(&self) -> Component {
        let (a, b) = self.window_misses();
        if a > b {
            Component::B
        } else {
            Component::A
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_history_ties_to_a() {
        for kind in [
            HistoryKind::paper_default(),
            HistoryKind::Counters,
            HistoryKind::Saturating { bits: 8 },
        ] {
            assert_eq!(MissHistory::new(kind).winner(), Component::A, "{kind:?}");
        }
    }

    #[test]
    fn bitvector_tracks_recent_exclusive_misses() {
        let mut h = MissHistory::new(HistoryKind::BitVector { m: 8 });
        for _ in 0..5 {
            h.record(true, false); // A misses
        }
        assert_eq!(h.winner(), Component::B);
        for _ in 0..8 {
            h.record(false, true); // B misses, window fills with B
        }
        assert_eq!(h.winner(), Component::A);
        assert_eq!(h.window_misses(), (0, 8));
    }

    #[test]
    fn bitvector_ignores_shared_outcomes() {
        let mut h = MissHistory::new(HistoryKind::BitVector { m: 4 });
        h.record(true, true);
        h.record(false, false);
        assert_eq!(h.window_misses(), (0, 0));
        assert_eq!(h.winner(), Component::A);
    }

    #[test]
    fn bitvector_window_slides() {
        let mut h = MissHistory::new(HistoryKind::BitVector { m: 2 });
        h.record(true, false);
        h.record(true, false);
        assert_eq!(h.window_misses(), (2, 0));
        h.record(false, true); // overwrites the oldest A-miss
        assert_eq!(h.window_misses(), (1, 1));
        assert_eq!(h.winner(), Component::A, "tie inside the window");
    }

    #[test]
    fn counters_accumulate_all_misses() {
        let mut h = MissHistory::new(HistoryKind::Counters);
        h.record(true, true); // counted for both (unlike bit-vector)
        h.record(true, false);
        assert_eq!(h.window_misses(), (2, 1));
        assert_eq!(h.winner(), Component::B);
    }

    #[test]
    fn saturating_biases_and_saturates() {
        let mut h = MissHistory::new(HistoryKind::Saturating { bits: 2 });
        for _ in 0..10 {
            h.record(true, false);
        }
        assert_eq!(h.winner(), Component::B);
        for _ in 0..10 {
            h.record(false, true);
        }
        assert_eq!(h.winner(), Component::A);
    }

    #[test]
    fn full_window_of_64_counts_correctly() {
        let mut h = MissHistory::new(HistoryKind::BitVector { m: 64 });
        for _ in 0..64 {
            h.record(true, false);
        }
        assert_eq!(h.window_misses(), (64, 0));
        for _ in 0..64 {
            h.record(false, true);
        }
        assert_eq!(h.window_misses(), (0, 64));
    }

    #[test]
    #[should_panic(expected = "bit-vector history window")]
    fn rejects_oversized_window() {
        let _ = MissHistory::new(HistoryKind::BitVector { m: 65 });
    }

    #[test]
    fn bits_per_set_accounting() {
        assert_eq!(HistoryKind::paper_default().bits_per_set(), 8);
        assert_eq!(HistoryKind::Saturating { bits: 10 }.bits_per_set(), 10);
    }
}
