//! DIP — Dynamic Insertion Policy (Qureshi et al., ISCA 2007) — as a
//! related-work comparison point.
//!
//! The paper's Section 4.7 evaluates the SBAR set-sampling idea from
//! Qureshi et al.'s MLP work; one year after MICRO 2006, the same group's
//! *set dueling* matured into DIP, which became the more influential
//! follow-up to adaptive replacement. Implementing it here lets the
//! benchmark harness compare the paper's scheme against its successor:
//!
//! * **LIP** inserts incoming blocks at the *LRU* position instead of the
//!   MRU position, so single-use scan blocks evict themselves;
//! * **BIP** promotes an inserted block to MRU only every 32nd fill,
//!   keeping a trickle of adaptation;
//! * **DIP** set-duels LRU-insertion against BIP: a few dedicated leader
//!   sets always use one or the other and a PSEL counter picks the policy
//!   for the follower sets.
//!
//! DIP needs *no* shadow tags at all (cheaper than even SBAR) but can only
//! choose between insertion behaviours of one recency order, whereas the
//! adaptive cache can combine arbitrary policies.

use cache_sim::{
    AccessOutcome, BlockAddr, CacheModel, CacheStats, Directory, Eviction, Geometry, MetaTable,
    PolicyKind, TagMode,
};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Configuration of a [`DipCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DipConfig {
    /// Dedicated leader sets *per policy* (LRU-insertion leaders and
    /// BIP leaders).
    pub leaders_per_policy: usize,
    /// BIP promotes to MRU once every `bip_epsilon` fills.
    pub bip_epsilon: u32,
    /// PSEL width in bits.
    pub psel_bits: u32,
}

impl DipConfig {
    /// The ISCA 2007 configuration: 32 leader sets per policy,
    /// epsilon = 1/32, 10-bit PSEL.
    pub fn paper_default() -> Self {
        DipConfig {
            leaders_per_policy: 32,
            bip_epsilon: 32,
            psel_bits: 10,
        }
    }
}

/// Which insertion behaviour a set uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SetRole {
    LeaderLru,
    LeaderBip,
    Follower,
}

/// A DIP-managed cache: LRU victim selection with dueling insertion
/// policies.
///
/// ```
/// use adaptive_cache::{DipCache, DipConfig};
/// use cache_sim::{BlockAddr, CacheModel, Geometry};
///
/// let geom = Geometry::new(512 * 1024, 64, 8).unwrap();
/// let mut cache = DipCache::new(geom, DipConfig::paper_default(), 3);
/// for i in 0..50_000u64 {
///     cache.access(BlockAddr::new(i % 9000), false);
/// }
/// assert_eq!(cache.stats().accesses, 50_000);
/// ```
pub struct DipCache {
    config: DipConfig,
    real: Directory,
    /// Recency order (victims are always the LRU block).
    recency: MetaTable<PolicyKind>,
    roles: Vec<SetRole>,
    /// Above midpoint: BIP is winning.
    psel: u32,
    psel_max: u32,
    /// Fill counter driving BIP's deterministic 1-in-epsilon promotion.
    fills: u64,
    /// Leader-set misses that trained the dueling counter.
    duel_votes: u64,
    /// Seeded RNG for the policy victim call (LRU never consults it, so
    /// DIP remains fully deterministic).
    rng: SmallRng,
    stats: CacheStats,
}

impl DipCache {
    /// Creates an empty DIP cache.
    ///
    /// # Panics
    ///
    /// Panics if the leader sets do not fit the geometry or
    /// `bip_epsilon` is zero.
    pub fn new(geom: Geometry, config: DipConfig, seed: u64) -> Self {
        let sets = geom.num_sets();
        assert!(config.bip_epsilon >= 1, "bip_epsilon must be >= 1");
        assert!(
            config.leaders_per_policy >= 1 && config.leaders_per_policy * 2 <= sets,
            "need 1..={} leader sets per policy, got {}",
            sets / 2,
            config.leaders_per_policy
        );
        // Complement-select style leader placement: interleave the two
        // leader kinds uniformly across the index space.
        let mut roles = vec![SetRole::Follower; sets];
        let stride = sets / (config.leaders_per_policy * 2);
        for i in 0..config.leaders_per_policy {
            roles[(2 * i) * stride] = SetRole::LeaderLru;
            roles[(2 * i + 1) * stride] = SetRole::LeaderBip;
        }
        let psel_max = (1u32 << config.psel_bits) - 1;
        DipCache {
            real: Directory::new(geom, TagMode::Full),
            recency: MetaTable::new(PolicyKind::Lru, sets, geom.associativity()),
            roles,
            psel: psel_max / 2,
            psel_max,
            fills: 0,
            duel_votes: 0,
            rng: SmallRng::seed_from_u64(seed),
            stats: CacheStats::default(),
            config,
        }
    }

    /// The configuration this cache was built with.
    pub fn config(&self) -> &DipConfig {
        &self.config
    }

    /// Whether the follower sets currently use BIP insertion.
    pub fn bip_selected(&self) -> bool {
        self.psel > self.psel_max / 2
    }

    /// The current value of the dueling counter.
    pub fn psel(&self) -> u32 {
        self.psel
    }

    /// Total leader-set misses that trained the dueling counter.
    pub fn duel_votes(&self) -> u64 {
        self.duel_votes
    }

    /// Whether this set's insertion policy is BIP right now.
    fn uses_bip(&self, set: usize) -> bool {
        match self.roles[set] {
            SetRole::LeaderLru => false,
            SetRole::LeaderBip => true,
            SetRole::Follower => self.bip_selected(),
        }
    }

    /// Demote `way` to the LRU position of `set` (insertion at LRU):
    /// give it a metadata word below the current minimum.
    fn demote_to_lru(&mut self, set: usize, way: usize) {
        let min = self
            .recency
            .set_meta(set)
            .iter()
            .filter(|&(w, _)| w != way)
            .map(|(_, word)| word)
            .min()
            .unwrap_or(1);
        self.recency
            .set_meta_mut(set)
            .set_word(way, min.saturating_sub(1));
    }
}

impl CacheModel for DipCache {
    fn access(&mut self, block: BlockAddr, write: bool) -> AccessOutcome {
        let (set, stored) = self.real.locate(block);
        if let Some(way) = self.real.find(set, stored) {
            self.stats.record(true, write);
            // Writes reaching an L2 are L1 writebacks, not demand reuse;
            // promoting on them would let every dirty scan block rotate
            // the BIP-retained set out. Real DIP deployments leave
            // replacement state untouched on writebacks.
            if !write {
                self.recency.on_hit(set, way);
            }
            if write {
                self.real.mark_dirty(set, way);
            }
            return AccessOutcome::hit();
        }
        self.stats.record(false, write);

        // Train the dueling counter on leader-set misses.
        match self.roles[set] {
            SetRole::LeaderLru => self.psel = (self.psel + 1).min(self.psel_max),
            SetRole::LeaderBip => self.psel = self.psel.saturating_sub(1),
            SetRole::Follower => {}
        }
        if self.roles[set] != SetRole::Follower {
            self.duel_votes += 1;
            ac_telemetry::decision(|| ac_telemetry::DecisionEvent::DuelVote {
                set: set as u32,
                bip_leader: self.roles[set] == SetRole::LeaderBip,
                psel: self.psel,
            });
        }

        let way = match self.real.invalid_way(set) {
            Some(w) => w,
            None => {
                // Victims are always chosen by recency (LRU).
                self.recency.victim(set, &mut self.rng)
            }
        };
        let evicted = self.real.fill_at(set, way, stored);
        self.fills += 1;
        // Insertion policy: MRU (normal LRU), or LRU-position (BIP)
        // with a deterministic 1-in-epsilon MRU promotion.
        self.recency.on_fill(set, way);
        if self.uses_bip(set)
            && !self
                .fills
                .is_multiple_of(u64::from(self.config.bip_epsilon))
        {
            self.demote_to_lru(set, way);
        }
        if write {
            self.real.mark_dirty(set, way);
        }
        let eviction = evicted.map(|old| {
            self.stats.evictions += 1;
            if old.dirty {
                self.stats.writebacks += 1;
            }
            Eviction {
                block: self.real.geometry().block_from_parts(old.tag.raw(), set),
                dirty: old.dirty,
            }
        });
        AccessOutcome {
            hit: false,
            eviction,
        }
    }

    fn stats(&self) -> &CacheStats {
        &self.stats
    }

    fn geometry(&self) -> &Geometry {
        self.real.geometry()
    }

    fn label(&self) -> String {
        let g = self.geometry();
        format!(
            "DIP ({}KB, {}-way, {} leaders/policy)",
            g.size_bytes() / 1024,
            g.associativity(),
            self.config.leaders_per_policy
        )
    }

    fn timeline_probe(&self) -> ac_telemetry::TimelineProbe {
        ac_telemetry::TimelineProbe {
            accesses: self.stats.accesses,
            hits: self.stats.hits,
            misses: self.stats.misses,
            leader_votes: self.duel_votes,
            psel: Some(self.psel),
            ..ac_telemetry::TimelineProbe::default()
        }
    }
}

impl fmt::Debug for DipCache {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DipCache")
            .field("label", &self.label())
            .field("stats", &self.stats)
            .field("bip_selected", &self.bip_selected())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn geom() -> Geometry {
        Geometry::new(64 * 1024, 64, 8).unwrap()
    }

    #[test]
    fn leader_layout() {
        let c = DipCache::new(geom(), DipConfig::paper_default(), 0);
        let lru = c.roles.iter().filter(|r| **r == SetRole::LeaderLru).count();
        let bip = c.roles.iter().filter(|r| **r == SetRole::LeaderBip).count();
        assert_eq!(lru, 32);
        assert_eq!(bip, 32);
    }

    #[test]
    fn behaves_like_lru_on_friendly_streams() {
        // A working set that fits: DIP must not lose to plain LRU.
        let mut dip = DipCache::new(geom(), DipConfig::paper_default(), 0);
        let mut lru = cache_sim::Cache::new(geom(), PolicyKind::Lru, 0);
        for i in 0..200_000u64 {
            let b = BlockAddr::new((i / 8) % 800);
            dip.access(b, false);
            lru.access(b, false);
        }
        let (d, l) = (dip.stats().misses, lru.stats().misses);
        assert!(
            (d as f64) < (l as f64) * 1.05 + 100.0,
            "DIP {d} vs LRU {l} on an LRU-friendly stream"
        );
    }

    #[test]
    fn selects_bip_and_wins_on_thrashing_scans() {
        // A cyclic scan slightly larger than the cache: pure LRU gets 0%
        // hits; BIP retains most of the cache. DIP must switch to BIP and
        // clearly beat LRU.
        let blocks = (64 * 1024 / 64) * 3 / 2; // 1.5x the cache
        let mut dip = DipCache::new(geom(), DipConfig::paper_default(), 0);
        let mut lru = cache_sim::Cache::new(geom(), PolicyKind::Lru, 0);
        for i in 0..600_000u64 {
            let b = BlockAddr::new(i % blocks as u64);
            dip.access(b, false);
            lru.access(b, false);
        }
        assert!(dip.bip_selected(), "DIP must select BIP under thrashing");
        assert!(
            dip.stats().misses * 10 < lru.stats().misses * 9,
            "DIP {} vs LRU {}",
            dip.stats().misses,
            lru.stats().misses
        );
    }

    #[test]
    #[should_panic(expected = "leader sets")]
    fn rejects_oversized_leaders() {
        let g = Geometry::new(4096, 64, 4).unwrap(); // 16 sets
        let _ = DipCache::new(
            g,
            DipConfig {
                leaders_per_policy: 16,
                ..DipConfig::paper_default()
            },
            0,
        );
    }

    #[test]
    fn label_and_debug() {
        let c = DipCache::new(geom(), DipConfig::paper_default(), 0);
        assert!(c.label().starts_with("DIP"));
        assert!(format!("{c:?}").contains("bip_selected"));
    }
}
