//! SRAM storage-overhead model (paper Section 3.2).
//!
//! Reproduces the paper's storage arithmetic exactly:
//!
//! * a conventional 512 KB / 64 B-line / 8-way cache stores 8 K lines with
//!   ~32 bits of metadata each (24 tag bits at a 40-bit physical address +
//!   8 bits of LRU/valid/dirty/coherence state) → **544 KB** total;
//! * full-tag adaptivity adds two 28 KB shadow arrays + 1 KB of history
//!   buffers − 3 KB of non-duplicated LRU state → **598 KB** (+9.9%);
//! * with 8-bit partial tags the shadow arrays shrink to 12 KB each →
//!   **566 KB** (+4.0%);
//! * with 128 B lines the overhead falls to **2.1%**;
//! * the SBAR variant needs duplicate structures only in its leader sets →
//!   **≈0.16%** (full tags) / **≈0.09%** (8-bit partial tags).
//!
//! ```
//! use adaptive_cache::{overhead::StorageModel, AdaptiveConfig};
//! use cache_sim::Geometry;
//!
//! let geom = Geometry::new(512 * 1024, 64, 8).unwrap();
//! let m = StorageModel::new(geom);
//! assert_eq!(m.conventional_bytes(), 544 * 1024);
//! let full = m.adaptive_bytes(&AdaptiveConfig::paper_full_tags());
//! assert_eq!(full, 598 * 1024);
//! ```

use crate::adaptive::AdaptiveConfig;
use crate::sbar::SbarConfig;
use cache_sim::{Geometry, PolicyKind, ReplacementPolicy, TagMode};

/// Physical address width assumed by the paper's arithmetic.
pub const PAPER_PA_BITS: u32 = 40;

/// Non-replacement per-line status bits (valid, dirty, coherence, ...).
/// The paper charges 8 bits total for "LRU, valid, dirty and coherence
/// bits"; with 3 bits of 8-way LRU rank that leaves 5 bits of status.
const STATUS_BITS: u32 = 5;

/// Storage calculator for a cache geometry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StorageModel {
    geom: Geometry,
    pa_bits: u32,
}

impl StorageModel {
    /// Model with the paper's 40-bit physical address.
    pub fn new(geom: Geometry) -> Self {
        StorageModel {
            geom,
            pa_bits: PAPER_PA_BITS,
        }
    }

    /// Model with a custom physical address width.
    pub fn with_pa_bits(geom: Geometry, pa_bits: u32) -> Self {
        StorageModel { geom, pa_bits }
    }

    fn lines(&self) -> u64 {
        (self.geom.num_sets() * self.geom.associativity()) as u64
    }

    fn tag_bits(&self) -> u32 {
        self.geom.tag_bits(self.pa_bits)
    }

    /// Per-line metadata bits of a conventional cache managed by `policy`.
    fn conventional_meta_bits(&self, policy: PolicyKind) -> u32 {
        self.tag_bits() + STATUS_BITS + policy.metadata_bits(self.geom.associativity())
    }

    /// Total bytes (data + tags + status + replacement state) of a
    /// conventional LRU cache of this geometry.
    pub fn conventional_bytes(&self) -> u64 {
        self.conventional_bytes_with(PolicyKind::Lru)
    }

    /// Total bytes of a conventional cache managed by `policy`.
    pub fn conventional_bytes_with(&self, policy: PolicyKind) -> u64 {
        self.geom.size_bytes() as u64 + self.lines() * u64::from(self.conventional_meta_bits(policy)) / 8
    }

    /// Per-line bits of one shadow tag array for `policy` under `tags`
    /// (stored tag + policy metadata; no valid/dirty/coherence state —
    /// the paper's shadow arrays do not even snoop).
    fn shadow_line_bits(&self, policy: PolicyKind, tags: TagMode) -> u32 {
        tags.stored_bits(self.tag_bits()) + policy.metadata_bits(self.geom.associativity())
    }

    /// Extra bytes the two-policy adaptive organisation adds on top of the
    /// conventional cache: two shadow arrays + per-set history, minus the
    /// replacement state that need not be duplicated when a component
    /// policy equals the main cache's policy (the paper's "−3 KB" for LRU).
    pub fn adaptive_extra_bytes(&self, cfg: &AdaptiveConfig) -> u64 {
        let lines = self.lines();
        let shadows = lines
            * u64::from(
                self.shadow_line_bits(cfg.policy_a, cfg.shadow_tags)
                    + self.shadow_line_bits(cfg.policy_b, cfg.shadow_tags),
            );
        let history = self.geom.num_sets() as u64 * u64::from(cfg.history.bits_per_set());
        // The main array keeps LRU state anyway; if a component policy is
        // LRU its shadow metadata need not be replicated.
        let saved = if cfg.policy_a == PolicyKind::Lru || cfg.policy_b == PolicyKind::Lru {
            lines * u64::from(PolicyKind::Lru.metadata_bits(self.geom.associativity()))
        } else {
            0
        };
        (shadows + history - saved) / 8
    }

    /// Total bytes of the adaptive organisation.
    pub fn adaptive_bytes(&self, cfg: &AdaptiveConfig) -> u64 {
        self.conventional_bytes() + self.adaptive_extra_bytes(cfg)
    }

    /// Adaptive overhead as a percentage of the conventional total.
    pub fn adaptive_overhead_pct(&self, cfg: &AdaptiveConfig) -> f64 {
        100.0 * self.adaptive_extra_bytes(cfg) as f64 / self.conventional_bytes() as f64
    }

    /// Extra bytes of the SBAR-like organisation: duplicate tag structures
    /// and history only in the leader sets, plus the global selector.
    ///
    /// Following the paper, the continuously maintained second-policy
    /// metadata for resident blocks (LFU counts) is charged too.
    pub fn sbar_extra_bytes(&self, cfg: &SbarConfig) -> u64 {
        let assoc = self.geom.associativity() as u64;
        let leader_lines = cfg.leader_sets as u64 * assoc;
        let shadows = leader_lines
            * u64::from(
                self.shadow_line_bits(cfg.policy_a, cfg.shadow_tags)
                    + self.shadow_line_bits(cfg.policy_b, cfg.shadow_tags),
            );
        let history = cfg.leader_sets as u64 * u64::from(cfg.history.bits_per_set());
        (shadows + history + u64::from(cfg.psel_bits)) / 8
    }

    /// SBAR overhead as a percentage of the conventional total.
    pub fn sbar_overhead_pct(&self, cfg: &SbarConfig) -> f64 {
        100.0 * self.sbar_extra_bytes(cfg) as f64 / self.conventional_bytes() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::history::HistoryKind;
    use cache_sim::TagMode;

    fn paper_geom() -> Geometry {
        Geometry::new(512 * 1024, 64, 8).unwrap()
    }

    #[test]
    fn conventional_is_544kb() {
        let m = StorageModel::new(paper_geom());
        // 8K lines x (24 tag + 5 status + 3 LRU) bits = 32 KB of metadata.
        assert_eq!(m.conventional_bytes(), 544 * 1024);
    }

    #[test]
    fn full_tag_adaptive_is_598kb() {
        let m = StorageModel::new(paper_geom());
        let cfg = AdaptiveConfig::paper_full_tags();
        assert_eq!(m.adaptive_bytes(&cfg), 598 * 1024);
        let pct = m.adaptive_overhead_pct(&cfg);
        assert!((pct - 9.9).abs() < 0.1, "paper says +9.9%, got {pct:.2}%");
    }

    #[test]
    fn partial_8bit_adaptive_is_566kb() {
        let m = StorageModel::new(paper_geom());
        let cfg = AdaptiveConfig::paper_default();
        assert_eq!(m.adaptive_bytes(&cfg), 566 * 1024);
        let pct = m.adaptive_overhead_pct(&cfg);
        assert!((pct - 4.0).abs() < 0.1, "paper says +4.0%, got {pct:.2}%");
    }

    #[test]
    fn overhead_with_128b_lines_is_2_1_pct() {
        let g = Geometry::new(512 * 1024, 128, 8).unwrap();
        let m = StorageModel::new(g);
        let pct = m.adaptive_overhead_pct(&AdaptiveConfig::paper_default());
        assert!((pct - 2.1).abs() < 0.15, "paper says 2.1%, got {pct:.2}%");
    }

    #[test]
    fn bigger_conventional_caches_match_paper() {
        // Paper Figure 6 context: 9-way 576KB costs 612KB, 10-way 640KB
        // costs 680KB (i.e. +12.5% and +25% over the 544KB baseline).
        let nine = Geometry::with_sets(1024, 64, 9).unwrap();
        let ten = Geometry::with_sets(1024, 64, 10).unwrap();
        // Note: with_sets keeps 1024 sets so index bits stay 10.
        let m9 = StorageModel::new(nine).conventional_bytes() as f64;
        let m10 = StorageModel::new(ten).conventional_bytes() as f64;
        // The paper rounds per-line metadata to "about 32 bits"; a 9/10-way
        // LRU rank needs 4 bits instead of 3, so we land within 0.5% of the
        // paper's 612 KB / 680 KB figures.
        assert!((m9 / (612.0 * 1024.0) - 1.0).abs() < 0.005, "{m9}");
        assert!((m10 / (680.0 * 1024.0) - 1.0).abs() < 0.005, "{m10}");
        let base = StorageModel::new(paper_geom()).conventional_bytes() as f64;
        assert!((m9 / base - 1.125).abs() < 0.005);
        assert!((m10 / base - 1.25).abs() < 0.005);
    }

    #[test]
    fn sbar_overhead_is_tiny() {
        let m = StorageModel::new(paper_geom());
        let full = m.sbar_overhead_pct(&SbarConfig::paper_default());
        let part = m.sbar_overhead_pct(&SbarConfig::paper_partial_tags());
        // Paper: 0.16% (full) and 0.09% (partial). Our per-policy metadata
        // accounting gives the same order of magnitude.
        assert!(full < 0.25, "full-tag SBAR overhead {full:.3}% too big");
        assert!(part < full, "partial tags must shrink SBAR overhead");
        assert!(part < 0.12, "partial SBAR overhead {part:.3}% too big");
    }

    #[test]
    fn history_kind_affects_overhead() {
        let m = StorageModel::new(paper_geom());
        let small = AdaptiveConfig::paper_default().history_kind(HistoryKind::BitVector { m: 8 });
        let big = AdaptiveConfig::paper_default().history_kind(HistoryKind::BitVector { m: 64 });
        assert!(m.adaptive_extra_bytes(&big) > m.adaptive_extra_bytes(&small));
    }

    #[test]
    fn xor_tags_cost_the_same_as_low_tags() {
        let m = StorageModel::new(paper_geom());
        let low = AdaptiveConfig::paper_default().shadow_tag_mode(TagMode::PartialLow { bits: 8 });
        let xor = AdaptiveConfig::paper_default().shadow_tag_mode(TagMode::PartialXor { bits: 8 });
        assert_eq!(m.adaptive_bytes(&low), m.adaptive_bytes(&xor));
    }

    #[test]
    fn non_lru_components_save_nothing() {
        let m = StorageModel::new(paper_geom());
        let cfg = AdaptiveConfig::with_policies(PolicyKind::Fifo, PolicyKind::Mru);
        // FIFO/MRU adaptivity duplicates everything (no LRU main-state
        // sharing), so it must cost more than LRU/LFU adaptivity at equal
        // tag mode.
        let lru_cfg = AdaptiveConfig::paper_full_tags();
        assert!(m.adaptive_extra_bytes(&cfg) > 0);
        assert!(m.adaptive_extra_bytes(&cfg) >= m.adaptive_extra_bytes(&lru_cfg) - 1024);
    }
}
