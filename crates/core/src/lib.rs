//! # adaptive-cache — the MICRO 2006 adaptive replacement scheme
//!
//! This crate implements the contribution of Subramanian, Smaragdakis &
//! Loh, *Adaptive Caches: Effective Shaping of Cache Behavior to
//! Workloads* (MICRO 2006): a cache that observes two (or more) component
//! replacement policies via **parallel shadow tag arrays** and a per-set
//! **miss-history buffer**, and on every miss imitates the component policy
//! that has been performing better on that set (Algorithm 1 of the paper).
//!
//! Main types:
//!
//! * [`AdaptiveCache`] — the two-policy adaptive cache with full or
//!   partial shadow tags,
//! * [`MultiAdaptiveCache`] — the generalised N-policy variant
//!   (Section 4.4's five-policy experiment),
//! * [`SbarCache`] — the set-sampling (SBAR-like) variant of Section 4.7,
//! * [`DipCache`] — DIP set dueling (Qureshi et al., ISCA 2007), the
//!   influential successor, for related-work comparisons,
//! * [`MissHistory`] / [`HistoryKind`] — the per-set history buffers
//!   (bit-vector, full counters, saturating counter),
//! * [`overhead`] — the SRAM storage-overhead model of Section 3.2, and
//! * [`theory`] — instrumentation for the paper's 2x worst-case miss bound.
//!
//! # Example: adaptivity tracks the better policy
//!
//! ```
//! use adaptive_cache::{AdaptiveCache, AdaptiveConfig};
//! use cache_sim::{Address, Cache, CacheModel, Geometry, PolicyKind};
//!
//! let geom = Geometry::new(64 * 1024, 64, 8).unwrap();
//! let mut adaptive = AdaptiveCache::new(geom, AdaptiveConfig::paper_full_tags(), 7);
//! let mut lru = Cache::new(geom, PolicyKind::Lru, 7);
//!
//! // Hot blocks accessed in bursts of three, interleaved with a long
//! // scan: LRU thrashes the hot blocks between bursts while LFU's
//! // frequency counters protect them — so the adaptive cache must end
//! // up well below plain LRU.
//! for i in 0..300_000u64 {
//!     let group = i / 4;
//!     let a = if i % 4 < 3 {
//!         Address::new((group % 768) * 64) // hot set
//!     } else {
//!         Address::new((768 + group % 8192) * 64) // scan
//!     };
//!     adaptive.access(geom.block_of(a), false);
//!     lru.access(geom.block_of(a), false);
//! }
//! assert!(adaptive.stats().misses < lru.stats().misses);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod adaptive;
mod dip;
mod history;
mod multi;
pub mod overhead;
mod sbar;
pub mod theory;

pub use adaptive::{AdaptiveCache, AdaptiveConfig, Component, ImitationSample};
pub use dip::{DipCache, DipConfig};
pub use history::{HistoryKind, MissHistory};
pub use multi::{MultiAdaptiveCache, MultiConfig};
pub use sbar::{SbarCache, SbarConfig};
