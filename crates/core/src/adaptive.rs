//! The two-policy adaptive cache (paper Sections 2–3).

use crate::history::{HistoryKind, MissHistory};
use ac_telemetry::{DecisionEvent, EvictionCase};
use cache_sim::{
    AccessOutcome, BlockAddr, CacheModel, CacheStats, Directory, Eviction, Geometry, PolicyKind,
    ReplacementPolicy, TagArray, TagMode, Way,
};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::fmt;

/// One of the two component policies of an [`AdaptiveCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Component {
    /// The first component policy.
    A,
    /// The second component policy.
    B,
}

impl Component {
    /// The other component.
    pub fn other(self) -> Component {
        match self {
            Component::A => Component::B,
            Component::B => Component::A,
        }
    }

    /// The telemetry wire representation of this component.
    pub fn telemetry(self) -> ac_telemetry::Comp {
        match self {
            Component::A => ac_telemetry::Comp::A,
            Component::B => ac_telemetry::Comp::B,
        }
    }
}

/// Configuration of an [`AdaptiveCache`].
///
/// The paper's evaluated design point is available as
/// [`AdaptiveConfig::paper_default`] (LRU/LFU, 8-bit partial shadow tags,
/// `m = 8` bit-vector history) and [`AdaptiveConfig::paper_full_tags`]
/// (same with exact shadow tags).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AdaptiveConfig {
    /// Component policy A (wins ties in the history).
    pub policy_a: PolicyKind,
    /// Component policy B.
    pub policy_b: PolicyKind,
    /// Tag mode of the two shadow ("parallel") tag arrays. The *real*
    /// directory always keeps full tags — partiality is a property of the
    /// heuristic structures only.
    pub shadow_tags: TagMode,
    /// Per-set miss-history buffer variant.
    pub history: HistoryKind,
    /// Section 3.3's implementation shortcut: "when adapting over LRU,
    /// the adaptive cache can keep a recency order and evict the least
    /// recent block when it wants to imitate LRU, instead of checking
    /// which block is not in the LRU tag structure". Slightly
    /// approximates Algorithm 1 in exchange for a trivial victim search.
    pub lru_victim_shortcut: bool,
}

impl AdaptiveConfig {
    /// The paper's main design point: LRU/LFU, 8-bit partial shadow tags,
    /// bit-vector history with `m = 8`.
    pub fn paper_default() -> Self {
        AdaptiveConfig {
            policy_a: PolicyKind::Lru,
            policy_b: PolicyKind::LFU5,
            shadow_tags: TagMode::PartialLow { bits: 8 },
            history: HistoryKind::paper_default(),
            lru_victim_shortcut: false,
        }
    }

    /// The paper's full-tag reference configuration (used for the main
    /// results of Figures 3 and 4 before partial tags are introduced).
    pub fn paper_full_tags() -> Self {
        AdaptiveConfig {
            shadow_tags: TagMode::Full,
            ..Self::paper_default()
        }
    }

    /// Adaptivity over an arbitrary policy pair, full shadow tags,
    /// paper-default history.
    pub fn with_policies(a: PolicyKind, b: PolicyKind) -> Self {
        AdaptiveConfig {
            policy_a: a,
            policy_b: b,
            shadow_tags: TagMode::Full,
            history: HistoryKind::paper_default(),
            lru_victim_shortcut: false,
        }
    }

    /// Returns this configuration with a different shadow-tag mode.
    pub fn shadow_tag_mode(mut self, mode: TagMode) -> Self {
        self.shadow_tags = mode;
        self
    }

    /// Returns this configuration with a different history kind.
    pub fn history_kind(mut self, history: HistoryKind) -> Self {
        self.history = history;
        self
    }

    /// Returns this configuration with the Section 3.3 LRU victim
    /// shortcut enabled.
    pub fn with_lru_shortcut(mut self) -> Self {
        self.lru_victim_shortcut = true;
        self
    }
}

/// A per-set sample of imitation decisions, for the paper's Figure 7
/// phase maps ("white dots correspond to LFU-favorable regions, black to
/// LRU-favorable").
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ImitationSample {
    /// Replacement decisions that imitated component A in the sampling
    /// interval.
    pub imitated_a: u64,
    /// Replacement decisions that imitated component B.
    pub imitated_b: u64,
}

impl ImitationSample {
    /// The majority component of the interval, or `None` if no
    /// replacements happened.
    pub fn majority(&self) -> Option<Component> {
        if self.imitated_a == 0 && self.imitated_b == 0 {
            None
        } else if self.imitated_a >= self.imitated_b {
            Some(Component::A)
        } else {
            Some(Component::B)
        }
    }
}

/// The adaptive cache of the paper: a real, full-tag directory whose
/// victims are chosen by imitating the better of two component policies,
/// observed through shadow tag arrays and per-set miss histories.
///
/// The replacement logic is exactly Algorithm 1:
///
/// ```text
/// if misses(A) > misses(B) {              // imitate B
///     if B missed and B's victim is in the adaptive cache {
///         evict that same block
///     } else {
///         evict any block not in B        // guaranteed to exist (full tags)
///     }
/// } else { .. symmetric with A .. }
/// ```
///
/// With partial shadow tags the "block not in B" search can fail due to
/// aliasing; the cache then "simply picks an arbitrary block to evict"
/// (Section 3.1) — here a uniformly random way from the seeded RNG. The
/// number of such fallbacks is reported via
/// [`AdaptiveCache::aliasing_fallbacks`].
///
/// The scheme is policy-agnostic: the type parameters accept *any*
/// [`ReplacementPolicy`] implementation (see
/// [`AdaptiveCache::with_custom_policies`]); the default instantiation
/// over [`PolicyKind`] covers the five standard policies.
pub struct AdaptiveCache<A: ReplacementPolicy = PolicyKind, B: ReplacementPolicy = PolicyKind> {
    shadow_tags: TagMode,
    history_kind: HistoryKind,
    /// Recency order over the real contents, maintained only when the
    /// Section 3.3 LRU victim shortcut is enabled.
    real_recency: Option<cache_sim::MetaTable<cache_sim::Lru>>,
    real: Directory,
    shadow_a: TagArray<A>,
    shadow_b: TagArray<B>,
    history: Vec<MissHistory>,
    samples: Vec<ImitationSample>,
    rng: SmallRng,
    stats: CacheStats,
    aliasing_fallbacks: u64,
    imitations_a: u64,
    imitations_b: u64,
    excl_a_misses: u64,
    excl_b_misses: u64,
}

impl AdaptiveCache {
    /// Creates an empty adaptive cache over the standard policies.
    pub fn new(geom: Geometry, config: AdaptiveConfig, seed: u64) -> Self {
        let mut cache = AdaptiveCache::with_custom_policies(
            geom,
            config.policy_a,
            config.policy_b,
            config.shadow_tags,
            config.history,
            seed,
        );
        if config.lru_victim_shortcut {
            cache.real_recency = Some(cache_sim::MetaTable::new(
                cache_sim::Lru,
                geom.num_sets(),
                geom.associativity(),
            ));
        }
        cache
    }
}

impl<A: ReplacementPolicy, B: ReplacementPolicy> AdaptiveCache<A, B> {
    /// Creates an adaptive cache over two arbitrary replacement policies —
    /// the full generality the paper claims ("a general scheme by which we
    /// can combine any two cache management algorithms").
    pub fn with_custom_policies(
        geom: Geometry,
        policy_a: A,
        policy_b: B,
        shadow_tags: TagMode,
        history: HistoryKind,
        seed: u64,
    ) -> Self {
        AdaptiveCache {
            shadow_tags,
            history_kind: history,
            real_recency: None,
            real: Directory::new(geom, TagMode::Full),
            shadow_a: TagArray::new(geom, shadow_tags, policy_a, seed ^ 0xA),
            shadow_b: TagArray::new(geom, shadow_tags, policy_b, seed ^ 0xB),
            history: (0..geom.num_sets())
                .map(|_| MissHistory::new(history))
                .collect(),
            samples: vec![ImitationSample::default(); geom.num_sets()],
            rng: SmallRng::seed_from_u64(seed),
            stats: CacheStats::default(),
            aliasing_fallbacks: 0,
            imitations_a: 0,
            imitations_b: 0,
            excl_a_misses: 0,
            excl_b_misses: 0,
        }
    }

    /// The shadow arrays' tag mode.
    pub fn shadow_tag_mode(&self) -> TagMode {
        self.shadow_tags
    }

    /// The per-set history variant in use.
    pub fn history_kind(&self) -> HistoryKind {
        self.history_kind
    }

    /// Number of misses where partial-tag aliasing prevented finding a
    /// block outside the imitated component cache, forcing an arbitrary
    /// eviction. Always 0 with full shadow tags.
    pub fn aliasing_fallbacks(&self) -> u64 {
        self.aliasing_fallbacks
    }

    /// Total replacement decisions that imitated each component, as
    /// `(a, b)`.
    pub fn imitation_totals(&self) -> (u64, u64) {
        (self.imitations_a, self.imitations_b)
    }

    /// Total *exclusive* misses per component, as `(a, b)`: references
    /// where exactly one shadow missed — the only references that train
    /// the per-set histories (Section 3.1).
    pub fn exclusive_miss_totals(&self) -> (u64, u64) {
        (self.excl_a_misses, self.excl_b_misses)
    }

    /// Statistics of the shadow array for `c` — i.e. the miss behaviour the
    /// pure component policy *would* have had on this reference stream.
    pub fn shadow_stats(&self, c: Component) -> (u64, u64) {
        let s = match c {
            Component::A => self.shadow_a.stats(),
            Component::B => self.shadow_b.stats(),
        };
        (s.hits, s.misses)
    }

    /// Whether the real cache currently holds `block`.
    pub fn contains_block(&self, block: BlockAddr) -> bool {
        self.real.contains_block(block)
    }

    /// The per-set winner the history currently designates.
    pub fn set_winner(&self, set: usize) -> Component {
        self.history[set].winner()
    }

    /// Invalidates `block` in the *real* cache only (coherence-style
    /// back-invalidation), returning whether it was present.
    ///
    /// Deliberately does **not** touch the shadow arrays: the paper's
    /// hardware implements them "without support for snooping, which
    /// reduces the area, latency and power" (Section 3.2) — "the parallel
    /// tag may report that a given cache line is present when it has been
    /// invalidated, but this only causes the replacement policy to
    /// deviate slightly".
    pub fn invalidate_block(&mut self, block: BlockAddr) -> bool {
        let (set, stored) = self.real.locate(block);
        match self.real.find(set, stored) {
            Some(way) => {
                self.real.invalidate(set, way);
                true
            }
            None => false,
        }
    }

    /// Takes (and resets) the per-set imitation samples accumulated since
    /// the last call — the paper's Figure 7 samples these every million
    /// cycles.
    pub fn take_imitation_samples(&mut self) -> Vec<ImitationSample> {
        let n = self.samples.len();
        std::mem::replace(&mut self.samples, vec![ImitationSample::default(); n])
    }

    /// The victim way for a real miss in `set`, per Algorithm 1, tagged
    /// with which branch of the algorithm produced it (for the telemetry
    /// decision-event stream).
    ///
    /// The Case-1 ("same victim") and Case-2 ("not in shadow") scans are
    /// fused over one pass that reduces each valid real tag to the shadow
    /// representation exactly once ([`Directory::reduced_tags`]); the
    /// candidates are then derived from bitmasks over the reduced tags,
    /// preserving the seed implementation's first-matching-way order.
    fn choose_victim(
        &mut self,
        set: usize,
        winner: Component,
        shadow_miss: Option<Way>,
    ) -> (usize, EvictionCase) {
        let mode = self.shadow_tags;
        let mut reduced = [cache_sim::StoredTag::default(); cache_sim::MAX_ASSOC];
        let valid = self.real.reduced_tags(set, mode, &mut reduced);

        // Case 1: the imitated policy also missed here and its victim is
        // still in the adaptive cache — evict the very same block.
        if let Some(evicted) = shadow_miss {
            let mut same = 0u64;
            let mut m = valid;
            while m != 0 {
                let w = m.trailing_zeros() as usize;
                m &= m - 1;
                same |= u64::from(reduced[w] == evicted.tag) << w;
            }
            if same != 0 {
                return (same.trailing_zeros() as usize, EvictionCase::SameVictim);
            }
        }
        // Section 3.3 shortcut: when imitating an LRU component, evict
        // the least recently used real block directly instead of running
        // the membership search.
        if let Some(recency) = &self.real_recency {
            let is_lru = match winner {
                Component::A => self.shadow_a.policy().name() == "LRU",
                Component::B => self.shadow_b.policy().name() == "LRU",
            };
            if is_lru {
                return (
                    recency.victim(set, &mut self.rng),
                    EvictionCase::LruShortcut,
                );
            }
        }
        // Case 2: make the adaptive contents converge towards the imitated
        // cache by evicting a block the imitated cache does not hold. The
        // membership probe reuses the already-reduced tags, so each probe
        // is a single mask compare in the shadow directory.
        let shadow = match winner {
            Component::A => self.shadow_a.directory(),
            Component::B => self.shadow_b.directory(),
        };
        let mut m = valid;
        while m != 0 {
            let w = m.trailing_zeros() as usize;
            m &= m - 1;
            if !shadow.contains(set, reduced[w]) {
                return (w, EvictionCase::NotInShadow);
            }
        }
        // Case 3 (partial tags only): aliasing hid every candidate —
        // "the adaptive cache simply picks an arbitrary block to evict".
        self.aliasing_fallbacks += 1;
        (
            self.rng.gen_range(0..self.real.geometry().associativity()),
            EvictionCase::AliasFallback,
        )
    }
}

impl<A: ReplacementPolicy, B: ReplacementPolicy> CacheModel for AdaptiveCache<A, B> {
    fn access(&mut self, block: BlockAddr, write: bool) -> AccessOutcome {
        // Decompose the address once: the real directory keeps full tags,
        // so `stored.raw()` *is* the geometry tag, and the shadows reduce
        // it through their own tag mode without re-deriving the set index.
        let (set, stored) = self.real.locate(block);
        let full_tag = stored.raw();

        // 1. Emulate both component caches for this reference and update
        //    the set's miss history. This happens on *every* reference,
        //    hit or miss, off the critical path in hardware. Both shadows
        //    share one tag mode, so the reduction happens once here
        //    instead of once per array.
        let shadow_stored = self.shadow_tags.store(full_tag);
        let acc_a = self.shadow_a.access_at(set, shadow_stored);
        let acc_b = self.shadow_b.access_at(set, shadow_stored);
        self.history[set].record(!acc_a.hit, !acc_b.hit);
        if acc_a.hit != acc_b.hit {
            // Exclusive miss: the only kind of reference that moves the
            // history towards one component.
            if acc_a.hit {
                self.excl_b_misses += 1;
            } else {
                self.excl_a_misses += 1;
            }
            ac_telemetry::decision(|| DecisionEvent::HistoryUpdate {
                set: set as u32,
                a_missed: !acc_a.hit,
                b_missed: !acc_b.hit,
            });
        }

        // 2. Real lookup.
        if let Some(way) = self.real.find(set, stored) {
            self.stats.record(true, write);
            if let Some(recency) = &mut self.real_recency {
                recency.on_hit(set, way);
            }
            if write {
                self.real.mark_dirty(set, way);
            }
            return AccessOutcome::hit();
        }
        self.stats.record(false, write);

        // 3. Miss: fill an invalid way if one exists, otherwise run the
        //    adaptive replacement algorithm.
        let way = match self.real.invalid_way(set) {
            Some(w) => w,
            None => {
                let winner = self.history[set].winner();
                match winner {
                    Component::A => {
                        self.samples[set].imitated_a += 1;
                        self.imitations_a += 1;
                    }
                    Component::B => {
                        self.samples[set].imitated_b += 1;
                        self.imitations_b += 1;
                    }
                }
                let shadow_miss = match winner {
                    Component::A => (!acc_a.hit).then_some(acc_a.evicted).flatten(),
                    Component::B => (!acc_b.hit).then_some(acc_b.evicted).flatten(),
                };
                let (way, case) = self.choose_victim(set, winner, shadow_miss);
                ac_telemetry::decision(|| DecisionEvent::Imitation {
                    set: set as u32,
                    component: winner.telemetry(),
                    case,
                });
                way
            }
        };

        let evicted = self.real.fill_at(set, way, stored);
        if let Some(recency) = &mut self.real_recency {
            recency.on_fill(set, way);
        }
        if write {
            self.real.mark_dirty(set, way);
        }
        let eviction = evicted.map(|old| {
            self.stats.evictions += 1;
            if old.dirty {
                self.stats.writebacks += 1;
            }
            Eviction {
                block: self.real.geometry().block_from_parts(old.tag.raw(), set),
                dirty: old.dirty,
            }
        });

        AccessOutcome {
            hit: false,
            eviction,
        }
    }

    fn stats(&self) -> &CacheStats {
        &self.stats
    }

    fn geometry(&self) -> &Geometry {
        self.real.geometry()
    }

    fn label(&self) -> String {
        let g = self.geometry();
        let tags = match self.shadow_tags {
            TagMode::Full => "full tags".to_string(),
            TagMode::PartialLow { bits } | TagMode::PartialXor { bits } => {
                format!("{bits}-bit tags")
            }
        };
        format!(
            "Adaptive {}/{} ({}KB, {}-way, {})",
            self.shadow_a.policy().name(),
            self.shadow_b.policy().name(),
            g.size_bytes() / 1024,
            g.associativity(),
            tags
        )
    }

    fn timeline_probe(&self) -> ac_telemetry::TimelineProbe {
        ac_telemetry::TimelineProbe {
            accesses: self.stats.accesses,
            hits: self.stats.hits,
            misses: self.stats.misses,
            shadow_a_misses: self.shadow_a.stats().misses,
            shadow_b_misses: self.shadow_b.stats().misses,
            excl_a_misses: self.excl_a_misses,
            excl_b_misses: self.excl_b_misses,
            imitations_a: self.imitations_a,
            imitations_b: self.imitations_b,
            aliasing_fallbacks: self.aliasing_fallbacks,
            leader_votes: 0,
            psel: None,
        }
    }
}

impl<A: ReplacementPolicy, B: ReplacementPolicy> fmt::Debug for AdaptiveCache<A, B> {
    // Show the label and headline statistics rather than megabytes of
    // tag-array state.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("AdaptiveCache")
            .field("label", &self.label())
            .field("stats", &self.stats)
            .field("aliasing_fallbacks", &self.aliasing_fallbacks)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cache_sim::{Address, Cache};

    fn geom() -> Geometry {
        Geometry::new(4096, 64, 4).unwrap() // 16 sets x 4 ways
    }

    /// Blocks that all collide in set 0.
    fn conflict(g: &Geometry, n: u64) -> BlockAddr {
        g.block_of(Address::new(n * 64 * g.num_sets() as u64))
    }

    fn lru_lfu(g: Geometry) -> AdaptiveCache {
        AdaptiveCache::new(g, AdaptiveConfig::paper_full_tags(), 42)
    }

    #[test]
    fn cold_fills_use_invalid_ways() {
        let g = geom();
        let mut c = lru_lfu(g);
        for n in 0..4 {
            let out = c.access(conflict(&g, n), false);
            assert!(!out.hit);
            assert!(out.eviction.is_none());
        }
        assert_eq!(c.stats().misses, 4);
        assert_eq!(c.imitation_totals(), (0, 0), "no replacement ran yet");
    }

    #[test]
    fn hits_do_not_touch_replacement() {
        let g = geom();
        let mut c = lru_lfu(g);
        let b = conflict(&g, 0);
        c.access(b, false);
        assert!(c.access(b, false).hit);
        assert_eq!(c.stats().hits, 1);
    }

    #[test]
    fn shadow_arrays_mirror_component_policies() {
        // Drive the adaptive cache and two standalone caches with the same
        // stream; the shadow statistics must match the standalone caches
        // exactly (full tags, deterministic policies).
        let g = geom();
        let mut adaptive = lru_lfu(g);
        let mut lru = Cache::new(g, PolicyKind::Lru, 1);
        let mut lfu = Cache::new(g, PolicyKind::LFU5, 1);

        let mut x = 123456789u64;
        for _ in 0..20_000 {
            // xorshift for a scattered but deterministic stream
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let b = g.block_of(Address::new(x % (1 << 16)));
            adaptive.access(b, false);
            lru.access(b, false);
            lfu.access(b, false);
        }
        assert_eq!(adaptive.shadow_stats(Component::A).1, lru.stats().misses);
        assert_eq!(adaptive.shadow_stats(Component::B).1, lfu.stats().misses);
    }

    #[test]
    fn paper_figure2_example() {
        // Reproduces the worked example of Figure 2 with a 4-way single-set
        // cache, component A = LRU, component B = LFU-like... The paper's
        // example uses abstract policies; here we verify the adaptive
        // mechanics directly: after a block misses in only one component,
        // the adaptive cache starts imitating the other.
        let g = Geometry::new(4 * 64, 64, 4).unwrap(); // 1 set, 4 ways
        let cfg = AdaptiveConfig::with_policies(PolicyKind::Lru, PolicyKind::Mru)
            .history_kind(HistoryKind::Counters);
        let mut c = AdaptiveCache::new(g, cfg, 9);
        let b = |n: u64| BlockAddr::new(n);

        // Fill: C A B F (4 distinct blocks) — both components miss 4 times.
        for n in [2u64, 0, 1, 5] {
            c.access(b(n), false);
        }
        // Reference D: both miss again; tie -> imitate A (LRU evicts "C").
        c.access(b(3), false);
        assert!(!c.contains_block(b(2)), "LRU victim imitated on tie");
        // LRU's cache is now A B F D ; MRU's cache is C A B D.
        // Reference A(0): hit in both real and MRU? real: A present. OK.
        assert!(c.access(b(0), false).hit);
    }

    /// A hot set of `hots` blocks, each accessed in bursts of three,
    /// interleaved with a long scan of `scans` blocks. The bursts drive
    /// the hot blocks' frequency counts up so LFU protects them across
    /// scans, while the per-set LRU reuse distance (2x associativity)
    /// makes LRU thrash — the "separating large regions of blocks that
    /// are only used once from commonly accessed data" pattern of paper
    /// Section 2.1.
    fn hot_scan_block(i: u64, hots: u64, scans: u64) -> BlockAddr {
        let group = i / 4;
        if i % 4 < 3 {
            BlockAddr::new(group % hots)
        } else {
            BlockAddr::new(hots + group % scans)
        }
    }

    #[test]
    fn tracks_better_policy_on_lru_hostile_mix() {
        // Hot set + large scan: LRU evicts the hot blocks between reuses,
        // LFU keeps them resident. The adaptive cache must land close to
        // LFU, far below LRU misses.
        let g = Geometry::new(64 * 1024, 64, 8).unwrap();
        let mut adaptive = lru_lfu(g);
        let mut lru = Cache::new(g, PolicyKind::Lru, 1);
        let mut lfu = Cache::new(g, PolicyKind::LFU5, 1);
        for i in 0..400_000u64 {
            let b = hot_scan_block(i, 768, 8192);
            adaptive.access(b, false);
            lru.access(b, false);
            lfu.access(b, false);
        }
        let (am, lm, fm) = (
            adaptive.stats().misses,
            lru.stats().misses,
            lfu.stats().misses,
        );
        assert!(
            fm * 5 < lm * 4,
            "precondition: LFU ({fm}) must clearly beat LRU ({lm}) on this mix"
        );
        assert!(am < lm, "adaptive ({am}) should beat LRU ({lm})");
        assert!(
            am as f64 <= fm as f64 * 1.15,
            "adaptive ({am}) must closely track the better policy ({fm})"
        );
    }

    #[test]
    fn tracks_better_policy_on_temporal_stream() {
        // Strong temporal locality with a small hot set: LRU-friendly.
        let g = Geometry::new(16 * 1024, 64, 8).unwrap();
        let mut adaptive = lru_lfu(g);
        let mut lru = Cache::new(g, PolicyKind::Lru, 1);
        let mut lfu = Cache::new(g, PolicyKind::LFU5, 1);
        let mut x = 99u64;
        for i in 0..300_000u64 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            // 90% accesses to a rolling window, 10% to cold blocks.
            let b = if !x.is_multiple_of(10) {
                BlockAddr::new((i / 16 + x % 128) % 4096)
            } else {
                BlockAddr::new(10_000 + x % 100_000)
            };
            adaptive.access(b, false);
            lru.access(b, false);
            lfu.access(b, false);
        }
        let best = lru.stats().misses.min(lfu.stats().misses);
        assert!(
            adaptive.stats().misses <= best * 2,
            "adaptive {} vs best {best}",
            adaptive.stats().misses
        );
    }

    #[test]
    fn partial_tags_track_full_tags_closely() {
        let g = Geometry::new(64 * 1024, 64, 8).unwrap();
        let mut full = AdaptiveCache::new(g, AdaptiveConfig::paper_full_tags(), 5);
        let mut partial = AdaptiveCache::new(g, AdaptiveConfig::paper_default(), 5);
        for i in 0..200_000u64 {
            let b = hot_scan_block(i, 768, 8192);
            full.access(b, false);
            partial.access(b, false);
        }
        let (f, p) = (full.stats().misses as f64, partial.stats().misses as f64);
        assert!(
            (p - f).abs() / f < 0.10,
            "8-bit partial ({p}) within 10% of full ({f})"
        );
    }

    #[test]
    fn tiny_partial_tags_fall_back_but_do_not_crash() {
        let g = Geometry::new(512 * 1024, 64, 8).unwrap();
        let cfg = AdaptiveConfig::paper_default().shadow_tag_mode(TagMode::PartialLow { bits: 1 });
        let mut c = AdaptiveCache::new(g, cfg, 3);
        let mut x = 7u64;
        for _ in 0..200_000 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            c.access(BlockAddr::new(x % 50_000), false);
        }
        // With 1-bit tags aliasing is rampant; the arbitrary-eviction
        // fallback must have triggered and the cache must keep functioning.
        assert!(c.aliasing_fallbacks() > 0);
        assert_eq!(
            c.stats().accesses,
            200_000,
            "all accesses processed despite aliasing"
        );
    }

    #[test]
    fn full_tags_never_need_fallback() {
        let g = geom();
        let mut c = lru_lfu(g);
        let mut x = 3u64;
        for _ in 0..100_000 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            c.access(BlockAddr::new(x % 10_000), false);
        }
        assert_eq!(
            c.aliasing_fallbacks(),
            0,
            "the not-in-component block is guaranteed to exist with full tags"
        );
    }

    #[test]
    fn imitation_samples_reset() {
        let g = geom();
        let mut c = lru_lfu(g);
        for n in 0..100 {
            c.access(conflict(&g, n), false);
        }
        let s1 = c.take_imitation_samples();
        let decided: u64 = s1.iter().map(|s| s.imitated_a + s.imitated_b).sum();
        assert!(decided > 0);
        let s2 = c.take_imitation_samples();
        assert!(s2.iter().all(|s| s.majority().is_none()), "reset to zero");
    }

    #[test]
    fn dirty_eviction_reports_writeback() {
        let g = geom();
        let mut c = lru_lfu(g);
        c.access(conflict(&g, 0), true); // dirty fill
        for n in 1..4 {
            c.access(conflict(&g, n), false);
        }
        // Overflow the set until block 0 goes; some eviction must carry
        // dirty=true eventually.
        let mut saw_dirty = false;
        for n in 4..20 {
            if let Some(ev) = c.access(conflict(&g, n), false).eviction {
                saw_dirty |= ev.dirty;
            }
        }
        assert!(saw_dirty);
        assert!(c.stats().writebacks >= 1);
    }

    #[test]
    fn label_is_descriptive() {
        let g = Geometry::new(512 * 1024, 64, 8).unwrap();
        let c = AdaptiveCache::new(g, AdaptiveConfig::paper_default(), 0);
        assert_eq!(c.label(), "Adaptive LRU/LFU (512KB, 8-way, 8-bit tags)");
        let c = AdaptiveCache::new(g, AdaptiveConfig::paper_full_tags(), 0);
        assert_eq!(c.label(), "Adaptive LRU/LFU (512KB, 8-way, full tags)");
    }

    #[test]
    fn component_other() {
        assert_eq!(Component::A.other(), Component::B);
        assert_eq!(Component::B.other(), Component::A);
    }

    #[test]
    fn majority_logic() {
        assert_eq!(ImitationSample::default().majority(), None);
        assert_eq!(
            ImitationSample {
                imitated_a: 3,
                imitated_b: 1
            }
            .majority(),
            Some(Component::A)
        );
        assert_eq!(
            ImitationSample {
                imitated_a: 1,
                imitated_b: 3
            }
            .majority(),
            Some(Component::B)
        );
    }
}

#[cfg(test)]
mod invalidation_tests {
    use super::*;
    use cache_sim::Address;

    #[test]
    fn invalidation_skips_shadow_arrays() {
        let g = Geometry::new(4096, 64, 4).unwrap();
        let mut c = AdaptiveCache::new(g, AdaptiveConfig::paper_full_tags(), 1);
        let block = g.block_of(Address::new(0x400));
        c.access(block, false);
        assert!(c.contains_block(block));
        assert!(c.invalidate_block(block));
        assert!(!c.contains_block(block));
        // The shadows still believe the block is present (no snooping):
        // re-accessing it misses in the real cache but hits both shadows.
        let before_a = c.shadow_stats(Component::A);
        let out = c.access(block, false);
        assert!(!out.hit, "real cache must miss after invalidation");
        let after_a = c.shadow_stats(Component::A);
        assert_eq!(
            after_a.0,
            before_a.0 + 1,
            "shadow A must hit the stale entry"
        );
        // Second invalidate is a no-op.
        c.invalidate_block(block);
        assert!(!c.invalidate_block(block));
    }
}

#[cfg(test)]
mod lru_shortcut_tests {
    use super::*;
    use cache_sim::BlockAddr;

    fn run(cfg: AdaptiveConfig, seed: u64) -> u64 {
        let g = Geometry::new(64 * 1024, 64, 8).unwrap();
        let mut c = AdaptiveCache::new(g, cfg, seed);
        // Mixed stream: LFU-friendly rescan phase, then LRU-friendly
        // shifting phase, so both components get imitated.
        for i in 0..300_000u64 {
            let group = i / 4;
            let b = if i < 150_000 {
                if i % 4 < 3 {
                    group % 768
                } else {
                    768 + group % 8192
                }
            } else {
                20_000 + (i / 16_000) * 2048 + (i * 7919) % 4096
            };
            c.access(BlockAddr::new(b), false);
        }
        c.stats().misses
    }

    #[test]
    fn shortcut_closely_tracks_exact_algorithm() {
        let exact = run(AdaptiveConfig::paper_full_tags(), 3);
        let shortcut = run(AdaptiveConfig::paper_full_tags().with_lru_shortcut(), 3);
        let ratio = shortcut as f64 / exact as f64;
        assert!(
            (0.97..=1.03).contains(&ratio),
            "Section 3.3 shortcut deviates too much: {shortcut} vs {exact}"
        );
    }

    #[test]
    fn shortcut_flag_round_trips_in_config() {
        let cfg = AdaptiveConfig::paper_default().with_lru_shortcut();
        assert!(cfg.lru_victim_shortcut);
        let json = serde_json::to_string(&cfg).unwrap();
        let back: AdaptiveConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back, cfg);
    }
}
