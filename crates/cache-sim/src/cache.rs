//! A conventional write-back, write-allocate data cache.

use crate::addr::BlockAddr;
use crate::geometry::Geometry;
use crate::model::CacheModel;
use crate::partial::TagMode;
use crate::policy::{PolicyKind, ReplacementPolicy};
use crate::stats::CacheStats;
use crate::tag_array::TagArray;

/// A block evicted by an access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Eviction {
    /// The evicted block's address.
    pub block: BlockAddr,
    /// Whether the block was dirty (triggers a writeback).
    pub dirty: bool,
}

/// Result of one cache access at the hierarchy level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessOutcome {
    /// Whether the access hit.
    pub hit: bool,
    /// An eviction (and possible writeback) caused by the fill on a miss.
    pub eviction: Option<Eviction>,
}

impl AccessOutcome {
    /// An outcome with no eviction.
    pub const fn hit() -> Self {
        AccessOutcome {
            hit: true,
            eviction: None,
        }
    }

    /// A missing outcome carrying an optional eviction.
    pub const fn miss(eviction: Option<Eviction>) -> Self {
        AccessOutcome {
            hit: false,
            eviction,
        }
    }
}

/// A conventional set-associative, write-back, write-allocate cache managed
/// by a single replacement policy.
///
/// This is the baseline organisation in every one of the paper's
/// comparisons ("LRU (512KB, 8-way)" etc.) and also serves as the L1
/// instruction/data caches of the CPU model.
///
/// ```
/// use cache_sim::{Address, Cache, CacheModel, Geometry, PolicyKind};
///
/// let geom = Geometry::new(16 * 1024, 64, 4).unwrap(); // the paper's L1
/// let mut l1 = Cache::new(geom, PolicyKind::Lru, 99);
/// let block = geom.block_of(Address::new(0x80));
/// assert!(!l1.access(block, true).hit); // write miss allocates
/// assert!(l1.access(block, false).hit);
/// ```
#[derive(Debug, Clone)]
pub struct Cache<P: ReplacementPolicy = PolicyKind> {
    tags: TagArray<P>,
    stats: CacheStats,
}

impl<P: ReplacementPolicy> Cache<P> {
    /// Creates an empty cache with full tags.
    pub fn new(geom: Geometry, policy: P, seed: u64) -> Self {
        Cache {
            tags: TagArray::new(geom, TagMode::Full, policy, seed),
            stats: CacheStats::default(),
        }
    }

    /// The replacement policy.
    pub fn policy(&self) -> &P {
        self.tags.policy()
    }

    /// Whether the cache currently holds `block`.
    pub fn contains_block(&self, block: BlockAddr) -> bool {
        self.tags.contains_block(block)
    }

    /// Invalidates `block` if present, returning `true` if it was.
    pub fn invalidate_block(&mut self, block: BlockAddr) -> bool {
        self.tags.invalidate_block(block)
    }
}

impl<P: ReplacementPolicy> CacheModel for Cache<P> {
    #[inline(always)]
    fn access(&mut self, block: BlockAddr, write: bool) -> AccessOutcome {
        // Decompose the address exactly once; the tag array and the dirty
        // bookkeeping below reuse the same (set, stored) pair.
        let (set, stored) = self.tags.directory().locate(block);
        let acc = self.tags.access_at(set, stored);
        self.stats.record(acc.hit, write);

        let eviction = acc.evicted.map(|old| {
            self.stats.evictions += 1;
            if old.dirty {
                self.stats.writebacks += 1;
            }
            Eviction {
                // Real caches use full tags, so the block address is
                // exactly recoverable from (tag, set).
                block: self
                    .geometry()
                    .block_from_parts(old.tag.raw(), set),
                dirty: old.dirty,
            }
        });

        if write {
            // `acc.way` is the hit way or the fill way.
            self.mark_dirty(set, acc.way);
        }

        AccessOutcome {
            hit: acc.hit,
            eviction,
        }
    }

    fn stats(&self) -> &CacheStats {
        &self.stats
    }

    fn geometry(&self) -> &Geometry {
        self.tags.geometry()
    }

    fn label(&self) -> String {
        let g = self.geometry();
        format!(
            "{} ({}KB, {}-way)",
            self.tags.policy().name(),
            g.size_bytes() / 1024,
            g.associativity()
        )
    }
}

impl<P: ReplacementPolicy> Cache<P> {
    fn mark_dirty(&mut self, set: usize, way: usize) {
        // Split out so the borrow of `tags` is clearly scoped.
        self.tags_mut_directory().mark_dirty(set, way);
    }

    fn tags_mut_directory(&mut self) -> &mut crate::tag_array::Directory {
        // TagArray exposes no general mutable directory access; Cache is a
        // friend within the crate.
        self.tags.directory_mut()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::Address;

    fn geom() -> Geometry {
        Geometry::new(1024, 64, 4).unwrap() // 4 sets x 4 ways
    }

    fn conflict_block(g: &Geometry, n: u64) -> BlockAddr {
        g.block_of(Address::new(n * 64 * g.num_sets() as u64))
    }

    #[test]
    fn write_allocate_and_writeback() {
        let g = geom();
        let mut c = Cache::new(g, PolicyKind::Lru, 0);
        // Write-allocate: the write miss installs the block dirty.
        let b0 = conflict_block(&g, 0);
        assert!(!c.access(b0, true).hit);
        // Fill the set, then overflow it: b0 is the LRU victim and dirty.
        for n in 1..4 {
            c.access(conflict_block(&g, n), false);
        }
        let out = c.access(conflict_block(&g, 4), false);
        let ev = out.eviction.expect("set overflow must evict");
        assert_eq!(ev.block, b0);
        assert!(ev.dirty, "written block must come back dirty");
        assert_eq!(c.stats().writebacks, 1);
        assert_eq!(c.stats().evictions, 1);
    }

    #[test]
    fn clean_eviction_has_no_writeback() {
        let g = geom();
        let mut c = Cache::new(g, PolicyKind::Lru, 0);
        for n in 0..5 {
            c.access(conflict_block(&g, n), false);
        }
        assert_eq!(c.stats().evictions, 1);
        assert_eq!(c.stats().writebacks, 0);
    }

    #[test]
    fn write_hit_marks_dirty() {
        let g = geom();
        let mut c = Cache::new(g, PolicyKind::Lru, 0);
        let b0 = conflict_block(&g, 0);
        c.access(b0, false); // clean fill
        c.access(b0, true); // write hit dirties it
        for n in 1..5 {
            c.access(conflict_block(&g, n), false);
        }
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn eviction_block_address_is_exact() {
        let g = Geometry::new(512 * 1024, 64, 8).unwrap();
        let mut c = Cache::new(g, PolicyKind::Lru, 0);
        let blocks: Vec<_> = (0..9)
            .map(|n| g.block_of(Address::new(n * 64 * g.num_sets() as u64 + 0x40)))
            .collect();
        for &b in &blocks {
            c.access(b, false);
        }
        // 9 blocks in an 8-way set: the first one got evicted.
        assert!(!c.contains_block(blocks[0]));
        for &b in &blocks[1..] {
            assert!(c.contains_block(b));
        }
    }

    #[test]
    fn stats_track_read_write_misses() {
        let g = geom();
        let mut c = Cache::new(g, PolicyKind::Lru, 0);
        c.access(conflict_block(&g, 0), false);
        c.access(conflict_block(&g, 1), true);
        assert_eq!(c.stats().read_misses, 1);
        assert_eq!(c.stats().write_misses, 1);
    }

    #[test]
    fn label_mentions_policy_and_shape() {
        let g = Geometry::new(512 * 1024, 64, 8).unwrap();
        let c = Cache::new(g, PolicyKind::LFU5, 0);
        assert_eq!(c.label(), "LFU (512KB, 8-way)");
    }

    #[test]
    fn invalidate_then_miss() {
        let g = geom();
        let mut c = Cache::new(g, PolicyKind::Lru, 0);
        let b = conflict_block(&g, 0);
        c.access(b, false);
        assert!(c.invalidate_block(b));
        assert!(!c.access(b, false).hit);
    }
}
