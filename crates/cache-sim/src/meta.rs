//! Per-set replacement metadata storage.

use crate::policy::ReplacementPolicy;
use serde::{Deserialize, Serialize};

/// Sets of up to this many ways keep their metadata words inline in the
/// [`SetMeta`] struct itself, so a [`MetaTable`]'s `Vec<SetMeta>` is one
/// contiguous allocation with no per-set pointer chase on the access path.
const INLINE_WAYS: usize = 8;

/// Per-way metadata words: inline for typical associativities, heap-spilled
/// beyond [`INLINE_WAYS`].
#[derive(Debug, Clone, PartialEq, Eq)]
enum Words {
    Inline { buf: [u64; INLINE_WAYS], len: u8 },
    Spill(Vec<u64>),
}

/// Replacement metadata for one cache set: one 64-bit word per way plus a
/// per-set access tick.
///
/// Each [`ReplacementPolicy`] interprets the per-way word its own way
/// (recency timestamp for LRU/MRU, insertion timestamp for FIFO, a packed
/// (count, recency) pair for LFU). The tick is advanced by the policy
/// callbacks and provides a per-set logical clock.
#[derive(Debug, Clone, PartialEq, Eq)]
#[repr(align(64))] // cache-line aligned: a set's metadata spans exactly
// two lines in a `Vec<SetMeta>` instead of straddling up to three.
pub struct SetMeta {
    words: Words,
    tick: u64,
}

impl SetMeta {
    /// Creates metadata for a set with `ways` ways, all zeroed.
    pub fn new(ways: usize) -> Self {
        let words = if ways <= INLINE_WAYS {
            Words::Inline {
                buf: [0; INLINE_WAYS],
                len: ways as u8,
            }
        } else {
            Words::Spill(vec![0; ways])
        };
        SetMeta { words, tick: 0 }
    }

    #[inline]
    fn slice(&self) -> &[u64] {
        match &self.words {
            Words::Inline { buf, len } => &buf[..*len as usize],
            Words::Spill(v) => v,
        }
    }

    #[inline]
    fn slice_mut(&mut self) -> &mut [u64] {
        match &mut self.words {
            Words::Inline { buf, len } => &mut buf[..*len as usize],
            Words::Spill(v) => v,
        }
    }

    /// Number of ways covered.
    #[inline]
    pub fn ways(&self) -> usize {
        self.slice().len()
    }

    /// The per-way metadata word.
    #[inline]
    pub fn word(&self, way: usize) -> u64 {
        self.slice()[way]
    }

    /// Sets the per-way metadata word.
    #[inline]
    pub fn set_word(&mut self, way: usize, value: u64) {
        self.slice_mut()[way] = value;
    }

    /// Advances and returns the per-set logical clock.
    #[inline]
    pub fn bump_tick(&mut self) -> u64 {
        self.tick += 1;
        self.tick
    }

    /// Current value of the per-set logical clock.
    #[inline]
    pub fn tick(&self) -> u64 {
        self.tick
    }

    /// Iterates over `(way, word)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (usize, u64)> + '_ {
        self.slice().iter().copied().enumerate()
    }

    /// All per-way words as a slice (for the fixed-width victim scans in
    /// `policy.rs`).
    #[inline]
    pub(crate) fn words(&self) -> &[u64] {
        self.slice()
    }
}

// The words are serialised as a plain sequence regardless of how they are
// stored, so the wire form is independent of `INLINE_WAYS`.
impl Serialize for SetMeta {
    fn to_value(&self) -> serde::Value {
        (self.slice().to_vec(), self.tick).to_value()
    }
}

impl Deserialize for SetMeta {
    fn from_value(v: &serde::Value) -> Result<Self, serde::de::Error> {
        let (words, tick): (Vec<u64>, u64) = Deserialize::from_value(v)?;
        let mut meta = SetMeta::new(words.len());
        for (way, value) in words.into_iter().enumerate() {
            meta.set_word(way, value);
        }
        meta.tick = tick;
        Ok(meta)
    }
}

/// A table of [`SetMeta`] (one per set) bound to a replacement policy.
///
/// This is the composable piece shared by plain caches (one `MetaTable`),
/// shadow tag arrays (one each) and the SBAR variant (which keeps *two*
/// `MetaTable`s over the real cache so it can start imitating either policy
/// at any moment without duplicate tags — paper Section 4.7).
#[derive(Debug, Clone)]
pub struct MetaTable<P> {
    policy: P,
    sets: Vec<SetMeta>,
}

impl<P: ReplacementPolicy> MetaTable<P> {
    /// Creates a table for `num_sets` sets of `ways` ways.
    pub fn new(policy: P, num_sets: usize, ways: usize) -> Self {
        MetaTable {
            policy,
            sets: (0..num_sets).map(|_| SetMeta::new(ways)).collect(),
        }
    }

    /// The bound policy.
    #[inline]
    pub fn policy(&self) -> &P {
        &self.policy
    }

    /// Records a hit on `way` of `set`.
    #[inline]
    pub fn on_hit(&mut self, set: usize, way: usize) {
        self.policy.on_hit(&mut self.sets[set], way);
    }

    /// Records a fill into `way` of `set`.
    #[inline]
    pub fn on_fill(&mut self, set: usize, way: usize) {
        self.policy.on_fill(&mut self.sets[set], way);
    }

    /// Asks the policy to choose a victim way in `set`.
    ///
    /// Must only be called when every way in the set is valid. Takes the
    /// concrete simulation RNG ([`rand::rngs::SmallRng`]) rather than
    /// `&mut dyn RngCore` so the per-access policy call monomorphises and
    /// inlines instead of double-dispatching.
    #[inline]
    pub fn victim(&self, set: usize, rng: &mut rand::rngs::SmallRng) -> usize {
        self.policy.victim(&self.sets[set], rng)
    }

    /// Read access to a set's metadata (used by tests and by the SBAR
    /// policy-switching logic).
    #[inline]
    pub fn set_meta(&self, set: usize) -> &SetMeta {
        &self.sets[set]
    }

    /// Mutable access to a set's metadata, for organisations that adjust
    /// insertion positions directly (e.g. DIP's insert-at-LRU).
    #[inline]
    pub fn set_meta_mut(&mut self, set: usize) -> &mut SetMeta {
        &mut self.sets[set]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{Lru, PolicyKind};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn set_meta_clock_advances() {
        let mut m = SetMeta::new(4);
        assert_eq!(m.tick(), 0);
        assert_eq!(m.bump_tick(), 1);
        assert_eq!(m.bump_tick(), 2);
        assert_eq!(m.tick(), 2);
    }

    #[test]
    fn words_read_write() {
        let mut m = SetMeta::new(2);
        m.set_word(1, 99);
        assert_eq!(m.word(0), 0);
        assert_eq!(m.word(1), 99);
        let pairs: Vec<_> = m.iter().collect();
        assert_eq!(pairs, vec![(0, 0), (1, 99)]);
    }

    #[test]
    fn meta_table_lru_victim() {
        let mut t = MetaTable::new(Lru, 1, 4);
        let mut rng = SmallRng::seed_from_u64(1);
        for way in 0..4 {
            t.on_fill(0, way);
        }
        t.on_hit(0, 0); // way 0 becomes most recent; way 1 is now LRU
        assert_eq!(t.victim(0, &mut rng), 1);
    }

    #[test]
    fn meta_table_generic_over_kind() {
        let mut t = MetaTable::new(PolicyKind::Fifo, 2, 2);
        let mut rng = SmallRng::seed_from_u64(1);
        t.on_fill(1, 0);
        t.on_fill(1, 1);
        t.on_hit(1, 0); // FIFO ignores hits
        assert_eq!(t.victim(1, &mut rng), 0);
    }
}
