//! Partial tags (paper Section 3.1).
//!
//! The adaptive scheme's shadow tag arrays only answer the question *"would
//! this block be in component cache A/B?"* — a heuristic, not a correctness
//! concern. They can therefore store only a few low-order tag bits (or an
//! XOR-fold of the tag), shrinking each shadow array from ~28 KB to ~12 KB
//! in the paper's 512 KB configuration. Occasional aliasing (two distinct
//! tags sharing a partial tag) merely perturbs the replacement decision.

use serde::{Deserialize, Serialize};
use std::fmt;

/// How a tag array stores tags.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TagMode {
    /// Store the complete tag. Exact, maximum storage.
    Full,
    /// Store only the `bits` low-order bits of the tag (the configuration
    /// evaluated in the paper; 4–12 bits in Figure 5).
    PartialLow {
        /// Number of retained low-order tag bits (1..=63).
        bits: u32,
    },
    /// Fold the whole tag into `bits` bits by XOR-ing successive
    /// `bits`-wide groups (mentioned as an alternative in Section 3.1).
    PartialXor {
        /// Width of the folded tag (1..=63).
        bits: u32,
    },
}

impl TagMode {
    /// Reduces a full tag to its stored representation.
    ///
    /// ```
    /// use cache_sim::TagMode;
    /// assert_eq!(TagMode::Full.store(0xabcd).raw(), 0xabcd);
    /// assert_eq!(TagMode::PartialLow { bits: 8 }.store(0xabcd).raw(), 0xcd);
    /// assert_eq!(TagMode::PartialXor { bits: 8 }.store(0xabcd).raw(), 0xab ^ 0xcd);
    /// ```
    #[inline]
    pub fn store(self, tag: u64) -> StoredTag {
        match self {
            TagMode::Full => StoredTag(tag),
            TagMode::PartialLow { bits } => StoredTag(tag & mask(bits)),
            TagMode::PartialXor { bits } => {
                let m = mask(bits);
                let mut acc = 0u64;
                let mut rest = tag;
                loop {
                    acc ^= rest & m;
                    rest >>= bits;
                    if rest == 0 {
                        break;
                    }
                }
                StoredTag(acc)
            }
        }
    }

    /// Number of stored tag bits given the full tag width `full_bits`
    /// (used by the storage-overhead model).
    #[inline]
    pub fn stored_bits(self, full_bits: u32) -> u32 {
        match self {
            TagMode::Full => full_bits,
            TagMode::PartialLow { bits } | TagMode::PartialXor { bits } => bits.min(full_bits),
        }
    }

    /// `true` when this mode can alias (i.e. is partial).
    #[inline]
    pub fn is_partial(self) -> bool {
        !matches!(self, TagMode::Full)
    }
}

impl fmt::Debug for TagMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TagMode::Full => write!(f, "full tags"),
            TagMode::PartialLow { bits } => write!(f, "{bits}-bit partial tags"),
            TagMode::PartialXor { bits } => write!(f, "{bits}-bit XOR-folded tags"),
        }
    }
}

#[inline]
fn mask(bits: u32) -> u64 {
    debug_assert!((1..=63).contains(&bits), "partial tag bits must be 1..=63");
    (1u64 << bits) - 1
}

/// A tag as stored in a tag array: either the full tag or its partial
/// representation, depending on the array's [`TagMode`].
///
/// Comparisons between stored tags are only meaningful within the same
/// tag mode; the type system cannot enforce that, but keeping a newtype
/// makes the boundary visible at call sites.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct StoredTag(pub(crate) u64);

impl StoredTag {
    /// Raw stored bits.
    #[inline]
    pub const fn raw(self) -> u64 {
        self.0
    }
}

impl fmt::Debug for StoredTag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "StoredTag({:#x})", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_is_identity() {
        for t in [0u64, 1, 0xffff_ffff_ffff, u64::MAX >> 1] {
            assert_eq!(TagMode::Full.store(t).raw(), t);
        }
    }

    #[test]
    fn partial_low_masks() {
        let m = TagMode::PartialLow { bits: 6 };
        assert_eq!(m.store(0b1111_1111).raw(), 0b11_1111);
        assert_eq!(m.store(0).raw(), 0);
    }

    #[test]
    fn partial_xor_folds_all_bits() {
        let m = TagMode::PartialXor { bits: 8 };
        // Changing any byte of the tag changes the fold.
        let base = m.store(0x11_22_33).raw();
        assert_eq!(base, 0x11 ^ 0x22 ^ 0x33);
        assert_ne!(m.store(0x12_22_33).raw(), base);
    }

    #[test]
    fn aliasing_happens_for_partial() {
        let m = TagMode::PartialLow { bits: 4 };
        assert_eq!(m.store(0x10), m.store(0x20));
        assert_eq!(m.store(0x10), m.store(0x0));
    }

    #[test]
    fn stored_bits_accounting() {
        assert_eq!(TagMode::Full.stored_bits(24), 24);
        assert_eq!(TagMode::PartialLow { bits: 8 }.stored_bits(24), 8);
        // Never report more bits than the full tag has.
        assert_eq!(TagMode::PartialLow { bits: 32 }.stored_bits(24), 24);
    }

    #[test]
    fn debug_rendering() {
        assert_eq!(format!("{:?}", TagMode::Full), "full tags");
        assert_eq!(
            format!("{:?}", TagMode::PartialLow { bits: 8 }),
            "8-bit partial tags"
        );
    }
}
