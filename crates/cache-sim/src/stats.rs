//! Cache statistics.

use serde::{Deserialize, Serialize};

/// Counters kept by every cache organisation ([`crate::Cache`], the
/// adaptive variants, ...).
///
/// The paper's figures are expressed in **MPKI** (misses per thousand
/// instructions); since only the driver knows the instruction count,
/// [`CacheStats::mpki`] takes it as a parameter.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Total demand accesses.
    pub accesses: u64,
    /// Demand hits.
    pub hits: u64,
    /// Demand misses.
    pub misses: u64,
    /// Misses caused by reads.
    pub read_misses: u64,
    /// Misses caused by writes.
    pub write_misses: u64,
    /// Valid blocks replaced.
    pub evictions: u64,
    /// Dirty blocks written back on eviction.
    pub writebacks: u64,
}

impl CacheStats {
    /// Records an access outcome in the counters. Public so that external
    /// [`crate::CacheModel`] implementations (the adaptive organisations)
    /// can share the bookkeeping.
    #[inline]
    pub fn record(&mut self, hit: bool, write: bool) {
        // Branch on `hit` rather than computing conditional increments:
        // callers reach this right after branching on the same hit/miss
        // outcome, so the branch here is perfectly correlated (near-free),
        // while the branchless form compiled to a vector read-modify-write
        // of the whole counter block — a loop-carried dependency chain.
        self.accesses += 1;
        if hit {
            self.hits += 1;
        } else {
            self.misses += 1;
            if write {
                self.write_misses += 1;
            } else {
                self.read_misses += 1;
            }
        }
    }

    /// Accumulates `other` into `self`, so sharded or parallel sweeps can
    /// aggregate per-worker statistics without hand-rolled field addition.
    ///
    /// ```
    /// use cache_sim::CacheStats;
    /// let mut total = CacheStats { accesses: 10, misses: 4, ..Default::default() };
    /// let shard = CacheStats { accesses: 5, misses: 1, ..Default::default() };
    /// total.merge(&shard);
    /// assert_eq!(total.accesses, 15);
    /// assert_eq!(total.misses, 5);
    /// ```
    pub fn merge(&mut self, other: &CacheStats) {
        self.accesses += other.accesses;
        self.hits += other.hits;
        self.misses += other.misses;
        self.read_misses += other.read_misses;
        self.write_misses += other.write_misses;
        self.evictions += other.evictions;
        self.writebacks += other.writebacks;
    }

    /// Flushes these statistics to the installed telemetry recorder as
    /// counters dimensioned by `label` (a no-op when telemetry is
    /// disabled). Counters are cumulative — call once per finished run,
    /// not per access.
    pub fn flush_telemetry(&self, label: &str) {
        if let Some(r) = ac_telemetry::recorder() {
            r.counter_add("cache_accesses_total", label, self.accesses);
            r.counter_add("cache_hits_total", label, self.hits);
            r.counter_add("cache_misses_total", label, self.misses);
            r.counter_add("cache_read_misses_total", label, self.read_misses);
            r.counter_add("cache_write_misses_total", label, self.write_misses);
            r.counter_add("cache_evictions_total", label, self.evictions);
            r.counter_add("cache_writebacks_total", label, self.writebacks);
        }
    }

    /// Miss ratio in `[0, 1]`; 0 when there were no accesses.
    #[must_use]
    pub fn miss_ratio(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }

    /// Hit ratio in `[0, 1]`; 0 when there were no accesses.
    #[must_use]
    pub fn hit_ratio(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.hits as f64 / self.accesses as f64
        }
    }

    /// Misses per thousand instructions.
    ///
    /// ```
    /// use cache_sim::CacheStats;
    /// let s = CacheStats { misses: 500, ..Default::default() };
    /// assert_eq!(s.mpki(100_000), 5.0);
    /// ```
    #[must_use]
    pub fn mpki(&self, instructions: u64) -> f64 {
        if instructions == 0 {
            0.0
        } else {
            self.misses as f64 * 1000.0 / instructions as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_classifies_misses() {
        let mut s = CacheStats::default();
        s.record(false, false);
        s.record(false, true);
        s.record(true, false);
        assert_eq!(s.accesses, 3);
        assert_eq!(s.hits, 1);
        assert_eq!(s.misses, 2);
        assert_eq!(s.read_misses, 1);
        assert_eq!(s.write_misses, 1);
    }

    #[test]
    fn ratios() {
        let mut s = CacheStats::default();
        assert_eq!(s.miss_ratio(), 0.0);
        assert_eq!(s.hit_ratio(), 0.0);
        for _ in 0..3 {
            s.record(true, false);
        }
        s.record(false, false);
        assert!((s.miss_ratio() - 0.25).abs() < 1e-12);
        assert!((s.hit_ratio() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn merge_sums_every_field() {
        let mut a = CacheStats {
            accesses: 10,
            hits: 6,
            misses: 4,
            read_misses: 3,
            write_misses: 1,
            evictions: 2,
            writebacks: 1,
        };
        let b = CacheStats {
            accesses: 7,
            hits: 2,
            misses: 5,
            read_misses: 4,
            write_misses: 1,
            evictions: 5,
            writebacks: 3,
        };
        a.merge(&b);
        assert_eq!(
            a,
            CacheStats {
                accesses: 17,
                hits: 8,
                misses: 9,
                read_misses: 7,
                write_misses: 2,
                evictions: 7,
                writebacks: 4,
            }
        );
    }

    #[test]
    fn merge_identity_is_default() {
        let mut s = CacheStats {
            accesses: 3,
            hits: 1,
            misses: 2,
            ..Default::default()
        };
        let before = s;
        s.merge(&CacheStats::default());
        assert_eq!(s, before);
    }

    #[test]
    fn mpki_handles_zero_instructions() {
        let s = CacheStats {
            misses: 10,
            ..Default::default()
        };
        assert_eq!(s.mpki(0), 0.0);
        assert_eq!(s.mpki(1000), 10.0);
    }
}
