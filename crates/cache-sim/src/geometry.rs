//! Cache geometry: size / line size / associativity and the derived
//! address decomposition (offset, index, tag).

use crate::addr::{Address, BlockAddr};
use serde::{Deserialize, Serialize};
use std::error::Error;
use std::fmt;

/// Errors raised when constructing an invalid [`Geometry`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum GeometryError {
    /// The total cache size in bytes is zero or not a multiple of
    /// `line_bytes * associativity`.
    SizeNotDivisible {
        /// Requested total size in bytes.
        size_bytes: usize,
        /// Requested line size in bytes.
        line_bytes: usize,
        /// Requested associativity.
        associativity: usize,
    },
    /// The line size is zero or not a power of two.
    LineNotPowerOfTwo(usize),
    /// The associativity is zero.
    ZeroAssociativity,
    /// The derived number of sets is not a power of two.
    ///
    /// Non-power-of-two set counts are supported via
    /// [`Geometry::with_sets`] (used by the paper's 9-way / 10-way
    /// comparison caches, which keep 1024 sets); this error is only
    /// raised by [`Geometry::new`], which derives the set count from the
    /// total size.
    SetsNotPowerOfTwo(usize),
}

impl fmt::Display for GeometryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GeometryError::SizeNotDivisible {
                size_bytes,
                line_bytes,
                associativity,
            } => write!(
                f,
                "cache size {size_bytes} B is not a positive multiple of \
                 line size {line_bytes} B x associativity {associativity}"
            ),
            GeometryError::LineNotPowerOfTwo(n) => {
                write!(f, "line size {n} B is not a power of two")
            }
            GeometryError::ZeroAssociativity => write!(f, "associativity must be at least 1"),
            GeometryError::SetsNotPowerOfTwo(n) => {
                write!(f, "derived set count {n} is not a power of two")
            }
        }
    }
}

impl Error for GeometryError {}

/// A validated cache geometry.
///
/// A geometry fixes the line size, associativity and number of sets, and
/// provides the address decomposition used by every cache structure:
///
/// ```text
///  byte address:  | tag | set index | line offset |
/// ```
///
/// The set index is taken from the *block* address (byte address shifted by
/// the line-offset bits). When the set count is not a power of two (the
/// paper's 576 KB 9-way and 640 KB 10-way comparison points keep 1024 sets,
/// so this only arises in user configurations), indexing falls back to a
/// modulo operation and the tag keeps all remaining bits.
///
/// ```
/// use cache_sim::{Address, Geometry};
///
/// // The paper's L2: 512 KB, 64 B lines, 8-way => 1024 sets.
/// let g = Geometry::new(512 * 1024, 64, 8).unwrap();
/// assert_eq!(g.num_sets(), 1024);
/// let block = g.block_of(Address::new(0x12_3456));
/// assert_eq!(g.set_index(block), (0x12_3456 >> 6) % 1024);
/// ```
#[derive(Copy, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Geometry {
    line_bytes: usize,
    associativity: usize,
    num_sets: usize,
    offset_bits: u32,
    /// `Some(bits)` when `num_sets` is a power of two, `None` for modulo
    /// indexing.
    index_bits: Option<u32>,
}

impl Geometry {
    /// Creates a geometry from total data size, line size and associativity.
    ///
    /// # Errors
    ///
    /// Returns a [`GeometryError`] if the line size is not a power of two,
    /// the associativity is zero, the size is not divisible by
    /// `line_bytes * associativity`, or the derived set count is not a
    /// power of two (use [`Geometry::with_sets`] for odd organisations).
    pub fn new(
        size_bytes: usize,
        line_bytes: usize,
        associativity: usize,
    ) -> Result<Self, GeometryError> {
        if line_bytes == 0 || !line_bytes.is_power_of_two() {
            return Err(GeometryError::LineNotPowerOfTwo(line_bytes));
        }
        if associativity == 0 {
            return Err(GeometryError::ZeroAssociativity);
        }
        let way_bytes = line_bytes * associativity;
        if size_bytes == 0 || !size_bytes.is_multiple_of(way_bytes) {
            return Err(GeometryError::SizeNotDivisible {
                size_bytes,
                line_bytes,
                associativity,
            });
        }
        let num_sets = size_bytes / way_bytes;
        if !num_sets.is_power_of_two() {
            return Err(GeometryError::SetsNotPowerOfTwo(num_sets));
        }
        Ok(Self::build(line_bytes, associativity, num_sets))
    }

    /// Creates a geometry directly from a set count and associativity.
    ///
    /// Unlike [`Geometry::new`], the set count does not have to be a power
    /// of two; non-power-of-two set counts use modulo indexing. This is how
    /// the 9-way (576 KB) and 10-way (640 KB) comparison caches of the
    /// paper's Figure 6 are expressed while keeping 1024 sets:
    ///
    /// # Errors
    ///
    /// Returns a [`GeometryError`] if the line size is not a power of two
    /// or the associativity or set count is zero.
    ///
    /// ```
    /// use cache_sim::Geometry;
    /// let g = Geometry::with_sets(1024, 64, 10).unwrap();
    /// assert_eq!(g.size_bytes(), 640 * 1024);
    /// ```
    pub fn with_sets(
        num_sets: usize,
        line_bytes: usize,
        associativity: usize,
    ) -> Result<Self, GeometryError> {
        if line_bytes == 0 || !line_bytes.is_power_of_two() {
            return Err(GeometryError::LineNotPowerOfTwo(line_bytes));
        }
        if associativity == 0 {
            return Err(GeometryError::ZeroAssociativity);
        }
        if num_sets == 0 {
            return Err(GeometryError::SizeNotDivisible {
                size_bytes: 0,
                line_bytes,
                associativity,
            });
        }
        Ok(Self::build(line_bytes, associativity, num_sets))
    }

    fn build(line_bytes: usize, associativity: usize, num_sets: usize) -> Self {
        Geometry {
            line_bytes,
            associativity,
            num_sets,
            offset_bits: line_bytes.trailing_zeros(),
            index_bits: num_sets
                .is_power_of_two()
                .then(|| num_sets.trailing_zeros()),
        }
    }

    /// Total data capacity in bytes.
    #[inline]
    pub fn size_bytes(&self) -> usize {
        self.line_bytes * self.associativity * self.num_sets
    }

    /// Cache line size in bytes.
    #[inline]
    pub fn line_bytes(&self) -> usize {
        self.line_bytes
    }

    /// Number of ways per set.
    #[inline]
    pub fn associativity(&self) -> usize {
        self.associativity
    }

    /// Number of sets.
    #[inline]
    pub fn num_sets(&self) -> usize {
        self.num_sets
    }

    /// Number of line-offset bits (`log2(line_bytes)`).
    #[inline]
    pub fn offset_bits(&self) -> u32 {
        self.offset_bits
    }

    /// Number of set-index bits, or `None` when the set count is not a
    /// power of two (modulo indexing).
    #[inline]
    pub fn index_bits(&self) -> Option<u32> {
        self.index_bits
    }

    /// Converts a byte address to its block (line) address.
    #[inline]
    pub fn block_of(&self, addr: Address) -> BlockAddr {
        BlockAddr::new(addr.raw() >> self.offset_bits)
    }

    /// The set a block maps to.
    #[inline]
    pub fn set_index(&self, block: BlockAddr) -> usize {
        match self.index_bits {
            Some(bits) => (block.raw() & ((1u64 << bits) - 1)) as usize,
            None => (block.raw() % self.num_sets as u64) as usize,
        }
    }

    /// The tag of a block (the block address with the index bits removed).
    ///
    /// With modulo indexing the full block address is used as the tag,
    /// which is always sufficient to disambiguate.
    #[inline]
    pub fn tag(&self, block: BlockAddr) -> u64 {
        match self.index_bits {
            Some(bits) => block.raw() >> bits,
            None => block.raw(),
        }
    }

    /// Reconstructs a block address from a (tag, set) pair.
    ///
    /// Inverse of ([`Geometry::tag`], [`Geometry::set_index`]) for
    /// power-of-two set counts; with modulo indexing the tag *is* the block
    /// address.
    #[inline]
    pub fn block_from_parts(&self, tag: u64, set: usize) -> BlockAddr {
        match self.index_bits {
            Some(bits) => BlockAddr::new((tag << bits) | set as u64),
            None => BlockAddr::new(tag),
        }
    }

    /// Number of tag bits assuming `pa_bits` of physical address
    /// (the paper's storage arithmetic uses 40-bit physical addresses).
    pub fn tag_bits(&self, pa_bits: u32) -> u32 {
        let used = self.offset_bits + self.index_bits.unwrap_or(0);
        pa_bits.saturating_sub(used)
    }
}

impl fmt::Debug for Geometry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Geometry({} KB: {} sets x {} ways x {} B lines)",
            self.size_bytes() / 1024,
            self.num_sets,
            self.associativity,
            self.line_bytes
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_l2_geometry() {
        let g = Geometry::new(512 * 1024, 64, 8).unwrap();
        assert_eq!(g.num_sets(), 1024);
        assert_eq!(g.offset_bits(), 6);
        assert_eq!(g.index_bits(), Some(10));
        assert_eq!(g.size_bytes(), 512 * 1024);
        // Paper: 40-bit PA => 24-bit tags.
        assert_eq!(g.tag_bits(40), 24);
    }

    #[test]
    fn paper_l1_geometry() {
        let g = Geometry::new(16 * 1024, 64, 4).unwrap();
        assert_eq!(g.num_sets(), 64);
    }

    #[test]
    fn decompose_recompose() {
        let g = Geometry::new(512 * 1024, 64, 8).unwrap();
        for raw in [0u64, 0x3f, 0x40, 0xdead_beef, u64::from(u32::MAX)] {
            let b = g.block_of(Address::new(raw));
            let (t, s) = (g.tag(b), g.set_index(b));
            assert_eq!(g.block_from_parts(t, s), b, "raw={raw:#x}");
        }
    }

    #[test]
    fn nine_way_with_sets() {
        let g = Geometry::with_sets(1024, 64, 9).unwrap();
        assert_eq!(g.size_bytes(), 576 * 1024);
        assert_eq!(g.num_sets(), 1024);
        let b = g.block_of(Address::new(0xabcdef));
        assert_eq!(g.block_from_parts(g.tag(b), g.set_index(b)), b);
    }

    #[test]
    fn modulo_indexing_roundtrip() {
        let g = Geometry::with_sets(3, 64, 2).unwrap();
        assert!(g.index_bits().is_none());
        for raw in 0..1000u64 {
            let b = g.block_of(Address::new(raw * 64));
            assert!(g.set_index(b) < 3);
            assert_eq!(g.block_from_parts(g.tag(b), g.set_index(b)), b);
        }
    }

    #[test]
    fn rejects_bad_line() {
        assert_eq!(
            Geometry::new(1024, 48, 2),
            Err(GeometryError::LineNotPowerOfTwo(48))
        );
        assert_eq!(
            Geometry::new(1024, 0, 2),
            Err(GeometryError::LineNotPowerOfTwo(0))
        );
    }

    #[test]
    fn rejects_zero_assoc() {
        assert_eq!(
            Geometry::new(1024, 64, 0),
            Err(GeometryError::ZeroAssociativity)
        );
        assert_eq!(
            Geometry::with_sets(16, 64, 0),
            Err(GeometryError::ZeroAssociativity)
        );
    }

    #[test]
    fn rejects_indivisible_size() {
        assert!(matches!(
            Geometry::new(1000, 64, 2),
            Err(GeometryError::SizeNotDivisible { .. })
        ));
    }

    #[test]
    fn rejects_non_pow2_sets_in_new() {
        // 3 sets derived from size.
        assert_eq!(
            Geometry::new(3 * 64 * 2, 64, 2),
            Err(GeometryError::SetsNotPowerOfTwo(3))
        );
    }

    #[test]
    fn error_messages_are_informative() {
        let e = Geometry::new(1000, 64, 2).unwrap_err();
        let msg = e.to_string();
        assert!(msg.contains("1000"), "{msg}");
        assert!(msg.contains("64"), "{msg}");
    }

    #[test]
    fn fully_associative_geometry() {
        let g = Geometry::new(4096, 64, 64).unwrap();
        assert_eq!(g.num_sets(), 1);
        assert_eq!(g.set_index(g.block_of(Address::new(0xffff))), 0);
    }

    #[test]
    fn direct_mapped_geometry() {
        let g = Geometry::new(4096, 64, 1).unwrap();
        assert_eq!(g.num_sets(), 64);
    }
}
