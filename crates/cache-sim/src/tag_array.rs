//! Tag directories and policy-managed tag arrays.
//!
//! [`Directory`] is the bare tag store (valid/dirty bits + stored tags);
//! [`TagArray`] binds a directory to a [`ReplacementPolicy`] and drives it
//! autonomously. The adaptive cache (crate `adaptive-cache`) uses
//! `TagArray`s as its *shadow* ("parallel") tag structures — one per
//! component policy — and a bare `Directory` for its real contents, whose
//! victims are chosen by the adaptivity logic rather than by a single
//! policy.
//!
//! # Layout
//!
//! The directory is stored structure-of-arrays: per-set `u64` valid and
//! dirty bitmasks plus one contiguous tag-word vector, so an 8-way set's
//! entire lookup state (mask word + 8 tag words) spans a single cache line
//! region instead of eight padded structs. Set scans (`find`,
//! `invalid_way`, `valid_count`) are branchless mask-and-compare loops
//! over these words. Partial-tag directories of at most 8 stored bits and
//! 8 ways additionally keep each set's tags swizzled into one `u64` (one
//! byte per way) and match a probe with a single SWAR word compare.

use crate::addr::BlockAddr;
use crate::geometry::Geometry;
use crate::meta::MetaTable;
use crate::partial::{StoredTag, TagMode};
use crate::policy::{PolicyKind, ReplacementPolicy};
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Maximum supported associativity: one way per bit of the per-set masks.
pub const MAX_ASSOC: usize = 64;

const LANE_LSB: u64 = 0x0101_0101_0101_0101;
const LANE_MSB: u64 = 0x8080_8080_8080_8080;

/// One way of one set: a stored tag plus valid and dirty bits.
///
/// Since the packed-layout rework this is a *report* type (returned by
/// [`Directory::fill_at`] / [`Directory::invalidate`] and carried in
/// [`TagAccess::evicted`]), not the storage representation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Way {
    /// Whether this way holds a block.
    pub valid: bool,
    /// The stored (possibly partial) tag; meaningless when `!valid`.
    pub tag: StoredTag,
    /// Whether the block has been written since it was filled.
    pub dirty: bool,
}

/// Record-word offset of the valid bitmask.
const REC_VALID: usize = 0;
/// Record-word offset of the dirty bitmask.
const REC_DIRTY: usize = 1;
/// Record-word offset of the SWAR lane (present only on eligible
/// partial-tag directories).
const REC_PACKED: usize = 2;

/// A bare tag directory: `num_sets x associativity` ways of
/// (valid, dirty, stored tag) with no replacement policy attached.
///
/// Tags are stored through a [`TagMode`], so the same type backs both
/// full-tag directories (real caches) and partial-tag shadow arrays.
#[derive(Debug)]
pub struct Directory {
    geom: Geometry,
    tag_mode: TagMode,
    assoc: usize,
    /// Bitmask covering ways `0..assoc`.
    full_mask: u64,
    /// Words per set record: `tag_off + assoc` rounded up to a power of
    /// two, so records never straddle more cache lines than they must and
    /// the set-to-base multiply strength-reduces to a shift.
    stride: usize,
    /// Record-word offset of the first tag word (2, or 3 with a SWAR lane).
    tag_off: usize,
    /// Word index of set 0's record inside `words` (chosen so records are
    /// 64-byte aligned; see [`aligned_zeroed`]).
    off: usize,
    /// Per-set records, one contiguous run of `stride` words each:
    /// `[valid bitmask, dirty bitmask, (SWAR lane,) tag words..., pad]`.
    /// Keeping every word a set lookup touches in one aligned record
    /// means an access pulls one or two adjacent cache lines instead of
    /// one line per parallel array. Tag entries of invalid ways are stale
    /// and must be masked by the valid word.
    words: Vec<u64>,
}

/// Allocates `n` zeroed words plus slack, returning the vector and the
/// element offset at which a 64-byte cache-line boundary falls. Indexing
/// from that offset keeps power-of-two records line-aligned without any
/// unsafe allocator calls.
fn aligned_zeroed(n: usize) -> (Vec<u64>, usize) {
    let v = vec![0u64; n + 7];
    let off = v.as_ptr().align_offset(64);
    debug_assert!(off <= 7);
    (v, off)
}

impl Clone for Directory {
    fn clone(&self) -> Self {
        // The alignment offset is allocation-specific, so clone by copying
        // the record region into a freshly aligned vector.
        let n = self.geom.num_sets() * self.stride;
        let (mut words, off) = aligned_zeroed(n);
        words[off..off + n].copy_from_slice(&self.words[self.off..self.off + n]);
        Directory {
            words,
            off,
            ..*self
        }
    }
}

impl Directory {
    /// Creates an empty directory for `geom` storing tags per `tag_mode`.
    ///
    /// # Panics
    ///
    /// Panics if the associativity exceeds [`MAX_ASSOC`] (64): the packed
    /// layout keeps one bitmask word per set.
    pub fn new(geom: Geometry, tag_mode: TagMode) -> Self {
        let assoc = geom.associativity();
        assert!(
            assoc <= MAX_ASSOC,
            "associativity {assoc} exceeds the packed directory limit of {MAX_ASSOC}"
        );
        let sets = geom.num_sets();
        let tag_off = if Self::swar_eligible(tag_mode, assoc) {
            REC_PACKED + 1
        } else {
            REC_PACKED
        };
        let stride = (tag_off + assoc).next_power_of_two();
        let (words, off) = aligned_zeroed(sets * stride);
        Directory {
            geom,
            tag_mode,
            assoc,
            full_mask: full_mask(assoc),
            stride,
            tag_off,
            off,
            words,
        }
    }

    #[inline]
    fn swar_eligible(tag_mode: TagMode, assoc: usize) -> bool {
        match tag_mode {
            TagMode::Full => false,
            TagMode::PartialLow { bits } | TagMode::PartialXor { bits } => {
                bits <= 8 && assoc <= 8
            }
        }
    }

    /// The directory's geometry.
    #[inline]
    pub fn geometry(&self) -> &Geometry {
        &self.geom
    }

    /// The directory's tag mode.
    #[inline]
    pub fn tag_mode(&self) -> TagMode {
        self.tag_mode
    }

    /// Reduces a block address to (set index, stored tag).
    #[inline]
    pub fn locate(&self, block: BlockAddr) -> (usize, StoredTag) {
        (
            self.geom.set_index(block),
            self.tag_mode.store(self.geom.tag(block)),
        )
    }

    #[inline]
    fn base(&self, set: usize) -> usize {
        self.off + set * self.stride
    }

    /// The whole record of `set`: `[valid, dirty, (packed,) tags...]`.
    #[inline]
    fn rec(&self, set: usize) -> &[u64] {
        let b = self.base(set);
        &self.words[b..b + self.stride]
    }

    /// The valid bitmask of `set` (bit `w` set = way `w` holds a block).
    #[inline]
    pub fn valid_mask(&self, set: usize) -> u64 {
        self.words[self.base(set) + REC_VALID]
    }

    /// Whether `(set, way)` holds a block.
    #[inline]
    pub fn is_valid(&self, set: usize, way: usize) -> bool {
        debug_assert!(way < self.assoc);
        self.valid_mask(set) >> way & 1 != 0
    }

    /// Whether `(set, way)` is dirty.
    #[inline]
    pub fn is_dirty(&self, set: usize, way: usize) -> bool {
        debug_assert!(way < self.assoc);
        self.words[self.base(set) + REC_DIRTY] >> way & 1 != 0
    }

    /// The stored tag of `(set, way)`; meaningless unless the way is valid.
    #[inline]
    pub fn way_tag(&self, set: usize, way: usize) -> StoredTag {
        debug_assert!(way < self.assoc);
        StoredTag(self.words[self.base(set) + self.tag_off + way])
    }

    /// Bitmask of the valid ways of `set` whose stored tag equals
    /// `stored` — the branchless core of [`Directory::find`] and
    /// [`Directory::contains`].
    ///
    /// Forced inline: callers run this once per simulated access, and
    /// inlining lets the layout fields (`tag_off`, `assoc`, `stride`) and
    /// the path dispatch below hoist out of trace loops entirely.
    #[inline(always)]
    pub fn match_mask(&self, set: usize, stored: StoredTag) -> u64 {
        let rec = self.rec(set);
        let valid = rec[REC_VALID];
        if self.tag_off > REC_PACKED {
            // SWAR path: compare all (<= 8) ways with one swizzled word.
            let x = rec[REC_PACKED] ^ stored.0.wrapping_mul(LANE_LSB);
            // Carry-free per-byte zero detect (no cross-byte borrows, so
            // stale bytes of invalid ways cannot corrupt neighbours).
            let t = (x & !LANE_MSB).wrapping_add(!LANE_MSB);
            let zero = !(t | x) & LANE_MSB;
            // Collapse byte-high-bits to way bits: bit 8w+7 -> bit w.
            let eq = (zero >> 7).wrapping_mul(0x0102_0408_1020_4080) >> 56;
            return eq & valid;
        }
        let tags = &rec[self.tag_off..self.tag_off + self.assoc];
        // Compile-time-width scans for the common associativities: the
        // known trip count lets the compiler unroll and vectorise the
        // compares instead of emitting a generic counted loop.
        if let Ok(a) = <&[u64; 8]>::try_from(tags) {
            let mut eq = 0u64;
            for (w, &t) in a.iter().enumerate() {
                eq |= u64::from(t == stored.0) << w;
            }
            return eq & valid;
        }
        if let Ok(a) = <&[u64; 4]>::try_from(tags) {
            let mut eq = 0u64;
            for (w, &t) in a.iter().enumerate() {
                eq |= u64::from(t == stored.0) << w;
            }
            return eq & valid;
        }
        let mut eq = 0u64;
        for (w, &t) in tags.iter().enumerate() {
            eq |= u64::from(t == stored.0) << w;
        }
        eq & valid
    }

    /// Finds the way of `set` holding `stored`, if any.
    #[inline]
    pub fn find(&self, set: usize, stored: StoredTag) -> Option<usize> {
        let m = self.match_mask(set, stored);
        (m != 0).then(|| m.trailing_zeros() as usize)
    }

    /// Whether `set` holds `stored`.
    #[inline]
    pub fn contains(&self, set: usize, stored: StoredTag) -> bool {
        self.match_mask(set, stored) != 0
    }

    /// Whether the directory holds `block` (full lookup).
    #[inline]
    pub fn contains_block(&self, block: BlockAddr) -> bool {
        let (set, stored) = self.locate(block);
        self.contains(set, stored)
    }

    /// First invalid way of `set`, if any.
    #[inline]
    pub fn invalid_way(&self, set: usize) -> Option<usize> {
        let free = self.free_mask(set);
        (free != 0).then(|| free.trailing_zeros() as usize)
    }

    /// Bitmask of the invalid (fillable) ways of `set`.
    #[inline]
    pub fn free_mask(&self, set: usize) -> u64 {
        !self.valid_mask(set) & self.full_mask
    }

    /// Reduces the full tags of `set`'s valid ways through `mode`, writing
    /// `out[w]` for each valid way `w`, and returns the set's valid mask.
    ///
    /// This is the fused-pass helper for the adaptive replacement
    /// algorithm: it hoists the per-way `mode.store(tag)` conversions of
    /// the Case-1 ("same victim") and Case-2 ("not in shadow") scans into
    /// one loop with the tag-mode dispatch resolved once per call. Only
    /// meaningful on full-tag directories (the adaptive cache's real
    /// contents).
    pub fn reduced_tags(&self, set: usize, mode: TagMode, out: &mut [StoredTag; MAX_ASSOC]) -> u64 {
        debug_assert!(
            !self.tag_mode.is_partial(),
            "reduced_tags re-reduces full tags; the directory already stores partial ones"
        );
        let rec = self.rec(set);
        let valid = rec[REC_VALID];
        let tags = &rec[self.tag_off..self.tag_off + self.assoc];
        match mode {
            TagMode::Full => {
                let mut m = valid;
                while m != 0 {
                    let w = m.trailing_zeros() as usize;
                    m &= m - 1;
                    out[w] = StoredTag(tags[w]);
                }
            }
            _ => {
                let mut m = valid;
                while m != 0 {
                    let w = m.trailing_zeros() as usize;
                    m &= m - 1;
                    out[w] = mode.store(tags[w]);
                }
            }
        }
        valid
    }

    #[inline]
    fn set_packed_byte(rec: &mut [u64], tag_off: usize, way: usize, tag: u64) {
        if tag_off > REC_PACKED {
            let shift = 8 * way;
            rec[REC_PACKED] = (rec[REC_PACKED] & !(0xFFu64 << shift)) | (tag << shift);
        }
    }

    /// Installs `stored` into `(set, way)` and returns the evicted way
    /// (if it was valid).
    #[inline(always)]
    pub fn fill_at(&mut self, set: usize, way: usize, stored: StoredTag) -> Option<Way> {
        debug_assert!(way < self.assoc);
        let bit = 1u64 << way;
        let b = self.base(set);
        let tag_off = self.tag_off;
        let rec = &mut self.words[b..b + self.stride];
        let old = Way {
            valid: rec[REC_VALID] & bit != 0,
            tag: StoredTag(rec[tag_off + way]),
            dirty: rec[REC_DIRTY] & bit != 0,
        };
        rec[REC_VALID] |= bit;
        rec[REC_DIRTY] &= !bit;
        rec[tag_off + way] = stored.0;
        Self::set_packed_byte(rec, tag_off, way, stored.0);
        old.valid.then_some(old)
    }

    /// Marks `(set, way)` dirty.
    #[inline]
    pub fn mark_dirty(&mut self, set: usize, way: usize) {
        let bit = 1u64 << way;
        let b = self.base(set);
        debug_assert!(self.words[b + REC_VALID] & bit != 0);
        self.words[b + REC_DIRTY] |= bit;
    }

    /// Invalidates `(set, way)`, returning its previous contents if valid.
    pub fn invalidate(&mut self, set: usize, way: usize) -> Option<Way> {
        debug_assert!(way < self.assoc);
        let bit = 1u64 << way;
        let b = self.base(set);
        let tag_off = self.tag_off;
        let rec = &mut self.words[b..b + self.stride];
        let old = Way {
            valid: rec[REC_VALID] & bit != 0,
            tag: StoredTag(rec[tag_off + way]),
            dirty: rec[REC_DIRTY] & bit != 0,
        };
        rec[REC_VALID] &= !bit;
        rec[REC_DIRTY] &= !bit;
        rec[tag_off + way] = 0;
        Self::set_packed_byte(rec, tag_off, way, 0);
        old.valid.then_some(old)
    }

    /// Number of valid ways in `set`.
    pub fn valid_count(&self, set: usize) -> usize {
        self.valid_mask(set).count_ones() as usize
    }
}

#[inline]
fn full_mask(assoc: usize) -> u64 {
    if assoc >= 64 {
        u64::MAX
    } else {
        (1u64 << assoc) - 1
    }
}

/// Statistics of a [`TagArray`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TagStats {
    /// Number of accesses that hit.
    pub hits: u64,
    /// Number of accesses that missed.
    pub misses: u64,
}

impl TagStats {
    /// Total accesses.
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }
}

/// Result of a single [`TagArray::access`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TagAccess {
    /// Whether the access hit.
    pub hit: bool,
    /// The way that now holds the block (hit way, or the fill way).
    pub way: usize,
    /// On a miss that replaced a valid block: the evicted way.
    pub evicted: Option<Way>,
}

/// A self-managed tag array: a [`Directory`] whose victims are chosen by a
/// [`ReplacementPolicy`].
///
/// This models both a conventional cache's tag side and the paper's shadow
/// tag structures. Accessing it fully simulates the component cache's
/// behaviour for the reference:
///
/// ```
/// use cache_sim::{Geometry, PolicyKind, TagArray, TagMode, Address};
///
/// let geom = Geometry::new(4096, 64, 4).unwrap();
/// let mut shadow = TagArray::new(geom, TagMode::PartialLow { bits: 8 },
///                                PolicyKind::Lru, 7);
/// let block = geom.block_of(Address::new(0x1000));
/// assert!(!shadow.access(block).hit);
/// assert!(shadow.access(block).hit);
/// ```
#[derive(Debug, Clone)]
pub struct TagArray<P: ReplacementPolicy = PolicyKind> {
    dir: Directory,
    meta: MetaTable<P>,
    rng: SmallRng,
    stats: TagStats,
}

impl<P: ReplacementPolicy> TagArray<P> {
    /// Creates an empty tag array.
    pub fn new(geom: Geometry, tag_mode: TagMode, policy: P, seed: u64) -> Self {
        TagArray {
            dir: Directory::new(geom, tag_mode),
            meta: MetaTable::new(policy, geom.num_sets(), geom.associativity()),
            rng: SmallRng::seed_from_u64(seed),
            stats: TagStats::default(),
        }
    }

    /// The underlying directory.
    #[inline]
    pub fn directory(&self) -> &Directory {
        &self.dir
    }

    /// Mutable access to the underlying directory (crate-internal: used by
    /// [`crate::Cache`] to maintain dirty bits).
    #[inline]
    pub(crate) fn directory_mut(&mut self) -> &mut Directory {
        &mut self.dir
    }

    /// The bound policy.
    #[inline]
    pub fn policy(&self) -> &P {
        self.meta.policy()
    }

    /// The array's geometry.
    #[inline]
    pub fn geometry(&self) -> &Geometry {
        self.dir.geometry()
    }

    /// The array's tag mode.
    #[inline]
    pub fn tag_mode(&self) -> TagMode {
        self.dir.tag_mode()
    }

    /// Hit/miss statistics.
    #[inline]
    pub fn stats(&self) -> TagStats {
        self.stats
    }

    /// Simulates one reference to `block`: on a hit the policy's hit update
    /// runs; on a miss the policy chooses a victim (after invalid ways are
    /// exhausted), the block is installed and the policy's fill update runs.
    #[inline]
    pub fn access(&mut self, block: BlockAddr) -> TagAccess {
        let (set, stored) = self.dir.locate(block);
        self.access_at(set, stored)
    }

    /// [`TagArray::access`] with the geometry decomposition precomputed:
    /// `set` must be the block's set index and `full_tag` its *full*
    /// geometry tag (this array reduces it through its own [`TagMode`]).
    ///
    /// Lets organisations that drive several arrays of one geometry (the
    /// adaptive cache's real + shadow structures) decompose each address
    /// once instead of once per array.
    #[inline]
    pub fn access_tag(&mut self, set: usize, full_tag: u64) -> TagAccess {
        let stored = self.dir.tag_mode().store(full_tag);
        self.access_at(set, stored)
    }

    /// [`TagArray::access`] with the location fully precomputed: `stored`
    /// must already be reduced through this array's [`TagMode`].
    ///
    /// The hit path (mask match + policy hit update) is forced inline into
    /// callers; the miss path (victim choice, fill, eviction bookkeeping)
    /// stays a call so the common case compiles to straight-line code.
    #[inline(always)]
    pub fn access_at(&mut self, set: usize, stored: StoredTag) -> TagAccess {
        // Work on raw masks rather than `Option` accessors: one data-
        // dependent hit/miss branch, everything else straight-line.
        let m = self.dir.match_mask(set, stored);
        if m != 0 {
            let way = m.trailing_zeros() as usize;
            self.stats.hits += 1;
            self.meta.on_hit(set, way);
            return TagAccess {
                hit: true,
                way,
                evicted: None,
            };
        }
        self.miss_at(set, stored)
    }

    /// Cold half of [`TagArray::access_at`]: install `stored` on a miss.
    fn miss_at(&mut self, set: usize, stored: StoredTag) -> TagAccess {
        self.stats.misses += 1;
        let free = self.dir.free_mask(set);
        let way = if free != 0 {
            free.trailing_zeros() as usize
        } else {
            self.meta.victim(set, &mut self.rng)
        };
        let evicted = self.dir.fill_at(set, way, stored);
        self.meta.on_fill(set, way);
        TagAccess {
            hit: false,
            way,
            evicted,
        }
    }

    /// Touches the directory and metadata records of `set` so that a
    /// shortly-following access to the same set finds them close to the
    /// core. Trace-driven loops call this a few references ahead to
    /// overlap the (otherwise serial) record fetches across accesses.
    #[inline]
    pub fn prefetch_set(&self, set: usize) {
        std::hint::black_box(self.dir.valid_mask(set) ^ self.meta.set_meta(set).tick());
    }

    /// Whether the array currently holds `block`.
    ///
    /// With partial tags this can produce false positives — exactly the
    /// aliasing behaviour the paper analyses in Section 3.1.
    #[inline]
    pub fn contains_block(&self, block: BlockAddr) -> bool {
        self.dir.contains_block(block)
    }

    /// Whether `set` holds the stored tag `stored` (for cross-array
    /// membership queries: the caller must have stored `stored` under this
    /// array's [`TagMode`]).
    #[inline]
    pub fn contains(&self, set: usize, stored: StoredTag) -> bool {
        self.dir.contains(set, stored)
    }

    /// Invalidate `block` if present (coherence-style back-invalidation).
    pub fn invalidate_block(&mut self, block: BlockAddr) -> bool {
        let (set, stored) = self.dir.locate(block);
        match self.dir.find(set, stored) {
            Some(way) => {
                self.dir.invalidate(set, way);
                true
            }
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::Address;
    use crate::policy::{Lru, Mru};

    fn geom() -> Geometry {
        Geometry::new(1024, 64, 4).unwrap() // 4 sets, 4 ways
    }

    fn block(g: &Geometry, n: u64) -> BlockAddr {
        // n distinct blocks all mapping to set 0.
        g.block_of(Address::new(n * 64 * g.num_sets() as u64))
    }

    #[test]
    fn fills_invalid_ways_first() {
        let g = geom();
        let mut a = TagArray::new(g, TagMode::Full, Lru, 1);
        for n in 0..4 {
            let acc = a.access(block(&g, n));
            assert!(!acc.hit);
            assert_eq!(acc.evicted, None, "no eviction while ways are free");
        }
        assert_eq!(a.stats().misses, 4);
    }

    #[test]
    fn lru_array_evicts_oldest_block() {
        let g = geom();
        let mut a = TagArray::new(g, TagMode::Full, Lru, 1);
        for n in 0..4 {
            a.access(block(&g, n));
        }
        a.access(block(&g, 0)); // refresh block 0
        let acc = a.access(block(&g, 9)); // set full -> evict block 1
        assert!(!acc.hit);
        assert!(acc.evicted.is_some());
        assert!(a.contains_block(block(&g, 0)));
        assert!(!a.contains_block(block(&g, 1)));
    }

    #[test]
    fn mru_array_keeps_old_blocks() {
        let g = geom();
        let mut a = TagArray::new(g, TagMode::Full, Mru, 1);
        for n in 0..4 {
            a.access(block(&g, n));
        }
        a.access(block(&g, 9)); // evicts block 3 (most recent)
        assert!(a.contains_block(block(&g, 0)));
        assert!(!a.contains_block(block(&g, 3)));
    }

    #[test]
    fn hits_are_counted() {
        let g = geom();
        let mut a = TagArray::new(g, TagMode::Full, Lru, 1);
        a.access(block(&g, 0));
        assert!(a.access(block(&g, 0)).hit);
        assert_eq!(a.stats(), TagStats { hits: 1, misses: 1 });
        assert_eq!(a.stats().accesses(), 2);
    }

    #[test]
    fn partial_tags_alias() {
        let g = Geometry::new(512 * 1024, 64, 8).unwrap();
        let mut a = TagArray::new(g, TagMode::PartialLow { bits: 4 }, Lru, 1);
        let b0 = g.block_of(Address::new(0));
        // Same set (index bits identical), tag differs only above bit 4.
        let alias = g.block_of(Address::new(1u64 << (6 + 10 + 4)));
        assert_ne!(g.tag(b0), g.tag(alias));
        a.access(b0);
        assert!(
            a.access(alias).hit,
            "4-bit partial tags must alias these blocks"
        );
    }

    #[test]
    fn full_tags_do_not_alias() {
        let g = Geometry::new(512 * 1024, 64, 8).unwrap();
        let mut a = TagArray::new(g, TagMode::Full, Lru, 1);
        a.access(g.block_of(Address::new(0)));
        assert!(!a.access(g.block_of(Address::new(1u64 << 20))).hit);
    }

    #[test]
    fn invalidate_block_removes_entry() {
        let g = geom();
        let mut a = TagArray::new(g, TagMode::Full, Lru, 1);
        let b = block(&g, 0);
        a.access(b);
        assert!(a.invalidate_block(b));
        assert!(!a.contains_block(b));
        assert!(!a.invalidate_block(b), "second invalidate is a no-op");
    }

    #[test]
    fn access_tag_matches_access() {
        let g = geom();
        let mut a = TagArray::new(g, TagMode::PartialLow { bits: 8 }, Lru, 1);
        let mut b = TagArray::new(g, TagMode::PartialLow { bits: 8 }, Lru, 1);
        let mut x = 11u64;
        for _ in 0..5_000 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let blk = BlockAddr::new(x % 2_000);
            let set = g.set_index(blk);
            let tag = g.tag(blk);
            assert_eq!(a.access(blk), b.access_tag(set, tag));
        }
        assert_eq!(a.stats(), b.stats());
    }

    #[test]
    fn directory_fill_and_dirty() {
        let g = geom();
        let mut d = Directory::new(g, TagMode::Full);
        let (set, stored) = d.locate(block(&g, 5));
        assert_eq!(d.valid_count(set), 0);
        assert_eq!(d.fill_at(set, 2, stored), None);
        d.mark_dirty(set, 2);
        assert!(d.is_dirty(set, 2));
        let old = d.fill_at(set, 2, d.locate(block(&g, 6)).1).unwrap();
        assert!(old.dirty, "eviction reports dirtiness of the old block");
        assert_eq!(d.valid_count(set), 1);
    }

    #[test]
    fn directory_invalidate() {
        let g = geom();
        let mut d = Directory::new(g, TagMode::Full);
        let (set, stored) = d.locate(block(&g, 1));
        d.fill_at(set, 0, stored);
        assert!(d.contains(set, stored));
        let old = d.invalidate(set, 0).unwrap();
        assert_eq!(old.tag, stored);
        assert!(!d.contains(set, stored));
        assert!(d.invalidate(set, 0).is_none());
    }

    #[test]
    fn masks_track_fill_state() {
        let g = geom();
        let mut d = Directory::new(g, TagMode::Full);
        assert_eq!(d.valid_mask(0), 0);
        assert_eq!(d.invalid_way(0), Some(0));
        d.fill_at(0, 0, StoredTag(7));
        d.fill_at(0, 2, StoredTag(9));
        assert_eq!(d.valid_mask(0), 0b0101);
        assert_eq!(d.invalid_way(0), Some(1));
        assert!(d.is_valid(0, 2));
        assert!(!d.is_valid(0, 1));
        assert_eq!(d.way_tag(0, 2), StoredTag(9));
        d.fill_at(0, 1, StoredTag(1));
        d.fill_at(0, 3, StoredTag(2));
        assert_eq!(d.invalid_way(0), None);
        assert_eq!(d.valid_count(0), 4);
    }

    #[test]
    fn swar_matches_scalar_semantics() {
        // An 8-bit partial, 8-way directory takes the swizzled-word path;
        // it must agree exactly with a wider directory forced onto the
        // scalar path for the same stored values.
        let g = Geometry::new(512 * 1024, 64, 8).unwrap();
        let mode = TagMode::PartialLow { bits: 8 };
        let mut swar = Directory::new(g, mode);
        let g16 = Geometry::new(1024 * 1024, 64, 16).unwrap(); // scalar path
        let mut scalar = Directory::new(g16, mode);
        let mut x = 5u64;
        for i in 0..4_000u64 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let tag = mode.store(x);
            let way = (x >> 8) % 8;
            if i % 7 == 0 {
                swar.invalidate(0, way as usize);
                scalar.invalidate(0, way as usize);
            } else {
                swar.fill_at(0, way as usize, tag);
                scalar.fill_at(0, way as usize, tag);
            }
            let probe = mode.store(x >> 16);
            assert_eq!(swar.find(0, probe), scalar.find(0, probe));
            assert_eq!(swar.find(0, tag), scalar.find(0, tag));
        }
    }

    #[test]
    fn swar_ignores_stale_invalid_tags() {
        let g = Geometry::new(4096, 64, 8).unwrap();
        let mode = TagMode::PartialLow { bits: 8 };
        let mut d = Directory::new(g, mode);
        let t = mode.store(0xAB);
        d.fill_at(0, 3, t);
        assert_eq!(d.find(0, t), Some(3));
        d.invalidate(0, 3);
        assert_eq!(d.find(0, t), None, "stale byte must not match");
        // Adjacent-byte borrow hazard: a matching byte next to a byte
        // whose xor-difference is 1 must not produce a phantom match.
        d.fill_at(0, 0, mode.store(0x10));
        d.fill_at(0, 1, mode.store(0x11));
        assert_eq!(d.find(0, mode.store(0x10)), Some(0));
        assert_eq!(d.find(0, mode.store(0x11)), Some(1));
        assert_eq!(d.find(0, mode.store(0x12)), None);
    }

    #[test]
    fn fully_associative_uses_all_64_ways() {
        let g = Geometry::new(4096, 64, 64).unwrap(); // 1 set, 64 ways
        let mut d = Directory::new(g, TagMode::Full);
        for w in 0..64 {
            assert_eq!(d.invalid_way(0), Some(w));
            d.fill_at(0, w, StoredTag(w as u64 + 100));
        }
        assert_eq!(d.invalid_way(0), None);
        assert_eq!(d.valid_count(0), 64);
        assert_eq!(d.find(0, StoredTag(163)), Some(63));
    }

    #[test]
    fn reduced_tags_reduce_like_store() {
        let g = geom();
        let mut d = Directory::new(g, TagMode::Full);
        d.fill_at(0, 0, StoredTag(0x1234));
        d.fill_at(0, 3, StoredTag(0xABCD));
        let mode = TagMode::PartialLow { bits: 8 };
        let mut out = [StoredTag::default(); MAX_ASSOC];
        let valid = d.reduced_tags(0, mode, &mut out);
        assert_eq!(valid, 0b1001);
        assert_eq!(out[0], mode.store(0x1234));
        assert_eq!(out[3], mode.store(0xABCD));
        let valid = d.reduced_tags(0, TagMode::Full, &mut out);
        assert_eq!(valid, 0b1001);
        assert_eq!(out[3], StoredTag(0xABCD));
    }

    #[test]
    #[should_panic(expected = "associativity")]
    fn rejects_oversized_associativity() {
        let g = Geometry::new(128 * 64, 64, 128).unwrap(); // 1 set, 128 ways
        let _ = Directory::new(g, TagMode::Full);
    }
}
