//! Tag directories and policy-managed tag arrays.
//!
//! [`Directory`] is the bare tag store (valid/dirty bits + stored tags);
//! [`TagArray`] binds a directory to a [`ReplacementPolicy`] and drives it
//! autonomously. The adaptive cache (crate `adaptive-cache`) uses
//! `TagArray`s as its *shadow* ("parallel") tag structures — one per
//! component policy — and a bare `Directory` for its real contents, whose
//! victims are chosen by the adaptivity logic rather than by a single
//! policy.

use crate::addr::BlockAddr;
use crate::geometry::Geometry;
use crate::meta::MetaTable;
use crate::partial::{StoredTag, TagMode};
use crate::policy::{PolicyKind, ReplacementPolicy};
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// One way of one set: a stored tag plus valid and dirty bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Way {
    /// Whether this way holds a block.
    pub valid: bool,
    /// The stored (possibly partial) tag; meaningless when `!valid`.
    pub tag: StoredTag,
    /// Whether the block has been written since it was filled.
    pub dirty: bool,
}

/// A bare tag directory: `num_sets x associativity` ways of
/// (valid, dirty, stored tag) with no replacement policy attached.
///
/// Tags are stored through a [`TagMode`], so the same type backs both
/// full-tag directories (real caches) and partial-tag shadow arrays.
#[derive(Debug, Clone)]
pub struct Directory {
    geom: Geometry,
    tag_mode: TagMode,
    ways: Vec<Way>, // set-major: index = set * assoc + way
}

impl Directory {
    /// Creates an empty directory for `geom` storing tags per `tag_mode`.
    pub fn new(geom: Geometry, tag_mode: TagMode) -> Self {
        Directory {
            geom,
            tag_mode,
            ways: vec![Way::default(); geom.num_sets() * geom.associativity()],
        }
    }

    /// The directory's geometry.
    #[inline]
    pub fn geometry(&self) -> &Geometry {
        &self.geom
    }

    /// The directory's tag mode.
    #[inline]
    pub fn tag_mode(&self) -> TagMode {
        self.tag_mode
    }

    /// Reduces a block address to (set index, stored tag).
    #[inline]
    pub fn locate(&self, block: BlockAddr) -> (usize, StoredTag) {
        (
            self.geom.set_index(block),
            self.tag_mode.store(self.geom.tag(block)),
        )
    }

    #[inline]
    fn base(&self, set: usize) -> usize {
        set * self.geom.associativity()
    }

    /// The ways of `set`.
    #[inline]
    pub fn set_ways(&self, set: usize) -> &[Way] {
        let b = self.base(set);
        &self.ways[b..b + self.geom.associativity()]
    }

    /// Finds the way of `set` holding `stored`, if any.
    #[inline]
    pub fn find(&self, set: usize, stored: StoredTag) -> Option<usize> {
        self.set_ways(set)
            .iter()
            .position(|w| w.valid && w.tag == stored)
    }

    /// Whether `set` holds `stored`.
    #[inline]
    pub fn contains(&self, set: usize, stored: StoredTag) -> bool {
        self.find(set, stored).is_some()
    }

    /// Whether the directory holds `block` (full lookup).
    #[inline]
    pub fn contains_block(&self, block: BlockAddr) -> bool {
        let (set, stored) = self.locate(block);
        self.contains(set, stored)
    }

    /// First invalid way of `set`, if any.
    #[inline]
    pub fn invalid_way(&self, set: usize) -> Option<usize> {
        self.set_ways(set).iter().position(|w| !w.valid)
    }

    /// Installs `stored` into `(set, way)` and returns the evicted way
    /// (if it was valid).
    pub fn fill_at(&mut self, set: usize, way: usize, stored: StoredTag) -> Option<Way> {
        let idx = self.base(set) + way;
        let old = self.ways[idx];
        self.ways[idx] = Way {
            valid: true,
            tag: stored,
            dirty: false,
        };
        old.valid.then_some(old)
    }

    /// Marks `(set, way)` dirty.
    #[inline]
    pub fn mark_dirty(&mut self, set: usize, way: usize) {
        let idx = self.base(set) + way;
        debug_assert!(self.ways[idx].valid);
        self.ways[idx].dirty = true;
    }

    /// Invalidates `(set, way)`, returning its previous contents if valid.
    pub fn invalidate(&mut self, set: usize, way: usize) -> Option<Way> {
        let idx = self.base(set) + way;
        let old = self.ways[idx];
        self.ways[idx] = Way::default();
        old.valid.then_some(old)
    }

    /// Number of valid ways in `set`.
    pub fn valid_count(&self, set: usize) -> usize {
        self.set_ways(set).iter().filter(|w| w.valid).count()
    }
}

/// Statistics of a [`TagArray`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TagStats {
    /// Number of accesses that hit.
    pub hits: u64,
    /// Number of accesses that missed.
    pub misses: u64,
}

impl TagStats {
    /// Total accesses.
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }
}

/// Result of a single [`TagArray::access`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TagAccess {
    /// Whether the access hit.
    pub hit: bool,
    /// The way that now holds the block (hit way, or the fill way).
    pub way: usize,
    /// On a miss that replaced a valid block: the evicted way.
    pub evicted: Option<Way>,
}

/// A self-managed tag array: a [`Directory`] whose victims are chosen by a
/// [`ReplacementPolicy`].
///
/// This models both a conventional cache's tag side and the paper's shadow
/// tag structures. Accessing it fully simulates the component cache's
/// behaviour for the reference:
///
/// ```
/// use cache_sim::{Geometry, PolicyKind, TagArray, TagMode, Address};
///
/// let geom = Geometry::new(4096, 64, 4).unwrap();
/// let mut shadow = TagArray::new(geom, TagMode::PartialLow { bits: 8 },
///                                PolicyKind::Lru, 7);
/// let block = geom.block_of(Address::new(0x1000));
/// assert!(!shadow.access(block).hit);
/// assert!(shadow.access(block).hit);
/// ```
#[derive(Debug, Clone)]
pub struct TagArray<P: ReplacementPolicy = PolicyKind> {
    dir: Directory,
    meta: MetaTable<P>,
    rng: SmallRng,
    stats: TagStats,
}

impl<P: ReplacementPolicy> TagArray<P> {
    /// Creates an empty tag array.
    pub fn new(geom: Geometry, tag_mode: TagMode, policy: P, seed: u64) -> Self {
        TagArray {
            dir: Directory::new(geom, tag_mode),
            meta: MetaTable::new(policy, geom.num_sets(), geom.associativity()),
            rng: SmallRng::seed_from_u64(seed),
            stats: TagStats::default(),
        }
    }

    /// The underlying directory.
    #[inline]
    pub fn directory(&self) -> &Directory {
        &self.dir
    }

    /// Mutable access to the underlying directory (crate-internal: used by
    /// [`crate::Cache`] to maintain dirty bits).
    #[inline]
    pub(crate) fn directory_mut(&mut self) -> &mut Directory {
        &mut self.dir
    }

    /// The bound policy.
    #[inline]
    pub fn policy(&self) -> &P {
        self.meta.policy()
    }

    /// The array's geometry.
    #[inline]
    pub fn geometry(&self) -> &Geometry {
        self.dir.geometry()
    }

    /// The array's tag mode.
    #[inline]
    pub fn tag_mode(&self) -> TagMode {
        self.dir.tag_mode()
    }

    /// Hit/miss statistics.
    #[inline]
    pub fn stats(&self) -> TagStats {
        self.stats
    }

    /// Simulates one reference to `block`: on a hit the policy's hit update
    /// runs; on a miss the policy chooses a victim (after invalid ways are
    /// exhausted), the block is installed and the policy's fill update runs.
    pub fn access(&mut self, block: BlockAddr) -> TagAccess {
        let (set, stored) = self.dir.locate(block);
        if let Some(way) = self.dir.find(set, stored) {
            self.stats.hits += 1;
            self.meta.on_hit(set, way);
            return TagAccess {
                hit: true,
                way,
                evicted: None,
            };
        }
        self.stats.misses += 1;
        let way = match self.dir.invalid_way(set) {
            Some(w) => w,
            None => self.meta.victim(set, &mut self.rng),
        };
        let evicted = self.dir.fill_at(set, way, stored);
        self.meta.on_fill(set, way);
        TagAccess {
            hit: false,
            way,
            evicted,
        }
    }

    /// Whether the array currently holds `block`.
    ///
    /// With partial tags this can produce false positives — exactly the
    /// aliasing behaviour the paper analyses in Section 3.1.
    #[inline]
    pub fn contains_block(&self, block: BlockAddr) -> bool {
        self.dir.contains_block(block)
    }

    /// Whether `set` holds the stored tag `stored` (for cross-array
    /// membership queries: the caller must have stored `stored` under this
    /// array's [`TagMode`]).
    #[inline]
    pub fn contains(&self, set: usize, stored: StoredTag) -> bool {
        self.dir.contains(set, stored)
    }

    /// Invalidate `block` if present (coherence-style back-invalidation).
    pub fn invalidate_block(&mut self, block: BlockAddr) -> bool {
        let (set, stored) = self.dir.locate(block);
        match self.dir.find(set, stored) {
            Some(way) => {
                self.dir.invalidate(set, way);
                true
            }
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::Address;
    use crate::policy::{Lru, Mru};

    fn geom() -> Geometry {
        Geometry::new(1024, 64, 4).unwrap() // 4 sets, 4 ways
    }

    fn block(g: &Geometry, n: u64) -> BlockAddr {
        // n distinct blocks all mapping to set 0.
        g.block_of(Address::new(n * 64 * g.num_sets() as u64))
    }

    #[test]
    fn fills_invalid_ways_first() {
        let g = geom();
        let mut a = TagArray::new(g, TagMode::Full, Lru, 1);
        for n in 0..4 {
            let acc = a.access(block(&g, n));
            assert!(!acc.hit);
            assert_eq!(acc.evicted, None, "no eviction while ways are free");
        }
        assert_eq!(a.stats().misses, 4);
    }

    #[test]
    fn lru_array_evicts_oldest_block() {
        let g = geom();
        let mut a = TagArray::new(g, TagMode::Full, Lru, 1);
        for n in 0..4 {
            a.access(block(&g, n));
        }
        a.access(block(&g, 0)); // refresh block 0
        let acc = a.access(block(&g, 9)); // set full -> evict block 1
        assert!(!acc.hit);
        assert!(acc.evicted.is_some());
        assert!(a.contains_block(block(&g, 0)));
        assert!(!a.contains_block(block(&g, 1)));
    }

    #[test]
    fn mru_array_keeps_old_blocks() {
        let g = geom();
        let mut a = TagArray::new(g, TagMode::Full, Mru, 1);
        for n in 0..4 {
            a.access(block(&g, n));
        }
        a.access(block(&g, 9)); // evicts block 3 (most recent)
        assert!(a.contains_block(block(&g, 0)));
        assert!(!a.contains_block(block(&g, 3)));
    }

    #[test]
    fn hits_are_counted() {
        let g = geom();
        let mut a = TagArray::new(g, TagMode::Full, Lru, 1);
        a.access(block(&g, 0));
        assert!(a.access(block(&g, 0)).hit);
        assert_eq!(a.stats(), TagStats { hits: 1, misses: 1 });
        assert_eq!(a.stats().accesses(), 2);
    }

    #[test]
    fn partial_tags_alias() {
        let g = Geometry::new(512 * 1024, 64, 8).unwrap();
        let mut a = TagArray::new(g, TagMode::PartialLow { bits: 4 }, Lru, 1);
        let b0 = g.block_of(Address::new(0));
        // Same set (index bits identical), tag differs only above bit 4.
        let alias = g.block_of(Address::new(1u64 << (6 + 10 + 4)));
        assert_ne!(g.tag(b0), g.tag(alias));
        a.access(b0);
        assert!(
            a.access(alias).hit,
            "4-bit partial tags must alias these blocks"
        );
    }

    #[test]
    fn full_tags_do_not_alias() {
        let g = Geometry::new(512 * 1024, 64, 8).unwrap();
        let mut a = TagArray::new(g, TagMode::Full, Lru, 1);
        a.access(g.block_of(Address::new(0)));
        assert!(!a.access(g.block_of(Address::new(1u64 << 20))).hit);
    }

    #[test]
    fn invalidate_block_removes_entry() {
        let g = geom();
        let mut a = TagArray::new(g, TagMode::Full, Lru, 1);
        let b = block(&g, 0);
        a.access(b);
        assert!(a.invalidate_block(b));
        assert!(!a.contains_block(b));
        assert!(!a.invalidate_block(b), "second invalidate is a no-op");
    }

    #[test]
    fn directory_fill_and_dirty() {
        let g = geom();
        let mut d = Directory::new(g, TagMode::Full);
        let (set, stored) = d.locate(block(&g, 5));
        assert_eq!(d.valid_count(set), 0);
        assert_eq!(d.fill_at(set, 2, stored), None);
        d.mark_dirty(set, 2);
        assert!(d.set_ways(set)[2].dirty);
        let old = d.fill_at(set, 2, d.locate(block(&g, 6)).1).unwrap();
        assert!(old.dirty, "eviction reports dirtiness of the old block");
        assert_eq!(d.valid_count(set), 1);
    }

    #[test]
    fn directory_invalidate() {
        let g = geom();
        let mut d = Directory::new(g, TagMode::Full);
        let (set, stored) = d.locate(block(&g, 1));
        d.fill_at(set, 0, stored);
        assert!(d.contains(set, stored));
        let old = d.invalidate(set, 0).unwrap();
        assert_eq!(old.tag, stored);
        assert!(!d.contains(set, stored));
        assert!(d.invalidate(set, 0).is_none());
    }
}
