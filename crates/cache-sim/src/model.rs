//! The [`CacheModel`] trait: the boundary between a memory hierarchy and a
//! cache organisation.

use crate::addr::BlockAddr;
use crate::cache::AccessOutcome;
use crate::geometry::Geometry;
use crate::stats::CacheStats;
use std::fmt;

/// A cache organisation as seen by a memory hierarchy.
///
/// The paper's point is that replacement is a *policy* choice orthogonal to
/// the cache's architectural interface; this trait captures that interface.
/// The plain [`crate::Cache`] implements it, and so do the adaptive, SBAR
/// and multi-policy organisations from the `adaptive-cache` crate — the
/// CPU model drives every L2 variant through a `Box<dyn CacheModel>`.
pub trait CacheModel: fmt::Debug + Send {
    /// Performs one demand access to `block` (write if `write`), updating
    /// replacement state and reporting any eviction.
    fn access(&mut self, block: BlockAddr, write: bool) -> AccessOutcome;

    /// Aggregate statistics so far.
    fn stats(&self) -> &CacheStats;

    /// The cache's geometry.
    fn geometry(&self) -> &Geometry;

    /// A human-readable label for reports (e.g. `"LRU (512KB, 8-way)"`).
    fn label(&self) -> String;

    /// Flushes this cache's aggregate statistics to the installed
    /// telemetry recorder, dimensioned by [`CacheModel::label`]. A no-op
    /// (no allocation) when telemetry is disabled; counters are
    /// cumulative, so call once per finished run.
    fn flush_telemetry(&self) {
        if ac_telemetry::enabled() {
            self.stats().flush_telemetry(&self.label());
        }
    }

    /// Cumulative counters for windowed time-series recording
    /// (`ac_telemetry::timeline`). The default covers the plain
    /// hit/miss statistics; adaptive organisations override it to add
    /// shadow/exclusive-miss, imitation and selector state. Must be
    /// cheap and allocation-free: the drivers call it at every window
    /// boundary.
    fn timeline_probe(&self) -> ac_telemetry::TimelineProbe {
        let s = self.stats();
        ac_telemetry::TimelineProbe {
            accesses: s.accesses,
            hits: s.hits,
            misses: s.misses,
            ..ac_telemetry::TimelineProbe::default()
        }
    }
}

impl<T: CacheModel + ?Sized> CacheModel for &mut T {
    fn access(&mut self, block: BlockAddr, write: bool) -> AccessOutcome {
        (**self).access(block, write)
    }
    fn stats(&self) -> &CacheStats {
        (**self).stats()
    }
    fn geometry(&self) -> &Geometry {
        (**self).geometry()
    }
    fn label(&self) -> String {
        (**self).label()
    }
    fn flush_telemetry(&self) {
        (**self).flush_telemetry()
    }
    fn timeline_probe(&self) -> ac_telemetry::TimelineProbe {
        (**self).timeline_probe()
    }
}

impl<T: CacheModel + ?Sized> CacheModel for Box<T> {
    fn access(&mut self, block: BlockAddr, write: bool) -> AccessOutcome {
        (**self).access(block, write)
    }
    fn stats(&self) -> &CacheStats {
        (**self).stats()
    }
    fn geometry(&self) -> &Geometry {
        (**self).geometry()
    }
    fn label(&self) -> String {
        (**self).label()
    }
    fn flush_telemetry(&self) {
        (**self).flush_telemetry()
    }
    fn timeline_probe(&self) -> ac_telemetry::TimelineProbe {
        (**self).timeline_probe()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Address, Cache, PolicyKind};

    #[test]
    fn cache_is_object_safe() {
        let geom = Geometry::new(4096, 64, 4).unwrap();
        let mut boxed: Box<dyn CacheModel> = Box::new(Cache::new(geom, PolicyKind::Lru, 0));
        let b = geom.block_of(Address::new(0x40));
        assert!(!boxed.access(b, false).hit);
        assert!(boxed.access(b, false).hit);
        assert_eq!(boxed.stats().accesses, 2);
        assert!(boxed.label().contains("LRU"));
    }
}
