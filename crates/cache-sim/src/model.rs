//! The [`CacheModel`] trait: the boundary between a memory hierarchy and a
//! cache organisation.

use crate::addr::BlockAddr;
use crate::cache::AccessOutcome;
use crate::geometry::Geometry;
use crate::stats::CacheStats;
use std::fmt;

/// A cache organisation as seen by a memory hierarchy.
///
/// The paper's point is that replacement is a *policy* choice orthogonal to
/// the cache's architectural interface; this trait captures that interface.
/// The plain [`crate::Cache`] implements it, and so do the adaptive, SBAR
/// and multi-policy organisations from the `adaptive-cache` crate — the
/// CPU model drives every L2 variant through a `Box<dyn CacheModel>`.
pub trait CacheModel: fmt::Debug + Send {
    /// Performs one demand access to `block` (write if `write`), updating
    /// replacement state and reporting any eviction.
    fn access(&mut self, block: BlockAddr, write: bool) -> AccessOutcome;

    /// Aggregate statistics so far.
    fn stats(&self) -> &CacheStats;

    /// The cache's geometry.
    fn geometry(&self) -> &Geometry;

    /// A human-readable label for reports (e.g. `"LRU (512KB, 8-way)"`).
    fn label(&self) -> String;

    /// Flushes this cache's aggregate statistics to the installed
    /// telemetry recorder, dimensioned by [`CacheModel::label`]. A no-op
    /// (no allocation) when telemetry is disabled; counters are
    /// cumulative, so call once per finished run.
    fn flush_telemetry(&self) {
        if ac_telemetry::enabled() {
            self.stats().flush_telemetry(&self.label());
        }
    }
}

impl<T: CacheModel + ?Sized> CacheModel for Box<T> {
    fn access(&mut self, block: BlockAddr, write: bool) -> AccessOutcome {
        (**self).access(block, write)
    }
    fn stats(&self) -> &CacheStats {
        (**self).stats()
    }
    fn geometry(&self) -> &Geometry {
        (**self).geometry()
    }
    fn label(&self) -> String {
        (**self).label()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Address, Cache, PolicyKind};

    #[test]
    fn cache_is_object_safe() {
        let geom = Geometry::new(4096, 64, 4).unwrap();
        let mut boxed: Box<dyn CacheModel> = Box::new(Cache::new(geom, PolicyKind::Lru, 0));
        let b = geom.block_of(Address::new(0x40));
        assert!(!boxed.access(b, false).hit);
        assert!(boxed.access(b, false).hit);
        assert_eq!(boxed.stats().accesses, 2);
        assert!(boxed.label().contains("LRU"));
    }
}
