//! # cache-sim — a set-associative cache simulation framework
//!
//! This crate is the substrate on which the adaptive-cache work
//! (Subramanian, Smaragdakis & Loh, *Adaptive Caches: Effective Shaping of
//! Cache Behavior to Workloads*, MICRO 2006) is built. It provides:
//!
//! * [`Geometry`] — validated cache geometry (size, line size, associativity)
//!   with address → (set, tag) decomposition,
//! * [`ReplacementPolicy`] — an object-safe policy trait plus the five
//!   standard policies the paper studies ([`PolicyKind`]: LRU, LFU, FIFO,
//!   MRU, Random),
//! * [`TagArray`] — a policy-managed tag directory, usable both as the tag
//!   side of a real cache and as the *shadow* ("parallel") tag arrays the
//!   adaptive scheme keeps for its component policies,
//! * [`TagMode`] — full or *partial* tags (Section 3.1 of the paper),
//! * [`Cache`] — a write-back/write-allocate data cache with statistics, and
//! * [`CacheModel`] — the trait through which a memory hierarchy drives any
//!   cache organisation (plain, adaptive, SBAR, ...).
//!
//! # Quick example
//!
//! ```
//! use cache_sim::{Cache, Geometry, PolicyKind, CacheModel, Address};
//!
//! let geom = Geometry::new(512 * 1024, 64, 8).unwrap();
//! let mut l2 = Cache::new(geom, PolicyKind::Lru, 0xC0FFEE);
//! for i in 0..10_000u64 {
//!     let addr = Address::new((i * 64) % (1 << 20));
//!     l2.access(geom.block_of(addr), false);
//! }
//! assert!(l2.stats().misses > 0);
//! ```
//!
//! All randomness (the Random policy, tie-breaking fallbacks) is driven by a
//! seeded [`rand::rngs::SmallRng`], so every simulation is reproducible.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod addr;
mod cache;
mod geometry;
mod meta;
mod model;
mod partial;
mod policy;
mod stats;
mod tag_array;

pub use addr::{Address, BlockAddr};
pub use cache::{AccessOutcome, Cache, Eviction};
pub use geometry::{Geometry, GeometryError};
pub use meta::{MetaTable, SetMeta};
pub use model::CacheModel;
pub use partial::{StoredTag, TagMode};
pub use policy::{Fifo, Lfu, Lru, Mru, PolicyKind, Rand, ReplacementPolicy};
pub use stats::CacheStats;
pub use tag_array::{Directory, TagAccess, TagArray, TagStats, Way, MAX_ASSOC};
