//! Replacement policies.
//!
//! The paper's adaptive scheme is policy-agnostic: it combines *any* two
//! replacement policies. This module provides the five standard policies
//! the paper evaluates — [`Lru`], [`Lfu`], [`Fifo`], [`Mru`] and [`Rand`] —
//! behind the object-safe [`ReplacementPolicy`] trait, plus [`PolicyKind`],
//! a copyable enum covering all of them for runtime-configured experiments.
//!
//! # Writing your own policy
//!
//! Implement [`ReplacementPolicy`] over the per-set scratch space
//! [`SetMeta`] (one 64-bit word per way plus a logical clock):
//!
//! ```
//! use cache_sim::{ReplacementPolicy, SetMeta};
//!
//! /// Evict the way with the numerically smallest metadata word,
//! /// treating the word as a user-managed priority.
//! #[derive(Debug, Clone, Copy)]
//! struct LowestPriority;
//!
//! impl ReplacementPolicy for LowestPriority {
//!     fn name(&self) -> &'static str { "LOWEST" }
//!     fn metadata_bits(&self, _ways: usize) -> u32 { 8 }
//!     fn on_hit(&self, set: &mut SetMeta, way: usize) {
//!         let w = set.word(way);
//!         set.set_word(way, w.saturating_add(1));
//!     }
//!     fn on_fill(&self, set: &mut SetMeta, way: usize) {
//!         set.set_word(way, 0);
//!     }
//!     fn victim(&self, set: &SetMeta, _rng: &mut rand::rngs::SmallRng) -> usize {
//!         set.iter().min_by_key(|&(_, w)| w).map(|(i, _)| i).unwrap()
//!     }
//! }
//! ```

use crate::meta::SetMeta;
use rand::rngs::SmallRng;
use rand::RngCore;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A cache replacement policy operating on per-set metadata.
///
/// Policies are *stateless* configuration objects: all mutable state lives
/// in [`SetMeta`], which makes one policy instance shareable between the
/// real tag array and any number of shadow arrays.
///
/// The trait is object-safe so that experiment harnesses can assemble
/// policy combinations at runtime (`Box<dyn ReplacementPolicy>`); for
/// statically-known configurations the generic [`crate::TagArray`]`<P>`
/// avoids the virtual dispatch.
pub trait ReplacementPolicy: fmt::Debug + Send + Sync {
    /// Short display name ("LRU", "LFU", ...), used in figure output.
    fn name(&self) -> &'static str;

    /// Per-entry metadata bits a hardware implementation would store, for
    /// the storage-overhead model (paper Section 3.2 charges ~4 bits per
    /// entry of policy metadata; LFU uses its counter width).
    fn metadata_bits(&self, ways: usize) -> u32;

    /// Called when `way` hits.
    fn on_hit(&self, set: &mut SetMeta, way: usize);

    /// Called when a block is filled into `way` (after a miss).
    fn on_fill(&self, set: &mut SetMeta, way: usize);

    /// Chooses a victim way. Only called when every way in the set holds a
    /// valid block.
    fn victim(&self, set: &SetMeta, rng: &mut SmallRng) -> usize;
}

/// First (lowest-index) way whose word is minimal, matching
/// `Iterator::min_by_key` tie semantics.
#[inline(always)]
fn argmin(set: &SetMeta) -> usize {
    let words = set.words();
    if let Ok(a) = <&[u64; 8]>::try_from(words) {
        // Tree reduction: 3 select levels instead of a 7-deep chain of
        // data-dependent (mispredict-prone) branches. `lt` is strict, so
        // the earlier operand wins ties at every level — identical to a
        // linear first-min scan.
        #[inline]
        fn min2(x: (u64, usize), y: (u64, usize)) -> (u64, usize) {
            if y.0 < x.0 {
                y
            } else {
                x
            }
        }
        let m01 = min2((a[0], 0), (a[1], 1));
        let m23 = min2((a[2], 2), (a[3], 3));
        let m45 = min2((a[4], 4), (a[5], 5));
        let m67 = min2((a[6], 6), (a[7], 7));
        return min2(min2(m01, m23), min2(m45, m67)).1;
    }
    set.iter().min_by_key(|&(_, w)| w).map(|(i, _)| i).unwrap()
}

/// Last (highest-index) way whose word is maximal, matching
/// `Iterator::max_by_key` tie semantics.
#[inline(always)]
fn argmax(set: &SetMeta) -> usize {
    let words = set.words();
    if let Ok(a) = <&[u64; 8]>::try_from(words) {
        // `ge` is non-strict, so the later operand wins ties at every
        // level — identical to a linear last-max scan.
        #[inline]
        fn max2(x: (u64, usize), y: (u64, usize)) -> (u64, usize) {
            if y.0 >= x.0 {
                y
            } else {
                x
            }
        }
        let m01 = max2((a[0], 0), (a[1], 1));
        let m23 = max2((a[2], 2), (a[3], 3));
        let m45 = max2((a[4], 4), (a[5], 5));
        let m67 = max2((a[6], 6), (a[7], 7));
        return max2(max2(m01, m23), max2(m45, m67)).1;
    }
    set.iter().max_by_key(|&(_, w)| w).map(|(i, _)| i).unwrap()
}

#[inline]
fn rank_bits(ways: usize) -> u32 {
    usize::BITS - ways.saturating_sub(1).leading_zeros()
}

/// Least Recently Used: evicts the block whose last access is oldest.
///
/// Per-way word = last-access tick.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Lru;

impl ReplacementPolicy for Lru {
    fn name(&self) -> &'static str {
        "LRU"
    }
    fn metadata_bits(&self, ways: usize) -> u32 {
        rank_bits(ways)
    }
    fn on_hit(&self, set: &mut SetMeta, way: usize) {
        let t = set.bump_tick();
        set.set_word(way, t);
    }
    fn on_fill(&self, set: &mut SetMeta, way: usize) {
        let t = set.bump_tick();
        set.set_word(way, t);
    }
    fn victim(&self, set: &SetMeta, _rng: &mut SmallRng) -> usize {
        argmin(set)
    }
}

/// Most Recently Used: evicts the block accessed most recently.
///
/// "Typically a very bad replacement algorithm" (paper Section 4.4), but
/// optimal for linear loops slightly larger than the cache — which is
/// exactly why it is an interesting adaptivity component.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Mru;

impl ReplacementPolicy for Mru {
    fn name(&self) -> &'static str {
        "MRU"
    }
    fn metadata_bits(&self, ways: usize) -> u32 {
        rank_bits(ways)
    }
    fn on_hit(&self, set: &mut SetMeta, way: usize) {
        let t = set.bump_tick();
        set.set_word(way, t);
    }
    fn on_fill(&self, set: &mut SetMeta, way: usize) {
        let t = set.bump_tick();
        set.set_word(way, t);
    }
    fn victim(&self, set: &SetMeta, _rng: &mut SmallRng) -> usize {
        argmax(set)
    }
}

/// First-In First-Out: evicts the block that has been resident longest,
/// regardless of use.
///
/// Per-way word = fill tick (hits do not update it).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Fifo;

impl ReplacementPolicy for Fifo {
    fn name(&self) -> &'static str {
        "FIFO"
    }
    fn metadata_bits(&self, ways: usize) -> u32 {
        rank_bits(ways)
    }
    fn on_hit(&self, _set: &mut SetMeta, _way: usize) {}
    fn on_fill(&self, set: &mut SetMeta, way: usize) {
        let t = set.bump_tick();
        set.set_word(way, t);
    }
    fn victim(&self, set: &SetMeta, _rng: &mut SmallRng) -> usize {
        argmin(set)
    }
}

/// Least Frequently Used with saturating access counters (the paper's L2
/// configuration uses 5-bit counters, see Table 1).
///
/// Ties on the count are broken towards the least recently used block.
/// Per-way word = `count << 32 | last-access tick (low 32 bits)`, so a
/// plain numeric `argmin` realises "lowest count, then oldest".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Lfu {
    counter_bits: u32,
}

impl Lfu {
    /// LFU with `counter_bits`-wide saturating counters (1..=32).
    ///
    /// # Panics
    ///
    /// Panics if `counter_bits` is 0 or exceeds 32.
    pub fn new(counter_bits: u32) -> Self {
        assert!(
            (1..=32).contains(&counter_bits),
            "LFU counter width must be 1..=32 bits, got {counter_bits}"
        );
        Lfu { counter_bits }
    }

    /// The paper's configuration: 5-bit counters.
    pub fn paper_default() -> Self {
        Lfu::new(5)
    }

    /// Counter width in bits.
    pub fn counter_bits(&self) -> u32 {
        self.counter_bits
    }

    #[inline]
    fn max_count(&self) -> u64 {
        (1u64 << self.counter_bits) - 1
    }
}

impl Default for Lfu {
    fn default() -> Self {
        Lfu::paper_default()
    }
}

impl ReplacementPolicy for Lfu {
    fn name(&self) -> &'static str {
        "LFU"
    }
    fn metadata_bits(&self, _ways: usize) -> u32 {
        self.counter_bits
    }
    fn on_hit(&self, set: &mut SetMeta, way: usize) {
        let t = set.bump_tick();
        let count = (set.word(way) >> 32).min(self.max_count());
        let count = (count + 1).min(self.max_count());
        set.set_word(way, (count << 32) | (t & 0xffff_ffff));
    }
    fn on_fill(&self, set: &mut SetMeta, way: usize) {
        let t = set.bump_tick();
        // The filling access itself counts as one use.
        set.set_word(way, (1 << 32) | (t & 0xffff_ffff));
    }
    fn victim(&self, set: &SetMeta, _rng: &mut SmallRng) -> usize {
        argmin(set)
    }
}

/// Random replacement: evicts a uniformly random way.
///
/// Driven by the tag array's seeded RNG, so runs remain reproducible.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Rand;

impl ReplacementPolicy for Rand {
    fn name(&self) -> &'static str {
        "Random"
    }
    fn metadata_bits(&self, _ways: usize) -> u32 {
        0
    }
    fn on_hit(&self, _set: &mut SetMeta, _way: usize) {}
    fn on_fill(&self, _set: &mut SetMeta, _way: usize) {}
    fn victim(&self, set: &SetMeta, rng: &mut SmallRng) -> usize {
        (rng.next_u64() % set.ways() as u64) as usize
    }
}

/// Bimodal Insertion Policy (Qureshi et al., ISCA 2007): LRU victim
/// selection, but incoming blocks are inserted at the *LRU* position so
/// single-use scan blocks evict themselves; roughly one fill in 32 is
/// promoted to MRU so a genuinely hot working set can still climb in.
///
/// The 1-in-32 choice is made deterministically from the set's logical
/// clock (a hardware implementation uses a free-running counter).
/// Included here because set-dueling insertion policies are the
/// influential successor to the paper's scheme — and because this crate's
/// adaptive cache can use BIP as a *component*, combining thrash
/// protection with frequency protection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Bip;

impl Bip {
    /// Promote one fill in this many to the MRU position.
    const EPSILON: u64 = 32;
}

impl ReplacementPolicy for Bip {
    fn name(&self) -> &'static str {
        "BIP"
    }
    fn metadata_bits(&self, ways: usize) -> u32 {
        rank_bits(ways)
    }
    fn on_hit(&self, set: &mut SetMeta, way: usize) {
        let t = set.bump_tick();
        set.set_word(way, t);
    }
    fn on_fill(&self, set: &mut SetMeta, way: usize) {
        let t = set.bump_tick();
        if t.is_multiple_of(Self::EPSILON) {
            set.set_word(way, t); // occasional MRU insertion
        } else {
            // Insert at the LRU position: strictly below every other way.
            let min = set
                .iter()
                .filter(|&(w, _)| w != way)
                .map(|(_, word)| word)
                .min()
                .unwrap_or(1);
            set.set_word(way, min.saturating_sub(1));
        }
    }
    fn victim(&self, set: &SetMeta, _rng: &mut SmallRng) -> usize {
        argmin(set)
    }
}

/// Tree pseudo-LRU: the industry-standard LRU approximation. A binary
/// tree of direction bits per set points away from recently used ways;
/// the victim is found by following the bits. For an associativity that
/// is not a power of two the tree is built over the next power of two and
/// victims are clamped into range.
///
/// State: the tree bits are packed into the set's way-0 metadata word
/// (per-way words are otherwise unused by this policy).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TreePlru;

impl TreePlru {
    fn leaves(ways: usize) -> usize {
        ways.next_power_of_two().max(2)
    }

    /// Flip the path bits so they point away from `way`.
    fn touch(set: &mut SetMeta, way: usize) {
        let leaves = Self::leaves(set.ways());
        let mut bits = set.word(0);
        let mut node = 1usize; // 1-indexed heap
        let mut lo = 0usize;
        let mut hi = leaves;
        while hi - lo > 1 {
            let mid = (lo + hi) / 2;
            let bit = 1u64 << node;
            if way < mid {
                bits |= bit; // point right (away from the left half)
                hi = mid;
                node *= 2;
            } else {
                bits &= !bit; // point left
                lo = mid;
                node = node * 2 + 1;
            }
        }
        set.set_word(0, bits);
    }
}

impl ReplacementPolicy for TreePlru {
    fn name(&self) -> &'static str {
        "PLRU"
    }
    fn metadata_bits(&self, ways: usize) -> u32 {
        // k-1 tree bits amortised across k entries: charge 1 bit.
        u32::from(ways > 1)
    }
    fn on_hit(&self, set: &mut SetMeta, way: usize) {
        Self::touch(set, way);
    }
    fn on_fill(&self, set: &mut SetMeta, way: usize) {
        Self::touch(set, way);
    }
    fn victim(&self, set: &SetMeta, _rng: &mut SmallRng) -> usize {
        let leaves = Self::leaves(set.ways());
        let bits = set.word(0);
        let mut node = 1usize;
        let mut lo = 0usize;
        let mut hi = leaves;
        while hi - lo > 1 {
            let mid = (lo + hi) / 2;
            if bits & (1u64 << node) != 0 {
                lo = mid; // bit points right
                node = node * 2 + 1;
            } else {
                hi = mid; // bit points left
                node *= 2;
            }
        }
        lo.min(set.ways() - 1)
    }
}

/// Not-Most-Recently-Used: evicts a uniformly random way other than the
/// most recently used one (a common cheap policy in TLBs and L1s).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Nmru;

impl ReplacementPolicy for Nmru {
    fn name(&self) -> &'static str {
        "NMRU"
    }
    fn metadata_bits(&self, ways: usize) -> u32 {
        rank_bits(ways)
    }
    fn on_hit(&self, set: &mut SetMeta, way: usize) {
        let t = set.bump_tick();
        set.set_word(way, t);
    }
    fn on_fill(&self, set: &mut SetMeta, way: usize) {
        let t = set.bump_tick();
        set.set_word(way, t);
    }
    fn victim(&self, set: &SetMeta, rng: &mut SmallRng) -> usize {
        let ways = set.ways();
        if ways == 1 {
            return 0;
        }
        let mru = argmax(set);
        let pick = (rng.next_u64() % (ways as u64 - 1)) as usize;
        if pick >= mru {
            pick + 1
        } else {
            pick
        }
    }
}

/// A runtime-selectable replacement policy covering all built-in policies.
///
/// `PolicyKind` is `Copy` and serialisable, which makes it the natural
/// currency for experiment configurations:
///
/// ```
/// use cache_sim::{PolicyKind, ReplacementPolicy};
/// let p = PolicyKind::Lfu { counter_bits: 5 };
/// assert_eq!(p.name(), "LFU");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PolicyKind {
    /// Least Recently Used.
    Lru,
    /// Least Frequently Used with saturating counters of the given width.
    Lfu {
        /// Counter width in bits (the paper uses 5).
        counter_bits: u32,
    },
    /// First-In First-Out.
    Fifo,
    /// Most Recently Used.
    Mru,
    /// Uniform random.
    Random,
    /// Tree pseudo-LRU.
    TreePlru,
    /// Not-most-recently-used.
    Nmru,
    /// Bimodal insertion (thrash-protecting LRU variant).
    Bip,
}

impl PolicyKind {
    /// The paper's LFU configuration (5-bit counters).
    pub const LFU5: PolicyKind = PolicyKind::Lfu { counter_bits: 5 };

    /// All five built-in policies, in the order of the paper's Section 4.4
    /// five-policy experiment (LRU, LFU, FIFO, MRU, Random).
    pub fn all() -> [PolicyKind; 5] {
        [
            PolicyKind::Lru,
            PolicyKind::LFU5,
            PolicyKind::Fifo,
            PolicyKind::Mru,
            PolicyKind::Random,
        ]
    }
}

impl fmt::Display for PolicyKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl ReplacementPolicy for PolicyKind {
    fn name(&self) -> &'static str {
        match self {
            PolicyKind::Lru => "LRU",
            PolicyKind::Lfu { .. } => "LFU",
            PolicyKind::Fifo => "FIFO",
            PolicyKind::Mru => "MRU",
            PolicyKind::Random => "Random",
            PolicyKind::TreePlru => "PLRU",
            PolicyKind::Nmru => "NMRU",
            PolicyKind::Bip => "BIP",
        }
    }

    fn metadata_bits(&self, ways: usize) -> u32 {
        match self {
            PolicyKind::Lru => Lru.metadata_bits(ways),
            PolicyKind::Lfu { counter_bits } => Lfu::new(*counter_bits).metadata_bits(ways),
            PolicyKind::Fifo => Fifo.metadata_bits(ways),
            PolicyKind::Mru => Mru.metadata_bits(ways),
            PolicyKind::Random => Rand.metadata_bits(ways),
            PolicyKind::TreePlru => TreePlru.metadata_bits(ways),
            PolicyKind::Nmru => Nmru.metadata_bits(ways),
            PolicyKind::Bip => Bip.metadata_bits(ways),
        }
    }

    // The per-access callbacks stay inline so the (perfectly predictable)
    // variant match merges into the caller's access loop instead of
    // becoming a call per simulated reference.
    #[inline]
    fn on_hit(&self, set: &mut SetMeta, way: usize) {
        match self {
            PolicyKind::Lru => Lru.on_hit(set, way),
            PolicyKind::Lfu { counter_bits } => Lfu::new(*counter_bits).on_hit(set, way),
            PolicyKind::Fifo => Fifo.on_hit(set, way),
            PolicyKind::Mru => Mru.on_hit(set, way),
            PolicyKind::Random => Rand.on_hit(set, way),
            PolicyKind::TreePlru => TreePlru.on_hit(set, way),
            PolicyKind::Nmru => Nmru.on_hit(set, way),
            PolicyKind::Bip => Bip.on_hit(set, way),
        }
    }

    #[inline]
    fn on_fill(&self, set: &mut SetMeta, way: usize) {
        match self {
            PolicyKind::Lru => Lru.on_fill(set, way),
            PolicyKind::Lfu { counter_bits } => Lfu::new(*counter_bits).on_fill(set, way),
            PolicyKind::Fifo => Fifo.on_fill(set, way),
            PolicyKind::Mru => Mru.on_fill(set, way),
            PolicyKind::Random => Rand.on_fill(set, way),
            PolicyKind::TreePlru => TreePlru.on_fill(set, way),
            PolicyKind::Nmru => Nmru.on_fill(set, way),
            PolicyKind::Bip => Bip.on_fill(set, way),
        }
    }

    #[inline]
    fn victim(&self, set: &SetMeta, rng: &mut SmallRng) -> usize {
        match self {
            PolicyKind::Lru => Lru.victim(set, rng),
            PolicyKind::Lfu { counter_bits } => Lfu::new(*counter_bits).victim(set, rng),
            PolicyKind::Fifo => Fifo.victim(set, rng),
            PolicyKind::Mru => Mru.victim(set, rng),
            PolicyKind::Random => Rand.victim(set, rng),
            PolicyKind::TreePlru => TreePlru.victim(set, rng),
            PolicyKind::Nmru => Nmru.victim(set, rng),
            PolicyKind::Bip => Bip.victim(set, rng),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(42)
    }

    fn filled(policy: &dyn ReplacementPolicy, ways: usize) -> SetMeta {
        let mut m = SetMeta::new(ways);
        for w in 0..ways {
            policy.on_fill(&mut m, w);
        }
        m
    }

    #[test]
    fn lru_evicts_oldest() {
        let mut m = filled(&Lru, 4);
        // Access order now 0,1,2,3 — touch 0 and 1 again.
        Lru.on_hit(&mut m, 0);
        Lru.on_hit(&mut m, 1);
        assert_eq!(Lru.victim(&m, &mut rng()), 2);
    }

    #[test]
    fn mru_evicts_newest() {
        let mut m = filled(&Mru, 4);
        Mru.on_hit(&mut m, 1);
        assert_eq!(Mru.victim(&m, &mut rng()), 1);
    }

    #[test]
    fn fifo_ignores_hits() {
        let mut m = filled(&Fifo, 4);
        Fifo.on_hit(&mut m, 0);
        Fifo.on_hit(&mut m, 0);
        assert_eq!(Fifo.victim(&m, &mut rng()), 0, "way 0 filled first");
    }

    #[test]
    fn lfu_evicts_least_frequent() {
        let lfu = Lfu::paper_default();
        let mut m = filled(&lfu, 4);
        lfu.on_hit(&mut m, 0);
        lfu.on_hit(&mut m, 0);
        lfu.on_hit(&mut m, 1);
        lfu.on_hit(&mut m, 3);
        // way 2 has count 1 (fill only).
        assert_eq!(lfu.victim(&m, &mut rng()), 2);
    }

    #[test]
    fn lfu_ties_break_to_lru() {
        let lfu = Lfu::paper_default();
        let mut m = filled(&lfu, 3);
        // All counts equal (1); way 0 was filled first => oldest recency.
        assert_eq!(lfu.victim(&m, &mut rng()), 0);
        lfu.on_hit(&mut m, 0); // now ways 1,2 tie at count 1; way 1 older
        assert_eq!(lfu.victim(&m, &mut rng()), 1);
    }

    #[test]
    fn lfu_counters_saturate() {
        let lfu = Lfu::new(2); // saturates at 3
        let mut m = filled(&lfu, 2);
        for _ in 0..100 {
            lfu.on_hit(&mut m, 0);
        }
        assert_eq!(m.word(0) >> 32, 3, "2-bit counter saturates at 3");
    }

    #[test]
    #[should_panic(expected = "LFU counter width")]
    fn lfu_rejects_zero_width() {
        let _ = Lfu::new(0);
    }

    #[test]
    fn random_covers_all_ways() {
        let m = filled(&Rand, 4);
        let mut seen = [false; 4];
        let mut r = rng();
        for _ in 0..200 {
            seen[Rand.victim(&m, &mut r)] = true;
        }
        assert_eq!(seen, [true; 4]);
    }

    #[test]
    fn random_is_deterministic_per_seed() {
        let m = filled(&Rand, 8);
        let seq1: Vec<_> = {
            let mut r = SmallRng::seed_from_u64(7);
            (0..32).map(|_| Rand.victim(&m, &mut r)).collect()
        };
        let seq2: Vec<_> = {
            let mut r = SmallRng::seed_from_u64(7);
            (0..32).map(|_| Rand.victim(&m, &mut r)).collect()
        };
        assert_eq!(seq1, seq2);
    }

    #[test]
    fn policy_kind_dispatch_matches_concrete() {
        let mut m1 = filled(&Lru, 4);
        let mut m2 = filled(&PolicyKind::Lru, 4);
        assert_eq!(m1, m2);
        Lru.on_hit(&mut m1, 2);
        PolicyKind::Lru.on_hit(&mut m2, 2);
        assert_eq!(
            Lru.victim(&m1, &mut rng()),
            PolicyKind::Lru.victim(&m2, &mut rng())
        );
    }

    #[test]
    fn metadata_bits_accounting() {
        assert_eq!(Lru.metadata_bits(8), 3);
        assert_eq!(Lru.metadata_bits(16), 4);
        assert_eq!(Lfu::paper_default().metadata_bits(8), 5);
        assert_eq!(Rand.metadata_bits(8), 0);
        assert_eq!(Fifo.metadata_bits(1), 0);
    }

    #[test]
    fn display_names() {
        assert_eq!(PolicyKind::Lru.to_string(), "LRU");
        assert_eq!(PolicyKind::LFU5.to_string(), "LFU");
        assert_eq!(PolicyKind::Random.to_string(), "Random");
    }

    #[test]
    fn plru_victim_avoids_recent_ways() {
        let mut m = filled(&TreePlru, 8);
        // Touch ways 0..7 in order: way 0 becomes the "oldest" path.
        for w in 0..8 {
            TreePlru.on_hit(&mut m, w);
        }
        let v = TreePlru.victim(&m, &mut rng());
        assert_eq!(v, 0, "after touching 0..7 in order, PLRU points at 0");
        // Touch way 0 again; the victim must move elsewhere.
        TreePlru.on_hit(&mut m, 0);
        assert_ne!(TreePlru.victim(&m, &mut rng()), 0);
    }

    #[test]
    fn plru_approximates_lru_on_cyclic_touches() {
        // For a full cyclic touch pattern, tree-PLRU's victim always has
        // not been touched in the most recent half of the ways.
        let mut m = filled(&TreePlru, 8);
        for round in 0..50u64 {
            for w in 0..8usize {
                TreePlru.on_hit(&mut m, w);
                let v = TreePlru.victim(&m, &mut rng());
                assert_ne!(v, w, "round {round}: victim equals the MRU way");
            }
        }
    }

    #[test]
    fn plru_handles_non_power_of_two() {
        let mut m = filled(&TreePlru, 6);
        for w in 0..6 {
            TreePlru.on_hit(&mut m, w);
        }
        let v = TreePlru.victim(&m, &mut rng());
        assert!(v < 6, "victim {v} out of range");
    }

    #[test]
    fn nmru_never_evicts_the_mru() {
        let mut m = filled(&Nmru, 4);
        Nmru.on_hit(&mut m, 2);
        let mut r = rng();
        for _ in 0..200 {
            assert_ne!(Nmru.victim(&m, &mut r), 2);
        }
    }

    #[test]
    fn nmru_single_way() {
        let m = filled(&Nmru, 1);
        assert_eq!(Nmru.victim(&m, &mut rng()), 0);
    }

    #[test]
    fn extra_policies_dispatch_through_kind() {
        let mut m1 = filled(&TreePlru, 4);
        let mut m2 = filled(&PolicyKind::TreePlru, 4);
        TreePlru.on_hit(&mut m1, 1);
        PolicyKind::TreePlru.on_hit(&mut m2, 1);
        assert_eq!(
            TreePlru.victim(&m1, &mut rng()),
            PolicyKind::TreePlru.victim(&m2, &mut rng())
        );
        assert_eq!(PolicyKind::Nmru.name(), "NMRU");
    }

    #[test]
    fn bip_resists_scans_but_admits_hot_blocks() {
        // A cyclic scan over 2x the set: plain LRU misses everything;
        // BIP stabilises a retained subset.
        let mut lru_m = filled(&Lru, 8);
        let mut bip_m = filled(&Bip, 8);
        let mut lru_tags = [0u64; 8];
        let mut bip_tags = [0u64; 8];
        for w in 0..8u64 {
            lru_tags[w as usize] = w;
            bip_tags[w as usize] = w;
        }
        let mut lru_hits = 0;
        let mut bip_hits = 0;
        for i in 0..1600u64 {
            let block = i % 16;
            if let Some(w) = lru_tags.iter().position(|&t| t == block) {
                Lru.on_hit(&mut lru_m, w);
                lru_hits += 1;
            } else {
                let v = Lru.victim(&lru_m, &mut rng());
                lru_tags[v] = block;
                Lru.on_fill(&mut lru_m, v);
            }
            if let Some(w) = bip_tags.iter().position(|&t| t == block) {
                Bip.on_hit(&mut bip_m, w);
                bip_hits += 1;
            } else {
                let v = Bip.victim(&bip_m, &mut rng());
                bip_tags[v] = block;
                Bip.on_fill(&mut bip_m, v);
            }
        }
        assert_eq!(lru_hits, 8, "LRU hits only the warm-up pass, then thrashes");
        assert!(bip_hits > 600, "BIP retained too little: {bip_hits}");
    }

    #[test]
    fn bip_promotes_occasionally() {
        let mut m = filled(&Bip, 4);
        // Run enough fills that at least one lands at MRU.
        let mut saw_mru = false;
        for _ in 0..64 {
            let v = Bip.victim(&m, &mut rng());
            Bip.on_fill(&mut m, v);
            if m.word(v) == m.iter().map(|(_, w)| w).max().unwrap() && m.word(v) > 0 {
                saw_mru = true;
            }
        }
        assert!(saw_mru, "epsilon promotion never fired");
        assert_eq!(PolicyKind::Bip.name(), "BIP");
    }

    #[test]
    fn all_lists_five_policies() {
        let all = PolicyKind::all();
        assert_eq!(all.len(), 5);
        assert_eq!(all[0], PolicyKind::Lru);
        assert_eq!(all[3], PolicyKind::Mru);
    }
}
