//! Address newtypes.
//!
//! Two distinct address spaces appear throughout the simulator:
//!
//! * [`Address`] — a byte address as issued by a load/store or instruction
//!   fetch, and
//! * [`BlockAddr`] — a cache-block (line) address, i.e. the byte address
//!   shifted right by the line-offset bits.
//!
//! Keeping them as separate newtypes prevents an entire class of bugs where
//! a byte address is indexed as a block address (or vice versa).

use serde::{Deserialize, Serialize};
use std::fmt;

/// A byte address in the simulated physical address space.
///
/// The paper assumes a 40-bit physical address space for its storage
/// arithmetic; the simulator carries full 64-bit values and lets
/// [`crate::Geometry`] decide how many bits are significant.
///
/// ```
/// use cache_sim::Address;
/// let a = Address::new(0x1234);
/// assert_eq!(a.raw(), 0x1234);
/// ```
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct Address(u64);

impl Address {
    /// Creates an address from a raw byte value.
    #[inline]
    pub const fn new(raw: u64) -> Self {
        Address(raw)
    }

    /// Returns the raw byte address.
    #[inline]
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// Returns the address offset by `bytes` (wrapping).
    #[inline]
    pub const fn offset(self, bytes: u64) -> Self {
        Address(self.0.wrapping_add(bytes))
    }
}

impl fmt::Debug for Address {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Address({:#x})", self.0)
    }
}

impl fmt::Display for Address {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

impl fmt::LowerHex for Address {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

impl From<u64> for Address {
    fn from(raw: u64) -> Self {
        Address(raw)
    }
}

impl From<Address> for u64 {
    fn from(a: Address) -> Self {
        a.0
    }
}

/// A cache-block (line) address: the byte address divided by the line size.
///
/// Produced by [`crate::Geometry::block_of`]; all cache structures operate on
/// block addresses so that the line size is factored out exactly once.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct BlockAddr(u64);

impl BlockAddr {
    /// Creates a block address from a raw block number.
    #[inline]
    pub const fn new(raw: u64) -> Self {
        BlockAddr(raw)
    }

    /// Returns the raw block number.
    #[inline]
    pub const fn raw(self) -> u64 {
        self.0
    }
}

impl fmt::Debug for BlockAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BlockAddr({:#x})", self.0)
    }
}

impl fmt::Display for BlockAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

impl From<u64> for BlockAddr {
    fn from(raw: u64) -> Self {
        BlockAddr(raw)
    }
}

impl From<BlockAddr> for u64 {
    fn from(b: BlockAddr) -> Self {
        b.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn address_roundtrip() {
        let a = Address::new(0xdead_beef);
        assert_eq!(u64::from(a), 0xdead_beef);
        assert_eq!(Address::from(0xdead_beefu64), a);
    }

    #[test]
    fn address_offset_wraps() {
        let a = Address::new(u64::MAX);
        assert_eq!(a.offset(1).raw(), 0);
    }

    #[test]
    fn block_addr_roundtrip() {
        let b = BlockAddr::new(42);
        assert_eq!(u64::from(b), 42);
        assert_eq!(BlockAddr::from(42u64), b);
    }

    #[test]
    fn debug_formats_hex() {
        assert_eq!(format!("{:?}", Address::new(255)), "Address(0xff)");
        assert_eq!(format!("{:?}", BlockAddr::new(255)), "BlockAddr(0xff)");
        assert_eq!(format!("{}", Address::new(16)), "0x10");
    }

    #[test]
    fn ordering_follows_raw_value() {
        assert!(Address::new(1) < Address::new(2));
        assert!(BlockAddr::new(9) > BlockAddr::new(8));
    }
}
