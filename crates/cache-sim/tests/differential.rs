//! Differential tests: the packed structure-of-arrays [`Directory`] and
//! the mask-based [`TagArray`] access path against a straightforward
//! array-of-structs reference with the seed implementation's layout and
//! scan order.
//!
//! The packed rework is required to be *behaviour-preserving*: identical
//! hit/miss outcomes, identical way choices (first-match / first-invalid
//! order), identical eviction reports, for every tag mode. These tests
//! re-implement the original `Vec<Way>` directory verbatim and drive both
//! implementations with the same generated operation and reference
//! streams.

use cache_sim::{
    BlockAddr, Geometry, MetaTable, PolicyKind, ReplacementPolicy, StoredTag, TagAccess, TagArray,
    TagMode, TagStats, Way,
};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// The seed implementation's directory: one padded struct per way,
/// set-major, with early-exit linear scans.
#[derive(Clone)]
struct RefDirectory {
    geom: Geometry,
    tag_mode: TagMode,
    ways: Vec<Way>, // set-major: index = set * assoc + way
}

impl RefDirectory {
    fn new(geom: Geometry, tag_mode: TagMode) -> Self {
        RefDirectory {
            geom,
            tag_mode,
            ways: vec![Way::default(); geom.num_sets() * geom.associativity()],
        }
    }

    fn locate(&self, block: BlockAddr) -> (usize, StoredTag) {
        (
            self.geom.set_index(block),
            self.tag_mode.store(self.geom.tag(block)),
        )
    }

    fn set_ways(&self, set: usize) -> &[Way] {
        let b = set * self.geom.associativity();
        &self.ways[b..b + self.geom.associativity()]
    }

    fn find(&self, set: usize, stored: StoredTag) -> Option<usize> {
        self.set_ways(set)
            .iter()
            .position(|w| w.valid && w.tag == stored)
    }

    fn invalid_way(&self, set: usize) -> Option<usize> {
        self.set_ways(set).iter().position(|w| !w.valid)
    }

    fn fill_at(&mut self, set: usize, way: usize, stored: StoredTag) -> Option<Way> {
        let idx = set * self.geom.associativity() + way;
        let old = self.ways[idx];
        self.ways[idx] = Way {
            valid: true,
            tag: stored,
            dirty: false,
        };
        old.valid.then_some(old)
    }

    fn mark_dirty(&mut self, set: usize, way: usize) {
        self.ways[set * self.geom.associativity() + way].dirty = true;
    }

    fn invalidate(&mut self, set: usize, way: usize) -> Option<Way> {
        let idx = set * self.geom.associativity() + way;
        let old = self.ways[idx];
        self.ways[idx] = Way::default();
        old.valid.then_some(old)
    }

    fn valid_count(&self, set: usize) -> usize {
        self.set_ways(set).iter().filter(|w| w.valid).count()
    }
}

/// The seed implementation's tag array: [`RefDirectory`] driven with the
/// original `find` → `invalid_way` → `victim` access sequence.
struct RefTagArray<P: ReplacementPolicy> {
    dir: RefDirectory,
    meta: MetaTable<P>,
    rng: SmallRng,
    stats: TagStats,
}

impl<P: ReplacementPolicy> RefTagArray<P> {
    fn new(geom: Geometry, tag_mode: TagMode, policy: P, seed: u64) -> Self {
        RefTagArray {
            dir: RefDirectory::new(geom, tag_mode),
            meta: MetaTable::new(policy, geom.num_sets(), geom.associativity()),
            rng: SmallRng::seed_from_u64(seed),
            stats: TagStats::default(),
        }
    }

    fn access(&mut self, block: BlockAddr) -> TagAccess {
        let (set, stored) = self.dir.locate(block);
        if let Some(way) = self.dir.find(set, stored) {
            self.stats.hits += 1;
            self.meta.on_hit(set, way);
            return TagAccess {
                hit: true,
                way,
                evicted: None,
            };
        }
        self.stats.misses += 1;
        let way = match self.dir.invalid_way(set) {
            Some(w) => w,
            None => self.meta.victim(set, &mut self.rng),
        };
        let evicted = self.dir.fill_at(set, way, stored);
        self.meta.on_fill(set, way);
        TagAccess {
            hit: false,
            way,
            evicted,
        }
    }
}

/// Geometries covering the specialised scan widths: 8-way (fixed-width +
/// SWAR eligible), 4-way (fixed-width), 2-way and 16-way (generic loop),
/// 64-way fully-associative (mask-width edge).
fn geometries() -> Vec<Geometry> {
    vec![
        Geometry::new(16 * 1024, 64, 8).unwrap(),
        Geometry::new(8 * 1024, 64, 4).unwrap(),
        Geometry::new(4 * 1024, 64, 2).unwrap(),
        Geometry::new(32 * 1024, 64, 16).unwrap(),
        Geometry::new(4 * 1024, 64, 64).unwrap(),
    ]
}

/// Tag modes covering each match path: full 64-bit compare, SWAR packed
/// byte lanes (both partial reductions), and the scalar partial path
/// (stored width above the SWAR byte limit).
fn tag_modes() -> Vec<TagMode> {
    vec![
        TagMode::Full,
        TagMode::PartialLow { bits: 8 },
        TagMode::PartialLow { bits: 4 },
        TagMode::PartialXor { bits: 8 },
        TagMode::PartialLow { bits: 12 },
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Raw directory operations: packed and reference directories agree on
    /// every query after every mutation, for every tag mode and geometry.
    #[test]
    fn directory_matches_reference(ops in proptest::collection::vec(
        (0u8..4, any::<u16>(), any::<u8>()), 1..400,
    )) {
        for geom in geometries() {
            for mode in tag_modes() {
                let mut packed = cache_sim::Directory::new(geom, mode);
                let mut reference = RefDirectory::new(geom, mode);
                for &(op, addr, way_sel) in &ops {
                    let block = BlockAddr::new(u64::from(addr));
                    let (set, stored) = reference.locate(block);
                    prop_assert_eq!(packed.locate(block), (set, stored));
                    let way = way_sel as usize % geom.associativity();
                    match op {
                        0 => {
                            prop_assert_eq!(
                                packed.fill_at(set, way, stored),
                                reference.fill_at(set, way, stored)
                            );
                        }
                        1 => {
                            prop_assert_eq!(
                                packed.invalidate(set, way),
                                reference.invalidate(set, way)
                            );
                        }
                        // mark_dirty requires a valid way.
                        2 if reference.set_ways(set)[way].valid => {
                            packed.mark_dirty(set, way);
                            reference.mark_dirty(set, way);
                        }
                        _ => {} // pure queries below
                    }
                    prop_assert_eq!(packed.find(set, stored), reference.find(set, stored));
                    prop_assert_eq!(
                        packed.contains(set, stored),
                        reference.find(set, stored).is_some()
                    );
                    prop_assert_eq!(packed.invalid_way(set), reference.invalid_way(set));
                    prop_assert_eq!(packed.valid_count(set), reference.valid_count(set));
                    for w in 0..geom.associativity() {
                        let r = reference.set_ways(set)[w];
                        prop_assert_eq!(packed.is_valid(set, w), r.valid);
                        if r.valid {
                            prop_assert_eq!(packed.way_tag(set, w), r.tag);
                            prop_assert_eq!(packed.is_dirty(set, w), r.dirty);
                        }
                    }
                }
            }
        }
    }

    /// Full access sequences: for every policy and tag mode, the packed
    /// tag array reports the exact [`TagAccess`] sequence (hit flag, way,
    /// evicted way contents — i.e. the eviction order) and statistics of
    /// the reference, including RNG-consuming policies, which must draw
    /// identical victim sequences from identically seeded generators.
    #[test]
    fn tag_array_access_sequence_matches_reference(
        addrs in proptest::collection::vec(0u64..4096, 1..600),
        seed in any::<u64>(),
    ) {
        let geom = Geometry::new(16 * 1024, 64, 8).unwrap();
        for mode in [TagMode::Full, TagMode::PartialLow { bits: 8 }] {
            for policy in [
                PolicyKind::Lru,
                PolicyKind::LFU5,
                PolicyKind::Fifo,
                PolicyKind::Mru,
                PolicyKind::Random,
                PolicyKind::TreePlru,
            ] {
                let mut packed = TagArray::new(geom, mode, policy, seed);
                let mut reference = RefTagArray::new(geom, mode, policy, seed);
                for (i, &a) in addrs.iter().enumerate() {
                    let block = BlockAddr::new(a);
                    let got = packed.access(block);
                    let want = reference.access(block);
                    prop_assert_eq!(
                        got, want,
                        "{policy:?}/{mode:?} diverged at access {i} (block {a:#x})",
                    );
                }
                prop_assert_eq!(packed.stats(), reference.stats);
            }
        }
    }

    /// The precomputed-location entry points hit the same path as the
    /// address-based one.
    #[test]
    fn access_tag_equals_access(addrs in proptest::collection::vec(0u64..2048, 1..300)) {
        let geom = Geometry::new(8 * 1024, 64, 4).unwrap();
        let mode = TagMode::PartialLow { bits: 8 };
        let mut by_addr = TagArray::new(geom, mode, PolicyKind::Lru, 9);
        let mut by_tag = TagArray::new(geom, mode, PolicyKind::Lru, 9);
        for &a in &addrs {
            let block = BlockAddr::new(a);
            let set = geom.set_index(block);
            let tag = geom.tag(block);
            prop_assert_eq!(by_addr.access(block), by_tag.access_tag(set, tag));
        }
        prop_assert_eq!(by_addr.stats(), by_tag.stats());
    }
}

/// Long mixed-locality stream over the paper's L2 geometry: a scaled-down
/// soak of the exact configuration the experiments run, as a fixed
/// (non-property) regression case.
#[test]
fn paper_geometry_long_stream_matches_reference() {
    let geom = Geometry::new(512 * 1024, 64, 8).unwrap();
    for mode in [TagMode::Full, TagMode::PartialLow { bits: 8 }] {
        for policy in [PolicyKind::Lru, PolicyKind::LFU5] {
            let mut packed = TagArray::new(geom, mode, policy, 7);
            let mut reference = RefTagArray::new(geom, mode, policy, 7);
            let mut x = 0x2545_F491_4F6C_DD1Du64;
            for i in 0..200_000u64 {
                // Hot/scan mix: bursts over a resident working set plus a
                // cold sweep that forces steady evictions.
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                let block = if i % 4 < 3 {
                    BlockAddr::new(x % 6_000)
                } else {
                    BlockAddr::new(8_192 + x % 60_000)
                };
                assert_eq!(
                    packed.access(block),
                    reference.access(block),
                    "{policy:?}/{mode:?} diverged at access {i}"
                );
            }
            assert_eq!(packed.stats(), reference.stats);
            assert!(packed.stats().misses > 10_000, "stream must evict");
        }
    }
}
