//! Steady-state accesses must not allocate.
//!
//! The packed directory layout and the inline per-set metadata exist so
//! the per-access path is pure index arithmetic over preallocated words.
//! This test installs a counting global allocator and drives a million
//! accesses through the plain cache, both tag modes, and the adaptive
//! cache (in the companion crate's hot loop shapes), asserting the
//! allocation counter does not move once the structures are built.
//!
//! Lives in its own integration-test binary because `#[global_allocator]`
//! is process-global.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use cache_sim::{BlockAddr, Cache, CacheModel, Geometry, PolicyKind, TagArray, TagMode};

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

// SAFETY: delegates directly to the system allocator; the counter is a
// side effect with no influence on the returned memory.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// Mixed hot/scan block stream, computed without allocation.
#[inline]
fn stream_block(i: u64) -> BlockAddr {
    let group = i / 4;
    if i % 4 < 3 {
        BlockAddr::new(group % 768)
    } else {
        BlockAddr::new(768 + group % 16_384)
    }
}

#[test]
fn million_access_loop_allocates_nothing() {
    let geom = Geometry::new(512 * 1024, 64, 8).unwrap();

    // Plain caches over the headline policies.
    for policy in [PolicyKind::Lru, PolicyKind::LFU5] {
        let mut cache = Cache::new(geom, policy, 7);
        // Warm-up fills every structure (including any lazily grown one).
        for i in 0..50_000 {
            cache.access(stream_block(i), i % 9 == 0);
        }
        let before = allocations();
        let mut hits = 0u64;
        for i in 0..1_000_000u64 {
            hits += u64::from(cache.access(stream_block(i), i % 9 == 0).hit);
        }
        assert!(hits > 0);
        assert_eq!(
            allocations() - before,
            0,
            "{policy:?} access loop must not allocate"
        );
    }

    // Tag arrays across the match paths: full-tag compare and the packed
    // SWAR partial path.
    for mode in [TagMode::Full, TagMode::PartialLow { bits: 8 }] {
        let mut tags = TagArray::new(geom, mode, PolicyKind::Lru, 7);
        for i in 0..50_000 {
            tags.access(stream_block(i));
        }
        let before = allocations();
        for i in 0..1_000_000u64 {
            tags.access(stream_block(i));
        }
        assert_eq!(
            allocations() - before,
            0,
            "{mode:?} tag-array loop must not allocate"
        );
    }
}
