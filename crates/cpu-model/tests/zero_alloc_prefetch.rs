//! The prefetch-attached hierarchy hot loop must not allocate.
//!
//! The `prefetched` bookkeeping set switched to a trivial
//! integer-identity hasher ([`cpu_model::IdentityHasher`]): block
//! addresses are already well-mixed cache indices, so SipHash bought
//! nothing, and the set must behave like the rest of the access path —
//! pure index arithmetic once warm. This test installs a counting
//! global allocator (same pattern as `cache-sim/tests/zero_alloc.rs`)
//! and drives a prefetch-attached hierarchy through a mixed stream,
//! asserting the allocation counter does not move after warm-up.
//!
//! Lives in its own integration-test binary because `#[global_allocator]`
//! is process-global.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use cache_sim::{Cache, Geometry, PolicyKind};
use cpu_model::prefetch::PrefetchKind;
use cpu_model::{CpuConfig, Hierarchy};

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

// SAFETY: delegates directly to the system allocator; the counter is a
// side effect with no influence on the returned memory.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// Mixed hot/stride/scan byte-address stream, computed without
/// allocation. The stride phase keeps the stride prefetcher armed so
/// the `prefetched` set sees steady insert/remove traffic.
#[inline]
fn stream_addr(i: u64) -> u64 {
    match i % 8 {
        // Hot lines that fit in the L2: after warm-up these never reach
        // the miss stream, so the stride runs below stay consecutive.
        0..=2 => (i / 8 % 768) * 64,
        // Runs of three consecutive-line misses: two equal block deltas
        // arm the stride detector, which then issues every run. The
        // region wraps but exceeds the L2, so the runs miss forever
        // while the resident prefetched-block set stays bounded.
        3..=5 => 0x10_0000 + (i / 8 % 20_000) * 192 + (i % 8 - 3) * 64,
        // Pseudo-random scan keeping eviction pressure up.
        _ => 0x80_0000 + (i.wrapping_mul(31) % 16_384) * 64,
    }
}

#[test]
fn prefetch_attached_hierarchy_loop_allocates_nothing() {
    let cfg = CpuConfig::paper_default();
    for kind in [
        PrefetchKind::NextLine,
        PrefetchKind::Stride,
        PrefetchKind::Adaptive,
    ] {
        let geom = Geometry::new(512 * 1024, 64, 8).unwrap();
        let mut h = Hierarchy::new(&cfg, Cache::new(geom, PolicyKind::Lru, 7));
        h.set_prefetcher(kind.build());
        // Warm up in chunks until two consecutive chunks run
        // allocation-free: the prefetched set's resident population (and
        // so its table capacity) creeps up towards full L2 occupancy, so
        // one clean chunk alone can still precede a final resize.
        let chunk = 250_000u64;
        let mut start = 0u64;
        let mut clean = 0;
        for _ in 0..24 {
            let before = allocations();
            for i in start..start + chunk {
                h.inst_fetch(0x40_0000 + (i % 512) * 4);
                h.data_access(stream_addr(i), i % 9 == 0);
            }
            start += chunk;
            clean = if allocations() == before {
                clean + 1
            } else {
                0
            };
            if clean == 2 {
                break;
            }
        }
        assert_eq!(clean, 2, "{kind:?} structures never reached steady state");
        let before = allocations();
        for i in start..start + 800_000 {
            h.inst_fetch(0x40_0000 + (i % 512) * 4);
            h.data_access(stream_addr(i), i % 9 == 0);
        }
        assert!(h.demand_l2_misses() > 0);
        assert!(h.prefetch_stats().issued > 0, "{kind:?} never prefetched");
        assert_eq!(
            allocations() - before,
            0,
            "{kind:?}-attached hierarchy loop must not allocate"
        );
    }
}
