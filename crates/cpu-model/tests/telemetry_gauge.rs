//! The functional engine reports its simulation throughput when
//! telemetry is on.
//!
//! Lives in its own integration-test binary because
//! [`ac_telemetry::Telemetry::install`] claims the process-global
//! recorder slot.

use ac_telemetry::{Telemetry, TelemetryConfig};
use cache_sim::{Cache, Geometry, PolicyKind};
use cpu_model::{run_functional, CpuConfig, Hierarchy};
use workloads::primary_suite;

#[test]
fn functional_run_records_accesses_per_sec_gauge() {
    let hub = Telemetry::install(TelemetryConfig::default())
        .unwrap_or_else(|_| panic!("recorder already installed"));
    let config = CpuConfig::paper_default();
    let geom = Geometry::new(512 * 1024, 64, 8).unwrap();
    let mut hierarchy = Hierarchy::new(&config, Cache::new(geom, PolicyKind::Lru, 7));
    let bench = &primary_suite()[0];
    let stats = run_functional(&mut hierarchy, bench.spec.generator(), 50_000);
    assert!(stats.instructions > 0);

    let gauges = hub.gauges();
    let g = gauges
        .get("engine.accesses_per_sec")
        .and_then(|by_label| by_label.get(""))
        .copied()
        .expect("engine.accesses_per_sec gauge must be set after a run");
    assert!(g > 0.0, "throughput gauge must be positive, got {g}");
    assert_eq!(
        hub.counter_value("functional_instructions_total", ""),
        stats.instructions
    );
}
