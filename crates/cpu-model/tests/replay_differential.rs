//! Differential check of the front-end memoisation path: for every L2
//! organisation, replaying a captured [`cpu_model::L2Trace`] must be
//! bit-identical to running the front-end directly — same
//! [`cpu_model::FunctionalStats`], same L2 [`cache_sim::CacheStats`],
//! and (for the adaptive organisations) the same Figure-7 decision
//! counters, including the partial-tag RNG fallback paths.

use adaptive_cache::{
    AdaptiveCache, AdaptiveConfig, Component, DipCache, DipConfig, MultiAdaptiveCache, MultiConfig,
    SbarCache, SbarConfig,
};
use cache_sim::{Cache, CacheModel, Geometry, PolicyKind};
use cpu_model::prefetch::PrefetchKind;
use cpu_model::{
    capture_functional, replay_into, replay_l2, run_functional, CpuConfig, Hierarchy, L2Complex,
    L2Trace,
};
use proptest::prelude::*;
use workloads::{primary_suite, Benchmark};

/// The paper's L2 geometry (512KB, 64B lines, 8-way).
fn paper_geom() -> Geometry {
    Geometry::new(512 * 1024, 64, 8).unwrap()
}

/// Same seed the experiment runner uses, so the RNG-dependent paths
/// (partial-tag aliasing, random replacement) are exercised exactly as
/// sweeps exercise them.
const SEED: u64 = 0x0C0FFEE;

const INSTS: u64 = 40_000;

fn capture(bench: &Benchmark) -> L2Trace {
    let cfg = CpuConfig::paper_default();
    capture_functional(&cfg, bench.spec.generator(), INSTS)
}

/// Runs the direct front-end against `l2` and the captured `trace`
/// against `replayed_l2`, asserting identical functional statistics and
/// identical L2-side counters.
fn assert_differential<L2: CacheModel>(
    bench: &Benchmark,
    trace: &L2Trace,
    mut direct_l2: L2,
    mut replayed_l2: L2,
) -> (L2, L2) {
    let cfg = CpuConfig::paper_default();
    let mut h = Hierarchy::new(&cfg, &mut direct_l2);
    let direct = run_functional(&mut h, bench.spec.generator(), INSTS);
    drop(h);
    let replayed = replay_l2(trace, &mut replayed_l2);
    assert_eq!(replayed, direct, "{}: FunctionalStats diverge", bench.name);
    assert_eq!(
        replayed_l2.stats(),
        direct_l2.stats(),
        "{}: CacheStats diverge",
        bench.name
    );
    (direct_l2, replayed_l2)
}

#[test]
fn plain_policies_replay_identically() {
    let bench = &primary_suite()[0];
    let trace = capture(bench);
    for policy in [PolicyKind::Lru, PolicyKind::LFU5, PolicyKind::Fifo] {
        assert_differential(
            bench,
            &trace,
            Cache::new(paper_geom(), policy, SEED),
            Cache::new(paper_geom(), policy, SEED),
        );
    }
}

#[test]
fn adaptive_full_and_partial_tags_replay_identically() {
    let bench = &primary_suite()[1];
    let trace = capture(bench);
    // paper_default uses 8-bit partial shadow tags: aliasing resolution
    // draws from the cache's RNG, so this covers the stochastic path;
    // paper_full_tags is the deterministic reference.
    for cfg in [
        AdaptiveConfig::paper_full_tags(),
        AdaptiveConfig::paper_default(),
    ] {
        let (direct, replayed) = assert_differential(
            bench,
            &trace,
            AdaptiveCache::new(paper_geom(), cfg, SEED),
            AdaptiveCache::new(paper_geom(), cfg, SEED),
        );
        // Figure-7 decision counters must match too — the replay drives
        // the same fills in the same order, so imitation sampling,
        // shadow outcomes and aliasing fallbacks are reproduced exactly.
        assert_eq!(replayed.imitation_totals(), direct.imitation_totals());
        assert_eq!(
            replayed.exclusive_miss_totals(),
            direct.exclusive_miss_totals()
        );
        for c in [Component::A, Component::B] {
            assert_eq!(replayed.shadow_stats(c), direct.shadow_stats(c));
        }
        assert_eq!(replayed.aliasing_fallbacks(), direct.aliasing_fallbacks());
    }
}

#[test]
fn sbar_multi_and_dip_replay_identically() {
    let bench = &primary_suite()[2];
    let trace = capture(bench);
    for cfg in [
        SbarConfig::paper_default(),
        SbarConfig::paper_partial_tags(),
    ] {
        assert_differential(
            bench,
            &trace,
            SbarCache::new(paper_geom(), cfg, SEED),
            SbarCache::new(paper_geom(), cfg, SEED),
        );
    }
    assert_differential(
        bench,
        &trace,
        MultiAdaptiveCache::new(paper_geom(), MultiConfig::paper_five_policy(), SEED),
        MultiAdaptiveCache::new(paper_geom(), MultiConfig::paper_five_policy(), SEED),
    );
    assert_differential(
        bench,
        &trace,
        DipCache::new(paper_geom(), DipConfig::paper_default(), SEED),
        DipCache::new(paper_geom(), DipConfig::paper_default(), SEED),
    );
}

#[test]
fn prefetch_attached_replay_is_identical() {
    let bench = &primary_suite()[0];
    let trace = capture(bench);
    let cfg = CpuConfig::paper_default();
    for kind in [
        PrefetchKind::NextLine,
        PrefetchKind::Stride,
        PrefetchKind::Adaptive,
    ] {
        let mut h = Hierarchy::new(&cfg, Cache::new(paper_geom(), PolicyKind::Lru, SEED));
        h.set_prefetcher(kind.build());
        let direct = run_functional(&mut h, bench.spec.generator(), INSTS);

        let mut cx = L2Complex::new(Cache::new(paper_geom(), PolicyKind::Lru, SEED));
        cx.set_prefetcher(kind.build());
        let replayed = replay_into(&trace, &mut cx);

        assert_eq!(replayed, direct, "{kind:?}: FunctionalStats diverge");
        assert_eq!(
            cx.l2().stats(),
            h.l2().stats(),
            "{kind:?}: CacheStats diverge"
        );
        assert_eq!(
            cx.prefetch_stats(),
            h.prefetch_stats(),
            "{kind:?}: PrefetchStats diverge"
        );
    }
}

#[test]
fn replay_against_boxed_dyn_model_matches_concrete() {
    // The experiment runner replays into a `Box<dyn CacheModel>`; the
    // blanket `&mut T` impl must not change behaviour vs the concrete
    // type.
    let bench = &primary_suite()[1];
    let trace = capture(bench);
    let mut concrete = AdaptiveCache::new(paper_geom(), AdaptiveConfig::paper_default(), SEED);
    let mut boxed: Box<dyn CacheModel> = Box::new(AdaptiveCache::new(
        paper_geom(),
        AdaptiveConfig::paper_default(),
        SEED,
    ));
    let a = replay_l2(&trace, &mut concrete);
    let b = replay_l2(&trace, boxed.as_mut());
    assert_eq!(a, b);
    assert_eq!(concrete.stats(), boxed.stats());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The packed delta/bit encoding round-trips arbitrary event
    /// sequences (addresses anywhere in the u64 space, arbitrary
    /// writeback flags, non-decreasing instruction indices).
    #[test]
    fn trace_encoding_roundtrips(
        raw in proptest::collection::vec((any::<u64>(), any::<bool>(), 0u64..1000), 0..300),
    ) {
        let mut events: Vec<(u64, bool, u64)> = raw;
        // Instruction indices are non-decreasing in a real capture.
        events.sort_by_key(|&(_, _, inst)| inst);
        let mut b = cpu_model::L2TraceBuilder::new();
        for &(addr, wb, inst) in &events {
            b.push(addr, wb, inst);
        }
        let t = b.finish(cpu_model::FunctionalStats::default(), 0, 1 << 16);
        let back: Vec<(u64, bool, u64)> =
            t.events().map(|e| (e.addr, e.writeback, e.inst)).collect();
        prop_assert_eq!(back, events);
    }
}
