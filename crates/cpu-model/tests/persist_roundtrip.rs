//! Robustness properties of the persistent ACRS capture format:
//!
//! 1. a persisted capture round-trips bit-identically through disk —
//!    replaying the loaded trace is indistinguishable from replaying
//!    the in-memory one, for arbitrary event streams;
//! 2. flipping any single bit of a persisted file is detected (the
//!    reader errors; it never yields a decodable-but-different trace);
//! 3. under every seeded I/O fault plan, a save/load cycle either
//!    fails loudly or returns the exact original — never garbage.

use cache_sim::{Cache, CacheModel, Geometry, PolicyKind};
use cpu_model::{
    capture_functional, decode_trace, encode_trace, load_trace, replay_l2, save_trace, CpuConfig,
    FaultyIo, FunctionalStats, IoFaultPlan, L2Trace, L2TraceBuilder, StdIo,
};
use proptest::prelude::*;
use workloads::{primary_suite, Inst, InstKind};

fn paper_geom() -> Geometry {
    Geometry::new(512 * 1024, 64, 8).unwrap()
}

const SEED: u64 = 0x0C0FFEE;

fn tmp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("persist_roundtrip_{tag}_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// A small but non-trivial real capture (exercises both L1s, writebacks
/// and the timeline schedule).
fn real_capture() -> L2Trace {
    let cfg = CpuConfig::paper_default();
    let bench = &primary_suite()[0];
    capture_functional(&cfg, bench.spec.generator(), 20_000)
}

fn assert_traces_replay_identically(a: &L2Trace, b: &L2Trace) {
    let mut l2_a = Cache::new(paper_geom(), PolicyKind::Lru, SEED);
    let mut l2_b = Cache::new(paper_geom(), PolicyKind::Lru, SEED);
    let stats_a = replay_l2(a, &mut l2_a);
    let stats_b = replay_l2(b, &mut l2_b);
    assert_eq!(stats_a, stats_b, "replayed FunctionalStats diverge");
    assert_eq!(l2_a.stats(), l2_b.stats(), "replayed CacheStats diverge");
    assert_eq!(a.total_ticks(), b.total_ticks());
    assert_eq!(
        a.schedule().collect::<Vec<_>>(),
        b.schedule().collect::<Vec<_>>()
    );
}

#[test]
fn real_capture_round_trips_through_disk() {
    let dir = tmp_dir("real");
    let path = dir.join("capture.acrs");
    let trace = real_capture();
    let io = StdIo;
    let written = save_trace(&io, &path, &trace, 42).unwrap();
    assert_eq!(written, std::fs::metadata(&path).unwrap().len() as usize);
    let loaded = load_trace(&io, &path, 42).unwrap();
    assert_eq!(
        loaded.events().collect::<Vec<_>>(),
        trace.events().collect::<Vec<_>>()
    );
    assert_eq!(loaded.front_stats(), trace.front_stats());
    assert_traces_replay_identically(&trace, &loaded);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn every_single_bit_flip_is_detected() {
    // A compact capture keeps the sweep exhaustive yet fast: every byte
    // of the file, every bit of the byte.
    let cfg = CpuConfig::paper_default();
    let stream = (0..2_000u64).map(|i| {
        Inst::free(
            0x40_0000 + (i % 64) * 4,
            InstKind::Load {
                addr: (i.wrapping_mul(31) % 512) * 64,
            },
        )
    });
    let trace = capture_functional(&cfg, stream, 2_000);
    let bytes = encode_trace(&trace, 7);
    assert!(decode_trace(&bytes, 7).is_ok(), "pristine file must decode");
    let baseline: Vec<_> = trace.events().collect();
    let mut detected = 0usize;
    for pos in 0..bytes.len() {
        for bit in 0..8u8 {
            let mut mutated = bytes.clone();
            mutated[pos] ^= 1 << bit;
            match decode_trace(&mutated, 7) {
                Err(_) => detected += 1,
                Ok(t) => panic!(
                    "flip of bit {bit} at byte {pos}/{} decoded silently \
                     (events equal: {})",
                    bytes.len(),
                    t.events().collect::<Vec<_>>() == baseline
                ),
            }
        }
    }
    assert_eq!(detected, bytes.len() * 8);
}

#[test]
fn every_seeded_fault_plan_fails_loudly_or_round_trips() {
    let dir = tmp_dir("seeded");
    let trace = real_capture();
    let reference: Vec<_> = trace.events().collect();
    let mut injected_total = 0u64;
    for seed in 0..200u64 {
        let path = dir.join(format!("s{seed}.acrs"));
        let io = FaultyIo::new(IoFaultPlan::from_seed(seed));
        // One fault somewhere in save → load. Whatever happens, the only
        // acceptable outcomes are an error or the exact original trace.
        let outcome =
            save_trace(&io, &path, &trace, seed).and_then(|_| load_trace(&io, &path, seed));
        match outcome {
            Ok(loaded) => {
                assert_eq!(
                    loaded.events().collect::<Vec<_>>(),
                    reference,
                    "seed {seed}: fault produced a DIFFERENT decodable trace"
                );
                assert_eq!(loaded.front_stats(), trace.front_stats(), "seed {seed}");
            }
            Err(e) => {
                // Loud failure is fine — that is the recapture path. The
                // error must be typed, not a panic.
                let _ = e.to_string();
            }
        }
        injected_total += io.injected();
    }
    assert!(
        injected_total >= 200,
        "only {injected_total} faults fired across 200 seeded plans"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Arbitrary builder-produced traces survive encode → decode with
    /// every event, stat and schedule intact, and replay identically.
    #[test]
    fn arbitrary_traces_round_trip_bit_identically(
        raw in proptest::collection::vec((any::<u64>(), any::<bool>(), 0u64..5_000), 0..400),
        total_ticks in 0u64..1_000_000,
        window in 1u64..(1 << 20),
        fingerprint in any::<u64>(),
    ) {
        let mut events: Vec<(u64, bool, u64)> = raw;
        events.sort_by_key(|&(_, _, inst)| inst);
        let mut b = L2TraceBuilder::new();
        for &(addr, wb, inst) in &events {
            b.push(addr, wb, inst);
        }
        let front = FunctionalStats {
            instructions: events.len() as u64,
            data_accesses: total_ticks / 2,
            inst_fetches: total_ticks - total_ticks / 2,
            ..FunctionalStats::default()
        };
        let trace = b.finish(front, total_ticks, window);
        let bytes = encode_trace(&trace, fingerprint);
        let back = decode_trace(&bytes, fingerprint).expect("clean bytes decode");
        let orig: Vec<_> = trace.events().collect();
        let round: Vec<_> = back.events().collect();
        prop_assert_eq!(round, orig);
        prop_assert_eq!(back.front_stats(), trace.front_stats());
        prop_assert_eq!(back.total_ticks(), trace.total_ticks());
        prop_assert_eq!(
            back.schedule().collect::<Vec<_>>(),
            trace.schedule().collect::<Vec<_>>()
        );
        // Same bytes again: encoding is deterministic.
        prop_assert_eq!(encode_trace(&back, fingerprint), bytes);
    }
}
