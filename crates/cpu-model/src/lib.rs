//! # cpu-model — a cycle-level out-of-order CPU timing model
//!
//! The paper evaluates adaptive caching with the MASE simulator from the
//! SimpleScalar toolset for the Alpha ISA. That simulator (and the SPEC
//! binaries it executes) is not available here, so this crate provides a
//! from-scratch trace-driven timing model with the same configuration
//! surface as the paper's Table 1:
//!
//! * 8-wide fetch/issue/retire, 32 RS entries, 64 ROB entries,
//! * 4 integer ALUs, 4 integer mult/div, 4 FP ALUs, 4 FP mult/div,
//!   2 memory ports with the paper's latencies,
//! * 16 KB gshare / 16 KB bimodal / 16 KB meta hybrid branch predictor
//!   with a 4K-entry 4-way BTB,
//! * 16 KB 4-way L1I and L1D (2-cycle), a unified 512 KB 8-way L2
//!   (15-cycle) with a **pluggable replacement organisation** (plain,
//!   adaptive, SBAR, ...),
//! * a finite **store buffer** with serial drain (the paper explicitly
//!   fixed MASE's infinite store buffers; Figure 10 sweeps this),
//! * a split-transaction bus (8 B wide, 8:1 frequency ratio) in front of
//!   main memory, and MSHR-limited miss overlap (MLP).
//!
//! The model is *timestamp-based*: instructions are processed in program
//! order and each pipeline stage's time is computed from resource and
//! dependency constraints. This is the standard trace-driven approximation
//! — it captures ILP, MLP, store-buffer stalls and branch redirects
//! without simulating every structure cycle by cycle, and it is exactly
//! reproducible.
//!
//! # Example
//!
//! ```
//! use cpu_model::{CpuConfig, Pipeline};
//! use workloads::primary_suite;
//!
//! let config = CpuConfig::paper_default();
//! let bench = &primary_suite()[1]; // applu
//! let mut pipe = Pipeline::with_lru_l2(config);
//! let stats = pipe.run(bench.spec.generator(), 50_000);
//! assert_eq!(stats.instructions, 50_000);
//! assert!(stats.cpi() > 0.3, "cpi = {}", stats.cpi());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod branch;
mod config;
mod hierarchy;
mod pipeline;
pub mod prefetch;
pub mod replay;

pub use branch::{BranchPredictor, BranchStats};
pub use config::{CacheParams, CpuConfig};
pub use hierarchy::{
    l1_geometry, run_functional, BlockSet, FunctionalStats, Hierarchy, IdentityHasher, L2Complex,
    Level,
};
pub use pipeline::{Pipeline, RunStats};
pub use replay::persist::{
    config_fingerprint, decode_trace, encode_trace, load_trace, save_trace, FaultyIo, IoFaultPlan,
    PersistError, ReplayIo, StdIo,
};
pub use replay::{capture_functional, replay_into, replay_l2, L2Event, L2Trace, L2TraceBuilder};
