//! The timestamp-based out-of-order pipeline model.
//!
//! Instructions are processed in program order; for each one the model
//! computes fetch, dispatch, issue, completion and retirement timestamps
//! under the machine's resource constraints:
//!
//! * **fetch** — `width` per cycle, stalling on I-cache misses and branch
//!   redirects (mispredictions and BTB misses),
//! * **dispatch** — blocked when the ROB (64) or RS (32) window is full,
//! * **issue** — waits for source operands (dependency distances from the
//!   trace) and a free functional unit of the right class,
//! * **memory** — loads occupy a memory port and, on a miss, an MSHR for
//!   the full miss latency (bounding MLP) and the split-transaction bus
//!   for the line transfer,
//! * **retire** — in order, `width` per cycle; stores must claim a store
//!   buffer entry at retirement and drain serially through the hierarchy
//!   (the structure whose capacity Figure 10 sweeps).
//!
//! The final cycle count is the retirement time of the last instruction.

use crate::branch::{BranchPredictor, BranchStats};
use crate::config::CpuConfig;
use crate::hierarchy::{Hierarchy, Level};
use cache_sim::{Cache, CacheModel, CacheStats, Geometry, PolicyKind};
use serde::{Deserialize, Serialize};
use workloads::{Inst, InstKind};

/// Ring buffer of timestamps for window constraints (ROB, RS, SB).
#[derive(Debug, Clone)]
struct TimeRing {
    times: Vec<u64>,
    idx: usize,
}

impl TimeRing {
    fn new(len: usize) -> Self {
        TimeRing {
            times: vec![0; len.max(1)],
            idx: 0,
        }
    }

    /// The timestamp recorded `len` pushes ago (0 until the ring wraps).
    fn oldest(&self) -> u64 {
        self.times[self.idx]
    }

    fn push(&mut self, t: u64) {
        self.times[self.idx] = t;
        self.idx = (self.idx + 1) % self.times.len();
    }

    /// Entries still occupied at time `t` (occupancy gauge).
    fn busy_at(&self, t: u64) -> u32 {
        self.times.iter().filter(|&&x| x > t).count() as u32
    }
}

/// A pool of identical resources, each tracked by its next-free time.
#[derive(Debug, Clone)]
struct Pool {
    free_at: Vec<u64>,
}

impl Pool {
    fn new(n: u32) -> Self {
        Pool {
            free_at: vec![0; n.max(1) as usize],
        }
    }

    /// Earliest time at or after `ready` a unit is available; occupies the
    /// chosen unit for `occupy` cycles from the grant time.
    fn acquire(&mut self, ready: u64, occupy: u64) -> u64 {
        let (slot, &t) = self
            .free_at
            .iter()
            .enumerate()
            .min_by_key(|&(_, &t)| t)
            .unwrap();
        let grant = ready.max(t);
        self.free_at[slot] = grant + occupy;
        grant
    }

    /// Earliest-free slot and its free time, for two-phase acquisition
    /// (used for MSHRs, which stay busy until the miss returns).
    fn begin(&self) -> (usize, u64) {
        self.free_at
            .iter()
            .enumerate()
            .min_by_key(|&(_, &t)| t)
            .map(|(i, &t)| (i, t))
            .unwrap()
    }

    /// Completes a two-phase acquisition: slot `slot` is busy until `until`.
    fn end(&mut self, slot: usize, until: u64) {
        self.free_at[slot] = until;
    }

    /// Units still occupied at time `t` (occupancy gauge).
    fn busy_at(&self, t: u64) -> u32 {
        self.free_at.iter().filter(|&&x| x > t).count() as u32
    }
}

/// Results of a [`Pipeline::run`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunStats {
    /// Instructions retired.
    pub instructions: u64,
    /// Total cycles (retirement time of the last instruction).
    pub cycles: u64,
    /// L1 instruction-cache statistics.
    pub l1i: CacheStats,
    /// L1 data-cache statistics.
    pub l1d: CacheStats,
    /// Unified L2 statistics.
    pub l2: CacheStats,
    /// Branch predictor statistics.
    pub branches: BranchStats,
    /// Cycles lost waiting for a store-buffer entry at retirement.
    pub sb_stall_cycles: u64,
    /// Stores coalesced by write combining (0 unless enabled).
    pub wc_merged_stores: u64,
    /// Label of the L2 organisation that produced these numbers.
    pub l2_label: String,
}

impl RunStats {
    /// Cycles per instruction.
    pub fn cpi(&self) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            self.cycles as f64 / self.instructions as f64
        }
    }

    /// L2 misses per thousand instructions.
    pub fn l2_mpki(&self) -> f64 {
        self.l2.mpki(self.instructions)
    }

    /// L1D misses per thousand instructions.
    pub fn l1d_mpki(&self) -> f64 {
        self.l1d.mpki(self.instructions)
    }

    /// L1I misses per thousand instructions.
    pub fn l1i_mpki(&self) -> f64 {
        self.l1i.mpki(self.instructions)
    }
}

/// The out-of-order pipeline bound to a memory hierarchy.
///
/// Generic over the cache organisations so experiments can reach into
/// them (e.g. the phase sampling of Figure 7, or the adaptive-L1
/// experiment of Section 4.6); use [`Pipeline::with_lru_l2`] for the
/// conventional baseline or [`Pipeline::new`] with any [`CacheModel`].
#[derive(Debug)]
pub struct Pipeline<
    L2: CacheModel,
    L1I: CacheModel = Cache<PolicyKind>,
    L1D: CacheModel = Cache<PolicyKind>,
> {
    config: CpuConfig,
    hierarchy: Hierarchy<L2, L1I, L1D>,
    predictor: BranchPredictor,

    // --- timing state ---
    /// Next cycle a fetch slot is available.
    fetch_time: u64,
    /// Fetch slots used in the current fetch cycle.
    fetch_slots: u32,
    /// Last fetched instruction block (same-block fetches are free).
    last_iblock: u64,
    /// ROB slot reuse: retirement times of the last `rob_entries` insts.
    rob: TimeRing,
    /// RS occupancy: issue times of the last `rs_entries` insts.
    rs: TimeRing,
    /// Completion times of the last 256 instructions (dependency window).
    completions: Vec<u64>,
    inst_index: u64,
    /// Functional units.
    int_alu: Pool,
    int_mul: Pool,
    fp_alu: Pool,
    fp_div: Pool,
    mem_ports: Pool,
    mshrs: Pool,
    /// Store buffer slots (drain-completion times) + serial drain cursor.
    store_buffer: TimeRing,
    last_drain_end: u64,
    /// Split-transaction bus next-free time.
    bus_free: u64,
    /// Writeback (eviction) buffer slots between L2 and memory.
    wb_buffer: TimeRing,
    /// In-order retirement cursor.
    last_retire: u64,
    retire_slots: u32,
    retire_cycle: u64,
    sb_stall_cycles: u64,
    instructions: u64,
    /// Drain latency of the most recent store (consumed at retirement).
    pending_drain_cost: u64,
    /// Line address of the most recent store (for write combining).
    last_store_line: u64,
    /// Stores coalesced by write combining.
    wc_merged: u64,
}

impl Pipeline<Cache<PolicyKind>> {
    /// A pipeline with the conventional LRU L2 of the paper's baseline.
    pub fn with_lru_l2(config: CpuConfig) -> Self {
        let geom = Geometry::new(
            config.l2.size_bytes,
            config.l2.line_bytes,
            config.l2.associativity,
        )
        .expect("invalid L2 geometry");
        Pipeline::new(config, Cache::new(geom, PolicyKind::Lru, 0x12))
    }
}

impl<L2: CacheModel> Pipeline<L2> {
    /// Builds a pipeline around an arbitrary L2 organisation.
    pub fn new(config: CpuConfig, l2: L2) -> Self {
        Pipeline::with_hierarchy(config, Hierarchy::new(&config, l2))
    }
}

impl<L2: CacheModel, L1I: CacheModel, L1D: CacheModel> Pipeline<L2, L1I, L1D> {
    /// Builds a pipeline around a fully custom memory hierarchy.
    pub fn with_hierarchy(config: CpuConfig, hierarchy: Hierarchy<L2, L1I, L1D>) -> Self {
        Pipeline {
            hierarchy,
            predictor: BranchPredictor::paper_default(),
            fetch_time: 0,
            fetch_slots: 0,
            last_iblock: u64::MAX,
            rob: TimeRing::new(config.rob_entries as usize),
            rs: TimeRing::new(config.rs_entries as usize),
            completions: vec![0; 256],
            inst_index: 0,
            int_alu: Pool::new(config.int_alu_units),
            int_mul: Pool::new(config.int_mul_units),
            fp_alu: Pool::new(config.fp_alu_units),
            fp_div: Pool::new(config.fp_div_units),
            mem_ports: Pool::new(config.mem_ports),
            mshrs: Pool::new(config.mshrs),
            store_buffer: TimeRing::new(config.store_buffer_entries as usize),
            last_drain_end: 0,
            bus_free: 0,
            wb_buffer: TimeRing::new(config.writeback_buffer_entries as usize),
            last_retire: 0,
            retire_slots: 0,
            retire_cycle: 0,
            sb_stall_cycles: 0,
            instructions: 0,
            pending_drain_cost: 0,
            last_store_line: u64::MAX,
            wc_merged: 0,
            config,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &CpuConfig {
        &self.config
    }

    /// Cycles elapsed so far (retirement time of the newest instruction).
    pub fn cycles(&self) -> u64 {
        self.last_retire
    }

    /// Instructions processed so far.
    pub fn instructions(&self) -> u64 {
        self.instructions
    }

    /// The L2 organisation (for inspection).
    pub fn l2(&self) -> &L2 {
        self.hierarchy.l2()
    }

    /// Mutable access to the L2 organisation (phase sampling).
    pub fn l2_mut(&mut self) -> &mut L2 {
        self.hierarchy.l2_mut()
    }

    /// Memory latency (cycles) of an access served at `level`, including
    /// bus occupancy for memory-level transfers, and advances the bus
    /// cursor. `start` is when the access leaves the core.
    fn memory_time(&mut self, level: Level, start: u64, extra_wbs: u32) -> u64 {
        let c = &self.config;
        let l1 = u64::from(c.l1d.hit_latency);
        match level {
            Level::L1 => start + l1,
            Level::L2 => start + l1 + u64::from(c.l2.hit_latency),
            Level::Memory => {
                let transfer = u64::from(c.bus_transfer_cycles());
                let request = start + l1 + u64::from(c.l2.hit_latency);
                let mut bus_grant = request.max(self.bus_free);
                // Dirty L2 victims need a writeback-buffer entry before
                // the fill can proceed (footnote 5: pre-reserved entries
                // prevent deadlocking the hierarchy's queues).
                for _ in 0..extra_wbs {
                    let slot_free = self.wb_buffer.oldest();
                    bus_grant = bus_grant.max(slot_free);
                    self.wb_buffer.push(bus_grant + transfer);
                }
                // The response transfer occupies the bus; writebacks add
                // further occupancy behind it.
                self.bus_free = bus_grant + transfer * u64::from(1 + extra_wbs);
                bus_grant + u64::from(c.mem_latency) + transfer
            }
        }
    }

    /// Processes one instruction and returns its retirement time.
    pub fn step(&mut self, inst: &Inst) -> u64 {
        let c = self.config;
        let idx = self.inst_index;
        self.inst_index += 1;
        self.instructions += 1;

        // ---- FETCH ----
        let iblock = inst.pc / c.l1i.line_bytes as u64;
        if iblock != self.last_iblock {
            self.last_iblock = iblock;
            let acc = self.hierarchy.inst_fetch(inst.pc);
            let fetch_penalty = match acc.level {
                Level::L1 => 0,
                Level::L2 => u64::from(c.l2.hit_latency),
                Level::Memory => {
                    u64::from(c.l2.hit_latency)
                        + u64::from(c.mem_latency)
                        + u64::from(c.bus_transfer_cycles())
                }
            };
            self.fetch_time += fetch_penalty;
            self.fetch_slots = 0;
        }
        if self.fetch_slots >= c.width {
            self.fetch_time += 1;
            self.fetch_slots = 0;
        }
        self.fetch_slots += 1;
        let fetch = self.fetch_time;

        // ---- DISPATCH (ROB/RS window constraints) ----
        let mut dispatch = fetch + u64::from(c.front_depth);
        dispatch = dispatch.max(self.rob.oldest()); // slot of inst i-64
        dispatch = dispatch.max(self.rs.oldest()); // issue of inst i-32

        // ---- operand readiness ----
        let mut ready = dispatch;
        for &d in &inst.deps {
            if d != 0 && u64::from(d) <= idx {
                let producer = (idx - u64::from(d)) as usize % self.completions.len();
                ready = ready.max(self.completions[producer]);
            }
        }

        // ---- ISSUE + EXECUTE ----
        let complete = match inst.kind {
            InstKind::IntAlu => {
                let t = self.int_alu.acquire(ready, 1);
                t + u64::from(c.lat_int_alu)
            }
            InstKind::IntMul => {
                let t = self.int_mul.acquire(ready, 1);
                t + u64::from(c.lat_int_mul)
            }
            InstKind::IntDiv => {
                // Divides are unpipelined: hold the unit for the latency.
                let t = self.int_mul.acquire(ready, u64::from(c.lat_int_mul));
                t + u64::from(c.lat_int_mul)
            }
            InstKind::FpAdd => {
                let t = self.fp_alu.acquire(ready, 1);
                t + u64::from(c.lat_fp_add)
            }
            InstKind::FpDiv => {
                let t = self.fp_div.acquire(ready, u64::from(c.lat_fp_div));
                t + u64::from(c.lat_fp_div)
            }
            InstKind::Load { addr } => {
                let issue = self.mem_ports.acquire(ready, 1);
                let acc = self.hierarchy.data_access(addr, false);
                match acc.level {
                    Level::L1 => issue + u64::from(c.l1d.hit_latency),
                    level => {
                        // A miss occupies an MSHR for its whole lifetime,
                        // bounding how many misses overlap (MLP).
                        let (slot, free) = self.mshrs.begin();
                        let start = issue.max(free);
                        let done = self.memory_time(level, start, acc.memory_writebacks);
                        self.mshrs.end(slot, done);
                        done
                    }
                }
            }
            InstKind::Store { addr } => {
                // Address generation uses a memory port; the data access
                // itself happens at drain time (see retirement below).
                let issue = self.mem_ports.acquire(ready, 1);
                // Record the access now (program order) and remember its
                // drain latency via completion bookkeeping below.
                let acc = self.hierarchy.data_access(addr, true);
                let line = addr / c.l1d.line_bytes as u64;
                if c.sb_write_combining && line == self.last_store_line {
                    // Coalesced into the previous entry: trivial drain.
                    self.pending_drain_cost = 1;
                    self.wc_merged += 1;
                } else {
                    self.pending_drain_cost = match acc.level {
                        Level::L1 => u64::from(c.l1d.hit_latency),
                        Level::L2 => u64::from(c.l1d.hit_latency) + u64::from(c.l2.hit_latency),
                        Level::Memory => {
                            u64::from(c.l1d.hit_latency)
                                + u64::from(c.l2.hit_latency)
                                + u64::from(c.mem_latency)
                                + u64::from(c.bus_transfer_cycles())
                        }
                    };
                }
                self.last_store_line = line;
                issue + 1
            }
            InstKind::Branch { taken, target } => {
                let issue = self.int_alu.acquire(ready, 1);
                let complete = issue + 1;
                let (correct, btb_hit) = self.predictor.predict_and_update(inst.pc, taken, target);
                if !correct {
                    // Redirect: fetch restarts after resolution.
                    self.fetch_time = self
                        .fetch_time
                        .max(complete + u64::from(c.mispredict_penalty));
                    self.fetch_slots = 0;
                    self.last_iblock = u64::MAX;
                } else if taken && !btb_hit {
                    // Correct direction but unknown target: short bubble.
                    self.fetch_time = self.fetch_time.max(fetch + u64::from(c.front_depth));
                    self.fetch_slots = 0;
                }
                complete
            }
        };

        let comp_slot = (idx % self.completions.len() as u64) as usize;
        self.completions[comp_slot] = complete;
        self.rs.push(complete.max(ready)); // RS entry freed at issue/complete

        // ---- RETIRE (in order, width per cycle) ----
        let mut retire = complete.max(self.last_retire);
        if retire == self.retire_cycle {
            self.retire_slots += 1;
            if self.retire_slots >= c.width {
                retire += 1;
                self.retire_cycle = retire;
                self.retire_slots = 0;
            }
        } else {
            self.retire_cycle = retire;
            self.retire_slots = 1;
        }

        // Stores claim a store-buffer slot at retirement.
        if matches!(inst.kind, InstKind::Store { .. }) {
            let slot_free = self.store_buffer.oldest();
            if slot_free > retire {
                self.sb_stall_cycles += slot_free - retire;
                retire = slot_free;
                self.retire_cycle = retire;
                self.retire_slots = 1;
            }
            let drain_start = retire.max(self.last_drain_end);
            let drain_end = drain_start + self.pending_drain_cost;
            self.last_drain_end = drain_end;
            self.store_buffer.push(drain_end);
        }

        self.last_retire = retire;
        self.rob.push(retire);
        retire
    }

    /// Runs `max_insts` instructions from `trace` and reports statistics.
    pub fn run<I: Iterator<Item = Inst>>(&mut self, trace: I, max_insts: u64) -> RunStats {
        let _span = ac_telemetry::span("cpu", || {
            format!("pipeline_run {}", self.hierarchy.l2().label())
        });
        // Ticks in cycles; window boundaries also sample MSHR and
        // store-buffer occupancy at the current retirement time.
        let mut timeline = ac_telemetry::Timeline::from_hub("cycles", || {
            format!("pipeline {}", self.hierarchy.l2().label())
        });
        for inst in trace.take(max_insts as usize) {
            self.step(&inst);
            if let Some(tl) = timeline.as_mut() {
                let now = self.last_retire;
                if tl.due(now) {
                    let gauges = ac_telemetry::TimelineGauges {
                        mshr_busy: self.mshrs.busy_at(now),
                        sb_busy: self.store_buffer.busy_at(now),
                    };
                    tl.record(
                        now,
                        self.instructions,
                        self.hierarchy.l2().timeline_probe(),
                        gauges,
                    );
                }
            }
        }
        if let Some(tl) = timeline.take() {
            let now = self.last_retire;
            let gauges = ac_telemetry::TimelineGauges {
                mshr_busy: self.mshrs.busy_at(now),
                sb_busy: self.store_buffer.busy_at(now),
            };
            tl.finish(
                now,
                self.instructions,
                self.hierarchy.l2().timeline_probe(),
                gauges,
            );
        }
        let stats = self.stats();
        if ac_telemetry::enabled() {
            self.hierarchy.l2().flush_telemetry();
            ac_telemetry::counter_add("pipeline_instructions_total", stats.instructions);
            ac_telemetry::counter_add("pipeline_cycles_total", stats.cycles);
        }
        stats
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> RunStats {
        RunStats {
            instructions: self.instructions,
            cycles: self.last_retire,
            l1i: *self.hierarchy.l1i_stats(),
            l1d: *self.hierarchy.l1d_stats(),
            l2: *self.hierarchy.l2().stats(),
            branches: self.predictor.stats(),
            sb_stall_cycles: self.sb_stall_cycles,
            wc_merged_stores: self.wc_merged,
            l2_label: self.hierarchy.l2().label(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use workloads::{primary_suite, MixSpec};

    fn pipe() -> Pipeline<Cache<PolicyKind>> {
        Pipeline::with_lru_l2(CpuConfig::paper_default())
    }

    fn alu(pc: u64) -> Inst {
        Inst::free(pc, InstKind::IntAlu)
    }

    #[test]
    fn ideal_ilp_approaches_width() {
        // Independent single-cycle ALU ops in a tiny loop: throughput is
        // bounded by the 4 integer ALUs (CPI 0.25), not the 8-wide front
        // end — exactly Table 1's resource mix.
        let mut p = pipe();
        let insts: Vec<Inst> = (0..200_000u64)
            .map(|i| alu(0x40_0000 + (i % 16) * 4))
            .collect();
        let s = p.run(insts.into_iter(), 200_000);
        let cpi = s.cpi();
        assert!(cpi < 0.27, "ALU-bound CPI should be ~0.25, got {cpi}");
        assert!(cpi >= 0.25 - 0.01, "CPI cannot beat the 4 ALUs, got {cpi}");
    }

    #[test]
    fn serial_dependencies_bound_cpi_to_one() {
        // Every op depends on its predecessor: CPI ~ 1 regardless of width.
        let mut p = pipe();
        let insts: Vec<Inst> = (0..50_000u64)
            .map(|i| Inst {
                pc: 0x40_0000 + (i % 16) * 4,
                kind: InstKind::IntAlu,
                deps: [1, 0],
            })
            .collect();
        let s = p.run(insts.into_iter(), 50_000);
        assert!(
            s.cpi() > 0.9,
            "serial chain must serialise, cpi={}",
            s.cpi()
        );
        assert!(
            s.cpi() < 1.3,
            "chain of 1-cycle ops stays near 1, cpi={}",
            s.cpi()
        );
    }

    #[test]
    fn long_latency_serial_ops_scale_cpi() {
        // Serial FP divides: ~16 cycles each.
        let mut p = pipe();
        let insts: Vec<Inst> = (0..5_000u64)
            .map(|i| Inst {
                pc: 0x40_0000 + (i % 16) * 4,
                kind: InstKind::FpDiv,
                deps: [1, 0],
            })
            .collect();
        let s = p.run(insts.into_iter(), 5_000);
        assert!(s.cpi() > 14.0, "serial fdiv cpi={}", s.cpi());
    }

    #[test]
    fn cache_missing_loads_raise_cpi() {
        let mut hot = pipe();
        let hot_insts: Vec<Inst> = (0..50_000u64)
            .map(|i| Inst {
                pc: 0x40_0000 + (i % 16) * 4,
                kind: InstKind::Load { addr: (i % 8) * 64 },
                deps: [1, 0],
            })
            .collect();
        let s_hot = hot.run(hot_insts.into_iter(), 50_000);

        let mut cold = pipe();
        let cold_insts: Vec<Inst> = (0..50_000u64)
            .map(|i| Inst {
                pc: 0x40_0000 + (i % 16) * 4,
                kind: InstKind::Load {
                    // Pointer-chase-like: every load leaves the L2.
                    addr: (i * 947) % (4 << 20),
                },
                deps: [1, 0],
            })
            .collect();
        let s_cold = cold.run(cold_insts.into_iter(), 50_000);
        assert!(
            s_cold.cpi() > s_hot.cpi() * 10.0,
            "memory-bound {} vs cache-resident {}",
            s_cold.cpi(),
            s_hot.cpi()
        );
    }

    #[test]
    fn mlp_overlaps_independent_misses() {
        // Independent missing loads should overlap up to the MSHR count,
        // giving far better CPI than dependent ones.
        let mk = |dep: u8| -> Vec<Inst> {
            (0..30_000u64)
                .map(|i| Inst {
                    pc: 0x40_0000 + (i % 16) * 4,
                    kind: InstKind::Load {
                        addr: (i * 947) % (4 << 20),
                    },
                    deps: [dep, 0],
                })
                .collect()
        };
        let s_ind = pipe().run(mk(0).into_iter(), 30_000);
        let s_dep = pipe().run(mk(1).into_iter(), 30_000);
        assert!(
            s_ind.cpi() * 2.0 < s_dep.cpi(),
            "independent misses {} vs serial misses {}",
            s_ind.cpi(),
            s_dep.cpi()
        );
    }

    #[test]
    fn store_buffer_pressure_stalls() {
        // A store-heavy stream with L2-missing stores: a 1-entry store
        // buffer must stall retirement far more than a 64-entry one.
        let mk = || -> Vec<Inst> {
            (0..30_000u64)
                .map(|i| Inst {
                    pc: 0x40_0000 + (i % 16) * 4,
                    kind: if i % 2 == 0 {
                        InstKind::Store {
                            addr: (i * 947) % (4 << 20),
                        }
                    } else {
                        InstKind::IntAlu
                    },
                    deps: [0, 0],
                })
                .collect()
        };
        let small = Pipeline::with_lru_l2(CpuConfig::paper_default().store_buffer(1))
            .run(mk().into_iter(), 30_000);
        let big = Pipeline::with_lru_l2(CpuConfig::paper_default().store_buffer(64))
            .run(mk().into_iter(), 30_000);
        assert!(
            small.cycles > big.cycles,
            "1-entry SB {} cycles vs 64-entry {} cycles",
            small.cycles,
            big.cycles
        );
        assert!(small.sb_stall_cycles > big.sb_stall_cycles);
    }

    #[test]
    fn branch_mispredictions_cost_cycles() {
        let mk = |hard: f64| -> Vec<Inst> {
            let spec = workloads::WorkloadSpec {
                pattern: workloads::AccessPattern::single(workloads::BasePattern::LinearScan {
                    region_blocks: 64,
                    stride: 1,
                }),
                mix: MixSpec {
                    mem_ratio: 0.05,
                    branch_ratio: 0.3,
                    hard_branch_frac: hard,
                    ..MixSpec::int_default()
                },
                code: workloads::CodeSpec::kernel(),
                seed: 5,
            };
            spec.generator().take(100_000).collect()
        };
        let easy = pipe().run(mk(0.0).into_iter(), 100_000);
        let hard = pipe().run(mk(1.0).into_iter(), 100_000);
        assert!(hard.branches.miss_rate() > easy.branches.miss_rate() + 0.1);
        assert!(
            hard.cycles > easy.cycles,
            "mispredictions must cost: {} vs {}",
            hard.cycles,
            easy.cycles
        );
    }

    #[test]
    fn icache_footprint_matters() {
        // A code footprint far beyond 16 KB causes I-cache misses and
        // lowers fetch throughput.
        let mk = |code: workloads::CodeSpec| -> Vec<Inst> {
            let spec = workloads::WorkloadSpec {
                pattern: workloads::AccessPattern::single(workloads::BasePattern::LinearScan {
                    region_blocks: 64,
                    stride: 1,
                }),
                mix: MixSpec::int_default(),
                code,
                seed: 6,
            };
            spec.generator().take(100_000).collect()
        };
        let small = pipe().run(mk(workloads::CodeSpec::kernel()).into_iter(), 100_000);
        let large = pipe().run(mk(workloads::CodeSpec::large()).into_iter(), 100_000);
        assert!(large.l1i.misses > small.l1i.misses * 5);
        assert!(large.cycles > small.cycles);
    }

    #[test]
    fn runs_every_primary_benchmark() {
        for b in primary_suite().iter().take(4) {
            let mut p = pipe();
            let s = p.run(b.spec.generator(), 20_000);
            assert_eq!(s.instructions, 20_000, "{}", b.name);
            assert!(
                s.cpi() > 0.1 && s.cpi() < 100.0,
                "{}: cpi={}",
                b.name,
                s.cpi()
            );
        }
    }

    #[test]
    fn deterministic_cycles() {
        let b = &primary_suite()[2];
        let run = || pipe().run(b.spec.generator(), 30_000).cycles;
        assert_eq!(run(), run());
    }

    #[test]
    fn time_ring_semantics() {
        let mut r = TimeRing::new(2);
        assert_eq!(r.oldest(), 0);
        r.push(5);
        r.push(9);
        assert_eq!(r.oldest(), 5);
        r.push(11);
        assert_eq!(r.oldest(), 9);
    }

    #[test]
    fn pool_grants_in_parallel_up_to_capacity() {
        let mut p = Pool::new(2);
        assert_eq!(p.acquire(10, 5), 10);
        assert_eq!(p.acquire(10, 5), 10, "second unit free");
        assert_eq!(p.acquire(10, 5), 15, "third request waits");
    }
}

#[cfg(test)]
mod writeback_buffer_tests {
    use super::*;

    /// A dirty streaming workload: every L2 fill evicts a dirty line, so
    /// writeback-buffer pressure is constant. A 1-entry buffer must cost
    /// cycles against a large one.
    #[test]
    fn tiny_writeback_buffer_costs_cycles() {
        let mk = || -> Vec<Inst> {
            (0..60_000u64)
                .map(|i| Inst {
                    pc: 0x40_0000 + (i % 16) * 4,
                    kind: if i % 2 == 0 {
                        InstKind::Store {
                            addr: (i / 2) * 64 % (4 << 20),
                        }
                    } else {
                        InstKind::Load {
                            addr: (8 << 20) + (i / 2) * 64 % (4 << 20),
                        }
                    },
                    deps: [0, 0],
                })
                .collect()
        };
        let tiny = Pipeline::with_lru_l2(CpuConfig::paper_default().writeback_buffer(1))
            .run(mk().into_iter(), 60_000);
        let big = Pipeline::with_lru_l2(CpuConfig::paper_default().writeback_buffer(64))
            .run(mk().into_iter(), 60_000);
        assert!(
            tiny.cycles >= big.cycles,
            "1-entry WB buffer {} must not beat 64-entry {}",
            tiny.cycles,
            big.cycles
        );
    }

    #[test]
    #[should_panic(expected = "writeback buffer")]
    fn zero_writeback_buffer_rejected() {
        let _ = CpuConfig::paper_default().writeback_buffer(0);
    }
}

#[cfg(test)]
mod write_combining_tests {
    use super::*;

    /// Stores walking a line one word at a time: write combining should
    /// merge the same-line stores and sharply reduce drain pressure.
    #[test]
    fn write_combining_merges_same_line_stores() {
        let mk = || -> Vec<Inst> {
            (0..40_000u64)
                .map(|i| Inst {
                    pc: 0x40_0000 + (i % 16) * 4,
                    kind: InstKind::Store {
                        // 8 consecutive words per line, lines from a
                        // large region so drains are expensive.
                        addr: (i / 8) * 64 + (i % 8) * 8 + ((i / 8) * 977 % (4 << 20)),
                    },
                    deps: [0, 0],
                })
                .collect()
        };
        let base = Pipeline::with_lru_l2(CpuConfig::paper_default()).run(mk().into_iter(), 40_000);
        let wc = Pipeline::with_lru_l2(CpuConfig::paper_default().write_combining(true))
            .run(mk().into_iter(), 40_000);
        assert_eq!(base.wc_merged_stores, 0);
        assert!(
            wc.wc_merged_stores > 30_000,
            "merged {}",
            wc.wc_merged_stores
        );
        assert!(
            wc.cycles < base.cycles,
            "write combining must relieve the store buffer ({} vs {})",
            wc.cycles,
            base.cycles
        );
    }

    /// With combining disabled the two configurations are identical.
    #[test]
    fn combining_flag_defaults_off_and_is_pure() {
        let b = workloads::primary_suite().remove(1);
        let s1 = Pipeline::with_lru_l2(CpuConfig::paper_default()).run(b.spec.generator(), 30_000);
        let s2 = Pipeline::with_lru_l2(CpuConfig::paper_default().write_combining(false))
            .run(b.spec.generator(), 30_000);
        assert_eq!(s1, s2);
    }
}
