//! Hybrid branch predictor (Table 1: 16KB gshare / 16KB bimodal / 16KB
//! meta chooser, 4K-entry 4-way BTB).

use serde::{Deserialize, Serialize};

/// Two-bit saturating counter.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct Ctr2(u8);

impl Ctr2 {
    fn predict(self) -> bool {
        self.0 >= 2
    }
    fn update(&mut self, taken: bool) {
        if taken {
            self.0 = (self.0 + 1).min(3);
        } else {
            self.0 = self.0.saturating_sub(1);
        }
    }
}

/// Aggregate prediction statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct BranchStats {
    /// Conditional branches predicted.
    pub predictions: u64,
    /// Direction mispredictions.
    pub mispredictions: u64,
    /// Taken branches whose target missed in the BTB.
    pub btb_misses: u64,
}

impl BranchStats {
    /// Direction misprediction rate in `[0, 1]`.
    pub fn miss_rate(&self) -> f64 {
        if self.predictions == 0 {
            0.0
        } else {
            self.mispredictions as f64 / self.predictions as f64
        }
    }
}

/// The paper's hybrid predictor: a meta (chooser) table selects per branch
/// between a gshare and a bimodal component; a 4-way BTB provides targets
/// for taken branches.
///
/// ```
/// use cpu_model::BranchPredictor;
///
/// let mut bp = BranchPredictor::paper_default();
/// // A loop branch (always taken) becomes perfectly predicted.
/// for _ in 0..64 {
///     bp.predict_and_update(0x400_000, true, 0x400_100);
/// }
/// let stats = bp.stats();
/// assert!(stats.miss_rate() < 0.1);
/// ```
#[derive(Debug, Clone)]
pub struct BranchPredictor {
    gshare: Vec<Ctr2>,
    bimodal: Vec<Ctr2>,
    meta: Vec<Ctr2>,
    history: u64,
    index_mask: u64,
    /// BTB: `sets x ways` of tags (block-granular PC tags) and targets.
    btb_tags: Vec<u64>,
    btb_lru: Vec<u8>,
    btb_sets: usize,
    btb_ways: usize,
    stats: BranchStats,
}

impl BranchPredictor {
    /// Table 1 sizing: 2^13 two-bit entries per 16 KB table (2 KB of state
    /// each in a real implementation; the paper's "16KB" labels the
    /// structure budget), 4K-entry 4-way BTB.
    pub fn paper_default() -> Self {
        Self::new(13, 4096, 4)
    }

    /// Custom sizing: `log2_entries` per direction table, and a BTB of
    /// `btb_entries` total entries with `btb_ways` ways.
    pub fn new(log2_entries: u32, btb_entries: usize, btb_ways: usize) -> Self {
        assert!((4..=24).contains(&log2_entries));
        assert!(btb_ways >= 1 && btb_entries.is_multiple_of(btb_ways));
        let n = 1usize << log2_entries;
        BranchPredictor {
            gshare: vec![Ctr2::default(); n],
            bimodal: vec![Ctr2::default(); n],
            meta: vec![Ctr2(2); n], // slight initial preference for gshare
            history: 0,
            index_mask: (n - 1) as u64,
            btb_tags: vec![u64::MAX; btb_entries],
            btb_lru: vec![0; btb_entries],
            btb_sets: btb_entries / btb_ways,
            btb_ways,
            stats: BranchStats::default(),
        }
    }

    /// Aggregate statistics.
    pub fn stats(&self) -> BranchStats {
        self.stats
    }

    /// Makes a prediction for the conditional branch at `pc`, updates all
    /// tables with the actual outcome, and reports
    /// `(direction_correct, btb_hit)`.
    ///
    /// `btb_hit` is only meaningful for taken branches — a taken branch
    /// with a BTB miss costs a fetch bubble even when the direction was
    /// predicted correctly.
    pub fn predict_and_update(&mut self, pc: u64, taken: bool, target: u64) -> (bool, bool) {
        let pc_idx = ((pc >> 2) & self.index_mask) as usize;
        let gs_idx = (((pc >> 2) ^ self.history) & self.index_mask) as usize;

        let g = self.gshare[gs_idx].predict();
        let b = self.bimodal[pc_idx].predict();
        let use_gshare = self.meta[pc_idx].predict();
        let prediction = if use_gshare { g } else { b };

        self.stats.predictions += 1;
        let correct = prediction == taken;
        if !correct {
            self.stats.mispredictions += 1;
        }

        // Train the chooser only when the components disagree.
        if g != b {
            self.meta[pc_idx].update(g == taken);
        }
        self.gshare[gs_idx].update(taken);
        self.bimodal[pc_idx].update(taken);
        self.history = ((self.history << 1) | u64::from(taken)) & self.index_mask;

        let btb_hit = if taken {
            let hit = self.btb_access(pc, target);
            if !hit {
                self.stats.btb_misses += 1;
            }
            hit
        } else {
            true
        };
        (correct, btb_hit)
    }

    /// Looks up and updates the BTB; returns whether `pc` hit.
    fn btb_access(&mut self, pc: u64, _target: u64) -> bool {
        let set = ((pc >> 2) as usize) % self.btb_sets;
        let base = set * self.btb_ways;
        let ways = &mut self.btb_tags[base..base + self.btb_ways];
        if let Some(w) = ways.iter().position(|&t| t == pc) {
            self.btb_lru[base + w] = 0;
            for (i, l) in self.btb_lru[base..base + self.btb_ways].iter_mut().enumerate() {
                if i != w {
                    *l = l.saturating_add(1);
                }
            }
            return true;
        }
        // Miss: install over the LRU way.
        let victim = (0..self.btb_ways)
            .max_by_key(|&w| self.btb_lru[base + w])
            .unwrap();
        self.btb_tags[base + victim] = pc;
        self.btb_lru[base + victim] = 0;
        for (i, l) in self.btb_lru[base..base + self.btb_ways].iter_mut().enumerate() {
            if i != victim {
                *l = l.saturating_add(1);
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learns_biased_branches() {
        let mut bp = BranchPredictor::paper_default();
        for _ in 0..1000 {
            bp.predict_and_update(0x1000, true, 0x2000);
        }
        // After warm-up, essentially perfect.
        assert!(bp.stats().miss_rate() < 0.02);
    }

    #[test]
    fn gshare_learns_alternating_pattern() {
        let mut bp = BranchPredictor::paper_default();
        let mut wrong_late = 0;
        for i in 0..2000u64 {
            let taken = i % 2 == 0;
            let (correct, _) = bp.predict_and_update(0x3000, taken, 0x4000);
            if i >= 1000 && !correct {
                wrong_late += 1;
            }
        }
        // Bimodal alone would be ~50% on alternation; history catches it.
        assert!(wrong_late < 100, "late mispredictions: {wrong_late}");
    }

    #[test]
    fn random_branches_are_hard() {
        let mut bp = BranchPredictor::paper_default();
        // Deterministic pseudo-random outcomes.
        let mut x = 1234_5678u64;
        let mut wrong = 0;
        for _ in 0..4000 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let (c, _) = bp.predict_and_update(0x5000, x.is_multiple_of(2), 0x6000);
            if !c {
                wrong += 1;
            }
        }
        let rate = wrong as f64 / 4000.0;
        assert!(rate > 0.3, "random branches predicted suspiciously well ({rate})");
    }

    #[test]
    fn btb_hits_after_first_encounter() {
        let mut bp = BranchPredictor::paper_default();
        let (_, hit1) = bp.predict_and_update(0x7000, true, 0x8000);
        let (_, hit2) = bp.predict_and_update(0x7000, true, 0x8000);
        assert!(!hit1);
        assert!(hit2);
        assert_eq!(bp.stats().btb_misses, 1);
    }

    #[test]
    fn not_taken_branches_skip_btb() {
        let mut bp = BranchPredictor::paper_default();
        let (_, hit) = bp.predict_and_update(0x9000, false, 0xa000);
        assert!(hit, "not-taken branches never pay a BTB penalty");
        assert_eq!(bp.stats().btb_misses, 0);
    }

    #[test]
    fn btb_capacity_evicts() {
        let mut bp = BranchPredictor::new(13, 8, 2); // tiny BTB: 4 sets x 2
        // Fill one set with 3 distinct branches mapping to the same set.
        let pcs = [0x0u64, 0x40, 0x80]; // (pc>>2) % 4 == 0 for all
        for &pc in &pcs {
            bp.predict_and_update(pc * 4, true, 0x1);
        }
        // First one was evicted by the third.
        let (_, hit) = bp.predict_and_update(pcs[0] * 4, true, 0x1);
        assert!(!hit);
    }

    #[test]
    fn stats_rate_handles_empty() {
        assert_eq!(BranchStats::default().miss_rate(), 0.0);
    }
}
