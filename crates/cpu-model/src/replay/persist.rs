//! Crash-safe persistence for captured [`L2Trace`]s: the **ACRS** file
//! format plus the [`ReplayIo`] abstraction the on-disk replay store is
//! driven through (and fault-tested through — see [`FaultyIo`]).
//!
//! # Format (`.acrs`, version 1, little-endian)
//!
//! ```text
//! "ACRS" u8 version
//! frame(meta)            — 16 × u64: fingerprint, FunctionalStats (6),
//!                          total_ticks, sched_window, and the
//!                          (len, final-value) pairs of every sequence
//! frame(addrs bytes)     — zigzag-varint address deltas
//! frame(insts bytes)     — varint instruction-index deltas
//! frame(writebacks bytes)— packed flag bits
//! frame(sched_ticks)     — timeline record-point ticks
//! frame(sched_insts)     — timeline record-point instruction indices
//! u64 body_len | u32 crc32(body_len) | "SRCA"   — footer, written last
//! ```
//!
//! where `frame(x)` is `workloads::packed`'s checksummed framing
//! (`u64 length ‖ u32 crc32 ‖ payload`). Every failure mode maps to a
//! detector:
//!
//! * **truncation / torn write** — the footer is the last thing written;
//!   a cut file either loses the `SRCA` terminator or the stamped
//!   `body_len` disagrees with the actual size. Cuts inside a section
//!   are additionally caught by that frame's declared length.
//! * **bit flip** — per-section CRC-32 (and the footer's own CRC over
//!   its length stamp). A checksum-passing but internally inconsistent
//!   section (impossible by accident, conceivable by construction) is
//!   still rejected by `DeltaSeq::from_parts`'s decode validation.
//! * **version / config skew** — the leading version byte plus a caller
//!   supplied `fingerprint` stored in the meta section: captures made by
//!   an incompatible writer (different format revision, different
//!   timeline window, different key hash) never replay.
//!
//! Writes go through [`ReplayIo::write_atomic`] — write a temp file in
//! the same directory, `fsync` it, rename it over the destination, then
//! `fsync` the directory — so a reader can never observe a half-written
//! entry under POSIX rename semantics, and a crash leaves at worst a
//! stale `.tmp.*` file that garbage collection sweeps.
//!
//! The format is designed to be mmap-friendly (self-describing sections,
//! stable little-endian layout); the workspace-wide
//! `#![forbid(unsafe_code)]` rules out an actual `mmap(2)` binding, so
//! [`load_trace`] reads the file once into memory and decodes with one
//! copy per section.

use super::L2Trace;
use crate::hierarchy::FunctionalStats;
use std::fmt;
use std::io::{self, Write as _};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use workloads::packed::{crc32, read_frame, write_frame, BitSeq, DeltaSeq, FrameError};

/// ACRS format revision. Bump on any layout change; readers reject
/// everything but their own version (persisted captures are a cache —
/// regeneration is always possible and always preferred over migration).
pub const FORMAT_VERSION: u8 = 1;

/// Leading magic of an ACRS file.
pub const MAGIC: &[u8; 4] = b"ACRS";

/// Trailing magic of the footer (the leading magic reversed, so a file
/// glued together from two valid prefixes still fails the footer check).
pub const FOOTER_MAGIC: &[u8; 4] = b"SRCA";

/// Footer size: `u64` body length + `u32` CRC of it + trailing magic.
const FOOTER_BYTES: usize = 8 + 4 + 4;

/// Why a persisted capture could not be written or read back. Every
/// non-I/O variant means the file must be discarded and the capture
/// regenerated; none of them can yield a partially-decoded trace.
#[derive(Debug)]
#[non_exhaustive]
pub enum PersistError {
    /// Underlying I/O failure (open, read, write, fsync, rename).
    Io(io::Error),
    /// The file does not start with the ACRS magic.
    BadMagic,
    /// The file is ACRS but from an incompatible format revision.
    BadVersion(u8),
    /// The file ends before or inside the footer, or the footer's
    /// stamped length disagrees with the actual file size (torn write /
    /// truncation).
    Truncated(&'static str),
    /// A section failed its checksum or internal validation.
    Corrupt(String),
    /// The capture was made under an incompatible configuration (format
    /// revision, timeline window or key hash differ).
    FingerprintMismatch {
        /// Fingerprint the reader expected.
        expected: u64,
        /// Fingerprint recorded in the file.
        found: u64,
    },
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "replay store I/O error: {e}"),
            PersistError::BadMagic => write!(f, "not an ACRS capture (bad magic)"),
            PersistError::BadVersion(v) => write!(
                f,
                "ACRS version {v} is not readable by this build (wants {FORMAT_VERSION})"
            ),
            PersistError::Truncated(what) => {
                write!(
                    f,
                    "ACRS capture truncated ({what}) — torn or unfinished write"
                )
            }
            PersistError::Corrupt(what) => write!(f, "ACRS capture corrupt: {what}"),
            PersistError::FingerprintMismatch { expected, found } => write!(
                f,
                "ACRS capture fingerprint {found:#018x} does not match the expected \
                 {expected:#018x} (stale format or configuration skew)"
            ),
        }
    }
}

impl std::error::Error for PersistError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PersistError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for PersistError {
    fn from(e: io::Error) -> Self {
        PersistError::Io(e)
    }
}

impl From<FrameError> for PersistError {
    fn from(e: FrameError) -> Self {
        match e {
            FrameError::TruncatedHeader | FrameError::TruncatedPayload { .. } => {
                PersistError::Truncated("section frame cut short")
            }
            FrameError::Checksum { .. } => PersistError::Corrupt(e.to_string()),
        }
    }
}

/// Fingerprint of everything (beyond the key) that shapes a capture:
/// the ACRS format revision and the timeline window the schedule was
/// captured for. Two processes whose fingerprints differ must not share
/// entries — their captures would replay with diverging timelines.
pub fn config_fingerprint() -> u64 {
    fnv(&[u64::from(FORMAT_VERSION), super::capture_window()])
}

/// FNV-1a over a word sequence (same mixing the replay-cache key uses).
pub fn fnv(words: &[u64]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &w in words {
        h ^= w;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// Serialises `trace` into a self-validating ACRS document.
pub fn encode_trace(trace: &L2Trace, fingerprint: u64) -> Vec<u8> {
    let mut out = Vec::with_capacity(trace.approx_bytes() + 256);
    out.extend_from_slice(MAGIC);
    out.push(FORMAT_VERSION);

    let front = trace.front;
    let meta: [u64; 16] = [
        fingerprint,
        front.instructions,
        front.data_accesses,
        front.inst_fetches,
        front.l1d_misses,
        front.l1i_misses,
        front.l2_misses,
        trace.total_ticks,
        trace.sched_window,
        trace.addrs.len() as u64,
        trace.addrs.final_value(),
        trace.insts.len() as u64,
        trace.insts.final_value(),
        trace.writebacks.len() as u64,
        trace.sched_ticks.len() as u64,
        trace.sched_ticks.final_value(),
    ];
    let mut meta_bytes = Vec::with_capacity(meta.len() * 8 + 16);
    for w in meta {
        meta_bytes.extend_from_slice(&w.to_le_bytes());
    }
    // sched_insts rides after the fixed block (kept separate so the
    // fixed block stays 16 words; both are inside the same frame).
    meta_bytes.extend_from_slice(&(trace.sched_insts.len() as u64).to_le_bytes());
    meta_bytes.extend_from_slice(&trace.sched_insts.final_value().to_le_bytes());
    write_frame(&mut out, &meta_bytes);

    write_frame(&mut out, trace.addrs.as_bytes());
    write_frame(&mut out, trace.insts.as_bytes());
    write_frame(&mut out, trace.writebacks.as_bytes());
    write_frame(&mut out, trace.sched_ticks.as_bytes());
    write_frame(&mut out, trace.sched_insts.as_bytes());

    let body_len = out.len() as u64;
    out.extend_from_slice(&body_len.to_le_bytes());
    out.extend_from_slice(&crc32(&body_len.to_le_bytes()).to_le_bytes());
    out.extend_from_slice(FOOTER_MAGIC);
    out
}

/// Reads one little-endian `u64` from `bytes` at word index `i`.
fn word(bytes: &[u8], i: usize) -> u64 {
    u64::from_le_bytes(
        bytes[i * 8..i * 8 + 8]
            .try_into()
            .expect("validated length"),
    )
}

/// Decodes and fully validates an ACRS document. `expected_fingerprint`
/// must match the recorded one — pass the same value that was given to
/// [`encode_trace`].
pub fn decode_trace(bytes: &[u8], expected_fingerprint: u64) -> Result<L2Trace, PersistError> {
    // Footer first: it is written last, so its absence (or a length
    // disagreement) proves the write never completed.
    if bytes.len() < 5 + FOOTER_BYTES {
        return Err(PersistError::Truncated("shorter than header + footer"));
    }
    let footer = &bytes[bytes.len() - FOOTER_BYTES..];
    if &footer[12..16] != FOOTER_MAGIC {
        return Err(PersistError::Truncated("footer magic missing"));
    }
    let stamped = u64::from_le_bytes(footer[..8].try_into().expect("16-byte footer"));
    let footer_crc = u32::from_le_bytes(footer[8..12].try_into().expect("16-byte footer"));
    if crc32(&footer[..8]) != footer_crc {
        return Err(PersistError::Corrupt(
            "footer length stamp fails its CRC".into(),
        ));
    }
    if stamped != (bytes.len() - FOOTER_BYTES) as u64 {
        return Err(PersistError::Truncated(
            "footer length stamp disagrees with file size",
        ));
    }
    if &bytes[..4] != MAGIC {
        return Err(PersistError::BadMagic);
    }
    if bytes[4] != FORMAT_VERSION {
        return Err(PersistError::BadVersion(bytes[4]));
    }

    let body = &bytes[..bytes.len() - FOOTER_BYTES];
    let mut pos = 5usize;
    let meta = read_frame(body, &mut pos)?;
    if meta.len() != 18 * 8 {
        return Err(PersistError::Corrupt(format!(
            "meta section is {} bytes, expected {}",
            meta.len(),
            18 * 8
        )));
    }
    let fingerprint = word(meta, 0);
    if fingerprint != expected_fingerprint {
        return Err(PersistError::FingerprintMismatch {
            expected: expected_fingerprint,
            found: fingerprint,
        });
    }
    let front = FunctionalStats {
        instructions: word(meta, 1),
        data_accesses: word(meta, 2),
        inst_fetches: word(meta, 3),
        l1d_misses: word(meta, 4),
        l1i_misses: word(meta, 5),
        l2_misses: word(meta, 6),
    };
    let total_ticks = word(meta, 7);
    let sched_window = word(meta, 8);

    let section = |name: &'static str,
                   pos: &mut usize,
                   len: u64,
                   finalv: u64|
     -> Result<DeltaSeq, PersistError> {
        let payload = read_frame(body, pos)?;
        let len = usize::try_from(len)
            .map_err(|_| PersistError::Corrupt(format!("{name}: absurd element count {len}")))?;
        DeltaSeq::from_parts(payload.to_vec(), len, finalv).ok_or_else(|| {
            PersistError::Corrupt(format!(
                "{name}: checksummed bytes do not decode to the declared {len} elements"
            ))
        })
    };
    let addrs = section("addrs", &mut pos, word(meta, 9), word(meta, 10))?;
    let insts = section("insts", &mut pos, word(meta, 11), word(meta, 12))?;
    let wb_payload = read_frame(body, &mut pos)?;
    let wb_len = usize::try_from(word(meta, 13))
        .map_err(|_| PersistError::Corrupt("writebacks: absurd element count".into()))?;
    let writebacks = BitSeq::from_parts(wb_payload.to_vec(), wb_len).ok_or_else(|| {
        PersistError::Corrupt(format!(
            "writebacks: checksummed bytes do not match the declared {wb_len} flags"
        ))
    })?;
    let sched_ticks = section("sched_ticks", &mut pos, word(meta, 14), word(meta, 15))?;
    let sched_insts = section("sched_insts", &mut pos, word(meta, 16), word(meta, 17))?;
    if pos != body.len() {
        return Err(PersistError::Corrupt(format!(
            "{} unaccounted bytes between the last section and the footer",
            body.len() - pos
        )));
    }
    // Cross-section consistency: the three event streams must agree on
    // the event count, and the schedule's two streams on theirs.
    if addrs.len() != insts.len() || addrs.len() != writebacks.len() {
        return Err(PersistError::Corrupt(format!(
            "event sections disagree on length ({} addrs, {} insts, {} flags)",
            addrs.len(),
            insts.len(),
            writebacks.len()
        )));
    }
    if sched_ticks.len() != sched_insts.len() {
        return Err(PersistError::Corrupt(format!(
            "schedule sections disagree on length ({} ticks, {} insts)",
            sched_ticks.len(),
            sched_insts.len()
        )));
    }
    Ok(L2Trace {
        front,
        addrs,
        insts,
        writebacks,
        sched_ticks,
        sched_insts,
        sched_window,
        total_ticks,
    })
}

/// Encodes `trace` and writes it crash-safely to `path` via `io`.
/// Returns the encoded size in bytes.
pub fn save_trace(
    io: &dyn ReplayIo,
    path: &Path,
    trace: &L2Trace,
    fingerprint: u64,
) -> Result<usize, PersistError> {
    let bytes = encode_trace(trace, fingerprint);
    io.write_atomic(path, &bytes)?;
    Ok(bytes.len())
}

/// Reads `path` via `io` and decodes it with full validation.
pub fn load_trace(
    io: &dyn ReplayIo,
    path: &Path,
    expected_fingerprint: u64,
) -> Result<L2Trace, PersistError> {
    let bytes = io.read(path)?;
    decode_trace(&bytes, expected_fingerprint)
}

/// The file operations the persistent replay store performs, abstracted
/// so deterministic fault injection can slot in underneath it (the store
/// never touches `std::fs` for entry data directly).
pub trait ReplayIo: fmt::Debug + Send + Sync {
    /// Reads the whole file at `path`.
    fn read(&self, path: &Path) -> io::Result<Vec<u8>>;

    /// Writes `bytes` to `path` such that concurrent readers observe
    /// either the old content or the new content, never a mix, and a
    /// crash cannot leave a partial file at `path`.
    fn write_atomic(&self, path: &Path, bytes: &[u8]) -> io::Result<()>;

    /// Removes the file at `path` (missing files are not an error).
    fn remove(&self, path: &Path) -> io::Result<()>;
}

/// The real filesystem: write-temp → fsync → rename → fsync-directory.
#[derive(Debug, Default, Clone, Copy)]
pub struct StdIo;

impl ReplayIo for StdIo {
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        std::fs::read(path)
    }

    fn write_atomic(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        let dir = path.parent().filter(|p| !p.as_os_str().is_empty());
        let mut tmp = path.as_os_str().to_owned();
        tmp.push(format!(".tmp.{}", std::process::id()));
        let tmp = std::path::PathBuf::from(tmp);
        let result = (|| {
            let mut f = std::fs::File::create(&tmp)?;
            f.write_all(bytes)?;
            // Data must be durable before the rename publishes it: a
            // rename that survives a crash but points at unwritten data
            // is exactly the torn-write failure the format detects —
            // better never to create it.
            f.sync_all()?;
            drop(f);
            std::fs::rename(&tmp, path)?;
            if let Some(dir) = dir {
                // Make the rename itself durable. Directories cannot be
                // fsync'd on every platform; failure to sync is not
                // failure to write (the entry is valid, just not yet
                // crash-durable), so errors here are ignored.
                if let Ok(d) = std::fs::File::open(dir) {
                    let _ = d.sync_all();
                }
            }
            Ok(())
        })();
        if result.is_err() {
            let _ = std::fs::remove_file(&tmp);
        }
        result
    }

    fn remove(&self, path: &Path) -> io::Result<()> {
        match std::fs::remove_file(path) {
            Err(e) if e.kind() != io::ErrorKind::NotFound => Err(e),
            _ => Ok(()),
        }
    }
}

/// A deterministic fault plan for [`FaultyIo`]. Each armed fault fires
/// on the **first matching operation** and then disarms — modelling one
/// crash/corruption event whose recovery path must then succeed.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct IoFaultPlan {
    /// Torn write: only the first `n` bytes reach the destination (the
    /// write is reported successful — the classic non-atomic-writer
    /// crash a later reader must detect).
    pub torn_write: Option<u64>,
    /// Fail this many `write_atomic` calls with an `ENOSPC`-style error
    /// (nothing reaches the destination).
    pub enospc_writes: u32,
    /// Fail this many `read` calls with an `EIO`-style error.
    pub eio_reads: u32,
    /// Short read: one `read` returns only the first `n` bytes.
    pub short_read: Option<u64>,
    /// Bit flip: one `read` XORs `mask` into the byte at `offset`
    /// (clamped to the last byte when out of range).
    pub bit_flip: Option<(u64, u8)>,
}

impl IoFaultPlan {
    /// A plan injecting no faults.
    pub fn none() -> IoFaultPlan {
        IoFaultPlan::default()
    }

    /// Derives one pseudo-random fault from `seed` (splitmix64), so a
    /// property test can sweep the whole fault space from one integer.
    pub fn from_seed(seed: u64) -> IoFaultPlan {
        let mut x = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut next = || {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let offset = next() % 4096;
        match next() % 5 {
            0 => IoFaultPlan {
                torn_write: Some(offset),
                ..IoFaultPlan::default()
            },
            1 => IoFaultPlan {
                enospc_writes: 1,
                ..IoFaultPlan::default()
            },
            2 => IoFaultPlan {
                eio_reads: 1,
                ..IoFaultPlan::default()
            },
            3 => IoFaultPlan {
                short_read: Some(offset),
                ..IoFaultPlan::default()
            },
            _ => IoFaultPlan {
                bit_flip: Some((offset, 1 << (next() % 8))),
                ..IoFaultPlan::default()
            },
        }
    }

    /// Parses a fault spec string (the `AC_REPLAY_FAULT` syntax):
    /// comma-separated `torn_write=N`, `enospc[=N]`, `eio[=N]`,
    /// `short_read=N`, `bit_flip=OFFSET:MASK`, `seed=N` (exclusive with
    /// the rest). Numbers may be decimal or `0x` hex.
    pub fn parse(spec: &str) -> Result<IoFaultPlan, String> {
        fn num(s: &str) -> Result<u64, String> {
            let s = s.trim();
            let parsed = match s.strip_prefix("0x") {
                Some(hex) => u64::from_str_radix(hex, 16),
                None => s.parse(),
            };
            parsed.map_err(|_| format!("not a number: {s:?}"))
        }
        let mut plan = IoFaultPlan::default();
        for part in spec.split(',').map(str::trim).filter(|p| !p.is_empty()) {
            let (key, value) = match part.split_once('=') {
                Some((k, v)) => (k.trim(), Some(v)),
                None => (part, None),
            };
            match (key, value) {
                ("seed", Some(v)) => return Ok(IoFaultPlan::from_seed(num(v)?)),
                ("torn_write", Some(v)) => plan.torn_write = Some(num(v)?),
                ("enospc", v) => {
                    plan.enospc_writes = v.map_or(Ok(1), num)? as u32;
                }
                ("eio", v) => {
                    plan.eio_reads = v.map_or(Ok(1), num)? as u32;
                }
                ("short_read", Some(v)) => plan.short_read = Some(num(v)?),
                ("bit_flip", Some(v)) => {
                    let (off, mask) = v
                        .split_once(':')
                        .ok_or_else(|| format!("bit_flip wants OFFSET:MASK, got {v:?}"))?;
                    let mask = num(mask)?;
                    if mask == 0 || mask > 0xFF {
                        return Err(format!("bit_flip mask {mask:#x} is not a byte mask"));
                    }
                    plan.bit_flip = Some((num(off)?, mask as u8));
                }
                _ => return Err(format!("unknown fault clause {part:?}")),
            }
        }
        Ok(plan)
    }
}

/// A [`ReplayIo`] that injects the faults of an [`IoFaultPlan`] over an
/// inner implementation (the real filesystem by default). Deterministic:
/// the same plan over the same operation sequence produces the same
/// failure, and each armed fault fires exactly once.
#[derive(Debug)]
pub struct FaultyIo {
    inner: Box<dyn ReplayIo>,
    plan: Mutex<IoFaultPlan>,
    injected: AtomicU64,
}

impl FaultyIo {
    /// Faulty wrapper over the real filesystem.
    pub fn new(plan: IoFaultPlan) -> FaultyIo {
        FaultyIo::wrapping(Box::new(StdIo), plan)
    }

    /// Faulty wrapper over any [`ReplayIo`].
    pub fn wrapping(inner: Box<dyn ReplayIo>, plan: IoFaultPlan) -> FaultyIo {
        FaultyIo {
            inner,
            plan: Mutex::new(plan),
            injected: AtomicU64::new(0),
        }
    }

    /// Total faults injected so far (for asserting a fault actually
    /// fired — a chaos test whose fault never triggers proves nothing).
    pub fn injected(&self) -> u64 {
        self.injected.load(Ordering::Relaxed)
    }

    /// Re-arms the plan (tests reuse one instance across scenarios).
    pub fn set_plan(&self, plan: IoFaultPlan) {
        *self.plan.lock().expect("fault plan poisoned") = plan;
    }

    fn fired(&self) {
        self.injected.fetch_add(1, Ordering::Relaxed);
    }
}

impl ReplayIo for FaultyIo {
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        {
            let mut plan = self.plan.lock().expect("fault plan poisoned");
            if plan.eio_reads > 0 {
                plan.eio_reads -= 1;
                drop(plan);
                self.fired();
                return Err(io::Error::other(format!(
                    "injected fault: EIO reading {}",
                    path.display()
                )));
            }
        }
        let mut data = self.inner.read(path)?;
        let mut plan = self.plan.lock().expect("fault plan poisoned");
        if let Some(n) = plan.short_read.take() {
            drop(plan);
            self.fired();
            data.truncate(n as usize);
            return Ok(data);
        }
        if let Some((offset, mask)) = plan.bit_flip.take() {
            drop(plan);
            self.fired();
            if let Some(last) = data.len().checked_sub(1) {
                let at = (offset as usize).min(last);
                data[at] ^= mask;
            }
            return Ok(data);
        }
        Ok(data)
    }

    fn write_atomic(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        let mut plan = self.plan.lock().expect("fault plan poisoned");
        if plan.enospc_writes > 0 {
            plan.enospc_writes -= 1;
            drop(plan);
            self.fired();
            return Err(io::Error::other(format!(
                "injected fault: ENOSPC writing {}",
                path.display()
            )));
        }
        if let Some(n) = plan.torn_write.take() {
            drop(plan);
            self.fired();
            // Model a non-atomic writer dying mid-write: a prefix of the
            // data lands at the *final* path and success is reported.
            let cut = (n as usize).min(bytes.len());
            return std::fs::write(path, &bytes[..cut]);
        }
        drop(plan);
        self.inner.write_atomic(path, bytes)
    }

    fn remove(&self, path: &Path) -> io::Result<()> {
        self.inner.remove(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CpuConfig;
    use crate::replay::capture_functional;
    use workloads::{Inst, InstKind};

    fn small_trace() -> L2Trace {
        let cfg = CpuConfig::paper_default();
        let stream = (0..5_000u64).map(|i| {
            Inst::free(
                0x40_0000 + (i % 32) * 4,
                InstKind::Load {
                    addr: (i.wrapping_mul(17) % 800) * 64,
                },
            )
        });
        capture_functional(&cfg, stream, 5_000)
    }

    #[test]
    fn encode_decode_round_trips_bit_identically() {
        let trace = small_trace();
        let fp = config_fingerprint();
        let bytes = encode_trace(&trace, fp);
        let back = decode_trace(&bytes, fp).expect("clean bytes decode");
        // Field-for-field equality, including the packed buffers.
        assert_eq!(back.front, trace.front);
        assert_eq!(back.addrs, trace.addrs);
        assert_eq!(back.insts, trace.insts);
        assert_eq!(back.writebacks, trace.writebacks);
        assert_eq!(back.sched_ticks, trace.sched_ticks);
        assert_eq!(back.sched_insts, trace.sched_insts);
        assert_eq!(back.sched_window, trace.sched_window);
        assert_eq!(back.total_ticks, trace.total_ticks);
    }

    #[test]
    fn empty_trace_round_trips() {
        let trace = L2Trace::default();
        let bytes = encode_trace(&trace, 7);
        let back = decode_trace(&bytes, 7).expect("empty capture persists");
        assert!(back.is_empty());
        assert_eq!(back.front, trace.front);
    }

    #[test]
    fn fingerprint_mismatch_is_rejected() {
        let bytes = encode_trace(&small_trace(), 1);
        match decode_trace(&bytes, 2) {
            Err(PersistError::FingerprintMismatch {
                expected: 2,
                found: 1,
            }) => {}
            other => panic!("wrong outcome: {other:?}"),
        }
    }

    #[test]
    fn version_skew_is_rejected() {
        let mut bytes = encode_trace(&small_trace(), 1);
        bytes[4] = FORMAT_VERSION + 1;
        assert!(matches!(
            decode_trace(&bytes, 1),
            Err(PersistError::BadVersion(_))
        ));
        let mut bad_magic = encode_trace(&small_trace(), 1);
        bad_magic[0] = b'X';
        assert!(matches!(
            decode_trace(&bad_magic, 1),
            Err(PersistError::BadMagic)
        ));
    }

    #[test]
    fn every_truncation_point_is_detected() {
        let bytes = encode_trace(&small_trace(), 9);
        // Any proper prefix must fail loudly — the torn-write guarantee.
        for cut in [0, 4, 5, 17, bytes.len() / 2, bytes.len() - 1] {
            assert!(
                decode_trace(&bytes[..cut], 9).is_err(),
                "prefix of {cut} bytes decoded"
            );
        }
    }

    #[test]
    fn appended_garbage_is_detected() {
        let mut bytes = encode_trace(&small_trace(), 9);
        bytes.extend_from_slice(b"trailing junk");
        assert!(decode_trace(&bytes, 9).is_err());
    }

    #[test]
    fn std_io_write_is_atomic_and_cleans_temp() {
        let dir = std::env::temp_dir().join(format!("acrs_stdio_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("x.acrs");
        let io = StdIo;
        io.write_atomic(&path, b"first").unwrap();
        io.write_atomic(&path, b"second").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"second");
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().contains(".tmp."))
            .collect();
        assert!(leftovers.is_empty(), "temp files leaked: {leftovers:?}");
        io.remove(&path).unwrap();
        io.remove(&path).unwrap(); // second remove: not an error
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn faulty_io_injects_each_fault_once() {
        let dir = std::env::temp_dir().join(format!("acrs_faulty_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("y.acrs");

        // ENOSPC once, then the retry succeeds.
        let io = FaultyIo::new(IoFaultPlan {
            enospc_writes: 1,
            ..IoFaultPlan::default()
        });
        assert!(io.write_atomic(&path, b"payload").is_err());
        io.write_atomic(&path, b"payload").unwrap();
        assert_eq!(io.read(&path).unwrap(), b"payload");

        // Torn write: a prefix lands and is reported as success.
        io.set_plan(IoFaultPlan {
            torn_write: Some(3),
            ..IoFaultPlan::default()
        });
        io.write_atomic(&path, b"0123456789").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"012");
        io.write_atomic(&path, b"0123456789").unwrap(); // disarmed
        assert_eq!(std::fs::read(&path).unwrap(), b"0123456789");

        // EIO then short read then bit flip, each exactly once.
        io.set_plan(IoFaultPlan {
            eio_reads: 1,
            short_read: Some(4),
            bit_flip: Some((1, 0x80)),
            ..IoFaultPlan::default()
        });
        assert!(io.read(&path).is_err());
        assert_eq!(io.read(&path).unwrap(), b"0123");
        let flipped = io.read(&path).unwrap();
        assert_eq!(flipped[1], b'1' ^ 0x80);
        assert_eq!(io.read(&path).unwrap(), b"0123456789");
        assert_eq!(io.injected(), 5);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn fault_plan_parses_and_rejects() {
        assert_eq!(
            IoFaultPlan::parse("torn_write=100").unwrap(),
            IoFaultPlan {
                torn_write: Some(100),
                ..IoFaultPlan::default()
            }
        );
        assert_eq!(
            IoFaultPlan::parse("enospc, eio=2, bit_flip=0x40:0x01").unwrap(),
            IoFaultPlan {
                enospc_writes: 1,
                eio_reads: 2,
                bit_flip: Some((0x40, 0x01)),
                ..IoFaultPlan::default()
            }
        );
        assert_eq!(IoFaultPlan::parse("").unwrap(), IoFaultPlan::none());
        // Seeded plans are deterministic and arm exactly one fault.
        for seed in 0..64u64 {
            let a = IoFaultPlan::from_seed(seed);
            assert_eq!(a, IoFaultPlan::from_seed(seed));
            assert_eq!(a, IoFaultPlan::parse(&format!("seed={seed}")).unwrap());
            let armed = usize::from(a.torn_write.is_some())
                + usize::from(a.enospc_writes > 0)
                + usize::from(a.eio_reads > 0)
                + usize::from(a.short_read.is_some())
                + usize::from(a.bit_flip.is_some());
            assert_eq!(armed, 1, "seed {seed} armed {armed} faults");
        }
        assert!(IoFaultPlan::parse("frobnicate=1").is_err());
        assert!(IoFaultPlan::parse("bit_flip=4").is_err());
        assert!(IoFaultPlan::parse("bit_flip=4:0").is_err());
        assert!(IoFaultPlan::parse("torn_write=xyz").is_err());
    }
}
