//! Hardware prefetching with adaptive hybrid selection — the paper's
//! second piece of future work:
//!
//! > "Our adaptation technique could possibly be modified to improve
//! > hybrid hardware prefetchers as well (hit/miss is replaced with
//! > useful/not-useful prefetch)."
//!
//! Two simple L2 prefetchers are provided — [`NextLine`] (sequential) and
//! [`Stride`] (delta-matching) — plus [`AdaptivePrefetcher`], which runs
//! both *virtually* and issues only the recently-more-useful one's
//! requests, exactly mirroring the cache scheme: each component keeps a
//! shadow window of the blocks it *would have* prefetched, a demand miss
//! that appears in a window counts as a would-have-been-useful prefetch
//! for that component, and a saturating selector picks the winner.

use cache_sim::BlockAddr;
use serde::{Deserialize, Serialize};

/// Which prefetcher the hierarchy should use (plugged into
/// [`crate::CpuConfig`]-driven experiments via [`PrefetchKind::build`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PrefetchKind {
    /// No prefetching (the paper's base configuration).
    None,
    /// Sequential next-line prefetch on every demand miss.
    NextLine,
    /// Stride-matching prefetch (two equal consecutive deltas arm it).
    Stride,
    /// Adaptive hybrid of next-line and stride.
    Adaptive,
}

impl PrefetchKind {
    /// Instantiates the engine.
    pub fn build(self) -> Option<PrefetchEngine> {
        match self {
            PrefetchKind::None => None,
            PrefetchKind::NextLine => Some(PrefetchEngine::NextLine(NextLine)),
            PrefetchKind::Stride => Some(PrefetchEngine::Stride(Stride::default())),
            PrefetchKind::Adaptive => Some(PrefetchEngine::Adaptive(AdaptivePrefetcher::new())),
        }
    }
}

/// A prefetch component: observes the demand-miss block stream and
/// proposes blocks to fetch.
pub trait Prefetcher {
    /// Short display name.
    fn name(&self) -> &'static str;
    /// Observes a demand miss to `block` and proposes a prefetch.
    fn on_miss(&mut self, block: BlockAddr) -> Option<BlockAddr>;
}

/// Prefetch the sequentially next block on every miss.
#[derive(Debug, Clone, Copy, Default)]
pub struct NextLine;

impl Prefetcher for NextLine {
    fn name(&self) -> &'static str {
        "next-line"
    }
    fn on_miss(&mut self, block: BlockAddr) -> Option<BlockAddr> {
        Some(BlockAddr::new(block.raw().wrapping_add(1)))
    }
}

/// Classic stream/stride detector: after two identical consecutive block
/// deltas, prefetch `block + delta`.
#[derive(Debug, Clone, Copy, Default)]
pub struct Stride {
    last: Option<u64>,
    delta: Option<i64>,
    armed: bool,
}

impl Prefetcher for Stride {
    fn name(&self) -> &'static str {
        "stride"
    }
    fn on_miss(&mut self, block: BlockAddr) -> Option<BlockAddr> {
        let b = block.raw();
        if let Some(last) = self.last {
            let d = b as i64 - last as i64;
            if d != 0 {
                self.armed = self.delta == Some(d);
                self.delta = Some(d);
            }
        }
        self.last = Some(b);
        if self.armed {
            self.delta
                .map(|d| BlockAddr::new(b.wrapping_add_signed(d)))
        } else {
            None
        }
    }
}

/// Window of recent virtual proposals for usefulness scoring.
#[derive(Debug, Clone)]
struct ProposalWindow {
    ring: Vec<u64>,
    head: usize,
}

impl ProposalWindow {
    fn new(len: usize) -> Self {
        ProposalWindow {
            ring: vec![u64::MAX; len],
            head: 0,
        }
    }
    fn push(&mut self, block: BlockAddr) {
        self.ring[self.head] = block.raw();
        self.head = (self.head + 1) % self.ring.len();
    }
    fn contains(&self, block: BlockAddr) -> bool {
        self.ring.contains(&block.raw())
    }
}

/// The adaptive hybrid: both components observe every miss; the selector
/// (a saturating counter stepped on exclusive would-have-been-useful
/// events) decides whose proposal is actually issued.
#[derive(Debug, Clone)]
pub struct AdaptivePrefetcher {
    next_line: NextLine,
    stride: Stride,
    window_a: ProposalWindow,
    window_b: ProposalWindow,
    /// Above midpoint: stride is winning.
    selector: u32,
    max: u32,
    issued_a: u64,
    issued_b: u64,
}

impl Default for AdaptivePrefetcher {
    fn default() -> Self {
        Self::new()
    }
}

impl AdaptivePrefetcher {
    /// Default: 32-entry usefulness windows, 6-bit selector.
    pub fn new() -> Self {
        AdaptivePrefetcher {
            next_line: NextLine,
            stride: Stride::default(),
            window_a: ProposalWindow::new(32),
            window_b: ProposalWindow::new(32),
            selector: 31,
            max: 63,
            issued_a: 0,
            issued_b: 0,
        }
    }

    /// `(next-line issued, stride issued)` counts.
    pub fn issue_counts(&self) -> (u64, u64) {
        (self.issued_a, self.issued_b)
    }

    /// Whether the stride component currently leads.
    pub fn stride_selected(&self) -> bool {
        self.selector > self.max / 2
    }
}

impl Prefetcher for AdaptivePrefetcher {
    fn name(&self) -> &'static str {
        "adaptive"
    }

    fn on_miss(&mut self, block: BlockAddr) -> Option<BlockAddr> {
        // Usefulness scoring: would either component have prefetched this
        // missing block recently? (The cache scheme's "exclusive miss",
        // with hit/miss replaced by useful/not-useful.)
        let a_useful = self.window_a.contains(block);
        let b_useful = self.window_b.contains(block);
        if a_useful && !b_useful {
            self.selector = self.selector.saturating_sub(1);
        } else if b_useful && !a_useful {
            self.selector = (self.selector + 1).min(self.max);
        }

        let pa = self.next_line.on_miss(block);
        let pb = self.stride.on_miss(block);
        if let Some(p) = pa {
            self.window_a.push(p);
        }
        if let Some(p) = pb {
            self.window_b.push(p);
        }
        if self.stride_selected() {
            if pb.is_some() {
                self.issued_b += 1;
            }
            pb
        } else {
            if pa.is_some() {
                self.issued_a += 1;
            }
            pa
        }
    }
}

/// Runtime dispatch over the engines (kept as an enum to stay `Copy`-free
/// but allocation-free).
#[derive(Debug, Clone)]
pub enum PrefetchEngine {
    /// Sequential.
    NextLine(NextLine),
    /// Stride-matching.
    Stride(Stride),
    /// Adaptive hybrid.
    Adaptive(AdaptivePrefetcher),
}

impl Prefetcher for PrefetchEngine {
    fn name(&self) -> &'static str {
        match self {
            PrefetchEngine::NextLine(p) => p.name(),
            PrefetchEngine::Stride(p) => p.name(),
            PrefetchEngine::Adaptive(p) => p.name(),
        }
    }
    fn on_miss(&mut self, block: BlockAddr) -> Option<BlockAddr> {
        match self {
            PrefetchEngine::NextLine(p) => p.on_miss(block),
            PrefetchEngine::Stride(p) => p.on_miss(block),
            PrefetchEngine::Adaptive(p) => p.on_miss(block),
        }
    }
}

/// Statistics kept by the hierarchy's prefetch integration.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PrefetchStats {
    /// Prefetches issued into the L2.
    pub issued: u64,
    /// Prefetched blocks that satisfied a later demand miss (useful).
    pub useful: u64,
    /// Prefetched blocks evicted without ever being demanded.
    pub useless: u64,
}

impl PrefetchStats {
    /// Useful / issued, in `[0, 1]`.
    pub fn accuracy(&self) -> f64 {
        if self.issued == 0 {
            0.0
        } else {
            self.useful as f64 / self.issued as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn next_line_proposes_successor() {
        let mut p = NextLine;
        assert_eq!(p.on_miss(BlockAddr::new(10)), Some(BlockAddr::new(11)));
    }

    #[test]
    fn stride_arms_after_two_deltas() {
        let mut p = Stride::default();
        assert_eq!(p.on_miss(BlockAddr::new(0)), None);
        assert_eq!(p.on_miss(BlockAddr::new(4)), None, "first delta observed");
        // Second identical delta: armed; proposes 8 + 4.
        assert_eq!(p.on_miss(BlockAddr::new(8)), Some(BlockAddr::new(12)));
        assert_eq!(p.on_miss(BlockAddr::new(12)), Some(BlockAddr::new(16)));
    }

    #[test]
    fn stride_disarms_on_irregular_stream() {
        let mut p = Stride::default();
        p.on_miss(BlockAddr::new(0));
        p.on_miss(BlockAddr::new(4));
        assert!(p.on_miss(BlockAddr::new(8)).is_some(), "armed");
        // Break the pattern: a new delta disarms immediately.
        assert_eq!(p.on_miss(BlockAddr::new(100)), None, "disarmed");
        assert_eq!(p.on_miss(BlockAddr::new(200)), None, "still new delta");
        // Re-arm on the repeated 100-block delta.
        assert!(p.on_miss(BlockAddr::new(300)).is_some(), "re-armed");
    }

    #[test]
    fn adaptive_picks_stride_on_strided_stream() {
        let mut p = AdaptivePrefetcher::new();
        for i in 0..200u64 {
            p.on_miss(BlockAddr::new(i * 4));
        }
        assert!(p.stride_selected(), "stride must win a stride-4 stream");
        let (_, b) = p.issue_counts();
        assert!(b > 100);
    }

    #[test]
    fn adaptive_picks_next_line_on_sequential_stream() {
        let mut p = AdaptivePrefetcher::new();
        for i in 0..200u64 {
            p.on_miss(BlockAddr::new(i));
        }
        // Both are useful on a unit stride; the selector must not
        // starve next-line (ties are not exclusive events).
        let proposal = p.on_miss(BlockAddr::new(200));
        assert_eq!(proposal, Some(BlockAddr::new(201)));
    }

    #[test]
    fn adaptive_switches_between_phases() {
        let mut p = AdaptivePrefetcher::new();
        for i in 0..300u64 {
            p.on_miss(BlockAddr::new(i * 7)); // stride-7 phase
        }
        assert!(p.stride_selected());
        let mut x = 1u64;
        for _ in 0..300 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            // Random walk, but revisit block+1 often enough that
            // next-line is the only useful component.
            let b = x % 1000;
            p.on_miss(BlockAddr::new(b));
            p.on_miss(BlockAddr::new(b + 1));
        }
        assert!(!p.stride_selected(), "next-line must reclaim the selector");
    }

    #[test]
    fn stats_accuracy() {
        let s = PrefetchStats {
            issued: 10,
            useful: 4,
            useless: 5,
        };
        assert!((s.accuracy() - 0.4).abs() < 1e-12);
        assert_eq!(PrefetchStats::default().accuracy(), 0.0);
    }

    #[test]
    fn kind_builds_expected_engine() {
        assert!(PrefetchKind::None.build().is_none());
        assert_eq!(PrefetchKind::Stride.build().unwrap().name(), "stride");
        assert_eq!(PrefetchKind::Adaptive.build().unwrap().name(), "adaptive");
    }
}
