//! Processor configuration (the paper's Table 1).

use serde::{Deserialize, Serialize};

/// Parameters of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheParams {
    /// Total size in bytes.
    pub size_bytes: usize,
    /// Line size in bytes.
    pub line_bytes: usize,
    /// Associativity.
    pub associativity: usize,
    /// Hit latency in cycles.
    pub hit_latency: u32,
}

/// Full processor configuration, defaulting to the paper's Table 1.
///
/// ```
/// use cpu_model::CpuConfig;
/// let c = CpuConfig::paper_default();
/// assert_eq!(c.width, 8);
/// assert_eq!(c.rob_entries, 64);
/// assert_eq!(c.store_buffer_entries, 4);
/// assert_eq!(c.l2.hit_latency, 15);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CpuConfig {
    /// Fetch/decode/issue/retire width ("8-wide").
    pub width: u32,
    /// Reorder-buffer entries (64).
    pub rob_entries: u32,
    /// Reservation-station entries (32).
    pub rs_entries: u32,
    /// Integer ALUs (4).
    pub int_alu_units: u32,
    /// Integer multiply/divide units (4).
    pub int_mul_units: u32,
    /// FP ALUs (4).
    pub fp_alu_units: u32,
    /// FP multiply/divide units (4).
    pub fp_div_units: u32,
    /// Memory ports (2).
    pub mem_ports: u32,
    /// IALU latency (1).
    pub lat_int_alu: u32,
    /// IMULT/IDIV latency (8).
    pub lat_int_mul: u32,
    /// FPADD latency (4).
    pub lat_fp_add: u32,
    /// FPDIV latency (16, unpipelined).
    pub lat_fp_div: u32,
    /// Front-end depth: cycles from fetch to dispatch.
    pub front_depth: u32,
    /// Additional redirect penalty after a mispredicted branch resolves.
    pub mispredict_penalty: u32,
    /// Miss-status holding registers: maximum overlapped L1D misses (MLP).
    pub mshrs: u32,
    /// Store-buffer entries (Table 1: 4; Figure 10 sweeps 1..256).
    pub store_buffer_entries: u32,
    /// Whether the store buffer coalesces consecutive stores to the same
    /// cache line into one drain ("the store buffer may also perform
    /// other functions such as write combining", Section 4.5.2).
    /// Off by default to match the paper's base configuration.
    pub sb_write_combining: bool,
    /// Eviction/writeback buffer entries between the L2 and memory
    /// (footnote 5 of the paper: "depending on the implementation of the
    /// eviction/writeback buffers, an entry can be pre-reserved ... to
    /// prevent deadlocking the buffers and queues of the hierarchy").
    pub writeback_buffer_entries: u32,
    /// L1 instruction cache (16 KB, 64 B, 4-way, 2 cycles).
    pub l1i: CacheParams,
    /// L1 data cache (16 KB, 64 B, 4-way, 2 cycles).
    pub l1d: CacheParams,
    /// Unified L2 (512 KB, 64 B, 8-way, 15 cycles). The replacement
    /// organisation is supplied separately (see [`crate::Pipeline`]).
    pub l2: CacheParams,
    /// Main-memory access latency in CPU cycles.
    ///
    /// Table 1 prints "12 cycle latency", which is inconsistent with the
    /// paper's own framing ("the cost of access to RAM has grown to
    /// hundreds of cycles") and is evidently a typographical truncation of
    /// 120; we use 120 and add bus transfer time on top.
    pub mem_latency: u32,
    /// Bus width in bytes (8 B, Table 1).
    pub bus_bytes: u32,
    /// Processor-to-bus frequency ratio (8:1, Table 1).
    pub bus_ratio: u32,
}

impl CpuConfig {
    /// The paper's Table 1 configuration.
    pub fn paper_default() -> Self {
        CpuConfig {
            width: 8,
            rob_entries: 64,
            rs_entries: 32,
            int_alu_units: 4,
            int_mul_units: 4,
            fp_alu_units: 4,
            fp_div_units: 4,
            mem_ports: 2,
            lat_int_alu: 1,
            lat_int_mul: 8,
            lat_fp_add: 4,
            lat_fp_div: 16,
            front_depth: 4,
            mispredict_penalty: 6,
            mshrs: 8,
            store_buffer_entries: 4,
            sb_write_combining: false,
            writeback_buffer_entries: 8,
            l1i: CacheParams {
                size_bytes: 16 * 1024,
                line_bytes: 64,
                associativity: 4,
                hit_latency: 2,
            },
            l1d: CacheParams {
                size_bytes: 16 * 1024,
                line_bytes: 64,
                associativity: 4,
                hit_latency: 2,
            },
            l2: CacheParams {
                size_bytes: 512 * 1024,
                line_bytes: 64,
                associativity: 8,
                hit_latency: 15,
            },
            mem_latency: 120,
            bus_bytes: 8,
            bus_ratio: 8,
        }
    }

    /// Cycles the bus is occupied transferring one L2 line to/from memory.
    pub fn bus_transfer_cycles(&self) -> u32 {
        let bus_cycles = self.l2.line_bytes as u32 / self.bus_bytes;
        bus_cycles * self.bus_ratio
    }

    /// Returns this configuration with a different store-buffer capacity
    /// (Figure 10's sweep).
    pub fn store_buffer(mut self, entries: u32) -> Self {
        assert!(entries >= 1, "store buffer needs at least one entry");
        self.store_buffer_entries = entries;
        self
    }

    /// Returns this configuration with a different writeback-buffer
    /// capacity.
    pub fn writeback_buffer(mut self, entries: u32) -> Self {
        assert!(entries >= 1, "writeback buffer needs at least one entry");
        self.writeback_buffer_entries = entries;
        self
    }

    /// Returns this configuration with store-buffer write combining
    /// enabled or disabled.
    pub fn write_combining(mut self, on: bool) -> Self {
        self.sb_write_combining = on;
        self
    }

    /// Returns this configuration with a different L2 shape (Figure 9's
    /// associativity sweep keeps 512 KB while varying ways).
    pub fn l2_shape(mut self, size_bytes: usize, associativity: usize) -> Self {
        self.l2.size_bytes = size_bytes;
        self.l2.associativity = associativity;
        self
    }
}

impl Default for CpuConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bus_transfer_is_64_cycles() {
        // 64 B line / 8 B bus = 8 bus cycles x 8 ratio = 64 CPU cycles.
        assert_eq!(CpuConfig::paper_default().bus_transfer_cycles(), 64);
    }

    #[test]
    fn builders_adjust_fields() {
        let c = CpuConfig::paper_default()
            .store_buffer(256)
            .l2_shape(512 * 1024, 16);
        assert_eq!(c.store_buffer_entries, 256);
        assert_eq!(c.l2.associativity, 16);
        assert_eq!(c.l2.size_bytes, 512 * 1024);
    }

    #[test]
    #[should_panic(expected = "store buffer")]
    fn zero_store_buffer_rejected() {
        let _ = CpuConfig::paper_default().store_buffer(0);
    }

    #[test]
    fn default_is_paper() {
        assert_eq!(CpuConfig::default(), CpuConfig::paper_default());
    }
}
