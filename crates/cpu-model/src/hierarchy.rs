//! The two-level memory hierarchy: split 16 KB L1 I/D caches in front of
//! a unified L2 with a pluggable replacement organisation.

use crate::config::{CacheParams, CpuConfig};
use crate::prefetch::{PrefetchEngine, PrefetchStats, Prefetcher};
use cache_sim::{Address, BlockAddr, Cache, CacheModel, CacheStats, Geometry, PolicyKind};
use serde::{Deserialize, Serialize};
use std::collections::HashSet;
use std::hash::{BuildHasherDefault, Hasher};

/// A trivial identity [`Hasher`] for block-address sets.
///
/// Block addresses are already well-distributed cache-line indices;
/// running them through SipHash on the L2 miss path buys nothing. This
/// hasher forwards the integer unchanged (dependency-free equivalent of
/// the usual `nohash`/`fxhash` crates).
#[derive(Debug, Clone, Copy, Default)]
pub struct IdentityHasher(u64);

impl Hasher for IdentityHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        // Only reachable for non-integer keys; fold bytes so the hasher
        // stays correct (if degraded) for them.
        for &b in bytes {
            self.0 = (self.0 << 8) | u64::from(b);
        }
    }

    fn write_u64(&mut self, v: u64) {
        self.0 = v;
    }

    fn write_usize(&mut self, v: usize) {
        self.0 = v as u64;
    }
}

/// A `HashSet<u64>` keyed through [`IdentityHasher`].
pub type BlockSet = HashSet<u64, BuildHasherDefault<IdentityHasher>>;

/// The level that served an access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Level {
    /// Served by the first-level cache.
    L1,
    /// Served by the unified second-level cache.
    L2,
    /// Served by main memory.
    Memory,
}

/// Result of one hierarchy access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HierAccess {
    /// Where the data came from.
    pub level: Level,
    /// Dirty L2 lines written back to memory by this access (bus traffic).
    pub memory_writebacks: u32,
}

/// The memory hierarchy. Every level is any [`CacheModel`] — plain
/// [`Cache`]s, `adaptive_cache::AdaptiveCache`s (the paper's Section 4.6
/// also evaluates adaptive L1s), SBAR caches, etc. The L1 parameters
/// default to conventional LRU caches built from the [`CpuConfig`].
#[derive(Debug)]
pub struct Hierarchy<
    L2: CacheModel,
    L1I: CacheModel = Cache<PolicyKind>,
    L1D: CacheModel = Cache<PolicyKind>,
> {
    l1i: L1I,
    l1d: L1D,
    l1i_geom: Geometry,
    l1d_geom: Geometry,
    l2x: L2Complex<L2>,
}

/// The L2 side of the hierarchy: the organisation under test plus the
/// demand-miss counter and optional prefetcher bookkeeping.
///
/// Split out of [`Hierarchy`] so the memoised-stream replay driver
/// ([`crate::replay`]) runs the *same* code the front-end-attached
/// hierarchy runs — demand accounting and prefetch scoring behave
/// identically by construction, not by duplication.
#[derive(Debug)]
pub struct L2Complex<L2: CacheModel> {
    l2: L2,
    geom: Geometry,
    /// Demand misses at the L2 (excludes prefetch traffic).
    demand_misses: u64,
    /// Optional L2 prefetcher + usefulness bookkeeping.
    prefetcher: Option<PrefetchEngine>,
    prefetched: BlockSet,
    pf_stats: PrefetchStats,
}

impl<L2: CacheModel> L2Complex<L2> {
    /// Wraps an L2 organisation with demand/prefetch bookkeeping.
    pub fn new(l2: L2) -> L2Complex<L2> {
        L2Complex {
            geom: *l2.geometry(),
            l2,
            demand_misses: 0,
            prefetcher: None,
            prefetched: BlockSet::default(),
            pf_stats: PrefetchStats::default(),
        }
    }

    /// Attaches (or detaches) an L2 prefetcher.
    pub fn set_prefetcher(&mut self, engine: Option<PrefetchEngine>) {
        if engine.is_some() {
            // Entries only exist for L2-resident lines (inserted after a
            // prefetch fill, retired on demand hit or any eviction), so
            // the line count bounds the set: reserving it up front keeps
            // the steady-state access loop free of table resizes.
            let lines = self.geom.num_sets() * self.geom.associativity();
            self.prefetched
                .reserve(lines.saturating_sub(self.prefetched.len()));
        }
        self.prefetcher = engine;
    }

    /// Demand L2 misses so far (prefetch fills excluded).
    pub fn demand_misses(&self) -> u64 {
        self.demand_misses
    }

    /// Prefetch usefulness statistics.
    pub fn prefetch_stats(&self) -> PrefetchStats {
        self.pf_stats
    }

    /// The wrapped organisation.
    pub fn l2(&self) -> &L2 {
        &self.l2
    }

    /// Mutable access to the wrapped organisation.
    pub fn l2_mut(&mut self) -> &mut L2 {
        &mut self.l2
    }

    /// Consumes the complex, returning the organisation.
    pub fn into_inner(self) -> L2 {
        self.l2
    }

    /// A demand fill from byte address `addr` (allocating on miss);
    /// returns the serving level.
    pub fn fill(&mut self, addr: u64) -> HierAccess {
        let block = self.geom.block_of(Address::new(addr));
        let out = self.l2.access(block, false);
        if !out.hit {
            self.demand_misses += 1;
        }
        self.score_and_prefetch(block, out.hit, out.eviction);
        let memory_writebacks = u32::from(out.eviction.map(|e| e.dirty).unwrap_or(false));
        HierAccess {
            level: if out.hit { Level::L2 } else { Level::Memory },
            memory_writebacks,
        }
    }

    /// An L1 dirty-eviction writeback of byte address `addr`; returns
    /// the number of memory writebacks it caused in turn.
    pub fn write_back(&mut self, addr: u64) -> u32 {
        let block = self.geom.block_of(Address::new(addr));
        let out = self.l2.access(block, true);
        if !out.hit {
            self.demand_misses += 1;
        }
        // A writeback is not a demand fetch — it neither scores the
        // accessed block nor consults the prefetcher — but its eviction
        // can still displace a prefetched line, which must be retired
        // here or the bookkeeping set leaks an entry per occurrence.
        if self.prefetcher.is_some() {
            if let Some(ev) = out.eviction {
                if self.prefetched.remove(&ev.block.raw()) {
                    self.pf_stats.useless += 1;
                }
            }
        }
        u32::from(out.eviction.map(|e| e.dirty).unwrap_or(false))
    }

    /// Prefetch bookkeeping around a demand L2 access: score usefulness,
    /// retire evicted prefetches, and issue the next proposal.
    fn score_and_prefetch(
        &mut self,
        block: BlockAddr,
        hit: bool,
        eviction: Option<cache_sim::Eviction>,
    ) {
        if self.prefetcher.is_none() {
            return;
        }
        if let Some(ev) = eviction {
            if self.prefetched.remove(&ev.block.raw()) {
                self.pf_stats.useless += 1;
            }
        }
        if hit && self.prefetched.remove(&block.raw()) {
            self.pf_stats.useful += 1;
        }
        if !hit {
            let proposal = self
                .prefetcher
                .as_mut()
                .expect("checked above")
                .on_miss(block);
            if let Some(p) = proposal {
                let out = self.l2.access(p, false);
                if !out.hit {
                    self.pf_stats.issued += 1;
                    self.prefetched.insert(p.raw());
                    if let Some(ev) = out.eviction {
                        if self.prefetched.remove(&ev.block.raw()) {
                            self.pf_stats.useless += 1;
                        }
                    }
                }
            }
        }
    }
}

pub(crate) fn build_l1(p: CacheParams, seed: u64) -> (Cache<PolicyKind>, Geometry) {
    let geom =
        Geometry::new(p.size_bytes, p.line_bytes, p.associativity).expect("invalid L1 geometry");
    (Cache::new(geom, PolicyKind::Lru, seed), geom)
}

/// Geometry for an L1 level of `config` (used when supplying custom L1
/// organisations to [`Hierarchy::with_l1s`]).
pub fn l1_geometry(p: CacheParams) -> Geometry {
    Geometry::new(p.size_bytes, p.line_bytes, p.associativity).expect("invalid L1 geometry")
}

impl<L2: CacheModel> Hierarchy<L2> {
    /// Builds the hierarchy around an existing L2 organisation, with the
    /// conventional LRU L1s of the paper's Table 1.
    pub fn new(config: &CpuConfig, l2: L2) -> Self {
        let (l1i, l1i_geom) = build_l1(config.l1i, L1I_SEED);
        let (l1d, l1d_geom) = build_l1(config.l1d, L1D_SEED);
        Hierarchy {
            l1i,
            l1d,
            l1i_geom,
            l1d_geom,
            l2x: L2Complex::new(l2),
        }
    }
}

/// Seed of the default L1 instruction cache built by [`Hierarchy::new`].
pub(crate) const L1I_SEED: u64 = 0x11;
/// Seed of the default L1 data cache built by [`Hierarchy::new`].
pub(crate) const L1D_SEED: u64 = 0x1D;

impl<L2: CacheModel, L1I: CacheModel, L1D: CacheModel> Hierarchy<L2, L1I, L1D> {
    /// Builds the hierarchy with custom L1 organisations (paper Section
    /// 4.6 evaluates LRU/LFU-adaptive L1 instruction and data caches).
    pub fn with_l1s(l1i: L1I, l1d: L1D, l2: L2) -> Self {
        Hierarchy {
            l1i_geom: *l1i.geometry(),
            l1d_geom: *l1d.geometry(),
            l1i,
            l1d,
            l2x: L2Complex::new(l2),
        }
    }

    /// Attaches an L2 prefetcher (the future-work experiment of the
    /// paper's Section 6; see [`crate::prefetch`]). Prefetch fills go
    /// through the L2's normal replacement path but are excluded from
    /// [`Hierarchy::demand_l2_misses`].
    pub fn set_prefetcher(&mut self, engine: Option<PrefetchEngine>) {
        self.l2x.set_prefetcher(engine);
    }

    /// L2 misses caused by demand traffic only (instruction fetches, data
    /// accesses, L1 writebacks) — prefetch fills excluded.
    pub fn demand_l2_misses(&self) -> u64 {
        self.l2x.demand_misses()
    }

    /// Prefetch usefulness statistics.
    pub fn prefetch_stats(&self) -> PrefetchStats {
        self.l2x.prefetch_stats()
    }

    /// The L2 organisation.
    pub fn l2(&self) -> &L2 {
        self.l2x.l2()
    }

    /// Mutable access to the L2 (e.g. for Figure 7 phase sampling).
    pub fn l2_mut(&mut self) -> &mut L2 {
        self.l2x.l2_mut()
    }

    /// L1 instruction-cache statistics.
    pub fn l1i_stats(&self) -> &CacheStats {
        self.l1i.stats()
    }

    /// L1 data-cache statistics.
    pub fn l1d_stats(&self) -> &CacheStats {
        self.l1d.stats()
    }

    /// The L1 instruction-cache organisation.
    pub fn l1i(&self) -> &L1I {
        &self.l1i
    }

    /// The L1 data-cache organisation.
    pub fn l1d(&self) -> &L1D {
        &self.l1d
    }

    /// Consumes the hierarchy, returning the L2.
    pub fn into_l2(self) -> L2 {
        self.l2x.into_inner()
    }

    /// One instruction fetch of the block containing `pc`.
    pub fn inst_fetch(&mut self, pc: u64) -> HierAccess {
        let block = self.l1i_geom.block_of(Address::new(pc));
        let out = self.l1i.access(block, false);
        if out.hit {
            return HierAccess {
                level: Level::L1,
                memory_writebacks: 0,
            };
        }
        // Instruction lines are never dirty; the L1I eviction needs no
        // writeback. Fill from the unified L2.
        self.l2x.fill(pc)
    }

    /// One data access to `addr`.
    pub fn data_access(&mut self, addr: u64, write: bool) -> HierAccess {
        let block = self.l1d_geom.block_of(Address::new(addr));
        let out = self.l1d.access(block, write);
        let mut wbs = 0;
        if let Some(ev) = out.eviction {
            if ev.dirty {
                // Write the evicted L1 line back into the L2.
                let byte = ev.block.raw() << self.l1d_geom.offset_bits();
                wbs += self.l2x.write_back(byte);
            }
        }
        if out.hit {
            return HierAccess {
                level: Level::L1,
                memory_writebacks: wbs,
            };
        }
        let mut fill = self.l2x.fill(addr);
        fill.memory_writebacks += wbs;
        fill
    }
}

/// Statistics from a functional (timing-free) run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct FunctionalStats {
    /// Instructions consumed.
    pub instructions: u64,
    /// Data reads / writes issued to the hierarchy.
    pub data_accesses: u64,
    /// Instruction-block fetches issued.
    pub inst_fetches: u64,
    /// L1D misses.
    pub l1d_misses: u64,
    /// L1I misses.
    pub l1i_misses: u64,
    /// L2 misses (demand, from both I and D sides).
    pub l2_misses: u64,
}

impl FunctionalStats {
    /// L2 misses per thousand instructions.
    pub fn l2_mpki(&self) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            self.l2_misses as f64 * 1000.0 / self.instructions as f64
        }
    }
}

/// Drives a hierarchy with a trace **without timing** — exactly the same
/// reference stream the full pipeline would produce, at a fraction of the
/// cost. Used for miss-rate-only experiments (Figures 3, 5, 8) and the
/// 100-program extended set.
pub fn run_functional<L2, L1I, L1D, I>(
    hierarchy: &mut Hierarchy<L2, L1I, L1D>,
    trace: I,
    max_insts: u64,
) -> FunctionalStats
where
    L2: CacheModel,
    L1I: CacheModel,
    L1D: CacheModel,
    I: Iterator<Item = workloads::Inst>,
{
    let _span = ac_telemetry::span("cpu", || {
        format!("functional_run {}", hierarchy.l2().label())
    });
    let mut stats = FunctionalStats::default();
    let started = std::time::Instant::now();
    // Ticks in units of L2-visible work (fetch-block lookups + data
    // references); `None` unless a hub with timelines enabled is
    // installed, so the disabled path costs one branch per instruction.
    let mut timeline = ac_telemetry::Timeline::from_hub("accesses", || {
        format!("functional {}", hierarchy.l2().label())
    });
    let mut last_iblock = u64::MAX;
    // Explicit u64 budget: `Iterator::take` counts in usize, which would
    // silently truncate budgets above 4G-1 instructions on 32-bit hosts.
    let mut trace = trace;
    while stats.instructions < max_insts {
        let Some(inst) = trace.next() else { break };
        stats.instructions += 1;
        let iblock = inst.pc / hierarchy.l1i_geom.line_bytes() as u64;
        if iblock != last_iblock {
            last_iblock = iblock;
            stats.inst_fetches += 1;
            hierarchy.inst_fetch(inst.pc);
        }
        if let Some(addr) = inst.mem_addr() {
            stats.data_accesses += 1;
            let write = matches!(inst.kind, workloads::InstKind::Store { .. });
            hierarchy.data_access(addr, write);
        }
        if let Some(tl) = timeline.as_mut() {
            let ticks = stats.inst_fetches + stats.data_accesses;
            if tl.due(ticks) {
                tl.record(
                    ticks,
                    stats.instructions,
                    hierarchy.l2().timeline_probe(),
                    ac_telemetry::TimelineGauges::default(),
                );
            }
        }
    }
    if let Some(tl) = timeline {
        tl.finish(
            stats.inst_fetches + stats.data_accesses,
            stats.instructions,
            hierarchy.l2().timeline_probe(),
            ac_telemetry::TimelineGauges::default(),
        );
    }
    stats.l1d_misses = hierarchy.l1d_stats().misses;
    stats.l1i_misses = hierarchy.l1i_stats().misses;
    // Count only demand misses at the L2 (instruction fetches, data
    // accesses and L1 writebacks); prefetch fills are excluded.
    stats.l2_misses = hierarchy.demand_l2_misses();
    if ac_telemetry::enabled() {
        hierarchy.l2().flush_telemetry();
        ac_telemetry::counter_add("functional_instructions_total", stats.instructions);
        // Simulation throughput over the cache access stream (fetch-block
        // lookups + data references), for spotting engine regressions in
        // dashboards without a dedicated bench run.
        let secs = started.elapsed().as_secs_f64();
        if secs > 0.0 {
            ac_telemetry::gauge_set(
                "engine.accesses_per_sec",
                (stats.inst_fetches + stats.data_accesses) as f64 / secs,
            );
        }
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use workloads::{primary_suite, Inst, InstKind};

    fn hier() -> Hierarchy<Cache<PolicyKind>> {
        let cfg = CpuConfig::paper_default();
        let geom =
            Geometry::new(cfg.l2.size_bytes, cfg.l2.line_bytes, cfg.l2.associativity).unwrap();
        Hierarchy::new(&cfg, Cache::new(geom, PolicyKind::Lru, 7))
    }

    #[test]
    fn l1_hit_after_fill() {
        let mut h = hier();
        assert_eq!(h.data_access(0x4000, false).level, Level::Memory);
        assert_eq!(h.data_access(0x4000, false).level, Level::L1);
        assert_eq!(h.data_access(0x4008, false).level, Level::L1, "same line");
    }

    #[test]
    fn l2_serves_l1_conflicts() {
        let mut h = hier();
        // L1D is 16KB 4-way (64 sets): blocks 64 sets apart conflict.
        // Touch 5 conflicting lines: L1 evicts, L2 still holds them.
        let stride = 64 * 64; // one L1 set apart
        for i in 0..5u64 {
            h.data_access(i * stride, false);
        }
        assert_eq!(h.data_access(0, false).level, Level::L2);
    }

    #[test]
    fn dirty_l1_eviction_updates_l2() {
        let mut h = hier();
        let stride = 64 * 64;
        h.data_access(0, true); // dirty in L1
        for i in 1..5u64 {
            h.data_access(i * stride, false); // evicts line 0 from L1
        }
        // The writeback must have hit the L2 (it was allocated there on
        // the initial fill), keeping it present and dirty.
        assert_eq!(h.l2().stats().writebacks, 0, "nothing left L2 yet");
        assert!(h.l2().stats().hits >= 1, "L1 writeback hit the L2");
    }

    #[test]
    fn inst_fetches_fill_both_levels() {
        let mut h = hier();
        assert_eq!(h.inst_fetch(0x40_0000).level, Level::Memory);
        assert_eq!(h.inst_fetch(0x40_0000).level, Level::L1);
        assert_eq!(h.l1i_stats().misses, 1);
    }

    #[test]
    fn functional_run_counts() {
        let mut h = hier();
        let trace = (0..1000u64).map(|i| {
            Inst::free(
                0x40_0000 + (i % 16) * 4,
                InstKind::Load {
                    addr: (i % 50) * 64,
                },
            )
        });
        let s = run_functional(&mut h, trace, 1000);
        assert_eq!(s.instructions, 1000);
        assert_eq!(s.data_accesses, 1000);
        assert!(s.l2_misses >= 50, "cold misses for 50 blocks");
        assert!(s.l2_mpki() >= 50.0);
    }

    #[test]
    fn functional_run_on_real_benchmark() {
        let mut h = hier();
        let b = &primary_suite()[0];
        let s = run_functional(&mut h, b.spec.generator(), 20_000);
        assert_eq!(s.instructions, 20_000);
        assert!(s.data_accesses > 5_000);
        assert!(s.l2_misses > 0);
    }

    #[test]
    fn into_l2_returns_the_model() {
        let mut h = hier();
        h.data_access(0, false);
        let l2 = h.into_l2();
        assert_eq!(l2.stats().accesses, 1);
    }
}

#[cfg(test)]
mod prefetch_integration_tests {
    use super::*;
    use crate::prefetch::PrefetchKind;
    use workloads::{Inst, InstKind};

    fn hier_with(pf: PrefetchKind) -> Hierarchy<Cache<PolicyKind>> {
        let cfg = CpuConfig::paper_default();
        let geom =
            Geometry::new(cfg.l2.size_bytes, cfg.l2.line_bytes, cfg.l2.associativity).unwrap();
        let mut h = Hierarchy::new(&cfg, Cache::new(geom, PolicyKind::Lru, 7));
        h.set_prefetcher(pf.build());
        h
    }

    fn streaming_trace(n: u64) -> impl Iterator<Item = Inst> {
        // A pure streaming read over a huge region: ideal for next-line.
        (0..n).map(|i| Inst::free(0x40_0000 + (i % 16) * 4, InstKind::Load { addr: i * 64 }))
    }

    #[test]
    fn next_line_prefetching_halves_streaming_misses() {
        let mut base = hier_with(PrefetchKind::None);
        let b = run_functional(&mut base, streaming_trace(100_000), 100_000);

        let mut pf = hier_with(PrefetchKind::NextLine);
        let p = run_functional(&mut pf, streaming_trace(100_000), 100_000);

        assert!(
            p.l2_misses * 3 < b.l2_misses * 2,
            "next-line should remove a big share of streaming misses ({} vs {})",
            p.l2_misses,
            b.l2_misses
        );
        let stats = pf.prefetch_stats();
        assert!(stats.issued > 10_000);
        assert!(stats.accuracy() > 0.8, "accuracy {}", stats.accuracy());
    }

    #[test]
    fn adaptive_prefetcher_handles_strided_streams() {
        let strided = |n: u64| {
            (0..n).map(|i| {
                Inst::free(
                    0x40_0000 + (i % 16) * 4,
                    InstKind::Load { addr: i * 5 * 64 },
                )
            })
        };
        let mut base = hier_with(PrefetchKind::None);
        let b = run_functional(&mut base, strided(80_000), 80_000);
        let mut next = hier_with(PrefetchKind::NextLine);
        let nl = run_functional(&mut next, strided(80_000), 80_000);
        let mut adapt = hier_with(PrefetchKind::Adaptive);
        let a = run_functional(&mut adapt, strided(80_000), 80_000);

        // Next-line is useless on stride 5; adaptive must fall back to the
        // stride component and beat both the baseline and next-line.
        assert!(
            a.l2_misses < b.l2_misses,
            "{} vs base {}",
            a.l2_misses,
            b.l2_misses
        );
        assert!(
            a.l2_misses < nl.l2_misses,
            "{} vs next-line {}",
            a.l2_misses,
            nl.l2_misses
        );
    }

    #[test]
    fn prefetch_traffic_is_excluded_from_demand_misses() {
        let mut pf = hier_with(PrefetchKind::NextLine);
        let p = run_functional(&mut pf, streaming_trace(50_000), 50_000);
        // Raw L2 stats include prefetch fills; the demand counter must be
        // strictly smaller.
        assert!(pf.l2().stats().misses > p.l2_misses);
    }

    #[test]
    fn useless_prefetches_are_counted() {
        // Pointer-chase-like stream: next-line proposals never get used.
        let chase = (0..60_000u64).map(|i| {
            Inst::free(
                0x40_0000,
                InstKind::Load {
                    addr: (i.wrapping_mul(0x9E37_79B9) % (1 << 22)) / 64 * 64 * 64,
                },
            )
        });
        let mut pf = hier_with(PrefetchKind::NextLine);
        run_functional(&mut pf, chase, 60_000);
        let s = pf.prefetch_stats();
        assert!(s.issued > 1_000);
        assert!(
            s.accuracy() < 0.2,
            "random chase must waste prefetches, accuracy {}",
            s.accuracy()
        );
    }
}
