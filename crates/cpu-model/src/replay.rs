//! Front-end memoisation: capture the L2-visible reference stream once,
//! replay it against any number of L2 organisations.
//!
//! In functional mode the L1 caches are fixed (the paper's Table 1
//! geometry, deterministic seeds) and never observe the L2 — there is no
//! inclusion enforcement or back-invalidation — so the sequence of
//! events the L2 sees (demand fills from the I- and D-side plus L1D
//! dirty-eviction writebacks) is **bit-identical across every L2
//! organisation** of a benchmark. [`capture_functional`] runs the
//! front-end once and records that sequence into a packed, delta-encoded
//! structure-of-arrays buffer ([`L2Trace`], a few bytes per event);
//! [`replay_l2`] then drives any [`CacheModel`] with it, producing
//! [`FunctionalStats`] — and timeline windows — exactly equal to a
//! direct [`crate::run_functional`] run, with zero trace generation and
//! zero L1 work.
//!
//! Timeline exactness needs one extra trick: the functional driver
//! checks `Timeline::due(ticks)` once per *instruction*, and the
//! boundary schedule depends on the ring's coarsening history. The
//! capture therefore emulates the timeline's bookkeeping (same window
//! length, capacity and doubling rule) and records the exact `(tick,
//! instruction)` points at which the direct run would have recorded a
//! window; the replay feeds `Timeline::record` at exactly those points.

use crate::config::CpuConfig;
use crate::hierarchy::{build_l1, FunctionalStats, L2Complex, L1D_SEED, L1I_SEED};
use cache_sim::{Address, CacheModel};
use workloads::packed::{BitSeq, DeltaSeq};

pub mod persist;

/// One L2-visible event, decoded from an [`L2Trace`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct L2Event {
    /// Byte address of the reference (line-aligned for writebacks).
    pub addr: u64,
    /// `true` for an L1D dirty-eviction writeback, `false` for a demand
    /// fill.
    pub writeback: bool,
    /// 1-based index of the instruction that caused the event.
    pub inst: u64,
}

/// A captured L2-visible reference stream: the front-end's
/// [`FunctionalStats`] plus every L2 event, packed structure-of-arrays
/// style (zigzag-varint address deltas, varint instruction-index deltas,
/// one flag bit per event — typically under 4 bytes/event).
#[derive(Debug, Clone, Default)]
pub struct L2Trace {
    /// Front-end statistics (the `l2_misses` field is zero; it is
    /// L2-dependent and computed at replay time).
    front: FunctionalStats,
    addrs: DeltaSeq,
    insts: DeltaSeq,
    writebacks: BitSeq,
    /// Timeline record points the direct run would have hit: `(tick,
    /// instructions)` pairs, both monotonic.
    sched_ticks: DeltaSeq,
    sched_insts: DeltaSeq,
    /// Window length the schedule was captured for (0 = no schedule).
    sched_window: u64,
    /// Final tick count (`inst_fetches + data_accesses`).
    total_ticks: u64,
}

impl L2Trace {
    /// The front-end statistics of the captured run (`l2_misses` = 0).
    pub fn front_stats(&self) -> FunctionalStats {
        self.front
    }

    /// Number of L2-visible events captured.
    pub fn len(&self) -> usize {
        self.addrs.len()
    }

    /// Whether the capture saw no L2 traffic.
    pub fn is_empty(&self) -> bool {
        self.addrs.is_empty()
    }

    /// Final tick count of the captured run.
    pub fn total_ticks(&self) -> u64 {
        self.total_ticks
    }

    /// Approximate resident size in bytes (packed buffers + header).
    pub fn approx_bytes(&self) -> usize {
        self.addrs.byte_len()
            + self.insts.byte_len()
            + self.writebacks.byte_len()
            + self.sched_ticks.byte_len()
            + self.sched_insts.byte_len()
            + std::mem::size_of::<L2Trace>()
    }

    /// Decodes the event stream.
    pub fn events(&self) -> impl Iterator<Item = L2Event> + '_ {
        self.addrs
            .iter()
            .zip(self.insts.iter())
            .zip(self.writebacks.iter())
            .map(|((addr, inst), writeback)| L2Event {
                addr,
                writeback,
                inst,
            })
    }

    /// Decodes the timeline record-point schedule.
    pub fn schedule(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.sched_ticks.iter().zip(self.sched_insts.iter())
    }
}

/// Incremental [`L2Trace`] encoder. [`capture_functional`] is the real
/// producer; the builder is public so tests can round-trip arbitrary
/// event sequences.
#[derive(Debug, Default)]
pub struct L2TraceBuilder {
    trace: L2Trace,
}

impl L2TraceBuilder {
    /// An empty builder.
    pub fn new() -> L2TraceBuilder {
        L2TraceBuilder::default()
    }

    /// Appends one L2-visible event.
    pub fn push(&mut self, addr: u64, writeback: bool, inst: u64) {
        self.trace.addrs.push(addr);
        self.trace.insts.push(inst);
        self.trace.writebacks.push(writeback);
    }

    /// Appends one timeline record point.
    pub fn push_schedule(&mut self, tick: u64, inst: u64) {
        self.trace.sched_ticks.push(tick);
        self.trace.sched_insts.push(inst);
    }

    /// Seals the trace with the front-end totals.
    pub fn finish(
        mut self,
        front: FunctionalStats,
        total_ticks: u64,
        sched_window: u64,
    ) -> L2Trace {
        self.trace.front = FunctionalStats {
            l2_misses: 0,
            ..front
        };
        self.trace.total_ticks = total_ticks;
        self.trace.sched_window = sched_window;
        self.trace
    }
}

/// Mirrors [`ac_telemetry::Timeline`]'s boundary bookkeeping (window
/// doubling on ring-capacity coarsening) without recording anything, so
/// the capture knows exactly when a direct run would have recorded.
#[derive(Debug)]
struct ScheduleSim {
    window_len: u64,
    next_boundary: u64,
    count: usize,
    capacity: usize,
}

impl ScheduleSim {
    fn new(window: u64) -> ScheduleSim {
        let window = window.max(1);
        ScheduleSim {
            window_len: window,
            next_boundary: window,
            count: 0,
            capacity: ac_telemetry::timeline::DEFAULT_TIMELINE_CAPACITY.max(2),
        }
    }

    #[inline]
    fn due(&self, tick: u64) -> bool {
        tick >= self.next_boundary
    }

    fn record(&mut self, tick: u64) {
        if self.count == self.capacity {
            // Timeline::coarsen: pairwise merge halves the ring and
            // doubles the window length.
            self.count = self.capacity / 2 + self.capacity % 2;
            self.window_len = self.window_len.saturating_mul(2);
        }
        self.count += 1;
        while self.next_boundary <= tick {
            self.next_boundary += self.window_len;
        }
    }
}

/// The timeline window length captures should assume: the installed
/// hub's, or the default when no hub exists yet (`0` disables schedule
/// capture — the hub is install-once, so a window of zero now means no
/// timeline can ever record in this process).
fn capture_window() -> u64 {
    match ac_telemetry::hub() {
        Some(hub) => hub.config().timeline_window,
        None => ac_telemetry::timeline::DEFAULT_TIMELINE_WINDOW,
    }
}

/// Runs the functional front-end (trace generation + L1I/L1D) once and
/// captures the L2-visible reference stream.
///
/// The loop is shape-identical to [`crate::run_functional`] — same
/// instruction budget handling, same I-block deduplication, same
/// event order (dirty writeback before the fill of the missing access)
/// — but no L2 is attached: events are recorded instead of applied.
pub fn capture_functional<I>(config: &CpuConfig, trace: I, max_insts: u64) -> L2Trace
where
    I: Iterator<Item = workloads::Inst>,
{
    let _span = ac_telemetry::span("cpu", || "capture_functional".to_string());
    let (mut l1i, l1i_geom) = build_l1(config.l1i, L1I_SEED);
    let (mut l1d, l1d_geom) = build_l1(config.l1d, L1D_SEED);
    let mut b = L2TraceBuilder::new();
    let sched_window = capture_window();
    let mut sched = (sched_window > 0).then(|| ScheduleSim::new(sched_window));
    let mut stats = FunctionalStats::default();
    let mut last_iblock = u64::MAX;
    let mut trace = trace;
    while stats.instructions < max_insts {
        let Some(inst) = trace.next() else { break };
        stats.instructions += 1;
        let iblock = inst.pc / l1i_geom.line_bytes() as u64;
        if iblock != last_iblock {
            last_iblock = iblock;
            stats.inst_fetches += 1;
            let out = l1i.access(l1i_geom.block_of(Address::new(inst.pc)), false);
            if !out.hit {
                // Instruction lines are never dirty; no writeback event.
                b.push(inst.pc, false, stats.instructions);
            }
        }
        if let Some(addr) = inst.mem_addr() {
            stats.data_accesses += 1;
            let write = matches!(inst.kind, workloads::InstKind::Store { .. });
            let out = l1d.access(l1d_geom.block_of(Address::new(addr)), write);
            if let Some(ev) = out.eviction {
                if ev.dirty {
                    let byte = ev.block.raw() << l1d_geom.offset_bits();
                    b.push(byte, true, stats.instructions);
                }
            }
            if !out.hit {
                b.push(addr, false, stats.instructions);
            }
        }
        if let Some(sim) = sched.as_mut() {
            let ticks = stats.inst_fetches + stats.data_accesses;
            if sim.due(ticks) {
                b.push_schedule(ticks, stats.instructions);
                sim.record(ticks);
            }
        }
    }
    stats.l1d_misses = l1d.stats().misses;
    stats.l1i_misses = l1i.stats().misses;
    let total_ticks = stats.inst_fetches + stats.data_accesses;
    b.finish(stats, total_ticks, sched_window)
}

/// Replays a captured reference stream against `l2`, producing the same
/// [`FunctionalStats`] (and, when telemetry is enabled, the same
/// timeline windows) a direct [`crate::run_functional`] run over that L2
/// would produce.
pub fn replay_l2(trace: &L2Trace, l2: &mut dyn CacheModel) -> FunctionalStats {
    let mut cx = L2Complex::new(l2);
    replay_into(trace, &mut cx)
}

/// Replays a captured reference stream into an existing [`L2Complex`]
/// (use this form to attach a prefetcher before replaying).
pub fn replay_into<L2: CacheModel>(trace: &L2Trace, cx: &mut L2Complex<L2>) -> FunctionalStats {
    let _span = ac_telemetry::span("cpu", || format!("replay_run {}", cx.l2().label()));
    let started = std::time::Instant::now();
    let demand_before = cx.demand_misses();
    // Same label as the direct driver: replayed runs are
    // indistinguishable in timeline.jsonl.
    let mut timeline =
        ac_telemetry::Timeline::from_hub("accesses", || format!("functional {}", cx.l2().label()));
    let mut schedule = trace.schedule();
    let mut next_point = if timeline.is_some() {
        schedule.next()
    } else {
        None
    };
    for ev in trace.events() {
        // The direct run's due-check happens at the *end* of each
        // instruction, so every record point with `inst < ev.inst`
        // precedes this event.
        while let Some((tick, inst)) = next_point {
            if inst >= ev.inst {
                break;
            }
            if let Some(tl) = timeline.as_mut() {
                tl.record(
                    tick,
                    inst,
                    cx.l2().timeline_probe(),
                    ac_telemetry::TimelineGauges::default(),
                );
            }
            next_point = schedule.next();
        }
        if ev.writeback {
            cx.write_back(ev.addr);
        } else {
            cx.fill(ev.addr);
        }
    }
    while let Some((tick, inst)) = next_point {
        if let Some(tl) = timeline.as_mut() {
            tl.record(
                tick,
                inst,
                cx.l2().timeline_probe(),
                ac_telemetry::TimelineGauges::default(),
            );
        }
        next_point = schedule.next();
    }
    let mut stats = trace.front_stats();
    stats.l2_misses = cx.demand_misses() - demand_before;
    if let Some(tl) = timeline {
        tl.finish(
            trace.total_ticks(),
            stats.instructions,
            cx.l2().timeline_probe(),
            ac_telemetry::TimelineGauges::default(),
        );
    }
    if ac_telemetry::enabled() {
        cx.l2().flush_telemetry();
        // Same dashboard counters as the direct driver, so sweeps report
        // identical totals whether the front-end ran or was memoised.
        ac_telemetry::counter_add("functional_instructions_total", stats.instructions);
        let secs = started.elapsed().as_secs_f64();
        if secs > 0.0 {
            ac_telemetry::gauge_set(
                "engine.accesses_per_sec",
                (stats.inst_fetches + stats.data_accesses) as f64 / secs,
            );
            ac_telemetry::gauge_set("engine.replay_events_per_sec", trace.len() as f64 / secs);
        }
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use cache_sim::{Cache, Geometry, PolicyKind};
    use workloads::{Inst, InstKind};

    fn mixed_trace(n: u64) -> impl Iterator<Item = Inst> {
        (0..n).map(|i| {
            Inst::free(
                0x40_0000 + (i % 64) * 4,
                if i % 3 == 0 {
                    InstKind::Store {
                        addr: (i % 700) * 64,
                    }
                } else {
                    InstKind::Load {
                        addr: (i.wrapping_mul(31) % 9000) * 64,
                    }
                },
            )
        })
    }

    #[test]
    fn builder_round_trips_events_and_schedule() {
        let mut b = L2TraceBuilder::new();
        let evs = [
            (0x1000u64, false, 1u64),
            (0x40, true, 1),
            (u64::MAX - 63, false, 2),
            (0x1000, false, 9),
        ];
        for &(a, w, i) in &evs {
            b.push(a, w, i);
        }
        b.push_schedule(100, 60);
        b.push_schedule(200, 121);
        let t = b.finish(
            FunctionalStats {
                instructions: 9,
                data_accesses: 5,
                inst_fetches: 4,
                l1d_misses: 3,
                l1i_misses: 1,
                l2_misses: 777, // must be zeroed
            },
            9,
            1 << 16,
        );
        let back: Vec<(u64, bool, u64)> =
            t.events().map(|e| (e.addr, e.writeback, e.inst)).collect();
        assert_eq!(back, evs);
        assert_eq!(
            t.schedule().collect::<Vec<_>>(),
            vec![(100, 60), (200, 121)]
        );
        assert_eq!(t.front_stats().l2_misses, 0);
        assert_eq!(t.front_stats().instructions, 9);
        assert_eq!(t.len(), 4);
        assert!(t.approx_bytes() < 1024);
    }

    #[test]
    fn capture_matches_direct_run_on_plain_l2() {
        let cfg = CpuConfig::paper_default();
        let n = 120_000;
        let trace = capture_functional(&cfg, mixed_trace(n), n);
        assert_eq!(trace.front_stats().instructions, n);
        assert!(!trace.is_empty());

        let geom = Geometry::new(512 * 1024, 64, 8).unwrap();
        let mut l2 = Cache::new(geom, PolicyKind::Lru, 7);
        let replayed = replay_l2(&trace, &mut l2);

        let mut h = crate::Hierarchy::new(&cfg, Cache::new(geom, PolicyKind::Lru, 7));
        let direct = crate::run_functional(&mut h, mixed_trace(n), n);

        assert_eq!(replayed, direct);
        assert_eq!(l2.stats(), h.l2().stats());
    }

    #[test]
    fn schedule_sim_tracks_real_timeline_boundaries() {
        // Drive a real Timeline and the simulator with the same tick
        // stream (including enough records to force coarsening) and
        // check they agree on every boundary decision.
        let window = 64u64;
        let cap = ac_telemetry::timeline::DEFAULT_TIMELINE_CAPACITY;
        let mut tl = ac_telemetry::Timeline::new("t".into(), "accesses", window, cap);
        let mut sim = ScheduleSim::new(window);
        for tick in 1..200_000u64 {
            assert_eq!(tl.due(tick), sim.due(tick), "tick {tick}");
            if tl.due(tick) {
                tl.record(
                    tick,
                    0,
                    ac_telemetry::TimelineProbe::default(),
                    ac_telemetry::TimelineGauges::default(),
                );
                sim.record(tick);
            }
        }
        assert!(tl.window_len() > window, "coarsening was exercised");
        assert_eq!(tl.window_len(), sim.window_len);
    }
}
