//! Figure 7: time- and space-varying replacement behaviour.
//!
//! The paper samples, every million cycles, which component policy each of
//! the 1024 sets' replacement decisions mostly imitated: "a dark point ...
//! indicates that the majority of replacement decisions during that time
//! quantum were LRU, while a white point corresponds to LFU". The ammp
//! map shows an early spatially-mixed phase, an LFU-dominant band and a
//! final LRU takeover; mgrid shows a per-set gradient.

use crate::report::Table;
use adaptive_cache::{AdaptiveCache, AdaptiveConfig, Component};
use cache_sim::Geometry;
use cpu_model::{CpuConfig, Pipeline};
use serde::{Deserialize, Serialize};
use workloads::{extended_suite, Benchmark};

/// A sampled (time x set) map of imitation decisions.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PhaseMap {
    /// Benchmark name.
    pub benchmark: String,
    /// Sampling quantum in cycles.
    pub quantum_cycles: u64,
    /// Sets aggregated per displayed group (the paper plots all 1024
    /// individually; grouping keeps terminal output readable).
    pub sets_per_group: usize,
    /// `fraction_b[t][g]`: share of replacement decisions in quantum `t`,
    /// set group `g`, that imitated component B (LFU). `NaN` where no
    /// replacements happened.
    pub fraction_b: Vec<Vec<f64>>,
}

impl PhaseMap {
    /// Renders the map as ASCII art: one row per set group, time running
    /// left to right; `#` = LRU-majority (dark in the paper), `.` =
    /// LFU-majority (white), space = no replacements.
    pub fn ascii(&self) -> String {
        let groups = self.fraction_b.first().map(|r| r.len()).unwrap_or(0);
        let mut out = String::new();
        for g in (0..groups).rev() {
            for row in &self.fraction_b {
                let f = row[g];
                out.push(if f.is_nan() {
                    ' '
                } else if f >= 0.5 {
                    '.'
                } else {
                    '#'
                });
            }
            out.push('\n');
        }
        out
    }

    /// Converts to a [`Table`] (rows = time quanta, columns = set groups).
    pub fn to_table(&self) -> Table {
        let groups = self.fraction_b.first().map(|r| r.len()).unwrap_or(0);
        let mut t = Table::new(
            format!(
                "Figure 7: {} fraction of LFU-imitating decisions per set group (quantum {} cycles)",
                self.benchmark, self.quantum_cycles
            ),
            "quantum",
            (0..groups).map(|g| format!("sets{}", g * self.sets_per_group)).collect(),
        );
        for (i, row) in self.fraction_b.iter().enumerate() {
            t.push_row(
                format!("t{i}"),
                row.iter().map(|&f| if f.is_nan() { -1.0 } else { f }).collect(),
            );
        }
        t
    }
}

/// Runs `benchmark` (by name) on the paper's adaptive L2 and samples the
/// per-set imitation decisions every `quantum_cycles`.
///
/// # Panics
///
/// Panics if the benchmark name is unknown.
pub fn fig07_phase_map(
    benchmark: &str,
    insts: u64,
    quantum_cycles: u64,
    set_groups: usize,
) -> PhaseMap {
    let bench: Benchmark = extended_suite()
        .into_iter()
        .find(|b| b.name == benchmark)
        .unwrap_or_else(|| panic!("unknown benchmark {benchmark}"));
    let config = CpuConfig::paper_default();
    let geom = Geometry::new(
        config.l2.size_bytes,
        config.l2.line_bytes,
        config.l2.associativity,
    )
    .unwrap();
    let sets = geom.num_sets();
    let sets_per_group = (sets / set_groups).max(1);

    let l2 = AdaptiveCache::new(geom, AdaptiveConfig::paper_full_tags(), 0x0C0FFEE);
    let mut pipe = Pipeline::new(config, l2);

    let mut map = PhaseMap {
        benchmark: benchmark.to_string(),
        quantum_cycles,
        sets_per_group,
        fraction_b: Vec::new(),
    };
    let mut next_boundary = quantum_cycles;
    let mut trace = bench.spec.generator();
    for _ in 0..insts {
        let inst = trace.next().expect("trace is infinite");
        pipe.step(&inst);
        if pipe.cycles() >= next_boundary {
            next_boundary += quantum_cycles;
            map.fraction_b.push(sample(pipe.l2_mut(), set_groups, sets_per_group));
        }
    }
    map.fraction_b.push(sample(pipe.l2_mut(), set_groups, sets_per_group));
    map
}

fn sample(l2: &mut AdaptiveCache, groups: usize, per_group: usize) -> Vec<f64> {
    let samples = l2.take_imitation_samples();
    (0..groups)
        .map(|g| {
            let (mut a, mut b) = (0u64, 0u64);
            for s in samples.iter().skip(g * per_group).take(per_group) {
                a += s.imitated_a;
                b += s.imitated_b;
            }
            if a + b == 0 {
                f64::NAN
            } else {
                b as f64 / (a + b) as f64
            }
        })
        .collect()
}

/// The component the map colours encode, for documentation purposes.
pub const DARK: Component = Component::A; // LRU
/// See [`DARK`].
pub const WHITE: Component = Component::B; // LFU

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[cfg_attr(debug_assertions, ignore = "simulation-heavy; run with --release")]
    fn ammp_map_shows_both_behaviours() {
        let map = fig07_phase_map("ammp", 400_000, 100_000, 16);
        assert!(map.fraction_b.len() >= 3, "need several quanta");
        let all: Vec<f64> = map
            .fraction_b
            .iter()
            .flatten()
            .copied()
            .filter(|f| !f.is_nan())
            .collect();
        assert!(!all.is_empty());
        // Both LFU-majority and LRU-majority regions must appear.
        assert!(all.iter().any(|&f| f >= 0.5), "no LFU-dominant region");
        assert!(all.iter().any(|&f| f < 0.5), "no LRU-dominant region");
    }

    #[test]
    fn ascii_dimensions() {
        let map = PhaseMap {
            benchmark: "x".into(),
            quantum_cycles: 1,
            sets_per_group: 64,
            fraction_b: vec![vec![0.9, 0.1], vec![f64::NAN, 0.4]],
        };
        let art = map.ascii();
        let lines: Vec<&str> = art.lines().collect();
        assert_eq!(lines.len(), 2, "one line per set group");
        assert_eq!(lines[0], "##", "group 1: LRU in both quanta");
        assert_eq!(lines[1], ". ", "group 0: LFU then no-data");
    }

    #[test]
    #[should_panic(expected = "unknown benchmark")]
    fn unknown_benchmark_panics() {
        let _ = fig07_phase_map("not-a-benchmark", 1000, 1000, 4);
    }
}
