//! Section 3.2: SRAM storage arithmetic.

use crate::report::Table;
use adaptive_cache::overhead::StorageModel;
use adaptive_cache::AdaptiveConfig;
use cache_sim::{Geometry, TagMode};

/// Regenerates the paper's storage numbers: total SRAM (KB) and percent
/// overhead for the conventional cache and the adaptive variants, for
/// 64 B and 128 B lines.
pub fn storage_table() -> Table {
    let mut t = Table::new(
        "Section 3.2: SRAM storage requirements (512KB 8-way L2, 40-bit PA)",
        "organisation",
        vec!["total KB".into(), "overhead %".into()],
    );
    for (line, label) in [(64usize, "64B lines"), (128, "128B lines")] {
        let geom = Geometry::new(512 * 1024, line, 8).unwrap();
        let m = StorageModel::new(geom);
        let conv = m.conventional_bytes() as f64 / 1024.0;
        t.push_row(format!("conventional ({label})"), vec![conv, 0.0]);
        for (tags, name) in [
            (TagMode::Full, "full tags"),
            (TagMode::PartialLow { bits: 8 }, "8-bit tags"),
        ] {
            let cfg = AdaptiveConfig::paper_full_tags().shadow_tag_mode(tags);
            t.push_row(
                format!("adaptive {name} ({label})"),
                vec![
                    m.adaptive_bytes(&cfg) as f64 / 1024.0,
                    m.adaptive_overhead_pct(&cfg),
                ],
            );
        }
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproduces_paper_numbers() {
        let t = storage_table();
        let conv = t.row("conventional (64B lines)").unwrap()[0];
        assert_eq!(conv, 544.0);
        let full = t.row("adaptive full tags (64B lines)").unwrap();
        assert_eq!(full[0], 598.0);
        let partial = t.row("adaptive 8-bit tags (64B lines)").unwrap();
        assert_eq!(partial[0], 566.0);
        assert!((partial[1] - 4.0).abs() < 0.1, "paper: +4.0%");
        let wide = t.row("adaptive 8-bit tags (128B lines)").unwrap();
        assert!((wide[1] - 2.1).abs() < 0.15, "paper: 2.1%");
    }
}
