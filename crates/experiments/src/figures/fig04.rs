//! Figure 4: cycles-per-instruction for each benchmark in the primary set,
//! for the adaptive policy and its component policies.

use crate::report::Table;
use crate::runner::{parallel_map, run_timed, L2Kind};
use cpu_model::CpuConfig;
use workloads::primary_suite;

/// Regenerates Figure 4 (lower is better).
pub fn fig04_cpi(insts: u64) -> Table {
    let suite = primary_suite();
    let kinds = L2Kind::headline_trio();
    let config = CpuConfig::paper_default();
    let mut table = Table::new(
        "Figure 4: cycles per instruction (512KB, 8-way L2)",
        "benchmark",
        kinds.iter().map(|k| k.label()).collect(),
    );
    let rows = parallel_map(&suite, |b| {
        let values: Vec<f64> = kinds
            .iter()
            .map(|k| run_timed(b, k, config, insts).expect("paper geometry is valid").cpi())
            .collect();
        (b.name.to_string(), values)
    });
    for (label, values) in rows {
        table.push_row(label, values);
    }
    table.push_average();
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[cfg_attr(debug_assertions, ignore = "simulation-heavy; run with --release")]
    fn fig04_shape_holds() {
        let t = fig04_cpi(300_000);
        assert_eq!(t.rows.len(), 27);
        let avg = t.row("Average").unwrap();
        let (adaptive, _lfu, lru) = (avg[0], avg[1], avg[2]);
        assert!(adaptive > 0.2, "CPI must be physical, got {adaptive}");
        assert!(
            adaptive < lru * 1.02,
            "adaptive CPI ({adaptive:.2}) must not lose to LRU ({lru:.2})"
        );
    }
}
