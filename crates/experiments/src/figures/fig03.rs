//! Figure 3: L2 misses-per-thousand-instructions for each benchmark in the
//! primary set, for the adaptive policy and its component policies.

use crate::report::Table;
use crate::runner::{parallel_map, run_functional_l2, L2Kind, PAPER_L2};
use workloads::primary_suite;

/// Regenerates Figure 3 (lower is better).
pub fn fig03_mpki(insts: u64) -> Table {
    let suite = primary_suite();
    let kinds = L2Kind::headline_trio();
    let mut table = Table::new(
        "Figure 3: L2 misses per thousand instructions (512KB, 8-way)",
        "benchmark",
        kinds.iter().map(|k| k.label()).collect(),
    );
    let rows = parallel_map(&suite, |b| {
        let values: Vec<f64> = kinds
            .iter()
            .map(|k| run_functional_l2(b, k, PAPER_L2, insts).expect("paper geometry is valid").stats.l2_mpki())
            .collect();
        (b.name.to_string(), values)
    });
    for (label, values) in rows {
        table.push_row(label, values);
    }
    table.push_average();
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[cfg_attr(debug_assertions, ignore = "simulation-heavy; run with --release")]
    fn fig03_shape_holds() {
        // Small instruction budget: we only check structural properties.
        let t = fig03_mpki(400_000);
        assert_eq!(t.rows.len(), 27, "26 benchmarks + average");
        let avg = t.row("Average").unwrap();
        let (adaptive, lfu, lru) = (avg[0], avg[1], avg[2]);
        assert!(
            adaptive < lru,
            "adaptive ({adaptive:.1}) must beat LRU ({lru:.1}) on average"
        );
        assert!(
            adaptive < lfu * 1.05,
            "adaptive ({adaptive:.1}) must be at worst marginally above LFU ({lfu:.1})"
        );
    }
}
