//! Figure 10: effect of store-buffer size on the adaptive benefit.
//!
//! "The benefit of adaptive caching is not only due to read misses but
//! also due to store buffer stalls. As the number of store buffer entries
//! increases ... the overall number of opportunities for adaptive caching
//! to provide a benefit \[decreases\]. However, more than half of the
//! benefit remains even for an unrealistically large 256-entry store
//! buffer." Expected shape: a graceful decay of the CPI improvement as
//! entries grow, with both absolute CPIs falling.

use crate::report::Table;
use crate::runner::{parallel_map, run_timed, L2Kind};
use adaptive_cache::AdaptiveConfig;
use cache_sim::PolicyKind;
use cpu_model::CpuConfig;
use workloads::primary_suite;

/// The store-buffer capacities swept (the paper's x axis is irregular).
pub const STORE_BUFFER_SIZES: [u32; 9] = [1, 2, 4, 8, 16, 32, 64, 128, 256];

/// Regenerates Figure 10: average CPI of LRU and adaptive plus the
/// percentage improvement, per store-buffer capacity.
pub fn fig10_store_buffer(insts: u64) -> Table {
    let suite = primary_suite();
    let mut table = Table::new(
        "Figure 10: effect of store-buffer size on adaptive performance",
        "entries",
        vec![
            "LRU avg CPI".into(),
            "Adaptive avg CPI".into(),
            "improvement %".into(),
        ],
    );
    for entries in STORE_BUFFER_SIZES {
        let config = CpuConfig::paper_default().store_buffer(entries);
        let kinds = [
            L2Kind::Plain(PolicyKind::Lru),
            L2Kind::Adaptive(AdaptiveConfig::paper_full_tags()),
        ];
        let results = parallel_map(&suite, |b| {
            (
                run_timed(b, &kinds[0], config, insts).expect("paper geometry is valid").cpi(),
                run_timed(b, &kinds[1], config, insts).expect("paper geometry is valid").cpi(),
            )
        });
        let n = results.len() as f64;
        let lru = results.iter().map(|r| r.0).sum::<f64>() / n;
        let adaptive = results.iter().map(|r| r.1).sum::<f64>() / n;
        table.push_row(
            entries.to_string(),
            vec![lru, adaptive, 100.0 * (lru - adaptive) / lru],
        );
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[cfg_attr(debug_assertions, ignore = "simulation-heavy; run with --release")]
    fn bigger_store_buffers_lower_cpi() {
        let t = fig10_store_buffer(250_000);
        let one = t.row("1").unwrap();
        let big = t.row("256").unwrap();
        assert!(
            one[0] > big[0],
            "1-entry LRU CPI ({}) must exceed 256-entry ({})",
            one[0],
            big[0]
        );
        // The benefit persists at 256 entries.
        assert!(big[2] > 0.0, "no adaptive benefit left at 256 entries");
    }
}
