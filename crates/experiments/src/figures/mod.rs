//! One module per table/figure of the paper's evaluation (Section 4).
//!
//! | module | paper artefact |
//! |---|---|
//! | [`table1`] | Table 1 — simulated processor configuration |
//! | [`fig03`] | Figure 3 — L2 MPKI, Adaptive vs LFU vs LRU |
//! | [`fig04`] | Figure 4 — CPI, same three organisations |
//! | [`fig05`] | Figure 5 — partial-tag size sweep |
//! | [`fig06`] | Figure 6 — adaptive vs bigger conventional caches |
//! | [`fig07`] | Figure 7 — per-set policy-choice phase maps |
//! | [`fig08`] | Figure 8 — FIFO/MRU adaptivity |
//! | [`fig09`] | Figure 9 — benefit vs associativity |
//! | [`fig10`] | Figure 10 — store-buffer size sweep |
//! | [`sec44`] | Section 4.4 — five-policy adaptivity |
//! | [`sec46`] | Section 4.6 — adaptivity at the L1s |
//! | [`sec47`] | Section 4.7 — SBAR set sampling |
//! | [`headline()`](headline()) | Section 4.2 — headline scalars over both suites |
//! | [`storage`] | Section 3.2 — SRAM storage overheads |

pub mod fig03;
pub mod fig04;
pub mod fig05;
pub mod fig06;
pub mod fig07;
pub mod fig08;
pub mod fig09;
pub mod fig10;
pub mod headline;
pub mod sec44;
pub mod sec46;
pub mod sec47;
pub mod storage;
pub mod table1;

pub use fig03::fig03_mpki;
pub use fig04::fig04_cpi;
pub use fig05::fig05_partial_tags;
pub use fig06::fig06_vs_bigger;
pub use fig07::{fig07_phase_map, PhaseMap};
pub use fig08::fig08_fifo_mru;
pub use fig09::fig09_associativity;
pub use fig10::fig10_store_buffer;
pub use headline::headline;
pub use sec44::sec44_five_policy;
pub use sec46::sec46_l1_adaptivity;
pub use sec47::sec47_sbar;
pub use storage::storage_table;
pub use table1::table1_config;
