//! Figure 6: CPI comparison of partially-tagged adaptive replacement
//! against simply building a bigger conventional cache.
//!
//! The adaptive cache costs +4.0% storage; the 9-way 576 KB and 10-way
//! 640 KB LRU caches cost +12.5% and +25%. The paper's punchline: the
//! adaptive cache still performs slightly better than the 10-way cache at
//! less than a sixth of the overhead.

use crate::report::Table;
use crate::runner::{parallel_map, run_timed_with_geom, L2Kind};
use adaptive_cache::AdaptiveConfig;
use cache_sim::{Geometry, PolicyKind};
use cpu_model::CpuConfig;
use workloads::primary_suite;

/// The five organisations of Figure 6: `(label, L2Kind, geometry)`.
pub fn organisations() -> Vec<(String, L2Kind, Geometry)> {
    let base = Geometry::new(512 * 1024, 64, 8).unwrap();
    let nine = Geometry::with_sets(1024, 64, 9).unwrap();
    let ten = Geometry::with_sets(1024, 64, 10).unwrap();
    vec![
        (
            "Adaptive (512KB, full tags)".into(),
            L2Kind::Adaptive(AdaptiveConfig::paper_full_tags()),
            base,
        ),
        (
            "Adaptive (512KB, 8-bit tags)".into(),
            L2Kind::Adaptive(AdaptiveConfig::paper_default()),
            base,
        ),
        ("LRU (512KB, 8-way)".into(), L2Kind::Plain(PolicyKind::Lru), base),
        ("LRU (576KB, 9-way)".into(), L2Kind::Plain(PolicyKind::Lru), nine),
        ("LRU (640KB, 10-way)".into(), L2Kind::Plain(PolicyKind::Lru), ten),
    ]
}

/// Regenerates Figure 6 (CPI per benchmark; lower is better).
pub fn fig06_vs_bigger(insts: u64) -> Table {
    let suite = primary_suite();
    let orgs = organisations();
    let config = CpuConfig::paper_default();
    let mut table = Table::new(
        "Figure 6: CPI of partially-tagged adaptive replacement vs bigger conventional caches",
        "benchmark",
        orgs.iter().map(|(l, _, _)| l.clone()).collect(),
    );
    let rows = parallel_map(&suite, |b| {
        let values: Vec<f64> = orgs
            .iter()
            .map(|(_, kind, geom)| run_timed_with_geom(b, kind, config, *geom, insts).cpi())
            .collect();
        (b.name.to_string(), values)
    });
    for (label, values) in rows {
        table.push_row(label, values);
    }
    table.push_average();
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn organisation_geometries() {
        let orgs = organisations();
        assert_eq!(orgs.len(), 5);
        assert_eq!(orgs[3].2.size_bytes(), 576 * 1024);
        assert_eq!(orgs[4].2.size_bytes(), 640 * 1024);
        assert_eq!(orgs[4].2.num_sets(), 1024);
    }

    #[test]
    #[cfg_attr(debug_assertions, ignore = "simulation-heavy; run with --release")]
    fn adaptive_beats_plain_lru_of_same_size() {
        let t = fig06_vs_bigger(250_000);
        let avg = t.row("Average").unwrap();
        // adaptive full (0) and 8-bit (1) vs same-size LRU (2)
        assert!(avg[0] <= avg[2] * 1.01, "{avg:?}");
        assert!(avg[1] <= avg[2] * 1.02, "{avg:?}");
        // bigger caches help LRU but stay in a sane range
        assert!(avg[4] <= avg[2] * 1.01, "10-way should not lose to 8-way");
    }
}
