//! Figure 9: overall benefit (average-CPI improvement and average-miss
//! reduction) versus L2 associativity, at a constant 512 KB capacity.
//!
//! Expected shape: the benefit persists across 4..32 ways and grows
//! slightly for highly-associative caches ("our technique would be
//! effective for future highly-associative last-level caches").

use crate::report::Table;
use crate::runner::{parallel_map, run_timed, L2Kind};
use adaptive_cache::AdaptiveConfig;
use cache_sim::PolicyKind;
use cpu_model::CpuConfig;
use workloads::primary_suite;

/// The associativities swept (512 KB each; the paper shows 4..32).
pub const ASSOCIATIVITIES: [usize; 4] = [4, 8, 16, 32];

/// Regenerates Figure 9: percentage improvement of average CPI and
/// percentage reduction of average misses, adaptive vs LRU.
pub fn fig09_associativity(insts: u64) -> Table {
    let suite = primary_suite();
    let mut table = Table::new(
        "Figure 9: benefit vs associativity (512KB L2)",
        "associativity",
        vec!["CPI improvement %".into(), "miss reduction %".into()],
    );
    for assoc in ASSOCIATIVITIES {
        let config = CpuConfig::paper_default().l2_shape(512 * 1024, assoc);
        let kinds = [
            L2Kind::Adaptive(AdaptiveConfig::paper_full_tags()),
            L2Kind::Plain(PolicyKind::Lru),
        ];
        let results = parallel_map(&suite, |b| {
            let a = run_timed(b, &kinds[0], config, insts).expect("paper geometry is valid");
            let l = run_timed(b, &kinds[1], config, insts).expect("paper geometry is valid");
            (a.cpi(), l.cpi(), a.l2.misses as f64, l.l2.misses as f64)
        });
        let n = results.len() as f64;
        let avg = |f: fn(&(f64, f64, f64, f64)) -> f64| results.iter().map(f).sum::<f64>() / n;
        let (a_cpi, l_cpi) = (avg(|r| r.0), avg(|r| r.1));
        let (a_miss, l_miss) = (avg(|r| r.2), avg(|r| r.3));
        table.push_row(
            format!("{assoc}-way"),
            vec![
                100.0 * (l_cpi - a_cpi) / l_cpi,
                100.0 * (l_miss - a_miss) / l_miss,
            ],
        );
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[cfg_attr(debug_assertions, ignore = "simulation-heavy; run with --release")]
    fn benefit_exists_across_associativities() {
        let t = fig09_associativity(500_000);
        assert_eq!(t.rows.len(), 4);
        for (label, v) in &t.rows {
            assert!(
                v[1] > -2.0,
                "{label}: adaptive should not increase misses materially ({v:?})"
            );
        }
        // The 8-way design point must show a real benefit.
        let eight = t.row("8-way").unwrap();
        assert!(eight[1] > 3.0, "8-way miss reduction too small: {eight:?}");
    }
}
