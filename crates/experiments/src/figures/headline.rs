//! Section 4.2 headline scalars.
//!
//! Paper values: LRU/LFU adaptivity reduces average L2 misses by ~19%
//! (primary set) / 18.6% (all 100 programs) and average CPI by 12.9%
//! (primary) / 8.4% (all); adaptivity never increases a program's misses
//! by more than 2.7% (tigr) or its CPI by more than 1.2% (unepic).

use crate::report::Table;
use crate::runner::{parallel_map, run_functional_l2, run_timed, L2Kind, PAPER_L2};
use adaptive_cache::AdaptiveConfig;
use cache_sim::PolicyKind;
use cpu_model::CpuConfig;
use workloads::{extended_suite, primary_suite};

/// Regenerates the headline scalars over the primary and extended suites.
///
/// Rows: average miss reduction %, average CPI improvement %, worst-case
/// per-benchmark miss increase % and CPI increase % (all adaptive vs LRU).
pub fn headline(insts: u64) -> Table {
    let mut table = Table::new(
        "Section 4.2: headline adaptive vs LRU scalars",
        "metric",
        vec!["primary (26)".into(), "extended (100)".into()],
    );

    let adaptive = L2Kind::Adaptive(AdaptiveConfig::paper_full_tags());
    let lru = L2Kind::Plain(PolicyKind::Lru);
    let config = CpuConfig::paper_default();

    let mut miss_red = Vec::new();
    let mut cpi_imp = Vec::new();
    let mut worst_miss = Vec::new();
    let mut worst_cpi = Vec::new();

    for suite in [primary_suite(), extended_suite()] {
        let rows = parallel_map(&suite, |b| {
            let geom_ok = "paper geometry is valid";
            let am = run_functional_l2(b, &adaptive, PAPER_L2, insts).expect(geom_ok).stats.l2_misses as f64;
            let lm = run_functional_l2(b, &lru, PAPER_L2, insts).expect(geom_ok).stats.l2_misses as f64;
            let ac = run_timed(b, &adaptive, config, insts).expect(geom_ok).cpi();
            let lc = run_timed(b, &lru, config, insts).expect(geom_ok).cpi();
            (b.name.to_string(), am, lm, ac, lc)
        });
        let n = rows.len() as f64;
        let avg_am = rows.iter().map(|r| r.1).sum::<f64>() / n;
        let avg_lm = rows.iter().map(|r| r.2).sum::<f64>() / n;
        let avg_ac = rows.iter().map(|r| r.3).sum::<f64>() / n;
        let avg_lc = rows.iter().map(|r| r.4).sum::<f64>() / n;
        miss_red.push(100.0 * (avg_lm - avg_am) / avg_lm);
        cpi_imp.push(100.0 * (avg_lc - avg_ac) / avg_lc);
        worst_miss.push(
            rows.iter()
                .filter(|r| r.2 > 0.0)
                .map(|r| 100.0 * (r.1 - r.2) / r.2)
                .fold(f64::NEG_INFINITY, f64::max),
        );
        worst_cpi.push(
            rows.iter()
                .map(|r| 100.0 * (r.3 - r.4) / r.4)
                .fold(f64::NEG_INFINITY, f64::max),
        );
    }

    table.push_row("avg miss reduction %", miss_red);
    table.push_row("avg CPI improvement %", cpi_imp);
    table.push_row("worst-case miss increase %", worst_miss);
    table.push_row("worst-case CPI increase %", worst_cpi);
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[cfg_attr(debug_assertions, ignore = "simulation-heavy; run with --release")]
    fn headline_directions() {
        let t = headline(400_000);
        let miss = t.row("avg miss reduction %").unwrap().to_vec();
        let cpi = t.row("avg CPI improvement %").unwrap().to_vec();
        assert!(miss[0] > 3.0, "primary miss reduction too small: {miss:?}");
        assert!(cpi[0] > 0.0, "primary CPI improvement absent: {cpi:?}");
        // Dilution: the extended-set averages improve less than primary.
        assert!(
            miss[1] <= miss[0] + 1.0,
            "extended set should dilute the benefit: {miss:?}"
        );
    }
}
