//! Section 4.7: eliminating the overheads with set sampling (SBAR).
//!
//! "For the programs in our primary set, the SBAR-like cache results in a
//! 12.5% improvement in average CPI while our regular adaptive cache is
//! only slightly better at 12.9%. ... the SBAR-like cache is a little
//! less robust." Overheads: 0.16% (full leader tags) and 0.09% (8-bit
//! leader tags) vs 4.0% for the partially-tagged adaptive cache.

use crate::report::Table;
use crate::runner::{parallel_map, run_timed, L2Kind};
use adaptive_cache::overhead::StorageModel;
use adaptive_cache::{AdaptiveConfig, SbarConfig};
use cache_sim::{Geometry, PolicyKind};
use cpu_model::CpuConfig;
use workloads::primary_suite;

/// Regenerates the Section 4.7 comparison: per-benchmark CPI for LRU, the
/// regular adaptive cache, the SBAR-like cache and its partial-tag
/// variant.
pub fn sec47_sbar(insts: u64) -> Table {
    let suite = primary_suite();
    let config = CpuConfig::paper_default();
    let kinds = [
        L2Kind::Plain(PolicyKind::Lru),
        L2Kind::Adaptive(AdaptiveConfig::paper_full_tags()),
        L2Kind::Sbar(SbarConfig::paper_default()),
        L2Kind::Sbar(SbarConfig::paper_partial_tags()),
    ];
    let mut table = Table::new(
        "Section 4.7: SBAR-like set sampling vs full adaptivity (CPI)",
        "benchmark",
        vec![
            "LRU".into(),
            "Adaptive".into(),
            "SBAR".into(),
            "SBAR (8-bit)".into(),
        ],
    );
    let rows = parallel_map(&suite, |b| {
        let values: Vec<f64> = kinds
            .iter()
            .map(|k| run_timed(b, k, config, insts).expect("paper geometry is valid").cpi())
            .collect();
        (b.name.to_string(), values)
    });
    for (label, values) in rows {
        table.push_row(label, values);
    }
    table.push_average();
    table
}

/// The Section 4.7 overhead comparison as a table.
pub fn sec47_overheads() -> Table {
    let geom = Geometry::new(512 * 1024, 64, 8).unwrap();
    let m = StorageModel::new(geom);
    let mut t = Table::new(
        "Section 4.7: storage overheads of the organisations compared",
        "organisation",
        vec!["overhead %".into()],
    );
    t.push_row(
        "Adaptive (full tags)",
        vec![m.adaptive_overhead_pct(&AdaptiveConfig::paper_full_tags())],
    );
    t.push_row(
        "Adaptive (8-bit tags)",
        vec![m.adaptive_overhead_pct(&AdaptiveConfig::paper_default())],
    );
    t.push_row(
        "SBAR (full leader tags)",
        vec![m.sbar_overhead_pct(&SbarConfig::paper_default())],
    );
    t.push_row(
        "SBAR (8-bit leader tags)",
        vec![m.sbar_overhead_pct(&SbarConfig::paper_partial_tags())],
    );
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[cfg_attr(debug_assertions, ignore = "simulation-heavy; run with --release")]
    fn sbar_recovers_most_of_the_benefit() {
        let t = sec47_sbar(300_000);
        let avg = t.row("Average").unwrap();
        let (lru, adaptive, sbar, sbar8) = (avg[0], avg[1], avg[2], avg[3]);
        let gain_adaptive = (lru - adaptive) / lru;
        let gain_sbar = (lru - sbar) / lru;
        assert!(gain_adaptive > 0.0, "adaptive shows no CPI gain");
        assert!(
            gain_sbar > gain_adaptive * 0.5,
            "SBAR ({gain_sbar:.3}) should recover most of the adaptive gain ({gain_adaptive:.3})"
        );
        assert!(
            (sbar8 - sbar).abs() / sbar < 0.05,
            "partial leader tags should be nearly identical"
        );
    }

    #[test]
    fn overhead_ordering() {
        let t = sec47_overheads();
        let vals: Vec<f64> = t.rows.iter().map(|(_, v)| v[0]).collect();
        assert!(vals[0] > vals[1], "full tags cost more than partial");
        assert!(vals[1] > vals[2], "SBAR is far cheaper than adaptive");
        assert!(vals[2] > vals[3], "partial leader tags cheapest");
        assert!(vals[3] < 0.12, "SBAR partial must be ~0.09%");
    }
}
