//! Figure 8: L2 MPKI for a policy adapting between FIFO and MRU.
//!
//! "An interesting combination in that MRU on its own is typically a very
//! bad replacement algorithm. Yet for programs with large linear loops,
//! MRU will outperform more reasonable policies" — the adaptive policy
//! must tightly track the better of the two.

use crate::report::Table;
use crate::runner::{parallel_map, run_functional_l2, L2Kind, PAPER_L2};
use adaptive_cache::AdaptiveConfig;
use cache_sim::PolicyKind;
use workloads::primary_suite;

/// Regenerates Figure 8 (lower is better).
pub fn fig08_fifo_mru(insts: u64) -> Table {
    let suite = primary_suite();
    let kinds = [
        L2Kind::Adaptive(AdaptiveConfig::with_policies(
            PolicyKind::Fifo,
            PolicyKind::Mru,
        )),
        L2Kind::Plain(PolicyKind::Fifo),
        L2Kind::Plain(PolicyKind::Mru),
    ];
    let mut table = Table::new(
        "Figure 8: L2 MPKI adapting between FIFO and MRU (512KB, 8-way)",
        "benchmark",
        kinds.iter().map(|k| k.label()).collect(),
    );
    let rows = parallel_map(&suite, |b| {
        let values: Vec<f64> = kinds
            .iter()
            .map(|k| run_functional_l2(b, k, PAPER_L2, insts).expect("paper geometry is valid").stats.l2_mpki())
            .collect();
        (b.name.to_string(), values)
    });
    for (label, values) in rows {
        table.push_row(label, values);
    }
    table.push_average();
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[cfg_attr(debug_assertions, ignore = "simulation-heavy; run with --release")]
    fn adaptive_tracks_better_component() {
        let t = fig08_fifo_mru(1_000_000);
        let avg = t.row("Average").unwrap();
        let (adaptive, fifo, mru) = (avg[0], avg[1], avg[2]);
        assert!(
            adaptive <= fifo.min(mru) * 1.10,
            "adaptive {adaptive:.1} vs FIFO {fifo:.1} / MRU {mru:.1}"
        );
        // Each component must lose badly on at least one benchmark — the
        // premise that makes FIFO/MRU adaptivity interesting. (On this
        // scan-heavy suite MRU is strong on *average*; what matters is
        // that neither policy is safe everywhere.)
        let mru_disaster = t
            .rows
            .iter()
            .filter(|(n, _)| n != "Average")
            .any(|(_, v)| v[2] > v[1] * 1.2);
        let fifo_disaster = t
            .rows
            .iter()
            .filter(|(n, _)| n != "Average")
            .any(|(_, v)| v[1] > v[2] * 1.2);
        assert!(mru_disaster, "MRU never collapses — premise broken");
        assert!(fifo_disaster, "FIFO never collapses — premise broken");
    }

    #[test]
    #[cfg_attr(debug_assertions, ignore = "simulation-heavy; run with --release")]
    fn mru_wins_somewhere() {
        // The paper: "MRU is only beneficial for one of the gcc inputs, as
        // well as for the art benchmark" — at least one benchmark must
        // have MRU strictly better than FIFO.
        let t = fig08_fifo_mru(1_000_000);
        let better_somewhere = t
            .rows
            .iter()
            .filter(|(name, _)| name != "Average")
            .any(|(_, v)| v[2] < v[1] * 0.97);
        assert!(better_somewhere, "MRU never wins: premise of Fig 8 broken");
    }
}
