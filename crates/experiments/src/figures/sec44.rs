//! Section 4.4: generalised five-policy adaptivity (LRU, LFU, FIFO, MRU,
//! Random).
//!
//! "The combination of all five policies was not clearly superior to just
//! combining LRU and LFU ... the cumulative CPI over our primary
//! evaluation set was virtually identical to that of LRU/LFU adaptivity."

use crate::report::Table;
use crate::runner::{parallel_map, run_timed, L2Kind};
use adaptive_cache::{AdaptiveConfig, MultiConfig};
use cpu_model::CpuConfig;
use workloads::primary_suite;

/// Regenerates the Section 4.4 comparison: CPI of five-policy adaptivity
/// vs LRU/LFU adaptivity per benchmark.
pub fn sec44_five_policy(insts: u64) -> Table {
    let suite = primary_suite();
    let config = CpuConfig::paper_default();
    let kinds = [
        L2Kind::Multi(MultiConfig::paper_five_policy()),
        L2Kind::Adaptive(AdaptiveConfig::paper_full_tags()),
    ];
    let mut table = Table::new(
        "Section 4.4: five-policy adaptivity vs LRU/LFU adaptivity (CPI)",
        "benchmark",
        vec!["Adaptive x5".into(), "Adaptive LRU/LFU".into()],
    );
    let rows = parallel_map(&suite, |b| {
        let values: Vec<f64> = kinds
            .iter()
            .map(|k| run_timed(b, k, config, insts).expect("paper geometry is valid").cpi())
            .collect();
        (b.name.to_string(), values)
    });
    for (label, values) in rows {
        table.push_row(label, values);
    }
    table.push_average();
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[cfg_attr(debug_assertions, ignore = "simulation-heavy; run with --release")]
    fn five_policy_is_not_clearly_superior() {
        let t = sec44_five_policy(250_000);
        let avg = t.row("Average").unwrap();
        let (five, two) = (avg[0], avg[1]);
        // "virtually identical": within ~8% either way at test scale.
        assert!(
            (five - two).abs() / two < 0.08,
            "five-policy {five:.3} vs two-policy {two:.3}"
        );
    }
}
