//! Table 1: the simulated processor configuration.

use cpu_model::CpuConfig;

/// Renders Table 1 as readable text.
pub fn table1_config() -> String {
    let c = CpuConfig::paper_default();
    format!(
        "Table 1. Simulated processor configuration\n\
         ------------------------------------------\n\
         Instruction Cache   {}KB, {}B line-size, {}-way LRU, {} cycles\n\
         Data Cache          {}KB, {}B line-size, {}-way LRU, {} cycles\n\
         Branch Predictor    16KB gshare / 16KB bimodal / 16KB meta; 4K-entry, 4-way BTB\n\
         Decode/Issue        {}-wide; {} RS entries, {} ROB entries\n\
         Execution units     {} Integer ALUs, {} Integer Mult/Div, {} FP ALUs, {} FP Mult/Div, {} Memory ports\n\
         Unit latencies      IALU ({}), IMULT/IDIV ({}), FPADD ({}), FPDIV ({})\n\
         Unified L2 Cache    {}KB, {}B line-size, {}-way, pluggable replacement\n\
                             (adaptive LRU/LFU: history m = 8, 5-bit LFU counters),\n\
                             {} cycle hit latency, {}-entry store buffer\n\
         Memory              {} cycle latency (Table 1 prints \"12\"; see CpuConfig docs)\n\
         Bus                 {}B-wide split-transaction bus; processor:bus ratio {}:1\n",
        c.l1i.size_bytes / 1024,
        c.l1i.line_bytes,
        c.l1i.associativity,
        c.l1i.hit_latency,
        c.l1d.size_bytes / 1024,
        c.l1d.line_bytes,
        c.l1d.associativity,
        c.l1d.hit_latency,
        c.width,
        c.rs_entries,
        c.rob_entries,
        c.int_alu_units,
        c.int_mul_units,
        c.fp_alu_units,
        c.fp_div_units,
        c.mem_ports,
        c.lat_int_alu,
        c.lat_int_mul,
        c.lat_fp_add,
        c.lat_fp_div,
        c.l2.size_bytes / 1024,
        c.l2.line_bytes,
        c.l2.associativity,
        c.l2.hit_latency,
        c.store_buffer_entries,
        c.mem_latency,
        c.bus_bytes,
        c.bus_ratio,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_mentions_key_parameters() {
        let t = table1_config();
        for needle in [
            "512KB",
            "8-way",
            "64 ROB",
            "32 RS",
            "15 cycle",
            "4-entry store buffer",
            "gshare",
        ] {
            assert!(t.contains(needle), "missing {needle} in table 1");
        }
    }
}
