//! Figure 5: effect of partial-tag size on average MPKI and CPI.
//!
//! The paper sweeps full, 12-, 10-, 8-, 6- and 4-bit low-order partial
//! tags for the shadow arrays and reports the percentage increase of the
//! primary-set averages relative to full tags. The expected shape: under
//! 1% degradation for 6 bits or more, visible degradation at 4 bits.

use crate::report::Table;
use crate::runner::{parallel_map, run_functional_l2, run_timed, L2Kind, PAPER_L2};
use adaptive_cache::AdaptiveConfig;
use cache_sim::TagMode;
use cpu_model::CpuConfig;
use workloads::primary_suite;

/// The tag configurations of Figure 5, in paper order.
pub fn tag_sweep() -> Vec<(String, TagMode)> {
    let mut v = vec![("Full".to_string(), TagMode::Full)];
    for bits in [12u32, 10, 8, 6, 4] {
        v.push((format!("{bits}-bit"), TagMode::PartialLow { bits }));
    }
    v
}

/// Regenerates Figure 5: average MPKI and CPI per tag size, plus the
/// percentage increase over full tags.
pub fn fig05_partial_tags(insts: u64) -> Table {
    let suite = primary_suite();
    let sweep = tag_sweep();
    let mut table = Table::new(
        "Figure 5: impact of partial tags on the adaptive cache (primary-set averages)",
        "tag size",
        vec![
            "avg MPKI".into(),
            "avg CPI".into(),
            "MPKI increase %".into(),
            "CPI increase %".into(),
        ],
    );

    // One (mpki, cpi) average pair per tag mode; benchmarks in parallel.
    let per_mode: Vec<(f64, f64)> = sweep
        .iter()
        .map(|(_, mode)| {
            let kind = L2Kind::Adaptive(AdaptiveConfig::paper_full_tags().shadow_tag_mode(*mode));
            let results = parallel_map(&suite, |b| {
                let mpki = run_functional_l2(b, &kind, PAPER_L2, insts)
                    .expect("paper geometry is valid")
                    .stats
                    .l2_mpki();
                let cpi = run_timed(b, &kind, CpuConfig::paper_default(), insts)
                    .expect("paper geometry is valid")
                    .cpi();
                (mpki, cpi)
            });
            let n = results.len() as f64;
            (
                results.iter().map(|r| r.0).sum::<f64>() / n,
                results.iter().map(|r| r.1).sum::<f64>() / n,
            )
        })
        .collect();

    let (base_mpki, base_cpi) = per_mode[0];
    for ((label, _), (mpki, cpi)) in sweep.iter().zip(&per_mode) {
        table.push_row(
            label.clone(),
            vec![
                *mpki,
                *cpi,
                100.0 * (mpki - base_mpki) / base_mpki,
                100.0 * (cpi - base_cpi) / base_cpi,
            ],
        );
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_order_matches_paper() {
        let s = tag_sweep();
        assert_eq!(s.len(), 6);
        assert_eq!(s[0].0, "Full");
        assert_eq!(s[3].0, "8-bit");
        assert_eq!(s[5].0, "4-bit");
    }

    #[test]
    #[cfg_attr(debug_assertions, ignore = "simulation-heavy; run with --release")]
    fn eight_bit_tags_track_full_tags() {
        let t = fig05_partial_tags(250_000);
        let full = t.row("Full").unwrap()[0];
        let eight = t.row("8-bit").unwrap()[0];
        assert!(
            (eight - full).abs() / full < 0.05,
            "8-bit MPKI ({eight:.2}) must track full tags ({full:.2})"
        );
    }
}
