//! Section 4.6: adaptivity at other levels of the hierarchy.
//!
//! "In a 16KB instruction cache, the adaptive approach reduces the
//! average MPKI rate by about 12%, whereas in the data cache the miss
//! rate reduction was less than 1%. This did not result in any meaningful
//! performance improvement (<0.1%)."

use crate::report::Table;
use crate::runner::parallel_map;
use adaptive_cache::{AdaptiveCache, AdaptiveConfig};
use cache_sim::{Cache, Geometry, PolicyKind};
use cpu_model::{l1_geometry, CpuConfig, Hierarchy, Pipeline};
use workloads::primary_suite;

/// Regenerates the Section 4.6 numbers: average L1I MPKI, L1D MPKI and
/// CPI with conventional vs adaptive L1 caches (L2 stays conventional
/// LRU in both, isolating the L1 effect).
pub fn sec46_l1_adaptivity(insts: u64) -> Table {
    let suite = primary_suite();
    let config = CpuConfig::paper_default();
    let l2_geom = Geometry::new(
        config.l2.size_bytes,
        config.l2.line_bytes,
        config.l2.associativity,
    )
    .unwrap();

    let results = parallel_map(&suite, |b| {
        // Baseline: conventional LRU L1s.
        let base = Pipeline::new(config, Cache::new(l2_geom, PolicyKind::Lru, 1))
            .run(b.spec.generator(), insts);

        // Adaptive L1I and L1D (LRU/LFU, full tags, m = associativity).
        let l1i = AdaptiveCache::new(
            l1_geometry(config.l1i),
            AdaptiveConfig::paper_full_tags().history_kind(adaptive_cache::HistoryKind::BitVector {
                m: config.l1i.associativity as u32,
            }),
            0x11,
        );
        let l1d = AdaptiveCache::new(
            l1_geometry(config.l1d),
            AdaptiveConfig::paper_full_tags().history_kind(adaptive_cache::HistoryKind::BitVector {
                m: config.l1d.associativity as u32,
            }),
            0x1D,
        );
        let hierarchy =
            Hierarchy::with_l1s(l1i, l1d, Cache::new(l2_geom, PolicyKind::Lru, 1));
        let adaptive = Pipeline::with_hierarchy(config, hierarchy).run(b.spec.generator(), insts);
        (
            base.l1i_mpki(),
            base.l1d_mpki(),
            base.cpi(),
            adaptive.l1i_mpki(),
            adaptive.l1d_mpki(),
            adaptive.cpi(),
        )
    });

    type Row = (f64, f64, f64, f64, f64, f64);
    let n = results.len() as f64;
    let avg = |f: fn(&Row) -> f64| results.iter().map(f).sum::<f64>() / n;
    let mut table = Table::new(
        "Section 4.6: LRU/LFU-adaptive L1 instruction and data caches (primary-set averages)",
        "configuration",
        vec!["L1I MPKI".into(), "L1D MPKI".into(), "CPI".into()],
    );
    table.push_row(
        "conventional L1s",
        vec![avg(|r| r.0), avg(|r| r.1), avg(|r| r.2)],
    );
    table.push_row(
        "adaptive L1s",
        vec![avg(|r| r.3), avg(|r| r.4), avg(|r| r.5)],
    );
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[cfg_attr(debug_assertions, ignore = "simulation-heavy; run with --release")]
    fn l1_adaptivity_is_roughly_neutral_on_cpi() {
        let t = sec46_l1_adaptivity(250_000);
        let base = t.row("conventional L1s").unwrap().to_vec();
        let adap = t.row("adaptive L1s").unwrap().to_vec();
        // The paper: miss-rate changes at the L1 do not move CPI much.
        let delta = (adap[2] - base[2]).abs() / base[2];
        assert!(delta < 0.05, "adaptive L1s moved CPI by {delta:.3}");
        // And the data-cache miss rate does not get materially worse.
        assert!(adap[1] < base[1] * 1.10, "L1D MPKI regressed: {adap:?} vs {base:?}");
    }
}
