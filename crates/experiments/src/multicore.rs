//! Shared last-level caches in a multi-core environment — the paper's
//! first stated piece of future work:
//!
//! > "We plan on evaluating adaptive caching policies for shared
//! > last-level caches in a multi-core environment. We believe that the
//! > combination of memory traffic from dissimilar threads or
//! > applications will provide even more opportunities for the adaptive
//! > mechanism to help performance."
//!
//! This module implements that experiment functionally: N cores with
//! private L1 I/D caches share one L2 organisation; the cores' reference
//! streams are interleaved round-robin (a fair-bandwidth idealisation),
//! with each core's data placed in a disjoint region of the physical
//! address space, as distinct processes would be.

use crate::runner::L2Kind;
use cache_sim::{Address, Cache, CacheModel, CacheStats, Geometry, PolicyKind};
use cpu_model::CpuConfig;
use serde::{Deserialize, Serialize};
use workloads::{Benchmark, Inst, TraceGen};

/// Address-space offset between cores (1 GB apart: different regions,
/// same set index distribution).
const CORE_SPACING: u64 = 1 << 30;

/// Result of a shared-L2 run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SharedRunStats {
    /// Benchmarks run, in core order.
    pub benchmarks: Vec<String>,
    /// L2 organisation label.
    pub l2: String,
    /// Instructions executed per core.
    pub insts_per_core: u64,
    /// Per-core L1D miss counts (traffic each core pushed to the L2).
    pub l1d_misses: Vec<u64>,
    /// Shared-L2 statistics.
    pub l2_stats: CacheStats,
}

impl SharedRunStats {
    /// Shared-L2 misses per thousand instructions (all cores).
    pub fn l2_mpki(&self) -> f64 {
        let total = self.insts_per_core * self.benchmarks.len() as u64;
        self.l2_stats.mpki(total)
    }
}

struct Core {
    trace: TraceGen,
    l1i: Cache<PolicyKind>,
    l1d: Cache<PolicyKind>,
    l1i_geom: Geometry,
    l1d_geom: Geometry,
    base: u64,
    last_iblock: u64,
    retired: u64,
}

/// Runs `benches` on a shared L2 of kind `kind`, interleaving their
/// memory traffic round-robin, one instruction per core per turn.
///
/// # Panics
///
/// Panics if `benches` is empty.
pub fn run_shared_l2(benches: &[&Benchmark], kind: &L2Kind, insts_per_core: u64) -> SharedRunStats {
    assert!(!benches.is_empty(), "need at least one core");
    let config = CpuConfig::paper_default();
    let l2_geom = Geometry::new(
        config.l2.size_bytes,
        config.l2.line_bytes,
        config.l2.associativity,
    )
    .expect("valid L2");
    let mut l2 = kind.build(l2_geom);

    let l1i_geom = cpu_model::l1_geometry(config.l1i);
    let l1d_geom = cpu_model::l1_geometry(config.l1d);
    let mut cores: Vec<Core> = benches
        .iter()
        .enumerate()
        .map(|(i, b)| Core {
            trace: b.spec.generator(),
            l1i: Cache::new(l1i_geom, PolicyKind::Lru, 0x10 + i as u64),
            l1d: Cache::new(l1d_geom, PolicyKind::Lru, 0x20 + i as u64),
            l1i_geom,
            l1d_geom,
            base: i as u64 * CORE_SPACING,
            last_iblock: u64::MAX,
            retired: 0,
        })
        .collect();

    let total = insts_per_core * cores.len() as u64;
    let mut executed = 0u64;
    while executed < total {
        for core in cores.iter_mut() {
            if core.retired >= insts_per_core {
                continue;
            }
            let inst: Inst = core.trace.next().expect("infinite trace");
            core.retired += 1;
            executed += 1;

            // Instruction fetch through the private L1I.
            let pc = core.base + inst.pc;
            let iblock = pc / core.l1i_geom.line_bytes() as u64;
            if iblock != core.last_iblock {
                core.last_iblock = iblock;
                let out = core.l1i.access(core.l1i_geom.block_of(Address::new(pc)), false);
                if !out.hit {
                    l2.access(l2_geom.block_of(Address::new(pc)), false);
                }
            }

            // Data access through the private L1D, then the shared L2.
            if let Some(addr) = inst.mem_addr() {
                let addr = core.base + addr;
                let write = matches!(inst.kind, workloads::InstKind::Store { .. });
                let out = core.l1d.access(core.l1d_geom.block_of(Address::new(addr)), write);
                if let Some(ev) = out.eviction {
                    if ev.dirty {
                        let byte = ev.block.raw() << core.l1d_geom.offset_bits();
                        l2.access(l2_geom.block_of(Address::new(byte)), true);
                    }
                }
                if !out.hit {
                    l2.access(l2_geom.block_of(Address::new(addr)), false);
                }
            }
        }
    }

    SharedRunStats {
        benchmarks: benches.iter().map(|b| b.name.clone()).collect(),
        l2: kind.label(),
        insts_per_core,
        l1d_misses: cores.iter().map(|c| c.l1d.stats().misses).collect(),
        l2_stats: *l2.stats(),
    }
}

/// The dissimilar-thread pairings evaluated by the multi-core experiment:
/// one LFU-leaning and one LRU-leaning program per pair, plus a
/// memory-hog/compute pairing.
pub fn paper_future_work_pairs() -> Vec<(&'static str, &'static str)> {
    vec![
        ("art-1", "lucas"),
        ("xanim", "bzip2"),
        ("tiff2rgba", "gap"),
        ("mcf", "parser"),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use adaptive_cache::AdaptiveConfig;
    use workloads::primary_suite;

    fn by_name<'a>(suite: &'a [Benchmark], name: &str) -> &'a Benchmark {
        suite.iter().find(|b| b.name == name).unwrap()
    }

    #[test]
    fn shared_run_accounts_all_cores() {
        let suite = primary_suite();
        let pair = [by_name(&suite, "art-1"), by_name(&suite, "lucas")];
        let s = run_shared_l2(&pair, &L2Kind::Plain(PolicyKind::Lru), 20_000);
        assert_eq!(s.benchmarks, vec!["art-1", "lucas"]);
        assert_eq!(s.l1d_misses.len(), 2);
        assert!(s.l2_stats.accesses > 0);
    }

    #[test]
    fn cores_do_not_share_data() {
        // Same benchmark twice: the address offset must double the
        // combined footprint (no accidental sharing).
        let suite = primary_suite();
        let b = by_name(&suite, "applu");
        let one = run_shared_l2(&[b], &L2Kind::Plain(PolicyKind::Lru), 40_000);
        let two = run_shared_l2(&[b, b], &L2Kind::Plain(PolicyKind::Lru), 40_000);
        assert!(
            two.l2_stats.misses > one.l2_stats.misses,
            "duplicated cores must add misses ({} vs {})",
            two.l2_stats.misses,
            one.l2_stats.misses
        );
    }

    #[test]
    #[cfg_attr(debug_assertions, ignore = "simulation-heavy; run with --release")]
    fn adaptivity_helps_dissimilar_threads() {
        let suite = primary_suite();
        let pair = [by_name(&suite, "art-1"), by_name(&suite, "lucas")];
        let insts = 1_200_000;
        let lru = run_shared_l2(&pair, &L2Kind::Plain(PolicyKind::Lru), insts);
        let lfu = run_shared_l2(&pair, &L2Kind::Plain(PolicyKind::LFU5), insts);
        let adaptive = run_shared_l2(
            &pair,
            &L2Kind::Adaptive(AdaptiveConfig::paper_full_tags()),
            insts,
        );
        let best = lru.l2_stats.misses.min(lfu.l2_stats.misses);
        assert!(
            (adaptive.l2_stats.misses as f64) < best as f64 * 1.1,
            "adaptive {} vs best component {best} on mixed traffic",
            adaptive.l2_stats.misses
        );
    }

    #[test]
    #[should_panic(expected = "at least one core")]
    fn empty_core_list_rejected() {
        let _ = run_shared_l2(&[], &L2Kind::Plain(PolicyKind::Lru), 100);
    }
}
