//! Deterministic fault injection, so the resilience layer's degradation
//! paths are tested rather than assumed.
//!
//! Two wrappers cover the pipeline's failure surfaces:
//!
//! * [`FaultyCache`] wraps any [`CacheModel`] and injects panics, stalls
//!   and bit-flipped tags at exact access counts — reachable from run
//!   configs via [`crate::L2Kind::Faulty`], so a sweep cell can be made
//!   hostile from pure JSON.
//! * [`FaultyRead`] wraps any [`Read`] and injects short reads, I/O
//!   errors and bit flips at exact byte offsets — for exercising
//!   `workloads::trace_io` against corrupt/truncated `.actr` input.
//! * [`FaultyIo`] (re-exported from `cpu_model::replay::persist`) wraps
//!   the persistent replay store's file operations and injects torn
//!   writes, short reads, `ENOSPC`, `EIO` and bit flips from a seeded
//!   [`IoFaultPlan`] — install it with
//!   [`crate::replay_store::set_io`], or arm it from the environment
//!   via `AC_REPLAY_FAULT`.
//!
//! Everything is a pure function of the spec and the access/byte count:
//! rerunning a faulty configuration reproduces the identical failure.

pub use cpu_model::{FaultyIo, IoFaultPlan, ReplayIo, StdIo};

use cache_sim::{AccessOutcome, BlockAddr, CacheModel, CacheStats, Geometry};
use serde::{Deserialize, Serialize};
use std::io::{self, Read};
use std::time::Duration;

/// Deterministic fault plan for a [`FaultyCache`].
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
#[serde(default)]
pub struct FaultSpec {
    /// Panic on exactly this (1-based) access.
    pub panic_at_access: Option<u64>,
    /// Sleep for [`FaultSpec::stall_millis`] on exactly this access.
    pub stall_at_access: Option<u64>,
    /// Stall duration in milliseconds (used with `stall_at_access`).
    pub stall_millis: u64,
    /// XOR this mask onto the block address of afflicted accesses
    /// (models a flaky tag/address line).
    pub flip_tag_mask: u64,
    /// Apply the mask on every Nth access (`None` disables flipping).
    pub flip_tag_every: Option<u64>,
}

impl FaultSpec {
    /// A plan that panics on access `n`.
    pub fn panic_at(n: u64) -> Self {
        FaultSpec {
            panic_at_access: Some(n),
            ..Default::default()
        }
    }

    /// A plan that stalls `millis` ms on access `n`.
    pub fn stall_at(n: u64, millis: u64) -> Self {
        FaultSpec {
            stall_at_access: Some(n),
            stall_millis: millis,
            ..Default::default()
        }
    }

    /// A plan that XORs `mask` onto the block address every `every`th
    /// access.
    pub fn flip_tags(mask: u64, every: u64) -> Self {
        FaultSpec {
            flip_tag_mask: mask,
            flip_tag_every: Some(every),
            ..Default::default()
        }
    }
}

/// A [`CacheModel`] that misbehaves on schedule (see [`FaultSpec`]).
#[derive(Debug)]
pub struct FaultyCache<C: CacheModel> {
    inner: C,
    spec: FaultSpec,
    accesses: u64,
}

impl<C: CacheModel> FaultyCache<C> {
    /// Wraps `inner` with the fault plan `spec`.
    pub fn new(inner: C, spec: FaultSpec) -> Self {
        FaultyCache {
            inner,
            spec,
            accesses: 0,
        }
    }

    /// Accesses observed so far.
    pub fn accesses(&self) -> u64 {
        self.accesses
    }
}

impl<C: CacheModel> CacheModel for FaultyCache<C> {
    fn access(&mut self, block: BlockAddr, write: bool) -> AccessOutcome {
        self.accesses += 1;
        let n = self.accesses;
        if self.spec.panic_at_access == Some(n) {
            panic!("injected fault: cache panic at access {n}");
        }
        if self.spec.stall_at_access == Some(n) {
            std::thread::sleep(Duration::from_millis(self.spec.stall_millis));
        }
        let block = match self.spec.flip_tag_every {
            Some(k) if k > 0 && n.is_multiple_of(k) => {
                BlockAddr::new(block.raw() ^ self.spec.flip_tag_mask)
            }
            _ => block,
        };
        self.inner.access(block, write)
    }

    fn stats(&self) -> &CacheStats {
        self.inner.stats()
    }

    fn geometry(&self) -> &Geometry {
        self.inner.geometry()
    }

    fn label(&self) -> String {
        format!("Faulty({})", self.inner.label())
    }
}

/// A [`Read`] adapter that corrupts the byte stream on schedule:
/// truncation (premature EOF), a hard I/O error, or a single flipped bit.
#[derive(Debug)]
pub struct FaultyRead<R: Read> {
    inner: R,
    pos: u64,
    truncate_at: Option<u64>,
    error_at: Option<u64>,
    flip: Option<(u64, u8)>,
}

impl<R: Read> FaultyRead<R> {
    /// Wraps `inner` with no faults armed.
    pub fn new(inner: R) -> Self {
        FaultyRead {
            inner,
            pos: 0,
            truncate_at: None,
            error_at: None,
            flip: None,
        }
    }

    /// EOF after `n` bytes (a short read / truncated file).
    pub fn truncate_at(mut self, n: u64) -> Self {
        self.truncate_at = Some(n);
        self
    }

    /// Hard `io::Error` once `n` bytes have been delivered.
    pub fn error_at(mut self, n: u64) -> Self {
        self.error_at = Some(n);
        self
    }

    /// XOR `mask` into the byte at offset `at`.
    pub fn flip_bit(mut self, at: u64, mask: u8) -> Self {
        self.flip = Some((at, mask));
        self
    }
}

impl<R: Read> Read for FaultyRead<R> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let mut limit = buf.len() as u64;
        if let Some(t) = self.truncate_at {
            limit = limit.min(t.saturating_sub(self.pos));
            if limit == 0 {
                return Ok(0); // injected EOF
            }
        }
        if let Some(e) = self.error_at {
            if self.pos >= e {
                return Err(io::Error::other(format!(
                    "injected fault: I/O error at byte {e}"
                )));
            }
            limit = limit.min(e - self.pos);
        }
        let n = self.inner.read(&mut buf[..limit as usize])?;
        if let Some((at, mask)) = self.flip {
            if at >= self.pos && at < self.pos + n as u64 {
                buf[(at - self.pos) as usize] ^= mask;
            }
        }
        self.pos += n as u64;
        Ok(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cache_sim::{Address, Cache, PolicyKind};

    fn small_cache() -> Cache {
        Cache::new(Geometry::new(4096, 64, 4).unwrap(), PolicyKind::Lru, 0)
    }

    #[test]
    #[should_panic(expected = "injected fault")]
    fn panic_fires_at_exact_access() {
        let geom = *small_cache().geometry();
        let mut c = FaultyCache::new(small_cache(), FaultSpec::panic_at(3));
        let b = geom.block_of(Address::new(0x40));
        c.access(b, false);
        c.access(b, false);
        c.access(b, false); // boom
    }

    #[test]
    fn tag_flips_are_deterministic() {
        let geom = *small_cache().geometry();
        let run = || {
            let mut c = FaultyCache::new(small_cache(), FaultSpec::flip_tags(0x1, 2));
            for i in 0..100u64 {
                c.access(geom.block_of(Address::new(i * 64)), false);
            }
            c.stats().misses
        };
        assert_eq!(run(), run(), "same spec, same corruption, same stats");
        // Flipping must actually change behaviour vs. the clean cache.
        let mut clean = small_cache();
        for i in 0..100u64 {
            clean.access(geom.block_of(Address::new(i * 64)), false);
        }
        let mut faulty = FaultyCache::new(small_cache(), FaultSpec::flip_tags(0xFFFF, 2));
        for i in 0..100u64 {
            faulty.access(geom.block_of(Address::new(i * 64)), false);
        }
        assert_eq!(faulty.accesses(), 100);
        assert!(faulty.label().starts_with("Faulty("));
    }

    #[test]
    fn short_read_truncates() {
        let data = [7u8; 64];
        let mut out = Vec::new();
        FaultyRead::new(&data[..])
            .truncate_at(10)
            .read_to_end(&mut out)
            .unwrap();
        assert_eq!(out.len(), 10);
    }

    #[test]
    fn io_error_fires_at_offset() {
        let data = [7u8; 64];
        let mut out = Vec::new();
        let err = FaultyRead::new(&data[..])
            .error_at(16)
            .read_to_end(&mut out)
            .unwrap_err();
        assert!(err.to_string().contains("byte 16"), "{err}");
        assert_eq!(out.len(), 16, "bytes before the fault are delivered");
    }

    #[test]
    fn bit_flip_corrupts_one_byte() {
        let data = [0u8; 32];
        let mut out = Vec::new();
        FaultyRead::new(&data[..])
            .flip_bit(5, 0x80)
            .read_to_end(&mut out)
            .unwrap();
        assert_eq!(out[5], 0x80);
        assert!(out.iter().enumerate().all(|(i, &b)| (i == 5) ^ (b == 0)));
    }
}
